package tifl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/nn"
	"repro/internal/simres"
)

func testPopulation(t testing.TB) ([]*Client, *Dataset) {
	t.Helper()
	train := dataset.Generate(dataset.CIFAR10Like, 2500, 1)
	test := dataset.Generate(dataset.CIFAR10Like, 500, 2)
	rng := rand.New(rand.NewSource(3))
	parts := dataset.PartitionIID(train.Len(), 50, rng)
	cpus := simres.AssignGroups(50, simres.GroupsCIFAR)
	return flcore.BuildClients(train, test, parts, cpus, 40, 4), test
}

func testConfig(rounds int) Config {
	return Config{
		Rounds: rounds, ClientsPerRound: 5, LocalEpochs: 1, BatchSize: 10, Seed: 5,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, dataset.CIFAR10Like.Dim, []int{24}, 10, 0)
		},
		Optimizer: func(round int) nn.Optimizer { return nn.NewSGD(0.05, 0.9) },
		EvalEvery: 5,
		Parallel:  true,
	}
}

func TestNewBuildsFiveTiers(t *testing.T) {
	clients, _ := testPopulation(t)
	sys, err := New(clients, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Tiers()) != 5 {
		t.Fatalf("tiers = %d, want 5", len(sys.Tiers()))
	}
	if len(sys.Dropouts()) != 0 {
		t.Fatalf("dropouts = %v", sys.Dropouts())
	}
	if len(sys.Clients()) != 50 {
		t.Fatalf("clients = %d", len(sys.Clients()))
	}
}

func TestNewEmptyErrors(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("empty population accepted")
	}
}

func TestTrainVanillaVsFast(t *testing.T) {
	clients, test := testPopulation(t)
	sys, err := New(clients, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vanilla := sys.Train(testConfig(15), test, Vanilla())
	fast := sys.Train(testConfig(15), test, Static(PolicyFast))
	if fast.TotalTime >= vanilla.TotalTime {
		t.Fatalf("fast %v not faster than vanilla %v", fast.TotalTime, vanilla.TotalTime)
	}
	if vanilla.FinalAcc <= 0.2 || fast.FinalAcc <= 0.2 {
		t.Fatalf("accuracies too low: vanilla %v fast %v", vanilla.FinalAcc, fast.FinalAcc)
	}
}

func TestTrainAdaptive(t *testing.T) {
	clients, test := testPopulation(t)
	sys, err := New(clients, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Train(testConfig(12), test, Adaptive(AdaptiveConfig{Interval: 4, TestPerTier: 60}))
	if res.FinalAcc <= 0.2 {
		t.Fatalf("adaptive accuracy %v", res.FinalAcc)
	}
	if len(res.History) != 12 {
		t.Fatalf("history = %d rounds", len(res.History))
	}
}

func TestEstimateTrainingTime(t *testing.T) {
	clients, _ := testPopulation(t)
	sys, err := New(clients, Options{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := sys.EstimateTrainingTime(PolicyUniform, 100)
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 {
		t.Fatalf("estimate = %v", est)
	}
	// Slow policy must estimate higher than fast.
	slow, _ := sys.EstimateTrainingTime(PolicySlow, 100)
	fast, _ := sys.EstimateTrainingTime(PolicyFast, 100)
	if slow <= fast {
		t.Fatalf("slow %v ≤ fast %v", slow, fast)
	}
	if _, err := sys.EstimateTrainingTime(StaticPolicy{Name: "bad", Probs: []float64{1}}, 10); err == nil {
		t.Fatal("mismatched policy accepted")
	}
}

func TestPrivacyGuarantee(t *testing.T) {
	clients, _ := testPopulation(t)
	sys, err := New(clients, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := Guarantee{Epsilon: 1, Delta: 1e-5}
	g, err := sys.PrivacyGuarantee(base, []float64{1, 1, 1, 1, 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 5 equal tiers of 10: q = (1/5)·5/10 = 0.1 → amplified ε = 0.1.
	if math.Abs(g.Epsilon-0.1) > 1e-12 {
		t.Fatalf("amplified epsilon = %v", g.Epsilon)
	}
	if _, err := sys.PrivacyGuarantee(base, []float64{1}, 5); err == nil {
		t.Fatal("mismatched thetas accepted")
	}
}

func TestEqualWidthOption(t *testing.T) {
	clients, _ := testPopulation(t)
	sys, err := New(clients, Options{EqualWidthTiers: true, NumTiers: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Equal-width over the skewed CPU spectrum collapses fast groups
	// together; we only require a valid partition (≥2 tiers, all clients).
	total := 0
	for _, tr := range sys.Tiers() {
		total += len(tr.Members)
	}
	if total != 50 {
		t.Fatalf("tiers cover %d clients", total)
	}
	if len(sys.Tiers()) < 2 {
		t.Fatalf("tiers = %d", len(sys.Tiers()))
	}
}

func TestEngineAccessorCheckpointFlow(t *testing.T) {
	clients, test := testPopulation(t)
	sys, err := New(clients, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(6)
	sel := sys.Selector(Static(PolicyUniform), cfg.ClientsPerRound)

	// Run 3 rounds, checkpoint, resume in a new engine for the tail.
	half := cfg
	half.Rounds = 3
	engA := sys.Engine(half, test)
	engA.Run(sel)
	snap := engA.Snapshot()

	engB := sys.Engine(cfg, test)
	if err := engB.Restore(snap); err != nil {
		t.Fatal(err)
	}
	tail := engB.Run(sys.Selector(Static(PolicyUniform), cfg.ClientsPerRound))
	if len(tail.History) != 3 || tail.History[0].Round != 3 {
		t.Fatalf("resumed tail = %d rounds from %d", len(tail.History), tail.History[0].Round)
	}
}

func TestTrainTieredAsync(t *testing.T) {
	clients, test := testPopulation(t)
	sys, err := New(clients, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1)
	res := sys.TrainTieredAsync(TieredAsyncConfig{
		Duration: 60, ClientsPerRound: 5, EvalInterval: 20, Seed: 5,
		Model: cfg.Model, Optimizer: cfg.Optimizer, EvalBatch: 128,
	}, test)
	if len(res.Commits) != len(sys.Tiers()) {
		t.Fatalf("commit counts %v for %d tiers", res.Commits, len(sys.Tiers()))
	}
	// Tier 1 holds the 4-CPU clients; tier 5 the 0.1-CPU clients. Fast
	// tiers must commit more rounds within the shared simulated budget.
	if res.Commits[0] <= res.Commits[len(res.Commits)-1] {
		t.Fatalf("fast tier commits %v not above slow tier", res.Commits)
	}
	if len(res.TierRounds) == 0 || math.IsNaN(res.FinalAcc) {
		t.Fatalf("empty run: %d commits, final acc %v", len(res.TierRounds), res.FinalAcc)
	}
}

func TestTrainTieredAsyncNet(t *testing.T) {
	clients, test := testPopulation(t)
	sys, err := New(clients, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1)
	commits := 40
	if testing.Short() {
		commits = 15
	}
	res, acc, err := sys.TrainTieredAsyncNet(TieredAsyncConfig{
		ClientsPerRound: 5, Seed: 5, Model: cfg.Model, Optimizer: cfg.Optimizer,
		EvalBatch: 128,
	}, NetOptions{GlobalCommits: commits}, test)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range res.Commits {
		total += c
	}
	if total != commits || len(res.Log) != commits {
		t.Fatalf("commits %v (log %d), want %d total", res.Commits, len(res.Log), commits)
	}
	if len(res.Commits) != len(sys.Tiers()) {
		t.Fatalf("%d commit counters for %d tiers", len(res.Commits), len(sys.Tiers()))
	}
	if acc <= 0.15 {
		t.Fatalf("distributed accuracy %v at chance", acc)
	}
	// Validation errors surface instead of panicking.
	if _, _, err := sys.TrainTieredAsyncNet(TieredAsyncConfig{ClientsPerRound: 5}, NetOptions{GlobalCommits: 1}, nil); err == nil {
		t.Fatal("missing Model/Optimizer accepted")
	}
	if _, _, err := sys.TrainTieredAsyncNet(TieredAsyncConfig{
		ClientsPerRound: 5, Model: cfg.Model, Optimizer: cfg.Optimizer,
	}, NetOptions{}, nil); err == nil {
		t.Fatal("zero GlobalCommits accepted")
	}
}

// TestTrainTieredAsyncTree drives the hierarchical topology through the
// public API: one child aggregator per profiled tier pre-reduces its
// mini-FedAvg rounds at the edge, and the root only ever applies one
// vector per tier round.
func TestTrainTieredAsyncTree(t *testing.T) {
	clients, test := testPopulation(t)
	sys, err := New(clients, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1)
	commits := 30
	if testing.Short() {
		commits = 12
	}
	res, acc, err := sys.TrainTieredAsyncTree(TieredAsyncConfig{
		ClientsPerRound: 5, Seed: 5, Model: cfg.Model, Optimizer: cfg.Optimizer,
		EvalBatch: 128,
	}, NetOptions{
		GlobalCommits:      commits,
		CompressionOptions: CompressionOptions{AdaptiveCompression: true},
	}, test)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range res.Commits {
		total += c
	}
	if total != commits || len(res.Log) != commits {
		t.Fatalf("commits %v (log %d), want %d total", res.Commits, len(res.Log), commits)
	}
	if len(res.Commits) != len(sys.Tiers()) {
		t.Fatalf("%d commit counters for %d tiers", len(res.Commits), len(sys.Tiers()))
	}
	if res.UplinkBytes <= 0 {
		t.Fatalf("children reported %d uplink bytes", res.UplinkBytes)
	}
	if acc <= 0.15 {
		t.Fatalf("tree accuracy %v at chance", acc)
	}
	// Live tiering cannot ride over the tree.
	if _, _, err := sys.TrainTieredAsyncTree(TieredAsyncConfig{
		ClientsPerRound: 5, Model: cfg.Model, Optimizer: cfg.Optimizer,
	}, NetOptions{
		GlobalCommits:  1,
		TieringOptions: TieringOptions{RetierEvery: 5},
	}, nil); err == nil {
		t.Fatal("live tiering over the tree accepted")
	}
}

// TestTrainTieredAsyncLiveRetier drives the public live-tiering surface:
// Options.RetierEvery makes the simulated tiered-async job re-tier from
// observed latencies when client resources drift mid-run.
func TestTrainTieredAsyncLiveRetier(t *testing.T) {
	clients, test := testPopulation(t)
	// The fastest CPU group collapses to 5% capacity from tier round 3 on
	// (latched, so migrating to a low-round tier cannot un-drift them).
	for i := 0; i < 10; i++ {
		latched := false
		clients[i].Drift = func(round int) float64 {
			if round >= 3 {
				latched = true
			}
			if latched {
				return 0.05
			}
			return 1
		}
	}
	sys, err := New(clients, Options{TieringOptions: TieringOptions{RetierEvery: 10, EWMABeta: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1)
	res := sys.TrainTieredAsync(TieredAsyncConfig{
		Duration: 120, ClientsPerRound: 5, EvalInterval: 40, Seed: 5,
		Model: cfg.Model, Optimizer: cfg.Optimizer, EvalBatch: 128,
	}, test)
	if res.Retiers < 1 || res.Migrations < 1 {
		t.Fatalf("drifting clients never re-tiered: retiers=%d migrations=%d", res.Retiers, res.Migrations)
	}
	if len(res.TierRounds) == 0 || math.IsNaN(res.FinalAcc) {
		t.Fatalf("empty run: %d commits, final acc %v", len(res.TierRounds), res.FinalAcc)
	}
}

// TestTrainTieredAsyncAdaptiveSelection exercises Algorithm-2 adaptive
// cohort sizing through the public API: boosted cohorts appear, bounded by
// the credit budget and the 2x cap.
func TestTrainTieredAsyncAdaptiveSelection(t *testing.T) {
	clients, test := testPopulation(t)
	sys, err := New(clients, Options{TieringOptions: TieringOptions{AdaptiveSelection: true, Credits: 5}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1)
	res := sys.TrainTieredAsync(TieredAsyncConfig{
		Duration: 60, ClientsPerRound: 5, EvalInterval: 15, Seed: 5,
		Model: cfg.Model, Optimizer: cfg.Optimizer, EvalBatch: 128,
	}, test)
	if len(res.TierRounds) == 0 {
		t.Fatal("no commits")
	}
	for _, rec := range res.TierRounds {
		if len(rec.Selected) > 10 {
			t.Fatalf("cohort %v exceeds the 2x boost cap", rec.Selected)
		}
	}
}

// TestTrainTieredAsyncNetLiveRetier runs live tiering over loopback TCP:
// NetOptions.RetierEvery installs a Manager on the aggregator and the
// adaptive codec policy keeps fast tiers dense while slow tiers compress.
func TestTrainTieredAsyncNetLiveRetier(t *testing.T) {
	clients, test := testPopulation(t)
	sys, err := New(clients, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1)
	commits := 30
	if testing.Short() {
		commits = 12
	}
	res, acc, err := sys.TrainTieredAsyncNet(TieredAsyncConfig{
		ClientsPerRound: 5, Seed: 5, Model: cfg.Model, Optimizer: cfg.Optimizer,
		EvalBatch: 128,
	}, NetOptions{
		GlobalCommits:      commits,
		TieringOptions:     TieringOptions{RetierEvery: 50},
		CompressionOptions: CompressionOptions{AdaptiveCompression: true},
	}, test)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range res.Commits {
		total += c
	}
	if total != commits {
		t.Fatalf("commits %v sum to %d, want %d", res.Commits, total, commits)
	}
	if acc <= 0.15 {
		t.Fatalf("distributed accuracy %v at chance", acc)
	}
	// With mixed per-tier codecs some commits must be cheaper than dense.
	if res.UplinkBytes <= 0 {
		t.Fatalf("no uplink accounting: %d", res.UplinkBytes)
	}
}

func TestWorkerCodecPolicy(t *testing.T) {
	topk := TopKCodec(0.1)
	uniform := NetOptions{CompressionOptions: CompressionOptions{Compression: topk}}
	if uniform.TierCodec(0, 5) != topk || uniform.TierCodec(4, 5) != topk {
		t.Fatal("uniform compression must ignore tiers")
	}
	adaptive := NetOptions{CompressionOptions: CompressionOptions{AdaptiveCompression: true, Compression: topk}}
	if adaptive.TierCodec(0, 5) != nil || adaptive.TierCodec(2, 5) != nil {
		t.Fatal("fast half must stay dense")
	}
	if adaptive.TierCodec(3, 5) != topk || adaptive.TierCodec(4, 5) != topk {
		t.Fatal("slow half must use the configured codec")
	}
	// Without a configured codec the slow half defaults to top-k@10%.
	fallback := NetOptions{CompressionOptions: CompressionOptions{AdaptiveCompression: true}}
	if fallback.TierCodec(4, 5) == nil || fallback.TierCodec(0, 5) != nil {
		t.Fatal("default adaptive codec policy broken")
	}
	// Two tiers: ceil(2/2)=1 fast tier, one compressed tier.
	if adaptive.TierCodec(0, 2) != nil || adaptive.TierCodec(1, 2) != topk {
		t.Fatal("two-tier split wrong")
	}
}

func TestProfilerDropoutsSurface(t *testing.T) {
	clients, _ := testPopulation(t)
	sys, err := New(clients, Options{Profiler: ProfilerConfig{SyncRounds: 3, Tmax: 2.0, Epochs: 1, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Dropouts()) == 0 {
		t.Fatal("tight Tmax should exclude the 0.1-CPU clients")
	}
}
