// Command tifl-trace summarizes a JSONL round trace written by
// `tifl -trace run.jsonl`: round and latency statistics, per-tier selection
// counts, and per-client participation — the observability view for
// debugging scheduling behaviour.
//
// Usage:
//
//	tifl-trace run.jsonl
package main

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tifl-trace <trace.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "tifl-trace: %v\n", err)
		os.Exit(1)
	}
	defer f.Close() //nolint:errcheck // read-only
	events, err := trace.Load(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tifl-trace: %v\n", err)
		os.Exit(1)
	}
	s := trace.Summarize(events)

	tab := metrics.Table{Title: "Run summary", Columns: []string{"metric", "value"}}
	tab.AddRow("rounds", s.Rounds)
	tab.AddRow("total simulated time [s]", s.TotalTime)
	tab.AddRow("mean round latency [s]", s.MeanLatency)
	tab.AddRow("p50 round latency [s]", s.P50)
	tab.AddRow("p95 round latency [s]", s.P95)
	tab.AddRow("max round latency [s]", s.Max)
	tab.AddRow("final accuracy", s.FinalAccuracy)
	fmt.Println(tab.Render())

	tiers := make([]int, 0, len(s.TierCount))
	for t := range s.TierCount {
		tiers = append(tiers, t)
	}
	sort.Ints(tiers)
	tt := metrics.Table{Title: "Tier selection counts", Columns: []string{"tier", "rounds", "share"}}
	for _, t := range tiers {
		label := fmt.Sprintf("%d", t+1)
		if t < 0 {
			label = "(vanilla)"
		}
		tt.AddRow(label, s.TierCount[t], float64(s.TierCount[t])/float64(s.Rounds))
	}
	fmt.Println(tt.Render())

	clients := make([]int, 0, len(s.SelectionCount))
	for c := range s.SelectionCount {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool {
		if s.SelectionCount[clients[i]] != s.SelectionCount[clients[j]] {
			return s.SelectionCount[clients[i]] > s.SelectionCount[clients[j]]
		}
		return clients[i] < clients[j]
	})
	if len(clients) > 10 {
		clients = clients[:10]
	}
	ct := metrics.Table{Title: "Most-selected clients", Columns: []string{"client", "selections"}}
	for _, c := range clients {
		ct.AddRow(fmt.Sprintf("%d", c), s.SelectionCount[c])
	}
	fmt.Println(ct.Render())

	// Accuracy trajectory.
	var acc metrics.Series
	acc.Name = "accuracy"
	for _, e := range events {
		if e.Accuracy > 0 {
			acc.X = append(acc.X, float64(e.Round))
			acc.Y = append(acc.Y, e.Accuracy)
		}
	}
	if acc.Len() > 1 {
		fmt.Println(metrics.LinePlot("accuracy over rounds", []metrics.Series{acc}, 64, 12))
	}
}
