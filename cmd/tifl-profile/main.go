// Command tifl-profile runs TiFL's profiling and tiering pass (Section 4.2)
// on a simulated heterogeneous cluster and prints the tier table, the
// training-time estimates of every Table 1 policy (Eq. 6), and the
// per-policy privacy amplification analysis (Section 4.6).
//
// Usage:
//
//	tifl-profile [-clients 50] [-tiers 5] [-strategy quantile|width] [-tmax 1e6]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/estimate"
	"repro/internal/flcore"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/simres"
)

func main() {
	var (
		clients  = flag.Int("clients", 50, "total clients (multiple of 5)")
		perRound = flag.Int("per-round", 5, "clients per round |C| (for estimates)")
		tiers    = flag.Int("tiers", 5, "number of tiers m")
		strategy = flag.String("strategy", "quantile", "tiering strategy: quantile | width")
		tmax     = flag.Float64("tmax", 1e6, "profiling timeout Tmax [s]")
		rounds   = flag.Int("rounds", 500, "rounds for training-time estimates")
		seed     = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()
	if *clients%5 != 0 {
		fmt.Fprintln(os.Stderr, "tifl-profile: -clients must be a multiple of 5")
		os.Exit(2)
	}

	train := dataset.Generate(dataset.CIFAR10Like, *clients*200, *seed)
	parts := dataset.PartitionIID(train.Len(), *clients, rand.New(rand.NewSource(*seed)))
	cpus := simres.AssignGroups(*clients, simres.GroupsCIFAR)
	pop := flcore.BuildClients(train, nil, parts, cpus, 0, *seed)

	prof := core.Profile(pop, simres.DefaultModel, core.ProfilerConfig{
		SyncRounds: 5, Tmax: *tmax, Epochs: 1, Seed: *seed,
	})
	fmt.Printf("profiled %d clients, %d dropouts (Tmax=%.0fs)\n\n", len(prof.Latency), len(prof.Dropouts), *tmax)

	strat := core.Quantile
	if *strategy == "width" {
		strat = core.EqualWidth
	}
	ts := core.BuildTiers(prof.Latency, *tiers, strat)

	tierTab := metrics.Table{Title: "Tiers (fastest first)", Columns: []string{"tier", "clients", "mean latency [s]"}}
	sizes := make([]int, len(ts))
	for i, t := range ts {
		tierTab.AddRow(fmt.Sprintf("%d", t.ID+1), len(t.Members), t.MeanLatency)
		sizes[i] = len(t.Members)
	}
	fmt.Println(tierTab.Render())

	if len(ts) == 5 {
		lat := core.TierLatencies(ts)
		estTab := metrics.Table{
			Title:   fmt.Sprintf("Estimated training time for %d rounds (Eq. 6)", *rounds),
			Columns: []string{"policy", "estimate [s]", "per-round privacy (base ε=1, δ=1e-5)"},
		}
		base := privacy.Guarantee{Epsilon: 1, Delta: 1e-5}
		for _, p := range core.PoliciesCIFAR() {
			est := estimate.TrainingTime(lat, p.Probs, *rounds)
			g, _ := privacy.AmplifyTiered(base, privacy.ThetasFromProbs(p.Probs), sizes, *perRound)
			estTab.AddRow(p.Name, est, g.String())
		}
		fmt.Println(estTab.Render())
	} else {
		fmt.Printf("(%d tiers built; Table 1 estimates need exactly 5)\n", len(ts))
	}
}
