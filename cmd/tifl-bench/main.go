// Command tifl-bench regenerates every table and figure of the TiFL paper's
// evaluation (plus the ablations) and writes paper-shaped text reports and
// raw CSVs to a results directory.
//
// Usage:
//
//	tifl-bench [-out results] [-only fig3,fig7] [-full] [-seed N]
//
// Without -full, experiments run at a reduced scale (fewer rounds, smaller
// datasets) that preserves every shape the paper reports; -full restores
// the paper's 500 synthetic rounds / 2000 LEAF rounds / 50 clients.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		out  = flag.String("out", "results", "output directory for reports and CSVs")
		only = flag.String("only", "", "comma-separated experiment IDs to run (default: all); see -list")
		full = flag.Bool("full", false, "run at paper scale (500/2000 rounds) instead of reduced scale")
		seed = flag.Int64("seed", 1, "experiment seed")
		list = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-22s %s\n", r.ID, r.Name)
		}
		return
	}

	scale := experiments.SmallScale()
	if *full {
		scale = experiments.FullScale()
	}
	scale.Seed = *seed

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if experiments.ByID(id) == nil {
				fmt.Fprintf(os.Stderr, "tifl-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			want[id] = true
		}
	}

	start := time.Now()
	ran := 0
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		t0 := time.Now()
		fmt.Printf("── running %s: %s\n", r.ID, r.Name)
		output := r.Run(scale)
		fmt.Println(output.Render())
		if err := output.WriteFiles(*out); err != nil {
			fmt.Fprintf(os.Stderr, "tifl-bench: writing %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("── %s done in %v (artifacts under %s/%s)\n\n", r.ID, time.Since(t0).Round(time.Millisecond), *out, r.ID)
		ran++
	}
	fmt.Printf("ran %d experiments in %v\n", ran, time.Since(start).Round(time.Millisecond))
}
