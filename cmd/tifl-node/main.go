// Command tifl-node is a distributed FL node over real TCP (internal/flnet),
// following the Google FL architecture the paper prototypes: run one
// aggregator process and any number of worker processes, each training a
// private synthetic shard.
//
// Synchronous aggregator (waits for -workers, profiles them, then runs
// -rounds of FedAvg):
//
//	tifl-node -role aggregator -addr :7070 -workers 5 -rounds 20 -per-round 3
//
// Tiered-asynchronous aggregator (profiles, builds -tiers latency tiers,
// then runs FedAT-style per-tier rounds until -commits commits). With
// -retier-every the tiering goes live: observed round latencies feed EWMA
// estimates and workers migrate between tiers mid-run (announced to them
// as MsgTierReassign); -adaptive-select adds Algorithm-2 cohort sizing
// under per-tier -credits budgets:
//
//	tifl-node -role tiered-aggregator -addr :7070 -workers 5 -tiers 2 -commits 40 -per-round 2
//	tifl-node -role tiered-aggregator -addr :7070 -workers 5 -tiers 2 -commits 80 -retier-every 10 -adaptive-select -credits 20
//
// Crash safety and observability: -checkpoint snapshots the run durably
// every -checkpoint-every commits, and the same flag resumes it — when the
// checkpoint file exists at startup the aggregator restores the model,
// per-tier cursors, and tiering state and continues toward -commits (the
// absolute target). Workers just reconnect; if the worker roster changed
// since the snapshot, only the model is restored and tiers are rebuilt
// from a fresh profiling pass. -metrics-addr serves live run metrics as
// JSON:
//
//	tifl-node -role tiered-aggregator -addr :7070 -workers 5 -tiers 2 -commits 80 \
//	    -checkpoint /var/lib/tifl/run.ckpt -checkpoint-every 10 -metrics-addr 127.0.0.1:9090
//	curl http://127.0.0.1:9090/metrics
//
// Workers (one per shell / machine; they serve either aggregator kind).
// -codec compresses the worker's uplink updates — negotiated at
// registration, so compressed and plain workers mix freely:
//
//	tifl-node -role worker -addr host:7070 -id 0
//	tifl-node -role worker -addr host:7070 -id 1 -codec topk@0.1
//	tifl-node -role worker -addr host:7070 -id 2 -codec int8
//
// The broadcast direction compresses independently: -downlink-codec on the
// aggregator roles sends each tier round's model as one shared delta
// against the version-acked base delta-capable workers already hold
// (dense snapshot on first contact, resume, or ack gap; legacy workers
// always get dense). "delta" is lossless, "delta+int8" / "delta+topk@0.1"
// trade accuracy for bytes with a server-side error-feedback residual:
//
//	tifl-node -role tiered-aggregator -addr :7070 -workers 5 -tiers 2 -commits 40 -downlink-codec delta+topk@0.1
//	tifl-node -role child-aggregator -addr :7171 -root host:7070 -id 0 -workers 3 -downlink-codec delta
//
// Self-healing (off by default; all roles fail-stop on the first error
// unless asked otherwise): -reconnect makes a worker survive connection
// loss — it re-dials with capped exponential backoff, re-registers under
// its -id, re-enters its tier, and resumes serving rounds. -rpc-timeout
// bounds every protocol read/write so a hung peer surfaces as a
// descriptive timeout instead of a forever-block; -max-retries lets the
// aggregator redispatch an in-flight round to a reconnected worker (the
// idempotent sequence number guarantees a retried round is counted once)
// and caps the worker's reconnect attempts; -rejoin-wait is how long a
// dispatching tier waits for a dead worker (or the root for its last dead
// child) to come back:
//
//	tifl-node -role tiered-aggregator -addr :7070 -workers 5 -tiers 2 -commits 80 -max-retries 2 -rejoin-wait 30s -rpc-timeout 20s
//	tifl-node -role worker -addr host:7070 -id 0 -reconnect -max-retries 10 -rpc-timeout 20s
//
// A killed child-aggregator can simply be restarted with its old flags:
// it re-registers at the root, which validates the member list against
// the pinned topology and revives the tier mid-run.
//
// Hierarchical topology (the tree): run per-tier child-aggregator
// processes between the workers and the root. Each child waits for its
// own -workers leaf workers, joins the root as tier -id, and pre-reduces
// its tier's mini-FedAvg rounds at the edge — the root only applies one
// vector per tier round. The root is a tiered-aggregator with -children:
//
//	tifl-node -role tiered-aggregator -addr :7070 -children 2 -commits 40 -per-round 2
//	tifl-node -role child-aggregator -addr :7171 -root host:7070 -id 0 -workers 3
//	tifl-node -role child-aggregator -addr :7172 -root host:7070 -id 1 -workers 3
//	tifl-node -role worker -addr host:7171 -id 0   # leaves dial their child
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	tifl "repro"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/flnet"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/tiering"
)

func main() {
	var (
		role     = flag.String("role", "", "aggregator | tiered-aggregator | child-aggregator | worker")
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address (aggregator roles) or aggregator address (worker)")
		workers  = flag.Int("workers", 3, "aggregator/child-aggregator: workers to wait for")
		rounds   = flag.Int("rounds", 20, "aggregator: training rounds")
		perRound = flag.Int("per-round", 2, "aggregator: clients per round (per tier round when tiered)")
		timeout  = flag.Duration("timeout", 60*time.Second, "aggregator: per-round timeout")
		over     = flag.Float64("overselect", 0, "aggregator: over-selection fraction (0.3 = paper's 130%)")
		numTiers = flag.Int("tiers", 2, "tiered-aggregator: latency tiers to build")
		commits  = flag.Int("commits", 40, "tiered-aggregator: global commits to run")
		alpha    = flag.Float64("alpha", 0, "tiered-aggregator: base mixing rate (0 = default 0.6)")
		staleExp = flag.Float64("staleness-exp", 0, "tiered-aggregator: staleness discount exponent (0 = default 0.5)")
		children = flag.Int("children", 0, "tiered-aggregator: child aggregators forming a tree (0 = flat worker fan-in)")
		rootAddr = flag.String("root", "", "child-aggregator: tree root address to join")
		metrics  = flag.String("metrics-addr", "", "tiered-aggregator: observability endpoint address (e.g. 127.0.0.1:9090; empty = off)")
		id       = flag.Int("id", 0, "worker: client ID / child-aggregator: tier index")
		samples  = flag.Int("samples", 400, "worker: local training samples")
		seed     = flag.Int64("seed", 1, "seed")
	)
	// The tiering, checkpoint, and compression flags are generated from the
	// same option structs the library embeds in Options/NetOptions, so this
	// command cannot drift from the API surface.
	var tierOpts tifl.TieringOptions
	tierOpts.AddFlags(flag.CommandLine)
	ckptOpts := tifl.CheckpointOptions{CheckpointEvery: 10}
	ckptOpts.AddFlags(flag.CommandLine)
	var compOpts tifl.CompressionOptions
	compOpts.AddFlags(flag.CommandLine)
	var robOpts tifl.RobustnessOptions
	robOpts.AddFlags(flag.CommandLine)
	flag.Parse()

	codec := compOpts.Compression

	spec := dataset.CIFAR10Like
	arch := func(rng *rand.Rand) *nn.Model {
		return nn.NewMLP(rng, spec.Dim, []int{32}, spec.NumClasses, 0)
	}

	switch *role {
	case "aggregator":
		init := arch(rand.New(rand.NewSource(*seed))).WeightsVector()
		agg, err := flnet.NewAggregator(*addr, flnet.AggregatorConfig{
			Rounds: *rounds, ClientsPerRound: *perRound, Overselect: *over,
			RoundTimeout: *timeout, InitialWeights: init, Seed: *seed,
		})
		if err != nil {
			fail("%v", err)
		}
		defer agg.Close()
		fmt.Printf("aggregator listening on %s, waiting for %d workers...\n", agg.Addr(), *workers)
		if err := agg.WaitForWorkers(*workers, 10*time.Minute); err != nil {
			fail("%v", err)
		}
		lat, drop, err := agg.ProfileWorkers(*timeout)
		if err != nil {
			fail("profiling: %v", err)
		}
		fmt.Printf("profiled %d workers (dropouts: %v):\n", len(lat), drop)
		for idc, l := range lat {
			fmt.Printf("  client %d: %.3fs\n", idc, l)
		}
		res, err := agg.Run(flnet.UniformSelect(*perRound))
		if err != nil {
			fail("training: %v", err)
		}
		// Evaluate the final global model on a held-out test set.
		test := dataset.Generate(spec, 1000, *seed+999)
		model := arch(rand.New(rand.NewSource(*seed)))
		model.SetWeightsVector(res.Weights)
		acc, loss := model.Evaluate(test.X, test.Y, 256)
		for _, rs := range res.Rounds {
			fmt.Printf("round %3d: selected %d, used %d, discarded %d, uplink %d B, wall %v\n",
				rs.Round, rs.Selected, rs.Used, rs.Discarded, rs.UplinkBytes, rs.Wall.Round(time.Millisecond))
		}
		fmt.Printf("total uplink %d bytes (dense would be %d)\n",
			res.UplinkBytes, int64(usedUpdates(res))*int64(compress.DenseBytes(len(init))))
		fmt.Printf("final global accuracy %.4f (loss %.4f)\n", acc, loss)

	case "tiered-aggregator":
		init := arch(rand.New(rand.NewSource(*seed))).WeightsVector()
		live := tierOpts.Live()
		if *children > 0 && live {
			fail("live tiering (-retier-every/-adaptive-select) is not supported over the tree; drop -children or the tiering flags")
		}
		// A checkpoint file already on disk means this invocation is a
		// restart: load it (falling back to the rotated .prev snapshot if
		// the newest write was torn) and resume instead of starting over.
		var resumeCkpt *flcore.TieredCheckpoint
		if ckptOpts.CheckpointPath != "" && checkpointExists(ckptOpts.CheckpointPath) {
			c, err := flcore.LoadTieredCheckpointFile(ckptOpts.CheckpointPath)
			if err != nil {
				fail("loading checkpoint: %v", err)
			}
			if hasMgr := len(c.ManagerState) > 0; hasMgr != live {
				fail("checkpoint %s live tiering = %v; rerun with matching -retier-every/-adaptive-select flags", ckptOpts.CheckpointPath, hasMgr)
			}
			if c.Version >= *commits {
				fail("checkpoint %s is already at version %d; raise -commits above it to continue the job", ckptOpts.CheckpointPath, c.Version)
			}
			resumeCkpt = c
			fmt.Printf("found checkpoint %s at version %d of %d\n", ckptOpts.CheckpointPath, c.Version, *commits)
		}
		ckptEvery := 0
		if ckptOpts.CheckpointPath != "" {
			ckptEvery = ckptOpts.CheckpointEvery
		}
		agg, err := flnet.NewTieredAsyncAggregator(*addr, flnet.TieredAsyncConfig{
			GlobalCommits: *commits, ClientsPerRound: *perRound,
			Alpha: *alpha, StalenessExp: *staleExp,
			TierWeight:   core.FedATWeights(),
			RoundTimeout: *timeout, InitialWeights: init, Seed: *seed,
			CheckpointEvery: ckptEvery, CheckpointPath: ckptOpts.CheckpointPath,
			MetricsAddr:   *metrics,
			ReassignCodec: compOpts.ReassignPolicy(),
			Downlink:      compOpts.Downlink,
			MaxRetries:    robOpts.MaxRetries, RejoinWait: robOpts.RejoinWait,
			SendTimeout: robOpts.RPCTimeout,
		})
		if err != nil {
			fail("%v", err)
		}
		defer agg.Close()
		if *children > 0 {
			runTreeRoot(agg, *children, *commits, resumeCkpt, arch, spec, *seed)
			return
		}
		fmt.Printf("tiered-async aggregator listening on %s, waiting for %d workers...\n", agg.Addr(), *workers)
		if ma := agg.MetricsAddr(); ma != "" {
			fmt.Printf("metrics endpoint on http://%s/metrics\n", ma)
		}
		if err := agg.WaitForWorkers(*workers, 10*time.Minute); err != nil {
			fail("%v", err)
		}
		var mgr *tiering.Manager
		if live {
			// Live tiering: profile, seed a Manager with the measured
			// latencies, and let it own membership for the run — commits
			// feed its EWMAs and rebuilds migrate workers mid-run. On a
			// full resume below, the checkpoint's manager state replaces
			// these fresh profile estimates.
			lat, dropouts, err := agg.ProfileWorkers(*timeout)
			if err != nil {
				fail("profiling: %v", err)
			}
			if len(dropouts) > 0 {
				fmt.Printf("profiling dropouts (excluded from all tiers): %v\n", dropouts)
			}
			mgr, err = tiering.NewManager(tiering.Config{
				NumTiers: *numTiers, RetierEvery: tierOpts.RetierEvery, EWMABeta: tierOpts.EWMABeta,
				ClientsPerRound: *perRound, Seed: *seed,
				Adaptive: tierOpts.AdaptiveSelection, Credits: tierOpts.Credits,
			}, lat)
			if err != nil {
				fail("%v", err)
			}
			agg.SetManager(mgr)
		}
		resumedTiers := false
		if resumeCkpt != nil {
			switch err := agg.Resume(resumeCkpt); {
			case err == nil:
				resumedTiers = true
				fmt.Printf("resumed model, tiers, and cursors at version %d\n", resumeCkpt.Version)
			case errors.Is(err, flnet.ErrRosterChanged):
				// Some checkpointed workers did not come back: keep the
				// model but rebuild tiers over the roster that did.
				fmt.Printf("%v; resuming model only over a fresh profile\n", err)
				if err := agg.ResumeModel(resumeCkpt); err != nil {
					fail("resume: %v", err)
				}
			default:
				fail("resume: %v", err)
			}
		}
		var res *flnet.TieredAsyncRunResult
		var tiers []core.Tier
		var err2 error
		switch {
		case mgr != nil:
			res, err2 = agg.Run(nil)
			if err2 != nil {
				fail("tiered training: %v", err2)
			}
			for ti, members := range mgr.Tiers() {
				fmt.Printf("tier %d (final membership): workers %v → %d commits\n", ti+1, members, res.Commits[ti])
			}
			fmt.Printf("live tiering: %d re-tierings moved %d workers\n", res.Retiers, res.Reassigned)
		case resumedTiers:
			res, err2 = agg.Run(nil) // checkpointed membership, no re-profiling
			if err2 != nil {
				fail("tiered training: %v", err2)
			}
			for ti, members := range resumeCkpt.Tiers {
				fmt.Printf("tier %d (checkpointed membership): workers %v → %d commits\n", ti+1, members, res.Commits[ti])
			}
		default:
			var dropouts []int
			res, tiers, dropouts, err2 = agg.ProfileAndRun(*numTiers, *timeout)
			if len(dropouts) > 0 {
				fmt.Printf("profiling dropouts (excluded from all tiers): %v\n", dropouts)
			}
			if err2 != nil {
				fail("tiered training: %v", err2)
			}
			for _, tr := range tiers {
				fmt.Printf("tier %d (mean latency %.3fs): workers %v → %d commits\n",
					tr.ID+1, tr.MeanLatency, tr.Members, res.Commits[tr.ID])
			}
		}
		test := dataset.Generate(spec, 1000, *seed+999)
		model := arch(rand.New(rand.NewSource(*seed)))
		model.SetWeightsVector(res.Weights)
		acc, loss := model.Evaluate(test.X, test.Y, 256)
		last := res.Log[len(res.Log)-1]
		fmt.Printf("%d commits applied (last: tier %d round %d, staleness %d, weight %.3f), uplink %d bytes, downlink %d bytes\n",
			len(res.Log), last.Tier+1, last.TierRound, last.Staleness, last.Weight, res.UplinkBytes, res.DownlinkBytes)
		fmt.Printf("final global accuracy %.4f (loss %.4f)\n", acc, loss)

	case "child-aggregator":
		if *rootAddr == "" {
			fail("child-aggregator needs -root (the tree root's address)")
		}
		ch, err := flnet.NewChild(flnet.ChildConfig{
			ID: *id, Addr: *addr, RootAddr: *rootAddr,
			Workers: *workers, WorkerTimeout: 10 * time.Minute, RoundTimeout: *timeout,
			Downlink:   compOpts.Downlink,
			RPCTimeout: robOpts.RPCTimeout, MaxRetries: robOpts.MaxRetries,
			RejoinWait: robOpts.RejoinWait,
		})
		if err != nil {
			fail("%v", err)
		}
		defer ch.Close()
		fmt.Printf("child aggregator %d listening on %s for %d leaf workers, root %s\n",
			*id, ch.Addr(), *workers, *rootAddr)
		if err := ch.Run(); err != nil {
			fail("%v", err)
		}
		fmt.Printf("child aggregator %d: done\n", *id)

	case "worker":
		local := dataset.Generate(spec, *samples, *seed+int64(*id)*31)
		fmt.Printf("worker %d: %d local samples, connecting to %s\n", *id, local.Len(), *addr)
		train := func(round int, weights []float64) ([]float64, int, error) {
			rng := rand.New(rand.NewSource(*seed + int64(*id) + int64(round)*7919))
			model := arch(rng)
			model.SetWeightsVector(weights)
			opt := nn.NewRMSprop(0.01, 0.995)
			local.Batches(10, rng, func(x *tensor.Tensor, y []int) {
				model.TrainBatch(x, y, opt)
			})
			return model.WeightsVector(), local.Len(), nil
		}
		if codec != nil {
			fmt.Printf("worker %d: compressing uplink updates with %s\n", *id, codec.Name())
		}
		err := flnet.RunWorker(*addr, flnet.WorkerConfig{
			ClientID: *id, NumSamples: local.Len(), Train: train, Codec: codec,
			Reconnect: robOpts.Reconnect, MaxReconnects: robOpts.MaxRetries,
			RPCTimeout: robOpts.RPCTimeout,
			OnReconnect: func(attempt int) {
				fmt.Printf("worker %d: connection lost, reconnect attempt %d\n", *id, attempt)
			},
			OnTierAssign: func(tier, numTiers int) {
				fmt.Printf("worker %d: assigned to tier %d of %d\n", *id, tier+1, numTiers)
			},
			OnTierReassign: func(from, to, numTiers int) {
				fmt.Printf("worker %d: re-tiered %d → %d of %d\n", *id, from+1, to+1, numTiers)
			},
		})
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("worker %d: done\n", *id)

	default:
		fail("need -role aggregator, tiered-aggregator, child-aggregator, or worker")
	}
}

// runTreeRoot drives a tiered-aggregator invoked with -children: the
// hierarchical topology where per-tier child-aggregator processes
// pre-reduce their tier's rounds and the root applies one vector per tier
// round. Tier membership is fixed by which child each leaf registered
// with, so no profiling pass runs here.
func runTreeRoot(agg *flnet.TieredAsyncAggregator, children, commits int, resumeCkpt *flcore.TieredCheckpoint, arch func(*rand.Rand) *nn.Model, spec dataset.Spec, seed int64) {
	fmt.Printf("tree root listening on %s, waiting for %d child aggregators...\n", agg.Addr(), children)
	if ma := agg.MetricsAddr(); ma != "" {
		fmt.Printf("metrics endpoint on http://%s/metrics\n", ma)
	}
	if err := agg.WaitForChildren(children, 10*time.Minute); err != nil {
		fail("%v", err)
	}
	if resumeCkpt != nil {
		switch err := agg.ResumeTree(resumeCkpt); {
		case err == nil:
			fmt.Printf("resumed model and per-tier cursors at version %d\n", resumeCkpt.Version)
		case errors.Is(err, flnet.ErrRosterChanged):
			// The tree came back with different leaves: keep the model,
			// restart the cursors over the re-registered membership.
			fmt.Printf("%v; resuming model only\n", err)
			if err := agg.ResumeModel(resumeCkpt); err != nil {
				fail("resume: %v", err)
			}
		default:
			fail("resume: %v", err)
		}
	}
	res, err := agg.RunTree()
	if err != nil {
		fail("tree training: %v", err)
	}
	for _, row := range agg.Metrics().Children {
		fmt.Printf("tier %d child %s: %d commits, %d uplink bytes, %d downlink bytes reported\n",
			row.Tier+1, row.Addr, res.Commits[row.Tier], row.UplinkBytes, row.DownlinkBytes)
	}
	test := dataset.Generate(spec, 1000, seed+999)
	model := arch(rand.New(rand.NewSource(seed)))
	model.SetWeightsVector(res.Weights)
	acc, loss := model.Evaluate(test.X, test.Y, 256)
	last := res.Log[len(res.Log)-1]
	fmt.Printf("%d commits applied (last: tier %d round %d, staleness %d, weight %.3f), uplink %d bytes, downlink %d bytes\n",
		len(res.Log), last.Tier+1, last.TierRound, last.Staleness, last.Weight, res.UplinkBytes, res.DownlinkBytes)
	fmt.Printf("final global accuracy %.4f (loss %.4f)\n", acc, loss)
}

// checkpointExists reports whether a resumable snapshot is on disk: the
// checkpoint file itself, or the rotated previous one if a crash landed
// between SaveFile's rotate and rename steps.
func checkpointExists(path string) bool {
	if _, err := os.Stat(path); err == nil {
		return true
	}
	_, err := os.Stat(path + ".prev")
	return err == nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tifl-node: "+format+"\n", args...)
	os.Exit(2)
}

// usedUpdates counts the updates aggregated over a synchronous run.
func usedUpdates(res *flnet.RunResult) int {
	n := 0
	for _, rs := range res.Rounds {
		n += rs.Used
	}
	return n
}
