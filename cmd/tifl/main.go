// Command tifl runs a single federated training job on a synthetic
// benchmark with a chosen heterogeneity mix and selection policy, printing
// the tier structure, per-round progress, and the final summary.
//
// Examples:
//
//	tifl -dataset cifar10 -het resource -policy fast -rounds 100
//	tifl -dataset cifar10 -het combine -policy adaptive -rounds 200
//	tifl -dataset mnist -het quantity -policy fast3 -rounds 100
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	tifl "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/nn"
	"repro/internal/simres"
	"repro/internal/trace"
)

func main() {
	var (
		dataFlag   = flag.String("dataset", "cifar10", "dataset family: cifar10 | mnist | fmnist | femnist")
		hetFlag    = flag.String("het", "resource", "heterogeneity: resource | quantity | noniid | combine")
		policyFlag = flag.String("policy", "adaptive", "policy: vanilla | slow | uniform | random | fast | fast1 | fast2 | fast3 | adaptive")
		rounds     = flag.Int("rounds", 100, "global training rounds")
		clients    = flag.Int("clients", 50, "total clients |K| (multiple of 5)")
		perRound   = flag.Int("per-round", 5, "clients per round |C|")
		classes    = flag.Int("classes", 5, "classes per client for non-IID settings")
		trainSize  = flag.Int("train", 10000, "total training samples")
		seed       = flag.Int64("seed", 1, "seed")
		traceFile  = flag.String("trace", "", "write a JSONL round trace to this file (analyze with tifl-trace)")
	)
	flag.Parse()

	spec, ok := specs()[*dataFlag]
	if !ok {
		fail("unknown dataset %q", *dataFlag)
	}
	if *clients%5 != 0 {
		fail("-clients must be a multiple of 5 (5 resource groups)")
	}

	rng := rand.New(rand.NewSource(*seed))
	train := dataset.Generate(spec, *trainSize, *seed+1)
	test := dataset.Generate(spec, *trainSize/5, *seed+2)

	var parts [][]int
	cpus := simres.AssignGroups(*clients, simres.GroupsCIFAR)
	switch *hetFlag {
	case "resource":
		parts = dataset.PartitionIID(train.Len(), *clients, rng)
	case "quantity":
		parts = dataset.PartitionQuantity(train.Len(), *clients, dataset.QuantityFractions, rng)
	case "noniid":
		parts = dataset.PartitionByClass(train, *clients, *classes, rng)
	case "combine":
		parts = dataset.PartitionClassQuantity(train, *clients, *classes, dataset.QuantityFractions, rng)
	default:
		fail("unknown heterogeneity %q", *hetFlag)
	}
	pop := flcore.BuildClients(train, test, parts, cpus, 60, *seed+3)

	sys, err := tifl.New(pop, tifl.Options{})
	if err != nil {
		fail("building system: %v", err)
	}
	fmt.Println("tiers (fastest → slowest):")
	for _, t := range sys.Tiers() {
		fmt.Printf("  tier %d: %2d clients, mean latency %.2fs\n", t.ID+1, len(t.Members), t.MeanLatency)
	}

	policy, perr := parsePolicy(*policyFlag, *perRound)
	if perr != nil {
		fail("%v", perr)
	}

	cfg := tifl.Config{
		Rounds: *rounds, ClientsPerRound: *perRound, LocalEpochs: 1, BatchSize: 10, Seed: *seed,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, spec.Dim, []int{32}, spec.NumClasses, 0)
		},
		Optimizer: func(round int) nn.Optimizer {
			return nn.NewRMSprop(0.01*math.Pow(0.995, float64(round)), 0.995)
		},
		EvalEvery: maxInt(1, *rounds/20),
		EvalBatch: 256,
		Parallel:  true,
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fail("creating trace file: %v", err)
		}
		rec := trace.NewRecorder(f)
		cfg.OnRound = trace.RoundHook(rec, core.TierOf(sys.Tiers()))
		defer func() {
			if err := rec.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "tifl: flushing trace: %v\n", err)
			}
			f.Close() //nolint:errcheck // read-back not needed
			fmt.Printf("trace: %d rounds written to %s\n", rec.Events(), *traceFile)
		}()
	}
	res := sys.Train(cfg, test, policy)

	fmt.Printf("\nround  sim-time[s]  accuracy\n")
	for _, rec := range res.History {
		if !math.IsNaN(rec.Acc) {
			fmt.Printf("%5d  %11.1f  %.4f\n", rec.Round, rec.SimTime, rec.Acc)
		}
	}
	fmt.Printf("\npolicy=%s  rounds=%d  total simulated time=%.1fs  final accuracy=%.4f\n",
		*policyFlag, *rounds, res.TotalTime, res.FinalAcc)
}

func specs() map[string]dataset.Spec {
	return map[string]dataset.Spec{
		"cifar10": dataset.CIFAR10Like,
		"mnist":   dataset.MNISTLike,
		"fmnist":  dataset.FashionMNISTLike,
		"femnist": dataset.FEMNISTLike,
	}
}

func parsePolicy(name string, perRound int) (tifl.Policy, error) {
	switch name {
	case "vanilla":
		return tifl.Vanilla(), nil
	case "adaptive":
		return tifl.Adaptive(tifl.AdaptiveConfig{ClientsPerRound: perRound, Interval: 10, TestPerTier: 200}), nil
	}
	for _, p := range append(core.PoliciesCIFAR(), core.PoliciesMNIST()...) {
		if p.Name == name {
			return tifl.Static(p), nil
		}
	}
	return tifl.Policy{}, fmt.Errorf("unknown policy %q", name)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tifl: "+format+"\n", args...)
	os.Exit(2)
}
