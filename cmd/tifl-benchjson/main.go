// Command tifl-benchjson converts `go test -bench` output on stdin into a
// JSON benchmark report on stdout, so CI can archive the perf trajectory
// (BENCH_<pr>.json artifacts) and humans can diff runs:
//
//	go test -run=NONE -bench=. -benchmem -benchtime=1x ./... | tifl-benchjson > BENCH_5.json
//
// Lines that are not benchmark results (headers, pkg footers) are ignored.
// ns/op is always present; allocs/op and B/op appear when the bench ran
// with -benchmem or calls b.ReportAllocs.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	// Metrics collects custom b.ReportMetric units (e.g. "rounds/sec",
	// "bytes/client" from BenchmarkExtMillion), keyed by unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_<pr>.json shape. Headline is free-form space for
// human-curated context (e.g. the PR's before/after comparison) and is
// preserved empty by this tool.
type Report struct {
	Headline map[string]any `json:"headline,omitempty"`
	Results  []Result       `json:"results"`
}

func main() {
	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tifl-benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(Report{Results: results}); err != nil {
		fmt.Fprintf(os.Stderr, "tifl-benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) ([]Result, error) {
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Result
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		r, ok := parseLine(line)
		if ok {
			out = append(out, r)
		}
	}
	return out, sc.Err()
}

// parseLine handles the standard format:
//
//	BenchmarkName-8   	 1000	 1234 ns/op	 56 B/op	 7 allocs/op
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Result{}, false
	}
	name := trimProcs(f[0])
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Result{}, false
			}
			r.NsPerOp = v
			seen = true
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = &v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = &v
			}
		default:
			// Custom b.ReportMetric units: anything of the shape
			// "<value> <unit>" with a parseable value and a unit
			// containing a slash or letters (so stray tokens are skipped).
			if v, err := strconv.ParseFloat(val, 64); err == nil && unit != "" {
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = v
			}
		}
	}
	return r, seen
}

// trimProcs strips the numeric -N GOMAXPROCS suffix go test appends to
// benchmark names, so reports diff cleanly across machines.
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
