// Package tifl is the public API of this reproduction of "TiFL: A
// Tier-based Federated Learning System" (Chai et al., HPDC 2020).
//
// TiFL mitigates the straggler problem of synchronous cross-device
// federated learning: it profiles client response latencies, groups clients
// into tiers, and selects each round's participants from a single tier — by
// a fixed policy (Table 1 of the paper) or adaptively based on per-tier
// test accuracy under per-tier credit budgets (Algorithm 2).
//
// Quickstart:
//
//	clients := ...                             // your federated population
//	sys, err := tifl.New(clients, tifl.Options{})
//	res := sys.Train(cfg, testSet, tifl.Adaptive(tifl.AdaptiveConfig{ClientsPerRound: 5}))
//
// See examples/ for runnable end-to-end programs and internal/experiments
// for the paper's full evaluation harness.
package tifl

import (
	"fmt"
	"time"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/estimate"
	"repro/internal/flcore"
	"repro/internal/flnet"
	"repro/internal/privacy"
	"repro/internal/simres"
	"repro/internal/tiering"
)

// Re-exported building blocks, so downstream users need only this package.
type (
	// Client is one federated data party (see flcore.Client).
	Client = flcore.Client
	// Config holds federated training hyperparameters (see flcore.Config).
	Config = flcore.Config
	// Result is a finished training job (see flcore.Result).
	Result = flcore.Result
	// Dataset is a labeled feature dataset (see dataset.Dataset).
	Dataset = dataset.Dataset
	// Tier is one latency group of clients (see core.Tier).
	Tier = core.Tier
	// StaticPolicy is a fixed tier-probability policy (see core.StaticPolicy).
	StaticPolicy = core.StaticPolicy
	// AdaptiveConfig parameterizes Algorithm 2 (see core.AdaptiveConfig).
	AdaptiveConfig = core.AdaptiveConfig
	// ProfilerConfig controls latency profiling (see core.ProfilerConfig).
	ProfilerConfig = core.ProfilerConfig
	// LatencyModel maps resources to response latency (see simres.LatencyModel).
	LatencyModel = simres.LatencyModel
	// Guarantee is an (ε, δ) differential-privacy guarantee.
	Guarantee = privacy.Guarantee
	// TieredAsyncConfig configures FedAT-style tiered-asynchronous training
	// (see flcore.TieredAsyncConfig).
	TieredAsyncConfig = flcore.TieredAsyncConfig
	// TieredAsyncResult is a finished tiered-asynchronous job with its
	// per-tier commit log (see flcore.TieredAsyncResult).
	TieredAsyncResult = flcore.TieredAsyncResult
	// TierWeightFunc supplies cross-tier aggregation weights (see
	// flcore.TierWeightFunc).
	TierWeightFunc = flcore.TierWeightFunc
	// NetTieredAsyncResult is a finished distributed tiered-asynchronous
	// job with its per-commit log (see flnet.TieredAsyncRunResult).
	NetTieredAsyncResult = flnet.TieredAsyncRunResult
	// Codec compresses client updates on their way to the aggregator (see
	// compress.Codec). Int8Codec, TopKCodec, and ParseCodec build them.
	Codec = compress.Codec
	// Downlink delta-compresses the broadcast (aggregator → worker)
	// direction against each worker's last-acked model version (see
	// compress.Downlink). Delta, DeltaCodec, and ParseDownlink build them;
	// nil means dense snapshots.
	Downlink = compress.Downlink
	// TieredCheckpoint is a crash-safe snapshot of a tiered-asynchronous
	// run — simulated or distributed (see flcore.TieredCheckpoint).
	TieredCheckpoint = flcore.TieredCheckpoint
)

// LoadTieredCheckpointFile reads a durable TieredCheckpoint written by a
// tiered-async run (NetOptions.CheckpointPath, or the sim engine's
// SaveFile), falling back to the rotated previous snapshot when the newest
// file is truncated or corrupt (see flcore.LoadTieredCheckpointFile).
func LoadTieredCheckpointFile(path string) (*TieredCheckpoint, error) {
	return flcore.LoadTieredCheckpointFile(path)
}

// Update-compression constructors, re-exported so downstream users need
// only this package.

// Int8Codec is uniform 8-bit quantization with per-chunk scales (~8x
// smaller uplink updates; see compress.Int8).
func Int8Codec() Codec { return compress.NewInt8(0) }

// TopKCodec keeps only the given fraction of each update's coordinates
// (fraction 0.1 ≈ 10x smaller uplink updates; see compress.TopK).
func TopKCodec(fraction float64) Codec { return compress.NewTopK(fraction) }

// ParseCodec builds a codec from a spec string: "none", "int8", or
// "topk@0.1" (see compress.Parse) — the syntax of tifl-node's -codec flag.
func ParseCodec(spec string) (Codec, error) { return compress.Parse(spec) }

// Delta is the lossless downlink mode: broadcasts travel as the
// DEFLATE-compressed XOR of float64 bit patterns against each worker's
// last-acked version, reconstructing bit-exactly (see compress.Downlink).
func Delta() *Downlink { return &compress.Downlink{} }

// DeltaCodec is a lossy downlink mode: the broadcast delta runs through
// the given codec, with the encoding error kept as a server-side
// per-tier error-feedback residual. Prefer quantizing codecs (Int8Codec):
// sparsified broadcast destabilizes FedAT's commit mixing (see the
// ext_downlink experiment).
func DeltaCodec(c Codec) *Downlink { return &compress.Downlink{Codec: c} }

// ParseDownlink builds a downlink mode from a spec string: "dense",
// "delta", or "delta+<codec>" (see compress.ParseDownlink) — the syntax
// of tifl-node's -downlink-codec flag.
func ParseDownlink(spec string) (*Downlink, error) { return compress.ParseDownlink(spec) }

// The paper's Table 1 policies, re-exported.
var (
	PolicySlow    = core.PolicySlow
	PolicyUniform = core.PolicyUniform
	PolicyRandom  = core.PolicyRandom
	PolicyFast    = core.PolicyFast
	PolicyFast1   = core.PolicyFast1
	PolicyFast2   = core.PolicyFast2
	PolicyFast3   = core.PolicyFast3
)

// Options configures profiling and tiering for a System.
type Options struct {
	// Latency is the resource model used for profiling and training
	// latencies; zero value uses simres.DefaultModel.
	Latency LatencyModel
	// Profiler overrides the profiling pass; zero value uses
	// core.DefaultProfiler.
	Profiler ProfilerConfig
	// NumTiers is m, the number of latency tiers (default 5, the paper's
	// setting).
	NumTiers int
	// EqualWidthTiers selects the paper's equal-width histogram split
	// instead of the default balanced quantile split.
	EqualWidthTiers bool
	// CompressionOptions supplies the default update codec for every
	// training job on this system: client updates are compressed with
	// error feedback and the latency model charges for encoded bytes. A
	// job's config can still override it by setting its own Codec;
	// AdaptiveCompression applies to distributed jobs only.
	CompressionOptions
	// TieringOptions makes the tiered-async jobs re-tier mid-run instead
	// of freezing the profiled tiers (internal/tiering). They apply to
	// TrainTieredAsync, TrainTieredAsyncNet, and TrainTieredAsyncTree;
	// NetOptions can override them per distributed job.
	TieringOptions
}

// System is a profiled and tiered federation, ready to train under any
// selection policy.
type System struct {
	clients  []*Client
	latency  LatencyModel
	tiers    []Tier
	dropouts []int
	codec    Codec           // default update compression (Options.Compression)
	profile  map[int]float64 // profiled per-client latencies (Manager seeding)
	opts     Options         // live-tiering defaults
}

// New profiles the clients and builds tiers. It returns an error if the
// population is empty or profiling excludes every client.
func New(clients []*Client, opts Options) (*System, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("tifl: no clients")
	}
	lm := opts.Latency
	if lm == (LatencyModel{}) {
		lm = simres.DefaultModel
	}
	pc := opts.Profiler
	if pc.SyncRounds == 0 {
		pc = core.DefaultProfiler
	}
	m := opts.NumTiers
	if m == 0 {
		m = 5
	}
	prof := core.Profile(clients, lm, pc)
	if len(prof.Latency) == 0 {
		return nil, fmt.Errorf("tifl: all %d clients dropped out during profiling", len(clients))
	}
	strategy := core.Quantile
	if opts.EqualWidthTiers {
		strategy = core.EqualWidth
	}
	tiers := core.BuildTiers(prof.Latency, m, strategy)
	return &System{
		clients: clients, latency: lm, tiers: tiers, dropouts: prof.Dropouts,
		codec: opts.Compression, profile: prof.Latency, opts: opts,
	}, nil
}

// Tiers returns the latency tiers, fastest first.
func (s *System) Tiers() []Tier { return s.tiers }

// Dropouts returns clients excluded during profiling.
func (s *System) Dropouts() []int { return s.dropouts }

// Clients returns the profiled population.
func (s *System) Clients() []*Client { return s.clients }

// Policy selects how each round's clients are chosen.
type Policy struct {
	kind     policyKind
	static   StaticPolicy
	adaptive AdaptiveConfig
}

type policyKind int

const (
	kindVanilla policyKind = iota
	kindStatic
	kindAdaptive
)

// Vanilla is conventional FL: |C| clients uniformly from the whole pool.
func Vanilla() Policy { return Policy{kind: kindVanilla} }

// Static selects tiers by the fixed probabilities of p (Section 4.3).
func Static(p StaticPolicy) Policy { return Policy{kind: kindStatic, static: p} }

// Adaptive selects tiers by Algorithm 2 (Section 4.4).
func Adaptive(cfg AdaptiveConfig) Policy { return Policy{kind: kindAdaptive, adaptive: cfg} }

// Selector materializes the policy against this system's tiers; the result
// plugs into a flcore.Engine. clientsPerRound is |C|.
func (s *System) Selector(p Policy, clientsPerRound int) flcore.Selector {
	switch p.kind {
	case kindVanilla:
		return &flcore.RandomSelector{NumClients: len(s.clients), ClientsPerRound: clientsPerRound}
	case kindStatic:
		return core.NewStaticSelector(s.tiers, p.static, clientsPerRound)
	case kindAdaptive:
		cfg := p.adaptive
		if cfg.ClientsPerRound == 0 {
			cfg.ClientsPerRound = clientsPerRound
		}
		return core.NewAdaptiveSelector(s.tiers, s.clients, cfg)
	default:
		panic(fmt.Sprintf("tifl: unknown policy kind %d", p.kind))
	}
}

// Train runs a federated training job over this system's clients with the
// given policy, evaluating on test.
func (s *System) Train(cfg Config, test *Dataset, p Policy) *Result {
	return s.Engine(cfg, test).Run(s.Selector(p, cfg.ClientsPerRound))
}

// Engine builds a training engine over this system's clients for callers
// that need the lower-level API: checkpoint/resume (flcore.Checkpoint),
// custom round loops, or manual update handling. The system's latency
// model is applied when cfg leaves it zero.
func (s *System) Engine(cfg Config, test *Dataset) *flcore.Engine {
	if cfg.Latency == (LatencyModel{}) {
		cfg.Latency = s.latency
	}
	if cfg.Codec == nil {
		cfg.Codec = s.codec
	}
	return flcore.NewEngine(cfg, s.clients, test)
}

// FedATWeights is FedAT's slower-tier-favoring cross-tier weighting (see
// core.FedATWeights), the default for TrainTieredAsync.
func FedATWeights() TierWeightFunc { return core.FedATWeights() }

// UniformTierWeights mixes every tier commit at the neutral base rate (see
// core.UniformTierWeights).
func UniformTierWeights() TierWeightFunc { return core.UniformTierWeights() }

// tieringManager builds the live tiering Manager from the system's
// profiled latencies when the effective options ask for one (RetierEvery
// > 0 or AdaptiveSelection); nil keeps the profiled tiers frozen.
func (s *System) tieringManager(o Options, clientsPerRound int, seed int64) (flcore.TierManager, error) {
	if !o.Live() {
		return nil, nil
	}
	mgr, err := tiering.NewManager(tiering.Config{
		NumTiers:        len(s.tiers),
		RetierEvery:     o.RetierEvery,
		EWMABeta:        o.EWMABeta,
		EqualWidth:      o.EqualWidthTiers,
		ClientsPerRound: clientsPerRound,
		Seed:            seed,
		Adaptive:        o.AdaptiveSelection,
		Credits:         o.Credits,
	}, s.profile)
	if err != nil {
		return nil, fmt.Errorf("tifl: building tiering manager: %w", err)
	}
	return mgr, nil
}

// TrainTieredAsync runs FedAT-style tiered-asynchronous training over this
// system's tiers: each tier runs its own synchronous mini-FedAvg rounds,
// tiers advance asynchronously over simulated time, and every committed
// tier round is mixed into the global model with a staleness-discounted,
// slower-tier-favoring weight. The system's latency model and FedAT's
// cross-tier weights are applied when cfg leaves them zero. When the
// system's Options enable live tiering (RetierEvery / AdaptiveSelection),
// a tiering.Manager owns membership for the run: observed latencies feed
// its EWMA estimates and clients migrate between the tier loops at its
// rebuild points.
func (s *System) TrainTieredAsync(cfg TieredAsyncConfig, test *Dataset) *TieredAsyncResult {
	if cfg.Latency == (LatencyModel{}) {
		cfg.Latency = s.latency
	}
	if cfg.TierWeight == nil {
		cfg.TierWeight = core.FedATWeights()
	}
	if cfg.Codec == nil {
		cfg.Codec = s.codec
	}
	if cfg.Downlink == nil {
		cfg.Downlink = s.opts.Downlink
	}
	if cfg.Manager == nil {
		mgr, err := s.tieringManager(s.opts, cfg.ClientsPerRound, cfg.Seed)
		if err != nil {
			panic(err) // invalid Options surface at construction, like flcore's config panics
		}
		cfg.Manager = mgr
	}
	if cfg.Manager != nil {
		return flcore.RunTieredAsync(cfg, nil, s.clients, test)
	}
	return flcore.RunTieredAsync(cfg, core.TierMembers(s.tiers), s.clients, test)
}

// NetOptions configures the socket layer of a distributed tiered-async run
// (TrainTieredAsyncNet).
type NetOptions struct {
	// Addr is the aggregator listen address (default "127.0.0.1:0", an
	// ephemeral loopback port).
	Addr string
	// GlobalCommits is the number of tier-round commits to apply before
	// finishing — the wall-clock analogue of TieredAsyncConfig.Duration.
	GlobalCommits int
	// RoundTimeout bounds each tier mini-round (default 60s).
	RoundTimeout time.Duration
	// WorkerTimeout bounds the registration wait (default 30s).
	WorkerTimeout time.Duration
	// CompressionOptions is the wire codec policy for this job: workers
	// negotiate Compression at registration (trained deltas travel as
	// compressed MsgCompressedUpdate payloads with the error-feedback
	// residual kept worker-side; defaults to the training config's Codec
	// or the system's Options.Compression, so a simulated and a
	// distributed run of the same job compress identically), and
	// AdaptiveCompression makes the codec tier-aware — the slower half of
	// the profiled tiers negotiates the configured codec (top-k@10% when
	// none is configured) while fast-tier workers stay dense, and live
	// re-tierings renegotiate a migrating worker's codec over the
	// reassignment envelope so it follows its tier.
	CompressionOptions
	// CheckpointOptions snapshots the distributed run every
	// CheckpointEvery applied commits as a durable TieredCheckpoint at
	// CheckpointPath. See cmd/tifl-node for the resume flow.
	CheckpointOptions
	// MetricsAddr, when set (e.g. "127.0.0.1:9090"), serves the
	// aggregator's live observability endpoint: GET /metrics returns a
	// flnet.MetricsSnapshot as JSON, GET /healthz returns 200.
	MetricsAddr string
	// TieringOptions overrides the system Options' live-tiering fields for
	// this distributed job when non-zero (TieringOptions.Overlay
	// precedence). Not supported by TrainTieredAsyncTree.
	TieringOptions
	// RobustnessOptions turns on the self-healing layer for this job:
	// worker reconnect loops, per-RPC deadlines, bounded idempotent
	// redispatch, and rejoin grace windows. Zero values keep the strict
	// fail-stop behaviour.
	RobustnessOptions
}

// TrainTieredAsyncNet runs the same FedAT-style protocol as
// TrainTieredAsync, but over real TCP: it starts a
// flnet.TieredAsyncAggregator on net.Addr, launches one in-process flnet
// worker per client (each training via the engine's deterministic
// per-client pass, so local computation matches the simulation exactly),
// partitions the workers into this system's profiled tiers, and drives
// per-tier mini-FedAvg rounds with asynchronous staleness-weighted commits
// until net.GlobalCommits commits have been applied. cfg supplies the
// training hyperparameters; its Duration, EvalInterval, and OnCommit fields
// are ignored — pacing is real wall clock here. The final model is
// evaluated on test when it is non-nil.
func (s *System) TrainTieredAsyncNet(cfg TieredAsyncConfig, net NetOptions, test *Dataset) (*NetTieredAsyncResult, float64, error) {
	if cfg.Latency == (LatencyModel{}) {
		cfg.Latency = s.latency
	}
	if cfg.TierWeight == nil {
		cfg.TierWeight = core.FedATWeights()
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 10
	}
	if cfg.LocalEpochs == 0 {
		cfg.LocalEpochs = 1
	}
	if net.Addr == "" {
		net.Addr = "127.0.0.1:0"
	}
	if net.RoundTimeout == 0 {
		net.RoundTimeout = 60 * time.Second
	}
	if net.WorkerTimeout == 0 {
		net.WorkerTimeout = 30 * time.Second
	}
	if cfg.Model == nil || cfg.Optimizer == nil {
		return nil, 0, fmt.Errorf("tifl: TrainTieredAsyncNet needs Model and Optimizer factories")
	}
	if net.Compression == nil {
		if cfg.Codec != nil {
			net.Compression = cfg.Codec
		} else {
			net.Compression = s.codec
		}
	}
	if !net.AdaptiveCompression {
		net.AdaptiveCompression = s.opts.AdaptiveCompression
	}
	if net.Downlink == nil {
		if cfg.Downlink != nil {
			net.Downlink = cfg.Downlink
		} else {
			net.Downlink = s.opts.Downlink
		}
	}
	// Effective live-tiering options: NetOptions overrides, Options
	// defaults.
	topts := s.opts
	topts.TieringOptions = net.TieringOptions.Overlay(s.opts.TieringOptions)
	mgr, err := s.tieringManager(topts, cfg.ClientsPerRound, cfg.Seed)
	if err != nil {
		return nil, 0, err
	}
	// Workers compress at the wire (flnet.WorkerConfig.Codec), so the
	// local training engine stays dense — compressing in both places would
	// double-apply the codec and split the error-feedback residual.
	eng := flcore.NewEngine(flcore.Config{
		Rounds: 1, ClientsPerRound: 1, LocalEpochs: cfg.LocalEpochs,
		BatchSize: cfg.BatchSize, Seed: cfg.Seed,
		Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: cfg.Latency,
	}, s.clients, nil)
	init := eng.GlobalWeights()
	agg, err := flnet.NewTieredAsyncAggregator(net.Addr, flnet.TieredAsyncConfig{
		GlobalCommits: net.GlobalCommits, ClientsPerRound: cfg.ClientsPerRound,
		Alpha: cfg.Alpha, StalenessExp: cfg.StalenessExp, TierWeight: cfg.TierWeight,
		RoundTimeout: net.RoundTimeout, InitialWeights: init, Seed: cfg.Seed,
		Manager:         mgr,
		CheckpointEvery: net.CheckpointEvery, CheckpointPath: net.CheckpointPath,
		MetricsAddr:   net.MetricsAddr,
		ReassignCodec: net.ReassignPolicy(),
		Downlink:      net.Downlink,
		MaxRetries:    net.MaxRetries, RejoinWait: net.RejoinWait,
		SendTimeout: net.RPCTimeout,
	})
	if err != nil {
		return nil, 0, err
	}
	defer agg.Close()
	tierOf := core.TierOf(s.tiers)
	for i := range s.clients {
		idx := i
		go flnet.RunWorker(agg.Addr(), flnet.WorkerConfig{ //nolint:errcheck // worker exits with the aggregator
			ClientID: idx, NumSamples: s.clients[idx].NumSamples(),
			Codec:     net.TierCodec(tierOf[idx], len(s.tiers)),
			Reconnect: net.Reconnect, MaxReconnects: net.MaxRetries,
			RPCTimeout: net.RPCTimeout,
			Train: func(round int, weights []float64) ([]float64, int, error) {
				u := eng.TrainClient(round, idx, weights)
				return u.Weights, u.NumSamples, nil
			},
		})
	}
	if err := agg.WaitForWorkers(len(s.clients), net.WorkerTimeout); err != nil {
		return nil, 0, err
	}
	var tiers [][]int
	if mgr == nil {
		tiers = core.TierMembers(s.tiers)
	}
	res, err := agg.Run(tiers)
	if err != nil {
		return nil, 0, err
	}
	acc := 0.0
	if test != nil {
		model := eng.GlobalModel()
		model.SetWeightsVector(res.Weights)
		acc, _ = model.Evaluate(test.InputTensor(), test.Y, cfg.EvalBatch)
	}
	return res, acc, nil
}

// TrainTieredAsyncTree runs the same FedAT-style protocol as
// TrainTieredAsyncNet, but over the hierarchical topology: one
// flnet.Child aggregator per profiled tier (each on its own ephemeral
// loopback port, pre-reducing its tier's mini-FedAvg rounds at the edge)
// behind one tree root, with every leaf worker registered at its tier's
// child rather than the root. Leaves negotiate codecs with their child
// under the same CompressionOptions policy as the flat run, and the
// children report uplink traffic upstream into the root's metrics
// endpoint. Live tiering is not supported over the tree — membership is
// fixed at the profiled tiers — so effective TieringOptions asking for a
// Manager (RetierEvery / AdaptiveSelection) are an error.
func (s *System) TrainTieredAsyncTree(cfg TieredAsyncConfig, net NetOptions, test *Dataset) (*NetTieredAsyncResult, float64, error) {
	if cfg.TierWeight == nil {
		cfg.TierWeight = core.FedATWeights()
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 10
	}
	if cfg.LocalEpochs == 0 {
		cfg.LocalEpochs = 1
	}
	if net.Addr == "" {
		net.Addr = "127.0.0.1:0"
	}
	if net.RoundTimeout == 0 {
		net.RoundTimeout = 60 * time.Second
	}
	if net.WorkerTimeout == 0 {
		net.WorkerTimeout = 30 * time.Second
	}
	if cfg.Model == nil || cfg.Optimizer == nil {
		return nil, 0, fmt.Errorf("tifl: TrainTieredAsyncTree needs Model and Optimizer factories")
	}
	if net.Compression == nil {
		if cfg.Codec != nil {
			net.Compression = cfg.Codec
		} else {
			net.Compression = s.codec
		}
	}
	if !net.AdaptiveCompression {
		net.AdaptiveCompression = s.opts.AdaptiveCompression
	}
	if net.Downlink == nil {
		if cfg.Downlink != nil {
			net.Downlink = cfg.Downlink
		} else {
			net.Downlink = s.opts.Downlink
		}
	}
	if topts := net.TieringOptions.Overlay(s.opts.TieringOptions); topts.Live() {
		return nil, 0, fmt.Errorf("tifl: live tiering (RetierEvery/AdaptiveSelection) is not supported over the tree topology; use TrainTieredAsyncNet")
	}
	eng := flcore.NewEngine(flcore.Config{
		Rounds: 1, ClientsPerRound: 1, LocalEpochs: cfg.LocalEpochs,
		BatchSize: cfg.BatchSize, Seed: cfg.Seed,
		Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: cfg.Latency,
	}, s.clients, nil)
	init := eng.GlobalWeights()
	root, err := flnet.NewTieredAsyncAggregator(net.Addr, flnet.TieredAsyncConfig{
		GlobalCommits: net.GlobalCommits, ClientsPerRound: cfg.ClientsPerRound,
		Alpha: cfg.Alpha, StalenessExp: cfg.StalenessExp, TierWeight: cfg.TierWeight,
		RoundTimeout: net.RoundTimeout, InitialWeights: init, Seed: cfg.Seed,
		CheckpointEvery: net.CheckpointEvery, CheckpointPath: net.CheckpointPath,
		MetricsAddr: net.MetricsAddr,
		Downlink:    net.Downlink,
		MaxRetries:  net.MaxRetries, RejoinWait: net.RejoinWait,
		SendTimeout: net.RPCTimeout,
	})
	if err != nil {
		return nil, 0, err
	}
	defer root.Close()
	children := make([]*flnet.Child, len(s.tiers))
	for t, tier := range s.tiers {
		ch, err := flnet.NewChild(flnet.ChildConfig{
			ID: t, RootAddr: root.Addr(), Workers: len(tier.Members),
			WorkerTimeout: net.WorkerTimeout, RoundTimeout: net.RoundTimeout,
			Downlink:   net.Downlink,
			RPCTimeout: net.RPCTimeout, MaxRetries: net.MaxRetries,
			RejoinWait: net.RejoinWait,
		})
		if err != nil {
			return nil, 0, fmt.Errorf("tifl: starting child aggregator %d: %w", t, err)
		}
		defer ch.Close()
		children[t] = ch
		go ch.Run() //nolint:errcheck // child exits with the root
		for _, ci := range tier.Members {
			idx := ci
			go flnet.RunWorker(ch.Addr(), flnet.WorkerConfig{ //nolint:errcheck // worker exits with its child
				ClientID: idx, NumSamples: s.clients[idx].NumSamples(),
				Codec:     net.TierCodec(t, len(s.tiers)),
				Reconnect: net.Reconnect, MaxReconnects: net.MaxRetries,
				RPCTimeout: net.RPCTimeout,
				Train: func(round int, weights []float64) ([]float64, int, error) {
					u := eng.TrainClient(round, idx, weights)
					return u.Weights, u.NumSamples, nil
				},
			})
		}
	}
	if err := root.WaitForChildren(len(s.tiers), net.WorkerTimeout); err != nil {
		return nil, 0, err
	}
	res, err := root.RunTree()
	if err != nil {
		return nil, 0, err
	}
	acc := 0.0
	if test != nil {
		model := eng.GlobalModel()
		model.SetWeightsVector(res.Weights)
		acc, _ = model.Evaluate(test.InputTensor(), test.Y, cfg.EvalBatch)
	}
	return res, acc, nil
}

// EstimateTrainingTime applies the paper's estimation model (Eq. 6) to a
// static policy over this system's tiers.
func (s *System) EstimateTrainingTime(p StaticPolicy, rounds int) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if len(p.Probs) != len(s.tiers) {
		return 0, fmt.Errorf("tifl: policy %q has %d probabilities for %d tiers", p.Name, len(p.Probs), len(s.tiers))
	}
	return estimate.TrainingTime(core.TierLatencies(s.tiers), p.Probs, rounds), nil
}

// PrivacyGuarantee reports the per-round client-level DP guarantee under
// tier-based selection with the given tier weights θ (Section 4.6), given
// each client's local round is base-DP.
func (s *System) PrivacyGuarantee(base Guarantee, thetas []float64, clientsPerRound int) (Guarantee, error) {
	if len(thetas) != len(s.tiers) {
		return Guarantee{}, fmt.Errorf("tifl: %d tier weights for %d tiers", len(thetas), len(s.tiers))
	}
	sizes := make([]int, len(s.tiers))
	for i, t := range s.tiers {
		sizes[i] = len(t.Members)
	}
	g, _ := privacy.AmplifyTiered(base, thetas, sizes, clientsPerRound)
	return g, nil
}
