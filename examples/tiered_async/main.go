// Tiered-asynchronous training: the FedAT-style hybrid between TiFL's
// synchronous tier-based rounds and fully asynchronous FL. Each tier runs
// its own synchronous mini-FedAvg loop, tiers advance independently over
// simulated time, and every committed tier round is mixed into the global
// model with a staleness-discounted, slower-tier-favoring weight. The
// example trains the same heterogeneous federation three ways — TiFL
// adaptive (sync), FedAsync, and tiered-async — on one shared wall-clock
// budget and reports which design reaches the best accuracy.
package main

import (
	"fmt"
	"math"
	"math/rand"

	tifl "repro"
	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/nn"
	"repro/internal/simres"
)

func main() {
	train := dataset.Generate(dataset.CIFAR10Like, 5000, 1)
	test := dataset.Generate(dataset.CIFAR10Like, 1000, 2)
	rng := rand.New(rand.NewSource(3))
	parts := dataset.PartitionIID(train.Len(), 50, rng)
	cpus := simres.AssignGroups(50, simres.GroupsCIFAR)
	clients := flcore.BuildClients(train, test, parts, cpus, 50, 4)

	sys, err := tifl.New(clients, tifl.Options{})
	if err != nil {
		panic(err)
	}

	cfg := tifl.Config{
		Rounds: 40, ClientsPerRound: 5, LocalEpochs: 1, BatchSize: 10, Seed: 5,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, dataset.CIFAR10Like.Dim, []int{32}, 10, 0)
		},
		Optimizer: func(round int) nn.Optimizer {
			return nn.NewRMSprop(0.01*math.Pow(0.995, float64(round)), 0.995)
		},
		EvalEvery: 10,
		Parallel:  true,
	}

	// Synchronous TiFL sets the shared simulated-time budget.
	sync := sys.Train(cfg, test, tifl.Adaptive(tifl.AdaptiveConfig{Interval: 10, TestPerTier: 200}))
	budget := sync.TotalTime

	async := flcore.RunAsync(flcore.AsyncConfig{
		Duration: budget, Concurrency: 5, EvalInterval: budget / 10,
		Seed: 5, BatchSize: 10, LocalEpochs: 1,
		Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: simres.DefaultModel,
		EvalBatch: 256,
	}, clients, test)

	// Tiered-async: FedAT cross-tier weights are the default.
	tiered := sys.TrainTieredAsync(tifl.TieredAsyncConfig{
		Duration: budget, ClientsPerRound: 5, EvalInterval: budget / 10,
		Seed: 5, BatchSize: 10, LocalEpochs: 1,
		Model: cfg.Model, Optimizer: cfg.Optimizer, EvalBatch: 256,
	}, test)

	fmt.Printf("shared simulated budget: %.1fs\n\n", budget)
	fmt.Printf("%-22s %-12s %-12s\n", "system", "time [s]", "accuracy")
	fmt.Printf("%-22s %-12.1f %-12.4f\n", "TiFL (adaptive, sync)", sync.TotalTime, sync.FinalAcc)
	fmt.Printf("%-22s %-12.1f %-12.4f\n", "FedAsync", async.TotalTime, async.FinalAcc)
	fmt.Printf("%-22s %-12.1f %-12.4f\n", "FedAT (tiered-async)", tiered.TotalTime, tiered.FinalAcc)

	fmt.Println("\ncommits per tier (fastest first):")
	for t, n := range tiered.Commits {
		fmt.Printf("  tier %d: %d rounds\n", t+1, n)
	}

	// Live tiering (internal/tiering): the same tiered-async run, but the
	// fastest CPU group collapses to 5% capacity mid-run. With
	// RetierEvery set, observed round latencies feed EWMA estimates and
	// the drifted clients migrate out of the fast tier at rebuild points,
	// so the fast tier keeps committing at full speed.
	drifted := flcore.BuildClients(train, test, parts, cpus, 50, 4)
	perGroup := len(drifted) / 5
	for i := 0; i < perGroup; i++ {
		// Latched: once drifted, a client stays slow even after migrating
		// to a tier whose local round counter is still below the
		// threshold — otherwise migration would un-drift it and the next
		// rebuild would pull it straight back.
		latched := false
		drifted[i].Drift = func(round int) float64 {
			if round >= 5 {
				latched = true
			}
			if latched {
				return 0.05
			}
			return 1
		}
	}
	liveSys, err := tifl.New(drifted, tifl.Options{TieringOptions: tifl.TieringOptions{RetierEvery: 25}})
	if err != nil {
		panic(err)
	}
	live := liveSys.TrainTieredAsync(tifl.TieredAsyncConfig{
		Duration: budget, ClientsPerRound: 5, EvalInterval: budget / 10,
		Seed: 5, BatchSize: 10, LocalEpochs: 1,
		Model: cfg.Model, Optimizer: cfg.Optimizer, EvalBatch: 256,
	}, test)
	fmt.Printf("\nlive re-tiering under mid-run drift: %d re-tierings moved %d clients, final accuracy %.4f\n",
		live.Retiers, live.Migrations, live.FinalAcc)
}
