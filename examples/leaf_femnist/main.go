// LEAF FEMNIST study (the Fig. 9 scenario): a LEAF-like population with
// inherent quantity and class heterogeneity plus the paper's resource
// overlay, trained with LEAF's default hyperparameters (SGD lr 0.004,
// batch 10, 10 clients per round) under vanilla, fast, and adaptive
// selection.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/flcore"
	"repro/internal/leaf"
	"repro/internal/metrics"
	"repro/internal/simres"
)

func main() {
	var (
		clients = flag.Int("clients", 48, "population size (182 = paper scale)")
		rounds  = flag.Int("rounds", 60, "training rounds (2000 = paper scale)")
	)
	flag.Parse()

	popCfg := leaf.Default
	popCfg.NumClients = *clients
	popCfg.MeanSamples = 80
	pop := leaf.Build(popCfg)
	fmt.Printf("LEAF population: %d writers, %d total samples, 62 classes\n",
		len(pop.Clients), flcore.TotalSamples(pop.Clients))

	prof := core.Profile(pop.Clients, simres.DefaultModel, core.DefaultProfiler)
	tiers := core.BuildTiers(prof.Latency, 5, core.Quantile)

	train := leaf.TrainingConfig(*rounds, 7, simres.DefaultModel, 10)

	runs := []struct {
		name string
		sel  func(pop *leaf.Population) flcore.Selector
	}{
		{"vanilla", func(p *leaf.Population) flcore.Selector {
			return &flcore.RandomSelector{NumClients: len(p.Clients), ClientsPerRound: train.ClientsPerRound}
		}},
		{"fast", func(p *leaf.Population) flcore.Selector {
			return core.NewStaticSelector(tiers, core.PolicyFast, train.ClientsPerRound)
		}},
		{"TiFL", func(p *leaf.Population) flcore.Selector {
			return core.NewAdaptiveSelector(tiers, pop.Clients, core.AdaptiveConfig{
				ClientsPerRound: train.ClientsPerRound, Interval: 10, TestPerTier: 200, Seed: 8,
			})
		}},
	}

	var series []metrics.Series
	for _, r := range runs {
		popRun := leaf.Build(popCfg)
		res := flcore.NewEngine(train, popRun.Clients, popRun.GlobalTest).Run(r.sel(popRun))
		series = append(series, metrics.AccuracyOverRounds(res, r.name))
		fmt.Printf("%-8s time %9.1fs  final accuracy %.4f\n", r.name, res.TotalTime, res.FinalAcc)
	}
	fmt.Println()
	tab := metrics.SeriesTable("FEMNIST accuracy over rounds", series, 10)
	fmt.Println(tab.Render())
}
