// Distributed FL over real TCP in one process (the Google FL architecture
// the paper prototypes): an aggregator plus 6 workers on loopback sockets,
// each training a private non-IID shard of a synthetic dataset, with
// network profiling for tiering and 130% over-selection straggler
// mitigation.
//
// A second phase runs the same population under the tiered-asynchronous
// socket protocol (flnet.TieredAsyncAggregator): workers are profiled over
// the network, split into latency tiers, and each tier commits its own
// mini-FedAvg rounds asynchronously into the global model with FedAT's
// staleness-discounted, slower-tier-favoring weights — so the slow worker
// stops gating every round instead of being discarded. Phase-2 workers
// also compress their uplink updates with top-k sparsification (negotiated
// at registration via internal/compress), cutting bytes-on-wire ~10x.
//
// The final phase rebuilds the same job as an aggregation tree: a root
// coordinator plus one child-aggregator process per tier, each running its
// own mini-FedAvg fan-in over its leaf workers and forwarding a single
// pre-reduced update per tier round — the root never talks to a leaf. The
// slow tier's workers compress their uplink; the root's metrics report the
// per-child commit counts and uplink bytes flowing up the tree.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/flnet"
	"repro/internal/nn"
	"repro/internal/tensor"
)

const (
	numWorkers = 6
	rounds     = 15
	perRound   = 3
)

func main() {
	spec := dataset.CIFAR10Like
	arch := func(rng *rand.Rand) *nn.Model {
		return nn.NewMLP(rng, spec.Dim, []int{32}, spec.NumClasses, 0)
	}
	init := arch(rand.New(rand.NewSource(1))).WeightsVector()

	agg, err := flnet.NewAggregator("127.0.0.1:0", flnet.AggregatorConfig{
		Rounds: rounds, ClientsPerRound: perRound, Overselect: 0.3,
		RoundTimeout: 30 * time.Second, InitialWeights: init, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	defer agg.Close()
	fmt.Printf("aggregator on %s; launching %d workers\n", agg.Addr(), numWorkers)

	// Workers: each holds a 2-class shard; worker 5 is artificially slow,
	// exercising the straggler-discard path (sync) and the slow tier
	// (tiered-async). launchWorkers is reused by both phases because
	// workers exit when an aggregator sends Done.
	train := dataset.Generate(spec, 3000, 2)
	parts := dataset.PartitionByClass(train, numWorkers, 2, rand.New(rand.NewSource(3)))
	launchWorkers := func(addr string, codec compress.Codec) *sync.WaitGroup {
		var wg sync.WaitGroup
		for id := 0; id < numWorkers; id++ {
			local := train.Subset(parts[id])
			delay := time.Duration(0)
			if id == numWorkers-1 {
				delay = 400 * time.Millisecond
			}
			wg.Add(1)
			go func(id int, local *dataset.Dataset, delay time.Duration) {
				defer wg.Done()
				trainFn := func(round int, weights []float64) ([]float64, int, error) {
					time.Sleep(delay)
					rng := rand.New(rand.NewSource(int64(id) + int64(round)*7919))
					model := arch(rng)
					model.SetWeightsVector(weights)
					opt := nn.NewRMSprop(0.01, 0.995)
					local.Batches(10, rng, func(x *tensor.Tensor, y []int) {
						model.TrainBatch(x, y, opt)
					})
					return model.WeightsVector(), local.Len(), nil
				}
				if err := flnet.RunWorker(addr, flnet.WorkerConfig{
					ClientID: id, NumSamples: local.Len(), Train: trainFn, Codec: codec,
					OnTierAssign: func(tier, numTiers int) {
						fmt.Printf("  worker %d assigned to tier %d of %d\n", id, tier+1, numTiers)
					},
				}); err != nil {
					fmt.Printf("worker %d: %v\n", id, err)
				}
			}(id, local, delay)
		}
		return &wg
	}
	wg := launchWorkers(agg.Addr(), nil) // phase 1: dense updates

	if err := agg.WaitForWorkers(numWorkers, 30*time.Second); err != nil {
		panic(err)
	}

	// Network profiling: the slow worker shows up immediately.
	lat, _, err := agg.ProfileWorkers(30 * time.Second)
	if err != nil {
		panic(err)
	}
	ids := make([]int, 0, len(lat))
	for id := range lat {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("  profiled worker %d: %.3fs\n", id, lat[id])
	}

	res, err := agg.Run(flnet.UniformSelect(perRound))
	if err != nil {
		panic(err)
	}
	wg.Wait()

	discarded := 0
	for _, rs := range res.Rounds {
		discarded += rs.Discarded
	}
	test := dataset.Generate(spec, 1000, 9)
	model := arch(rand.New(rand.NewSource(1)))
	model.SetWeightsVector(res.Weights)
	acc, _ := model.Evaluate(test.X, test.Y, 256)
	fmt.Printf("\n%d rounds over TCP, %d straggler updates discarded, final accuracy %.4f\n",
		rounds, discarded, acc)

	// Phase 2: tiered-asynchronous over the same sockets. Instead of
	// discarding the slow worker's updates, profile-built tiers let it
	// commit at its own pace with FedAT's cross-tier weighting.
	fmt.Println("\n--- tiered-asynchronous (FedAT-style) over TCP ---")
	tagg, err := flnet.NewTieredAsyncAggregator("127.0.0.1:0", flnet.TieredAsyncConfig{
		GlobalCommits: 8 * rounds, ClientsPerRound: perRound,
		TierWeight:   core.FedATWeights(),
		RoundTimeout: 30 * time.Second, InitialWeights: init, Seed: 1,
		// Broadcasts travel as int8-quantized deltas against each worker's
		// last-acked version (first contact goes dense automatically).
		Downlink: &compress.Downlink{Codec: compress.NewInt8(0)},
	})
	if err != nil {
		panic(err)
	}
	defer tagg.Close()
	twg := launchWorkers(tagg.Addr(), compress.NewTopK(0.1))
	if err := tagg.WaitForWorkers(numWorkers, 30*time.Second); err != nil {
		panic(err)
	}
	tres, tiers, dropouts, err := tagg.ProfileAndRun(2, 30*time.Second)
	if err != nil {
		panic(err)
	}
	if len(dropouts) > 0 {
		fmt.Printf("profiling dropouts: %v\n", dropouts)
	}
	twg.Wait()
	for _, tr := range tiers {
		fmt.Printf("tier %d (mean latency %.3fs): workers %v → %d commits\n",
			tr.ID+1, tr.MeanLatency, tr.Members, tres.Commits[tr.ID])
	}
	model.SetWeightsVector(tres.Weights)
	tacc, _ := model.Evaluate(test.X, test.Y, 256)
	clientsUsed := 0
	for _, s := range tres.Log {
		clientsUsed += s.Clients
	}
	denseBytes := int64(clientsUsed) * int64(compress.DenseBytes(len(init)))
	fmt.Printf("%d async commits over TCP (no updates discarded), final accuracy %.4f\n",
		len(tres.Log), tacc)
	fmt.Printf("uplink %d bytes with top-k@10%% compression (dense would be %d, %.1fx more)\n",
		tres.UplinkBytes, denseBytes, float64(denseBytes)/float64(tres.UplinkBytes))
	fmt.Printf("downlink %d bytes with delta+int8 broadcast (dense would be %d, %.1fx more)\n",
		tres.DownlinkBytes, denseBytes, float64(denseBytes)/float64(tres.DownlinkBytes))

	// Phase 3: crash-safe checkpointing. The same tiered-async job snapshots
	// itself durably every few commits and serves live metrics; we kill the
	// aggregator mid-run, then a fresh process (here: a fresh aggregator)
	// loads the snapshot, the workers reconnect, and training resumes toward
	// the same absolute commit target.
	fmt.Println("\n--- crash-safe tiered-async: checkpoint, kill, resume ---")
	ckptDir, err := os.MkdirTemp("", "tifl-ckpt")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(ckptDir)
	ckptPath := filepath.Join(ckptDir, "run.ckpt")
	const ckptTarget = 6 * rounds
	ckptCfg := flnet.TieredAsyncConfig{
		GlobalCommits: ckptTarget, ClientsPerRound: perRound,
		TierWeight:   core.FedATWeights(),
		RoundTimeout: 30 * time.Second, InitialWeights: init, Seed: 1,
		CheckpointEvery: 5, CheckpointPath: ckptPath,
	}
	crashCfg := ckptCfg
	crashCfg.MetricsAddr = "127.0.0.1:0"
	var cagg *flnet.TieredAsyncAggregator
	var crashOnce sync.Once
	crashCfg.OnCheckpoint = func(c *flcore.TieredCheckpoint) {
		// Halfway through, show the live metrics endpoint and "crash".
		if c.Version < ckptTarget/2 {
			return
		}
		crashOnce.Do(func() {
			if resp, err := http.Get("http://" + cagg.MetricsAddr() + "/metrics"); err == nil {
				var m flnet.MetricsSnapshot
				json.NewDecoder(resp.Body).Decode(&m) //nolint:errcheck // example
				resp.Body.Close()
				fmt.Printf("metrics before the crash: version %d/%d, %d live workers, checkpoint age %.1fs\n",
					m.Version, m.TargetCommits, m.LiveWorkers, m.LastCheckpointAgeSeconds)
			}
			fmt.Printf("simulated crash at version %d (latest snapshot: %s)\n", c.Version, ckptPath)
			go cagg.Close() // async: Close tears down the conns this commit loop serves
		})
	}
	cagg, err = flnet.NewTieredAsyncAggregator("127.0.0.1:0", crashCfg)
	if err != nil {
		panic(err)
	}
	cwg := launchWorkers(cagg.Addr(), nil)
	if err := cagg.WaitForWorkers(numWorkers, 30*time.Second); err != nil {
		panic(err)
	}
	clat, _, err := cagg.ProfileWorkers(30 * time.Second)
	if err != nil {
		panic(err)
	}
	ctiers := core.BuildTiers(clat, 2, core.Quantile)
	if _, err := cagg.Run(core.TierMembers(ctiers)); err != nil {
		fmt.Printf("crashed run ended: %v\n", err)
	}
	cagg.Close()
	cwg.Wait() // the killed workers report their dropped connections above

	// Restart: load the newest durable snapshot (falling back to .prev if
	// the last write was torn) and continue the SAME job — same seed, same
	// absolute commit target — over reconnecting workers.
	ckpt, err := flcore.LoadTieredCheckpointFile(ckptPath)
	if err != nil {
		panic(err)
	}
	ragg, err := flnet.NewTieredAsyncAggregator("127.0.0.1:0", ckptCfg)
	if err != nil {
		panic(err)
	}
	defer ragg.Close()
	rwg := launchWorkers(ragg.Addr(), nil)
	if err := ragg.WaitForWorkers(numWorkers, 30*time.Second); err != nil {
		panic(err)
	}
	if err := ragg.Resume(ckpt); err != nil {
		panic(err) // flnet.ErrRosterChanged would mean re-profile + ResumeModel
	}
	rres, err := ragg.Run(nil) // nil: continue on the checkpointed tiers
	if err != nil {
		panic(err)
	}
	rwg.Wait()
	model.SetWeightsVector(rres.Weights)
	racc, _ := model.Evaluate(test.X, test.Y, 256)
	fmt.Printf("resumed at version %d, applied %d more commits to reach %d, final accuracy %.4f\n",
		ckpt.Version, len(rres.Log), ckptTarget, racc)

	// Phase 4: the same population as an aggregation tree. One child
	// aggregator per tier pre-reduces its workers' updates at the edge and
	// sends the root a single MsgTierCommit per tier round, so root fan-in
	// is O(tiers), not O(workers). The slow child's leaves compress their
	// uplink with top-k; the root's metrics show what each child reported.
	fmt.Println("\n--- hierarchical aggregation tree: root + per-tier child aggregators ---")
	treeTiers := [][]int{{0, 1, 2}, {3, 4, 5}} // fast half, slow half (worker 5's 400ms delay)
	root, err := flnet.NewTieredAsyncAggregator("127.0.0.1:0", flnet.TieredAsyncConfig{
		GlobalCommits: 4 * rounds, ClientsPerRound: perRound,
		TierWeight:   core.FedATWeights(),
		RoundTimeout: 30 * time.Second, InitialWeights: init, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	defer root.Close()
	var twgTree sync.WaitGroup
	for t, members := range treeTiers {
		ch, err := flnet.NewChild(flnet.ChildConfig{
			ID: t, RootAddr: root.Addr(), Workers: len(members),
			RoundTimeout: 30 * time.Second,
		})
		if err != nil {
			panic(err)
		}
		defer ch.Close()
		twgTree.Add(1)
		go func(t int, ch *flnet.Child) {
			defer twgTree.Done()
			if err := ch.Run(); err != nil {
				fmt.Printf("child %d: %v\n", t, err)
			}
		}(t, ch)
		var codec compress.Codec
		if t == len(treeTiers)-1 {
			codec = compress.NewTopK(0.1) // slow tier compresses its uplink
		}
		for _, id := range members {
			local := train.Subset(parts[id])
			delay := time.Duration(0)
			if id == numWorkers-1 {
				delay = 400 * time.Millisecond
			}
			twgTree.Add(1)
			go func(id int, local *dataset.Dataset, delay time.Duration, addr string, codec compress.Codec) {
				defer twgTree.Done()
				trainFn := func(round int, weights []float64) ([]float64, int, error) {
					time.Sleep(delay)
					rng := rand.New(rand.NewSource(int64(id) + int64(round)*7919))
					model := arch(rng)
					model.SetWeightsVector(weights)
					opt := nn.NewRMSprop(0.01, 0.995)
					local.Batches(10, rng, func(x *tensor.Tensor, y []int) {
						model.TrainBatch(x, y, opt)
					})
					return model.WeightsVector(), local.Len(), nil
				}
				if err := flnet.RunWorker(addr, flnet.WorkerConfig{
					ClientID: id, NumSamples: local.Len(), Train: trainFn, Codec: codec,
				}); err != nil {
					fmt.Printf("leaf worker %d: %v\n", id, err)
				}
			}(id, local, delay, ch.Addr(), codec)
		}
	}
	if err := root.WaitForChildren(len(treeTiers), 30*time.Second); err != nil {
		panic(err)
	}
	treeRes, err := root.RunTree()
	if err != nil {
		panic(err)
	}
	twgTree.Wait()
	snap := root.Metrics()
	for _, c := range snap.Children {
		fmt.Printf("tier %d child %s: %d commits, %d uplink bytes reported\n",
			c.Tier+1, c.Addr, treeRes.Commits[c.Tier], c.UplinkBytes)
	}
	model.SetWeightsVector(treeRes.Weights)
	treeAcc, _ := model.Evaluate(test.X, test.Y, 256)
	fmt.Printf("%d commits through the tree (root fan-in: %d children, not %d workers), final accuracy %.4f\n",
		len(treeRes.Log), len(treeTiers), numWorkers, treeAcc)
}
