// Privacy-preserving TiFL (Section 4.6): client-level DP-FedAvg — each
// client clips its weight delta and adds Gaussian noise — combined with
// TiFL's tier-based selection, plus the subsampling-amplification
// accounting comparing uniform and tiered selection.
package main

import (
	"fmt"
	"math"
	"math/rand"

	tifl "repro"
	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/nn"
	"repro/internal/privacy"
	"repro/internal/simres"
)

func main() {
	train := dataset.Generate(dataset.CIFAR10Like, 5000, 1)
	test := dataset.Generate(dataset.CIFAR10Like, 1000, 2)
	rng := rand.New(rand.NewSource(3))
	parts := dataset.PartitionIID(train.Len(), 50, rng)
	cpus := simres.AssignGroups(50, simres.GroupsCIFAR)
	clients := flcore.BuildClients(train, test, parts, cpus, 50, 4)

	sys, err := tifl.New(clients, tifl.Options{})
	if err != nil {
		panic(err)
	}

	// Per-round local guarantee each client enforces via its noise scale.
	base := privacy.Guarantee{Epsilon: 0.8, Delta: 1e-5}
	const clip = 1.0

	cfg := tifl.Config{
		Rounds: 60, ClientsPerRound: 5, LocalEpochs: 1, BatchSize: 10, Seed: 5,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, dataset.CIFAR10Like.Dim, []int{32}, 10, 0)
		},
		Optimizer: func(round int) nn.Optimizer {
			return nn.NewRMSprop(0.01*math.Pow(0.995, float64(round)), 0.995)
		},
		EvalEvery: 10,
		Parallel:  true,
		// Client-level DP: privatize the weight *delta* each client sends.
		TransformUpdate: func(round int, global []float64, u *flcore.Update) {
			delta := make([]float64, len(u.Weights))
			for i := range delta {
				delta[i] = u.Weights[i] - global[i]
			}
			noiseRng := rand.New(rand.NewSource(int64(round)*1_000_003 + int64(u.ClientID)))
			privacy.PrivatizeUpdate(delta, clip, base, noiseRng)
			for i := range delta {
				u.Weights[i] = global[i] + delta[i]
			}
		},
	}

	private := sys.Train(cfg, test, tifl.Static(tifl.PolicyUniform))
	noDP := cfg
	noDP.TransformUpdate = nil
	clear := sys.Train(noDP, test, tifl.Static(tifl.PolicyUniform))

	fmt.Printf("uniform policy, 60 rounds: accuracy %.4f with DP vs %.4f without (privacy costs utility)\n\n",
		private.FinalAcc, clear.FinalAcc)

	// Amplification accounting (Section 4.6): tier sizes from the system.
	sizes := make([]int, len(sys.Tiers()))
	for i, t := range sys.Tiers() {
		sizes[i] = len(t.Members)
	}
	uni := privacy.AmplifyUniform(base, cfg.ClientsPerRound, len(clients))
	fmt.Printf("per-round guarantee, uniform selection of %d/%d: %s\n", cfg.ClientsPerRound, len(clients), uni)
	for _, p := range []tifl.StaticPolicy{tifl.PolicyUniform, tifl.PolicyRandom, tifl.PolicyFast} {
		g, qmax := privacy.AmplifyTiered(base, privacy.ThetasFromProbs(p.Probs), sizes, cfg.ClientsPerRound)
		fmt.Printf("per-round guarantee, tiered %-8s (q_max=%.3f): %s\n", p.Name, qmax, g)
	}
	total := privacy.ComposeRounds(uni, cfg.Rounds)
	fmt.Printf("\nafter %d rounds (basic composition, uniform): %s\n", cfg.Rounds, total)
}
