// Quickstart: the smallest end-to-end TiFL run — build a heterogeneous
// federation, let TiFL profile and tier it, train with the adaptive policy,
// and compare against vanilla FL.
package main

import (
	"fmt"
	"math"
	"math/rand"

	tifl "repro"
	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/nn"
	"repro/internal/simres"
)

func main() {
	// A 50-client federation over 5 CPU groups (4 … 0.1 CPUs) holding IID
	// shards of a CIFAR-10-like synthetic dataset.
	train := dataset.Generate(dataset.CIFAR10Like, 5000, 1)
	test := dataset.Generate(dataset.CIFAR10Like, 1000, 2)
	rng := rand.New(rand.NewSource(3))
	parts := dataset.PartitionIID(train.Len(), 50, rng)
	cpus := simres.AssignGroups(50, simres.GroupsCIFAR)
	clients := flcore.BuildClients(train, test, parts, cpus, 50, 4)

	// TiFL profiles response latencies and groups clients into tiers.
	sys, err := tifl.New(clients, tifl.Options{})
	if err != nil {
		panic(err)
	}
	for _, t := range sys.Tiers() {
		fmt.Printf("tier %d: %d clients, mean latency %.2fs\n", t.ID+1, len(t.Members), t.MeanLatency)
	}

	cfg := tifl.Config{
		Rounds: 60, ClientsPerRound: 5, LocalEpochs: 1, BatchSize: 10, Seed: 5,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, dataset.CIFAR10Like.Dim, []int{32}, 10, 0)
		},
		Optimizer: func(round int) nn.Optimizer {
			return nn.NewRMSprop(0.01*math.Pow(0.995, float64(round)), 0.995)
		},
		EvalEvery: 10,
		Parallel:  true,
	}

	vanilla := sys.Train(cfg, test, tifl.Vanilla())
	adaptive := sys.Train(cfg, test, tifl.Adaptive(tifl.AdaptiveConfig{Interval: 10, TestPerTier: 200}))

	fmt.Printf("\n            %-12s %-12s\n", "time [s]", "accuracy")
	fmt.Printf("vanilla     %-12.1f %-12.4f\n", vanilla.TotalTime, vanilla.FinalAcc)
	fmt.Printf("TiFL        %-12.1f %-12.4f\n", adaptive.TotalTime, adaptive.FinalAcc)
	fmt.Printf("speedup: %.1fx\n", vanilla.TotalTime/adaptive.TotalTime)
}
