// Resource-heterogeneity study (the Fig. 3 column-1 scenario): all five
// Table 1 selection policies on a 50-client federation whose groups get
// 4 / 2 / 1 / 0.5 / 0.1 CPUs, printing the training-time bars and
// accuracy-over-time behaviour the paper reports.
package main

import (
	"fmt"
	"math"
	"math/rand"

	tifl "repro"
	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/simres"
)

func main() {
	train := dataset.Generate(dataset.CIFAR10Like, 6000, 1)
	test := dataset.Generate(dataset.CIFAR10Like, 1200, 2)
	rng := rand.New(rand.NewSource(3))
	parts := dataset.PartitionIID(train.Len(), 50, rng)
	cpus := simres.AssignGroups(50, simres.GroupsCIFAR)

	cfg := tifl.Config{
		Rounds: 80, ClientsPerRound: 5, LocalEpochs: 1, BatchSize: 10, Seed: 5,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, dataset.CIFAR10Like.Dim, []int{32}, 10, 0)
		},
		Optimizer: func(round int) nn.Optimizer {
			return nn.NewRMSprop(0.01*math.Pow(0.995, float64(round)), 0.995)
		},
		EvalEvery: 10,
		Parallel:  true,
	}

	policies := []struct {
		name   string
		policy tifl.Policy
	}{
		{"vanilla", tifl.Vanilla()},
		{"slow", tifl.Static(tifl.PolicySlow)},
		{"uniform", tifl.Static(tifl.PolicyUniform)},
		{"random", tifl.Static(tifl.PolicyRandom)},
		{"fast", tifl.Static(tifl.PolicyFast)},
	}

	labels := make([]string, 0, len(policies))
	times := make([]float64, 0, len(policies))
	var series []metrics.Series
	for _, p := range policies {
		clients := flcore.BuildClients(train, test, parts, cpus, 50, 4)
		sys, err := tifl.New(clients, tifl.Options{})
		if err != nil {
			panic(err)
		}
		res := sys.Train(cfg, test, p.policy)
		labels = append(labels, p.name)
		times = append(times, res.TotalTime)
		series = append(series, metrics.AccuracyOverTime(res, p.name))
		fmt.Printf("%-8s time %8.1fs  final accuracy %.4f\n", p.name, res.TotalTime, res.FinalAcc)
	}

	fmt.Println()
	fmt.Println(metrics.BarChart("training time for 80 rounds [s]", labels, times, 40))
	tab := metrics.SeriesTable("accuracy over simulated time [s]", series, 8)
	fmt.Println(tab.Render())
	fmt.Printf("speedup fast vs vanilla: %.1fx; uniform vs vanilla: %.1fx\n",
		times[0]/times[4], times[0]/times[2])
}
