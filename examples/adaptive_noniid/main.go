// Adaptive policy under strong non-IID heterogeneity (the Fig. 8 scenario):
// every client holds only 2 of 10 classes. The adaptive policy monitors
// per-tier accuracy and rebalances selection toward struggling tiers, so it
// tracks vanilla's accuracy while static fast-leaning policies fall behind.
package main

import (
	"fmt"
	"math"
	"math/rand"

	tifl "repro"
	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/simres"
)

func main() {
	const classesPerClient = 2
	train := dataset.Generate(dataset.CIFAR10Like, 6000, 1)
	test := dataset.Generate(dataset.CIFAR10Like, 1200, 2)
	rng := rand.New(rand.NewSource(3))
	parts := dataset.PartitionByClass(train, 50, classesPerClient, rng)
	cpus := simres.AssignGroups(50, simres.GroupsCIFAR)

	cfg := tifl.Config{
		Rounds: 100, ClientsPerRound: 5, LocalEpochs: 1, BatchSize: 10, Seed: 5,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, dataset.CIFAR10Like.Dim, []int{32}, 10, 0)
		},
		Optimizer: func(round int) nn.Optimizer {
			return nn.NewRMSprop(0.01*math.Pow(0.995, float64(round)), 0.995)
		},
		EvalEvery: 10,
		Parallel:  true,
	}

	runs := []struct {
		name   string
		policy tifl.Policy
	}{
		{"vanilla", tifl.Vanilla()},
		{"uniform", tifl.Static(tifl.PolicyUniform)},
		{"fast", tifl.Static(tifl.PolicyFast)},
		{"TiFL", tifl.Adaptive(tifl.AdaptiveConfig{Interval: 10, TestPerTier: 200, Temperature: 2})},
	}

	var series []metrics.Series
	for _, r := range runs {
		clients := flcore.BuildClients(train, test, parts, cpus, 60, 4)
		sys, err := tifl.New(clients, tifl.Options{})
		if err != nil {
			panic(err)
		}
		res := sys.Train(cfg, test, r.policy)
		series = append(series, metrics.AccuracyOverRounds(res, r.name))
		fmt.Printf("%-8s time %8.1fs  final accuracy %.4f\n", r.name, res.TotalTime, res.FinalAcc)
	}
	fmt.Println()
	tab := metrics.SeriesTable(
		fmt.Sprintf("accuracy over rounds, non-IID(%d)", classesPerClient), series, 10)
	fmt.Println(tab.Render())
}
