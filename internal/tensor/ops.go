package tensor

import (
	"math"
	"runtime"
	"sync"
)

// Add returns t + o element-wise as a new tensor.
func (t *Tensor) Add(o *Tensor) *Tensor {
	t.mustSameSize(o, "Add")
	r := t.Clone()
	for i, v := range o.Data {
		r.Data[i] += v
	}
	return r
}

// AddInto computes dst = a + b element-wise, reusing dst's storage.
// All three tensors must have the same size; dst may alias a or b.
func AddInto(dst, a, b *Tensor) {
	dst.mustSameSize(a, "AddInto")
	dst.mustSameSize(b, "AddInto")
	bd := b.Data[:len(dst.Data)]
	for i, v := range a.Data {
		dst.Data[i] = v + bd[i]
	}
}

// Sub returns t - o element-wise as a new tensor.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	t.mustSameSize(o, "Sub")
	r := t.Clone()
	for i, v := range o.Data {
		r.Data[i] -= v
	}
	return r
}

// SubInto computes dst = a - b element-wise, reusing dst's storage.
// All three tensors must have the same size; dst may alias a or b.
func SubInto(dst, a, b *Tensor) {
	dst.mustSameSize(a, "SubInto")
	dst.mustSameSize(b, "SubInto")
	bd := b.Data[:len(dst.Data)]
	for i, v := range a.Data {
		dst.Data[i] = v - bd[i]
	}
}

// Mul returns the element-wise product t ⊙ o as a new tensor.
func (t *Tensor) Mul(o *Tensor) *Tensor {
	t.mustSameSize(o, "Mul")
	r := t.Clone()
	for i, v := range o.Data {
		r.Data[i] *= v
	}
	return r
}

// MulInto computes dst = a ⊙ b element-wise, reusing dst's storage.
// All three tensors must have the same size; dst may alias a or b.
func MulInto(dst, a, b *Tensor) {
	dst.mustSameSize(a, "MulInto")
	dst.mustSameSize(b, "MulInto")
	bd := b.Data[:len(dst.Data)]
	for i, v := range a.Data {
		dst.Data[i] = v * bd[i]
	}
}

// Scale returns s·t as a new tensor.
func (t *Tensor) Scale(s float64) *Tensor {
	r := t.Clone()
	for i := range r.Data {
		r.Data[i] *= s
	}
	return r
}

// ScaleInto computes dst = s·a, reusing dst's storage. dst may alias a.
func ScaleInto(dst, a *Tensor, s float64) {
	dst.mustSameSize(a, "ScaleInto")
	for i, v := range a.Data {
		dst.Data[i] = v * s
	}
}

// AddInPlace adds o to t element-wise, modifying t.
func (t *Tensor) AddInPlace(o *Tensor) {
	t.mustSameSize(o, "AddInPlace")
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// AxpyInPlace computes t += a·o, modifying t.
func (t *Tensor) AxpyInPlace(a float64, o *Tensor) {
	t.mustSameSize(o, "AxpyInPlace")
	for i, v := range o.Data {
		t.Data[i] += a * v
	}
}

// ScaleInPlace multiplies every element of t by s.
func (t *Tensor) ScaleInPlace(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Apply returns a new tensor with f applied to every element.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	r := t.Clone()
	for i, v := range r.Data {
		r.Data[i] = f(v)
	}
	return r
}

// ApplyInto computes dst = f(a) element-wise, reusing dst's storage.
// dst may alias a.
func ApplyInto(dst, a *Tensor, f func(float64) float64) {
	dst.mustSameSize(a, "ApplyInto")
	for i, v := range a.Data {
		dst.Data[i] = f(v)
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Dot returns the inner product of t and o viewed as flat vectors.
func (t *Tensor) Dot(o *Tensor) float64 {
	t.mustSameSize(o, "Dot")
	s := 0.0
	for i, v := range t.Data {
		s += v * o.Data[i]
	}
	return s
}

// Norm2 returns the Euclidean (L2) norm of t viewed as a flat vector.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ArgMaxRows returns, for each row of a matrix, the column index of the
// largest element.
func (t *Tensor) ArgMaxRows() []int {
	t.mustRank(2)
	out := make([]int, t.shape[0])
	t.ArgMaxRowsInto(out)
	return out
}

// ArgMaxRowsInto fills out with the per-row argmax of a matrix, reusing
// out's storage. len(out) must equal the row count.
func (t *Tensor) ArgMaxRowsInto(out []int) {
	t.mustRank(2)
	rows, cols := t.shape[0], t.shape[1]
	if len(out) != rows {
		panicArgMaxLen(len(out), rows)
	}
	for i := 0; i < rows; i++ {
		row := t.Data[i*cols : (i+1)*cols]
		best, bestV := 0, row[0]
		for j, v := range row[1:] {
			if v > bestV {
				best, bestV = j+1, v
			}
		}
		out[i] = best
	}
}

// mustSameSize panics when t and o hold different element counts. The
// message formatting lives in a cold, non-inlinable helper so this guard
// inlines into hot loops with no fmt machinery on the happy path.
func (t *Tensor) mustSameSize(o *Tensor, op string) {
	if len(t.Data) != len(o.Data) {
		panicSizeMismatch(op, t, o)
	}
}

// parallelThreshold is the number of multiply-adds below which MatMul runs
// single-threaded; smaller problems lose more to goroutine scheduling than
// they gain from parallelism.
const parallelThreshold = 1 << 17

// MatMul returns the matrix product a·b for rank-2 tensors.
// It panics unless a is (m×k) and b is (k×n).
func MatMul(a, b *Tensor) *Tensor {
	a.mustRank(2)
	b.mustRank(2)
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panicMatMulDims("MatMul", a, b)
	}
	out := New(m, n)
	matMulInto(out, a, b, nil, m, k, n)
	return out
}

// MatMulInto computes dst = a·b, reusing dst's storage. dst must be (m×n).
func MatMulInto(dst, a, b *Tensor) {
	matMulBiasInto(dst, a, b, nil, "MatMulInto")
}

// MatMulBiasInto computes dst = a·b + bias broadcast across rows, reusing
// dst's storage: the bias add is fused into the accumulation kernel while
// each output row is cache-hot, replacing a separate full-tensor traversal.
// bias must have n elements for an (m×n) product. The result is bit-equal
// to MatMulInto followed by a row-wise bias add.
func MatMulBiasInto(dst, a, b, bias *Tensor) {
	matMulBiasInto(dst, a, b, bias, "MatMulBiasInto")
}

func matMulBiasInto(dst, a, b, bias *Tensor, op string) {
	a.mustRank(2)
	b.mustRank(2)
	dst.mustRank(2)
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panicMatMulDims(op, a, b)
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panicMatMulDst(op, dst, m, n)
	}
	if bias != nil && len(bias.Data) != n {
		panicBiasLen(op, len(bias.Data), n)
	}
	matMulInto(dst, a, b, bias, m, k, n)
}

// matMulInto accumulates a·b into out using an ikj loop order (streaming
// through b rows) which is cache-friendly for row-major data, then adds the
// optional bias while each row is still hot. Rows of the output are
// partitioned across goroutines when the problem is large. Per output
// element the operation order is: += a[i,p]·b[p,j] for p ascending, then
// += bias[j] — identical to the historical separate-pass formulation.
func matMulInto(out, a, b, bias *Tensor, m, k, n int) {
	// The serial path calls the row kernel directly: wrapping it in a
	// closure for both paths would heap-allocate the closure on every
	// batch (flow-insensitive escape analysis sees the parallel branch).
	if m*k*n < parallelThreshold || m == 1 {
		matMulRows(out, a, b, bias, k, n, 0, m)
		return
	}
	parallelRows(m, func(lo, hi int) { matMulRows(out, a, b, bias, k, n, lo, hi) })
}

// matMulRows computes rows [lo,hi) of a·b: each output row is zeroed,
// accumulated over p ascending, then biased — all while the row is
// cache-hot, so no separate whole-tensor zero/bias traversals are needed.
// Rows are processed in pairs so each b row streams through two
// independent accumulator rows (better ILP, half the b traffic). Per
// element the operation order matches the historical
// zero-all/accumulate-all/bias-all single-row formulation exactly: the
// element's row accumulates av·b[p,j] for ascending p with zero products
// skipped, then gains the bias.
func matMulRows(out, a, b, bias *Tensor, k, n, lo, hi int) {
	i := lo
	for ; i+2 <= hi; i += 2 {
		arow0 := a.Data[i*k:][:k]
		arow1 := a.Data[(i+1)*k:][:k]
		orow0 := out.Data[i*n:][:n]
		orow1 := out.Data[(i+1)*n:][:n]
		for j := range orow0 {
			orow0[j] = 0
		}
		for j := range orow1 {
			orow1[j] = 0
		}
		for p := 0; p < k; p++ {
			av0, av1 := arow0[p], arow1[p]
			if av0 == 0 && av1 == 0 {
				continue
			}
			brow := b.Data[p*n:][:n]
			switch {
			case av1 == 0:
				for j, bv := range brow {
					orow0[j] += av0 * bv
				}
			case av0 == 0:
				for j, bv := range brow {
					orow1[j] += av1 * bv
				}
			default:
				for j, bv := range brow {
					orow0[j] += av0 * bv
					orow1[j] += av1 * bv
				}
			}
		}
		if bias != nil {
			for j, bv := range bias.Data {
				orow0[j] += bv
			}
			for j, bv := range bias.Data {
				orow1[j] += bv
			}
		}
	}
	for ; i < hi; i++ {
		arow := a.Data[i*k:][:k]
		orow := out.Data[i*n:][:n]
		for j := range orow {
			orow[j] = 0
		}
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[p*n:][:n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
		if bias != nil {
			for j, bv := range bias.Data {
				orow[j] += bv
			}
		}
	}
}

// MatMulATB returns aᵀ·b for rank-2 tensors a (k×m) and b (k×n), producing
// an (m×n) result without materializing the transpose.
func MatMulATB(a, b *Tensor) *Tensor {
	a.mustRank(2)
	b.mustRank(2)
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panicMatMulDims("MatMulATB", a, b)
	}
	out := New(m, n)
	matMulATBInto(out, a, b, k, m, n)
	return out
}

// MatMulATBInto computes dst = aᵀ·b, reusing dst's storage. dst must be
// (m×n) for a (k×m) and b (k×n).
func MatMulATBInto(dst, a, b *Tensor) {
	a.mustRank(2)
	b.mustRank(2)
	dst.mustRank(2)
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panicMatMulDims("MatMulATBInto", a, b)
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panicMatMulDst("MatMulATBInto", dst, m, n)
	}
	dst.Zero()
	matMulATBInto(dst, a, b, k, m, n)
}

// matMulATBInto accumulates aᵀ·b into out: out[i,j] += a[p,i]·b[p,j]
// streaming over p so both reads are rows. p steps are processed in pairs
// (two b rows per output-row sweep, halving the out traffic); per element
// the accumulation still runs p ascending with zero products skipped, so
// results are bit-identical to the single-step loop.
func matMulATBInto(out, a, b *Tensor, k, m, n int) {
	p := 0
	for ; p+2 <= k; p += 2 {
		arow0 := a.Data[p*m:][:m]
		arow1 := a.Data[(p+1)*m:][:m]
		brow0 := b.Data[p*n:][:n]
		brow1 := b.Data[(p+1)*n:][:n]
		for i := 0; i < m; i++ {
			av0, av1 := arow0[i], arow1[i]
			if av0 == 0 && av1 == 0 {
				continue
			}
			orow := out.Data[i*n:][:n]
			switch {
			case av1 == 0:
				for j, bv := range brow0 {
					orow[j] += av0 * bv
				}
			case av0 == 0:
				for j, bv := range brow1 {
					orow[j] += av1 * bv
				}
			default:
				for j, bv := range brow0 {
					orow[j] += av0 * bv
					orow[j] += av1 * brow1[j]
				}
			}
		}
	}
	for ; p < k; p++ {
		arow := a.Data[p*m:][:m]
		brow := b.Data[p*n:][:n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n:][:n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulABT returns a·bᵀ for rank-2 tensors a (m×k) and b (n×k), producing
// an (m×n) result without materializing the transpose.
func MatMulABT(a, b *Tensor) *Tensor {
	a.mustRank(2)
	b.mustRank(2)
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panicMatMulDims("MatMulABT", a, b)
	}
	out := New(m, n)
	matMulABTInto(out, a, b, nil, m, k, n)
	return out
}

// MatMulABTInto computes dst = a·bᵀ, reusing dst's storage. dst must be
// (m×n) for a (m×k) and b (n×k). Every element is written, so dst's prior
// contents do not matter.
func MatMulABTInto(dst, a, b *Tensor) {
	matMulABTBiasInto(dst, a, b, nil, "MatMulABTInto")
}

// MatMulABTBiasInto computes dst = a·bᵀ + bias broadcast across rows; the
// bias add is fused into the final store of each dot product. The result is
// bit-equal to MatMulABTInto followed by a row-wise bias add.
func MatMulABTBiasInto(dst, a, b, bias *Tensor) {
	matMulABTBiasInto(dst, a, b, bias, "MatMulABTBiasInto")
}

func matMulABTBiasInto(dst, a, b, bias *Tensor, op string) {
	a.mustRank(2)
	b.mustRank(2)
	dst.mustRank(2)
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panicMatMulDims(op, a, b)
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panicMatMulDst(op, dst, m, n)
	}
	if bias != nil && len(bias.Data) != n {
		panicBiasLen(op, len(bias.Data), n)
	}
	matMulABTInto(dst, a, b, bias, m, k, n)
}

// matMulABTInto writes a·bᵀ (+bias) into out. Four output columns are
// computed per sweep so arow stays register/L1-resident across four b-rows;
// each dot product still accumulates p ascending into its own scalar, so
// per-element results are bit-identical to the single-column loop.
func matMulABTInto(out, a, b, bias *Tensor, m, k, n int) {
	if m*k*n < parallelThreshold || m == 1 {
		matMulABTRows(out, a, b, bias, k, n, 0, m)
		return
	}
	parallelRows(m, func(lo, hi int) { matMulABTRows(out, a, b, bias, k, n, lo, hi) })
}

// matMulABTRows writes rows [lo,hi) of a·bᵀ (+bias) into out.
func matMulABTRows(out, a, b, bias *Tensor, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k:][:k]
		orow := out.Data[i*n:][:n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b.Data[j*k:][:k]
			b1 := b.Data[(j+1)*k:][:k]
			b2 := b.Data[(j+2)*k:][:k]
			b3 := b.Data[(j+3)*k:][:k]
			var s0, s1, s2, s3 float64
			for p, av := range arow {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			if bias != nil {
				s0 += bias.Data[j]
				s1 += bias.Data[j+1]
				s2 += bias.Data[j+2]
				s3 += bias.Data[j+3]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			brow := b.Data[j*k:][:k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			if bias != nil {
				s += bias.Data[j]
			}
			orow[j] = s
		}
	}
}

// Transpose returns the transpose of a rank-2 tensor as a new tensor.
func (t *Tensor) Transpose() *Tensor {
	t.mustRank(2)
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = t.Data[i*n+j]
		}
	}
	return out
}

// parallelRows splits [0,m) into contiguous chunks, one per worker, and runs
// fn on each chunk concurrently.
func parallelRows(m int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		fn(0, m)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelChunks splits [0,n) into contiguous element chunks across
// GOMAXPROCS goroutines and runs fn on each chunk. work is the estimated
// scalar operation count; below parallelThreshold (or on a single-CPU
// host) fn runs inline on the whole range, avoiding scheduling overhead on
// small problems. Because chunks are disjoint, any fn whose writes stay
// inside its chunk produces results independent of the worker count.
func ParallelChunks(n, work int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if work < parallelThreshold || runtime.GOMAXPROCS(0) <= 1 {
		fn(0, n)
		return
	}
	parallelRows(n, fn)
}

// AxpySharded computes dst[i] += Σ_k coeffs[k]·srcs[k][i] — the FedAvg-style
// weighted reduction — with the element range sharded across goroutines.
// Within each element the k-sum stays serial and ascending, so the result
// is byte-identical to the classic serial double loop (for k { for i {...} })
// regardless of worker count. Every src must have len(dst) elements and
// len(coeffs) must equal len(srcs).
func AxpySharded(dst []float64, coeffs []float64, srcs [][]float64) {
	if len(coeffs) != len(srcs) {
		panicAxpyArity(len(coeffs), len(srcs))
	}
	for k, s := range srcs {
		if len(s) != len(dst) {
			panicAxpyLen(k, len(s), len(dst))
		}
	}
	if len(dst)*len(srcs) < parallelThreshold || runtime.GOMAXPROCS(0) <= 1 {
		axpyRange(dst, coeffs, srcs, 0, len(dst))
		return
	}
	parallelRows(len(dst), func(lo, hi int) { axpyRange(dst, coeffs, srcs, lo, hi) })
}

// axpyRange accumulates the k-sum for elements [lo,hi). The 4-wide unroll
// touches disjoint elements, so per-element operation order is untouched.
func axpyRange(dst []float64, coeffs []float64, srcs [][]float64, lo, hi int) {
	for k, src := range srcs {
		c := coeffs[k]
		d := dst[lo:hi]
		s := src[lo:hi]
		i := 0
		for ; i+4 <= len(s); i += 4 {
			d[i] += c * s[i]
			d[i+1] += c * s[i+1]
			d[i+2] += c * s[i+2]
			d[i+3] += c * s[i+3]
		}
		for ; i < len(s); i++ {
			d[i] += c * s[i]
		}
	}
}
