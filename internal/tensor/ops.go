package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Add returns t + o element-wise as a new tensor.
func (t *Tensor) Add(o *Tensor) *Tensor {
	t.mustSameSize(o, "Add")
	r := t.Clone()
	for i, v := range o.Data {
		r.Data[i] += v
	}
	return r
}

// Sub returns t - o element-wise as a new tensor.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	t.mustSameSize(o, "Sub")
	r := t.Clone()
	for i, v := range o.Data {
		r.Data[i] -= v
	}
	return r
}

// Mul returns the element-wise product t ⊙ o as a new tensor.
func (t *Tensor) Mul(o *Tensor) *Tensor {
	t.mustSameSize(o, "Mul")
	r := t.Clone()
	for i, v := range o.Data {
		r.Data[i] *= v
	}
	return r
}

// Scale returns s·t as a new tensor.
func (t *Tensor) Scale(s float64) *Tensor {
	r := t.Clone()
	for i := range r.Data {
		r.Data[i] *= s
	}
	return r
}

// AddInPlace adds o to t element-wise, modifying t.
func (t *Tensor) AddInPlace(o *Tensor) {
	t.mustSameSize(o, "AddInPlace")
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// AxpyInPlace computes t += a·o, modifying t.
func (t *Tensor) AxpyInPlace(a float64, o *Tensor) {
	t.mustSameSize(o, "AxpyInPlace")
	for i, v := range o.Data {
		t.Data[i] += a * v
	}
}

// ScaleInPlace multiplies every element of t by s.
func (t *Tensor) ScaleInPlace(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Apply returns a new tensor with f applied to every element.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	r := t.Clone()
	for i, v := range r.Data {
		r.Data[i] = f(v)
	}
	return r
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Dot returns the inner product of t and o viewed as flat vectors.
func (t *Tensor) Dot(o *Tensor) float64 {
	t.mustSameSize(o, "Dot")
	s := 0.0
	for i, v := range t.Data {
		s += v * o.Data[i]
	}
	return s
}

// Norm2 returns the Euclidean (L2) norm of t viewed as a flat vector.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ArgMaxRows returns, for each row of a matrix, the column index of the
// largest element.
func (t *Tensor) ArgMaxRows() []int {
	t.mustRank(2)
	rows, cols := t.shape[0], t.shape[1]
	out := make([]int, rows)
	for i := 0; i < rows; i++ {
		row := t.Data[i*cols : (i+1)*cols]
		best, bestV := 0, row[0]
		for j, v := range row[1:] {
			if v > bestV {
				best, bestV = j+1, v
			}
		}
		out[i] = best
	}
	return out
}

func (t *Tensor) mustSameSize(o *Tensor, op string) {
	if len(t.Data) != len(o.Data) {
		panic(fmt.Sprintf("tensor: %s size mismatch: %v vs %v", op, t.shape, o.shape))
	}
}

// parallelThreshold is the number of multiply-adds below which MatMul runs
// single-threaded; smaller problems lose more to goroutine scheduling than
// they gain from parallelism.
const parallelThreshold = 1 << 17

// MatMul returns the matrix product a·b for rank-2 tensors.
// It panics unless a is (m×k) and b is (k×n).
func MatMul(a, b *Tensor) *Tensor {
	a.mustRank(2)
	b.mustRank(2)
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch: %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	matMulInto(out, a, b, m, k, n)
	return out
}

// MatMulInto computes dst = a·b, reusing dst's storage. dst must be (m×n).
func MatMulInto(dst, a, b *Tensor) {
	a.mustRank(2)
	b.mustRank(2)
	dst.mustRank(2)
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulInto inner dimension mismatch: %v x %v", a.shape, b.shape))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	dst.Zero()
	matMulInto(dst, a, b, m, k, n)
}

// matMulInto accumulates a·b into out using an ikj loop order (streaming
// through b rows) which is cache-friendly for row-major data. Rows of the
// output are partitioned across goroutines when the problem is large.
func matMulInto(out, a, b *Tensor, m, k, n int) {
	work := m * k * n
	rowFn := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	if work < parallelThreshold || m == 1 {
		rowFn(0, m)
		return
	}
	parallelRows(m, rowFn)
}

// MatMulATB returns aᵀ·b for rank-2 tensors a (k×m) and b (k×n), producing
// an (m×n) result without materializing the transpose.
func MatMulATB(a, b *Tensor) *Tensor {
	a.mustRank(2)
	b.mustRank(2)
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulATB dimension mismatch: %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	// out[i,j] = sum_p a[p,i]*b[p,j]; stream over p so both reads are rows.
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulABT returns a·bᵀ for rank-2 tensors a (m×k) and b (n×k), producing
// an (m×n) result without materializing the transpose.
func MatMulABT(a, b *Tensor) *Tensor {
	a.mustRank(2)
	b.mustRank(2)
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulABT dimension mismatch: %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	rowFn := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.Data[j*k : (j+1)*k]
				s := 0.0
				for p, av := range arow {
					s += av * brow[p]
				}
				orow[j] = s
			}
		}
	}
	if m*k*n < parallelThreshold || m == 1 {
		rowFn(0, m)
	} else {
		parallelRows(m, rowFn)
	}
	return out
}

// Transpose returns the transpose of a rank-2 tensor as a new tensor.
func (t *Tensor) Transpose() *Tensor {
	t.mustRank(2)
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = t.Data[i*n+j]
		}
	}
	return out
}

// parallelRows splits [0,m) into contiguous chunks, one per worker, and runs
// fn on each chunk concurrently.
func parallelRows(m int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		fn(0, m)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
