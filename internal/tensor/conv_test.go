package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvOutSize(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{28, 3, 1, 0, 26},
		{28, 3, 1, 1, 28},
		{32, 5, 1, 2, 32},
		{26, 2, 2, 0, 13},
		{8, 3, 2, 0, 3},
	}
	for _, c := range cases {
		if got := ConvOutSize(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOutSize(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel with stride 1 and no padding is a pure reshuffle.
	rng := rand.New(rand.NewSource(1))
	x := RandNormal(rng, 0, 1, 2, 3, 4, 4)
	cols := Im2Col(x, 1, 1, 1, 0)
	if cols.Dim(0) != 2*4*4 || cols.Dim(1) != 3 {
		t.Fatalf("Im2Col shape = %v", cols.Shape())
	}
	// Element (img=0, oy=1, ox=2, ch=1) must equal x[0,1,1,2].
	row := cols.Row((0*4+1)*4 + 2)
	if row.Data[1] != x.At(0, 1, 1, 2) {
		t.Fatal("Im2Col 1x1 mapping wrong")
	}
}

func TestIm2ColKnownValues(t *testing.T) {
	// 1 image, 1 channel, 3x3 input, 2x2 kernel, stride 1, no pad → 4 rows.
	x := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	cols := Im2Col(x, 2, 2, 1, 0)
	want := [][]float64{
		{1, 2, 4, 5},
		{2, 3, 5, 6},
		{4, 5, 7, 8},
		{5, 6, 8, 9},
	}
	for i, w := range want {
		row := cols.Row(i)
		for j, v := range w {
			if row.Data[j] != v {
				t.Fatalf("row %d = %v, want %v", i, row.Data, w)
			}
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	cols := Im2Col(x, 3, 3, 1, 1) // padded 3x3 windows over 2x2 input
	if cols.Dim(0) != 4 || cols.Dim(1) != 9 {
		t.Fatalf("shape = %v", cols.Shape())
	}
	// First window (oy=0,ox=0) has top row and left column zero-padded.
	row := cols.Row(0)
	want := []float64{0, 0, 0, 0, 1, 2, 0, 3, 4}
	for j, v := range want {
		if row.Data[j] != v {
			t.Fatalf("padded row = %v, want %v", row.Data, want)
		}
	}
}

// Property: Col2Im(Im2Col(x)) with a 1x1 kernel reproduces x exactly, and
// with overlapping kernels each element is counted once per covering window.
func TestCol2ImAdjointOfIm2Col(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, c := 1+r.Intn(2), 1+r.Intn(3)
		h := 3 + r.Intn(4)
		w := 3 + r.Intn(4)
		x := RandNormal(r, 0, 1, n, c, h, w)
		cols := Im2Col(x, 1, 1, 1, 0)
		back := Col2Im(cols, n, c, h, w, 1, 1, 1, 0)
		return back.AllClose(x, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the adjoint identity <Im2Col(x), y> == <x, Col2Im(y)> holds for
// random x, y — this is exactly what makes the conv backward pass correct.
func TestIm2ColCol2ImAdjointIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, c, h, w := 1, 1+r.Intn(2), 4+r.Intn(3), 4+r.Intn(3)
		kh, kw := 2, 2
		pad := r.Intn(2)
		x := RandNormal(r, 0, 1, n, c, h, w)
		cols := Im2Col(x, kh, kw, 1, pad)
		y := RandNormal(r, 0, 1, cols.Dim(0), cols.Dim(1))
		lhs := cols.Dot(y)
		rhs := x.Dot(Col2Im(y, n, c, h, w, kh, kw, 1, pad))
		return absf(lhs-rhs) < 1e-9*(1+absf(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestMaxPool2DKnown(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 1, 4, 4)
	out, arg := MaxPool2D(x, 2, 2)
	want := []float64{4, 8, 12, 16}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("MaxPool2D = %v, want %v", out.Data, want)
		}
	}
	// Gradient routed back through argmax positions only.
	g := FromSlice([]float64{1, 1, 1, 1}, 1, 1, 2, 2)
	back := MaxUnpool2D(g, arg, []int{1, 1, 4, 4})
	if back.Sum() != 4 {
		t.Fatalf("unpooled gradient mass = %v, want 4", back.Sum())
	}
	if back.At(0, 0, 1, 1) != 1 || back.At(0, 0, 0, 0) != 0 {
		t.Fatal("gradient routed to wrong positions")
	}
}

func TestMaxPoolPreservesMax(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := RandNormal(r, 0, 1, 1, 2, 4, 4)
		out, _ := MaxPool2D(x, 2, 2)
		return out.Max() == x.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColBadRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Im2Col on rank-2 input did not panic")
		}
	}()
	Im2Col(New(3, 3), 2, 2, 1, 0)
}
