package tensor

import (
	"math"
	"math/rand"
)

// RandNormal returns a tensor with elements drawn i.i.d. from N(mean, std²)
// using rng, so results are reproducible for a fixed seed.
func RandNormal(rng *rand.Rand, mean, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = mean + std*rng.NormFloat64()
	}
	return t
}

// RandUniform returns a tensor with elements drawn i.i.d. from U[lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*rng.Float64()
	}
	return t
}

// GlorotUniform returns a tensor initialized with the Glorot/Xavier uniform
// scheme for a layer with the given fan-in and fan-out, the standard
// initialization for the dense and convolutional layers in internal/nn.
func GlorotUniform(rng *rand.Rand, fanIn, fanOut int, shape ...int) *Tensor {
	limit := 0.0
	if fanIn+fanOut > 0 {
		limit = math.Sqrt(6.0 / float64(fanIn+fanOut))
	}
	return RandUniform(rng, -limit, limit, shape...)
}
