package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func mustBitEqual(t *testing.T, name string, got, want *Tensor) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s shape %v, want %v", name, got.Shape(), want.Shape())
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s[%d] = %v, want %v (bit mismatch)", name, i, got.Data[i], want.Data[i])
		}
	}
}

// The Into variants must produce bit-identical results to their allocating
// counterparts — the zero-allocation refactor must not perturb a single ulp.
func TestIntoVariantsBitEqualAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randTensor(rng, 7, 9)
	b := randTensor(rng, 7, 9)
	dst := New(7, 9)

	AddInto(dst, a, b)
	mustBitEqual(t, "AddInto", dst, a.Add(b))
	SubInto(dst, a, b)
	mustBitEqual(t, "SubInto", dst, a.Sub(b))
	MulInto(dst, a, b)
	mustBitEqual(t, "MulInto", dst, a.Mul(b))
	ScaleInto(dst, a, 1.7)
	mustBitEqual(t, "ScaleInto", dst, a.Scale(1.7))
	f := func(v float64) float64 { return v*v - 1 }
	ApplyInto(dst, a, f)
	mustBitEqual(t, "ApplyInto", dst, a.Apply(f))

	// Aliased destination: dst may be one of the operands.
	aliased := a.Clone()
	AddInto(aliased, aliased, b)
	mustBitEqual(t, "AddInto aliased", aliased, a.Add(b))
}

func TestMatMulIntoVariantsBitEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 4}, {10, 48, 32}, {13, 7, 9}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		// Inject zeros so the skip branches are exercised.
		for i := 0; i < len(a.Data); i += 3 {
			a.Data[i] = 0
		}
		dst := New(m, n)
		MatMulInto(dst, a, b)
		mustBitEqual(t, "MatMulInto", dst, MatMul(a, b))

		bias := randTensor(rng, n)
		want := MatMul(a, b)
		for r := 0; r < m; r++ {
			for j := 0; j < n; j++ {
				want.Data[r*n+j] += bias.Data[j]
			}
		}
		MatMulBiasInto(dst, a, b, bias)
		mustBitEqual(t, "MatMulBiasInto", dst, want)

		at := randTensor(rng, k, m)
		dstATB := New(m, n)
		MatMulATBInto(dstATB, at, b)
		mustBitEqual(t, "MatMulATBInto", dstATB, MatMulATB(at, b))

		bt := randTensor(rng, n, k)
		dstABT := New(m, n)
		MatMulABTInto(dstABT, a, bt)
		mustBitEqual(t, "MatMulABTInto", dstABT, MatMulABT(a, bt))

		wantABT := MatMulABT(a, bt)
		for r := 0; r < m; r++ {
			for j := 0; j < n; j++ {
				wantABT.Data[r*n+j] += bias.Data[j]
			}
		}
		MatMulABTBiasInto(dstABT, a, bt, bias)
		mustBitEqual(t, "MatMulABTBiasInto", dstABT, wantABT)
	}
}

// Into kernels must fully overwrite stale destination contents.
func TestIntoOverwritesStaleData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randTensor(rng, 4, 6)
	b := randTensor(rng, 6, 5)
	dst := Full(999, 4, 5)
	MatMulInto(dst, a, b)
	mustBitEqual(t, "MatMulInto stale", dst, MatMul(a, b))

	x := randTensor(rng, 2, 3, 6, 6)
	cols := Full(999, 2*6*6, 3*3*3)
	Im2ColInto(cols, x, 3, 3, 1, 1)
	mustBitEqual(t, "Im2ColInto stale", cols, Im2Col(x, 3, 3, 1, 1))

	img := Full(999, 2, 3, 6, 6)
	Col2ImInto(img, cols, 3, 3, 1, 1)
	mustBitEqual(t, "Col2ImInto stale", img, Col2Im(cols, 2, 3, 6, 6, 3, 3, 1, 1))
}

func TestMaxPoolIntoBitEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randTensor(rng, 2, 3, 8, 8)
	want, wantArg := MaxPool2D(x, 2, 2)
	dst := Full(-1, 2, 3, 4, 4)
	arg := MaxPool2DInto(dst, nil, x, 2, 2)
	mustBitEqual(t, "MaxPool2DInto", dst, want)
	for i := range wantArg {
		if arg[i] != wantArg[i] {
			t.Fatalf("arg[%d] = %d, want %d", i, arg[i], wantArg[i])
		}
	}
	grad := randTensor(rng, 2, 3, 4, 4)
	wantUn := MaxUnpool2D(grad, arg, x.Shape())
	un := Full(999, 2, 3, 8, 8)
	MaxUnpool2DInto(un, grad, arg)
	mustBitEqual(t, "MaxUnpool2DInto", un, wantUn)
}

// serialAxpy is the reference implementation AxpySharded must match bit for
// bit: k outer (update order), elements inner.
func serialAxpy(dst []float64, coeffs []float64, srcs [][]float64) {
	for k, src := range srcs {
		c := coeffs[k]
		for i, v := range src {
			dst[i] += c * v
		}
	}
}

func TestAxpyShardedBitEqualSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 63, 1000, 1 << 16} {
		srcs := make([][]float64, 7)
		coeffs := make([]float64, 7)
		for k := range srcs {
			coeffs[k] = rng.Float64() * 10
			srcs[k] = make([]float64, n)
			for i := range srcs[k] {
				srcs[k][i] = rng.NormFloat64()
			}
		}
		want := make([]float64, n)
		serialAxpy(want, coeffs, srcs)
		got := make([]float64, n)
		AxpySharded(got, coeffs, srcs)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d: AxpySharded[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestAxpyShardedValidates(t *testing.T) {
	for name, fn := range map[string]func(){
		"arity": func() { AxpySharded(make([]float64, 3), []float64{1}, nil) },
		"len":   func() { AxpySharded(make([]float64, 3), []float64{1}, [][]float64{make([]float64, 2)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s mismatch must panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestParallelChunksCoversRange(t *testing.T) {
	seen := make([]bool, 5000)
	ParallelChunks(len(seen), 1<<20, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if seen[i] {
				t.Errorf("index %d visited twice", i)
			}
			seen[i] = true
		}
	})
	for i, v := range seen {
		if !v {
			t.Fatalf("index %d not visited", i)
		}
	}
	ParallelChunks(0, 0, func(lo, hi int) { t.Error("empty range must not call fn") })
}

func TestArgMaxRowsInto(t *testing.T) {
	m := FromSlice([]float64{1, 3, 2, 9, 0, -1}, 2, 3)
	out := make([]int, 2)
	m.ArgMaxRowsInto(out)
	if out[0] != 1 || out[1] != 0 {
		t.Fatalf("ArgMaxRowsInto = %v", out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong output length must panic")
		}
	}()
	m.ArgMaxRowsInto(make([]int, 3))
}
