package tensor

import "fmt"

// ConvOutSize returns the output spatial size of a convolution or pooling
// with the given input size, kernel size, stride, and symmetric padding.
func ConvOutSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col lowers a batched image tensor x with shape (N, C, H, W) into a
// matrix of shape (N*OH*OW, C*KH*KW) where each row holds one receptive
// field. Convolution then becomes a single MatMul against the reshaped
// kernel, which is how internal/nn implements Conv2D.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs rank-4 input, have %v", x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col produces empty output for input %v kernel %dx%d stride %d pad %d", x.Shape(), kh, kw, stride, pad))
	}
	out := New(n*oh*ow, c*kh*kw)
	colW := c * kh * kw
	for img := 0; img < n; img++ {
		base := img * c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := out.Data[((img*oh+oy)*ow+ox)*colW : ((img*oh+oy)*ow+ox+1)*colW]
				idx := 0
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride - pad + ky
						if iy < 0 || iy >= h {
							idx += kw
							continue
						}
						rowBase := chBase + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride - pad + kx
							if ix >= 0 && ix < w {
								row[idx] = x.Data[rowBase+ix]
							}
							idx++
						}
					}
				}
			}
		}
	}
	return out
}

// Col2Im is the adjoint of Im2Col: it scatters a (N*OH*OW, C*KH*KW) matrix
// of receptive-field gradients back into an image tensor of shape
// (N, C, H, W), accumulating where fields overlap.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	colW := c * kh * kw
	if cols.Rank() != 2 || cols.Dim(0) != n*oh*ow || cols.Dim(1) != colW {
		panic(fmt.Sprintf("tensor: Col2Im input %v, want [%d %d]", cols.Shape(), n*oh*ow, colW))
	}
	out := New(n, c, h, w)
	for img := 0; img < n; img++ {
		base := img * c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := cols.Data[((img*oh+oy)*ow+ox)*colW : ((img*oh+oy)*ow+ox+1)*colW]
				idx := 0
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride - pad + ky
						if iy < 0 || iy >= h {
							idx += kw
							continue
						}
						rowBase := chBase + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride - pad + kx
							if ix >= 0 && ix < w {
								out.Data[rowBase+ix] += row[idx]
							}
							idx++
						}
					}
				}
			}
		}
	}
	return out
}

// MaxPool2D applies 2-D max pooling with a square window and equal stride to
// x with shape (N, C, H, W). It returns the pooled tensor of shape
// (N, C, OH, OW) and the flat argmax indices into x.Data used by the
// backward pass.
func MaxPool2D(x *Tensor, size, stride int) (*Tensor, []int) {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: MaxPool2D needs rank-4 input, have %v", x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := ConvOutSize(h, size, stride, 0)
	ow := ConvOutSize(w, size, stride, 0)
	out := New(n, c, oh, ow)
	arg := make([]int, out.Size())
	oi := 0
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			chBase := (img*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := chBase + (oy*stride)*w + ox*stride
					best := x.Data[bestIdx]
					for ky := 0; ky < size; ky++ {
						rowBase := chBase + (oy*stride+ky)*w
						for kx := 0; kx < size; kx++ {
							idx := rowBase + ox*stride + kx
							if x.Data[idx] > best {
								best, bestIdx = x.Data[idx], idx
							}
						}
					}
					out.Data[oi] = best
					arg[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out, arg
}

// MaxUnpool2D scatters pooled gradients grad back to input positions using
// the argmax indices produced by MaxPool2D. inputSize is the flat size of the
// original input tensor.
func MaxUnpool2D(grad *Tensor, arg []int, inputShape []int) *Tensor {
	out := New(inputShape...)
	for i, g := range grad.Data {
		out.Data[arg[i]] += g
	}
	return out
}
