package tensor

// ConvOutSize returns the output spatial size of a convolution or pooling
// with the given input size, kernel size, stride, and symmetric padding.
func ConvOutSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col lowers a batched image tensor x with shape (N, C, H, W) into a
// matrix of shape (N*OH*OW, C*KH*KW) where each row holds one receptive
// field. Convolution then becomes a single MatMul against the reshaped
// kernel, which is how internal/nn implements Conv2D.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	oh, ow, colW := im2ColDims(x, kh, kw, stride, pad)
	out := New(x.shape[0]*oh*ow, colW)
	im2ColInto(out, x, kh, kw, stride, pad, oh, ow)
	return out
}

// Im2ColInto lowers x into dst, reusing dst's storage. dst must have shape
// (N*OH*OW, C*KH*KW); every element (including padding zeros) is written,
// so dst's prior contents do not matter.
func Im2ColInto(dst, x *Tensor, kh, kw, stride, pad int) {
	oh, ow, colW := im2ColDims(x, kh, kw, stride, pad)
	rows := x.shape[0] * oh * ow
	if dst.Rank() != 2 || dst.shape[0] != rows || dst.shape[1] != colW {
		panicConvDst("Im2ColInto", dst, rows, colW)
	}
	im2ColInto(dst, x, kh, kw, stride, pad, oh, ow)
}

func im2ColDims(x *Tensor, kh, kw, stride, pad int) (oh, ow, colW int) {
	if x.Rank() != 4 {
		panicConvRank("Im2Col", x)
	}
	c, h, w := x.shape[1], x.shape[2], x.shape[3]
	oh = ConvOutSize(h, kh, stride, pad)
	ow = ConvOutSize(w, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		panicIm2ColEmpty(x, kh, kw, stride, pad)
	}
	return oh, ow, c * kh * kw
}

// im2ColInto writes every receptive field of x into out, including explicit
// zeros at padded positions so out may hold stale data on entry.
func im2ColInto(out, x *Tensor, kh, kw, stride, pad, oh, ow int) {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	colW := c * kh * kw
	for img := 0; img < n; img++ {
		base := img * c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := out.Data[((img*oh+oy)*ow+ox)*colW:][:colW]
				idx := 0
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride - pad + ky
						if iy < 0 || iy >= h {
							for kx := 0; kx < kw; kx++ {
								row[idx] = 0
								idx++
							}
							continue
						}
						rowBase := chBase + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride - pad + kx
							if ix >= 0 && ix < w {
								row[idx] = x.Data[rowBase+ix]
							} else {
								row[idx] = 0
							}
							idx++
						}
					}
				}
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters a (N*OH*OW, C*KH*KW) matrix
// of receptive-field gradients back into an image tensor of shape
// (N, C, H, W), accumulating where fields overlap.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	out := New(n, c, h, w)
	col2ImInto(out, cols, n, c, h, w, kh, kw, stride, pad, "Col2Im")
	return out
}

// Col2ImInto scatters cols into dst, reusing dst's storage. dst must have
// shape (N, C, H, W); it is zeroed before accumulation.
func Col2ImInto(dst, cols *Tensor, kh, kw, stride, pad int) {
	if dst.Rank() != 4 {
		panicConvRank("Col2ImInto", dst)
	}
	n, c, h, w := dst.shape[0], dst.shape[1], dst.shape[2], dst.shape[3]
	dst.Zero()
	col2ImInto(dst, cols, n, c, h, w, kh, kw, stride, pad, "Col2ImInto")
}

func col2ImInto(out, cols *Tensor, n, c, h, w, kh, kw, stride, pad int, op string) {
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	colW := c * kh * kw
	if cols.Rank() != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != colW {
		panicCol2ImShape(op, cols, n*oh*ow, colW)
	}
	for img := 0; img < n; img++ {
		base := img * c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := cols.Data[((img*oh+oy)*ow+ox)*colW:][:colW]
				idx := 0
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride - pad + ky
						if iy < 0 || iy >= h {
							idx += kw
							continue
						}
						rowBase := chBase + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride - pad + kx
							if ix >= 0 && ix < w {
								out.Data[rowBase+ix] += row[idx]
							}
							idx++
						}
					}
				}
			}
		}
	}
}

// MaxPool2D applies 2-D max pooling with a square window and equal stride to
// x with shape (N, C, H, W). It returns the pooled tensor of shape
// (N, C, OH, OW) and the flat argmax indices into x.Data used by the
// backward pass.
func MaxPool2D(x *Tensor, size, stride int) (*Tensor, []int) {
	if x.Rank() != 4 {
		panicConvRank("MaxPool2D", x)
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh := ConvOutSize(h, size, stride, 0)
	ow := ConvOutSize(w, size, stride, 0)
	out := New(n, c, oh, ow)
	arg := make([]int, out.Size())
	maxPool2DInto(out, arg, x, size, stride, oh, ow)
	return out, arg
}

// MaxPool2DInto pools x into dst, reusing dst's storage and the arg index
// buffer (grown when too small). dst must have shape (N, C, OH, OW); it
// returns the argmax slice, which aliases arg when it had capacity.
func MaxPool2DInto(dst *Tensor, arg []int, x *Tensor, size, stride int) []int {
	if x.Rank() != 4 {
		panicConvRank("MaxPool2DInto", x)
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh := ConvOutSize(h, size, stride, 0)
	ow := ConvOutSize(w, size, stride, 0)
	if dst.Rank() != 4 || dst.shape[0] != n || dst.shape[1] != c || dst.shape[2] != oh || dst.shape[3] != ow {
		panicConvDst("MaxPool2DInto", dst, n, c, oh, ow)
	}
	if cap(arg) < dst.Size() {
		arg = make([]int, dst.Size())
	}
	arg = arg[:dst.Size()]
	maxPool2DInto(dst, arg, x, size, stride, oh, ow)
	return arg
}

func maxPool2DInto(out *Tensor, arg []int, x *Tensor, size, stride, oh, ow int) {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oi := 0
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			chBase := (img*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := chBase + (oy*stride)*w + ox*stride
					best := x.Data[bestIdx]
					for ky := 0; ky < size; ky++ {
						rowBase := chBase + (oy*stride+ky)*w
						for kx := 0; kx < size; kx++ {
							idx := rowBase + ox*stride + kx
							if x.Data[idx] > best {
								best, bestIdx = x.Data[idx], idx
							}
						}
					}
					out.Data[oi] = best
					arg[oi] = bestIdx
					oi++
				}
			}
		}
	}
}

// MaxUnpool2D scatters pooled gradients grad back to input positions using
// the argmax indices produced by MaxPool2D. inputShape is the shape of the
// original input tensor.
func MaxUnpool2D(grad *Tensor, arg []int, inputShape []int) *Tensor {
	out := New(inputShape...)
	for i, g := range grad.Data {
		out.Data[arg[i]] += g
	}
	return out
}

// MaxUnpool2DInto scatters grad into dst (which must have the pooling
// input's shape), reusing dst's storage. dst is zeroed first.
func MaxUnpool2DInto(dst, grad *Tensor, arg []int) {
	dst.Zero()
	for i, g := range grad.Data {
		dst.Data[arg[i]] += g
	}
}
