// Package tensor implements dense float64 tensors and the linear-algebra
// kernels needed by the neural-network substrate (internal/nn): element-wise
// arithmetic, matrix multiplication, 2-D convolution via im2col, and pooling.
//
// Tensors are row-major. The package is intentionally small and allocation
// conscious: hot paths (MatMul, im2col) reuse caller-provided destinations
// where possible and parallelize across goroutines when the work is large
// enough to amortize scheduling.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float64 tensor.
//
// The zero value is an empty tensor; use New or the constructors below to
// create one with a shape. Data is exposed so callers can iterate without
// per-element bounds checks, but Shape must be treated as read-only; use
// Reshape to change it.
type Tensor struct {
	shape []int
	Data  []float64
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := checkedSize(shape)
	return &Tensor{shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); it panics if len(data) does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkedSize(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (size %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// checkedSize panics with a precomputed message: formatting the shape here
// would make every caller's shape slice escape to the heap (escape analysis
// is flow-insensitive), putting an allocation on every hot-path tensor
// construction.
func checkedSize(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative dimension in shape")
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rows returns the first dimension of a matrix (rank-2 tensor).
func (t *Tensor) Rows() int { t.mustRank(2); return t.shape[0] }

// Cols returns the second dimension of a matrix (rank-2 tensor).
func (t *Tensor) Cols() int { t.mustRank(2); return t.shape[1] }

// mustRank panics unless t has rank r; the message formatting lives in a
// cold helper so the guard inlines allocation-free into hot paths.
func (t *Tensor) mustRank(r int) {
	if len(t.shape) != r {
		panicRank(t, r)
	}
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Reshape returns a view of t with a new shape of the same total size.
// The underlying data is shared with t.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkedSize(shape)
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape size %d to %v", len(t.Data), shape))
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: t.Data}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal sizes.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(t.Data), len(src.Data)))
	}
	copy(t.Data, src.Data)
}

// Zero sets every element of t to zero.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i, d := range t.shape {
		if o.shape[i] != d {
			return false
		}
	}
	return true
}

// AllClose reports whether every element of t is within tol of the
// corresponding element of o, and the shapes match.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, v := range t.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a compact description, e.g. "Tensor[2 3]".
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}

// Row returns a view of row i of a matrix as a rank-1 tensor sharing data.
func (t *Tensor) Row(i int) *Tensor {
	t.mustRank(2)
	cols := t.shape[1]
	return &Tensor{shape: []int{cols}, Data: t.Data[i*cols : (i+1)*cols]}
}
