package tensor

import "fmt"

// Cold panic constructors. Shape/size guards sit on every hot-path kernel;
// keeping the fmt machinery in separate non-inlinable functions lets the
// guards themselves inline with zero allocation on the happy path (fmt
// argument boxing would otherwise heap-allocate even when the panic branch
// is never taken).

//go:noinline
func panicSizeMismatch(op string, a, b *Tensor) {
	panic(fmt.Sprintf("tensor: %s size mismatch: %v vs %v", op, a.shape, b.shape))
}

//go:noinline
func panicRank(t *Tensor, r int) {
	panic(fmt.Sprintf("tensor: need rank %d, have shape %v", r, t.shape))
}

//go:noinline
func panicMatMulDims(op string, a, b *Tensor) {
	panic(fmt.Sprintf("tensor: %s dimension mismatch: %v x %v", op, a.shape, b.shape))
}

//go:noinline
func panicMatMulDst(op string, dst *Tensor, m, n int) {
	panic(fmt.Sprintf("tensor: %s dst shape %v, want [%d %d]", op, dst.shape, m, n))
}

//go:noinline
func panicBiasLen(op string, have, want int) {
	panic(fmt.Sprintf("tensor: %s bias length %d, want %d", op, have, want))
}

//go:noinline
func panicArgMaxLen(have, want int) {
	panic(fmt.Sprintf("tensor: ArgMaxRowsInto output length %d, want %d", have, want))
}

//go:noinline
func panicAliasSize(have int, shape []int) {
	panic(fmt.Sprintf("tensor: AliasView source size %d does not match shape %v", have, shape))
}

//go:noinline
func panicAxpyArity(coeffs, srcs int) {
	panic(fmt.Sprintf("tensor: AxpySharded %d coeffs for %d sources", coeffs, srcs))
}

//go:noinline
func panicAxpyLen(k, have, want int) {
	panic(fmt.Sprintf("tensor: AxpySharded source %d length %d, want %d", k, have, want))
}

//go:noinline
func panicConvRank(op string, t *Tensor) {
	panic(fmt.Sprintf("tensor: %s needs rank-4 input, have %v", op, t.shape))
}

//go:noinline
func panicIm2ColEmpty(x *Tensor, kh, kw, stride, pad int) {
	panic(fmt.Sprintf("tensor: Im2Col produces empty output for input %v kernel %dx%d stride %d pad %d", x.shape, kh, kw, stride, pad))
}

//go:noinline
func panicCol2ImShape(op string, cols *Tensor, rows, colW int) {
	panic(fmt.Sprintf("tensor: %s input %v, want [%d %d]", op, cols.shape, rows, colW))
}

//go:noinline
func panicConvDst(op string, dst *Tensor, shape ...int) {
	panic(fmt.Sprintf("tensor: %s dst shape %v, want %v", op, dst.shape, shape))
}
