package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d, want 24", x.Size())
	}
	if x.Rank() != 3 {
		t.Fatalf("Rank = %d, want 3", x.Rank())
	}
	for i, d := range []int{2, 3, 4} {
		if x.Dim(i) != d {
			t.Fatalf("Dim(%d) = %d, want %d", i, x.Dim(i), d)
		}
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatalf("New tensor not zero-filled: %v", v)
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with negative dim did not panic")
		}
	}()
	New(2, -1)
}

func TestFromSliceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with bad length did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetOffsets(t *testing.T) {
	x := New(2, 3)
	x.Set(5, 1, 2)
	if got := x.At(1, 2); got != 5 {
		t.Fatalf("At(1,2) = %v, want 5", got)
	}
	if got := x.Data[1*3+2]; got != 5 {
		t.Fatalf("row-major layout violated: Data[5] = %v", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	x.At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape does not share data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape to wrong size did not panic")
		}
	}()
	x.Reshape(4, 2)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 42
	if x.Data[0] != 1 {
		t.Fatal("Clone shares data with original")
	}
}

func TestRowView(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	r := x.Row(1)
	if r.Size() != 3 || r.Data[0] != 4 {
		t.Fatalf("Row(1) = %v", r.Data)
	}
	r.Data[0] = 40
	if x.At(1, 0) != 40 {
		t.Fatal("Row must be a view, not a copy")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := a.Add(b).Data; got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a).Data; got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Mul(b).Data; got[1] != 10 {
		t.Fatalf("Mul = %v", got)
	}
	if got := a.Scale(2).Data; got[2] != 6 {
		t.Fatalf("Scale = %v", got)
	}
	if a.Data[0] != 1 {
		t.Fatal("ops must not mutate receiver")
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{10, 20}, 2)
	a.AddInPlace(b)
	if a.Data[1] != 22 {
		t.Fatalf("AddInPlace = %v", a.Data)
	}
	a.AxpyInPlace(0.5, b)
	if a.Data[0] != 16 {
		t.Fatalf("AxpyInPlace = %v", a.Data)
	}
	a.ScaleInPlace(2)
	if a.Data[0] != 32 {
		t.Fatalf("ScaleInPlace = %v", a.Data)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{1, -2, 3, 4}, 4)
	if x.Sum() != 6 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 1.5 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Max() != 4 {
		t.Fatalf("Max = %v", x.Max())
	}
	if got := x.Dot(x); got != 1+4+9+16 {
		t.Fatalf("Dot = %v", got)
	}
	if math.Abs(x.Norm2()-math.Sqrt(30)) > 1e-12 {
		t.Fatalf("Norm2 = %v", x.Norm2())
	}
}

func TestArgMaxRows(t *testing.T) {
	x := FromSlice([]float64{1, 5, 2, 9, 3, 4}, 2, 3)
	got := x.ArgMaxRows()
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRows = %v", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandNormal(rng, 0, 1, 7, 7)
	id := New(7, 7)
	for i := 0; i < 7; i++ {
		id.Set(1, i, i)
	}
	if !MatMul(a, id).AllClose(a, 1e-12) || !MatMul(id, a).AllClose(a, 1e-12) {
		t.Fatal("identity is not neutral for MatMul")
	}
}

func TestMatMulMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with mismatched inner dims did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatMulIntoReuses(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{1, 0, 0, 1}, 2, 2)
	dst := Full(7, 2, 2)
	MatMulInto(dst, a, b)
	if !dst.AllClose(a, 0) {
		t.Fatalf("MatMulInto = %v", dst.Data)
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// Large enough to cross parallelThreshold.
	rng := rand.New(rand.NewSource(2))
	a := RandNormal(rng, 0, 1, 80, 70)
	b := RandNormal(rng, 0, 1, 70, 90)
	got := MatMul(a, b)
	want := New(80, 90)
	for i := 0; i < 80; i++ {
		for j := 0; j < 90; j++ {
			s := 0.0
			for p := 0; p < 70; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			want.Set(s, i, j)
		}
	}
	if !got.AllClose(want, 1e-9) {
		t.Fatal("parallel MatMul disagrees with naive triple loop")
	}
}

func TestTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandNormal(rng, 0, 1, 5, 8)
	b := RandNormal(rng, 0, 1, 5, 6)
	if !MatMulATB(a, b).AllClose(MatMul(a.Transpose(), b), 1e-10) {
		t.Fatal("MatMulATB != Aᵀ·B")
	}
	c := RandNormal(rng, 0, 1, 4, 8)
	if !MatMulABT(a, c).AllClose(MatMul(a, c.Transpose()), 1e-10) {
		t.Fatal("MatMulABT != A·Bᵀ")
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := a.Transpose()
	if at.Dim(0) != 3 || at.Dim(1) != 2 || at.At(2, 1) != 6 {
		t.Fatalf("Transpose = %v %v", at.Shape(), at.Data)
	}
}

// Property: (A·B)·C == A·(B·C) for random matrices.
func TestMatMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n, q := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := RandNormal(r, 0, 1, m, k)
		b := RandNormal(r, 0, 1, k, n)
		c := RandNormal(r, 0, 1, n, q)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return left.AllClose(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative and Sub(x,x) is zero.
func TestElementwiseProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(32)
		a := RandNormal(r, 0, 1, n)
		b := RandNormal(r, 0, 1, n)
		if !a.Add(b).AllClose(b.Add(a), 1e-12) {
			return false
		}
		return a.Sub(a).AllClose(New(n), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot(x,x) == Norm2(x)².
func TestNormDotProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(64)
		x := RandNormal(r, 0, 1, n)
		d := x.Dot(x)
		nn := x.Norm2()
		return math.Abs(d-nn*nn) <= 1e-9*(1+math.Abs(d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAllCloseShapes(t *testing.T) {
	a := New(2, 3)
	b := New(3, 2)
	if a.AllClose(b, 1) {
		t.Fatal("AllClose must require matching shapes")
	}
}

func TestRandDeterminism(t *testing.T) {
	a := RandNormal(rand.New(rand.NewSource(7)), 0, 1, 10)
	b := RandNormal(rand.New(rand.NewSource(7)), 0, 1, 10)
	if !a.AllClose(b, 0) {
		t.Fatal("RandNormal not deterministic for fixed seed")
	}
}

func TestGlorotUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	fanIn, fanOut := 20, 30
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	x := GlorotUniform(rng, fanIn, fanOut, 1000)
	for _, v := range x.Data {
		if v < -limit || v >= limit {
			t.Fatalf("Glorot sample %v outside [-%v, %v)", v, limit, limit)
		}
	}
}
