package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

func TestPoolGetTensorRoundTrip(t *testing.T) {
	var p Pool
	a := p.GetTensor(4, 8)
	if a.Dim(0) != 4 || a.Dim(1) != 8 || a.Size() != 32 {
		t.Fatalf("GetTensor shape = %v", a.Shape())
	}
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	p.PutTensor(a)
	b := p.GetTensorZeroed(64)
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("GetTensorZeroed[%d] = %v, want 0", i, v)
		}
	}
}

func TestPoolReusesStorage(t *testing.T) {
	var p Pool
	a := p.GetTensor(100)
	data := &a.Data[:cap(a.Data)][0]
	p.PutTensor(a)
	b := p.GetTensor(70) // same bucket (128)
	if &b.Data[:cap(b.Data)][0] != data {
		t.Fatal("pool did not reuse the returned buffer")
	}
	if len(b.Data) != 70 {
		t.Fatalf("reused length = %d, want 70", len(b.Data))
	}
}

func TestPoolBucketFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, -1}, {-3, -1},
		{1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
	}
	for _, c := range cases {
		if got := bucketFor(c.n); got != c.want {
			t.Fatalf("bucketFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	if bucketFor(1<<maxBucketBits+1) != -1 {
		t.Fatal("oversized request must bypass the pool")
	}
}

func TestPoolSliceRoundTrip(t *testing.T) {
	var p Pool
	s := p.Get(200)
	if len(s) != 200 {
		t.Fatalf("Get length = %d", len(s))
	}
	p.Put(s)
	z := p.GetZeroed(150)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZeroed[%d] = %v", i, v)
		}
	}
	p.Put(nil) // no-op
	p.PutTensor(nil)
}

func TestPoolForeignSliceBucketedByCapacity(t *testing.T) {
	var p Pool
	s := make([]float64, 100, 100) // not a power of two
	p.Put(s)
	// 100 cap covers bucket 64 fully: a 64-element Get must fit.
	g := p.Get(64)
	if len(g) != 64 {
		t.Fatalf("Get(64) length = %d", len(g))
	}
}

func TestAliasViewSharesData(t *testing.T) {
	src := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	v := AliasView(nil, src, []int{3, 2})
	if v.Dim(0) != 3 || v.Dim(1) != 2 {
		t.Fatalf("view shape = %v", v.Shape())
	}
	v.Data[0] = 42
	if src.Data[0] != 42 {
		t.Fatal("view must share storage")
	}
	// Reusing the header must not allocate a new one.
	v2 := AliasView(v, src, []int{6})
	if v2 != v {
		t.Fatal("AliasView must reuse the provided header")
	}
}

func TestAliasViewSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch must panic")
		}
	}()
	AliasView(nil, New(4), []int{3})
}

// TestPoolConcurrentStress hammers one shared pool from many goroutines
// under -race: distinct Get results must never alias while owned.
func TestPoolConcurrentStress(t *testing.T) {
	var p Pool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for it := 0; it < 300; it++ {
				n := 1 + rng.Intn(500)
				tt := p.GetTensor(n)
				for i := range tt.Data {
					tt.Data[i] = float64(g)
				}
				for _, v := range tt.Data {
					if v != float64(g) {
						t.Errorf("goroutine %d saw foreign write %v", g, v)
						return
					}
				}
				p.PutTensor(tt)
			}
		}(g)
	}
	wg.Wait()
}
