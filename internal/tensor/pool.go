package tensor

import (
	"math/bits"
	"sync"
)

// Pool is a size-bucketed recycler for tensors and float64 buffers, backing
// the training hot path's workspaces (internal/nn.Workspace). Storage is
// bucketed by capacity rounded to a power of two and cached in sync.Pools,
// so steady-state training batches reuse buffers instead of allocating,
// while idle buffers remain reclaimable by the GC.
//
// The pooled unit is a *Tensor: headers travel with their storage, so a
// GetTensor/PutTensor round trip allocates nothing at all (sync.Pool stores
// the pointer directly — no interface boxing).
//
// Ownership rule: a buffer obtained from Get/GetTensor is owned exclusively
// by the caller until it is returned with Put/PutTensor; after returning it
// (and any view sharing its data) must not be touched again. Returning
// foreign slices is allowed (they are bucketed by capacity), returning nil
// is a no-op. A Pool is safe for concurrent use; the zero value is ready.
type Pool struct {
	buckets [maxBucketBits - minBucketBits + 1]sync.Pool
}

const (
	// minBucketBits is the smallest bucket (64 elements): tinier buffers
	// cost less to allocate than to round-trip through a sync.Pool.
	minBucketBits = 6
	// maxBucketBits caps pooling at 2^28 elements (2 GiB of float64);
	// larger buffers are handed to the allocator directly.
	maxBucketBits = 28
)

// bucketFor returns the bucket index whose capacity (2^(idx+minBucketBits))
// is the smallest that holds n elements, or -1 when n is outside the pooled
// range.
func bucketFor(n int) int {
	if n <= 0 {
		return -1
	}
	b := bits.Len(uint(n - 1))
	if b < minBucketBits {
		b = minBucketBits
	}
	if b > maxBucketBits {
		return -1
	}
	return b - minBucketBits
}

// GetTensor returns a tensor of the given shape with pooled storage and
// unspecified contents. Use GetTensorZeroed when zeroing matters.
func (p *Pool) GetTensor(shape ...int) *Tensor {
	n := checkedSize(shape)
	b := bucketFor(n)
	if b < 0 {
		return &Tensor{shape: append([]int(nil), shape...), Data: make([]float64, n)}
	}
	if t, _ := p.buckets[b].Get().(*Tensor); t != nil {
		t.Data = t.Data[:n]
		t.shape = append(t.shape[:0], shape...)
		return t
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: make([]float64, n, 1<<(b+minBucketBits))}
}

// GetTensorZeroed returns a zero-filled tensor of the given shape with
// pooled storage.
func (p *Pool) GetTensorZeroed(shape ...int) *Tensor {
	t := p.GetTensor(shape...)
	t.Zero()
	return t
}

// PutTensor returns a tensor and its storage to the pool. The tensor (and
// any views sharing its data) must not be used afterwards. nil is a no-op.
func (p *Pool) PutTensor(t *Tensor) {
	if t == nil {
		return
	}
	c := cap(t.Data)
	if c < 1<<minBucketBits {
		return
	}
	// Bucket by the largest power of two the capacity fully covers, so a
	// future Get from that bucket always fits.
	b := bits.Len(uint(c)) - 1 - minBucketBits
	if b < 0 {
		return
	}
	if b > maxBucketBits-minBucketBits {
		b = maxBucketBits - minBucketBits
	}
	t.Data = t.Data[:0]
	t.shape = t.shape[:0]
	p.buckets[b].Put(t)
}

// Get returns a []float64 of length n with unspecified contents.
func (p *Pool) Get(n int) []float64 {
	b := bucketFor(n)
	if b < 0 {
		return make([]float64, n)
	}
	if t, _ := p.buckets[b].Get().(*Tensor); t != nil {
		return t.Data[:n]
	}
	return make([]float64, n, 1<<(b+minBucketBits))
}

// GetZeroed returns a zero-filled []float64 of length n.
func (p *Pool) GetZeroed(n int) []float64 {
	s := p.Get(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// Put returns a buffer to the pool. The caller must not use s afterwards.
func (p *Pool) Put(s []float64) {
	if cap(s) == 0 {
		return
	}
	p.PutTensor(&Tensor{Data: s})
}

// AliasView points view at src's data with the given shape, reusing view's
// header and shape slice so steady-state reshapes (nn.Flatten) allocate
// nothing. It returns view, or a fresh header when view is nil. shape must
// cover exactly src's element count.
func AliasView(view, src *Tensor, shape []int) *Tensor {
	return AliasSlice(view, src.Data, shape)
}

// AliasSlice is AliasView over a raw slice: it points view at data with the
// given shape, reusing view's header and shape slice. shape must cover
// exactly len(data) elements.
func AliasSlice(view *Tensor, data []float64, shape []int) *Tensor {
	n := checkedSize(shape)
	if n != len(data) {
		panicAliasSize(len(data), shape)
	}
	if view == nil {
		view = &Tensor{}
	}
	view.Data = data
	view.shape = append(view.shape[:0], shape...)
	return view
}
