// Package leaf reproduces the LEAF FEMNIST benchmark population the paper
// uses for its large-scale evaluation (Section 5.2.6): 182 clients (LEAF's
// 0.05 sampling of FEMNIST), 62 classes, inherently non-IID data with both
// quantity skew (clients hold very different sample counts) and class/
// feature skew (each client is one "writer" with a private style), plus the
// resource heterogeneity overlay the paper adds when extending LEAF into a
// distributed system.
//
// The default training hyperparameters match the paper/LEAF: SGD with
// learning rate 0.004, batch size 10, 10 clients per round, 1 local epoch,
// 5 tiers, 2000 rounds.
package leaf

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/nn"
	"repro/internal/simres"
)

// Config describes a LEAF-like FEMNIST population.
type Config struct {
	// NumClients is the number of writers; the paper's 0.05 sampling of
	// FEMNIST yields 182.
	NumClients int
	// MeanSamples is the mean per-client training-sample count; actual
	// counts are lognormal around it (LEAF FEMNIST is heavily skewed).
	MeanSamples int
	// SigmaLog is the lognormal shape parameter for sample counts.
	SigmaLog float64
	// MinClasses/MaxClasses bound how many of the 62 classes each writer
	// produces.
	MinClasses, MaxClasses int
	// FeatureSkewStd is the per-writer style offset (non-IID features).
	FeatureSkewStd float64
	// TestSamples sizes the global held-out test set.
	TestSamples int
	// LocalTestMax bounds each client's local test shard.
	LocalTestMax int
	// CPUGroups is the resource heterogeneity overlay (uniform-random
	// assignment, equal counts per hardware type, per the paper).
	CPUGroups []float64
	Seed      int64
}

// Default is the paper-scale configuration (182 clients).
var Default = Config{
	NumClients:     182,
	MeanSamples:    120,
	SigmaLog:       0.6,
	MinClasses:     8,
	MaxClasses:     30,
	FeatureSkewStd: 0.35,
	TestSamples:    3100, // ~50 per class
	LocalTestMax:   60,
	CPUGroups:      simres.GroupsCIFAR,
	Seed:           1,
}

// Population is a materialized LEAF-like federation.
type Population struct {
	Clients    []*flcore.Client
	GlobalTest *dataset.Dataset
	// Samples[i] is client i's training-sample count (quantity skew).
	Samples []int
}

// Build materializes the population: per-writer sample counts, class
// subsets, feature style offsets, local test shards, and CPU assignment.
func Build(cfg Config) *Population {
	if cfg.NumClients <= 0 {
		panic(fmt.Sprintf("leaf: NumClients = %d", cfg.NumClients))
	}
	if cfg.MinClasses < 1 || cfg.MaxClasses > dataset.FEMNISTLike.NumClasses || cfg.MinClasses > cfg.MaxClasses {
		panic(fmt.Sprintf("leaf: class bounds [%d,%d] invalid", cfg.MinClasses, cfg.MaxClasses))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	spec := dataset.FEMNISTLike

	// Per-client sample counts: lognormal, clipped to [10, 8·mean].
	mu := math.Log(float64(cfg.MeanSamples)) - cfg.SigmaLog*cfg.SigmaLog/2
	samples := make([]int, cfg.NumClients)
	total := 0
	for i := range samples {
		n := int(math.Exp(mu + cfg.SigmaLog*rng.NormFloat64()))
		if n < 10 {
			n = 10
		}
		if max := cfg.MeanSamples * 8; n > max {
			n = max
		}
		samples[i] = n
		total += n
	}

	// One global pool large enough for all clients; per-class cursors deal
	// samples out like LEAF's writer partitioning.
	pool := dataset.Generate(spec, total+spec.NumClasses, cfg.Seed+100)
	byClass := pool.ClassIndices()
	cursor := make([]int, spec.NumClasses)
	next := func(class int) int {
		idxs := byClass[class]
		v := idxs[cursor[class]%len(idxs)]
		cursor[class]++
		return v
	}

	globalTest := dataset.Generate(spec, cfg.TestSamples, cfg.Seed+200)

	cpus := simres.AssignGroupsRandom(cfg.NumClients, cfg.CPUGroups, rng)
	clients := make([]*flcore.Client, cfg.NumClients)
	for i := 0; i < cfg.NumClients; i++ {
		nc := cfg.MinClasses + rng.Intn(cfg.MaxClasses-cfg.MinClasses+1)
		classes := rng.Perm(spec.NumClasses)[:nc]
		idx := make([]int, 0, samples[i])
		for s := 0; s < samples[i]; s++ {
			idx = append(idx, next(classes[rng.Intn(nc)]))
		}
		local := pool.Subset(idx)
		dataset.ApplyFeatureSkew(local, rng, cfg.FeatureSkewStd)
		localTest := dataset.TestSubsetForClasses(globalTest, classes, cfg.LocalTestMax, rng)
		clients[i] = &flcore.Client{ID: i, Train: local, Test: localTest, CPU: cpus[i]}
	}
	return &Population{Clients: clients, GlobalTest: globalTest, Samples: samples}
}

// TrainingConfig returns the LEAF defaults from the paper: SGD lr 0.004,
// batch 10, 1 local epoch, 10 clients per round.
func TrainingConfig(rounds int, seed int64, lm simres.LatencyModel, evalEvery int) flcore.Config {
	return flcore.Config{
		Rounds:          rounds,
		ClientsPerRound: 10,
		LocalEpochs:     1,
		BatchSize:       10,
		Seed:            seed,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, dataset.FEMNISTLike.Dim, []int{64}, dataset.FEMNISTLike.NumClasses, 0)
		},
		Optimizer: func(round int) nn.Optimizer { return nn.NewSGD(0.004, 0) },
		Latency:   lm,
		EvalEvery: evalEvery,
		EvalBatch: 256,
		Parallel:  true,
	}
}
