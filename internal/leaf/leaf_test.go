package leaf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/simres"
)

func randSource() *rand.Rand { return rand.New(rand.NewSource(1)) }

func smallConfig() Config {
	cfg := Default
	cfg.NumClients = 30
	cfg.MeanSamples = 50
	cfg.TestSamples = 620
	return cfg
}

func TestBuildPopulationShape(t *testing.T) {
	pop := Build(smallConfig())
	if len(pop.Clients) != 30 {
		t.Fatalf("clients = %d", len(pop.Clients))
	}
	if pop.GlobalTest.NumClasses != 62 {
		t.Fatalf("classes = %d", pop.GlobalTest.NumClasses)
	}
	for _, c := range pop.Clients {
		if c.Train.Len() < 10 {
			t.Fatalf("client %d has %d samples", c.ID, c.Train.Len())
		}
		if c.Test == nil || c.Test.Len() == 0 {
			t.Fatalf("client %d has no local test shard", c.ID)
		}
		if c.CPU <= 0 {
			t.Fatalf("client %d CPU = %v", c.ID, c.CPU)
		}
	}
}

func TestBuildQuantitySkew(t *testing.T) {
	pop := Build(smallConfig())
	minN, maxN := pop.Clients[0].Train.Len(), pop.Clients[0].Train.Len()
	for _, c := range pop.Clients {
		n := c.Train.Len()
		if n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
	}
	// Lognormal sample counts must actually be skewed.
	if float64(maxN)/float64(minN) < 2 {
		t.Fatalf("sample counts too uniform: min %d max %d", minN, maxN)
	}
}

func TestBuildClassSkew(t *testing.T) {
	cfg := smallConfig()
	cfg.MinClasses, cfg.MaxClasses = 5, 12
	pop := Build(cfg)
	for _, c := range pop.Clients {
		seen := map[int]bool{}
		for _, y := range c.Train.Y {
			seen[y] = true
		}
		if len(seen) > 12 {
			t.Fatalf("client %d holds %d classes, want ≤12", c.ID, len(seen))
		}
	}
}

func TestBuildResourceOverlayBalanced(t *testing.T) {
	cfg := smallConfig()
	cfg.CPUGroups = []float64{4, 2, 1}
	pop := Build(cfg)
	counts := map[float64]int{}
	for _, c := range pop.Clients {
		counts[c.CPU]++
	}
	for _, g := range cfg.CPUGroups {
		if counts[g] != 10 {
			t.Fatalf("cpu %v count = %d, want 10", g, counts[g])
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(smallConfig())
	b := Build(smallConfig())
	if a.Clients[3].Train.Len() != b.Clients[3].Train.Len() {
		t.Fatal("population not deterministic")
	}
	if !a.Clients[3].Train.X.AllClose(b.Clients[3].Train.X, 0) {
		t.Fatal("client data not deterministic")
	}
}

func TestBuildInvalidConfigPanics(t *testing.T) {
	cfg := smallConfig()
	cfg.MinClasses = 0
	defer func() {
		if recover() == nil {
			t.Fatal("invalid class bounds did not panic")
		}
	}()
	Build(cfg)
}

func TestTrainingConfigDefaults(t *testing.T) {
	cfg := TrainingConfig(100, 1, simres.DefaultModel, 10)
	if cfg.ClientsPerRound != 10 || cfg.BatchSize != 10 || cfg.LocalEpochs != 1 {
		t.Fatalf("config = %+v", cfg)
	}
	if cfg.Rounds != 100 {
		t.Fatalf("rounds = %d", cfg.Rounds)
	}
}

func TestTrainingConfigModelShape(t *testing.T) {
	cfg := TrainingConfig(10, 1, simres.DefaultModel, 1)
	m := cfg.Model(randSource())
	want := dataset.FEMNISTLike.Dim*64 + 64 + 64*62 + 62
	if m.NumParams() != want {
		t.Fatalf("params = %d, want %d", m.NumParams(), want)
	}
}

func TestDefaultMatchesPaperScale(t *testing.T) {
	if Default.NumClients != 182 {
		t.Fatalf("default clients = %d, want 182 (LEAF 0.05 sampling)", Default.NumClients)
	}
	if len(Default.CPUGroups) != 5 {
		t.Fatalf("default CPU groups = %d, want 5", len(Default.CPUGroups))
	}
	if math.Abs(Default.CPUGroups[0]-4) > 0 {
		t.Fatalf("fastest group = %v CPUs", Default.CPUGroups[0])
	}
}
