package flnet

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/flcore"
)

// Tiered-asynchronous training over real sockets: the port of
// flcore.TieredAsyncEngine (FedAT-style, Chai et al., SC 2021) onto the TCP
// runtime. One aggregator goroutine per tier drives synchronous mini-FedAvg
// rounds over that tier's live worker connections — broadcast the pulled
// global snapshot, collect updates with the same disconnect tolerance and
// round timeout as the synchronous Aggregator — and every finished tier
// round travels as a MsgTierCommit envelope through a commit channel into a
// single global-model goroutine, which applies the staleness-discounted,
// cross-tier-weighted mixing. Tiers therefore advance at their real network
// and compute speeds: a fast tier commits many rounds while a slow tier
// finishes one, exactly the behaviour the simulated engine models with its
// event queue.
//
// Selection inside each tier uses flcore.TierCohort with the same
// (seed, tier round, tier) keying as the simulation, so under identical
// seeds and tier membership both runtimes draw identical cohorts; only the
// commit interleaving differs (real wall clock here, simulated latency
// there).
//
// Tiering goes live through TieredAsyncConfig.Manager (the
// internal/tiering subsystem): every applied commit's worker-reported
// latencies feed the Manager's EWMA estimates, and at its rebuild points
// the committer swaps the shared membership view — the per-tier loops pick
// the migrated clients up on their next round — and announces each
// migration to the affected worker as a MsgTierReassign envelope. Workers
// whose protocol predates the envelope are pinned in their original tier,
// so mixed fleets keep interoperating. The optional Lockstep mode replays
// a fixed tier-commit schedule (typically a simulated run's), removing the
// wall-clock race from the commit order so a distributed run can be
// byte-compared against its simulation through a migration.

// TieredAsyncConfig configures a distributed tiered-asynchronous run.
type TieredAsyncConfig struct {
	// GlobalCommits is the total number of tier-round commits to apply to
	// the global model before finishing — the distributed analogue of the
	// simulated engine's Duration budget.
	GlobalCommits int
	// ClientsPerRound is |C| within each tier's synchronous mini-round.
	ClientsPerRound int
	// Alpha is the base server mixing rate per committed tier round
	// (default 0.6, matching flcore.TieredAsyncConfig).
	Alpha float64
	// StalenessExp is the staleness discount exponent a in
	// (staleness+1)^(−a) (default 0.5, matching flcore.TieredAsyncConfig).
	StalenessExp float64
	// TierWeight supplies the cross-tier commit weight; nil means neutral
	// for every tier (core.FedATWeights gives FedAT's
	// slower-tier-favoring policy).
	TierWeight flcore.TierWeightFunc
	// RoundTimeout bounds how long a tier waits for its cohort's updates
	// each mini-round; 0 means wait indefinitely.
	RoundTimeout time.Duration
	// InitialWeights is the starting global model.
	InitialWeights []float64
	// Seed keys per-tier cohort selection (flcore.TierCohort).
	Seed int64
	// Manager, if set, makes tiering live (see the package comment above):
	// commit latencies feed it, cohorts are drawn through it, and its
	// rebuild points migrate workers between the running tier loops.
	// Typically an internal/tiering.Manager built from ProfileWorkers
	// measurements (see SetManager for the profile-then-run flow).
	Manager flcore.TierManager
	// Lockstep, when non-empty, fixes the order in which tier commits are
	// applied: entry i names the tier whose commit becomes global version
	// i+1 (out-of-order arrivals are buffered, and each tier starts its
	// next round only after its previous commit applied — the simulated
	// engine's dispatch discipline). Its length must equal GlobalCommits.
	// This removes wall-clock nondeterminism from the commit order, which
	// is what lets parity tests byte-compare a socket run against the
	// simulated engine; real deployments leave it empty.
	Lockstep []int
	// CheckpointEvery, when positive, snapshots the run every so many
	// applied commits as a flcore.TieredCheckpoint: written atomically to
	// CheckpointPath (when set) and handed to OnCheckpoint (when set). At
	// least one of the two must be configured. A Manager used with
	// checkpointing must implement flcore.TierManagerState. A failed
	// checkpoint write fails the run — crash-safety silently gone is worse
	// than a loud stop.
	CheckpointEvery int
	// CheckpointPath is the durable snapshot file (see CheckpointEvery);
	// the previous snapshot is kept at CheckpointPath+".prev".
	CheckpointPath string
	// OnCheckpoint observes every periodic snapshot after it was persisted.
	OnCheckpoint func(c *flcore.TieredCheckpoint)
	// MetricsAddr, when set (e.g. "127.0.0.1:9090" or ":0"), serves the
	// live observability endpoint: GET /metrics returns a MetricsSnapshot
	// as JSON, GET /healthz returns 200. Empty disables the endpoint.
	MetricsAddr string
	// ReassignCodec is the per-tier compression policy for live
	// re-tierings: when a migration moves a worker to tier t, the policy's
	// spec for t (compress.Parse syntax; "none" = dense, "" = leave the
	// worker's codec unchanged) is compared against the worker's current
	// codec and renegotiated over the MsgTierReassign envelope when they
	// differ. Workers predating ProtoCodecRenegotiate keep their handshake
	// codec. nil disables renegotiation (the pre-renegotiation behaviour).
	ReassignCodec func(tier, numTiers int) string
	// MaxRetries bounds per-request redispatches after a cohort member's
	// connection drops mid-round: the tier loop waits up to RejoinWait for
	// the member to re-register (workers running with Reconnect do so
	// automatically) and re-sends the round's request on the fresh
	// connection under the SAME Train.Seq token — the pending waiter moves
	// with it, so whichever connection replies first wins and the other
	// reply finds no waiter: a retried round can never double-count an
	// update. 0 disables redispatch (the historical drop-the-member
	// behaviour).
	MaxRetries int
	// RejoinWait bounds how long a redispatch waits for the dead worker to
	// re-register before giving the member up for the round (default 2s
	// when MaxRetries > 0). It doubles as the tier loops' grace window: a
	// tier whose members are all momentarily dead waits this long for a
	// rejoin before declaring itself stopped, and a tree root whose last
	// child died waits this long for a respawn.
	RejoinWait time.Duration
	// SendTimeout bounds every per-worker send with a write deadline; 0 =
	// block forever (the historical behaviour).
	SendTimeout time.Duration
	// Downlink enables the version-acked delta broadcast: each tier's
	// aggregator loop keeps one delta chain (compress.Downlink.NewChain),
	// encodes the round's snapshot against the chain's base exactly once,
	// and sends the shared payload to every cohort member whose last acked
	// broadcast matches that base — everyone else (first contact, a missed
	// round, a migrated worker, a resume, any worker below
	// ProtoDeltaDownlink) receives the dense snapshot and adopts it as its
	// new base. With a nil Codec the delta is the lossless XOR stream and
	// the run is byte-identical to a dense one; with a lossy codec the
	// chain keeps a server-side error-feedback residual per tier. nil
	// keeps the dense broadcast everywhere.
	Downlink *compress.Downlink
}

func (c *TieredAsyncConfig) withDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.6
	}
	if c.StalenessExp == 0 {
		c.StalenessExp = 0.5
	}
	if c.MaxRetries > 0 && c.RejoinWait == 0 {
		c.RejoinWait = 2 * time.Second
	}
}

func (c TieredAsyncConfig) validate() error {
	switch {
	case c.GlobalCommits <= 0:
		return fmt.Errorf("flnet: GlobalCommits = %d", c.GlobalCommits)
	case c.ClientsPerRound <= 0:
		return fmt.Errorf("flnet: ClientsPerRound = %d", c.ClientsPerRound)
	case len(c.InitialWeights) == 0:
		return fmt.Errorf("flnet: InitialWeights empty")
	case c.Alpha < 0 || c.Alpha > 1:
		return fmt.Errorf("flnet: Alpha = %v", c.Alpha)
	case c.StalenessExp < 0:
		return fmt.Errorf("flnet: StalenessExp = %v", c.StalenessExp)
	case len(c.Lockstep) > 0 && len(c.Lockstep) != c.GlobalCommits:
		return fmt.Errorf("flnet: Lockstep schedules %d commits, GlobalCommits = %d", len(c.Lockstep), c.GlobalCommits)
	case c.MaxRetries < 0:
		return fmt.Errorf("flnet: MaxRetries = %d", c.MaxRetries)
	case c.RejoinWait < 0:
		return fmt.Errorf("flnet: RejoinWait = %v", c.RejoinWait)
	case c.CheckpointEvery < 0:
		return fmt.Errorf("flnet: CheckpointEvery = %d", c.CheckpointEvery)
	case c.CheckpointEvery > 0 && c.CheckpointPath == "" && c.OnCheckpoint == nil:
		return fmt.Errorf("flnet: CheckpointEvery set but neither CheckpointPath nor OnCheckpoint is")
	}
	return nil
}

// TierCommitStats records one applied commit, in commit order — the network
// analogue of flcore.TierRoundRecord.
type TierCommitStats struct {
	// Tier is the committing tier (0 = fastest), TierRound its local round
	// counter, Version the global commit index this commit produced.
	Tier, TierRound, Version int
	// Staleness is the number of global commits applied between this
	// tier's pull and its commit.
	Staleness int
	// Weight is the effective mixing rate applied (alpha after tier
	// weighting and staleness discount).
	Weight float64
	// Clients is how many cohort members' updates made the tier aggregate
	// (fewer than the cohort under disconnects or the round timeout).
	Clients int
	// Seconds is the tier round's wall-clock duration.
	Seconds float64
	// UplinkBytes is the tier round's encoded update traffic.
	UplinkBytes int64
	// DownlinkBytes is the tier round's broadcast traffic as encoded on
	// the wire (delta payloads where the ack state allowed them, dense
	// snapshots otherwise).
	DownlinkBytes int64
}

// TieredAsyncRunResult is a finished distributed tiered-asynchronous job.
type TieredAsyncRunResult struct {
	// Weights is the final global model.
	Weights []float64
	// Commits counts applied commits per tier.
	Commits []int
	// Log is every applied commit in order.
	Log []TierCommitStats
	// UplinkBytes is the total encoded update traffic across all applied
	// commits.
	UplinkBytes int64
	// DownlinkBytes is the total broadcast traffic across all applied
	// commits as encoded on the wire — delta payloads where the
	// version-acked scheme allowed them, dense snapshots otherwise.
	DownlinkBytes int64
	// Retiers counts live re-tierings that moved workers; Reassigned is
	// the total workers migrated (Manager runs only).
	Retiers, Reassigned int
}

// lockSnap is what the lockstep committer hands a tier after applying its
// commit: the tier's next pull (version + weights) AND its next round's
// pre-drawn cohort, both taken at exactly the point the simulated engine's
// dispatch-at-commit would take them. Pre-drawing in the committer is what
// removes the last race: a tier goroutine drawing its own cohort could
// observe a membership rebuilt by a later commit the committer had already
// raced ahead to, which the simulation's atomic commit-then-dispatch never
// does. It also serializes every Manager call into commit order, so the
// sim and net Managers see identical call sequences.
type lockSnap struct {
	version int
	weights []float64
	round   int
	cohort  []int
}

// TieredAsyncAggregator is the FL server for tiered-asynchronous training.
// It reuses the base Aggregator's listener, registration, and profiling;
// Run replaces the synchronous round loop with per-tier loops and the
// asynchronous commit protocol.
type TieredAsyncAggregator struct {
	*Aggregator
	tcfg TieredAsyncConfig

	gmu     sync.Mutex // guards version + gweights
	version int
	gw      []float64

	tmu     sync.Mutex // guards the live membership view
	members [][]int

	fan  *fanIn          // the shared mini-FedAvg fan-in machinery
	acks []chan lockSnap // lockstep mode: per-tier pull snapshots
	down []*downTier     // per-tier delta-broadcast chains (Downlink runs)

	// Resume state, set by Resume/ResumeModel before Run and read-only
	// during it: the restored tier membership and per-tier cursors, plus
	// the checkpointed cumulative totals Run's result continues from.
	resumed      bool
	resumeTiers  [][]int
	startRounds  []int
	baseCommits  []int
	baseRetiers  int
	baseMoved    int
	baseUplink   int64
	baseDownlink int64

	// roundCursor tracks each tier's next round index for checkpoints
	// (committer-goroutine-owned: a resumed tier restarts at the round
	// after its last *committed* one; in-flight rounds die with a crash).
	roundCursor []int

	obs     *obsState
	metrics *metricsServer
}

// NewTieredAsyncAggregator listens on addr (e.g. "127.0.0.1:0").
func NewTieredAsyncAggregator(addr string, cfg TieredAsyncConfig) (*TieredAsyncAggregator, error) {
	cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	base, err := NewAggregator(addr, AggregatorConfig{
		Rounds: cfg.GlobalCommits, ClientsPerRound: cfg.ClientsPerRound,
		RoundTimeout: cfg.RoundTimeout, InitialWeights: cfg.InitialWeights,
		Seed: cfg.Seed, SendTimeout: cfg.SendTimeout,
	})
	if err != nil {
		return nil, err
	}
	obs := &obsState{}
	ta := &TieredAsyncAggregator{
		Aggregator: base,
		tcfg:       cfg,
		gw:         append([]float64(nil), cfg.InitialWeights...),
		fan:        &fanIn{agg: base, obs: obs, timeout: cfg.RoundTimeout, retries: cfg.MaxRetries, rejoinWait: cfg.RejoinWait},
		obs:        obs,
	}
	if cfg.MetricsAddr != "" {
		if err := ta.startMetrics(cfg.MetricsAddr); err != nil {
			base.Close()
			return nil, err
		}
	}
	return ta, nil
}

// SetManager installs the live tiering Manager after construction — the
// profile-then-run flow: NewTieredAsyncAggregator, WaitForWorkers,
// ProfileWorkers, build a tiering.Manager from the measured latencies,
// SetManager, Run(nil). Must be called before Run.
func (ta *TieredAsyncAggregator) SetManager(m flcore.TierManager) { ta.tcfg.Manager = m }

// ErrRosterChanged reports that a checkpoint's worker roster does not
// match the currently registered workers. Callers should fall back to the
// re-profiled resume: ResumeModel + a fresh profiling pass to rebuild
// tiers over the new roster.
var ErrRosterChanged = errors.New("flnet: worker roster changed since checkpoint")

// resumeCommon validates the parts of a checkpoint every resume flavour
// needs and loads the global model and commit counter.
func (ta *TieredAsyncAggregator) resumeCommon(c *flcore.TieredCheckpoint) error {
	if c.Format != flcore.TieredCheckpointFormat {
		return fmt.Errorf("flnet: unknown tiered checkpoint format %d (this build reads format %d)", c.Format, flcore.TieredCheckpointFormat)
	}
	if c.Seed != ta.tcfg.Seed {
		return fmt.Errorf("flnet: checkpoint seed %d != aggregator seed %d", c.Seed, ta.tcfg.Seed)
	}
	if len(c.Weights) != len(ta.tcfg.InitialWeights) {
		return fmt.Errorf("flnet: checkpoint has %d weights, model needs %d", len(c.Weights), len(ta.tcfg.InitialWeights))
	}
	for i, v := range c.Weights {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("flnet: checkpoint weight %d is %v; refusing non-finite model state", i, v)
		}
	}
	if c.Version < 0 || c.Version >= ta.tcfg.GlobalCommits {
		return fmt.Errorf("flnet: checkpoint at version %d, GlobalCommits = %d: nothing to resume", c.Version, ta.tcfg.GlobalCommits)
	}
	if len(ta.tcfg.Lockstep) > 0 {
		return fmt.Errorf("flnet: lockstep runs are single-shot parity harnesses and cannot resume")
	}
	ta.gmu.Lock()
	ta.version = c.Version
	ta.gw = append(ta.gw[:0], c.Weights...)
	ta.gmu.Unlock()
	ta.baseRetiers, ta.baseMoved = c.Retiers, c.Migrations
	ta.baseUplink = c.UplinkBytes
	ta.baseDownlink = c.DownlinkBytes
	ta.resumed = true
	return nil
}

// Resume loads a TieredCheckpoint into the aggregator before Run: the
// global model and version counter, each tier's round cursor and commit
// count, the checkpointed tier membership, and the tiering Manager's
// state. Every worker the checkpoint places in a tier must already have
// re-registered (WaitForWorkers first); otherwise Resume fails with
// ErrRosterChanged and the caller should re-profile the new roster and use
// ResumeModel instead. Run(nil) then continues the job from the saved
// commit count: GlobalCommits is the absolute target, so a run
// checkpointed at version 40 of 100 applies 60 more commits.
func (ta *TieredAsyncAggregator) Resume(c *flcore.TieredCheckpoint) error {
	if len(c.Tiers) == 0 {
		return fmt.Errorf("flnet: checkpoint has no tiers")
	}
	if len(c.Rounds) != len(c.Tiers) || len(c.Commits) != len(c.Tiers) {
		return fmt.Errorf("flnet: checkpoint cursors (%d rounds, %d commits) do not match %d tiers",
			len(c.Rounds), len(c.Commits), len(c.Tiers))
	}
	var missing []int
	ta.mu.Lock()
	for _, members := range c.Tiers {
		for _, id := range members {
			if _, ok := ta.workers[id]; !ok {
				missing = append(missing, id)
			}
		}
	}
	ta.mu.Unlock()
	if len(missing) > 0 {
		sort.Ints(missing)
		return fmt.Errorf("%w: checkpointed workers %v have not re-registered", ErrRosterChanged, missing)
	}
	// Manager and checkpoint must agree, exactly as in the sim engine:
	// silently resuming a managed run unmanaged (or vice versa) changes
	// cohort selection and re-tiering semantics.
	if len(c.ManagerState) > 0 {
		ms, ok := ta.tcfg.Manager.(flcore.TierManagerState)
		if ta.tcfg.Manager == nil || !ok {
			return fmt.Errorf("flnet: checkpoint carries tiering-manager state but the aggregator has no restorable Manager (install one with SetManager)")
		}
		if err := ms.RestoreState(c.ManagerState); err != nil {
			return fmt.Errorf("flnet: restoring manager state: %w", err)
		}
	} else if ta.tcfg.Manager != nil {
		return fmt.Errorf("flnet: aggregator has a Manager but the checkpoint carries no manager state")
	}
	if err := ta.resumeCommon(c); err != nil {
		return err
	}
	ta.resumeTiers = copyNetTiers(c.Tiers)
	ta.startRounds = append([]int(nil), c.Rounds...)
	ta.baseCommits = append([]int(nil), c.Commits...)
	return nil
}

// ResumeModel is the roster-changed resume: it restores only the global
// model, commit counter, and cumulative traffic totals from the
// checkpoint. The caller supplies fresh tiers to Run (typically from a new
// ProfileWorkers pass, with a fresh Manager for live runs) — per-tier
// round cursors and commit histories restart at zero over the new roster,
// while GlobalCommits remains the absolute target.
func (ta *TieredAsyncAggregator) ResumeModel(c *flcore.TieredCheckpoint) error {
	return ta.resumeCommon(c)
}

// copyNetTiers deep-copies a tier membership table.
func copyNetTiers(tiers [][]int) [][]int {
	out := make([][]int, len(tiers))
	for t, members := range tiers {
		out[t] = append([]int(nil), members...)
	}
	return out
}

// snapshot returns the current global version and a copy of the weights —
// the tier loops' "pull".
func (ta *TieredAsyncAggregator) snapshot() (int, []float64) {
	ta.gmu.Lock()
	defer ta.gmu.Unlock()
	return ta.version, append([]float64(nil), ta.gw...)
}

// applyCommit mixes one tier commit into the global model and returns its
// stats. A mismatched weight length or an invalid TierWeight is a
// configuration error (mismatched worker model architecture, broken weight
// policy) that no later commit can heal, so it is reported rather than
// dropped — the loud-failure analogue of the simulated engine's panics.
func (ta *TieredAsyncAggregator) applyCommit(tc *TierCommit, commits []int) (TierCommitStats, error) {
	ta.gmu.Lock()
	defer ta.gmu.Unlock()
	if len(tc.Weights) != len(ta.gw) {
		return TierCommitStats{}, fmt.Errorf("flnet: tier %d commit carries %d weights, global model has %d", tc.Tier, len(tc.Weights), len(ta.gw))
	}
	commits[tc.Tier]++
	w := 1.0
	if ta.tcfg.TierWeight != nil {
		w = ta.tcfg.TierWeight(tc.Tier, commits)
		if w < 0 || math.IsNaN(w) {
			commits[tc.Tier]--
			return TierCommitStats{}, fmt.Errorf("flnet: tier weight %v for tier %d", w, tc.Tier)
		}
	}
	staleness := ta.version - tc.PulledVersion
	alpha := flcore.CommitMix(ta.gw, tc.Weights, ta.tcfg.Alpha, w, staleness, ta.tcfg.StalenessExp)
	ta.version++
	return TierCommitStats{
		Tier: tc.Tier, TierRound: tc.TierRound, Version: ta.version,
		Staleness: staleness, Weight: alpha, Clients: tc.Clients,
		Seconds: tc.Seconds, UplinkBytes: tc.UplinkBytes,
		DownlinkBytes: tc.DownlinkBytes,
	}, nil
}

// tierMembers returns a copy of tier t's current membership.
func (ta *TieredAsyncAggregator) tierMembers(t int) []int {
	ta.tmu.Lock()
	defer ta.tmu.Unlock()
	return append([]int(nil), ta.members[t]...)
}

// feedManager routes one applied commit's observed latencies into the live
// tiering Manager, then lets it decide whether this version is a rebuild
// point. On a re-tiering it swaps the shared membership view (tier loops
// pick it up next round; in-flight rounds complete under the membership
// they were dispatched with) and announces each migration to the moved
// worker — only to workers whose protocol understands MsgTierReassign;
// older workers were pinned at Run start and never appear in the moves.
func (ta *TieredAsyncAggregator) feedManager(tc *TierCommit, version int, res *TieredAsyncRunResult) {
	mgr := ta.tcfg.Manager
	if mgr == nil {
		return
	}
	// Managers that take the richer round observation (tiering.Manager
	// does) get the end-to-end response time and the wire traffic next to
	// the compute-side seconds — the comm-aware tiering signal. Plain
	// TierManagers keep the seconds-only feed.
	if co, ok := mgr.(flcore.CommObserver); ok {
		for _, o := range tc.Observed {
			co.ObserveRound(o.Client, o.Seconds, o.EndToEnd, o.Bytes)
		}
	} else {
		for _, o := range tc.Observed {
			mgr.Observe(o.Client, o.Seconds)
		}
	}
	tiers, moves, changed := mgr.MaybeRetier(version)
	if !changed {
		return
	}
	ta.tmu.Lock()
	ta.members = tiers
	ta.tmu.Unlock()
	res.Retiers++
	res.Reassigned += len(moves)
	for _, mv := range moves {
		w := ta.liveWorker(mv.Client)
		if w == nil || w.proto < ProtoTierReassign {
			continue
		}
		// A migrated worker's delta-downlink ack is void: its new tier's
		// chain has a different base, and clearing (rather than leaving) the
		// ack also keeps a stale same-tier ack from resurfacing if a later
		// rebuild moves the worker back.
		w.clearAck()
		tr := &TierReassign{From: mv.From, To: mv.To, NumTiers: len(tiers)}
		// Per-tier compression policy: renegotiate the migrating worker's
		// codec over the same envelope when the destination tier's policy
		// differs from what the worker currently speaks. The accept window
		// (registered.acceptsCodec) keeps the worker's in-flight old-codec
		// update decodable while the switch propagates.
		if ta.tcfg.ReassignCodec != nil && w.proto >= ProtoCodecRenegotiate {
			if spec := ta.tcfg.ReassignCodec(mv.To, len(tiers)); spec != "" {
				if next, err := compress.Parse(spec); err == nil && next.ID() != w.codecID() {
					tr.Renegotiate, tr.CodecSpec = true, next.Name()
					w.setCodec(next.ID())
				}
			}
		}
		w.c.send(&Envelope{Type: MsgTierReassign, TierReassign: tr}) //nolint:errcheck // informational, best effort
	}
	counts := make([]int, len(tiers))
	for t, ms := range tiers {
		counts[t] = len(ms)
	}
	ta.obs.noteRetier(len(moves), counts)
}

// writeCheckpoint snapshots the run after the applied-th commit as a
// flcore.TieredCheckpoint and persists/announces it per the config. The
// network checkpoint is model-plus-cursors only: no in-flight tier rounds
// (they die with the process and are honestly re-run) and no worker-side
// compression residuals (workers own those and restart residual-fresh).
func (ta *TieredAsyncAggregator) writeCheckpoint(applied int, res *TieredAsyncRunResult) error {
	_, w := ta.snapshot()
	c := &flcore.TieredCheckpoint{
		Format:        flcore.TieredCheckpointFormat,
		Seed:          ta.tcfg.Seed,
		Version:       applied,
		Weights:       w,
		Rounds:        append([]int(nil), ta.roundCursor...),
		Commits:       append([]int(nil), res.Commits...),
		Retiers:       res.Retiers,
		Migrations:    res.Reassigned,
		UplinkBytes:   res.UplinkBytes,
		DownlinkBytes: res.DownlinkBytes,
	}
	ta.tmu.Lock()
	c.Tiers = copyNetTiers(ta.members)
	ta.tmu.Unlock()
	if ms, ok := ta.tcfg.Manager.(flcore.TierManagerState); ok {
		state, err := ms.SnapshotState()
		if err != nil {
			err = fmt.Errorf("flnet: checkpoint at version %d: manager state: %w", applied, err)
			ta.obs.noteCheckpoint(applied, err)
			return err
		}
		c.ManagerState = state
	}
	if ta.tcfg.CheckpointPath != "" {
		if err := c.SaveFile(ta.tcfg.CheckpointPath); err != nil {
			err = fmt.Errorf("flnet: checkpoint at version %d: %w", applied, err)
			ta.obs.noteCheckpoint(applied, err)
			return err
		}
	}
	ta.obs.noteCheckpoint(applied, nil)
	if ta.tcfg.OnCheckpoint != nil {
		ta.tcfg.OnCheckpoint(c)
	}
	return nil
}

// tierAlive reports whether any tier member's connection is still up.
func (ta *TieredAsyncAggregator) tierAlive(members []int) bool {
	for _, id := range members {
		if ta.liveWorker(id) != nil {
			return true
		}
	}
	return false
}

// waitTierAlive polls for any member of tier t to come back within the
// RejoinWait grace window — a tier whose members all flapped at once gets
// a chance to heal instead of permanently exiting its loop. Zero
// RejoinWait reports failure immediately (the historical behaviour).
func (ta *TieredAsyncAggregator) waitTierAlive(t int, done <-chan struct{}) bool {
	if ta.tcfg.RejoinWait <= 0 {
		return false
	}
	deadline := time.Now().Add(ta.tcfg.RejoinWait)
	for time.Now().Before(deadline) {
		select {
		case <-done:
			return false
		case <-time.After(20 * time.Millisecond):
		}
		if ta.tierAlive(ta.tierMembers(t)) {
			return true
		}
	}
	return false
}

// tierOf returns the tier currently holding the given client ID, or -1.
func (ta *TieredAsyncAggregator) tierOf(id int) int {
	ta.tmu.Lock()
	defer ta.tmu.Unlock()
	for t, ms := range ta.members {
		for _, m := range ms {
			if m == id {
				return t
			}
		}
	}
	return -1
}

// numTiers returns the current tier count.
func (ta *TieredAsyncAggregator) numTiers() int {
	ta.tmu.Lock()
	defer ta.tmu.Unlock()
	return len(ta.members)
}

// cohortFor draws tier t's participants for its local round r: through the
// live Manager when one is installed (Algorithm-2 adaptive sizing, current
// membership), otherwise the static TierCohort draw over members.
func (ta *TieredAsyncAggregator) cohortFor(t, r int, members []int) []int {
	if ta.tcfg.Manager != nil {
		return ta.tcfg.Manager.Cohort(t, r, ta.tcfg.ClientsPerRound)
	}
	return flcore.TierCohort(ta.tcfg.Seed, r, t, members, ta.tcfg.ClientsPerRound)
}

// fanIn is the synchronous mini-FedAvg fan-in machinery shared by the two
// places a cohort is trained and collected: the in-process tier loops of
// TieredAsyncAggregator and the per-tier Child aggregator processes of the
// hierarchical tree (tree.go). Both get identical dispatch, seq routing,
// disconnect tolerance, and aggregation-order semantics by construction.
type fanIn struct {
	agg     *Aggregator
	obs     *obsState
	timeout time.Duration // per-collection-window bound (0 = indefinite)
	seq     atomic.Int64  // train-request token source (Train.Seq)
	// retries bounds per-request redispatches after a cohort member's
	// connection dies mid-round (TieredAsyncConfig.MaxRetries; 0 = none),
	// and rejoinWait bounds how long each redispatch waits for the member
	// to re-register.
	retries    int
	rejoinWait time.Duration
}

// downTier is one tier's delta-broadcast state: the chain holding the
// tier's last reconstructed base (plus, for lossy codecs, the server-side
// error-feedback residual), and the tier's versioned-broadcast counter —
// the Train.Version value of the chain's current base. The counter is
// per-tier and per-broadcast rather than the global model version because
// a tier racing its own commit's application can pull the same global
// version twice; a per-broadcast counter keeps every (tier, version) pair
// naming exactly one base, so a stale ack can never alias a newer one.
// Owned by the tier's single aggregator loop — no locking needed.
type downTier struct {
	chain *compress.Chain
	seq   int // versioned broadcasts sent so far (0 = none)
}

// timedUpdate is one collected update plus its aggregator-side arrival
// time, measured from the round's broadcast — the end-to-end response
// latency that feeds comm-aware tiering. src is the exact connection the
// update arrived on, so ack recording survives mid-round redispatches (a
// retried request's reply may come from a different *registered instance
// of the same client ID).
type timedUpdate struct {
	flcore.Update
	arrival float64
	src     *registered
}

// trainReq is one outstanding train request of a tier round: the worker
// connection it went to and, for seq-echoing workers, the waiter its reply
// is routed to. Legacy workers (seq 0, ch nil) are collected from their
// shared channel by round match — safe because legacy workers are pinned
// and therefore can never be trained by two tiers concurrently. A
// redispatch (bounded by fanIn.retries) rebinds the request to the
// member's fresh connection under the same seq token; mu guards the
// binding.
type trainReq struct {
	id  int // the member's client ID, stable across rejoins
	seq int64

	mu       sync.Mutex
	w        *registered
	ch       chan *Envelope
	attempts int // redispatches consumed
}

// current returns the connection and waiter the request is bound to.
func (rq *trainReq) current() (*registered, chan *Envelope) {
	rq.mu.Lock()
	defer rq.mu.Unlock()
	return rq.w, rq.ch
}

// rebind moves the request to a fresh connection and waiter.
func (rq *trainReq) rebind(w *registered, ch chan *Envelope) {
	rq.mu.Lock()
	rq.w, rq.ch = w, ch
	rq.mu.Unlock()
}

// retryCtx is what a mid-round redispatch needs to re-send a request on a
// rejoined member's fresh connection: the round's tier and index, the
// shared broadcast, the round's versioned-broadcast counter, and an
// atomic counter accumulating the broadcast bytes redispatches add. A
// rejoined connection holds no delta base (its registration starts
// unacked), so retried requests always carry the dense snapshot.
type retryCtx struct {
	tier, round int
	bc          *broadcast
	dlVer       int
	extraDown   atomic.Int64
}

// redispatch waits (bounded by rejoinWait and the collection deadline) for
// a dead cohort member to re-register, then re-sends its round request on
// the fresh connection under the SAME seq token: the pending waiter moves
// to the new connection, so whichever connection delivers first wins and
// the other reply finds no waiter — a retried round cannot double-count.
// It reports whether the request was rebound.
func (f *fanIn) redispatch(rq *trainReq, rc *retryCtx, deadline time.Time) bool {
	if f.retries <= 0 || rc == nil {
		return false
	}
	rq.mu.Lock()
	if rq.attempts >= f.retries {
		rq.mu.Unlock()
		return false
	}
	rq.attempts++
	old := rq.w
	rq.mu.Unlock()
	until := time.Now().Add(f.rejoinWait)
	if !deadline.IsZero() && deadline.Before(until) {
		until = deadline
	}
	var nw *registered
	for {
		if w := f.agg.liveWorker(rq.id); w != nil && w != old {
			nw = w
			break
		}
		if !time.Now().Before(until) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
	if nw.proto < ProtoTierReassign {
		return false // seq routing needs a seq-echoing worker
	}
	nch := nw.addPending(rq.seq)
	tr := &Train{Round: rc.round, Seq: rq.seq}
	if rc.dlVer != 0 && nw.proto >= ProtoDeltaDownlink {
		// Version-tagged dense snapshot: the fresh connection adopts it as
		// its base and becomes delta-eligible again next round.
		tr.Version = rc.dlVer
	}
	rc.bc.fill(tr, nw.proto)
	if err := nw.c.send(&Envelope{Type: MsgTrain, Train: tr}); err != nil {
		nw.dropPending(rq.seq)
		return false
	}
	var db int64
	if nw.proto >= ProtoFastWire {
		db = int64(len(rc.bc.raw))
	} else {
		db = int64(compress.DenseBytes(len(rc.bc.weights)))
	}
	rc.extraDown.Add(db)
	f.obs.addDownlink(db)
	f.obs.noteRetry()
	rq.rebind(nw, nch)
	return true
}

// collect gathers the round's updates for the given outstanding requests,
// respecting the round timeout (0 = wait indefinitely). Replies from
// seq-echoing workers arrive through their per-request waiters, so a
// migrated worker trained concurrently by its old and new tier can never
// have its updates cross-matched between the two rounds. When rc is
// non-nil and retries are configured, a request whose connection dies
// mid-window is redispatched to the member's rejoined connection instead
// of being dropped.
func (f *fanIn) collect(reqs []*trainReq, round int, weights []float64, start time.Time, rc *retryCtx) []timedUpdate {
	type got struct {
		u  timedUpdate
		ok bool
	}
	ch := make(chan got, len(reqs))
	var deadline time.Time
	if f.timeout > 0 {
		deadline = time.Now().Add(f.timeout)
	}
	for _, rq := range reqs {
		go func(rq *trainReq) {
			if w, wch := rq.current(); wch == nil {
				u, ok := drainFor(w, round, weights, deadline)
				ch <- got{u: timedUpdate{Update: u, arrival: time.Since(start).Seconds(), src: w}, ok: ok}
				return
			}
			var timeout <-chan time.Time
			if !deadline.IsZero() {
				timer := time.NewTimer(time.Until(deadline))
				defer timer.Stop()
				timeout = timer.C
			}
			for {
				w, wch := rq.current()
				deliver := func(env *Envelope) {
					u, ok := decodeUpdate(w, env, weights)
					ch <- got{u: timedUpdate{Update: u, arrival: time.Since(start).Seconds(), src: w}, ok: ok}
				}
				// A reply that was routed before the connection dropped (or
				// just before the deadline) still counts: always drain the
				// waiter before honoring the death/timeout signal, otherwise
				// the select's random choice would nondeterministically
				// discard a delivered update.
				take := func() bool {
					select {
					case env := <-wch:
						deliver(env)
						return true
					default:
						return false
					}
				}
				select {
				case env := <-wch:
					deliver(env)
					return
				case <-w.deadCh:
					if take() {
						return
					}
					if f.redispatch(rq, rc, deadline) {
						continue // wait on the rebound connection
					}
					ch <- got{ok: false}
					return
				case <-timeout:
					if !take() {
						ch <- got{ok: false}
					}
					return
				}
			}
		}(rq)
	}
	var updates []timedUpdate
	for range reqs {
		if g := <-ch; g.ok {
			updates = append(updates, g.u)
		}
	}
	return updates
}

// tierRoundStatus is the outcome of one attempted tier mini-round.
type tierRoundStatus int

const (
	roundCommitted tierRoundStatus = iota // updates aggregated and committed
	roundNoCohort                         // whole cohort unreachable; redraw next round
	roundEmpty                            // cohort reached but no updates before the windows closed
	roundAbort                            // the tier cannot continue
)

// runRound executes one mini-round of tier t: send the cohort the round's
// weights, collect the matched replies (with extra collection windows for
// all-slow cohorts — a cohort slower than one timeout window still commits
// instead of being perpetually one round behind; a single member
// persistently slower than its cohort is still dropped each round, and
// live re-tiering is the mitigation: its EWMA drifts up until a rebuild
// moves it to a slower tier), and return the FedAvg aggregate as a
// TierCommit ready for the committer — in-process or over the wire.
func (f *fanIn) runRound(t, r int, cohort []int, version int, weights []float64, dl *downTier, done <-chan struct{}) (*TierCommit, tierRoundStatus) {
	const maxCollects = 3
	var conns []*registered
	for _, id := range cohort {
		if w := f.agg.liveWorker(id); w != nil {
			conns = append(conns, w) // dead cohort members: train the rest
		}
	}
	if len(conns) == 0 {
		return nil, roundNoCohort
	}
	// Delta broadcast: the chain advances exactly once per round — the
	// payload is encoded against the chain's base and shared by every
	// eligible recipient (the O(1)-per-round encode) — and the round then
	// proceeds from the chain's post-encode base, so with a lossy codec
	// training, uplink reconstruction, and every dense fallback all see the
	// weights the delta recipients reconstruct, not the pre-loss snapshot.
	var dlPayload []byte
	var dlCodec byte
	dlBase, dlVer := 0, 0
	if dl != nil {
		if dl.chain.HasBase() {
			dlPayload, dlCodec = dl.chain.Encode(weights)
			dlBase = dl.seq
		} else {
			dl.chain.Adopt(weights)
		}
		dl.seq++
		dlVer = dl.seq
		weights = append([]float64(nil), dl.chain.Base()...)
	}
	start := time.Now()
	var reqs []*trainReq
	defer func() {
		for _, rq := range reqs {
			if rq.seq != 0 {
				// Drop on whichever connection currently holds the waiter —
				// a redispatch may have moved it off the original one.
				w, _ := rq.current()
				w.dropPending(rq.seq)
			}
		}
	}()
	bc := newBroadcast(weights)
	sent := make(map[int]int64, len(conns))
	var downBytes int64
	rc := &retryCtx{tier: t, round: r, bc: bc, dlVer: dlVer}
	for _, w := range conns {
		rq := &trainReq{id: w.id, w: w}
		if w.proto >= ProtoTierReassign {
			rq.seq = f.seq.Add(1)
			rq.ch = w.addPending(rq.seq)
		}
		tr := &Train{Round: r, Seq: rq.seq}
		var db int64
		if dlVer != 0 && w.proto >= ProtoDeltaDownlink {
			tr.Version = dlVer
			if dlPayload != nil && w.ackMatch(t, dlBase) {
				tr.Delta, tr.DeltaBase, tr.DeltaCodec = dlPayload, dlBase, dlCodec
				db = int64(len(dlPayload))
			}
		}
		if tr.Delta == nil {
			bc.fill(tr, w.proto)
			if w.proto >= ProtoFastWire {
				db = int64(len(bc.raw))
			} else {
				db = int64(compress.DenseBytes(len(weights)))
			}
		}
		if err := w.c.send(&Envelope{Type: MsgTrain, Train: tr}); err != nil {
			if rq.seq != 0 {
				w.dropPending(rq.seq)
			}
			continue
		}
		f.obs.addDownlink(db)
		downBytes += db
		sent[w.id] = db
		reqs = append(reqs, rq)
	}
	if len(reqs) == 0 {
		return nil, roundNoCohort
	}
	updates := f.collect(reqs, r, weights, start, rc)
	for retry := 0; len(updates) == 0 && retry < maxCollects-1; retry++ {
		select {
		case <-done:
			return nil, roundAbort
		default:
		}
		updates = f.collect(reqs, r, weights, start, rc)
	}
	downBytes += rc.extraDown.Load()
	if len(updates) == 0 {
		return nil, roundEmpty
	}
	// A responding Proto ≥ ProtoDeltaDownlink worker has provably received
	// and adopted this round's versioned base — record the ack that makes
	// it delta-eligible next round. The ack lands on the exact connection
	// the reply came from (u.src), so a redispatched request acks the
	// rejoined connection, never the dead one. Workers that received the
	// broadcast but never replied stay unacked and fall back to dense,
	// which is always safe.
	if dlVer != 0 {
		for _, u := range updates {
			if u.src != nil && u.src.proto >= ProtoDeltaDownlink {
				u.src.setAck(t, dlVer)
			}
		}
	}
	// Deterministic aggregation order: replies arrive in wall-clock order,
	// FedAvg's float sums are order-sensitive, and the simulated engine
	// aggregates in cohort order — reorder to match.
	pos := make(map[int]int, len(cohort))
	for i, id := range cohort {
		pos[id] = i
	}
	sort.Slice(updates, func(i, j int) bool { return pos[updates[i].ClientID] < pos[updates[j].ClientID] })
	wall := time.Since(start).Seconds()
	var upBytes int64
	obs := make([]ClientSeconds, len(updates))
	plain := make([]flcore.Update, len(updates))
	for i, u := range updates {
		plain[i] = u.Update
		upBytes += int64(u.WireBytes)
		secs := u.Latency // worker-reported training seconds
		if secs <= 0 {
			secs = wall // legacy workers: the round's wall clock
		}
		obs[i] = ClientSeconds{
			Client: u.ClientID, Seconds: secs,
			Bytes: sent[u.ClientID] + int64(u.WireBytes), EndToEnd: u.arrival,
		}
	}
	return &TierCommit{
		Tier: t, TierRound: r, PulledVersion: version,
		Weights: flcore.FedAvg(plain), Clients: len(updates),
		Seconds: wall, UplinkBytes: upBytes, DownlinkBytes: downBytes,
		Observed: obs,
	}, roundCommitted
}

// runTierRound runs one mini-round through the shared fan-in and delivers
// the committed aggregate into the in-process commit channel.
func (ta *TieredAsyncAggregator) runTierRound(t, r int, cohort []int, version int, weights []float64, commitCh chan<- *Envelope, done <-chan struct{}) tierRoundStatus {
	var dl *downTier
	if ta.down != nil {
		dl = ta.down[t]
	}
	tc, status := ta.fan.runRound(t, r, cohort, version, weights, dl, done)
	if status != roundCommitted {
		return status
	}
	select {
	case commitCh <- &Envelope{Type: MsgTierCommit, TierCommit: tc}:
		return roundCommitted
	case <-done:
		return roundAbort
	}
}

// tierLoop drives tier t's synchronous mini-FedAvg rounds until the global
// committer signals done or the tier can no longer make progress (its last
// live worker is gone, or maxEmptyRounds consecutive rounds produced no
// update). Under a live Manager the membership is re-read every round, so
// re-tierings take effect at the next dispatch. In lockstep mode the pull
// — version, weights, AND the pre-drawn cohort — comes from the
// committer's per-tier ack channel instead of the shared snapshot, so each
// round starts from exactly the state the simulated engine's dispatch
// would see.
func (ta *TieredAsyncAggregator) tierLoop(t int, commitCh chan<- *Envelope, done <-chan struct{}) {
	// A tier that times out this many rounds in a row (each with several
	// collection windows) stops participating; when every tier stops, Run
	// reports the failure instead of hanging.
	const maxEmptyRounds = 3
	lockstep := len(ta.tcfg.Lockstep) > 0
	empty := 0
	var snap lockSnap
	haveSnap := false
	// A resumed run restarts each tier at the round after its last
	// committed one (startRounds is immutable during Run).
	r0 := 0
	if t < len(ta.startRounds) {
		r0 = ta.startRounds[t]
	}
	for r := r0; ; r++ {
		select {
		case <-done:
			return
		default:
		}
		if lockstep && !haveSnap {
			select {
			case s, ok := <-ta.acks[t]:
				if !ok {
					return
				}
				snap, haveSnap = s, true
			case <-done:
				return
			}
		}
		members := ta.tierMembers(t)
		if !ta.tierAlive(members) {
			// Every member's connection is down. With a rejoin grace window
			// configured, wait for reconnecting workers before giving the
			// tier up for the rest of the run.
			if lockstep || !ta.waitTierAlive(t, done) {
				return
			}
			members = ta.tierMembers(t)
		}
		if empty >= maxEmptyRounds {
			return
		}
		var cohort []int
		var version int
		var weights []float64
		if lockstep {
			r, cohort = snap.round, snap.cohort
			version, weights = snap.version, snap.weights
		} else {
			cohort = ta.cohortFor(t, r, members)
			version, weights = ta.snapshot()
		}
		if len(cohort) == 0 {
			return
		}
		switch ta.runTierRound(t, r, cohort, version, weights, commitCh, done) {
		case roundCommitted:
			empty = 0
			haveSnap = false // next round pulls the post-commit snapshot
		case roundNoCohort:
			if lockstep {
				return // a lockstep schedule cannot skip rounds; give up the tier
			}
			// Whole cohort dead while the tier still has live members
			// elsewhere: the next round draws a different cohort. Back off
			// briefly so the redraw loop cannot burn a core while dead
			// flags propagate.
			time.Sleep(10 * time.Millisecond)
		case roundEmpty:
			if lockstep {
				return
			}
			empty++
		case roundAbort:
			return
		}
	}
}

// Run partitions the registered workers into the given tiers (member worker
// IDs per tier, fastest first — core.TierMembers form; nil uses the live
// Manager's membership), announces the placement to each worker, and drives
// tiered-asynchronous training until GlobalCommits commits have been
// applied. Workers that disconnect — even between profiling and Run — are
// tolerated round to round; Run fails if every tier stops making progress
// (all workers lost, or rounds repeatedly timing out empty) before the
// commit target is reached, or on the first malformed commit (wrong weight
// length, invalid TierWeight) — a configuration error no later commit can
// heal.
func (ta *TieredAsyncAggregator) Run(tiers [][]int) (*TieredAsyncRunResult, error) {
	if tiers == nil && ta.tcfg.Manager != nil {
		tiers = ta.tcfg.Manager.Tiers()
	}
	if tiers == nil && ta.resumeTiers != nil {
		tiers = ta.resumeTiers
	}
	if len(tiers) == 0 {
		return nil, fmt.Errorf("flnet: tiered-async needs at least one tier")
	}
	if ta.baseCommits != nil && len(ta.baseCommits) != len(tiers) {
		return nil, fmt.Errorf("flnet: resumed checkpoint has %d tiers, Run got %d", len(ta.baseCommits), len(tiers))
	}
	if ta.tcfg.CheckpointEvery > 0 && ta.tcfg.Manager != nil {
		if _, ok := ta.tcfg.Manager.(flcore.TierManagerState); !ok {
			return nil, fmt.Errorf("flnet: CheckpointEvery set but Manager %T does not implement flcore.TierManagerState", ta.tcfg.Manager)
		}
	}
	for _, t := range ta.tcfg.Lockstep {
		if t < 0 || t >= len(tiers) {
			return nil, fmt.Errorf("flnet: lockstep schedule names tier %d of %d", t, len(tiers))
		}
	}
	seen := make(map[int]int)
	for t, members := range tiers {
		if len(members) == 0 {
			return nil, fmt.Errorf("flnet: tier %d is empty", t)
		}
		for _, id := range members {
			if prev, dup := seen[id]; dup {
				return nil, fmt.Errorf("flnet: worker %d in tiers %d and %d", id, prev, t)
			}
			seen[id] = t
			// A member must have registered at some point; one that has
			// since dropped is tolerated like any mid-run disconnect.
			ta.mu.Lock()
			_, registered := ta.workers[id]
			ta.mu.Unlock()
			if !registered {
				return nil, fmt.Errorf("flnet: tier %d member %d never registered", t, id)
			}
		}
	}
	ta.tmu.Lock()
	ta.members = make([][]int, len(tiers))
	for t, members := range tiers {
		ta.members[t] = append([]int(nil), members...)
	}
	ta.tmu.Unlock()
	// Live tiering with a mixed fleet: workers that predate
	// MsgTierReassign are pinned in their original tier, so rebuilds never
	// move a worker that could not be told.
	if ta.tcfg.Manager != nil {
		if p, ok := ta.tcfg.Manager.(interface{ Pin(int) }); ok {
			ta.mu.Lock()
			for id, w := range ta.workers {
				if w.proto < ProtoTierReassign {
					p.Pin(id)
				}
			}
			ta.mu.Unlock()
		}
	}
	// Announce placements (best effort: a worker that just dropped is
	// handled by its tier loop like any other disconnect).
	for t, members := range tiers {
		for _, id := range members {
			if w := ta.liveWorker(id); w != nil {
				w.c.send(&Envelope{Type: MsgTierAssign, TierAssign: &TierAssign{Tier: t, NumTiers: len(tiers)}}) //nolint:errcheck // best effort
			}
		}
	}

	if ta.tcfg.Downlink != nil {
		// Fresh chains every Run — on a resumed run the workers' held bases
		// did not survive the crash any more than the chains did, so every
		// tier re-enters through the dense first-contact path.
		ta.down = make([]*downTier, len(tiers))
		for t := range ta.down {
			ta.down[t] = &downTier{chain: ta.tcfg.Downlink.NewChain()}
		}
	}

	if len(ta.tcfg.Lockstep) > 0 {
		ta.acks = make([]chan lockSnap, len(tiers))
		initial := append([]float64(nil), ta.tcfg.InitialWeights...)
		for t := range ta.acks {
			ta.acks[t] = make(chan lockSnap, 1)
			ta.acks[t] <- lockSnap{version: 0, weights: initial, round: 0, cohort: ta.cohortFor(t, 0, ta.tierMembers(t))}
		}
	}

	commitCh := make(chan *Envelope)
	done := make(chan struct{})
	if len(ta.tcfg.Lockstep) == 0 {
		// Self-healing: keep accepting registrations while the run is in
		// flight, and greet every rejoining worker with the tier the run
		// still holds for it — its tier loop then reaches it through
		// liveWorker on the next dispatch (or a pending redispatch). The
		// lockstep parity harness stays frozen-fleet by design.
		go ta.acceptLoop(done)
		ta.setRejoinHook(func(w *registered) {
			if w.role != RoleWorker {
				w.c.close() //nolint:errcheck // tree children rejoin via RunTree only
				return
			}
			ta.obs.noteReconnect(w.id)
			if t := ta.tierOf(w.id); t >= 0 {
				w.c.send(&Envelope{Type: MsgTierAssign, TierAssign: &TierAssign{Tier: t, NumTiers: ta.numTiers()}}) //nolint:errcheck // informational, best effort
			}
		})
	}
	var wg sync.WaitGroup
	loopDone := make([]chan struct{}, len(tiers))
	for t := range tiers {
		wg.Add(1)
		loopDone[t] = make(chan struct{})
		go func(t int) {
			defer wg.Done()
			defer close(loopDone[t])
			ta.tierLoop(t, commitCh, done)
		}(t)
	}
	loopsExited := make(chan struct{})
	go func() {
		wg.Wait()
		close(loopsExited)
	}()

	// The single global-model goroutine is this one: it owns the commit
	// order, applying envelopes as tiers race to deliver them — or, in
	// lockstep mode, in exactly the scheduled order, buffering early
	// arrivals.
	// A resumed run continues the checkpoint's cumulative counters: commits,
	// re-tier totals, uplink traffic, the global version, and each tier's
	// round cursor all pick up where the snapshot left them.
	res := &TieredAsyncRunResult{Commits: make([]int, len(tiers))}
	copy(res.Commits, ta.baseCommits)
	res.Retiers, res.Reassigned = ta.baseRetiers, ta.baseMoved
	res.UplinkBytes = ta.baseUplink
	res.DownlinkBytes = ta.baseDownlink
	ta.roundCursor = make([]int, len(tiers))
	copy(ta.roundCursor, ta.startRounds)
	counts := make([]int, len(tiers))
	for t, ms := range tiers {
		counts[t] = len(ms)
	}
	ta.gmu.Lock()
	applied := ta.version
	ta.gmu.Unlock()
	ta.obs.noteRunStart(ta.tcfg.GlobalCommits, applied, res.Commits, res.Retiers, res.Reassigned, res.UplinkBytes, counts)
	finish := func(applied int, err error) (*TieredAsyncRunResult, error) {
		ta.setRejoinHook(nil)
		close(done)
		ta.FinishWorkers(applied)
		wg.Wait()
		_, res.Weights = ta.snapshot()
		ta.obs.noteRunEnd()
		return res, err
	}
	pending := make([][]*Envelope, len(tiers)) // lockstep buffers
	for applied < ta.tcfg.GlobalCommits {
		var env *Envelope
		if len(ta.tcfg.Lockstep) > 0 {
			want := ta.tcfg.Lockstep[applied]
			for len(pending[want]) == 0 {
				// Watching the scheduled tier's OWN exit (not just the
				// all-loops exit) matters: other tiers may be blocked on
				// their ack channels rather than exited, and only closing
				// done (finish) releases them — waiting for loopsExited
				// here would deadlock.
				select {
				case e := <-commitCh:
					pending[e.TierCommit.Tier] = append(pending[e.TierCommit.Tier], e)
				case <-loopDone[want]:
					// The scheduled tier can never deliver: a completed
					// send would already have been received and stashed
					// (the commit channel is unbuffered), so pending[want]
					// being empty means no commit is coming.
					return finish(applied, fmt.Errorf("flnet: lockstep schedule stalled: tier %d never delivered commit %d of %d", want, applied+1, ta.tcfg.GlobalCommits))
				}
			}
			env = pending[want][0]
			pending[want] = pending[want][1:]
		} else {
			select {
			case e := <-commitCh:
				env = e
			case <-loopsExited:
				// finish() also closes done, stopping the mid-run accept
				// loop, and clears the rejoin hook; the tier loops it waits
				// on have already exited.
				return finish(applied, fmt.Errorf("flnet: every tier stopped making progress after %d of %d commits", applied, ta.tcfg.GlobalCommits))
			}
		}
		stats, err := ta.applyCommit(env.TierCommit, res.Commits)
		if err != nil {
			return finish(applied, err)
		}
		res.Log = append(res.Log, stats)
		res.UplinkBytes += stats.UplinkBytes
		res.DownlinkBytes += stats.DownlinkBytes
		applied++
		ta.obs.noteCommit(stats)
		ta.feedManager(env.TierCommit, stats.Version, res)
		// The committer owns the round cursors: the committing tier's next
		// round is the one after the highest round it has committed — a
		// resumed run restarts there, and any round that was in flight when
		// the process died is honestly re-run.
		if next := env.TierCommit.TierRound + 1; next > ta.roundCursor[env.TierCommit.Tier] {
			ta.roundCursor[env.TierCommit.Tier] = next
		}
		if ta.tcfg.CheckpointEvery > 0 && applied%ta.tcfg.CheckpointEvery == 0 {
			if err := ta.writeCheckpoint(applied, res); err != nil {
				return finish(applied, err)
			}
		}
		if len(ta.tcfg.Lockstep) > 0 {
			// Hand the committing tier its next pull: the post-commit
			// snapshot and its next round's cohort, both taken after any
			// re-tiering at this version — the simulated engine's
			// dispatch-at-commit discipline. Lockstep never skips rounds,
			// so the tier's next round index is its commit count. The ack
			// channel is buffered and the tier has at most one commit in
			// flight, so this never blocks.
			tier := env.TierCommit.Tier
			ver, w := ta.snapshot()
			nextRound := res.Commits[tier]
			ta.acks[tier] <- lockSnap{version: ver, weights: w, round: nextRound, cohort: ta.cohortFor(tier, nextRound, ta.tierMembers(tier))}
		}
	}
	// Done goes out before waiting on the tier loops: workers finishing an
	// in-flight round send their update, read Done, and close their
	// connections, which unblocks any loop still collecting — so the final
	// wait is bounded even when RoundTimeout is generous.
	return finish(applied, nil)
}

// ProfileAndRun is the end-to-end entry point: profile every registered
// worker over the network (core.Profile's Section 4.2 pass, measured on
// real connections), build numTiers latency tiers from the measurements,
// and run the tiered-asynchronous protocol over them. It returns the built
// tiers and the profiling dropouts alongside the result — a worker that
// missed its profiling reply is excluded from every tier and sits out the
// whole run, so callers should surface the dropout list.
//
// When a live Manager was installed (SetManager), the Manager was already
// seeded from a profiling pass, so no second pass runs (numTiers and
// profileTimeout are ignored, dropouts is nil) and the returned tiers
// mirror the Manager's FINAL membership — aligned with the result's
// per-tier commit counters even after mid-run re-tierings.
func (ta *TieredAsyncAggregator) ProfileAndRun(numTiers int, profileTimeout time.Duration) (*TieredAsyncRunResult, []core.Tier, []int, error) {
	if ta.tcfg.Manager != nil {
		res, err := ta.Run(nil)
		return res, managerTierView(ta.tcfg.Manager), nil, err
	}
	lat, dropouts, err := ta.ProfileWorkers(profileTimeout)
	if err != nil {
		return nil, nil, dropouts, err
	}
	tiers := core.BuildTiers(lat, numTiers, core.Quantile)
	res, err := ta.Run(core.TierMembers(tiers))
	return res, tiers, dropouts, err
}

// managerTierView renders a Manager's current membership as []core.Tier,
// with mean latencies from its EWMA estimates when it exposes them
// (tiering.Manager does).
func managerTierView(mgr flcore.TierManager) []core.Tier {
	est, hasEst := mgr.(interface{ EWMA(int) (float64, bool) })
	tiers := mgr.Tiers()
	out := make([]core.Tier, len(tiers))
	for t, members := range tiers {
		out[t] = core.Tier{ID: t, Members: members}
		if !hasEst || len(members) == 0 {
			continue
		}
		sum, n := 0.0, 0
		for _, c := range members {
			if v, ok := est.EWMA(c); ok {
				sum += v
				n++
			}
		}
		if n > 0 {
			out[t].MeanLatency = sum / float64(n)
		}
	}
	return out
}
