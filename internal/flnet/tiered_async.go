package flnet

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/flcore"
)

// Tiered-asynchronous training over real sockets: the port of
// flcore.TieredAsyncEngine (FedAT-style, Chai et al., SC 2021) onto the TCP
// runtime. One aggregator goroutine per tier drives synchronous mini-FedAvg
// rounds over that tier's live worker connections — broadcast the pulled
// global snapshot, collect updates with the same disconnect tolerance and
// round timeout as the synchronous Aggregator — and every finished tier
// round travels as a MsgTierCommit envelope through a commit channel into a
// single global-model goroutine, which applies the staleness-discounted,
// cross-tier-weighted mixing. Tiers therefore advance at their real network
// and compute speeds: a fast tier commits many rounds while a slow tier
// finishes one, exactly the behaviour the simulated engine models with its
// event queue.
//
// Selection inside each tier uses flcore.TierCohort with the same
// (seed, tier round, tier) keying as the simulation, so under identical
// seeds and tier membership both runtimes draw identical cohorts; only the
// commit interleaving differs (real wall clock here, simulated latency
// there).

// TieredAsyncConfig configures a distributed tiered-asynchronous run.
type TieredAsyncConfig struct {
	// GlobalCommits is the total number of tier-round commits to apply to
	// the global model before finishing — the distributed analogue of the
	// simulated engine's Duration budget.
	GlobalCommits int
	// ClientsPerRound is |C| within each tier's synchronous mini-round.
	ClientsPerRound int
	// Alpha is the base server mixing rate per committed tier round
	// (default 0.6, matching flcore.TieredAsyncConfig).
	Alpha float64
	// StalenessExp is the staleness discount exponent a in
	// (staleness+1)^(−a) (default 0.5, matching flcore.TieredAsyncConfig).
	StalenessExp float64
	// TierWeight supplies the cross-tier commit weight; nil means neutral
	// for every tier (core.FedATWeights gives FedAT's
	// slower-tier-favoring policy).
	TierWeight flcore.TierWeightFunc
	// RoundTimeout bounds how long a tier waits for its cohort's updates
	// each mini-round; 0 means wait indefinitely.
	RoundTimeout time.Duration
	// InitialWeights is the starting global model.
	InitialWeights []float64
	// Seed keys per-tier cohort selection (flcore.TierCohort).
	Seed int64
}

func (c *TieredAsyncConfig) withDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.6
	}
	if c.StalenessExp == 0 {
		c.StalenessExp = 0.5
	}
}

func (c TieredAsyncConfig) validate() error {
	switch {
	case c.GlobalCommits <= 0:
		return fmt.Errorf("flnet: GlobalCommits = %d", c.GlobalCommits)
	case c.ClientsPerRound <= 0:
		return fmt.Errorf("flnet: ClientsPerRound = %d", c.ClientsPerRound)
	case len(c.InitialWeights) == 0:
		return fmt.Errorf("flnet: InitialWeights empty")
	case c.Alpha < 0 || c.Alpha > 1:
		return fmt.Errorf("flnet: Alpha = %v", c.Alpha)
	case c.StalenessExp < 0:
		return fmt.Errorf("flnet: StalenessExp = %v", c.StalenessExp)
	}
	return nil
}

// TierCommitStats records one applied commit, in commit order — the network
// analogue of flcore.TierRoundRecord.
type TierCommitStats struct {
	// Tier is the committing tier (0 = fastest), TierRound its local round
	// counter, Version the global commit index this commit produced.
	Tier, TierRound, Version int
	// Staleness is the number of global commits applied between this
	// tier's pull and its commit.
	Staleness int
	// Weight is the effective mixing rate applied (alpha after tier
	// weighting and staleness discount).
	Weight float64
	// Clients is how many cohort members' updates made the tier aggregate
	// (fewer than the cohort under disconnects or the round timeout).
	Clients int
	// Seconds is the tier round's wall-clock duration.
	Seconds float64
	// UplinkBytes is the tier round's encoded update traffic.
	UplinkBytes int64
}

// TieredAsyncRunResult is a finished distributed tiered-asynchronous job.
type TieredAsyncRunResult struct {
	// Weights is the final global model.
	Weights []float64
	// Commits counts applied commits per tier.
	Commits []int
	// Log is every applied commit in order.
	Log []TierCommitStats
	// UplinkBytes is the total encoded update traffic across all applied
	// commits.
	UplinkBytes int64
}

// TieredAsyncAggregator is the FL server for tiered-asynchronous training.
// It reuses the base Aggregator's listener, registration, and profiling;
// Run replaces the synchronous round loop with per-tier loops and the
// asynchronous commit protocol.
type TieredAsyncAggregator struct {
	*Aggregator
	tcfg TieredAsyncConfig

	gmu     sync.Mutex // guards version + gweights
	version int
	gw      []float64
}

// NewTieredAsyncAggregator listens on addr (e.g. "127.0.0.1:0").
func NewTieredAsyncAggregator(addr string, cfg TieredAsyncConfig) (*TieredAsyncAggregator, error) {
	cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	base, err := NewAggregator(addr, AggregatorConfig{
		Rounds: cfg.GlobalCommits, ClientsPerRound: cfg.ClientsPerRound,
		RoundTimeout: cfg.RoundTimeout, InitialWeights: cfg.InitialWeights,
		Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &TieredAsyncAggregator{
		Aggregator: base,
		tcfg:       cfg,
		gw:         append([]float64(nil), cfg.InitialWeights...),
	}, nil
}

// snapshot returns the current global version and a copy of the weights —
// the tier loops' "pull".
func (ta *TieredAsyncAggregator) snapshot() (int, []float64) {
	ta.gmu.Lock()
	defer ta.gmu.Unlock()
	return ta.version, append([]float64(nil), ta.gw...)
}

// applyCommit mixes one tier commit into the global model and returns its
// stats. A mismatched weight length or an invalid TierWeight is a
// configuration error (mismatched worker model architecture, broken weight
// policy) that no later commit can heal, so it is reported rather than
// dropped — the loud-failure analogue of the simulated engine's panics.
func (ta *TieredAsyncAggregator) applyCommit(tc *TierCommit, commits []int) (TierCommitStats, error) {
	ta.gmu.Lock()
	defer ta.gmu.Unlock()
	if len(tc.Weights) != len(ta.gw) {
		return TierCommitStats{}, fmt.Errorf("flnet: tier %d commit carries %d weights, global model has %d", tc.Tier, len(tc.Weights), len(ta.gw))
	}
	commits[tc.Tier]++
	w := 1.0
	if ta.tcfg.TierWeight != nil {
		w = ta.tcfg.TierWeight(tc.Tier, commits)
		if w < 0 || math.IsNaN(w) {
			commits[tc.Tier]--
			return TierCommitStats{}, fmt.Errorf("flnet: tier weight %v for tier %d", w, tc.Tier)
		}
	}
	staleness := ta.version - tc.PulledVersion
	alpha := flcore.CommitMix(ta.gw, tc.Weights, ta.tcfg.Alpha, w, staleness, ta.tcfg.StalenessExp)
	ta.version++
	return TierCommitStats{
		Tier: tc.Tier, TierRound: tc.TierRound, Version: ta.version,
		Staleness: staleness, Weight: alpha, Clients: tc.Clients,
		Seconds: tc.Seconds, UplinkBytes: tc.UplinkBytes,
	}, nil
}

// tierAlive reports whether any tier member's connection is still up.
func (ta *TieredAsyncAggregator) tierAlive(members []int) bool {
	for _, id := range members {
		if ta.liveWorker(id) != nil {
			return true
		}
	}
	return false
}

// tierLoop drives tier t's synchronous mini-FedAvg rounds until the global
// committer signals done or the tier can no longer make progress (its last
// live worker is gone, or maxEmptyRounds consecutive rounds produced no
// update). Each round pulls a global snapshot, trains the deterministically
// drawn cohort (skipping workers whose connections dropped),
// FedAvg-aggregates whatever responses arrive before the round timeout, and
// sends the result into the commit channel as a MsgTierCommit envelope.
func (ta *TieredAsyncAggregator) tierLoop(t int, members []int, commitCh chan<- *Envelope, done <-chan struct{}) {
	// A tier that times out this many rounds in a row (each with
	// maxEmptyRounds collection windows) stops participating; when every
	// tier stops, Run reports the failure instead of hanging.
	const maxEmptyRounds = 3
	empty := 0
	for r := 0; ; r++ {
		select {
		case <-done:
			return
		default:
		}
		if !ta.tierAlive(members) || empty >= maxEmptyRounds {
			return
		}
		cohort := flcore.TierCohort(ta.tcfg.Seed, r, t, members, ta.tcfg.ClientsPerRound)
		var conns []*registered
		for _, id := range cohort {
			if w := ta.liveWorker(id); w != nil {
				conns = append(conns, w) // dead cohort members: train the rest
			}
		}
		if len(conns) == 0 {
			// Whole cohort dead while the tier still has live members
			// elsewhere: the next round draws a different cohort. Back off
			// briefly so the redraw loop cannot burn a core while dead
			// flags propagate.
			time.Sleep(10 * time.Millisecond)
			continue
		}
		version, weights := ta.snapshot()
		start := time.Now()
		var live []*registered
		for _, w := range conns {
			if err := w.c.send(&Envelope{Type: MsgTrain, Train: &Train{Round: r, Weights: weights}}); err != nil {
				continue
			}
			live = append(live, w)
		}
		if len(live) == 0 {
			continue
		}
		updates := ta.collect(live, len(live), r, weights)
		// A cohort that is slow in its entirety can outlast RoundTimeout.
		// Its round-r updates stay valid, so grant extra collection windows
		// for the same round before giving it up — an all-slow tier still
		// commits instead of being perpetually one round behind with every
		// late update discarded as stale. (A single member persistently
		// slower than the rest of its cohort is still dropped each round,
		// like a sync-path straggler; the mitigation for that is better
		// tiering — latency-homogeneous tiers by construction, and the
		// re-profiling/re-tiering direction in the ROADMAP.)
		for retry := 0; len(updates) == 0 && retry < maxEmptyRounds-1; retry++ {
			select {
			case <-done:
				return
			default:
			}
			if !ta.tierAlive(members) {
				return
			}
			updates = ta.collect(live, len(live), r, weights)
		}
		if len(updates) == 0 {
			empty++
			continue
		}
		empty = 0
		var upBytes int64
		for _, u := range updates {
			upBytes += int64(u.WireBytes)
		}
		env := &Envelope{Type: MsgTierCommit, TierCommit: &TierCommit{
			Tier: t, TierRound: r, PulledVersion: version,
			Weights: flcore.FedAvg(updates), Clients: len(updates),
			Seconds: time.Since(start).Seconds(), UplinkBytes: upBytes,
		}}
		select {
		case commitCh <- env:
		case <-done:
			return
		}
	}
}

// Run partitions the registered workers into the given tiers (member worker
// IDs per tier, fastest first — core.TierMembers form), announces the
// placement to each worker, and drives tiered-asynchronous training until
// GlobalCommits commits have been applied. Workers that disconnect — even
// between profiling and Run — are tolerated round to round; Run fails if
// every tier stops making progress (all workers lost, or rounds repeatedly
// timing out empty) before the commit target is reached, or on the first
// malformed commit (wrong weight length, invalid TierWeight) — a
// configuration error no later commit can heal.
func (ta *TieredAsyncAggregator) Run(tiers [][]int) (*TieredAsyncRunResult, error) {
	if len(tiers) == 0 {
		return nil, fmt.Errorf("flnet: tiered-async needs at least one tier")
	}
	seen := make(map[int]int)
	for t, members := range tiers {
		if len(members) == 0 {
			return nil, fmt.Errorf("flnet: tier %d is empty", t)
		}
		for _, id := range members {
			if prev, dup := seen[id]; dup {
				return nil, fmt.Errorf("flnet: worker %d in tiers %d and %d", id, prev, t)
			}
			seen[id] = t
			// A member must have registered at some point; one that has
			// since dropped is tolerated like any mid-run disconnect.
			ta.mu.Lock()
			_, registered := ta.workers[id]
			ta.mu.Unlock()
			if !registered {
				return nil, fmt.Errorf("flnet: tier %d member %d never registered", t, id)
			}
		}
	}
	// Announce placements (best effort: a worker that just dropped is
	// handled by its tier loop like any other disconnect).
	for t, members := range tiers {
		for _, id := range members {
			if w := ta.liveWorker(id); w != nil {
				w.c.send(&Envelope{Type: MsgTierAssign, TierAssign: &TierAssign{Tier: t, NumTiers: len(tiers)}}) //nolint:errcheck // best effort
			}
		}
	}

	commitCh := make(chan *Envelope)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for t, members := range tiers {
		wg.Add(1)
		go func(t int, members []int) {
			defer wg.Done()
			ta.tierLoop(t, members, commitCh, done)
		}(t, members)
	}
	loopsExited := make(chan struct{})
	go func() {
		wg.Wait()
		close(loopsExited)
	}()

	// The single global-model goroutine is this one: it owns the commit
	// order, applying envelopes as tiers race to deliver them.
	res := &TieredAsyncRunResult{Commits: make([]int, len(tiers))}
	applied := 0
	for applied < ta.tcfg.GlobalCommits {
		select {
		case env := <-commitCh:
			stats, err := ta.applyCommit(env.TierCommit, res.Commits)
			if err != nil {
				close(done)
				ta.FinishWorkers(applied)
				wg.Wait()
				_, res.Weights = ta.snapshot()
				return res, err
			}
			res.Log = append(res.Log, stats)
			res.UplinkBytes += stats.UplinkBytes
			applied++
		case <-loopsExited:
			ta.FinishWorkers(applied) // tiers may have given up on live-but-slow workers
			_, res.Weights = ta.snapshot()
			return res, fmt.Errorf("flnet: every tier stopped making progress after %d of %d commits", applied, ta.tcfg.GlobalCommits)
		}
	}
	// Done goes out before waiting on the tier loops: workers finishing an
	// in-flight round send their update, read Done, and close their
	// connections, which unblocks any loop still collecting — so the final
	// wait is bounded even when RoundTimeout is generous.
	close(done)
	ta.FinishWorkers(applied)
	wg.Wait()
	_, res.Weights = ta.snapshot()
	return res, nil
}

// ProfileAndRun is the end-to-end entry point: profile every registered
// worker over the network (core.Profile's Section 4.2 pass, measured on
// real connections), build numTiers latency tiers from the measurements,
// and run the tiered-asynchronous protocol over them. It returns the built
// tiers and the profiling dropouts alongside the result — a worker that
// missed its profiling reply is excluded from every tier and sits out the
// whole run, so callers should surface the dropout list.
func (ta *TieredAsyncAggregator) ProfileAndRun(numTiers int, profileTimeout time.Duration) (*TieredAsyncRunResult, []core.Tier, []int, error) {
	lat, dropouts, err := ta.ProfileWorkers(profileTimeout)
	if err != nil {
		return nil, nil, dropouts, err
	}
	tiers := core.BuildTiers(lat, numTiers, core.Quantile)
	res, err := ta.Run(core.TierMembers(tiers))
	return res, tiers, dropouts, err
}
