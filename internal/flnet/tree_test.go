package flnet

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/flcore"
)

// startChildren builds one Child per tier against the root, starts their
// Run loops, and returns the children plus a wait function that checks
// every Run returned nil.
func startChildren(t *testing.T, rootAddr string, tiers [][]int) ([]*Child, func()) {
	t.Helper()
	children := make([]*Child, len(tiers))
	errs := make([]error, len(tiers))
	var wg sync.WaitGroup
	for ti, members := range tiers {
		ch, err := NewChild(ChildConfig{
			ID: ti, RootAddr: rootAddr, Workers: len(members),
			RoundTimeout: 20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		children[ti] = ch
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			errs[ti] = children[ti].Run()
		}(ti)
	}
	t.Cleanup(func() {
		for _, ch := range children {
			ch.Close()
		}
	})
	return children, func() {
		wg.Wait()
		for ti, err := range errs {
			if err != nil {
				t.Errorf("child %d: %v", ti, err)
			}
		}
	}
}

// TestTreeMatchesFlatLockstep is the tentpole equivalence test: a 1-root +
// 3-children tree run under a Lockstep schedule must be byte-identical to
// the flat TieredAsyncAggregator run under the same schedule on the same
// seed — same commit log (tier, round, version, staleness, mix weight) and
// bit-equal final global weights. The tree's commit→pull reply cycle is
// exactly the lockstep dispatch-at-commit discipline, so any divergence
// means the child fan-in, the wire codecs, or the root committer changed
// semantics. Covered per subtest: dense fast wire, int8 quantization, and
// top-k sparsification (both with error feedback).
func TestTreeMatchesFlatLockstep(t *testing.T) {
	commits := 12
	if testing.Short() {
		commits = 6
	}
	clients, tiers, _, cfg := netFixture(t, 0)
	schedule := make([]int, commits)
	for i := range schedule {
		schedule[i] = i % len(tiers)
	}
	init := cfg.Model(rand.New(rand.NewSource(cfg.Seed))).WeightsVector()
	eng := flcore.NewEngine(flcore.Config{
		Rounds: 1, ClientsPerRound: 1, LocalEpochs: cfg.LocalEpochs,
		BatchSize: cfg.BatchSize, Seed: cfg.Seed,
		Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: cfg.Latency,
	}, clients, nil)
	workerCfg := func(ci int, spec string) WorkerConfig {
		wc := WorkerConfig{
			ClientID: ci, NumSamples: clients[ci].NumSamples(),
			Train: func(round int, weights []float64) ([]float64, int, error) {
				u := eng.TrainClient(round, ci, weights)
				return u.Weights, u.NumSamples, nil
			},
		}
		if spec != "" {
			codec, err := compress.Parse(spec)
			if err != nil {
				t.Fatal(err)
			}
			wc.Codec = codec
		}
		return wc
	}
	taCfg := func() TieredAsyncConfig {
		return TieredAsyncConfig{
			GlobalCommits: commits, ClientsPerRound: cfg.ClientsPerRound,
			RoundTimeout: 20 * time.Second, InitialWeights: init, Seed: cfg.Seed,
			Lockstep: append([]int(nil), schedule...),
		}
	}

	for _, tc := range []struct{ name, spec string }{
		{"dense", ""},
		{"int8", "int8"},
		{"topk", "topk@0.25"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Flat reference run.
			flatAgg, err := NewTieredAsyncAggregator("127.0.0.1:0", taCfg())
			if err != nil {
				t.Fatal(err)
			}
			defer flatAgg.Close()
			var cfgs []WorkerConfig
			for _, members := range tiers {
				for _, ci := range members {
					cfgs = append(cfgs, workerCfg(ci, tc.spec))
				}
			}
			wait := startWorkers(t, flatAgg.Addr(), cfgs)
			if err := flatAgg.WaitForWorkers(len(clients), 10*time.Second); err != nil {
				t.Fatal(err)
			}
			flat, err := flatAgg.Run(tiers)
			if err != nil {
				t.Fatal(err)
			}
			wait()

			// Tree run: one child aggregator per tier, same seed and schedule.
			root, err := NewTieredAsyncAggregator("127.0.0.1:0", taCfg())
			if err != nil {
				t.Fatal(err)
			}
			defer root.Close()
			children, waitChildren := startChildren(t, root.Addr(), tiers)
			var leafWaits []func()
			for ti, members := range tiers {
				var cfgs []WorkerConfig
				for _, ci := range members {
					cfgs = append(cfgs, workerCfg(ci, tc.spec))
				}
				leafWaits = append(leafWaits, startWorkers(t, children[ti].Addr(), cfgs))
			}
			if err := root.WaitForChildren(len(tiers), 15*time.Second); err != nil {
				t.Fatal(err)
			}
			tree, err := root.RunTree()
			if err != nil {
				t.Fatal(err)
			}
			waitChildren()
			for _, wait := range leafWaits {
				wait()
			}

			if len(tree.Log) != len(flat.Log) {
				t.Fatalf("tree applied %d commits, flat %d", len(tree.Log), len(flat.Log))
			}
			for i, rec := range tree.Log {
				want := flat.Log[i]
				if rec.Tier != want.Tier || rec.TierRound != want.TierRound ||
					rec.Version != want.Version || rec.Staleness != want.Staleness ||
					math.Float64bits(rec.Weight) != math.Float64bits(want.Weight) {
					t.Fatalf("commit %d diverges: tree %+v vs flat %+v", i, rec, want)
				}
			}
			if len(tree.Weights) != len(flat.Weights) {
				t.Fatalf("weight lengths differ: %d vs %d", len(tree.Weights), len(flat.Weights))
			}
			for i := range tree.Weights {
				if math.Float64bits(tree.Weights[i]) != math.Float64bits(flat.Weights[i]) {
					t.Fatalf("global model diverges at weight %d: %x vs %x",
						i, math.Float64bits(tree.Weights[i]), math.Float64bits(flat.Weights[i]))
				}
			}
			if tree.UplinkBytes != flat.UplinkBytes {
				t.Errorf("tree reported %d uplink bytes, flat %d", tree.UplinkBytes, flat.UplinkBytes)
			}
		})
	}
}

// TestTreeChildDeathDegrades is the chaos case: killing one child
// aggregator mid-run (taking its whole leaf fleet with it) must degrade
// that tier — the remaining children keep committing until the target — and
// the final model must stay within the flat run's accuracy band.
func TestTreeChildDeathDegrades(t *testing.T) {
	commits := 18
	if testing.Short() {
		commits = 9
	}
	clients, tiers, test, cfg := netFixture(t, 0)
	init := cfg.Model(rand.New(rand.NewSource(cfg.Seed))).WeightsVector()
	eng := flcore.NewEngine(flcore.Config{
		Rounds: 1, ClientsPerRound: 1, LocalEpochs: cfg.LocalEpochs,
		BatchSize: cfg.BatchSize, Seed: cfg.Seed,
		Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: cfg.Latency,
	}, clients, nil)
	trainFor := func(ci int) TrainFunc {
		return func(round int, weights []float64) ([]float64, int, error) {
			u := eng.TrainClient(round, ci, weights)
			return u.Weights, u.NumSamples, nil
		}
	}
	evalAcc := func(weights []float64) float64 {
		model := cfg.Model(rand.New(rand.NewSource(cfg.Seed)))
		model.SetWeightsVector(weights)
		acc, _ := model.Evaluate(test.InputTensor(), test.Y, cfg.EvalBatch)
		return acc
	}

	// Flat reference accuracy on the full federation.
	flatAgg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: commits, ClientsPerRound: cfg.ClientsPerRound,
		RoundTimeout: 20 * time.Second, InitialWeights: init, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer flatAgg.Close()
	var cfgs []WorkerConfig
	for ci := range clients {
		cfgs = append(cfgs, WorkerConfig{ClientID: ci, NumSamples: clients[ci].NumSamples(), Train: trainFor(ci)})
	}
	wait := startWorkers(t, flatAgg.Addr(), cfgs)
	if err := flatAgg.WaitForWorkers(len(clients), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	flat, err := flatAgg.Run(tiers)
	if err != nil {
		t.Fatal(err)
	}
	wait()
	flatAcc := evalAcc(flat.Weights)

	// Tree run with a mid-flight kill of the slowest tier's child.
	root, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: commits, ClientsPerRound: cfg.ClientsPerRound,
		RoundTimeout: 20 * time.Second, InitialWeights: init, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	children, _ := startChildren(t, root.Addr(), tiers)
	// A fast-tier leaf assassinates the slowest tier's child the moment its
	// own second round starts — deterministically mid-run, with most of the
	// commit budget still ahead.
	var kill sync.Once
	doomed := children[len(children)-1]
	for ti, members := range tiers {
		for _, ci := range members {
			ci, fast := ci, ti == 0
			train := trainFor(ci)
			// The doomed tier's leaves die with their child; ignore their
			// (expected) connection errors.
			go RunWorker(children[ti].Addr(), WorkerConfig{ //nolint:errcheck
				ClientID: ci, NumSamples: clients[ci].NumSamples(),
				Train: func(round int, weights []float64) ([]float64, int, error) {
					if fast && round >= 1 {
						kill.Do(doomed.Close)
					}
					return train(round, weights)
				},
			})
		}
	}
	if err := root.WaitForChildren(len(tiers), 15*time.Second); err != nil {
		t.Fatal(err)
	}
	tree, err := root.RunTree()
	if err != nil {
		t.Fatal(err)
	}

	total := 0
	for _, c := range tree.Commits {
		total += c
	}
	if total != commits || len(tree.Log) != commits {
		t.Fatalf("degraded tree applied %d commits (log %d), want %d", total, len(tree.Log), commits)
	}
	snap := root.Metrics()
	if len(snap.Children) != len(tiers) {
		t.Fatalf("metrics report %d children, want %d", len(snap.Children), len(tiers))
	}
	if snap.Children[len(tiers)-1].Alive {
		t.Error("killed child still marked alive in metrics")
	}
	treeAcc := evalAcc(tree.Weights)
	if diff := math.Abs(treeAcc - flatAcc); diff > 0.2 {
		t.Errorf("degraded tree accuracy %.3f vs flat %.3f (diff %.3f > 0.2)", treeAcc, flatAcc, diff)
	}
}

// TestTreeCheckpointResume proves crash-safety composes with the topology:
// a tree run checkpoints at the root, and a brand-new root + children +
// leaves resume from the durable snapshot toward the absolute commit
// target, with version continuity across the restart.
func TestTreeCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.ckpt")
	tiers := [][]int{{0, 1}, {2, 3}}
	init := []float64{0, 0, 0, 0}
	leafCfgs := func(members []int) []WorkerConfig {
		var cfgs []WorkerConfig
		for _, ci := range members {
			cfgs = append(cfgs, WorkerConfig{ClientID: ci, NumSamples: 1, Train: echoTrain(0.5, 1, 0)})
		}
		return cfgs
	}
	runPhase := func(target int, resume bool) *TieredAsyncRunResult {
		t.Helper()
		root, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
			GlobalCommits: target, ClientsPerRound: 2,
			RoundTimeout: 10 * time.Second, InitialWeights: init, Seed: 11,
			CheckpointEvery: 2, CheckpointPath: path,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer root.Close()
		children, waitChildren := startChildren(t, root.Addr(), tiers)
		var waits []func()
		for ti, members := range tiers {
			waits = append(waits, startWorkers(t, children[ti].Addr(), leafCfgs(members)))
		}
		if err := root.WaitForChildren(len(tiers), 10*time.Second); err != nil {
			t.Fatal(err)
		}
		if resume {
			c, err := flcore.LoadTieredCheckpointFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := root.ResumeTree(c); err != nil {
				t.Fatal(err)
			}
		}
		res, err := root.RunTree()
		if err != nil {
			t.Fatal(err)
		}
		waitChildren()
		for _, wait := range waits {
			wait()
		}
		return res
	}

	first := runPhase(4, false)
	if got := first.Log[len(first.Log)-1].Version; got != 4 {
		t.Fatalf("first phase ended at version %d, want 4", got)
	}
	second := runPhase(8, true)
	total := 0
	for _, c := range second.Commits {
		total += c
	}
	if total != 8 {
		t.Fatalf("resumed run's cumulative commits %v sum to %d, want the absolute target 8", second.Commits, total)
	}
	if len(second.Log) != 4 {
		t.Fatalf("resumed run applied %d fresh commits, want 4", len(second.Log))
	}
	if got := second.Log[0].Version; got != 5 {
		t.Fatalf("resumed run's first commit is version %d, want 5 (continuity)", got)
	}
	for i, w := range second.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("resumed weight %d is %v", i, w)
		}
	}
}

// TestTreeResumeRosterChanged pins the fallback contract: resuming onto a
// tree whose leaf membership differs from the checkpoint fails with
// ErrRosterChanged, and ResumeModel still salvages the global weights.
func TestTreeResumeRosterChanged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.ckpt")
	init := []float64{0, 0}
	run := func(target int, tiers [][]int, prep func(*TieredAsyncAggregator)) *TieredAsyncRunResult {
		t.Helper()
		root, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
			GlobalCommits: target, ClientsPerRound: 1,
			RoundTimeout: 10 * time.Second, InitialWeights: init, Seed: 5,
			CheckpointEvery: 2, CheckpointPath: path,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer root.Close()
		children, waitChildren := startChildren(t, root.Addr(), tiers)
		var waits []func()
		for ti, members := range tiers {
			var cfgs []WorkerConfig
			for _, ci := range members {
				cfgs = append(cfgs, WorkerConfig{ClientID: ci, NumSamples: 1, Train: echoTrain(1, 1, 0)})
			}
			waits = append(waits, startWorkers(t, children[ti].Addr(), cfgs))
		}
		if err := root.WaitForChildren(len(tiers), 10*time.Second); err != nil {
			t.Fatal(err)
		}
		if prep != nil {
			prep(root)
		}
		res, err := root.RunTree()
		if err != nil {
			t.Fatal(err)
		}
		waitChildren()
		for _, wait := range waits {
			wait()
		}
		return res
	}

	run(2, [][]int{{0}, {1}}, nil)
	// Same tier count, different leaf: the roster check must trip, and the
	// documented ResumeModel fallback must carry the weights forward.
	res := run(4, [][]int{{0}, {7}}, func(root *TieredAsyncAggregator) {
		c, err := flcore.LoadTieredCheckpointFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := root.ResumeTree(c); !errors.Is(err, ErrRosterChanged) {
			t.Fatalf("ResumeTree on a changed roster returned %v, want ErrRosterChanged", err)
		}
		if err := root.ResumeModel(c); err != nil {
			t.Fatal(err)
		}
	})
	if len(res.Log) != 2 {
		t.Fatalf("fallback run applied %d fresh commits, want 2", len(res.Log))
	}
	if got := res.Log[0].Version; got != 3 {
		t.Fatalf("fallback run's first commit is version %d, want 3", got)
	}
}

// TestTreeUplinkAndChildMetrics checks the edge-compression accounting: a
// tree whose leaves upload top-k payloads must surface the children's
// reported uplink traffic both in the run result and as per-child metrics
// rows (tier, address, last-partial age).
func TestTreeUplinkAndChildMetrics(t *testing.T) {
	tiers := [][]int{{0, 1}, {2, 3}}
	init := make([]float64, 64)
	root, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: 4, ClientsPerRound: 2,
		RoundTimeout: 10 * time.Second, InitialWeights: init, Seed: 9,
		Lockstep: []int{0, 1, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	children, waitChildren := startChildren(t, root.Addr(), tiers)
	var waits []func()
	for ti, members := range tiers {
		var cfgs []WorkerConfig
		for _, ci := range members {
			cfgs = append(cfgs, WorkerConfig{
				ClientID: ci, NumSamples: 1, Train: echoTrain(0.25, 1, 0),
				Codec: compress.NewTopK(0.5),
			})
		}
		waits = append(waits, startWorkers(t, children[ti].Addr(), cfgs))
	}
	if err := root.WaitForChildren(len(tiers), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := root.RunTree()
	if err != nil {
		t.Fatal(err)
	}
	waitChildren()
	for _, wait := range waits {
		wait()
	}

	if res.UplinkBytes <= 0 {
		t.Fatalf("tree run reported %d uplink bytes", res.UplinkBytes)
	}
	dense := int64(compress.DenseBytes(len(init))) * 2 * 4 // 2 clients × 4 commits
	if res.UplinkBytes >= dense {
		t.Errorf("top-k uplink %d not below the dense baseline %d", res.UplinkBytes, dense)
	}
	snap := root.Metrics()
	if len(snap.Children) != len(tiers) {
		t.Fatalf("metrics report %d children, want %d", len(snap.Children), len(tiers))
	}
	var childUplink int64
	for ti, row := range snap.Children {
		if row.Tier != ti {
			t.Errorf("child row %d reports tier %d", ti, row.Tier)
		}
		if row.Addr == "" {
			t.Errorf("child row %d has no address", ti)
		}
		if row.UplinkBytes <= 0 {
			t.Errorf("child row %d reports %d uplink bytes", ti, row.UplinkBytes)
		}
		if row.LastPartialAgeSeconds < 0 {
			t.Errorf("child row %d never applied a partial", ti)
		}
		childUplink += row.UplinkBytes
	}
	if childUplink != res.UplinkBytes {
		t.Errorf("per-child uplink rows sum to %d, run reported %d", childUplink, res.UplinkBytes)
	}
}

// TestTreeRejectsMalformedTopology pins the registration validation: plain
// workers cannot register directly with a tree root, and child IDs must be
// the contiguous tier indexes.
func TestTreeRejectsMalformedTopology(t *testing.T) {
	t.Run("plain worker", func(t *testing.T) {
		root, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
			GlobalCommits: 1, ClientsPerRound: 1,
			InitialWeights: []float64{0}, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer root.Close()
		go RunWorker(root.Addr(), WorkerConfig{ClientID: 0, NumSamples: 1, Train: echoTrain(1, 1, 0)}) //nolint:errcheck
		err = root.WaitForChildren(1, 5*time.Second)
		if err == nil || !strings.Contains(err.Error(), "plain worker") {
			t.Fatalf("WaitForChildren accepted a plain worker (err %v)", err)
		}
	})
	t.Run("non-contiguous child IDs", func(t *testing.T) {
		root, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
			GlobalCommits: 1, ClientsPerRound: 1,
			InitialWeights: []float64{0}, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer root.Close()
		ch, err := NewChild(ChildConfig{ID: 1, RootAddr: root.Addr(), Workers: 1, RoundTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer ch.Close()
		go ch.Run()                                                                                  //nolint:errcheck
		go RunWorker(ch.Addr(), WorkerConfig{ClientID: 0, NumSamples: 1, Train: echoTrain(1, 1, 0)}) //nolint:errcheck
		err = root.WaitForChildren(1, 5*time.Second)
		if err == nil || !strings.Contains(err.Error(), "contiguous") {
			t.Fatalf("WaitForChildren accepted tier ID 1 as the only child (err %v)", err)
		}
	})
}
