package flnet

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Live observability for the tiered-async aggregator: an opt-in HTTP
// endpoint (TieredAsyncConfig.MetricsAddr) serving JSON snapshots of the
// run — per-tier commit progress and round rate, last staleness, EWMA
// latency estimates, uplink/downlink traffic, and checkpoint freshness —
// so a long-horizon FedAT run is no longer a black box between its log
// lines. The endpoint is read-only and allocation-light; it never touches
// the training hot path beyond the obsState mutex.

// TierMetrics is one tier's slice of a MetricsSnapshot.
type TierMetrics struct {
	Tier    int `json:"tier"`
	Members int `json:"members"`
	// Commits is the tier's cumulative applied commits (including commits
	// restored from a checkpoint); RoundRatePerSec is this process's
	// commit rate since Run started.
	Commits         int     `json:"commits"`
	RoundRatePerSec float64 `json:"round_rate_per_sec"`
	// LastStaleness and LastRoundSeconds describe the tier's most recent
	// applied commit.
	LastStaleness    int     `json:"last_staleness"`
	LastRoundSeconds float64 `json:"last_round_seconds"`
	// MeanEWMASeconds is the mean of the tiering Manager's EWMA latency
	// estimates over the tier's members (0 without a Manager).
	MeanEWMASeconds float64 `json:"mean_ewma_seconds"`
	// LiveMemberFraction is the fraction of the tier's members whose
	// connections are up right now (flat runs: live worker connections;
	// tree runs: 1 or 0 by the tier's child-aggregator liveness).
	LiveMemberFraction float64 `json:"live_member_fraction"`
}

// ChildMetrics is one child aggregator's slice of a tree-run
// MetricsSnapshot: which tier the child serves, its self-reported address,
// whether its connection is still up, the age of its last applied partial
// (commit), and the cumulative leaf→child uplink traffic it has reported
// upstream.
type ChildMetrics struct {
	Tier  int    `json:"tier"`
	Addr  string `json:"addr,omitempty"`
	Alive bool   `json:"alive"`
	// LastPartialAgeSeconds is the age of the child's most recent applied
	// commit (-1 = none applied yet).
	LastPartialAgeSeconds float64 `json:"last_partial_age_seconds"`
	// UplinkBytes is the child's cumulative reported leaf-side update
	// traffic across its applied commits.
	UplinkBytes int64 `json:"uplink_bytes"`
	// DownlinkBytes is the child's cumulative reported leaf-side broadcast
	// traffic across its applied commits — delta payloads where the
	// child's version-acked scheme allowed them, dense snapshots otherwise.
	DownlinkBytes int64 `json:"downlink_bytes"`
}

// Worker connection states reported in WorkerMetrics.State.
const (
	// WorkerConnected: the worker's connection is live.
	WorkerConnected = "connected"
	// WorkerBackingOff: the connection is down but the worker still holds
	// a tier slot, so the run expects it back (reconnecting workers are in
	// their backoff loop from the aggregator's point of view).
	WorkerBackingOff = "backing-off"
	// WorkerEvicted: the connection is down and no tier holds the worker —
	// it sits out the rest of the run unless a re-tiering re-admits it.
	WorkerEvicted = "evicted"
)

// WorkerMetrics is one worker's connection row in a MetricsSnapshot: the
// registration state as the aggregator sees it, the tier currently holding
// the worker (-1 = none), and how many times it has re-registered mid-run.
type WorkerMetrics struct {
	ID         int    `json:"id"`
	Tier       int    `json:"tier"`
	State      string `json:"state"`
	Reconnects int    `json:"reconnects"`
}

// MetricsSnapshot is the GET /metrics response body.
type MetricsSnapshot struct {
	Running       bool          `json:"running"`
	Version       int           `json:"version"`
	TargetCommits int           `json:"target_commits"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	LiveWorkers   int           `json:"live_workers"`
	Tiers         []TierMetrics `json:"tiers"`
	// Workers carries per-worker connection rows on flat runs (empty on
	// tree runs, where leaf connections live at the child aggregators).
	Workers []WorkerMetrics `json:"workers,omitempty"`
	// Children carries per-child-aggregator rows on tree runs (empty on
	// flat runs).
	Children      []ChildMetrics `json:"children,omitempty"`
	UplinkBytes   int64          `json:"uplink_bytes"`
	DownlinkBytes int64          `json:"downlink_bytes"`
	Retiers       int            `json:"retiers"`
	Reassigned    int            `json:"reassigned"`
	// Reconnects counts worker re-registrations, Retries counts mid-round
	// request redispatches to rejoined workers, and ChildRejoins counts
	// tree child-aggregator revivals.
	Reconnects   int `json:"reconnects"`
	Retries      int `json:"retries"`
	ChildRejoins int `json:"child_rejoins"`
	// LastCheckpointVersion is the global version of the newest durable
	// snapshot (0 = none yet); LastCheckpointAgeSeconds its age (-1 = none
	// yet). LastCheckpointError surfaces a failed write.
	LastCheckpointVersion    int     `json:"last_checkpoint_version"`
	LastCheckpointAgeSeconds float64 `json:"last_checkpoint_age_seconds"`
	LastCheckpointError      string  `json:"last_checkpoint_error,omitempty"`
}

// obsState accumulates the observable side of a tiered-async run. All
// writers come through its methods; the HTTP handler only reads.
type obsState struct {
	mu            sync.Mutex
	running       bool
	started       time.Time
	target        int
	version       int
	commits       []int // cumulative per tier
	startCommits  []int // baseline at Run start (round-rate zero point)
	lastStaleness []int
	lastSeconds   []float64
	members       []int
	uplink        int64
	downlink      int64
	retiers       int
	reassigned    int
	ckptVersion   int
	ckptTime      time.Time
	ckptErr       string
	children      []childObs // tree runs: per-child-aggregator rows
	// Self-healing counters: per-worker and total re-registrations,
	// mid-round redispatches, and tree child revivals.
	reconnects      map[int]int
	totalReconnects int
	retries         int
	childRejoins    int
}

// noteReconnect records worker id re-registering mid-run.
func (o *obsState) noteReconnect(id int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.reconnects == nil {
		o.reconnects = make(map[int]int)
	}
	o.reconnects[id]++
	o.totalReconnects++
}

// noteRetry records one mid-round request redispatch to a rejoined worker.
func (o *obsState) noteRetry() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.retries++
}

// noteChildRejoin records tier t's child aggregator being revived.
func (o *obsState) noteChildRejoin(t int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.childRejoins++
}

// childObs is one child aggregator's observable state (tree runs).
type childObs struct {
	addr     string
	alive    bool
	last     time.Time // last applied partial (zero = none yet)
	uplink   int64     // cumulative reported leaf-side uplink bytes
	downlink int64     // cumulative reported leaf-side broadcast bytes
}

// noteChildUp records a child aggregator joining the tree at tier t.
func (o *obsState) noteChildUp(t int, addr string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for len(o.children) <= t {
		o.children = append(o.children, childObs{})
	}
	o.children[t] = childObs{addr: addr, alive: true}
}

// noteChildCommit records one applied partial from tier t's child.
func (o *obsState) noteChildCommit(t int, uplink, downlink int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if t < 0 || t >= len(o.children) {
		return
	}
	o.children[t].last = time.Now()
	o.children[t].uplink += uplink
	o.children[t].downlink += downlink
}

// noteChildDown marks tier t's child connection as gone.
func (o *obsState) noteChildDown(t int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if t < 0 || t >= len(o.children) {
		return
	}
	o.children[t].alive = false
}

// noteRunStart arms the observable state for a run over numTiers tiers,
// seeding the cumulative counters from a resumed checkpoint's totals.
func (o *obsState) noteRunStart(target int, version int, commits []int, retiers, reassigned int, uplink int64, memberCounts []int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := len(memberCounts)
	o.running = true
	o.started = time.Now()
	o.target = target
	o.version = version
	o.commits = append([]int(nil), commits...)
	o.startCommits = append([]int(nil), commits...)
	o.lastStaleness = make([]int, n)
	o.lastSeconds = make([]float64, n)
	o.members = append([]int(nil), memberCounts...)
	o.retiers, o.reassigned = retiers, reassigned
	o.uplink = uplink
}

// noteRunEnd marks the run finished.
func (o *obsState) noteRunEnd() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.running = false
}

// noteCommit records one applied commit.
func (o *obsState) noteCommit(s TierCommitStats) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.version = s.Version
	if s.Tier >= 0 && s.Tier < len(o.commits) {
		o.commits[s.Tier]++
		o.lastStaleness[s.Tier] = s.Staleness
		o.lastSeconds[s.Tier] = s.Seconds
	}
	o.uplink += s.UplinkBytes
}

// noteRetier records one applied re-tiering and the new member counts.
func (o *obsState) noteRetier(moved int, memberCounts []int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.retiers++
	o.reassigned += moved
	o.members = append(o.members[:0], memberCounts...)
}

// addDownlink accumulates broadcast traffic.
func (o *obsState) addDownlink(n int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.downlink += n
}

// noteCheckpoint records a checkpoint write attempt.
func (o *obsState) noteCheckpoint(version int, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err != nil {
		o.ckptErr = err.Error()
		return
	}
	o.ckptErr = ""
	o.ckptVersion = version
	o.ckptTime = time.Now()
}

// Metrics assembles the current observability snapshot. It is what the
// HTTP endpoint serves, exported so in-process supervisors (and tests)
// can poll without the HTTP round trip.
func (ta *TieredAsyncAggregator) Metrics() MetricsSnapshot {
	o := ta.obs
	o.mu.Lock()
	snap := MetricsSnapshot{
		Running:               o.running,
		Version:               o.version,
		TargetCommits:         o.target,
		LiveWorkers:           0,
		UplinkBytes:           o.uplink,
		DownlinkBytes:         o.downlink,
		Retiers:               o.retiers,
		Reassigned:            o.reassigned,
		Reconnects:            o.totalReconnects,
		Retries:               o.retries,
		ChildRejoins:          o.childRejoins,
		LastCheckpointVersion: o.ckptVersion,
		LastCheckpointError:   o.ckptErr,
	}
	perWorkerReconnects := make(map[int]int, len(o.reconnects))
	for id, n := range o.reconnects {
		perWorkerReconnects[id] = n
	}
	snap.LastCheckpointAgeSeconds = -1
	if !o.ckptTime.IsZero() {
		snap.LastCheckpointAgeSeconds = time.Since(o.ckptTime).Seconds()
	}
	var elapsed float64
	if !o.started.IsZero() {
		elapsed = time.Since(o.started).Seconds()
		snap.UptimeSeconds = elapsed
	}
	for t := range o.commits {
		tm := TierMetrics{
			Tier:          t,
			Commits:       o.commits[t],
			LastStaleness: o.lastStaleness[t],
		}
		if t < len(o.lastSeconds) {
			tm.LastRoundSeconds = o.lastSeconds[t]
		}
		if t < len(o.members) {
			tm.Members = o.members[t]
		}
		if elapsed > 0 && t < len(o.startCommits) {
			tm.RoundRatePerSec = float64(o.commits[t]-o.startCommits[t]) / elapsed
		}
		snap.Tiers = append(snap.Tiers, tm)
	}
	for t, c := range o.children {
		cm := ChildMetrics{Tier: t, Addr: c.addr, Alive: c.alive, UplinkBytes: c.uplink, DownlinkBytes: c.downlink}
		cm.LastPartialAgeSeconds = -1
		if !c.last.IsZero() {
			cm.LastPartialAgeSeconds = time.Since(c.last).Seconds()
		}
		snap.Children = append(snap.Children, cm)
	}
	o.mu.Unlock()

	// Live worker count, per-worker connection rows, live-member
	// fractions, and EWMA means come from their owners, outside the obs
	// mutex.
	type connState struct {
		live bool
		leaf bool
	}
	conns := make(map[int]connState)
	ta.mu.Lock()
	for id, w := range ta.workers {
		live := !w.dead.Load()
		if live {
			snap.LiveWorkers++
		}
		conns[id] = connState{live: live, leaf: w.role == RoleWorker}
	}
	ta.mu.Unlock()
	ta.tmu.Lock()
	tierOf := make(map[int]int)
	tierMembers := copyNetTiers(ta.members)
	for t, ms := range tierMembers {
		for _, id := range ms {
			tierOf[id] = t
		}
	}
	ta.tmu.Unlock()
	if len(snap.Children) == 0 {
		// Flat run: one row per registered leaf worker, with the state the
		// self-healing layer acts on — connected, backing-off (down but
		// still holding a tier slot, so a rejoin is expected), or evicted.
		// Tree runs skip the rows: leaf connections live at the children.
		for id, cs := range conns {
			if !cs.leaf {
				continue
			}
			wm := WorkerMetrics{ID: id, Tier: -1, Reconnects: perWorkerReconnects[id]}
			t, inTier := tierOf[id]
			if inTier {
				wm.Tier = t
			}
			switch {
			case cs.live:
				wm.State = WorkerConnected
			case inTier:
				wm.State = WorkerBackingOff
			default:
				wm.State = WorkerEvicted
			}
			snap.Workers = append(snap.Workers, wm)
		}
		sort.Slice(snap.Workers, func(i, j int) bool { return snap.Workers[i].ID < snap.Workers[j].ID })
		for t, ms := range tierMembers {
			if t >= len(snap.Tiers) || len(ms) == 0 {
				continue
			}
			live := 0
			for _, id := range ms {
				if conns[id].live {
					live++
				}
			}
			snap.Tiers[t].LiveMemberFraction = float64(live) / float64(len(ms))
		}
	} else {
		// Tree run: a tier's members are reachable iff its child is.
		for t := range snap.Tiers {
			if t < len(snap.Children) && snap.Children[t].Alive {
				snap.Tiers[t].LiveMemberFraction = 1
			}
		}
	}
	if est, ok := ta.tcfg.Manager.(interface{ EWMA(int) (float64, bool) }); ok {
		ta.tmu.Lock()
		members := copyNetTiers(ta.members)
		ta.tmu.Unlock()
		for t, ms := range members {
			if t >= len(snap.Tiers) {
				break
			}
			sum, n := 0.0, 0
			for _, c := range ms {
				if v, ok := est.EWMA(c); ok {
					sum += v
					n++
				}
			}
			if n > 0 {
				snap.Tiers[t].MeanEWMASeconds = sum / float64(n)
			}
		}
	}
	return snap
}

// metricsServer is the opt-in HTTP observability endpoint.
type metricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// startMetrics binds the observability endpoint on addr and serves
// GET /metrics (JSON MetricsSnapshot) and GET /healthz.
func (ta *TieredAsyncAggregator) startMetrics(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("flnet: metrics listen on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(ta.Metrics()) //nolint:errcheck // client hangup
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok") //nolint:errcheck // client hangup
	})
	ms := &metricsServer{ln: ln, srv: &http.Server{Handler: mux}}
	go ms.srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on shutdown
	ta.metrics = ms
	return nil
}

// MetricsAddr returns the observability endpoint's listen address
// ("" when metrics are disabled) — with a ":0" MetricsAddr config this is
// where the ephemeral port landed.
func (ta *TieredAsyncAggregator) MetricsAddr() string {
	if ta.metrics == nil {
		return ""
	}
	return ta.metrics.ln.Addr().String()
}

// Close shuts the aggregator (listener and worker connections) and the
// metrics endpoint.
func (ta *TieredAsyncAggregator) Close() {
	if ta.metrics != nil {
		ta.metrics.srv.Close() //nolint:errcheck // shutdown path
	}
	ta.Aggregator.Close()
}
