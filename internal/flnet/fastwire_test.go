package flnet

import (
	"math"
	"net"
	"testing"
	"time"

	"repro/internal/nn"
)

func TestBroadcastNegotiation(t *testing.T) {
	w := []float64{1.5, -2.25, math.Pi, 0}
	fast := newBroadcast(w).fill(&Train{Round: 3}, ProtoFastWire)
	if fast.Weights != nil || fast.Raw == nil {
		t.Fatal("ProtoFastWire must use the Raw payload")
	}
	got, err := fast.roundWeights()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range w {
		if math.Float64bits(got[i]) != math.Float64bits(v) {
			t.Fatalf("fast round trip[%d] = %v, want %v", i, got[i], v)
		}
	}
	legacy := newBroadcast(w).fill(&Train{Round: 3}, ProtoTierReassign)
	if legacy.Raw != nil || legacy.Weights == nil {
		t.Fatal("legacy protocols must use the Weights field")
	}
	lw, err := legacy.roundWeights()
	if err != nil || &lw[0] != &w[0] {
		t.Fatal("legacy roundWeights must return the Weights field directly")
	}
}

func TestRoundWeightsRejectsCorruptRaw(t *testing.T) {
	tr := newBroadcast([]float64{1, 2}).fill(&Train{}, ProtoFastWire)
	tr.Raw[0] ^= 0xFF // break the magic
	if _, err := tr.roundWeights(); err == nil {
		t.Fatal("corrupt raw payload must error")
	}
}

func TestDecodeUpdateFastWire(t *testing.T) {
	w := &registered{codec: 0}
	weights := []float64{0.5, -1, 2}
	env := &Envelope{Type: MsgUpdate, Update: &Update{
		Round: 1, ClientID: 4, NumSamples: 9, Raw: nn.EncodeWeights(weights),
	}}
	u, ok := decodeUpdate(w, env, weights)
	if !ok {
		t.Fatal("fast-wire update must decode")
	}
	if u.ClientID != 4 || u.NumSamples != 9 || len(u.Weights) != 3 {
		t.Fatalf("decoded update = %+v", u)
	}
	for i, v := range weights {
		if math.Float64bits(u.Weights[i]) != math.Float64bits(v) {
			t.Fatalf("weights[%d] = %v, want %v", i, u.Weights[i], v)
		}
	}
	// A corrupt payload is treated like a dropped worker, not a dead round.
	env.Update.Raw[0] ^= 0xFF
	if _, ok := decodeUpdate(w, env, weights); ok {
		t.Fatal("corrupt fast-wire update must be rejected")
	}
}

// A legacy worker (no Proto announcement) must receive legacy Train
// envelopes and may answer with legacy Update envelopes — the fast wire is
// strictly opt-in at registration.
func TestFastWireLegacyWorkerInterop(t *testing.T) {
	agg, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
		Rounds: 1, ClientsPerRound: 2, InitialWeights: []float64{1, 2, 3}, Seed: 1,
		RoundTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	// Modern worker: full fast-wire round trip via RunWorker.
	go RunWorker(agg.Addr(), WorkerConfig{ //nolint:errcheck // exits with aggregator
		ClientID: 0, NumSamples: 5,
		Train: func(round int, w []float64) ([]float64, int, error) {
			out := append([]float64(nil), w...)
			for i := range out {
				out[i] += 1
			}
			return out, 5, nil
		},
	})

	// Legacy worker: hand-rolled, registers without Proto and insists on
	// the Weights field in both directions.
	legacyDone := make(chan error, 1)
	go func() {
		raw, err := net.Dial("tcp", agg.Addr())
		if err != nil {
			legacyDone <- err
			return
		}
		c := newConn(raw)
		defer c.close() //nolint:errcheck // test shutdown
		if err := c.send(&Envelope{Type: MsgRegister, Register: &Register{ClientID: 1, NumSamples: 5}}); err != nil {
			legacyDone <- err
			return
		}
		for {
			env, err := c.recv(10 * time.Second)
			if err != nil {
				legacyDone <- err
				return
			}
			switch env.Type {
			case MsgTrain:
				if env.Train.Raw != nil || env.Train.Weights == nil {
					legacyDone <- errLegacyGotRaw
					return
				}
				out := append([]float64(nil), env.Train.Weights...)
				for i := range out {
					out[i] += 2
				}
				up := &Update{Round: env.Train.Round, ClientID: 1, Weights: out, NumSamples: 5}
				if err := c.send(&Envelope{Type: MsgUpdate, Update: up}); err != nil {
					legacyDone <- err
					return
				}
			case MsgDone:
				legacyDone <- nil
				return
			default:
				legacyDone <- errLegacyUnexpected
				return
			}
		}
	}()

	if err := agg.WaitForWorkers(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Run(UniformSelect(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := <-legacyDone; err != nil {
		t.Fatalf("legacy worker: %v", err)
	}
	// FedAvg of (+1) and (+2) with equal sample counts = +1.5.
	want := []float64{2.5, 3.5, 4.5}
	for i, v := range want {
		if math.Abs(res.Weights[i]-v) > 1e-12 {
			t.Fatalf("aggregated weights = %v, want %v", res.Weights, want)
		}
	}
}

var (
	errLegacyGotRaw     = errString("legacy worker received a fast-wire Train")
	errLegacyUnexpected = errString("legacy worker received unexpected message")
)

type errString string

func (e errString) Error() string { return string(e) }
