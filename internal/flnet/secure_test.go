package flnet

import (
	"math"
	"testing"
	"time"

	"repro/internal/flcore"
)

func TestSecureRoundMatchesPlainFedAvg(t *testing.T) {
	init := []float64{1, 2, 3}
	agg, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
		Rounds: 1, ClientsPerRound: 3, InitialWeights: init, Seed: 21,
		RoundTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	deltas := []float64{1, -1, 2}
	samples := []int{2, 3, 5}
	for i := range deltas {
		go RunWorker(agg.Addr(), WorkerConfig{ //nolint:errcheck
			ClientID: i, NumSamples: samples[i], Train: echoTrain(deltas[i], samples[i], 0),
		})
	}
	if err := agg.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	got, err := agg.RunSecureRound(0, []int{0, 1, 2}, init, 100)
	if err != nil {
		t.Fatal(err)
	}
	var want []float64
	{
		var ups []flcore.Update
		for i := range deltas {
			w := make([]float64, len(init))
			for j := range w {
				w[j] = init[j] + deltas[i]
			}
			ups = append(ups, flcore.Update{ClientID: i, Weights: w, NumSamples: samples[i]})
		}
		want = flcore.FedAvg(ups)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("secure TCP aggregate %v != plain FedAvg %v", got, want)
		}
	}
	agg.FinishWorkers(1)
}

func TestSecureRoundIndividualUpdatesMasked(t *testing.T) {
	// Intercept what the server actually receives: individual submissions
	// must be far from the true weighted updates.
	init := make([]float64, 50)
	agg, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
		Rounds: 1, ClientsPerRound: 2, InitialWeights: init, Seed: 22,
		RoundTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	for i := 0; i < 2; i++ {
		go RunWorker(agg.Addr(), WorkerConfig{ //nolint:errcheck
			ClientID: i, NumSamples: 1, Train: echoTrain(0.5, 1, 0),
		})
	}
	if err := agg.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Send the secure Train ourselves and read raw submissions.
	liveIDs := []int{0, 1}
	for _, id := range liveIDs {
		agg.mu.Lock()
		w := agg.workers[id]
		agg.mu.Unlock()
		err := w.c.send(&Envelope{Type: MsgTrain, Train: &Train{
			Round: 0, Weights: init, Participants: liveIDs, MaskScale: 50,
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range liveIDs {
		agg.mu.Lock()
		w := agg.workers[id]
		agg.mu.Unlock()
		env, ok := recvTimeout(w, 5*time.Second)
		if !ok || env.Type != MsgUpdate {
			t.Fatalf("no update from worker %d", id)
		}
		// True update is 0.5 everywhere (n=1); the masked one must differ
		// wildly.
		dist := 0.0
		for _, v := range env.Update.Weights {
			d := v - 0.5
			dist += d * d
		}
		if math.Sqrt(dist) < 50 {
			t.Fatalf("worker %d's submission is barely masked (dist %v)", id, math.Sqrt(dist))
		}
	}
	agg.FinishWorkers(1)
}

func TestSecureRoundSeedVariesByRound(t *testing.T) {
	if SecureRoundSeed(0, 1) == SecureRoundSeed(0, 2) {
		t.Fatal("round seed must vary by round")
	}
}
