package flnet

import (
	"fmt"

	"repro/internal/flcore"
	"repro/internal/secagg"
)

// Secure aggregation over the wire (reference [5] of the paper — the
// reason cross-device FL stays synchronous). In secure mode the aggregator
// announces the round's full participant cohort and mask scale in the
// Train message; each worker masks its sample-weighted update with the
// pairwise masks of internal/secagg before sending, and the server can
// only recover the cohort's *sum*. A fixed cohort is required — straggler
// discard would leave masks uncancelled — so secure rounds wait for every
// participant (the trade-off the real protocol resolves with secret-shared
// mask recovery).

// SecureRoundSeed derives the public per-round mask seed. In the real
// protocol pairwise seeds come from key agreement; here the seed is public
// and only the pair identities personalize it (see secagg).
func SecureRoundSeed(base int64, round int) int64 {
	return base ^ int64((uint64(round)+1)*0x9E3779B97F4A7C15)
}

// RunSecureRound drives one synchronous round with pairwise-masked
// updates: all chosen workers must respond; the result is the FedAvg of
// their true updates, which the server computes without observing any
// individual update.
func (a *Aggregator) RunSecureRound(round int, chosen []int, weights []float64, maskScale float64) ([]float64, error) {
	live := make([]*registered, 0, len(chosen))
	liveIDs := make([]int, 0, len(chosen))
	for _, id := range chosen {
		a.mu.Lock()
		w := a.workers[id]
		a.mu.Unlock()
		if w != nil {
			live = append(live, w)
			liveIDs = append(liveIDs, id)
		}
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("flnet: secure round %d: no reachable workers", round)
	}
	bc := newBroadcast(weights)
	for _, w := range live {
		msg := &Envelope{Type: MsgTrain, Train: bc.fill(&Train{
			Round:        round,
			Participants: liveIDs, MaskScale: maskScale,
		}, w.proto)}
		if err := w.c.send(msg); err != nil {
			return nil, fmt.Errorf("flnet: secure round %d: worker %d unreachable mid-setup: %w", round, w.id, err)
		}
	}
	// Secure rounds need the full cohort: collect len(live) updates.
	// Workers always send masked updates dense (see WorkerConfig.Codec),
	// but collect still takes the broadcast weights for uniformity.
	updates := a.collect(live, len(live), round, weights)
	if len(updates) != len(live) {
		return nil, fmt.Errorf("flnet: secure round %d: %d of %d submissions (dropout breaks mask cancellation)", round, len(updates), len(live))
	}
	subs := make([]secagg.Submission, len(updates))
	for i, u := range updates {
		subs[i] = secagg.Submission{ClientID: u.ClientID, Masked: u.Weights, NumSamples: u.NumSamples}
	}
	return secagg.Aggregate(subs, liveIDs)
}

// maskedTrainResult applies worker-side masking when the Train message
// carries a participant cohort.
func maskedTrainResult(t *Train, clientID int, w []float64, n int) []float64 {
	if len(t.Participants) == 0 {
		return w
	}
	sub := secagg.MaskUpdate(
		flcore.Update{ClientID: clientID, Weights: w, NumSamples: n},
		t.Participants,
		SecureRoundSeed(0, t.Round),
		t.MaskScale,
	)
	return sub.Masked
}
