package flnet

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/compress"
	"repro/internal/flcore"
	"repro/internal/nn"
)

// Hierarchical aggregation tree: the multi-process promotion of the
// master/child sketch in hierarchy.go (the paper's Section 3.1/4.1 design
// for fan-in scale and fault isolation). A root TieredAsyncAggregator
// speaks the reserved MsgTierCommit envelope to per-tier Child aggregator
// processes; each child runs its own mini-FedAvg fan-in (the exact fanIn
// machinery the in-process tier loops use) over the leaf workers that
// registered with it, so the root only ever sees one pre-reduced vector
// per tier round and FedAT's staleness-discounted commit mixing applies
// unchanged.
//
// The protocol is a strict commit/pull cycle per child:
//
//	child → root  MsgRegister   (Role=RoleChildAggregator, ClientID=tier,
//	                             Members=its leaf worker IDs)
//	root → child  MsgTierAssign (tier, cohort seed + size, start round)
//	root → child  MsgTreePull   (global version + weights)
//	child → root  MsgTierCommit (the tier round's FedAvg aggregate)
//	              ... root applies, replies the next MsgTreePull ...
//	root → child  MsgDone
//
// Because the pull is the reply to the child's own applied commit, each
// tier trains round r+1 from exactly the post-commit state of its round r
// — the same dispatch-at-commit discipline the in-process Lockstep mode
// implements with ack channels. A tree run under a Lockstep schedule is
// therefore byte-identical to the flat run under the same schedule
// (TestTreeMatchesFlatLockstep); without a schedule only the wall-clock
// commit interleaving differs, exactly as between two flat runs.
//
// Failure semantics: a child tolerates leaf-worker disconnects with the
// flat runtime's collect semantics (dead cohort members are skipped, empty
// rounds retried); the root tolerates a child death by degrading that tier
// — its pump goroutine exits and the remaining tiers keep committing — and
// only fails when every child is gone (or a Lockstep schedule names a dead
// tier). Checkpoint/resume composes: the root checkpoints child-reported
// leaf membership per tier, and ResumeTree validates re-registered
// children against it, falling back to ResumeModel on ErrRosterChanged.

// ChildConfig configures one child-aggregator process of the tree.
type ChildConfig struct {
	// ID is the child's tier index at the root (0 = fastest tier). Children
	// must register the contiguous IDs 0..K-1.
	ID int
	// Addr is the child's own listen address for its leaf workers
	// ("127.0.0.1:0" when empty).
	Addr string
	// RootAddr is the tree root's listen address.
	RootAddr string
	// Workers is how many leaf workers must register with the child before
	// it joins the tree.
	Workers int
	// WorkerTimeout bounds the leaf registration wait (default 60s).
	WorkerTimeout time.Duration
	// RoundTimeout bounds each mini-round collection window, exactly like
	// TieredAsyncConfig.RoundTimeout (0 = wait indefinitely).
	RoundTimeout time.Duration
	// DialTimeout bounds the dial to the root (default 10s).
	DialTimeout time.Duration
	// Downlink enables the version-acked delta broadcast on the child's
	// leaf-worker fan-in, exactly as TieredAsyncConfig.Downlink does on the
	// flat runtime. It is independent of the root→child pull deltas, which
	// the root enables through its own Downlink config; a child re-encodes
	// each reconstructed pull against its own leaf-side chains.
	Downlink *compress.Downlink
	// Dial overrides the transport used to reach the root (fault injection;
	// nil = net.DialTimeout).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// RPCTimeout bounds every send on the root link and on each leaf-worker
	// connection, and — when the child is mid-cycle — how long a reply pull
	// may take to arrive (0 = wait indefinitely, the legacy behavior). Keep
	// it zero under root-side Lockstep schedules: there a reply pull is
	// deferred until the schedule reaches this tier.
	RPCTimeout time.Duration
	// MaxRetries bounds per-request redispatches when a leaf dies mid-round
	// (TieredAsyncConfig.MaxRetries semantics; 0 = dead leaves are skipped).
	MaxRetries int
	// RejoinWait bounds how long a redispatch waits for the dead leaf to
	// reconnect and re-register (default 2s when MaxRetries > 0).
	RejoinWait time.Duration
}

// Child is a per-tier child aggregator: an FL server to its leaf workers
// (registration, codec negotiation, seq-routed fast-wire rounds — the full
// flat-runtime worker contract) and a single pre-reduced "worker" to the
// tree root.
type Child struct {
	cfg  ChildConfig
	agg  *Aggregator
	fan  *fanIn
	done chan struct{}

	mu     sync.Mutex
	closed bool
	root   *conn
}

// NewChild listens for leaf workers on cfg.Addr. Run joins the tree.
func NewChild(cfg ChildConfig) (*Child, error) {
	switch {
	case cfg.ID < 0:
		return nil, fmt.Errorf("flnet: child ID = %d", cfg.ID)
	case cfg.Workers <= 0:
		return nil, fmt.Errorf("flnet: child Workers = %d", cfg.Workers)
	case cfg.RootAddr == "":
		return nil, fmt.Errorf("flnet: child needs a RootAddr")
	case cfg.MaxRetries < 0:
		return nil, fmt.Errorf("flnet: child MaxRetries = %d", cfg.MaxRetries)
	}
	if cfg.MaxRetries > 0 && cfg.RejoinWait <= 0 {
		cfg.RejoinWait = 2 * time.Second
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("flnet: child listen: %w", err)
	}
	// Constructed directly rather than through NewAggregator: the child
	// reuses only the registration/reader/fan-in machinery, so the
	// synchronous-run fields NewAggregator validates (Rounds,
	// ClientsPerRound, InitialWeights) have no meaningful values here.
	agg := &Aggregator{cfg: AggregatorConfig{RoundTimeout: cfg.RoundTimeout, SendTimeout: cfg.RPCTimeout}, ln: ln, workers: make(map[int]*registered)}
	return &Child{
		cfg:  cfg,
		agg:  agg,
		fan:  &fanIn{agg: agg, obs: &obsState{}, timeout: cfg.RoundTimeout, retries: cfg.MaxRetries, rejoinWait: cfg.RejoinWait},
		done: make(chan struct{}),
	}, nil
}

// Addr returns the child's leaf-worker listen address.
func (ch *Child) Addr() string { return ch.agg.Addr() }

// Close tears the child down: its root connection, its listener, and every
// leaf worker connection. A Run in progress returns nil if the shutdown
// was deliberate.
func (ch *Child) Close() {
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		return
	}
	ch.closed = true
	root := ch.root
	close(ch.done)
	ch.mu.Unlock()
	if root != nil {
		root.close() //nolint:errcheck // shutdown path
	}
	ch.agg.Close()
}

func (ch *Child) isClosed() bool {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.closed
}

// Run waits for the configured leaf workers, registers with the root as a
// child aggregator, then serves the pull/commit cycle until the root sends
// MsgDone (returned error nil), the child is Closed (nil), or the tree
// breaks (the error). Leaf workers negotiate codecs with the child exactly
// as with a flat aggregator, and each commit reports the tier round's
// encoded uplink traffic upstream into the root's metrics.
func (ch *Child) Run() error {
	wt := ch.cfg.WorkerTimeout
	if wt <= 0 {
		wt = 60 * time.Second
	}
	if err := ch.agg.WaitForWorkers(ch.cfg.Workers, wt); err != nil {
		return fmt.Errorf("flnet: child %d: %w", ch.cfg.ID, err)
	}
	members := ch.agg.ids()
	total := 0
	ch.agg.mu.Lock()
	for _, w := range ch.agg.workers {
		total += w.samples
	}
	ch.agg.mu.Unlock()

	dt := ch.cfg.DialTimeout
	if dt <= 0 {
		dt = 10 * time.Second
	}
	dial := ch.cfg.Dial
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	raw, err := dial(ch.cfg.RootAddr, dt)
	if err != nil {
		return fmt.Errorf("flnet: child %d dialing root: %w", ch.cfg.ID, err)
	}
	root := newConn(raw)
	root.writeTimeout = ch.cfg.RPCTimeout
	defer root.close() //nolint:errcheck // Run owns the root connection
	ch.mu.Lock()
	if ch.closed {
		ch.mu.Unlock()
		return nil
	}
	ch.root = root
	ch.mu.Unlock()

	if err := root.send(&Envelope{Type: MsgRegister, Register: &Register{
		ClientID: ch.cfg.ID, NumSamples: total,
		Proto: ProtoDeltaDownlink, Role: RoleChildAggregator,
		Members: members, Addr: ch.agg.Addr(),
	}}); err != nil {
		return ch.runErr(err)
	}
	env, err := root.recv(0)
	if err != nil {
		return ch.runErr(err)
	}
	if env.Type == MsgDone {
		ch.agg.FinishWorkers(env.Done.Rounds)
		return nil
	}
	if env.Type != MsgTierAssign || env.TierAssign == nil {
		return fmt.Errorf("flnet: child %d: expected tier assignment, got message %d", ch.cfg.ID, env.Type)
	}
	as := env.TierAssign
	r := as.StartRound
	// Forward the placement to the leaves (best effort, informational —
	// exactly what the flat aggregator announces).
	for _, id := range members {
		if w := ch.agg.liveWorker(id); w != nil {
			w.c.send(&Envelope{Type: MsgTierAssign, TierAssign: &TierAssign{Tier: as.Tier, NumTiers: as.NumTiers}}) //nolint:errcheck // best effort
		}
	}
	// Keep accepting leaf connections for the rest of the run so a flapped
	// worker's reconnect loop can re-register mid-run. A rejoined leaf gets
	// its placement re-announced; its codec/downlink state was rebuilt by
	// the handshake (fresh ack state means its next broadcast is dense).
	ch.agg.setRejoinHook(func(w *registered) {
		if w.role != RoleWorker {
			w.c.close() //nolint:errcheck // reject non-leaf registrations
			return
		}
		ch.fan.obs.noteReconnect(w.id)
		w.c.send(&Envelope{Type: MsgTierAssign, TierAssign: &TierAssign{Tier: as.Tier, NumTiers: as.NumTiers}}) //nolint:errcheck // best effort
	})
	defer ch.agg.setRejoinHook(nil)
	accepting := make(chan struct{})
	var stopAccepting sync.Once
	defer stopAccepting.Do(func() { close(accepting) })
	go func() {
		<-ch.done
		stopAccepting.Do(func() { close(accepting) })
	}()
	go ch.agg.acceptLoop(accepting)
	// Root-side pull base (the strict pull→commit cycle means the root may
	// delta against the previous pull) and the child's own leaf-side delta
	// chain — a reconstructed pull is re-encoded against the leaves' bases,
	// so pull compression and leaf compression compose without either side
	// knowing about the other.
	pullVer := -1
	var pullBase []float64
	var leafDL *downTier
	if ch.cfg.Downlink != nil {
		leafDL = &downTier{chain: ch.cfg.Downlink.NewChain()}
	}
	for {
		env, err := root.recv(ch.cfg.RPCTimeout)
		if err != nil {
			var ne net.Error
			if ch.cfg.RPCTimeout > 0 && errors.As(err, &ne) && ne.Timeout() {
				err = fmt.Errorf("no pull from the root within the %v RPC timeout: %w", ch.cfg.RPCTimeout, err)
			}
			return ch.runErr(err)
		}
		switch env.Type {
		case MsgTreePull:
			var weights []float64
			if env.TreePull.Delta != nil {
				if pullBase == nil || env.TreePull.DeltaBase != pullVer {
					return fmt.Errorf("flnet: child %d: pull delta against version %d, holding %d", ch.cfg.ID, env.TreePull.DeltaBase, pullVer)
				}
				weights, err = compress.ApplyDelta(env.TreePull.DeltaCodec, env.TreePull.Delta, pullBase)
			} else {
				weights, err = env.TreePull.pullWeights()
			}
			if err != nil {
				return fmt.Errorf("flnet: child %d: decoding pull: %w", ch.cfg.ID, err)
			}
			pullVer = env.TreePull.Version
			pullBase = append(pullBase[:0], weights...)
			tc, err := ch.localRound(&r, as, members, env.TreePull.Version, weights, leafDL)
			if err != nil {
				return ch.runErr(err)
			}
			if err := root.send(&Envelope{Type: MsgTierCommit, TierCommit: tc}); err != nil {
				return ch.runErr(err)
			}
		case MsgDone:
			ch.agg.FinishWorkers(env.Done.Rounds)
			return nil
		default:
			return fmt.Errorf("flnet: child %d: unexpected message %d from root", ch.cfg.ID, env.Type)
		}
	}
}

// runErr maps mid-run failures after a deliberate Close to a clean nil.
func (ch *Child) runErr(err error) error {
	if ch.isClosed() {
		return nil
	}
	return fmt.Errorf("flnet: child %d: %w", ch.cfg.ID, err)
}

// errChildClosed signals localRound abandonment after Close.
var errChildClosed = fmt.Errorf("flnet: child closed")

// localRound drives mini-rounds of the child's tier until one commits,
// mirroring the flat tierLoop's retry policy: dead cohort draws are
// redrawn next round, empty rounds (cohort reached, no update before the
// collection windows closed) are retried up to the same bound, and the
// round index advances per attempt either way. The committed aggregate is
// returned for shipping to the root.
func (ch *Child) localRound(r *int, as *TierAssign, members []int, version int, weights []float64, dl *downTier) (*TierCommit, error) {
	const maxEmptyRounds = 3
	empty := 0
	for {
		select {
		case <-ch.done:
			return nil, errChildClosed
		default:
		}
		alive := false
		for _, id := range members {
			if ch.agg.liveWorker(id) != nil {
				alive = true
				break
			}
		}
		if !alive {
			return nil, fmt.Errorf("every leaf worker disconnected")
		}
		if empty >= maxEmptyRounds {
			return nil, fmt.Errorf("%d consecutive rounds produced no update", empty)
		}
		cohort := flcore.TierCohort(as.Seed, *r, as.Tier, members, as.ClientsPerRound)
		if len(cohort) == 0 {
			return nil, fmt.Errorf("round %d drew an empty cohort", *r)
		}
		tc, status := ch.fan.runRound(as.Tier, *r, cohort, version, weights, dl, ch.done)
		*r++
		switch status {
		case roundCommitted:
			return tc, nil
		case roundNoCohort:
			// Whole cohort dead while other members live: next round draws a
			// different cohort. Back off briefly while dead flags propagate.
			time.Sleep(10 * time.Millisecond)
		case roundEmpty:
			empty++
		case roundAbort:
			return nil, errChildClosed
		}
	}
}

// WaitForChildren accepts registrations until n child aggregators have
// joined (or timeout) and validates the tree shape: contiguous tier IDs
// 0..n-1, non-empty and disjoint leaf membership, no plain workers
// registered directly with the root.
func (ta *TieredAsyncAggregator) WaitForChildren(n int, timeout time.Duration) error {
	if err := ta.WaitForWorkers(n, timeout); err != nil {
		return err
	}
	_, err := ta.treeChildren()
	return err
}

// treeChildren snapshots and validates the registered child aggregators,
// sorted by tier ID.
func (ta *TieredAsyncAggregator) treeChildren() ([]*registered, error) {
	ta.mu.Lock()
	children := make([]*registered, 0, len(ta.workers))
	for _, w := range ta.workers {
		children = append(children, w)
	}
	ta.mu.Unlock()
	sort.Slice(children, func(i, j int) bool { return children[i].id < children[j].id })
	seen := make(map[int]int)
	for i, c := range children {
		if c.role != RoleChildAggregator {
			return nil, fmt.Errorf("flnet: node %d registered with the tree root as a plain worker; leaves must register with a child aggregator", c.id)
		}
		if c.id != i {
			return nil, fmt.Errorf("flnet: child-aggregator IDs must be the contiguous tier indexes 0..%d; got %d", len(children)-1, c.id)
		}
		if len(c.members) == 0 {
			return nil, fmt.Errorf("flnet: child aggregator %d registered no leaf workers", c.id)
		}
		for _, id := range c.members {
			if prev, dup := seen[id]; dup {
				return nil, fmt.Errorf("flnet: leaf worker %d claimed by child aggregators %d and %d", id, prev, c.id)
			}
			seen[id] = c.id
		}
	}
	return children, nil
}

// sameMembers reports set equality of two membership lists.
func sameMembers(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// ResumeTree loads a TieredCheckpoint into a tree root before RunTree,
// validating the re-registered children against the checkpointed leaf
// membership per tier. Every child must have re-registered first
// (WaitForChildren); a changed roster fails with ErrRosterChanged and the
// caller should fall back to ResumeModel (fresh cursors over the new
// tree). RunTree then continues toward the absolute GlobalCommits target,
// handing each child its checkpointed round cursor via the assignment.
func (ta *TieredAsyncAggregator) ResumeTree(c *flcore.TieredCheckpoint) error {
	if len(c.Tiers) == 0 {
		return fmt.Errorf("flnet: checkpoint has no tiers")
	}
	if len(c.Rounds) != len(c.Tiers) || len(c.Commits) != len(c.Tiers) {
		return fmt.Errorf("flnet: checkpoint cursors (%d rounds, %d commits) do not match %d tiers",
			len(c.Rounds), len(c.Commits), len(c.Tiers))
	}
	if len(c.ManagerState) > 0 {
		return fmt.Errorf("flnet: checkpoint carries tiering-manager state; the tree topology does not support a live Manager")
	}
	children, err := ta.treeChildren()
	if err != nil {
		return err
	}
	if len(children) != len(c.Tiers) {
		return fmt.Errorf("%w: checkpoint has %d tiers, %d child aggregators re-registered", ErrRosterChanged, len(c.Tiers), len(children))
	}
	for t, child := range children {
		if !sameMembers(child.members, c.Tiers[t]) {
			return fmt.Errorf("%w: tier %d leaf membership %v does not match checkpointed %v", ErrRosterChanged, t, child.members, c.Tiers[t])
		}
	}
	if err := ta.resumeCommon(c); err != nil {
		return err
	}
	ta.resumeTiers = copyNetTiers(c.Tiers)
	ta.startRounds = append([]int(nil), c.Rounds...)
	ta.baseCommits = append([]int(nil), c.Commits...)
	return nil
}

// treeCommit tags a child's commit envelope with the tier its connection
// is registered as, so the committer can reject mislabeled commits.
type treeCommit struct {
	env  *Envelope
	tier int
}

// sendPull hands a child the current global snapshot — the tree's
// dispatch-at-commit. Best effort: a dead child is degraded by its pump,
// not here. With a Downlink config and a ProtoDeltaDownlink child, every
// pull after the first travels as a delta against the previous pull: the
// strict pull→commit cycle means the received commit IS the ack that the
// child holds that base, so no explicit ack tracking is needed. dl.seq
// holds the previous pull's Version for the child-side sanity check.
func (ta *TieredAsyncAggregator) sendPull(c *registered, dl *downTier) {
	ver, w := ta.snapshot()
	pull := &TreePull{Version: ver}
	var wire int64
	delta := false
	if dl != nil && c.proto >= ProtoDeltaDownlink {
		if dl.chain.HasBase() {
			payload, id := dl.chain.Encode(w)
			pull.Delta, pull.DeltaBase, pull.DeltaCodec = payload, dl.seq, id
			wire = int64(len(payload))
			delta = true
		} else {
			dl.chain.Adopt(w)
		}
		dl.seq = ver
	}
	if !delta {
		wire = int64(compress.DenseBytes(len(w)))
		if c.proto >= ProtoFastWire {
			pull.Raw = nn.EncodeWeights(w)
			wire = int64(len(pull.Raw))
		} else {
			pull.Weights = w
		}
	}
	if c.c.send(&Envelope{Type: MsgTreePull, TreePull: pull}) == nil {
		ta.obs.addDownlink(wire)
	}
}

// reviveChild validates a mid-run child re-registration against the
// pinned topology and, on success, revives its tier: the tier's pull
// chain is reset (the revived child holds no base, so its first pull is
// dense), the child is handed its assignment with the tier's current
// round cursor, an immediate pull restarts its commit cycle, and a fresh
// pump feeds the committer. A registration that does not match — wrong
// role, out-of-range tier, changed leaf membership — is refused by
// closing the connection, exactly as ResumeTree refuses a changed
// roster. Runs on the committer goroutine, which owns children/pulls/
// roundCursor.
func (ta *TieredAsyncAggregator) reviveChild(w *registered, children []*registered, tiers [][]int, pulls []*downTier, spawn func(int, *registered)) bool {
	t := w.id
	k := len(children)
	if w.role != RoleChildAggregator || t < 0 || t >= k || !sameMembers(w.members, tiers[t]) {
		w.c.close() //nolint:errcheck // refused rejoin
		return false
	}
	children[t] = w
	if ta.tcfg.Downlink != nil {
		pulls[t] = &downTier{chain: ta.tcfg.Downlink.NewChain()}
	}
	addr := w.addr
	if addr == "" {
		addr = w.c.raw.RemoteAddr().String()
	}
	ta.obs.noteChildUp(t, addr)
	ta.obs.noteChildRejoin(t)
	w.c.send(&Envelope{Type: MsgTierAssign, TierAssign: &TierAssign{ //nolint:errcheck // best effort: an instant re-death is degraded by its pump
		Tier: t, NumTiers: k,
		Seed: ta.tcfg.Seed, ClientsPerRound: ta.tcfg.ClientsPerRound,
		StartRound: ta.roundCursor[t],
	}})
	ta.sendPull(w, pulls[t])
	spawn(t, w)
	return true
}

// RunTree drives the hierarchical topology over the registered child
// aggregators until GlobalCommits commits have been applied: assign each
// child its tier (ID order, 0 = fastest), hand out initial pulls, then
// apply MsgTierCommit envelopes exactly as the flat committer does —
// same CommitMix, same checkpoint cadence, same Lockstep buffering — and
// reply each applied commit with the child's next pull. A dead child
// degrades its tier (the run continues on the remaining tiers); outside
// Lockstep mode the root keeps accepting, so a respawned child that
// re-registers with the pinned leaf membership revives its tier
// mid-run (assignment with the tier's current round cursor, dense first
// pull, /metrics flips the tier back to alive). RunTree fails when every
// child is gone before the target (after a RejoinWait grace, if set),
// when a Lockstep schedule names a dead tier, or on the first malformed
// commit. Live tiering Managers are not supported over the tree.
func (ta *TieredAsyncAggregator) RunTree() (*TieredAsyncRunResult, error) {
	if ta.tcfg.Manager != nil {
		return nil, fmt.Errorf("flnet: the tree topology does not support a live tiering Manager; run flat or pre-assign tiers")
	}
	children, err := ta.treeChildren()
	if err != nil {
		return nil, err
	}
	if len(children) == 0 {
		return nil, fmt.Errorf("flnet: tree run needs at least one child aggregator")
	}
	k := len(children)
	for _, t := range ta.tcfg.Lockstep {
		if t < 0 || t >= k {
			return nil, fmt.Errorf("flnet: lockstep schedule names tier %d of %d", t, k)
		}
	}
	if ta.baseCommits != nil && len(ta.baseCommits) != k {
		return nil, fmt.Errorf("flnet: resumed checkpoint has %d tiers, %d children registered", len(ta.baseCommits), k)
	}
	tiers := make([][]int, k)
	counts := make([]int, k)
	for t, c := range children {
		tiers[t] = append([]int(nil), c.members...)
		counts[t] = len(c.members)
	}
	ta.tmu.Lock()
	ta.members = tiers
	ta.tmu.Unlock()

	res := &TieredAsyncRunResult{Commits: make([]int, k)}
	copy(res.Commits, ta.baseCommits)
	res.Retiers, res.Reassigned = ta.baseRetiers, ta.baseMoved
	res.UplinkBytes = ta.baseUplink
	res.DownlinkBytes = ta.baseDownlink
	// Per-child pull-delta chains (fresh every run: a resumed child holds
	// no base, so it re-enters through the dense first pull).
	pulls := make([]*downTier, k)
	if ta.tcfg.Downlink != nil {
		for t := range pulls {
			pulls[t] = &downTier{chain: ta.tcfg.Downlink.NewChain()}
		}
	}
	ta.roundCursor = make([]int, k)
	copy(ta.roundCursor, ta.startRounds)
	ta.gmu.Lock()
	applied := ta.version
	ta.gmu.Unlock()
	ta.obs.noteRunStart(ta.tcfg.GlobalCommits, applied, res.Commits, res.Retiers, res.Reassigned, res.UplinkBytes, counts)

	// Assign tiers and hand out the initial pulls (best effort: a child
	// that died since registering is degraded by its pump below).
	for t, c := range children {
		addr := c.addr
		if addr == "" {
			addr = c.c.raw.RemoteAddr().String()
		}
		ta.obs.noteChildUp(t, addr)
		r0 := 0
		if t < len(ta.startRounds) {
			r0 = ta.startRounds[t]
		}
		c.c.send(&Envelope{Type: MsgTierAssign, TierAssign: &TierAssign{ //nolint:errcheck // best effort
			Tier: t, NumTiers: k,
			Seed: ta.tcfg.Seed, ClientsPerRound: ta.tcfg.ClientsPerRound,
			StartRound: r0,
		}})
		ta.sendPull(c, pulls[t])
	}

	// One pump per child: commits flow from the connection reader into the
	// committer; a closed updates channel is the child's death. Under a
	// Lockstep schedule the fleet is frozen (no accept loop, no revival);
	// otherwise the listener keeps accepting and a respawned child that
	// re-registers with the pinned leaf membership gets its tier revived.
	commitCh := make(chan treeCommit)
	done := make(chan struct{})
	var wg sync.WaitGroup
	lockstep := len(ta.tcfg.Lockstep) > 0
	childDown := make([]chan struct{}, k)
	pumpExit := make(chan int)
	rejoinCh := make(chan *registered, 4)
	pump := func(t int, c *registered, downCh chan struct{}) {
		defer wg.Done()
		if downCh != nil {
			defer close(downCh)
		}
		for {
			select {
			case env, ok := <-c.updates:
				if !ok {
					ta.obs.noteChildDown(t)
					if downCh == nil {
						select {
						case pumpExit <- t:
						case <-done:
						}
					}
					return
				}
				if env.Type != MsgTierCommit || env.TierCommit == nil {
					continue // stray profile replies etc.; commits are the contract
				}
				select {
				case commitCh <- treeCommit{env: env, tier: t}:
				case <-done:
					return
				}
			case <-done:
				return
			}
		}
	}
	for t, c := range children {
		if lockstep {
			childDown[t] = make(chan struct{})
		}
		wg.Add(1)
		go pump(t, c, childDown[t])
	}
	if !lockstep {
		go ta.acceptLoop(done)
		ta.setRejoinHook(func(w *registered) {
			select {
			case rejoinCh <- w:
			case <-done:
				w.c.close() //nolint:errcheck // run over; refuse late rejoins
			}
		})
	}

	finish := func(applied int, err error) (*TieredAsyncRunResult, error) {
		ta.setRejoinHook(nil)
		close(done)
		ta.FinishWorkers(applied) // the registered "workers" are the children
		wg.Wait()
		_, res.Weights = ta.snapshot()
		ta.obs.noteRunEnd()
		return res, err
	}
	alive := k
	var graceC <-chan time.Time
	allGone := func(applied int) (*TieredAsyncRunResult, error) {
		return finish(applied, fmt.Errorf("flnet: every child aggregator gone after %d of %d commits", applied, ta.tcfg.GlobalCommits))
	}
	pending := make([][]*Envelope, k) // lockstep buffers
	for applied < ta.tcfg.GlobalCommits {
		var env *Envelope
		if lockstep {
			want := ta.tcfg.Lockstep[applied]
			for len(pending[want]) == 0 {
				select {
				case tc := <-commitCh:
					if tc.env.TierCommit.Tier != tc.tier {
						return finish(applied, fmt.Errorf("flnet: child %d delivered a commit labeled tier %d", tc.tier, tc.env.TierCommit.Tier))
					}
					pending[tc.tier] = append(pending[tc.tier], tc.env)
				case <-childDown[want]:
					// A completed send was already stashed (the commit
					// channel is unbuffered), so an empty buffer means no
					// commit is coming from the scheduled tier.
					return finish(applied, fmt.Errorf("flnet: lockstep schedule stalled: child aggregator %d gone before commit %d of %d", want, applied+1, ta.tcfg.GlobalCommits))
				}
			}
			env = pending[want][0]
			pending[want] = pending[want][1:]
		} else {
			select {
			case tc := <-commitCh:
				if tc.env.TierCommit.Tier != tc.tier {
					return finish(applied, fmt.Errorf("flnet: child %d delivered a commit labeled tier %d", tc.tier, tc.env.TierCommit.Tier))
				}
				env = tc.env
			case <-pumpExit:
				alive--
				if alive <= 0 {
					if ta.tcfg.RejoinWait <= 0 {
						return allGone(applied)
					}
					// Every child gone: hold the run open one RejoinWait in
					// case a respawned child is mid-reconnect.
					graceC = time.After(ta.tcfg.RejoinWait)
				}
				continue
			case w := <-rejoinCh:
				if ta.reviveChild(w, children, tiers, pulls, func(t int, c *registered) {
					wg.Add(1)
					go pump(t, c, nil)
				}) {
					alive++
					graceC = nil
				}
				continue
			case <-graceC:
				return allGone(applied)
			}
		}
		stats, err := ta.applyCommit(env.TierCommit, res.Commits)
		if err != nil {
			return finish(applied, err)
		}
		res.Log = append(res.Log, stats)
		res.UplinkBytes += stats.UplinkBytes
		res.DownlinkBytes += stats.DownlinkBytes
		applied++
		ta.obs.noteCommit(stats)
		ta.obs.noteChildCommit(stats.Tier, stats.UplinkBytes, stats.DownlinkBytes)
		if next := env.TierCommit.TierRound + 1; next > ta.roundCursor[env.TierCommit.Tier] {
			ta.roundCursor[env.TierCommit.Tier] = next
		}
		if ta.tcfg.CheckpointEvery > 0 && applied%ta.tcfg.CheckpointEvery == 0 {
			if err := ta.writeCheckpoint(applied, res); err != nil {
				return finish(applied, err)
			}
		}
		// The committing child's next pull — dispatch-at-commit, which is
		// what makes the tree replay-equivalent to the lockstep flat run.
		ta.sendPull(children[stats.Tier], pulls[stats.Tier])
	}
	return finish(applied, nil)
}
