package flnet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"time"

	"repro/internal/compress"
	"repro/internal/nn"
)

// TrainFunc runs one local training pass starting from the given global
// weights and returns the updated weights and the number of samples trained
// (the FedAvg aggregation weight). round is -1 for profiling tasks.
type TrainFunc func(round int, weights []float64) (newWeights []float64, numSamples int, err error)

// WorkerConfig configures one FL client worker process.
type WorkerConfig struct {
	ClientID   int
	NumSamples int
	Train      TrainFunc
	// DialTimeout bounds the initial connection (default 5s).
	DialTimeout time.Duration
	// Dial overrides the transport used to reach the aggregator (default
	// TCP via net.DialTimeout). Chaos tests inject faultnet transports
	// here; it also hooks proxies or TLS dialers without touching the
	// protocol code.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// Reconnect enables the self-healing loop: when the connection drops
	// mid-run the worker redials with capped exponential backoff plus
	// deterministic jitter, re-registers under the same ClientID, and
	// resumes serving requests. The aggregator re-announces the tier it
	// still holds for the worker, and the delta-downlink scheme composes
	// automatically — a fresh registration starts unacked, so the first
	// broadcast after a rejoin is always the dense snapshot.
	Reconnect bool
	// MaxReconnects bounds consecutive failed reconnection attempts
	// before RunWorker gives up (default 8; the counter resets every time
	// a session makes progress, i.e. receives at least one message).
	MaxReconnects int
	// ReconnectBase/ReconnectMax bound the backoff delays (defaults
	// 50ms / 2s). The delay for attempt k is in [d/2, d] for
	// d = min(ReconnectBase·2^(k-1), ReconnectMax), with the jitter drawn
	// deterministically from (ClientID, k) — a restarted fleet replays
	// exactly the same reconnect storm, keeping chaos runs reproducible.
	ReconnectBase, ReconnectMax time.Duration
	// RPCTimeout bounds every wait for the next aggregator message and
	// every send (0 = block forever, the historical behaviour). With
	// Reconnect set, a timed-out wait tears the session down and re-enters
	// the backoff loop, so a worker parked on a half-open connection
	// cycles it instead of hanging for the rest of the run.
	RPCTimeout time.Duration
	// OnReconnect, if set, observes each reconnection attempt just before
	// the redial (attempt counts consecutive failures so far, starting
	// at 1).
	OnReconnect func(attempt int)
	// OnTierAssign, if set, receives the worker's tier placement when a
	// tiered-async aggregator announces it (tier 0 is fastest).
	OnTierAssign func(tier, numTiers int)
	// OnTierReassign, if set, receives live re-tiering migrations: the
	// aggregator moved this worker from tier `from` to tier `to` mid-run.
	OnTierReassign func(from, to, numTiers int)
	// ReportSeconds, if set, overrides the worker's self-reported training
	// duration for the given round (by default the wall-clock time of the
	// Train call). The report feeds the aggregator's live tiering EWMA
	// estimates; tests inject simulated latencies here so distributed runs
	// re-tier exactly like their simulated counterparts.
	ReportSeconds func(round int) float64
	// Codec, if set, compresses this worker's uplink updates: each trained
	// delta (plus the error-feedback residual from earlier rounds) is
	// encoded and sent as a MsgCompressedUpdate instead of a dense
	// MsgUpdate. The codec is announced at registration; an aggregator
	// that cannot decode it refuses the handshake. Secure-aggregation
	// rounds (Train.Participants set) always send dense masked updates —
	// pairwise masks are full-entropy vectors no lossy codec may touch.
	// A tiered-async aggregator running per-tier compression policy may
	// renegotiate the codec when a live re-tiering migrates this worker
	// (MsgTierReassign with Renegotiate set); the worker then switches
	// from its next round on and resets its error-feedback residual.
	Codec compress.Codec
	// OnCodecRenegotiate, if set, observes each applied codec switch with
	// the new codec's spec (compress.Parse syntax, "none" for dense).
	OnCodecRenegotiate func(spec string)
}

// fatalWorkerError marks session failures that reconnecting cannot cure —
// application errors (a failing TrainFunc, an unparsable renegotiated
// codec) and protocol violations. The reconnect loop gives up on these
// immediately instead of burning its attempt budget.
type fatalWorkerError struct{ err error }

func (e *fatalWorkerError) Error() string { return e.err.Error() }
func (e *fatalWorkerError) Unwrap() error { return e.err }

func fatalf(format string, args ...any) error {
	return &fatalWorkerError{err: fmt.Errorf(format, args...)}
}

// backoffDelay is attempt k's capped exponential backoff with
// deterministic jitter: the base delay doubles per attempt up to max, and
// the final delay lands in [d/2, d] keyed on (clientID, attempt) via FNV —
// distinct workers spread out, yet a replayed run waits exactly as long.
func backoffDelay(clientID, attempt int, base, max time.Duration) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := fnv.New64a()
	var key [16]byte
	for i := 0; i < 8; i++ {
		key[i] = byte(uint64(clientID) >> (8 * i))
		key[8+i] = byte(uint64(attempt) >> (8 * i))
	}
	h.Write(key[:]) //nolint:errcheck // hash writes cannot fail
	span := uint64(d)/2 + 1
	return d/2 + time.Duration(h.Sum64()%span)
}

// RunWorker connects to the aggregator at addr, registers, and serves
// profiling and training requests until the aggregator sends Done or the
// connection drops. It returns nil on a clean Done. With cfg.Reconnect
// set, a dropped connection re-enters a capped-exponential-backoff redial
// loop instead of ending the run.
func RunWorker(addr string, cfg WorkerConfig) error {
	if cfg.Train == nil {
		return fmt.Errorf("flnet: worker %d has no TrainFunc", cfg.ClientID)
	}
	dt := cfg.DialTimeout
	if dt <= 0 {
		dt = 5 * time.Second
	}
	dial := cfg.Dial
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	maxAttempts := cfg.MaxReconnects
	if maxAttempts <= 0 {
		maxAttempts = 8
	}
	base := cfg.ReconnectBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxDelay := cfg.ReconnectMax
	if maxDelay <= 0 {
		maxDelay = 2 * time.Second
	}
	attempt := 0
	for {
		progressed, err := runWorkerSession(addr, dial, dt, cfg)
		if err == nil {
			return nil
		}
		var fatal *fatalWorkerError
		if !cfg.Reconnect || errors.As(err, &fatal) {
			return err
		}
		if progressed {
			attempt = 0
		}
		attempt++
		if attempt > maxAttempts {
			return fmt.Errorf("flnet: worker %d: giving up after %d reconnect attempts: %w", cfg.ClientID, maxAttempts, err)
		}
		time.Sleep(backoffDelay(cfg.ClientID, attempt, base, maxDelay))
		if cfg.OnReconnect != nil {
			cfg.OnReconnect(attempt)
		}
	}
}

// runWorkerSession runs one connection's lifetime: dial, register, serve
// until Done (nil error), a transport failure (retryable), or a fatal
// application error. progressed reports whether the aggregator engaged the
// session (at least one message arrived), which resets the reconnect
// budget. All per-session state — the error-feedback residual, the
// delta-downlink base, the renegotiated codec — is scoped here: a fresh
// session starts from the registration defaults, matching the
// aggregator's view of a fresh unacked registration.
func runWorkerSession(addr string, dial func(string, time.Duration) (net.Conn, error), dt time.Duration, cfg WorkerConfig) (progressed bool, err error) {
	raw, err := dial(addr, dt)
	if err != nil {
		return false, fmt.Errorf("flnet: worker %d dial: %w", cfg.ClientID, err)
	}
	c := newConn(raw)
	c.writeTimeout = cfg.RPCTimeout
	defer c.close()    //nolint:errcheck // shutdown path
	codec := cfg.Codec // current uplink codec; renegotiated on migrations
	reg := &Register{ClientID: cfg.ClientID, NumSamples: cfg.NumSamples, Proto: ProtoDeltaDownlink}
	if codec != nil {
		reg.Codec = codec.ID()
	}
	if err := c.send(&Envelope{Type: MsgRegister, Register: reg}); err != nil {
		return false, err
	}
	var residual []float64 // error-feedback state across compressed rounds
	// Delta-downlink base: the last versioned broadcast this worker
	// received (Train.Version value; 0 = none yet). The aggregator only
	// sends a delta whose DeltaBase matches dlVer after seeing this
	// worker's update for that broadcast, so a mismatch here is a protocol
	// violation, not a recoverable race.
	dlVer := 0
	var dlBase []float64
	for {
		env, err := c.recv(cfg.RPCTimeout)
		if err != nil {
			var ne net.Error
			if cfg.RPCTimeout > 0 && errors.As(err, &ne) && ne.Timeout() {
				return progressed, fmt.Errorf("flnet: worker %d: no aggregator message within the %v RPC timeout: %w", cfg.ClientID, cfg.RPCTimeout, err)
			}
			return progressed, fmt.Errorf("flnet: worker %d: %w", cfg.ClientID, err)
		}
		progressed = true
		switch env.Type {
		case MsgProfile:
			start := time.Now()
			if _, _, err := cfg.Train(-1, env.Profile.Weights); err != nil {
				return progressed, fatalf("flnet: worker %d profile: %w", cfg.ClientID, err)
			}
			reply := &ProfileReply{ClientID: cfg.ClientID, Seconds: time.Since(start).Seconds()}
			if err := c.send(&Envelope{Type: MsgProfileReply, ProfileReply: reply}); err != nil {
				return progressed, err
			}
		case MsgTrain:
			start := time.Now()
			var tw []float64
			var err error
			if env.Train.Delta != nil {
				if dlBase == nil || env.Train.DeltaBase != dlVer {
					return progressed, fatalf("flnet: worker %d round %d: delta against base %d, holding %d", cfg.ClientID, env.Train.Round, env.Train.DeltaBase, dlVer)
				}
				tw, err = compress.ApplyDelta(env.Train.DeltaCodec, env.Train.Delta, dlBase)
			} else {
				tw, err = env.Train.roundWeights()
			}
			if err != nil {
				return progressed, fatalf("flnet: worker %d round %d: %w", cfg.ClientID, env.Train.Round, err)
			}
			if env.Train.Version != 0 {
				// A versioned broadcast — dense or reconstructed — becomes
				// the base the aggregator may delta against next round.
				dlVer = env.Train.Version
				dlBase = append(dlBase[:0], tw...)
			}
			w, n, err := cfg.Train(env.Train.Round, tw)
			if err != nil {
				return progressed, fatalf("flnet: worker %d round %d: %w", cfg.ClientID, env.Train.Round, err)
			}
			secs := time.Since(start).Seconds()
			if cfg.ReportSeconds != nil {
				secs = cfg.ReportSeconds(env.Train.Round)
			}
			if codec != nil && len(env.Train.Participants) == 0 && codec.ID() != compress.IDNone {
				if len(w) != len(tw) {
					return progressed, fatalf("flnet: worker %d round %d: trained %d weights from %d", cfg.ClientID, env.Train.Round, len(w), len(tw))
				}
				delta := make([]float64, len(w))
				for i := range delta {
					delta[i] = w[i] - tw[i]
				}
				var payload []byte
				payload, _, residual = compress.EncodeDelta(codec, delta, residual)
				up := &CompressedUpdate{
					Round: env.Train.Round, ClientID: cfg.ClientID,
					Codec: codec.ID(), Payload: payload, NumSamples: n,
					Seconds: secs, Seq: env.Train.Seq,
				}
				if err := c.send(&Envelope{Type: MsgCompressedUpdate, CompressedUpdate: up}); err != nil {
					return progressed, err
				}
				continue
			}
			w = maskedTrainResult(env.Train, cfg.ClientID, w, n)
			up := &Update{Round: env.Train.Round, ClientID: cfg.ClientID, NumSamples: n, Seconds: secs, Seq: env.Train.Seq}
			if env.Train.Raw != nil {
				// The request came fast-wire, so the aggregator decodes
				// fast-wire replies; answer in kind.
				up.Raw = nn.EncodeWeights(w)
			} else {
				up.Weights = w
			}
			if err := c.send(&Envelope{Type: MsgUpdate, Update: up}); err != nil {
				return progressed, err
			}
		case MsgTierAssign:
			if cfg.OnTierAssign != nil && env.TierAssign != nil {
				cfg.OnTierAssign(env.TierAssign.Tier, env.TierAssign.NumTiers)
			}
		case MsgTierReassign:
			if env.TierReassign != nil && env.TierReassign.Renegotiate {
				// The new tier runs a different compression policy: switch
				// codecs and drop the error-feedback residual — it was
				// accumulated under the old codec's loss profile and must
				// not leak into the new stream.
				next, err := compress.Parse(env.TierReassign.CodecSpec)
				if err != nil {
					return progressed, fatalf("flnet: worker %d: renegotiated codec %q: %w", cfg.ClientID, env.TierReassign.CodecSpec, err)
				}
				codec = next
				residual = nil
				if cfg.OnCodecRenegotiate != nil {
					cfg.OnCodecRenegotiate(next.Name())
				}
			}
			if cfg.OnTierReassign != nil && env.TierReassign != nil {
				cfg.OnTierReassign(env.TierReassign.From, env.TierReassign.To, env.TierReassign.NumTiers)
			}
		case MsgDone:
			return progressed, nil
		default:
			return progressed, fatalf("flnet: worker %d: unexpected message type %d", cfg.ClientID, env.Type)
		}
	}
}
