package flnet

import (
	"fmt"
	"net"
	"time"
)

// TrainFunc runs one local training pass starting from the given global
// weights and returns the updated weights and the number of samples trained
// (the FedAvg aggregation weight). round is -1 for profiling tasks.
type TrainFunc func(round int, weights []float64) (newWeights []float64, numSamples int, err error)

// WorkerConfig configures one FL client worker process.
type WorkerConfig struct {
	ClientID   int
	NumSamples int
	Train      TrainFunc
	// DialTimeout bounds the initial connection (default 5s).
	DialTimeout time.Duration
	// OnTierAssign, if set, receives the worker's tier placement when a
	// tiered-async aggregator announces it (tier 0 is fastest).
	OnTierAssign func(tier, numTiers int)
}

// RunWorker connects to the aggregator at addr, registers, and serves
// profiling and training requests until the aggregator sends Done or the
// connection drops. It returns nil on a clean Done.
func RunWorker(addr string, cfg WorkerConfig) error {
	if cfg.Train == nil {
		return fmt.Errorf("flnet: worker %d has no TrainFunc", cfg.ClientID)
	}
	dt := cfg.DialTimeout
	if dt <= 0 {
		dt = 5 * time.Second
	}
	raw, err := net.DialTimeout("tcp", addr, dt)
	if err != nil {
		return fmt.Errorf("flnet: worker %d dial: %w", cfg.ClientID, err)
	}
	c := newConn(raw)
	defer c.close() //nolint:errcheck // shutdown path
	if err := c.send(&Envelope{Type: MsgRegister, Register: &Register{ClientID: cfg.ClientID, NumSamples: cfg.NumSamples}}); err != nil {
		return err
	}
	for {
		env, err := c.recv(0)
		if err != nil {
			return fmt.Errorf("flnet: worker %d: %w", cfg.ClientID, err)
		}
		switch env.Type {
		case MsgProfile:
			start := time.Now()
			if _, _, err := cfg.Train(-1, env.Profile.Weights); err != nil {
				return fmt.Errorf("flnet: worker %d profile: %w", cfg.ClientID, err)
			}
			reply := &ProfileReply{ClientID: cfg.ClientID, Seconds: time.Since(start).Seconds()}
			if err := c.send(&Envelope{Type: MsgProfileReply, ProfileReply: reply}); err != nil {
				return err
			}
		case MsgTrain:
			w, n, err := cfg.Train(env.Train.Round, env.Train.Weights)
			if err != nil {
				return fmt.Errorf("flnet: worker %d round %d: %w", cfg.ClientID, env.Train.Round, err)
			}
			w = maskedTrainResult(env.Train, cfg.ClientID, w, n)
			up := &Update{Round: env.Train.Round, ClientID: cfg.ClientID, Weights: w, NumSamples: n}
			if err := c.send(&Envelope{Type: MsgUpdate, Update: up}); err != nil {
				return err
			}
		case MsgTierAssign:
			if cfg.OnTierAssign != nil && env.TierAssign != nil {
				cfg.OnTierAssign(env.TierAssign.Tier, env.TierAssign.NumTiers)
			}
		case MsgDone:
			return nil
		default:
			return fmt.Errorf("flnet: worker %d: unexpected message type %d", cfg.ClientID, env.Type)
		}
	}
}
