package flnet

import (
	"fmt"
	"net"
	"time"

	"repro/internal/compress"
	"repro/internal/nn"
)

// TrainFunc runs one local training pass starting from the given global
// weights and returns the updated weights and the number of samples trained
// (the FedAvg aggregation weight). round is -1 for profiling tasks.
type TrainFunc func(round int, weights []float64) (newWeights []float64, numSamples int, err error)

// WorkerConfig configures one FL client worker process.
type WorkerConfig struct {
	ClientID   int
	NumSamples int
	Train      TrainFunc
	// DialTimeout bounds the initial connection (default 5s).
	DialTimeout time.Duration
	// OnTierAssign, if set, receives the worker's tier placement when a
	// tiered-async aggregator announces it (tier 0 is fastest).
	OnTierAssign func(tier, numTiers int)
	// OnTierReassign, if set, receives live re-tiering migrations: the
	// aggregator moved this worker from tier `from` to tier `to` mid-run.
	OnTierReassign func(from, to, numTiers int)
	// ReportSeconds, if set, overrides the worker's self-reported training
	// duration for the given round (by default the wall-clock time of the
	// Train call). The report feeds the aggregator's live tiering EWMA
	// estimates; tests inject simulated latencies here so distributed runs
	// re-tier exactly like their simulated counterparts.
	ReportSeconds func(round int) float64
	// Codec, if set, compresses this worker's uplink updates: each trained
	// delta (plus the error-feedback residual from earlier rounds) is
	// encoded and sent as a MsgCompressedUpdate instead of a dense
	// MsgUpdate. The codec is announced at registration; an aggregator
	// that cannot decode it refuses the handshake. Secure-aggregation
	// rounds (Train.Participants set) always send dense masked updates —
	// pairwise masks are full-entropy vectors no lossy codec may touch.
	// A tiered-async aggregator running per-tier compression policy may
	// renegotiate the codec when a live re-tiering migrates this worker
	// (MsgTierReassign with Renegotiate set); the worker then switches
	// from its next round on and resets its error-feedback residual.
	Codec compress.Codec
	// OnCodecRenegotiate, if set, observes each applied codec switch with
	// the new codec's spec (compress.Parse syntax, "none" for dense).
	OnCodecRenegotiate func(spec string)
}

// RunWorker connects to the aggregator at addr, registers, and serves
// profiling and training requests until the aggregator sends Done or the
// connection drops. It returns nil on a clean Done.
func RunWorker(addr string, cfg WorkerConfig) error {
	if cfg.Train == nil {
		return fmt.Errorf("flnet: worker %d has no TrainFunc", cfg.ClientID)
	}
	dt := cfg.DialTimeout
	if dt <= 0 {
		dt = 5 * time.Second
	}
	raw, err := net.DialTimeout("tcp", addr, dt)
	if err != nil {
		return fmt.Errorf("flnet: worker %d dial: %w", cfg.ClientID, err)
	}
	c := newConn(raw)
	defer c.close()    //nolint:errcheck // shutdown path
	codec := cfg.Codec // current uplink codec; renegotiated on migrations
	reg := &Register{ClientID: cfg.ClientID, NumSamples: cfg.NumSamples, Proto: ProtoDeltaDownlink}
	if codec != nil {
		reg.Codec = codec.ID()
	}
	if err := c.send(&Envelope{Type: MsgRegister, Register: reg}); err != nil {
		return err
	}
	var residual []float64 // error-feedback state across compressed rounds
	// Delta-downlink base: the last versioned broadcast this worker
	// received (Train.Version value; 0 = none yet). The aggregator only
	// sends a delta whose DeltaBase matches dlVer after seeing this
	// worker's update for that broadcast, so a mismatch here is a protocol
	// violation, not a recoverable race.
	dlVer := 0
	var dlBase []float64
	for {
		env, err := c.recv(0)
		if err != nil {
			return fmt.Errorf("flnet: worker %d: %w", cfg.ClientID, err)
		}
		switch env.Type {
		case MsgProfile:
			start := time.Now()
			if _, _, err := cfg.Train(-1, env.Profile.Weights); err != nil {
				return fmt.Errorf("flnet: worker %d profile: %w", cfg.ClientID, err)
			}
			reply := &ProfileReply{ClientID: cfg.ClientID, Seconds: time.Since(start).Seconds()}
			if err := c.send(&Envelope{Type: MsgProfileReply, ProfileReply: reply}); err != nil {
				return err
			}
		case MsgTrain:
			start := time.Now()
			var tw []float64
			var err error
			if env.Train.Delta != nil {
				if dlBase == nil || env.Train.DeltaBase != dlVer {
					return fmt.Errorf("flnet: worker %d round %d: delta against base %d, holding %d", cfg.ClientID, env.Train.Round, env.Train.DeltaBase, dlVer)
				}
				tw, err = compress.ApplyDelta(env.Train.DeltaCodec, env.Train.Delta, dlBase)
			} else {
				tw, err = env.Train.roundWeights()
			}
			if err != nil {
				return fmt.Errorf("flnet: worker %d round %d: %w", cfg.ClientID, env.Train.Round, err)
			}
			if env.Train.Version != 0 {
				// A versioned broadcast — dense or reconstructed — becomes
				// the base the aggregator may delta against next round.
				dlVer = env.Train.Version
				dlBase = append(dlBase[:0], tw...)
			}
			w, n, err := cfg.Train(env.Train.Round, tw)
			if err != nil {
				return fmt.Errorf("flnet: worker %d round %d: %w", cfg.ClientID, env.Train.Round, err)
			}
			secs := time.Since(start).Seconds()
			if cfg.ReportSeconds != nil {
				secs = cfg.ReportSeconds(env.Train.Round)
			}
			if codec != nil && len(env.Train.Participants) == 0 && codec.ID() != compress.IDNone {
				if len(w) != len(tw) {
					return fmt.Errorf("flnet: worker %d round %d: trained %d weights from %d", cfg.ClientID, env.Train.Round, len(w), len(tw))
				}
				delta := make([]float64, len(w))
				for i := range delta {
					delta[i] = w[i] - tw[i]
				}
				var payload []byte
				payload, _, residual = compress.EncodeDelta(codec, delta, residual)
				up := &CompressedUpdate{
					Round: env.Train.Round, ClientID: cfg.ClientID,
					Codec: codec.ID(), Payload: payload, NumSamples: n,
					Seconds: secs, Seq: env.Train.Seq,
				}
				if err := c.send(&Envelope{Type: MsgCompressedUpdate, CompressedUpdate: up}); err != nil {
					return err
				}
				continue
			}
			w = maskedTrainResult(env.Train, cfg.ClientID, w, n)
			up := &Update{Round: env.Train.Round, ClientID: cfg.ClientID, NumSamples: n, Seconds: secs, Seq: env.Train.Seq}
			if env.Train.Raw != nil {
				// The request came fast-wire, so the aggregator decodes
				// fast-wire replies; answer in kind.
				up.Raw = nn.EncodeWeights(w)
			} else {
				up.Weights = w
			}
			if err := c.send(&Envelope{Type: MsgUpdate, Update: up}); err != nil {
				return err
			}
		case MsgTierAssign:
			if cfg.OnTierAssign != nil && env.TierAssign != nil {
				cfg.OnTierAssign(env.TierAssign.Tier, env.TierAssign.NumTiers)
			}
		case MsgTierReassign:
			if env.TierReassign != nil && env.TierReassign.Renegotiate {
				// The new tier runs a different compression policy: switch
				// codecs and drop the error-feedback residual — it was
				// accumulated under the old codec's loss profile and must
				// not leak into the new stream.
				next, err := compress.Parse(env.TierReassign.CodecSpec)
				if err != nil {
					return fmt.Errorf("flnet: worker %d: renegotiated codec %q: %w", cfg.ClientID, env.TierReassign.CodecSpec, err)
				}
				codec = next
				residual = nil
				if cfg.OnCodecRenegotiate != nil {
					cfg.OnCodecRenegotiate(next.Name())
				}
			}
			if cfg.OnTierReassign != nil && env.TierReassign != nil {
				cfg.OnTierReassign(env.TierReassign.From, env.TierReassign.To, env.TierReassign.NumTiers)
			}
		case MsgDone:
			return nil
		default:
			return fmt.Errorf("flnet: worker %d: unexpected message type %d", cfg.ClientID, env.Type)
		}
	}
}
