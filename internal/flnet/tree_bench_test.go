package flnet

import (
	"testing"
	"time"
)

// BenchmarkTreeFanIn compares root-side commit throughput of the flat
// topology (every worker registers with the one aggregator) against the
// hierarchical tree (per-tier child aggregators pre-reduce at the edge) on
// the same 3-tier × 8-worker fleet and commit budget. Each iteration is a
// full run — listener setup, registration, training, teardown — so the
// numbers are end-to-end commit latency, not just the mixing arithmetic.
func BenchmarkTreeFanIn(b *testing.B) {
	const (
		numTiers = 3
		perTier  = 8
		commits  = 6
		dim      = 2048
	)
	weights := make([]float64, dim)
	tiers := make([][]int, numTiers)
	for t := 0; t < numTiers; t++ {
		for i := 0; i < perTier; i++ {
			tiers[t] = append(tiers[t], t*perTier+i)
		}
	}
	cfg := func() TieredAsyncConfig {
		return TieredAsyncConfig{
			GlobalCommits: commits, ClientsPerRound: perTier,
			RoundTimeout: 10 * time.Second, InitialWeights: weights, Seed: 1,
		}
	}
	checkRun := func(b *testing.B, res *TieredAsyncRunResult, err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Log) != commits {
			b.Fatalf("applied %d commits, want %d", len(res.Log), commits)
		}
	}

	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			agg, err := NewTieredAsyncAggregator("127.0.0.1:0", cfg())
			if err != nil {
				b.Fatal(err)
			}
			for _, members := range tiers {
				for _, ci := range members {
					go RunWorker(agg.Addr(), WorkerConfig{ //nolint:errcheck
						ClientID: ci, NumSamples: 1, Train: echoTrain(1e-3, 1, 0),
					})
				}
			}
			if err := agg.WaitForWorkers(numTiers*perTier, 10*time.Second); err != nil {
				b.Fatal(err)
			}
			res, err := agg.Run(tiers)
			checkRun(b, res, err)
			agg.Close()
		}
	})

	b.Run("tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			root, err := NewTieredAsyncAggregator("127.0.0.1:0", cfg())
			if err != nil {
				b.Fatal(err)
			}
			children := make([]*Child, numTiers)
			for t, members := range tiers {
				ch, err := NewChild(ChildConfig{
					ID: t, RootAddr: root.Addr(), Workers: len(members),
					RoundTimeout: 10 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				children[t] = ch
				go ch.Run() //nolint:errcheck
				for _, ci := range members {
					go RunWorker(ch.Addr(), WorkerConfig{ //nolint:errcheck
						ClientID: ci, NumSamples: 1, Train: echoTrain(1e-3, 1, 0),
					})
				}
			}
			if err := root.WaitForChildren(numTiers, 10*time.Second); err != nil {
				b.Fatal(err)
			}
			res, err := root.RunTree()
			checkRun(b, res, err)
			for _, ch := range children {
				ch.Close()
			}
			root.Close()
		}
	})
}
