package flnet

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/nn"
	"repro/internal/simres"
	"repro/internal/tiering"
)

// retierFixture builds a 9-client, 3-CPU-group population in which the
// three fastest clients collapse to 5% CPU from tier round 4 on (pure
// function of the round, so sim and net drift identically), plus the
// initial profile both Managers are built from.
func retierFixture(t *testing.T) ([]*flcore.Client, *dataset.Dataset, flcore.TieredAsyncConfig, map[int]float64) {
	t.Helper()
	train := dataset.Generate(dataset.CIFAR10Like, 600, 1)
	test := dataset.Generate(dataset.CIFAR10Like, 200, 2)
	parts := dataset.PartitionIID(train.Len(), 9, rand.New(rand.NewSource(3)))
	cpus := simres.AssignGroups(9, []float64{4, 1, 0.25})
	clients := flcore.BuildClients(train, test, parts, cpus, 20, 4)
	for i := 0; i < 3; i++ {
		clients[i].Drift = func(round int) float64 {
			if round >= 4 {
				return 0.05
			}
			return 1
		}
	}
	cfg := flcore.TieredAsyncConfig{
		Duration: 200, ClientsPerRound: 2,
		EvalInterval: 100, Seed: 7, BatchSize: 10, LocalEpochs: 1,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, train.Dim(), []int{8}, 10, 0)
		},
		Optimizer: func(round int) nn.Optimizer { return nn.NewRMSprop(0.01, 0.995) },
		Latency:   simres.DefaultModel,
		EvalBatch: 64,
	}
	prof := core.Profile(clients, cfg.Latency, core.ProfilerConfig{SyncRounds: 3, Tmax: 1e6, Epochs: 1, Seed: 5})
	return clients, test, cfg, prof.Latency
}

func retierManager(t *testing.T, cfg flcore.TieredAsyncConfig, lat map[int]float64) *tiering.Manager {
	t.Helper()
	mgr, err := tiering.NewManager(tiering.Config{
		NumTiers: 3, RetierEvery: 6,
		ClientsPerRound: cfg.ClientsPerRound, Seed: cfg.Seed,
	}, lat)
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

// TestTieredAsyncNetMigrationByteIdenticalToSim is the migration-parity
// acceptance test, mirroring the sim-vs-net comparison but bit-exact: the
// simulated managed engine runs with mid-run client drift until it
// re-tiers at least once; the distributed run then replays the same seed
// with a fresh Manager over real sockets, in lockstep with the
// simulation's commit schedule, with workers self-reporting the simulated
// latencies. Same seed ⇒ byte-identical global model with and without the
// socket transport, through at least one live migration.
func TestTieredAsyncNetMigrationByteIdenticalToSim(t *testing.T) {
	clients, test, cfg, lat := retierFixture(t)
	simMgr := retierManager(t, cfg, lat)
	simCfg := cfg
	simCfg.Manager = simMgr
	sim := flcore.RunTieredAsync(simCfg, nil, clients, test)
	if sim.Retiers < 1 || sim.Migrations < 1 {
		t.Fatalf("simulation never migrated (retiers=%d); the parity check would be vacuous", sim.Retiers)
	}
	schedule := make([]int, len(sim.TierRounds))
	for i, rec := range sim.TierRounds {
		schedule[i] = rec.Tier
	}

	netMgr := retierManager(t, cfg, lat)
	init := cfg.Model(rand.New(rand.NewSource(cfg.Seed))).WeightsVector()
	agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: len(schedule), ClientsPerRound: cfg.ClientsPerRound,
		RoundTimeout: 20 * time.Second, InitialWeights: init, Seed: cfg.Seed,
		Manager: netMgr, Lockstep: schedule,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	// Workers run the identical local computation via the engine's
	// deterministic per-client pass and report the simulated latency the
	// model assigns it, so the net Manager's EWMAs see exactly the values
	// the sim Manager saw.
	eng := flcore.NewEngine(flcore.Config{
		Rounds: 1, ClientsPerRound: 1, LocalEpochs: cfg.LocalEpochs,
		BatchSize: cfg.BatchSize, Seed: cfg.Seed,
		Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: cfg.Latency,
	}, clients, nil)
	var reassigns atomic.Int32
	for ci := range clients {
		ci := ci
		var lastLat float64                    // written and read by the same worker goroutine
		go RunWorker(agg.Addr(), WorkerConfig{ //nolint:errcheck // exits with the aggregator
			ClientID: ci, NumSamples: clients[ci].NumSamples(),
			Train: func(round int, weights []float64) ([]float64, int, error) {
				u := eng.TrainClient(round, ci, weights)
				lastLat = u.Latency
				return u.Weights, u.NumSamples, nil
			},
			ReportSeconds:  func(round int) float64 { return lastLat },
			OnTierReassign: func(from, to, numTiers int) { reassigns.Add(1) },
		})
	}
	if err := agg.WaitForWorkers(len(clients), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Run(nil)
	if err != nil {
		t.Fatal(err)
	}

	if res.Retiers != sim.Retiers || res.Reassigned != sim.Migrations {
		t.Fatalf("net re-tiered %d times (%d moves), sim %d (%d)", res.Retiers, res.Reassigned, sim.Retiers, sim.Migrations)
	}
	if int(reassigns.Load()) != sim.Migrations {
		t.Errorf("workers saw %d MsgTierReassign, want %d", reassigns.Load(), sim.Migrations)
	}
	if len(res.Log) != len(sim.TierRounds) {
		t.Fatalf("applied %d commits, want %d", len(res.Log), len(sim.TierRounds))
	}
	for i, rec := range res.Log {
		want := sim.TierRounds[i]
		if rec.Tier != want.Tier || rec.TierRound != want.TierRound || rec.Version != want.Version ||
			rec.Staleness != want.Staleness || math.Float64bits(rec.Weight) != math.Float64bits(want.Weight) {
			t.Fatalf("commit %d diverges: net %+v vs sim %+v", i, rec, want)
		}
	}
	if len(res.Weights) != len(sim.Weights) {
		t.Fatalf("weight lengths differ: %d vs %d", len(res.Weights), len(sim.Weights))
	}
	for i := range res.Weights {
		if math.Float64bits(res.Weights[i]) != math.Float64bits(sim.Weights[i]) {
			t.Fatalf("global model diverges at weight %d: %x vs %x",
				i, math.Float64bits(res.Weights[i]), math.Float64bits(sim.Weights[i]))
		}
	}
	// Both Managers must agree on the final placement too.
	for ci := range clients {
		st, _ := simMgr.TierOf(ci)
		nt, _ := netMgr.TierOf(ci)
		if st != nt {
			t.Fatalf("client %d placed in tier %d by sim, %d by net", ci, st, nt)
		}
	}
}

// TestTieredAsyncLockstepStallErrors pins the lockstep failure contract: a
// scheduled tier that can no longer deliver (its only worker keeps dying)
// must fail the run with a stall error promptly — even while other tiers
// sit blocked on their ack channels — rather than hang forever.
func TestTieredAsyncLockstepStallErrors(t *testing.T) {
	agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: 4, ClientsPerRound: 1,
		RoundTimeout: 500 * time.Millisecond, InitialWeights: []float64{0}, Seed: 2,
		Lockstep: []int{0, 1, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 0, NumSamples: 1, Train: echoTrain(1, 1, 0)}) //nolint:errcheck
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 1, NumSamples: 1, Train: failTrain()})        //nolint:errcheck
	if err := agg.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := agg.Run([][]int{{0}, {1}})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stalled lockstep schedule reported success")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("lockstep run hung instead of reporting the stalled tier")
	}
}

// TestTieredAsyncNetWorkerDeathDuringReassign kills a worker in the same
// window its live re-tiering migration happens: the run must keep
// committing with the survivors and still reach the full commit target.
func TestTieredAsyncNetWorkerDeathDuringReassign(t *testing.T) {
	lat := map[int]float64{0: 1, 1: 1.1, 2: 10, 3: 11}
	mgr, err := tiering.NewManager(tiering.Config{
		NumTiers: 2, RetierEvery: 3, ClientsPerRound: 2, Seed: 9,
	}, lat)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: 20, ClientsPerRound: 2,
		RoundTimeout: 2 * time.Second, InitialWeights: []float64{0, 0}, Seed: 9,
		Manager: mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	// Worker 1 reports 40 s rounds, so the rebuild at version 3 migrates
	// it into the slow tier — and its training dies from round 4 on,
	// landing the death right at the reassignment window.
	reported := []float64{1, 40, 10, 11}
	var sawReassign atomic.Int32
	for id := 0; id < 4; id++ {
		id := id
		train := echoTrain(1, 1, 0)
		if id == 1 {
			inner := train
			train = func(round int, weights []float64) ([]float64, int, error) {
				if round >= 4 {
					return nil, 0, fmt.Errorf("synthetic death during reassign")
				}
				return inner(round, weights)
			}
		}
		go RunWorker(agg.Addr(), WorkerConfig{ //nolint:errcheck
			ClientID: id, NumSamples: 1, Train: train,
			ReportSeconds:  func(round int) float64 { return reported[id] },
			OnTierReassign: func(from, to, numTiers int) { sawReassign.Add(1) },
		})
	}
	if err := agg.WaitForWorkers(4, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range res.Commits {
		total += c
	}
	if total != 20 {
		t.Fatalf("commits %v sum to %d, want 20", res.Commits, total)
	}
	if res.Retiers < 1 {
		t.Fatalf("drifting worker never re-tiered: %+v", res)
	}
	if tier, ok := mgr.TierOf(1); !ok || tier != 1 {
		t.Fatalf("drifted worker 1 in tier %d after rebuild", tier)
	}
	if sawReassign.Load() < 1 {
		t.Error("no worker observed its MsgTierReassign")
	}
}
