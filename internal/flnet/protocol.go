// Package flnet is the distributed runtime of the reproduction: a real
// TCP implementation of the Google-style FL architecture the paper
// prototypes (Section 5.1) — an aggregator server, client workers, optional
// child aggregators for hierarchical aggregation, network profiling for
// tiering, per-round timeouts, and the 130% over-selection straggler
// mitigation the paper discusses (Section 2).
//
// Two training protocols run over the same worker connections:
//
//   - Aggregator drives synchronous FedAvg rounds (Algorithm 1), with
//     tier-based selection plugged in via TierSelectFunc.
//   - TieredAsyncAggregator is the socket port of the FedAT-style
//     tiered-asynchronous engine (flcore.TieredAsyncEngine): one goroutine
//     per tier drives synchronous mini-FedAvg rounds over that tier's live
//     workers, and committed tier rounds funnel through a channel into a
//     single global-model goroutine applying staleness-discounted,
//     slower-tier-favoring mixing (core.FedATWeights).
//
// Messages are gob-encoded over TCP. The aggregator owns the global model
// as a flat weight vector; workers run caller-supplied TrainFuncs, so the
// same nn/flcore training code runs in-process or across machines.
package flnet

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/nn"
)

// MsgType discriminates protocol messages.
type MsgType uint8

// Protocol message types.
const (
	MsgRegister MsgType = iota + 1
	MsgProfile
	MsgProfileReply
	MsgTrain
	MsgUpdate
	MsgPartial
	MsgDone
	MsgTierAssign
	MsgTierCommit
	MsgCompressedUpdate
	MsgTierReassign
	MsgTreePull
)

// Registration roles (Register.Role). Nodes predating the field gob-decode
// to RoleWorker, so old workers keep registering unchanged.
const (
	// RoleWorker is a leaf training worker (the default).
	RoleWorker byte = 0
	// RoleChildAggregator is a per-tier child aggregator joining a tree
	// root: it registers with ClientID = its tier index and Members = the
	// leaf worker IDs it aggregates, then speaks the TreePull/TierCommit
	// cycle instead of Train/Update.
	RoleChildAggregator byte = 1
)

// Worker protocol levels announced in Register.Proto. Workers predating a
// level gob-decode to 0 and are treated as the oldest protocol. Levels are
// cumulative: a worker announcing level L understands every feature of the
// levels below it.
const (
	// ProtoTierReassign marks a worker that understands MsgTierReassign.
	// The tiered-async aggregator pins older workers in their original
	// tier (they are never migrated), so they keep interoperating with a
	// re-tiering run untouched.
	ProtoTierReassign byte = 1
	// ProtoFastWire marks a worker that understands the bulk weight
	// encoding (Train.Raw/Update.Raw): weight vectors travel as one
	// length-prefixed little-endian byte blob (nn.EncodeWeights) inside the
	// gob envelope, so the multi-MB broadcast/update path is a single
	// memcopy-style encode instead of per-element reflection. Aggregators
	// send Raw only to workers that announced this level; a worker replies
	// in whichever encoding the request arrived in, so either side may be
	// old without breaking the other.
	ProtoFastWire byte = 2
	// ProtoCodecRenegotiate marks a worker that honors the codec fields of
	// MsgTierReassign: when a migration lands it in a tier with a different
	// compression policy, the aggregator piggybacks the new codec spec on
	// the reassignment and the worker switches (resetting its
	// error-feedback residual). Older workers keep their handshake codec
	// for the whole run; the aggregator never renegotiates with them.
	ProtoCodecRenegotiate byte = 3
	// ProtoDeltaDownlink marks a worker that understands the version-acked
	// delta broadcast (Train.Version/Delta/DeltaBase/DeltaCodec): it tracks
	// the last versioned snapshot it received, reconstructs delta payloads
	// against it via compress.ApplyDelta, and adopts versioned dense
	// snapshots as the new base. The aggregator only sends deltas to
	// workers at this level whose last acked version matches the tier
	// chain's base; everyone else — and every worker below this level —
	// receives the dense snapshot exactly as before, so the feature is
	// invisible to old nodes.
	ProtoDeltaDownlink byte = 4
)

// Envelope is the single on-wire message shape; exactly one payload field
// is set according to Type.
type Envelope struct {
	Type             MsgType
	Register         *Register
	Profile          *Profile
	ProfileReply     *ProfileReply
	Train            *Train
	Update           *Update
	Partial          *Partial
	Done             *Done
	TierAssign       *TierAssign
	TierCommit       *TierCommit
	CompressedUpdate *CompressedUpdate
	TierReassign     *TierReassign
	TreePull         *TreePull
}

// Register announces a worker to its aggregator. Codec is the update
// compression the worker will speak (compress.ID* constants) — this is the
// whole negotiation: a worker that predates compression gob-decodes to the
// zero value, which is the dense codec, so old nodes keep working; the
// aggregator rejects IDs it cannot decode at the handshake, before any
// round can fail on an undecodable payload.
type Register struct {
	ClientID   int
	NumSamples int
	Codec      byte
	// Proto is the worker's protocol level (Proto* constants). Workers
	// from before the field gob-decode to 0; the aggregator then withholds
	// newer envelope types from them (today: MsgTierReassign) instead of
	// sending messages they would reject.
	Proto byte
	// Role distinguishes leaf workers from child aggregators (Role*
	// constants); nodes predating the field decode to RoleWorker.
	Role byte
	// Members lists the leaf worker IDs a child aggregator fans in over
	// (RoleChildAggregator only). The tree root checkpoints and validates
	// tier membership from these, so a resumed tree can detect roster
	// changes without ever seeing the leaves' connections.
	Members []int
	// Addr is the node's own listen address (informational; child
	// aggregators report theirs so the root's metrics can name them).
	Addr string
}

// Profile asks a worker to run one profiling task (Section 4.2's
// lightweight profiler, over the network).
type Profile struct {
	Weights []float64
}

// ProfileReply reports the measured local training duration.
type ProfileReply struct {
	ClientID int
	Seconds  float64
}

// Train delivers the round's global weights to a selected worker. When
// Participants is non-empty the round runs under secure aggregation: the
// worker masks its sample-weighted update with pairwise masks over the
// cohort (see secure.go) scaled by MaskScale.
//
// Seq is a per-request token the worker echoes back in its update. Live
// re-tiering makes it necessary: while a migration is in flight a worker
// can be trained by its old tier's in-flight round and its new tier's next
// round concurrently, and the two tiers' local round counters can collide
// — matching replies by round number alone would let one tier aggregate an
// update trained against the other tier's weights. 0 (synchronous rounds,
// legacy aggregators) preserves the round-matched flow.
type Train struct {
	Round        int
	Weights      []float64
	Participants []int
	MaskScale    float64
	Seq          int64
	// Raw is the fast-wire weight payload (nn.EncodeWeights bulk bytes),
	// set instead of Weights for workers that registered with
	// Proto ≥ ProtoFastWire. Exactly one of Weights/Raw is non-nil.
	Raw []byte
	// Version identifies the broadcast snapshot under the delta-downlink
	// scheme: the sending tier's 1-based versioned-broadcast counter (so
	// 0, the value old aggregators gob-decode to, means "no version — do
	// not track a base"). A per-tier per-broadcast counter rather than the
	// global model version, because a tier racing its own commit's
	// application can pull the same global version twice and every
	// (tier, Version) pair must name exactly one base. Only set for
	// workers that registered with Proto ≥ ProtoDeltaDownlink on runs
	// with a downlink mode configured.
	Version int
	// Delta, when non-nil, replaces Weights/Raw: the compress delta
	// payload to apply against the worker's held base. DeltaBase names
	// that base (its Version value), and DeltaCodec is the compress delta
	// codec ID (compress.IDDeltaXOR for the lossless XOR delta, the lossy
	// codec's ID otherwise).
	Delta      []byte
	DeltaBase  int
	DeltaCodec byte
}

// broadcast is one round's weight vector prepared for sending to a mixed
// population: the fast-wire blob is encoded at most once per round, no
// matter how many workers receive it (the blob and the weights slice are
// shared read-only across the per-worker Train envelopes).
type broadcast struct {
	weights []float64
	raw     []byte // lazily encoded on the first fast-wire recipient
}

func newBroadcast(weights []float64) *broadcast { return &broadcast{weights: weights} }

// fill sets t's weight payload in the encoding negotiated at registration:
// bulk bytes for ProtoFastWire peers, the legacy per-element gob field
// otherwise. It returns t for call chaining.
func (b *broadcast) fill(t *Train, proto byte) *Train {
	if proto >= ProtoFastWire {
		if b.raw == nil {
			b.raw = nn.EncodeWeights(b.weights)
		}
		t.Raw = b.raw
	} else {
		t.Weights = b.weights
	}
	return t
}

// roundWeights decodes the request's weight vector from whichever encoding
// it arrived in.
func (t *Train) roundWeights() ([]float64, error) {
	if t.Raw != nil {
		return nn.DecodeWeights(t.Raw)
	}
	return t.Weights, nil
}

// Update returns a worker's locally trained weights. Seconds is the
// worker-measured duration of the local pass (0 from workers predating the
// field); it feeds the live tiering Manager's EWMA latency estimates —
// client-side measurement excludes aggregator-side queueing, matching what
// Section 4.2's profiler observes.
type Update struct {
	Round      int
	ClientID   int
	Weights    []float64
	NumSamples int
	Seconds    float64
	// Seq echoes Train.Seq (0 from workers predating the field).
	Seq int64
	// Raw is the fast-wire weight payload (nn.EncodeWeights bulk bytes).
	// A worker sets it instead of Weights when the Train request itself
	// arrived fast-wire, so replies always match what the aggregator can
	// decode. Exactly one of Weights/Raw is non-nil.
	Raw []byte
}

// Partial is a child aggregator's pre-aggregated contribution: the weighted
// sum of its workers' updates plus the total weight, so the master can
// combine children without seeing individual updates.
type Partial struct {
	Round       int
	WeightedSum []float64
	TotalWeight float64
	Clients     int
}

// Done tells a worker training is finished.
type Done struct {
	Rounds int
}

// TierAssign tells a worker which latency tier it was placed in after
// server-side profiling and tiering (tier 0 is fastest, per
// core.BuildTiers). Workers need no tier knowledge to train — their tier's
// aggregator loop drives them — but the assignment lets them log placement
// and lets future work adapt locally (e.g. update compression for slow
// tiers).
type TierAssign struct {
	Tier     int
	NumTiers int
	// The remaining fields configure a child aggregator joining a tree
	// root (zero for plain workers, which ignore them): Seed and
	// ClientsPerRound key the child's flcore.TierCohort draws so the tree
	// selects exactly the cohorts a flat run would, and StartRound is the
	// tier's first local round index (non-zero when resuming from a
	// checkpoint).
	Seed            int64
	ClientsPerRound int
	StartRound      int
}

// TreePull is the tree root's counterpart of a tier loop's snapshot pull:
// the current global version and weights, sent to a child aggregator after
// its registration and again after each of its commits is applied — the
// same dispatch-at-commit discipline the in-process lockstep mode uses, so
// a tree run can be byte-compared against a flat one. Exactly one of
// Weights/Raw is set, negotiated by the child's Register.Proto like any
// broadcast.
type TreePull struct {
	Version int
	Weights []float64
	Raw     []byte
	// Delta, when non-nil, replaces Weights/Raw: the compress delta
	// payload against the child's previously applied pull. DeltaBase is
	// that pull's Version, DeltaCodec the compress delta codec ID. The
	// root may send deltas because the pull→commit cycle is strictly
	// sequential per child — a pull is only followed by another after the
	// child's commit for it was applied, so the received commit is the
	// implicit ack that the child holds the previous pull's base.
	Delta      []byte
	DeltaBase  int
	DeltaCodec byte
}

// pullWeights decodes the pull's weight vector from whichever encoding it
// arrived in.
func (p *TreePull) pullWeights() ([]float64, error) {
	if p.Raw != nil {
		return nn.DecodeWeights(p.Raw)
	}
	return p.Weights, nil
}

// TierCommit is one tier's finished mini-FedAvg round on its way to the
// global model: the tier-level aggregate, the tier's local round counter,
// and the global version the round was trained from (PulledVersion), from
// which the committer derives staleness. Inside TieredAsyncAggregator these
// envelopes flow over the in-process commit channel; the wire encoding
// exists so a tier loop can run as a separate child-aggregator process
// (hierarchy.go style) without a protocol change.
type TierCommit struct {
	Tier          int
	TierRound     int
	PulledVersion int
	Weights       []float64
	Clients       int
	Seconds       float64 // wall-clock duration of the tier round
	// UplinkBytes is the tier round's worker→aggregator update traffic as
	// encoded on the wire (compressed payloads where negotiated).
	UplinkBytes int64
	// DownlinkBytes is the tier round's aggregator→worker broadcast
	// traffic as encoded on the wire (delta payloads where the ack state
	// allowed them, dense snapshots otherwise).
	DownlinkBytes int64
	// Observed carries each contributing client's observed response
	// latency, feeding the live tiering Manager's EWMA estimates at the
	// committer (worker-reported seconds where available, the tier round's
	// wall clock otherwise).
	Observed []ClientSeconds
}

// ClientSeconds is one client's observed round cost: the compute-side
// latency plus, when the aggregator measures them, the end-to-end response
// time and the wire traffic the client caused. Bytes and EndToEnd feed the
// comm-aware tiering signal (tiering.Config.CommAware); both gob-decode to
// zero from senders predating the fields, in which case the Manager falls
// back to Seconds alone.
type ClientSeconds struct {
	Client  int
	Seconds float64
	// Bytes is the client's total wire traffic for the round: its share
	// of the broadcast (dense or delta payload) plus its update as
	// encoded on the wire.
	Bytes int64
	// EndToEnd is the aggregator-measured time from broadcast to the
	// arrival of the client's update — queueing and transfer included,
	// unlike the worker-reported Seconds.
	EndToEnd float64
}

// TierReassign tells a worker it migrated between latency tiers at a live
// re-tiering point (tier 0 is fastest, per core.BuildTiers). Like
// MsgTierAssign it is informational — tier loops are server-driven, so the
// migration is effective regardless — but it lets workers log placement
// and adapt locally. It is only sent to workers that registered with
// Proto ≥ ProtoTierReassign; older workers are pinned to their original
// tier instead, so they never need to understand it.
type TierReassign struct {
	From     int
	To       int
	NumTiers int
	// Renegotiate, when true, carries a codec change for the worker's new
	// tier: the worker must switch its uplink compression to CodecSpec
	// (compress.Parse syntax) from its next training round on, dropping
	// its error-feedback residual — the old tier's residual was
	// accumulated under a different loss profile and must not leak into
	// the new codec's stream. Only sent to workers that registered with
	// Proto ≥ ProtoCodecRenegotiate; the aggregator accepts updates under
	// both the old and new codec during the switch window, because a
	// round dispatched before the migration can still deliver afterwards.
	Renegotiate bool
	CodecSpec   string
}

// CompressedUpdate is the compressed counterpart of Update: instead of a
// dense weight vector, it carries the codec-encoded weight *delta* against
// the round's broadcast weights (error-feedback residual kept
// worker-side), plus the codec ID so the aggregator decodes with the right
// scheme. The aggregator reconstructs weights = broadcast + decode(Payload).
type CompressedUpdate struct {
	Round      int
	ClientID   int
	Codec      byte
	Payload    []byte
	NumSamples int
	// Seconds mirrors Update.Seconds: the worker-measured duration of the
	// local pass, feeding live tiering's latency estimates.
	Seconds float64
	// Seq echoes Train.Seq (0 from workers predating the field).
	Seq int64
}

// conn wraps a net.Conn with gob codecs and deadline helpers. Sends are
// serialized: live re-tiering makes the committer goroutine send
// MsgTierReassign on connections whose tier loops send MsgTrain
// concurrently, and a gob encoder is not safe for concurrent use.
type conn struct {
	raw    net.Conn
	sendMu sync.Mutex
	enc    *gob.Encoder
	dec    *gob.Decoder
	// writeTimeout bounds each send with a write deadline (0 = block
	// forever, the historical behaviour). Set once before the conn is
	// shared across goroutines.
	writeTimeout time.Duration
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw)}
}

func (c *conn) send(env *Envelope) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.writeTimeout > 0 {
		if err := c.raw.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return fmt.Errorf("flnet: send %d: deadline: %w", env.Type, err)
		}
		defer c.raw.SetWriteDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	if err := c.enc.Encode(env); err != nil {
		return fmt.Errorf("flnet: send %d: %w", env.Type, err)
	}
	return nil
}

// recv decodes the next message; a zero timeout blocks indefinitely.
func (c *conn) recv(timeout time.Duration) (*Envelope, error) {
	if timeout > 0 {
		if err := c.raw.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, fmt.Errorf("flnet: deadline: %w", err)
		}
		defer c.raw.SetReadDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	var env Envelope
	if err := c.dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("flnet: recv: %w", err)
	}
	return &env, nil
}

func (c *conn) close() error { return c.raw.Close() }
