package flnet

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/compress"
)

// BenchmarkDownlinkBroadcast measures end-to-end commit latency and broadcast
// traffic of the socket runtime under each downlink mode — dense snapshots,
// lossless version-acked deltas, and top-k sparsified deltas — on both the
// flat topology and the hierarchical tree. Every worker participates in every
// round, so after the first (dense) contact the delta arms run the
// steady-state all-acked path; the bytes/commit metric is the wire-level
// downlink traffic the codec actually moved.
func BenchmarkDownlinkBroadcast(b *testing.B) {
	const (
		numTiers = 3
		perTier  = 8
		commits  = 6
		dim      = 2048
	)
	weights := make([]float64, dim)
	tiers := make([][]int, numTiers)
	for t := 0; t < numTiers; t++ {
		for i := 0; i < perTier; i++ {
			tiers[t] = append(tiers[t], t*perTier+i)
		}
	}
	modes := []string{"dense", "delta", "delta+topk@0.1"}
	parse := func(b *testing.B, mode string) *compress.Downlink {
		b.Helper()
		dl, err := compress.ParseDownlink(mode)
		if err != nil {
			b.Fatal(err)
		}
		return dl
	}
	cfg := func(dl *compress.Downlink) TieredAsyncConfig {
		return TieredAsyncConfig{
			GlobalCommits: commits, ClientsPerRound: perTier,
			RoundTimeout: 10 * time.Second, InitialWeights: weights, Seed: 1,
			Downlink: dl,
		}
	}
	checkRun := func(b *testing.B, res *TieredAsyncRunResult, err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Log) != commits {
			b.Fatalf("applied %d commits, want %d", len(res.Log), commits)
		}
		b.ReportMetric(float64(res.DownlinkBytes)/float64(commits), "downlinkB/commit")
	}

	for _, mode := range modes {
		b.Run(fmt.Sprintf("flat/%s", mode), func(b *testing.B) {
			dl := parse(b, mode)
			for i := 0; i < b.N; i++ {
				agg, err := NewTieredAsyncAggregator("127.0.0.1:0", cfg(dl))
				if err != nil {
					b.Fatal(err)
				}
				for _, members := range tiers {
					for _, ci := range members {
						go RunWorker(agg.Addr(), WorkerConfig{ //nolint:errcheck
							ClientID: ci, NumSamples: 1, Train: echoTrain(1e-3, 1, 0),
						})
					}
				}
				if err := agg.WaitForWorkers(numTiers*perTier, 10*time.Second); err != nil {
					b.Fatal(err)
				}
				res, err := agg.Run(tiers)
				checkRun(b, res, err)
				agg.Close()
			}
		})
	}

	for _, mode := range modes {
		b.Run(fmt.Sprintf("tree/%s", mode), func(b *testing.B) {
			dl := parse(b, mode)
			for i := 0; i < b.N; i++ {
				root, err := NewTieredAsyncAggregator("127.0.0.1:0", cfg(dl))
				if err != nil {
					b.Fatal(err)
				}
				children := make([]*Child, numTiers)
				for t, members := range tiers {
					ch, err := NewChild(ChildConfig{
						ID: t, RootAddr: root.Addr(), Workers: len(members),
						RoundTimeout: 10 * time.Second, Downlink: dl,
					})
					if err != nil {
						b.Fatal(err)
					}
					children[t] = ch
					go ch.Run() //nolint:errcheck
					for _, ci := range members {
						go RunWorker(ch.Addr(), WorkerConfig{ //nolint:errcheck
							ClientID: ci, NumSamples: 1, Train: echoTrain(1e-3, 1, 0),
						})
					}
				}
				if err := root.WaitForChildren(numTiers, 10*time.Second); err != nil {
					b.Fatal(err)
				}
				res, err := root.RunTree()
				checkRun(b, res, err)
				for _, ch := range children {
					ch.Close()
				}
				root.Close()
			}
		})
	}
}
