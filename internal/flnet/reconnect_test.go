package flnet

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/flcore"
)

// TestWorkerReconnectResumesRun is the basic self-healing path: a worker
// whose connection is severed mid-run by a scripted faultnet cut must
// re-enter via the backoff loop, be re-announced its tier, and the run
// must still reach the full commit target. The reconnect is observable in
// /metrics while the run is in flight: the reconnect counter ticks, the
// worker's row returns to "connected", and its tier's live-member
// fraction recovers to 1.
func TestWorkerReconnectResumesRun(t *testing.T) {
	agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: 14, ClientsPerRound: 2,
		RoundTimeout: 10 * time.Second, InitialWeights: []float64{0, 0}, Seed: 3,
		MaxRetries: 2, RejoinWait: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	// Worker 0's first connection dies after 2000 bytes; its reconnect
	// dial establishes connection index 1, which no rule touches.
	ft := faultnet.New(faultnet.Schedule{Rules: []faultnet.Rule{{Conn: 0, CutAfterBytes: 2000}}})
	tiers := [][]int{{0, 1}, {2, 3}}
	for id := 0; id < 4; id++ {
		cfg := WorkerConfig{
			ClientID: id, NumSamples: 1, Train: echoTrain(1, 1, 5*time.Millisecond),
			Reconnect: true, MaxReconnects: 20,
			ReconnectBase: 10 * time.Millisecond, ReconnectMax: 200 * time.Millisecond,
			RPCTimeout: 20 * time.Second,
		}
		if id == 0 {
			cfg.Dial = ft.Dial
		}
		go RunWorker(agg.Addr(), cfg) //nolint:errcheck // post-run redials may fail
	}
	if err := agg.WaitForWorkers(4, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	type runOut struct {
		res *TieredAsyncRunResult
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := agg.Run(tiers)
		done <- runOut{res, err}
	}()

	// Catch the healed state live: worker 0 cut, reconnected, connected
	// again, with its tier back at full strength.
	var healed *MetricsSnapshot
	deadline := time.Now().Add(15 * time.Second)
poll:
	for time.Now().Before(deadline) {
		snap := agg.Metrics()
		if snap.Reconnects >= 1 {
			for _, w := range snap.Workers {
				if w.ID == 0 && w.State == WorkerConnected && w.Reconnects >= 1 {
					healed = &snap
					break poll
				}
			}
		}
		select {
		case out := <-done:
			done <- out
			break poll
		case <-time.After(10 * time.Millisecond):
		}
	}
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if ft.Cuts() < 1 {
		t.Fatalf("faultnet cut %d connections, want the scripted cut", ft.Cuts())
	}
	if healed == nil {
		t.Fatal("run finished without /metrics ever showing worker 0 reconnected")
	}
	if len(healed.Workers) != 4 {
		t.Fatalf("metrics carry %d worker rows, want 4: %+v", len(healed.Workers), healed.Workers)
	}
	for _, w := range healed.Workers {
		if w.ID == 0 && w.Tier != 0 {
			t.Errorf("worker 0 row holds tier %d after rejoin, want 0", w.Tier)
		}
	}
	for _, tm := range healed.Tiers {
		if tm.Tier == 0 && tm.LiveMemberFraction != 1 {
			t.Errorf("tier 0 live-member fraction %.2f after rejoin, want 1", tm.LiveMemberFraction)
		}
	}
	total := 0
	for _, c := range out.res.Commits {
		total += c
	}
	if total != 14 || len(out.res.Log) != 14 {
		t.Fatalf("commits %v sum to %d (log %d), want 14", out.res.Commits, total, len(out.res.Log))
	}
	// Idempotent tokens: a commit can never count more members than the
	// cohort it dispatched, no matter how many redispatches it took.
	for i, rec := range out.res.Log {
		if rec.Clients < 1 || rec.Clients > 2 {
			t.Fatalf("commit %d counted %d clients, cohort size is 2: %+v", i, rec.Clients, rec)
		}
	}
}

// TestWorkerReconnectGivesUp bounds the backoff loop: with the aggregator
// gone for good, a reconnecting worker must fail after its configured
// attempt budget instead of spinning forever.
func TestWorkerReconnectGivesUp(t *testing.T) {
	agg, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
		Rounds: 1, ClientsPerRound: 1, InitialWeights: []float64{0}, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := agg.Addr()
	agg.Close()
	errCh := make(chan error, 1)
	go func() {
		errCh <- RunWorker(addr, WorkerConfig{
			ClientID: 0, NumSamples: 1, Train: echoTrain(1, 1, 0),
			DialTimeout: 200 * time.Millisecond,
			Reconnect:   true, MaxReconnects: 3,
			ReconnectBase: 5 * time.Millisecond, ReconnectMax: 20 * time.Millisecond,
		})
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("worker reported success against a dead aggregator")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("reconnect loop did not give up")
	}
}

// TestChaosReconnectAccuracyBand is the deterministic chaos suite of the
// robustness PR: the 9-client training federation runs under a scripted
// faultnet schedule — a seeded flap storm cutting a fraction of the
// initial worker connections mid-round plus a transient dial-refusal
// window on the reconnect path — and must finish every commit with a
// final model inside the fault-free run's accuracy band. The seq-routed
// request tokens make double-counting structurally impossible; the
// per-commit client counts pin that.
func TestChaosReconnectAccuracyBand(t *testing.T) {
	commits := 18
	if testing.Short() {
		commits = 9
	}
	clients, tiers, test, cfg := netFixture(t, 0)
	init := cfg.Model(rand.New(rand.NewSource(cfg.Seed))).WeightsVector()
	eng := flcore.NewEngine(flcore.Config{
		Rounds: 1, ClientsPerRound: 1, LocalEpochs: cfg.LocalEpochs,
		BatchSize: cfg.BatchSize, Seed: cfg.Seed,
		Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: cfg.Latency,
	}, clients, nil)
	evalAcc := func(weights []float64) float64 {
		model := cfg.Model(rand.New(rand.NewSource(cfg.Seed)))
		model.SetWeightsVector(weights)
		acc, _ := model.Evaluate(test.InputTensor(), test.Y, cfg.EvalBatch)
		return acc
	}
	taCfg := func() TieredAsyncConfig {
		return TieredAsyncConfig{
			GlobalCommits: commits, ClientsPerRound: cfg.ClientsPerRound,
			RoundTimeout: 20 * time.Second, InitialWeights: init, Seed: cfg.Seed,
			MaxRetries: 2, RejoinWait: 5 * time.Second, SendTimeout: 20 * time.Second,
		}
	}
	// Pacing recreates the tier latency spread in real time (as in
	// TestTieredAsyncNetTracksSimulation) and stretches the run far past
	// the reconnect backoff horizon, so cut workers rejoin mid-run.
	pacing := []time.Duration{5 * time.Millisecond, 9 * time.Millisecond, 25 * time.Millisecond}
	runFleet := func(ft *faultnet.Transport) *TieredAsyncRunResult {
		t.Helper()
		agg, err := NewTieredAsyncAggregator("127.0.0.1:0", taCfg())
		if err != nil {
			t.Fatal(err)
		}
		defer agg.Close()
		for ti, members := range tiers {
			for _, ci := range members {
				ci, ti := ci, ti
				wc := WorkerConfig{
					ClientID: ci, NumSamples: clients[ci].NumSamples(),
					Reconnect: true, MaxReconnects: 50,
					ReconnectBase: 5 * time.Millisecond, ReconnectMax: 50 * time.Millisecond,
					Train: func(round int, weights []float64) ([]float64, int, error) {
						time.Sleep(pacing[ti])
						u := eng.TrainClient(round, ci, weights)
						return u.Weights, u.NumSamples, nil
					},
				}
				if ft != nil {
					wc.Dial = ft.Dial
				}
				go RunWorker(agg.Addr(), wc) //nolint:errcheck // post-run redials may fail
			}
		}
		if err := agg.WaitForWorkers(len(clients), 15*time.Second); err != nil {
			t.Fatal(err)
		}
		res, err := agg.Run(tiers)
		if err != nil {
			t.Fatal(err)
		}
		snap := agg.Metrics()
		if ft == nil {
			if snap.Reconnects != 0 {
				t.Errorf("fault-free run recorded %d reconnects", snap.Reconnects)
			}
		} else if snap.Reconnects < 1 {
			t.Errorf("chaos run recorded no reconnects (cuts=%d refused=%d)", ft.Cuts(), ft.Refused())
		}
		return res
	}
	check := func(res *TieredAsyncRunResult) float64 {
		t.Helper()
		total := 0
		for _, c := range res.Commits {
			total += c
		}
		if total != commits || len(res.Log) != commits {
			t.Fatalf("commits %v sum to %d (log %d), want %d", res.Commits, total, len(res.Log), commits)
		}
		for i, rec := range res.Log {
			if rec.Clients < 1 || rec.Clients > cfg.ClientsPerRound {
				t.Fatalf("commit %d counted %d clients, cohort size is %d", i, rec.Clients, cfg.ClientsPerRound)
			}
		}
		return evalAcc(res.Weights)
	}

	cleanAcc := check(runFleet(nil))

	// The scripted chaos: a fixed-seed flap storm over the nine initial
	// connections (~1/3 of the fleet, cut mid-round once ~10 KB of train
	// traffic crossed — a couple of rounds at this fixture's model size)
	// and a transient root partition refusing the first reconnect dials.
	rules := faultnet.FlapRules(42, len(clients), 0.34, 10<<10)
	if len(rules) == 0 {
		t.Fatal("flap schedule selected no connections; pick a different seed")
	}
	ft := faultnet.New(faultnet.Schedule{
		Seed: 42, Rules: rules,
		RefuseFrom: len(clients), RefuseUntil: len(clients) + 2,
	})
	chaosAcc := check(runFleet(ft))
	if ft.Cuts() < 1 {
		t.Fatalf("chaos schedule cut %d connections, want >= 1", ft.Cuts())
	}
	t.Logf("accuracy clean=%.4f chaos=%.4f (cuts=%d refused=%d)", cleanAcc, chaosAcc, ft.Cuts(), ft.Refused())
	if diff := math.Abs(chaosAcc - cleanAcc); diff > 0.2 {
		t.Fatalf("chaos accuracy %.4f diverges from fault-free %.4f by %.4f", chaosAcc, cleanAcc, diff)
	}
}

// TestTreeChildRevival is the tree half of the self-healing contract:
// killing a child aggregator mid-run degrades its tier (as in
// TestTreeChildDeathDegrades), but respawning a child on the same address
// with the same leaf membership must revive it — the leaves reconnect to
// the new child through their backoff loops, the child re-registers at
// the root, the root validates it against the pinned topology, and the
// tier resumes committing with /metrics flipped back to alive.
func TestTreeChildRevival(t *testing.T) {
	commits := 40
	if testing.Short() {
		commits = 20
	}
	// Per-tier pacing stretches the run well past the revival horizon
	// (death detection + leaf reconnects + child respawn, ~100ms).
	pacing := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	clients, tiers, test, cfg := netFixture(t, 0)
	init := cfg.Model(rand.New(rand.NewSource(cfg.Seed))).WeightsVector()
	eng := flcore.NewEngine(flcore.Config{
		Rounds: 1, ClientsPerRound: 1, LocalEpochs: cfg.LocalEpochs,
		BatchSize: cfg.BatchSize, Seed: cfg.Seed,
		Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: cfg.Latency,
	}, clients, nil)

	root, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: commits, ClientsPerRound: cfg.ClientsPerRound,
		RoundTimeout: 20 * time.Second, InitialWeights: init, Seed: cfg.Seed,
		RejoinWait: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	children, _ := startChildren(t, root.Addr(), tiers)

	// A fast-tier leaf assassinates the slowest tier's child on its second
	// round; the doomed tier's leaves then hammer the child's old address
	// through their backoff loops until the respawn starts listening.
	var kill sync.Once
	doomed := children[len(children)-1]
	doomedAddr := doomed.Addr()
	for ti, members := range tiers {
		for _, ci := range members {
			ci, fast, pace := ci, ti == 0, pacing[ti]
			go RunWorker(children[ti].Addr(), WorkerConfig{ //nolint:errcheck // doomed-tier leaves see expected errors
				ClientID: ci, NumSamples: clients[ci].NumSamples(),
				Reconnect: true, MaxReconnects: 100,
				ReconnectBase: 5 * time.Millisecond, ReconnectMax: 100 * time.Millisecond,
				Train: func(round int, weights []float64) ([]float64, int, error) {
					time.Sleep(pace)
					if fast && round >= 1 {
						kill.Do(doomed.Close)
					}
					u := eng.TrainClient(round, ci, weights)
					return u.Weights, u.NumSamples, nil
				},
			})
		}
	}
	if err := root.WaitForChildren(len(tiers), 15*time.Second); err != nil {
		t.Fatal(err)
	}

	type runOut struct {
		res *TieredAsyncRunResult
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := root.RunTree()
		done <- runOut{res, err}
	}()

	// Wait for the death to register, then respawn the child on the same
	// address with the same leaf quota.
	last := len(tiers) - 1
	waitFor := func(cond func(MetricsSnapshot) bool, what string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if cond(root.Metrics()) {
				return
			}
			select {
			case out := <-done:
				done <- out
				t.Fatalf("run finished before %s (err %v)", what, out.err)
			case <-time.After(10 * time.Millisecond):
			}
		}
		t.Fatalf("timed out waiting for %s", what)
	}
	waitFor(func(s MetricsSnapshot) bool {
		return len(s.Children) == len(tiers) && !s.Children[last].Alive
	}, "the killed child to be marked dead")

	respawn, err := NewChild(ChildConfig{
		ID: last, Addr: doomedAddr, RootAddr: root.Addr(),
		Workers: len(tiers[last]), RoundTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer respawn.Close()
	respawnErr := make(chan error, 1)
	go func() { respawnErr <- respawn.Run() }()

	waitFor(func(s MetricsSnapshot) bool {
		return s.ChildRejoins >= 1 && s.Children[last].Alive
	}, "the respawned child to revive its tier")

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if err := <-respawnErr; err != nil {
		t.Fatalf("respawned child: %v", err)
	}
	total := 0
	for _, c := range out.res.Commits {
		total += c
	}
	if total != commits || len(out.res.Log) != commits {
		t.Fatalf("commits %v sum to %d (log %d), want %d", out.res.Commits, total, len(out.res.Log), commits)
	}
	snap := root.Metrics()
	if snap.ChildRejoins < 1 {
		t.Errorf("metrics report %d child rejoins, want >= 1", snap.ChildRejoins)
	}
	if !snap.Children[last].Alive {
		t.Error("revived child not marked alive in metrics")
	}
	for _, tm := range snap.Tiers {
		if tm.Tier == last && tm.LiveMemberFraction != 1 {
			t.Errorf("revived tier live-member fraction %.2f, want 1", tm.LiveMemberFraction)
		}
	}

	// The revived model must stay inside the flat run's accuracy band —
	// the same band TestTreeChildDeathDegrades holds the degraded run to.
	flatAgg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: commits, ClientsPerRound: cfg.ClientsPerRound,
		RoundTimeout: 20 * time.Second, InitialWeights: init, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer flatAgg.Close()
	var cfgs []WorkerConfig
	for ti, members := range tiers {
		for _, ci := range members {
			ci, pace := ci, pacing[ti]
			cfgs = append(cfgs, WorkerConfig{
				ClientID: ci, NumSamples: clients[ci].NumSamples(),
				Train: func(round int, weights []float64) ([]float64, int, error) {
					time.Sleep(pace)
					u := eng.TrainClient(round, ci, weights)
					return u.Weights, u.NumSamples, nil
				},
			})
		}
	}
	wait := startWorkers(t, flatAgg.Addr(), cfgs)
	if err := flatAgg.WaitForWorkers(len(clients), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	flat, err := flatAgg.Run(tiers)
	if err != nil {
		t.Fatal(err)
	}
	wait()
	evalAcc := func(weights []float64) float64 {
		model := cfg.Model(rand.New(rand.NewSource(cfg.Seed)))
		model.SetWeightsVector(weights)
		acc, _ := model.Evaluate(test.InputTensor(), test.Y, cfg.EvalBatch)
		return acc
	}
	treeAcc, flatAcc := evalAcc(out.res.Weights), evalAcc(flat.Weights)
	t.Logf("accuracy revived-tree=%.4f flat=%.4f", treeAcc, flatAcc)
	if diff := math.Abs(treeAcc - flatAcc); diff > 0.2 {
		t.Errorf("revived tree accuracy %.4f vs flat %.4f (diff %.4f > 0.2)", treeAcc, flatAcc, diff)
	}
}

// BenchmarkReconnectStorm measures the cost of absorbing a full-fleet
// reconnect storm: every worker's initial connection is cut by the
// scripted schedule, the whole fleet re-enters through backoff, and the
// run still drives to its commit target.
func BenchmarkReconnectStorm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
			GlobalCommits: 6, ClientsPerRound: 2,
			RoundTimeout: 10 * time.Second, InitialWeights: []float64{0, 0}, Seed: 17,
			MaxRetries: 2, RejoinWait: 5 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		ft := faultnet.New(faultnet.Schedule{Rules: faultnet.FlapRules(17, 6, 1, 1500)})
		for id := 0; id < 6; id++ {
			go RunWorker(agg.Addr(), WorkerConfig{ //nolint:errcheck // post-run redials may fail
				ClientID: id, NumSamples: 1, Train: echoTrain(1, 1, time.Millisecond),
				Dial: ft.Dial, Reconnect: true, MaxReconnects: 50,
				ReconnectBase: 5 * time.Millisecond, ReconnectMax: 100 * time.Millisecond,
			})
		}
		if err := agg.WaitForWorkers(6, 10*time.Second); err != nil {
			b.Fatal(err)
		}
		if _, err := agg.Run([][]int{{0, 1, 2}, {3, 4, 5}}); err != nil {
			b.Fatal(err)
		}
		if ft.Cuts() < 6 {
			b.Fatalf("storm cut %d of 6 connections", ft.Cuts())
		}
		agg.Close()
	}
}
