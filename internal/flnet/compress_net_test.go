package flnet

import (
	"math"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/compress"
)

// initVec returns an n-weight starting model with distinct values.
func initVec(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(i%13) * 0.25
	}
	return w
}

func TestCompressedUpdateNegotiatedBothSides(t *testing.T) {
	// Two workers announcing topk@1.0 at registration; delta +1 is exactly
	// representable in float32, so the compressed run must reproduce the
	// dense FedAvg bit-for-bit while the byte accounting shows codec
	// payloads, not dense updates.
	const n = 100
	codec := compress.NewTopK(1)
	agg, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
		Rounds: 3, ClientsPerRound: 2, InitialWeights: initVec(n), Seed: 11,
		RoundTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	wait := startWorkers(t, agg.Addr(), []WorkerConfig{
		{ClientID: 0, NumSamples: 2, Train: echoTrain(1, 2, 0), Codec: codec},
		{ClientID: 1, NumSamples: 6, Train: echoTrain(1, 6, 0), Codec: codec},
	})
	if err := agg.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Run(UniformSelect(2))
	if err != nil {
		t.Fatal(err)
	}
	wait()
	for i, w := range initVec(n) {
		if res.Weights[i] != w+3 {
			t.Fatalf("weight %d = %v, want %v after 3 rounds of +1", i, res.Weights[i], w+3)
		}
	}
	want := int64(3 * 2 * codec.EncodedBytes(n))
	if res.UplinkBytes != want {
		t.Fatalf("uplink = %d, want %d (3 rounds x 2 workers x payload)", res.UplinkBytes, want)
	}
	for _, rs := range res.Rounds {
		if rs.UplinkBytes != int64(2*codec.EncodedBytes(n)) {
			t.Fatalf("round %d uplink = %d", rs.Round, rs.UplinkBytes)
		}
	}
}

func TestMixedDenseAndCompressedWorkers(t *testing.T) {
	// An old (dense) worker and a compressed worker share a round: the
	// negotiation is per-worker, so both updates aggregate and each is
	// billed at its own wire size.
	const n = 100
	codec := compress.NewTopK(0.1)
	agg, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
		Rounds: 1, ClientsPerRound: 2, InitialWeights: initVec(n), Seed: 12,
		RoundTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	wait := startWorkers(t, agg.Addr(), []WorkerConfig{
		{ClientID: 0, NumSamples: 1, Train: echoTrain(1, 1, 0)}, // dense: no codec
		{ClientID: 1, NumSamples: 1, Train: echoTrain(1, 1, 0), Codec: codec},
	})
	if err := agg.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Run(UniformSelect(2))
	if err != nil {
		t.Fatal(err)
	}
	wait()
	if res.Rounds[0].Used != 2 {
		t.Fatalf("used = %d, want both workers", res.Rounds[0].Used)
	}
	want := int64(compress.DenseBytes(n) + codec.EncodedBytes(n))
	if res.UplinkBytes != want {
		t.Fatalf("uplink = %d, want %d (one dense + one compressed)", res.UplinkBytes, want)
	}
	// The sparsified worker contributed only its top-k coordinates this
	// round, so the average moved somewhere in (0, 1] per coordinate.
	for i, w := range initVec(n) {
		d := res.Weights[i] - w
		if d < 0.5-1e-9 || d > 1+1e-9 {
			t.Fatalf("weight %d moved %v, want within [0.5, 1]", i, d)
		}
	}
}

func TestUnknownCodecRefusedAtRegistration(t *testing.T) {
	agg, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
		Rounds: 1, ClientsPerRound: 1, InitialWeights: initVec(4), Seed: 13,
		RoundTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	raw, err := net.Dial("tcp", agg.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(raw)
	defer c.close() //nolint:errcheck // test shutdown
	if err := c.send(&Envelope{Type: MsgRegister, Register: &Register{ClientID: 0, NumSamples: 1, Codec: 99}}); err != nil {
		t.Fatal(err)
	}
	// Give the handshake a chance to run; the worker must never register.
	if err := agg.WaitForWorkers(1, 500*time.Millisecond); err == nil {
		t.Fatal("worker with unknown codec registered")
	}
	// The connection is closed server-side.
	if _, err := c.recv(2 * time.Second); err == nil {
		t.Fatal("connection with unknown codec left open")
	}
}

func TestCompressedTieredAsyncLoopback(t *testing.T) {
	// The full tiered-asynchronous protocol with compression negotiated on
	// both sides: per-tier mini-rounds collect compressed deltas, commits
	// carry their wire byte counts to the committer, and the run finishes
	// with a sane model.
	const n = 200
	codec := compress.NewInt8(64)
	agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: 8, ClientsPerRound: 2,
		RoundTimeout: 10 * time.Second, InitialWeights: initVec(n), Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	var tierAssigns atomic.Int32
	cfgs := make([]WorkerConfig, 4)
	for i := range cfgs {
		cfgs[i] = WorkerConfig{
			ClientID: i, NumSamples: 5,
			Train: echoTrain(0.01, 5, time.Duration(1+i)*10*time.Millisecond),
			Codec: codec,
			OnTierAssign: func(tier, numTiers int) {
				if numTiers == 2 {
					tierAssigns.Add(1)
				}
			},
		}
	}
	wait := startWorkers(t, agg.Addr(), cfgs)
	if err := agg.WaitForWorkers(4, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Run([][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	wait()
	if len(res.Log) != 8 {
		t.Fatalf("commits = %d", len(res.Log))
	}
	if res.UplinkBytes <= 0 {
		t.Fatal("no uplink bytes tracked")
	}
	var fromLog int64
	for _, s := range res.Log {
		fromLog += s.UplinkBytes
		if s.Clients > 0 && s.UplinkBytes != int64(s.Clients*codec.EncodedBytes(n)) {
			t.Fatalf("commit bytes %d for %d clients, want %d each", s.UplinkBytes, s.Clients, codec.EncodedBytes(n))
		}
		// int8 payloads are ~8x below the dense wire size.
		if s.Clients > 0 && s.UplinkBytes >= int64(s.Clients*compress.DenseBytes(n))/4 {
			t.Fatalf("commit bytes %d not compressed (dense would be %d)", s.UplinkBytes, s.Clients*compress.DenseBytes(n))
		}
	}
	if fromLog != res.UplinkBytes {
		t.Fatalf("log bytes %d != total %d", fromLog, res.UplinkBytes)
	}
	// Every +0.01 echo delta quantizes within one int8 step of itself, so
	// after 8 staleness-weighted commits the model moved but stayed finite
	// and close to the dense trajectory's scale.
	for i, w := range initVec(n) {
		d := res.Weights[i] - w
		if math.IsNaN(d) || d < 0 || d > 0.1 {
			t.Fatalf("weight %d drifted by %v", i, d)
		}
	}
}
