package flnet

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
)

func TestTierSelectFuncBuildsFromProfiledLatencies(t *testing.T) {
	lat := map[int]float64{}
	for i := 0; i < 20; i++ {
		lat[i] = float64(1 + i) // IDs 0..4 fastest
	}
	policy := core.StaticPolicy{Name: "fast", Probs: []float64{1, 0, 0, 0}}
	fn, tiers, err := TierSelectFunc(lat, 4, policy, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiers) != 4 {
		t.Fatalf("tiers = %d", len(tiers))
	}
	rng := rand.New(rand.NewSource(1))
	for r := 0; r < 50; r++ {
		for _, id := range fn(r, nil, rng) {
			if id > 4 {
				t.Fatalf("fast policy selected worker %d outside the fastest tier", id)
			}
		}
	}
}

func TestTierSelectFuncValidation(t *testing.T) {
	lat := map[int]float64{0: 1, 1: 2}
	if _, _, err := TierSelectFunc(lat, 2, core.StaticPolicy{Name: "bad", Probs: []float64{0.9, 0.9}}, 1); err == nil {
		t.Fatal("invalid policy accepted")
	}
	if _, _, err := TierSelectFunc(lat, 2, core.PolicyUniform, 1); err == nil {
		t.Fatal("5-probability policy over 2 tiers accepted")
	}
}

func TestTiFLOverTCPEndToEnd(t *testing.T) {
	// Full pipeline: register workers with different speeds, profile over
	// the network, tier, then run rounds with a fast-leaning policy. Slow
	// workers must never be selected, so rounds complete quickly.
	agg, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
		Rounds: 4, ClientsPerRound: 2, InitialWeights: []float64{0}, Seed: 11,
		RoundTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	delays := []time.Duration{0, 0, 0, 250 * time.Millisecond, 250 * time.Millisecond, 250 * time.Millisecond}
	for id, d := range delays {
		go RunWorker(agg.Addr(), WorkerConfig{ //nolint:errcheck
			ClientID: id, NumSamples: 1, Train: echoTrain(1, 1, d),
		})
	}
	if err := agg.WaitForWorkers(len(delays), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	lat, _, err := agg.ProfileWorkers(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	policy := core.StaticPolicy{Name: "fast", Probs: []float64{1, 0}}
	fn, tiers, err := TierSelectFunc(lat, 2, policy, 2)
	if err != nil {
		t.Fatal(err)
	}
	fastTier := map[int]bool{}
	for _, id := range tiers[0].Members {
		fastTier[id] = true
	}
	for id := 0; id < 3; id++ {
		if !fastTier[id] {
			t.Fatalf("fast worker %d not in tier 1 (tiers: %+v)", id, tiers)
		}
	}
	start := time.Now()
	res, err := agg.Run(fn)
	if err != nil {
		t.Fatal(err)
	}
	// 4 rounds over only fast workers: well under the slow workers' delay
	// budget (4 rounds × 250ms would be 1s+).
	if time.Since(start) > 900*time.Millisecond {
		t.Fatalf("tiered rounds took %v; slow workers likely selected", time.Since(start))
	}
	if res.Weights[0] != 4 {
		t.Fatalf("weights = %v, want 4 after 4 rounds of +1", res.Weights)
	}
}
