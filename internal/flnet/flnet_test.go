package flnet

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/flcore"
)

// echoTrain returns a TrainFunc that adds delta to every weight; sample
// count fixed at n. Optional sleep simulates a straggler.
func echoTrain(delta float64, n int, sleep time.Duration) TrainFunc {
	return func(round int, weights []float64) ([]float64, int, error) {
		if sleep > 0 {
			time.Sleep(sleep)
		}
		out := make([]float64, len(weights))
		for i, w := range weights {
			out[i] = w + delta
		}
		return out, n, nil
	}
}

// startWorkers launches workers in goroutines and returns a wait function.
func startWorkers(t *testing.T, addr string, cfgs []WorkerConfig) func() {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(cfgs))
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg WorkerConfig) {
			defer wg.Done()
			errs[i] = RunWorker(addr, cfg)
		}(i, cfg)
	}
	return func() {
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("worker %d: %v", cfgs[i].ClientID, err)
			}
		}
	}
}

func TestSingleRoundFedAvgOverTCP(t *testing.T) {
	init := []float64{1, 2, 3}
	agg, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
		Rounds: 1, ClientsPerRound: 2, InitialWeights: init, Seed: 1,
		RoundTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	wait := startWorkers(t, agg.Addr(), []WorkerConfig{
		{ClientID: 0, NumSamples: 1, Train: echoTrain(+1, 1, 0)},
		{ClientID: 1, NumSamples: 3, Train: echoTrain(-1, 3, 0)},
	})
	if err := agg.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Run(UniformSelect(2))
	if err != nil {
		t.Fatal(err)
	}
	wait()
	// FedAvg: (1*(w+1) + 3*(w-1))/4 = w - 0.5
	for i, w := range init {
		want := w - 0.5
		if math.Abs(res.Weights[i]-want) > 1e-12 {
			t.Fatalf("weights = %v, want %v at %d", res.Weights, want, i)
		}
	}
	if res.Rounds[0].Used != 2 || res.Rounds[0].Discarded != 0 {
		t.Fatalf("stats = %+v", res.Rounds[0])
	}
}

func TestMultiRoundConvergence(t *testing.T) {
	// Each round every worker returns weights+1; after 5 rounds of full
	// participation the global weights advanced by 5.
	agg, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
		Rounds: 5, ClientsPerRound: 3, InitialWeights: []float64{0}, Seed: 2,
		RoundTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	var cfgs []WorkerConfig
	for i := 0; i < 3; i++ {
		cfgs = append(cfgs, WorkerConfig{ClientID: i, NumSamples: 10, Train: echoTrain(1, 10, 0)})
	}
	wait := startWorkers(t, agg.Addr(), cfgs)
	if err := agg.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Run(UniformSelect(3))
	if err != nil {
		t.Fatal(err)
	}
	wait()
	if math.Abs(res.Weights[0]-5) > 1e-12 {
		t.Fatalf("after 5 rounds weights = %v, want 5", res.Weights[0])
	}
	if len(res.Rounds) != 5 {
		t.Fatalf("round stats = %d", len(res.Rounds))
	}
}

func TestProfileWorkersMeasuresLatency(t *testing.T) {
	agg, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
		Rounds: 1, ClientsPerRound: 1, InitialWeights: []float64{0}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	slowDelay := 120 * time.Millisecond
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 0, NumSamples: 1, Train: echoTrain(0, 1, 0)})         //nolint:errcheck
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 1, NumSamples: 1, Train: echoTrain(0, 1, slowDelay)}) //nolint:errcheck
	if err := agg.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	lat, dropouts, err := agg.ProfileWorkers(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(dropouts) != 0 {
		t.Fatalf("dropouts = %v", dropouts)
	}
	if lat[1] < lat[0] || lat[1] < 0.1 {
		t.Fatalf("profiled latencies fast=%v slow=%v", lat[0], lat[1])
	}
	agg.FinishWorkers(0)
}

func TestStragglerDiscardedUnderOverselection(t *testing.T) {
	// 3 workers, target 2, overselect 0.5 → select 3; the slow worker's
	// update must be discarded and the round must finish fast.
	agg, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
		Rounds: 1, ClientsPerRound: 2, Overselect: 0.5,
		InitialWeights: []float64{0}, Seed: 4, RoundTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 0, NumSamples: 1, Train: echoTrain(1, 1, 0)})             //nolint:errcheck
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 1, NumSamples: 1, Train: echoTrain(1, 1, 0)})             //nolint:errcheck
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 2, NumSamples: 1, Train: echoTrain(1, 1, 2*time.Second)}) //nolint:errcheck
	if err := agg.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := agg.Run(UniformSelect(2))
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 1500*time.Millisecond {
		t.Fatal("round waited for the straggler")
	}
	if res.Rounds[0].Selected != 3 || res.Rounds[0].Used != 2 || res.Rounds[0].Discarded != 1 {
		t.Fatalf("stats = %+v", res.Rounds[0])
	}
}

func TestRoundTimeoutDropsDeadWorker(t *testing.T) {
	agg, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
		Rounds: 1, ClientsPerRound: 2, InitialWeights: []float64{0}, Seed: 5,
		RoundTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 0, NumSamples: 1, Train: echoTrain(1, 1, 0)})             //nolint:errcheck
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 1, NumSamples: 1, Train: echoTrain(1, 1, 5*time.Second)}) //nolint:errcheck
	if err := agg.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Run(func(r int, ids []int, rng *rand.Rand) []int { return ids })
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds[0].Used != 1 {
		t.Fatalf("used = %d, want 1 (timeout drop)", res.Rounds[0].Used)
	}
	if res.Weights[0] != 1 {
		t.Fatalf("weights = %v (should aggregate only the live worker)", res.Weights)
	}
}

func TestHierarchyMatchesFlat(t *testing.T) {
	// Two children with two leaf workers each; master FedAvg over child
	// partials must equal flat FedAvg over all four leaves.
	leafDeltas := []float64{1, 2, 3, 4}
	leafSamples := []int{1, 2, 3, 4}
	init := []float64{10}

	// Expected flat FedAvg: sum(n_i*(w+d_i))/sum(n_i).
	num, den := 0.0, 0.0
	for i, d := range leafDeltas {
		num += float64(leafSamples[i]) * (init[0] + d)
		den += float64(leafSamples[i])
	}
	wantFlat := num / den

	master, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
		Rounds: 1, ClientsPerRound: 2, InitialWeights: init, Seed: 6,
		RoundTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	// Children: each owns two leaves.
	for child := 0; child < 2; child++ {
		childAgg, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
			Rounds: 1, ClientsPerRound: 2, InitialWeights: init, Seed: int64(7 + child),
			RoundTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer childAgg.Close()
		for leaf := 0; leaf < 2; leaf++ {
			idx := child*2 + leaf
			go RunWorker(childAgg.Addr(), WorkerConfig{ //nolint:errcheck
				ClientID: idx, NumSamples: leafSamples[idx],
				Train: echoTrain(leafDeltas[idx], leafSamples[idx], 0),
			})
		}
		if err := childAgg.WaitForWorkers(2, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, s := range leafSamples[child*2 : child*2+2] {
			total += s
		}
		go func(child int, ca *Aggregator, total int) {
			RunWorker(master.Addr(), WorkerConfig{ //nolint:errcheck
				ClientID: 100 + child, NumSamples: total, Train: ca.ChildTrainFunc(),
			})
			ca.FinishWorkers(1)
		}(child, childAgg, total)
	}
	if err := master.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := master.Run(UniformSelect(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Weights[0]-wantFlat) > 1e-12 {
		t.Fatalf("hierarchical = %v, flat = %v", res.Weights[0], wantFlat)
	}
}

func TestDistributedMatchesInProcessTraining(t *testing.T) {
	// The same deterministic arithmetic run through flcore.FedAvg directly
	// and through the TCP stack must agree bit-for-bit.
	init := []float64{0.5, -0.5}
	ups := []flcore.Update{
		{Weights: []float64{1.5, 0.5}, NumSamples: 2},
		{Weights: []float64{2.5, 1.5}, NumSamples: 6},
	}
	want := flcore.FedAvg(ups)

	agg, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
		Rounds: 1, ClientsPerRound: 2, InitialWeights: init, Seed: 8,
		RoundTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	wait := startWorkers(t, agg.Addr(), []WorkerConfig{
		{ClientID: 0, NumSamples: 2, Train: echoTrain(1, 2, 0)},
		{ClientID: 1, NumSamples: 6, Train: echoTrain(2, 6, 0)},
	})
	if err := agg.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Run(UniformSelect(2))
	if err != nil {
		t.Fatal(err)
	}
	wait()
	for i := range want {
		if res.Weights[i] != want[i] {
			t.Fatalf("TCP aggregation %v != in-process %v", res.Weights, want)
		}
	}
}

func TestAggregatorConfigValidation(t *testing.T) {
	bad := []AggregatorConfig{
		{Rounds: 0, ClientsPerRound: 1, InitialWeights: []float64{1}},
		{Rounds: 1, ClientsPerRound: 0, InitialWeights: []float64{1}},
		{Rounds: 1, ClientsPerRound: 1, Overselect: -1, InitialWeights: []float64{1}},
		{Rounds: 1, ClientsPerRound: 1},
	}
	for i, cfg := range bad {
		if _, err := NewAggregator("127.0.0.1:0", cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestWorkerRequiresTrainFunc(t *testing.T) {
	if err := RunWorker("127.0.0.1:1", WorkerConfig{ClientID: 0}); err == nil {
		t.Fatal("nil TrainFunc accepted")
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	agg, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
		Rounds: 1, ClientsPerRound: 1, InitialWeights: []float64{0}, Seed: 9,
		RoundTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 7, NumSamples: 1, Train: echoTrain(1, 1, 0)}) //nolint:errcheck
	if err := agg.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Second worker with the same ID: its connection is dropped, the
	// registry still holds exactly one.
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 7, NumSamples: 1, Train: echoTrain(1, 1, 0)}) //nolint:errcheck
	time.Sleep(200 * time.Millisecond)
	if got := len(agg.ids()); got != 1 {
		t.Fatalf("registry holds %d workers, want 1", got)
	}
	res, err := agg.Run(UniformSelect(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights[0] != 1 {
		t.Fatalf("weights = %v", res.Weights)
	}
}
