package flnet

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flcore"
	"repro/internal/tiering"
)

// TestTieredAsyncNetChaosKillResume is the crash-safety acceptance test:
// a tiered-async job snapshotting every few commits is killed mid-run
// (Close from inside the checkpoint hook, exactly the torn-process
// window), then a fresh aggregator loads the latest durable snapshot,
// the workers re-register, and Resume + Run(nil) continues the SAME job
// to the same absolute commit target. The resumed model must land in
// the same accuracy band as an uninterrupted run.
func TestTieredAsyncNetChaosKillResume(t *testing.T) {
	const target = 48
	clients, tiers, test, cfg := netFixture(t, 60)
	init := cfg.Model(rand.New(rand.NewSource(cfg.Seed))).WeightsVector()
	eng := flcore.NewEngine(flcore.Config{
		Rounds: 1, ClientsPerRound: 1, LocalEpochs: cfg.LocalEpochs,
		BatchSize: cfg.BatchSize, Seed: cfg.Seed,
		Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: cfg.Latency,
	}, clients, nil)
	pacing := []time.Duration{5 * time.Millisecond, 9 * time.Millisecond, 25 * time.Millisecond}
	launch := func(addr string) {
		for ti, members := range tiers {
			for _, ci := range members {
				go RunWorker(addr, WorkerConfig{ //nolint:errcheck
					ClientID: ci, NumSamples: clients[ci].NumSamples(),
					Train: func(round int, weights []float64) ([]float64, int, error) {
						time.Sleep(pacing[ti])
						u := eng.TrainClient(round, ci, weights)
						return u.Weights, u.NumSamples, nil
					},
				})
			}
		}
	}
	accuracy := func(weights []float64) float64 {
		model := cfg.Model(rand.New(rand.NewSource(cfg.Seed)))
		model.SetWeightsVector(weights)
		acc, _ := model.Evaluate(test.InputTensor(), test.Y, cfg.EvalBatch)
		return acc
	}
	base := TieredAsyncConfig{
		GlobalCommits: target, ClientsPerRound: cfg.ClientsPerRound,
		RoundTimeout: 20 * time.Second, InitialWeights: init, Seed: cfg.Seed,
	}

	// Uninterrupted reference run.
	ref, err := NewTieredAsyncAggregator("127.0.0.1:0", base)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	launch(ref.Addr())
	if err := ref.WaitForWorkers(len(clients), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(tiers)
	if err != nil {
		t.Fatal(err)
	}
	refAcc := accuracy(refRes.Weights)

	// Chaos run: checkpoint every 5 commits, kill the aggregator from
	// inside the hook once past the halfway snapshot.
	ckptPath := filepath.Join(t.TempDir(), "run.ckpt")
	ckptCfg := base
	ckptCfg.CheckpointEvery = 5
	ckptCfg.CheckpointPath = ckptPath
	crashCfg := ckptCfg
	var crashAgg *TieredAsyncAggregator
	var crashOnce sync.Once
	crashCfg.OnCheckpoint = func(c *flcore.TieredCheckpoint) {
		if c.Version < target/2 {
			return
		}
		crashOnce.Do(func() { go crashAgg.Close() })
	}
	crashAgg, err = NewTieredAsyncAggregator("127.0.0.1:0", crashCfg)
	if err != nil {
		t.Fatal(err)
	}
	launch(crashAgg.Addr())
	if err := crashAgg.WaitForWorkers(len(clients), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := crashAgg.Run(tiers); err == nil {
		t.Fatal("killed run reported success")
	}
	crashAgg.Close()

	// Restart: load the newest durable snapshot and continue toward the
	// same absolute target over re-registered workers.
	ckpt, err := flcore.LoadTieredCheckpointFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.Version < target/2 || ckpt.Version >= target {
		t.Fatalf("snapshot at version %d, want in [%d, %d)", ckpt.Version, target/2, target)
	}
	res, err := NewTieredAsyncAggregator("127.0.0.1:0", ckptCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	launch(res.Addr())
	if err := res.WaitForWorkers(len(clients), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := res.Resume(ckpt); err != nil {
		t.Fatal(err)
	}
	rres, err := res.Run(nil) // nil: continue on the checkpointed tiers
	if err != nil {
		t.Fatal(err)
	}

	total := 0
	for _, c := range rres.Commits {
		total += c
	}
	if total != target {
		t.Fatalf("cumulative commits %v sum to %d, want %d", rres.Commits, total, target)
	}
	if want := target - ckpt.Version; len(rres.Log) != want {
		t.Fatalf("resumed run applied %d commits, want %d", len(rres.Log), want)
	}
	if rres.Log[0].Version != ckpt.Version+1 {
		t.Fatalf("resumed commit log starts at version %d, want %d", rres.Log[0].Version, ckpt.Version+1)
	}
	if rres.UplinkBytes <= ckpt.UplinkBytes {
		t.Fatalf("cumulative uplink %d did not grow past checkpointed %d", rres.UplinkBytes, ckpt.UplinkBytes)
	}
	resAcc := accuracy(rres.Weights)
	t.Logf("crash at version %d; accuracy uninterrupted=%.4f resumed=%.4f", ckpt.Version, refAcc, resAcc)
	if resAcc < 0.4 {
		t.Fatalf("resumed final accuracy %.4f barely above chance", resAcc)
	}
	if diff := math.Abs(resAcc - refAcc); diff > 0.2 {
		t.Fatalf("resumed accuracy %.4f diverges from uninterrupted %.4f by %.4f", resAcc, refAcc, diff)
	}
}

// TestTieredAsyncNetResumeRosterChanged covers the degraded-resume path:
// when a checkpointed worker does not come back, Resume refuses with
// ErrRosterChanged and ResumeModel restores just the model and counters,
// letting the caller run fresh tiers over the surviving roster toward
// the same absolute commit target.
func TestTieredAsyncNetResumeRosterChanged(t *testing.T) {
	const target = 12
	base := TieredAsyncConfig{
		GlobalCommits: target, ClientsPerRound: 2,
		RoundTimeout: 2 * time.Second, InitialWeights: []float64{0, 0}, Seed: 11,
	}
	first := base
	var raw []byte
	var once sync.Once
	first.CheckpointEvery = 3
	first.OnCheckpoint = func(c *flcore.TieredCheckpoint) {
		if c.Version != target/2 {
			return
		}
		once.Do(func() {
			var err error
			if raw, err = c.Encode(); err != nil {
				t.Errorf("encoding checkpoint: %v", err)
			}
		})
	}
	agg, err := NewTieredAsyncAggregator("127.0.0.1:0", first)
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	for id := 0; id < 4; id++ {
		go RunWorker(agg.Addr(), WorkerConfig{ClientID: id, NumSamples: 1, Train: echoTrain(1, 1, 0)}) //nolint:errcheck
	}
	if err := agg.WaitForWorkers(4, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Run([][]int{{0, 1}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	if raw == nil {
		t.Fatalf("no checkpoint observed at version %d", target/2)
	}
	ckpt, err := flcore.DecodeTieredCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}

	// Worker 3 never comes back; only 0, 1, 2 re-register.
	agg2, err := NewTieredAsyncAggregator("127.0.0.1:0", base)
	if err != nil {
		t.Fatal(err)
	}
	defer agg2.Close()
	for id := 0; id < 3; id++ {
		go RunWorker(agg2.Addr(), WorkerConfig{ClientID: id, NumSamples: 1, Train: echoTrain(1, 1, 0)}) //nolint:errcheck
	}
	if err := agg2.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := agg2.Resume(ckpt); !errors.Is(err, ErrRosterChanged) {
		t.Fatalf("Resume with a shrunken roster: err = %v, want ErrRosterChanged", err)
	}
	if err := agg2.ResumeModel(ckpt); err != nil {
		t.Fatal(err)
	}
	res, err := agg2.Run([][]int{{0, 1}, {2}}) // fresh tiers over the new roster
	if err != nil {
		t.Fatal(err)
	}
	if want := target - ckpt.Version; len(res.Log) != want {
		t.Fatalf("degraded resume applied %d commits, want %d", len(res.Log), want)
	}
	if res.Log[0].Version != ckpt.Version+1 {
		t.Fatalf("first resumed commit at version %d, want %d", res.Log[0].Version, ckpt.Version+1)
	}
	if res.UplinkBytes <= ckpt.UplinkBytes {
		t.Fatalf("cumulative uplink %d did not grow past checkpointed %d", res.UplinkBytes, ckpt.UplinkBytes)
	}
}

// TestTieredAsyncNetResumeValidation pins the refusal reasons: a
// checkpoint that disagrees with the aggregator's job identity (seed,
// model shape, format, target), carries broken state, or requires a
// tiering Manager the aggregator does not have must be rejected with a
// descriptive error before any aggregator state is touched.
func TestTieredAsyncNetResumeValidation(t *testing.T) {
	good := func() *flcore.TieredCheckpoint {
		return &flcore.TieredCheckpoint{
			Format: flcore.TieredCheckpointFormat, Seed: 5, Version: 4,
			Weights: []float64{0.5}, Rounds: []int{2, 2}, Commits: []int{2, 2},
			Tiers: [][]int{{0}, {1}},
		}
	}
	agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: 10, ClientsPerRound: 1,
		RoundTimeout: 2 * time.Second, InitialWeights: []float64{0}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	for id := 0; id < 2; id++ {
		go RunWorker(agg.Addr(), WorkerConfig{ClientID: id, NumSamples: 1, Train: echoTrain(1, 1, 0)}) //nolint:errcheck
	}
	if err := agg.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	cases := map[string]func(c *flcore.TieredCheckpoint){
		"no tiers":             func(c *flcore.TieredCheckpoint) { c.Tiers = nil },
		"cursor mismatch":      func(c *flcore.TieredCheckpoint) { c.Rounds = []int{2} },
		"unknown format":       func(c *flcore.TieredCheckpoint) { c.Format = flcore.TieredCheckpointFormat + 1 },
		"seed mismatch":        func(c *flcore.TieredCheckpoint) { c.Seed = 6 },
		"weight length":        func(c *flcore.TieredCheckpoint) { c.Weights = []float64{1, 2} },
		"non-finite weight":    func(c *flcore.TieredCheckpoint) { c.Weights = []float64{math.NaN()} },
		"negative version":     func(c *flcore.TieredCheckpoint) { c.Version = -1 },
		"nothing left to run":  func(c *flcore.TieredCheckpoint) { c.Version = 10 },
		"orphan manager state": func(c *flcore.TieredCheckpoint) { c.ManagerState = []byte{1, 2, 3} },
	}
	for name, mutate := range cases {
		c := good()
		mutate(c)
		if err := agg.Resume(c); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if err := agg.Resume(&flcore.TieredCheckpoint{
		Format: flcore.TieredCheckpointFormat, Seed: 5, Version: 4,
		Weights: []float64{0.5}, Rounds: []int{4}, Commits: []int{4},
		Tiers: [][]int{{0, 7}},
	}); !errors.Is(err, ErrRosterChanged) {
		t.Errorf("unregistered checkpointed worker: err = %v, want ErrRosterChanged", err)
	}
	if err := agg.Resume(good()); err != nil {
		t.Errorf("valid checkpoint rejected after failed attempts: %v", err)
	}

	// The inverse manager mismatch: a managed aggregator must refuse a
	// checkpoint that carries no manager state.
	mgr, err := tiering.NewManager(tiering.Config{NumTiers: 2, ClientsPerRound: 1, Seed: 5},
		map[int]float64{0: 1, 1: 2})
	if err != nil {
		t.Fatal(err)
	}
	managed, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: 10, ClientsPerRound: 1,
		RoundTimeout: 2 * time.Second, InitialWeights: []float64{0}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer managed.Close()
	managed.SetManager(mgr)
	for id := 0; id < 2; id++ {
		go RunWorker(managed.Addr(), WorkerConfig{ClientID: id, NumSamples: 1, Train: echoTrain(1, 1, 0)}) //nolint:errcheck
	}
	if err := managed.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := managed.Resume(good()); err == nil {
		t.Error("managed aggregator accepted a checkpoint without manager state")
	}

	// Lockstep runs are single-shot parity harnesses: resume is refused.
	lockstep, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: 10, ClientsPerRound: 1,
		RoundTimeout: 2 * time.Second, InitialWeights: []float64{0}, Seed: 5,
		Lockstep: make([]int, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lockstep.Close()
	if err := lockstep.ResumeModel(good()); err == nil {
		t.Error("lockstep aggregator accepted a resume")
	}
}

// TestTieredAsyncNetMetricsEndpoint polls the opt-in observability
// endpoint mid-run (from the checkpoint hook, so the version is pinned)
// and checks the JSON snapshot reflects the run's live state: commit
// progress, per-tier counters, traffic totals, and checkpoint freshness.
func TestTieredAsyncNetMetricsEndpoint(t *testing.T) {
	const target = 8
	var agg *TieredAsyncAggregator
	var once sync.Once
	var snap MetricsSnapshot
	var healthy atomic.Bool
	cfg := TieredAsyncConfig{
		GlobalCommits: target, ClientsPerRound: 1,
		RoundTimeout: 2 * time.Second, InitialWeights: []float64{0}, Seed: 12,
		MetricsAddr:     "127.0.0.1:0",
		CheckpointEvery: 2,
		OnCheckpoint: func(c *flcore.TieredCheckpoint) {
			if c.Version != target/2 {
				return
			}
			once.Do(func() {
				resp, err := http.Get("http://" + agg.MetricsAddr() + "/metrics")
				if err != nil {
					t.Errorf("GET /metrics: %v", err)
					return
				}
				defer resp.Body.Close()
				if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
					t.Errorf("decoding metrics: %v", err)
				}
				if h, err := http.Get("http://" + agg.MetricsAddr() + "/healthz"); err == nil {
					healthy.Store(h.StatusCode == http.StatusOK)
					h.Body.Close()
				}
			})
		},
	}
	agg, err := NewTieredAsyncAggregator("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if agg.MetricsAddr() == "" {
		t.Fatal("metrics endpoint not listening")
	}
	for id := 0; id < 2; id++ {
		go RunWorker(agg.Addr(), WorkerConfig{ClientID: id, NumSamples: 1, Train: echoTrain(1, 1, 5*time.Millisecond)}) //nolint:errcheck
	}
	if err := agg.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Run([][]int{{0}, {1}}); err != nil {
		t.Fatal(err)
	}

	if !snap.Running {
		t.Error("mid-run snapshot not marked running")
	}
	if snap.Version != target/2 || snap.TargetCommits != target {
		t.Errorf("snapshot at %d/%d, want %d/%d", snap.Version, snap.TargetCommits, target/2, target)
	}
	if len(snap.Tiers) != 2 {
		t.Fatalf("snapshot has %d tiers, want 2", len(snap.Tiers))
	}
	commits, rate := 0, 0.0
	for _, tm := range snap.Tiers {
		commits += tm.Commits
		rate += tm.RoundRatePerSec
		if tm.Members != 1 {
			t.Errorf("tier %d reports %d members, want 1", tm.Tier, tm.Members)
		}
	}
	if commits != target/2 {
		t.Errorf("per-tier commits sum to %d, want %d", commits, target/2)
	}
	if rate <= 0 {
		t.Error("round rate never moved")
	}
	if snap.UplinkBytes <= 0 || snap.DownlinkBytes <= 0 {
		t.Errorf("traffic counters uplink=%d downlink=%d", snap.UplinkBytes, snap.DownlinkBytes)
	}
	if snap.LiveWorkers != 2 {
		t.Errorf("live workers = %d, want 2", snap.LiveWorkers)
	}
	if snap.LastCheckpointVersion != target/2 || snap.LastCheckpointAgeSeconds < 0 {
		t.Errorf("checkpoint freshness: version %d age %.3f", snap.LastCheckpointVersion, snap.LastCheckpointAgeSeconds)
	}
	if !healthy.Load() {
		t.Error("healthz did not answer 200 mid-run")
	}
	final := agg.Metrics()
	if final.Running || final.Version != target {
		t.Errorf("post-run metrics running=%v version=%d, want stopped at %d", final.Running, final.Version, target)
	}
	addr := agg.MetricsAddr()
	agg.Close()
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("metrics endpoint still serving after Close")
	}
}

// TestTieredAsyncNetCodecRenegotiationOnReassign closes the compression
// lifecycle over live re-tiering: a worker that migrates to the slow
// tier under a per-tier compression policy receives a renegotiated codec
// with its MsgTierReassign, switches its uplink encoding, and the run
// still reaches the full commit target — the aggregator accepts the
// worker's post-switch compressed updates.
func TestTieredAsyncNetCodecRenegotiationOnReassign(t *testing.T) {
	lat := map[int]float64{0: 1, 1: 1.1, 2: 10, 3: 11}
	mgr, err := tiering.NewManager(tiering.Config{
		NumTiers: 2, RetierEvery: 3, ClientsPerRound: 2, Seed: 9,
	}, lat)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: 20, ClientsPerRound: 2,
		RoundTimeout: 2 * time.Second, InitialWeights: []float64{0, 0}, Seed: 9,
		Manager: mgr,
		ReassignCodec: func(tier, numTiers int) string {
			if tier == 0 {
				return "none"
			}
			return "topk@0.5"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	// Worker 1 reports 40 s rounds, so the rebuild at version 3 migrates
	// it into the slow tier; the reassignment carries the slow tier's
	// codec. It keeps training afterwards, so post-switch updates arrive
	// compressed.
	reported := []float64{1, 40, 10, 11}
	var mu sync.Mutex
	var specs []string
	var switched atomic.Bool
	var compressedRounds atomic.Int32
	for id := 0; id < 4; id++ {
		id := id
		cfg := WorkerConfig{
			ClientID: id, NumSamples: 1,
			Train:         echoTrain(1, 1, 0),
			ReportSeconds: func(round int) float64 { return reported[id] },
		}
		if id == 1 {
			cfg.OnCodecRenegotiate = func(spec string) {
				mu.Lock()
				specs = append(specs, spec)
				mu.Unlock()
				switched.Store(true)
			}
			inner := cfg.Train
			cfg.Train = func(round int, weights []float64) ([]float64, int, error) {
				if switched.Load() {
					compressedRounds.Add(1)
				}
				return inner(round, weights)
			}
		}
		go RunWorker(agg.Addr(), cfg) //nolint:errcheck
	}
	if err := agg.WaitForWorkers(4, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Run(nil)
	if err != nil {
		t.Fatal(err)
	}

	total := 0
	for _, c := range res.Commits {
		total += c
	}
	if total != 20 {
		t.Fatalf("commits %v sum to %d, want 20", res.Commits, total)
	}
	if res.Retiers < 1 {
		t.Fatalf("slow-reporting worker never re-tiered: %+v", res)
	}
	if tier, ok := mgr.TierOf(1); !ok || tier != 1 {
		t.Fatalf("worker 1 in tier %d after rebuild, want 1", tier)
	}
	mu.Lock()
	got := append([]string(nil), specs...)
	mu.Unlock()
	if len(got) == 0 {
		t.Fatal("migrated worker never saw a codec renegotiation")
	}
	if got[0] != "topk@0.5" {
		t.Fatalf("renegotiated codec %q, want topk@0.5", got[0])
	}
	if compressedRounds.Load() == 0 {
		t.Error("worker 1 never trained after the codec switch; the accept-window path is unexercised")
	}
}
