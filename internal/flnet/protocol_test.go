package flnet

import (
	"net"
	"testing"
	"time"
)

// pipePair returns two connected protocol endpoints over an in-memory pipe.
func pipePair() (*conn, *conn) {
	a, b := net.Pipe()
	return newConn(a), newConn(b)
}

func TestProtocolRoundTripAllTypes(t *testing.T) {
	a, b := pipePair()
	defer a.close() //nolint:errcheck
	defer b.close() //nolint:errcheck

	msgs := []*Envelope{
		{Type: MsgRegister, Register: &Register{ClientID: 7, NumSamples: 99}},
		{Type: MsgProfile, Profile: &Profile{Weights: []float64{1, 2}}},
		{Type: MsgProfileReply, ProfileReply: &ProfileReply{ClientID: 7, Seconds: 0.25}},
		{Type: MsgTrain, Train: &Train{Round: 3, Weights: []float64{-1, 0, 1}}},
		{Type: MsgUpdate, Update: &Update{Round: 3, ClientID: 7, Weights: []float64{5}, NumSamples: 4}},
		{Type: MsgPartial, Partial: &Partial{Round: 1, WeightedSum: []float64{10}, TotalWeight: 2, Clients: 2}},
		{Type: MsgDone, Done: &Done{Rounds: 8}},
		{Type: MsgTierAssign, TierAssign: &TierAssign{Tier: 1, NumTiers: 3}},
		{Type: MsgTierCommit, TierCommit: &TierCommit{Tier: 1, TierRound: 4, PulledVersion: 9, Weights: []float64{0.5}, Clients: 2, Seconds: 0.125,
			Observed: []ClientSeconds{{Client: 3, Seconds: 0.5}}}},
		{Type: MsgTierReassign, TierReassign: &TierReassign{From: 0, To: 2, NumTiers: 3}},
	}
	go func() {
		for _, m := range msgs {
			if err := a.send(m); err != nil {
				return
			}
		}
	}()
	for _, want := range msgs {
		got, err := b.recv(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type {
			t.Fatalf("type = %d, want %d", got.Type, want.Type)
		}
	}
}

func TestProtocolFieldFidelity(t *testing.T) {
	a, b := pipePair()
	defer a.close() //nolint:errcheck
	defer b.close() //nolint:errcheck
	weights := []float64{3.14159, -2.71828, 0, 1e-300}
	go a.send(&Envelope{Type: MsgTrain, Train: &Train{Round: 42, Weights: weights}}) //nolint:errcheck
	got, err := b.recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.Train.Round != 42 {
		t.Fatalf("round = %d", got.Train.Round)
	}
	for i, w := range weights {
		if got.Train.Weights[i] != w {
			t.Fatalf("weights = %v", got.Train.Weights)
		}
	}
}

func TestProtocolRecvTimeout(t *testing.T) {
	a, b := pipePair()
	defer a.close() //nolint:errcheck
	defer b.close() //nolint:errcheck
	start := time.Now()
	_, err := b.recv(100 * time.Millisecond)
	if err == nil {
		t.Fatal("recv with no sender must time out")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout not honored")
	}
}

func TestProtocolRecvAfterClose(t *testing.T) {
	a, b := pipePair()
	a.close() //nolint:errcheck
	if _, err := b.recv(200 * time.Millisecond); err == nil {
		t.Fatal("recv from closed peer must error")
	}
}
