package flnet

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/nn"
	"repro/internal/simres"
)

// netFixture builds the same 9-client, 3-tier heterogeneous federation the
// flcore tiered-async tests use, so the distributed run can be compared
// against the simulated engine on identical seed and membership.
func netFixture(t *testing.T, duration float64) ([]*flcore.Client, [][]int, *dataset.Dataset, flcore.TieredAsyncConfig) {
	t.Helper()
	nClients := 9
	train := dataset.Generate(dataset.CIFAR10Like, 600, 1)
	test := dataset.Generate(dataset.CIFAR10Like, 200, 2)
	parts := dataset.PartitionIID(train.Len(), nClients, rand.New(rand.NewSource(3)))
	cpus := simres.AssignGroups(nClients, []float64{4, 1, 0.25})
	clients := flcore.BuildClients(train, test, parts, cpus, 20, 4)
	per := nClients / 3
	tiers := make([][]int, 3)
	for i := 0; i < nClients; i++ {
		tiers[i/per] = append(tiers[i/per], i)
	}
	cfg := flcore.TieredAsyncConfig{
		Duration: duration, ClientsPerRound: 2,
		EvalInterval: duration, Seed: 7, BatchSize: 10, LocalEpochs: 1,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, train.Dim(), []int{8}, 10, 0)
		},
		Optimizer: func(round int) nn.Optimizer { return nn.NewRMSprop(0.01, 0.995) },
		Latency:   simres.DefaultModel,
		EvalBatch: 64,
	}
	return clients, tiers, test, cfg
}

// TestTieredAsyncNetTracksSimulation is the loopback acceptance test: the
// distributed tiered-async protocol, run for exactly as many global commits
// as the simulated engine produced under the same seed, scenario, and tier
// membership, must reach a final-model accuracy within tolerance of the
// simulation. Local training is identical on both paths (workers call
// Engine.TrainClient with the sim's deterministic keying); only the commit
// interleaving differs — real wall clock with per-tier pacing delays here,
// the simulated latency model there.
func TestTieredAsyncNetTracksSimulation(t *testing.T) {
	duration := 60.0
	if testing.Short() {
		duration = 20
	}
	clients, tiers, test, cfg := netFixture(t, duration)
	sim := flcore.RunTieredAsync(cfg, tiers, clients, test)
	if len(sim.TierRounds) == 0 {
		t.Fatal("simulation committed nothing")
	}

	init := cfg.Model(rand.New(rand.NewSource(cfg.Seed))).WeightsVector()
	agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: len(sim.TierRounds), ClientsPerRound: cfg.ClientsPerRound,
		RoundTimeout: 20 * time.Second, InitialWeights: init, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	// Workers run the exact local computation the simulation runs, via the
	// engine's exported per-client trainer; a small per-tier delay recreates
	// the latency spread (tier 0 fastest) in real time.
	eng := flcore.NewEngine(flcore.Config{
		Rounds: 1, ClientsPerRound: 1, LocalEpochs: cfg.LocalEpochs,
		BatchSize: cfg.BatchSize, Seed: cfg.Seed,
		Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: cfg.Latency,
	}, clients, nil)
	// Delays proportional to the simulation's per-tier round times (commit
	// rates ≈ 88:50:18 per 60 simulated seconds), so the real-time commit
	// mix tracks the simulated one.
	pacing := []time.Duration{5 * time.Millisecond, 9 * time.Millisecond, 25 * time.Millisecond}
	var assigned atomic.Int32
	for ti, members := range tiers {
		for _, ci := range members {
			go RunWorker(agg.Addr(), WorkerConfig{ //nolint:errcheck
				ClientID: ci, NumSamples: clients[ci].NumSamples(),
				OnTierAssign: func(tier, numTiers int) {
					if tier == ti && numTiers == len(tiers) {
						assigned.Add(1)
					}
				},
				Train: func(round int, weights []float64) ([]float64, int, error) {
					time.Sleep(pacing[ti])
					u := eng.TrainClient(round, ci, weights)
					return u.Weights, u.NumSamples, nil
				},
			})
		}
	}
	if err := agg.WaitForWorkers(len(clients), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Run(tiers)
	if err != nil {
		t.Fatal(err)
	}

	if got := int(assigned.Load()); got != len(clients) {
		t.Errorf("only %d of %d workers saw their tier assignment", got, len(clients))
	}
	total := 0
	for _, c := range res.Commits {
		total += c
	}
	if total != len(sim.TierRounds) || len(res.Log) != total {
		t.Fatalf("applied %d commits (log %d), want %d", total, len(res.Log), len(sim.TierRounds))
	}
	if res.Commits[0] <= res.Commits[2] {
		t.Errorf("fast tier commits %v not above slow tier", res.Commits)
	}
	for i, rec := range res.Log {
		if rec.Version != i+1 || rec.Staleness < 0 || rec.Weight <= 0 || rec.Weight > 1 {
			t.Fatalf("commit %d malformed: %+v", i, rec)
		}
	}

	model := cfg.Model(rand.New(rand.NewSource(cfg.Seed)))
	model.SetWeightsVector(res.Weights)
	netAcc, _ := model.Evaluate(test.InputTensor(), test.Y, cfg.EvalBatch)
	t.Logf("commits sim=%v net=%v; accuracy sim=%.4f net=%.4f", sim.Commits, res.Commits, sim.FinalAcc, netAcc)
	if netAcc < 0.4 {
		t.Fatalf("distributed final accuracy %.4f barely above chance", netAcc)
	}
	if diff := math.Abs(netAcc - sim.FinalAcc); diff > 0.2 {
		t.Fatalf("distributed accuracy %.4f diverges from simulated %.4f by %.4f", netAcc, sim.FinalAcc, diff)
	}
}

// TestTieredAsyncNetToleratesDisconnect drops one worker mid-round partway
// through the run: its tier must keep committing with the surviving member
// and the job must still reach the full commit target.
func TestTieredAsyncNetToleratesDisconnect(t *testing.T) {
	init := []float64{0, 0}
	agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: 18, ClientsPerRound: 2,
		RoundTimeout: 5 * time.Second, InitialWeights: init, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	// Tiers {0,1}, {2,3}, {4,5}; worker 3 dies on its tier's round 1.
	tiers := [][]int{{0, 1}, {2, 3}, {4, 5}}
	for id := 0; id < 6; id++ {
		train := echoTrain(1, 1, 0)
		if id == 3 {
			inner := train
			train = func(round int, weights []float64) ([]float64, int, error) {
				if round >= 1 {
					return nil, 0, fmt.Errorf("synthetic mid-round death")
				}
				return inner(round, weights)
			}
		}
		go RunWorker(agg.Addr(), WorkerConfig{ClientID: id, NumSamples: 1, Train: train}) //nolint:errcheck
	}
	if err := agg.WaitForWorkers(6, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Run(tiers)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range res.Commits {
		total += c
	}
	if total != 18 {
		t.Fatalf("commits %v sum to %d, want 18", res.Commits, total)
	}
	// Tier 1 must survive the death of worker 3: commits continue with one
	// live member once rounds ≥ 1 stop reaching it.
	soloCommits := 0
	for _, rec := range res.Log {
		if rec.Tier == 1 && rec.TierRound >= 1 && rec.Clients == 1 {
			soloCommits++
		}
	}
	if tier1 := res.Commits[1]; tier1 == 0 {
		t.Fatal("tier 1 never committed")
	}
	if soloCommits == 0 {
		t.Errorf("no single-survivor commits observed for tier 1: %+v", res.Log)
	}
}

// TestTieredAsyncNetAllWorkersGone exercises the failure path: when every
// tier loses all of its workers before the commit target, Run returns an
// error instead of hanging.
func TestTieredAsyncNetAllWorkersGone(t *testing.T) {
	agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: 1000, ClientsPerRound: 2,
		RoundTimeout: 2 * time.Second, InitialWeights: []float64{0}, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	for id := 0; id < 4; id++ {
		go RunWorker(agg.Addr(), WorkerConfig{ClientID: id, NumSamples: 1, Train: failTrain()}) //nolint:errcheck
	}
	if err := agg.WaitForWorkers(4, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := agg.Run([][]int{{0, 1}, {2, 3}})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run with no surviving workers reported success")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("run hung after losing every worker")
	}
}

// TestTieredAsyncProfileAndRun drives the full pipeline: network profiling,
// server-side tier construction from measured latencies, then the
// tiered-async protocol over the built tiers.
func TestTieredAsyncProfileAndRun(t *testing.T) {
	agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: 8, ClientsPerRound: 2,
		RoundTimeout: 5 * time.Second, InitialWeights: []float64{0}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	delays := []time.Duration{0, 0, 120 * time.Millisecond, 120 * time.Millisecond}
	for id, d := range delays {
		go RunWorker(agg.Addr(), WorkerConfig{ClientID: id, NumSamples: 1, Train: echoTrain(1, 1, d)}) //nolint:errcheck
	}
	if err := agg.WaitForWorkers(len(delays), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, tiers, dropouts, err := agg.ProfileAndRun(2, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(dropouts) != 0 {
		t.Fatalf("unexpected profiling dropouts %v", dropouts)
	}
	if len(tiers) != 2 {
		t.Fatalf("built %d tiers", len(tiers))
	}
	fast := map[int]bool{}
	for _, id := range tiers[0].Members {
		fast[id] = true
	}
	if !fast[0] || !fast[1] {
		t.Fatalf("fast workers not in tier 0: %+v", tiers)
	}
	total := 0
	for _, c := range res.Commits {
		total += c
	}
	if total != 8 {
		t.Fatalf("commits %v sum to %d, want 8", res.Commits, total)
	}
	// Real pacing: the undelayed tier must commit at least as often as the
	// 120 ms tier.
	if res.Commits[0] < res.Commits[1] {
		t.Errorf("fast tier commits %v below slow tier", res.Commits)
	}
}

// TestTieredAsyncSlowTierOutlastsRoundTimeout pins the retry contract: a
// worker slower than one RoundTimeout still commits (its round's updates
// stay valid across the extra collection windows) instead of being
// perpetually one round behind with every late update discarded as stale.
func TestTieredAsyncSlowTierOutlastsRoundTimeout(t *testing.T) {
	agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: 3, ClientsPerRound: 1,
		RoundTimeout: 150 * time.Millisecond, InitialWeights: []float64{0}, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	// 250 ms per round: past one timeout window, inside the second.
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 0, NumSamples: 1, Train: echoTrain(1, 1, 250*time.Millisecond)}) //nolint:errcheck
	if err := agg.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Run([][]int{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits[0] != 3 {
		t.Fatalf("slow tier committed %v, want 3", res.Commits)
	}
	if res.Weights[0] == 0 {
		t.Fatal("global model never moved")
	}
}

// TestTieredAsyncToleratesDeadMemberAtStart covers the window between
// profiling and Run: a tier member that registered but dropped before Run
// must not fail the job — its tier keeps training with the survivors.
func TestTieredAsyncToleratesDeadMemberAtStart(t *testing.T) {
	agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: 4, ClientsPerRound: 1,
		RoundTimeout: 2 * time.Second, InitialWeights: []float64{0}, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 0, NumSamples: 1, Train: echoTrain(1, 1, 0)}) //nolint:errcheck
	// Worker 1 registers by hand, then drops before Run.
	raw, err := net.Dial("tcp", agg.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(raw)
	if err := c.send(&Envelope{Type: MsgRegister, Register: &Register{ClientID: 1, NumSamples: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := agg.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	c.close() //nolint:errcheck
	deadline := time.Now().Add(2 * time.Second)
	for agg.liveWorker(1) != nil && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	res, err := agg.Run([][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits[0] != 4 {
		t.Fatalf("commits = %v, want 4 from the surviving worker", res.Commits)
	}
}

// TestTieredAsyncMalformedCommitErrors pins the loud-failure contract: a
// worker whose model architecture disagrees with the aggregator's (its
// updates carry the wrong weight length) must fail the run with an error,
// not hang forever silently discarding every commit.
func TestTieredAsyncMalformedCommitErrors(t *testing.T) {
	agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: 5, ClientsPerRound: 1,
		RoundTimeout: 2 * time.Second, InitialWeights: []float64{0}, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	go RunWorker(agg.Addr(), WorkerConfig{ //nolint:errcheck
		ClientID: 0, NumSamples: 1,
		Train: func(round int, weights []float64) ([]float64, int, error) {
			return []float64{1, 2, 3}, 1, nil // wrong model size
		},
	})
	if err := agg.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := agg.Run([][]int{{0}})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("mismatched-architecture commits reported success")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("run hung on malformed commits instead of erroring")
	}
}

func TestTieredAsyncConfigValidation(t *testing.T) {
	bad := []TieredAsyncConfig{
		{GlobalCommits: 0, ClientsPerRound: 1, InitialWeights: []float64{1}},
		{GlobalCommits: 1, ClientsPerRound: 0, InitialWeights: []float64{1}},
		{GlobalCommits: 1, ClientsPerRound: 1},
		{GlobalCommits: 1, ClientsPerRound: 1, InitialWeights: []float64{1}, Alpha: -0.5},
		{GlobalCommits: 1, ClientsPerRound: 1, InitialWeights: []float64{1}, Alpha: 1.5},
		{GlobalCommits: 1, ClientsPerRound: 1, InitialWeights: []float64{1}, StalenessExp: -1},
	}
	for i, cfg := range bad {
		if _, err := NewTieredAsyncAggregator("127.0.0.1:0", cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestTieredAsyncRunRejectsBadTiers(t *testing.T) {
	agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: 1, ClientsPerRound: 1,
		RoundTimeout: 2 * time.Second, InitialWeights: []float64{0}, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 0, NumSamples: 1, Train: echoTrain(1, 1, 0)}) //nolint:errcheck
	if err := agg.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	for name, tiers := range map[string][][]int{
		"no tiers":     {},
		"empty tier":   {{0}, {}},
		"duplicate":    {{0}, {0}},
		"unregistered": {{0, 99}},
	} {
		if _, err := agg.Run(tiers); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	agg.FinishWorkers(0)
}
