package flnet

import (
	"fmt"
	"testing"
	"time"
)

// Failure-path coverage for the aggregator's round collection: a worker
// whose connection drops mid-round, and a round deadline expiring while
// over-selected stragglers are still training.

// failTrain returns a TrainFunc that errors on training rounds, which makes
// RunWorker return and close its connection mid-round (profiling calls,
// round -1, still succeed so registration-time profiling is unaffected).
func failTrain() TrainFunc {
	return func(round int, weights []float64) ([]float64, int, error) {
		if round >= 0 {
			return nil, 0, fmt.Errorf("synthetic mid-round failure")
		}
		return weights, 1, nil
	}
}

func TestWorkerDisconnectMidRound(t *testing.T) {
	agg, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
		Rounds: 1, ClientsPerRound: 3, InitialWeights: []float64{0}, Seed: 20,
		RoundTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 0, NumSamples: 1, Train: echoTrain(1, 1, 0)}) //nolint:errcheck
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 1, NumSamples: 1, Train: echoTrain(1, 1, 0)}) //nolint:errcheck
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 2, NumSamples: 1, Train: failTrain()})        //nolint:errcheck
	if err := agg.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := agg.Run(UniformSelect(3))
	if err != nil {
		t.Fatal(err)
	}
	// The dead worker's closed connection must be detected immediately —
	// the round must not sit out the full 5 s timeout waiting for it.
	if time.Since(start) > 2*time.Second {
		t.Fatal("round waited for the disconnected worker")
	}
	if res.Rounds[0].Selected != 3 || res.Rounds[0].Used != 2 {
		t.Fatalf("stats = %+v, want 2 of 3 updates", res.Rounds[0])
	}
	// FedAvg over the two surviving echo(+1) workers.
	if res.Weights[0] != 1 {
		t.Fatalf("weights = %v, want 1", res.Weights)
	}
}

func TestCollectTimeoutWithOverselection(t *testing.T) {
	// Target 2, overselect 0.5 → 3 selected; two workers sleep far past
	// the round deadline, so the deadline (not straggler completion) ends
	// the round with a single usable update.
	timeout := 300 * time.Millisecond
	agg, err := NewAggregator("127.0.0.1:0", AggregatorConfig{
		Rounds: 1, ClientsPerRound: 2, Overselect: 0.5,
		InitialWeights: []float64{0}, Seed: 21, RoundTimeout: timeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 0, NumSamples: 1, Train: echoTrain(1, 1, 0)})             //nolint:errcheck
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 1, NumSamples: 1, Train: echoTrain(1, 1, 3*time.Second)}) //nolint:errcheck
	go RunWorker(agg.Addr(), WorkerConfig{ClientID: 2, NumSamples: 1, Train: echoTrain(1, 1, 3*time.Second)}) //nolint:errcheck
	if err := agg.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := agg.Run(UniformSelect(2))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < timeout || elapsed > 2*time.Second {
		t.Fatalf("round took %v, want roughly the %v deadline", elapsed, timeout)
	}
	if res.Rounds[0].Selected != 3 || res.Rounds[0].Used != 1 || res.Rounds[0].Discarded != 2 {
		t.Fatalf("stats = %+v, want 1 used / 2 discarded of 3", res.Rounds[0])
	}
	if res.Weights[0] != 1 {
		t.Fatalf("weights = %v, want the fast worker's update", res.Weights)
	}
}
