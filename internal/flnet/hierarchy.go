package flnet

import (
	"fmt"

	"repro/internal/flcore"
)

// Hierarchical aggregation (the paper's master/child design for scalability
// and fault tolerance, Section 3.1/4.1): a child aggregator owns a subset of
// workers and presents itself to the master as a single worker whose
// "update" is the FedAvg of its subtree weighted by its total sample count.
// Because FedAvg is a weighted mean, master-of-children equals a flat
// aggregation over all leaves — verified by TestHierarchyMatchesFlat.

// RunRound drives one synchronous round over the chosen registered workers:
// broadcast weights, collect up to target updates (stragglers beyond target
// or the round timeout are discarded), and return the updates.
func (a *Aggregator) RunRound(round int, chosen []int, weights []float64, target int) ([]flcore.Update, error) {
	live := make([]*registered, 0, len(chosen))
	bc := newBroadcast(weights)
	for _, id := range chosen {
		a.mu.Lock()
		w := a.workers[id]
		a.mu.Unlock()
		if w == nil {
			continue
		}
		if err := w.c.send(&Envelope{Type: MsgTrain, Train: bc.fill(&Train{Round: round}, w.proto)}); err != nil {
			continue
		}
		live = append(live, w)
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("flnet: round %d: no reachable workers", round)
	}
	updates := a.collect(live, target, round, weights)
	if len(updates) == 0 {
		return nil, fmt.Errorf("flnet: round %d: no updates before timeout", round)
	}
	return updates, nil
}

// FinishWorkers notifies every registered worker that training is over.
func (a *Aggregator) FinishWorkers(rounds int) {
	for _, id := range a.ids() {
		a.mu.Lock()
		w := a.workers[id]
		a.mu.Unlock()
		w.c.send(&Envelope{Type: MsgDone, Done: &Done{Rounds: rounds}}) //nolint:errcheck // best effort
	}
}

// ChildTrainFunc adapts a child aggregator into a TrainFunc: each master
// "training request" fans out to all of the child's workers and returns
// their FedAvg with the subtree's total sample count, so the master's
// FedAvg over children reproduces the flat global average.
func (a *Aggregator) ChildTrainFunc() TrainFunc {
	return func(round int, weights []float64) ([]float64, int, error) {
		ids := a.ids()
		if len(ids) == 0 {
			return nil, 0, fmt.Errorf("flnet: child has no workers")
		}
		ups, err := a.RunRound(round, ids, weights, len(ids))
		if err != nil {
			return nil, 0, err
		}
		total := 0
		for _, u := range ups {
			total += u.NumSamples
		}
		return flcore.FedAvg(ups), total, nil
	}
}
