package flnet

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compress"
	"repro/internal/flcore"
	"repro/internal/nn"
)

// SelectFunc chooses the client IDs participating in a round from the
// registered population. The aggregator passes a deterministic per-round
// rng.
type SelectFunc func(round int, ids []int, rng *rand.Rand) []int

// UniformSelect returns a vanilla-FL selector over the registered IDs.
func UniformSelect(clientsPerRound int) SelectFunc {
	return func(round int, ids []int, rng *rand.Rand) []int {
		if clientsPerRound >= len(ids) {
			return ids
		}
		perm := rng.Perm(len(ids))
		out := make([]int, clientsPerRound)
		for i := range out {
			out[i] = ids[perm[i]]
		}
		return out
	}
}

// AggregatorConfig configures a (master) aggregator run.
type AggregatorConfig struct {
	Rounds          int
	ClientsPerRound int
	// Overselect selects ceil((1+Overselect)·ClientsPerRound) clients and
	// keeps the first ClientsPerRound responses, discarding stragglers —
	// the Bonawitz et al. 130% mitigation the paper contrasts with (0.3
	// reproduces it; 0 disables over-selection).
	Overselect float64
	// RoundTimeout bounds how long the aggregator waits for updates each
	// round; 0 means wait indefinitely.
	RoundTimeout   time.Duration
	InitialWeights []float64
	Seed           int64
	// SendTimeout bounds every send to a worker with a write deadline, so
	// a peer that stops draining its socket cannot wedge a round's
	// broadcast; 0 = block forever (the historical behaviour).
	SendTimeout time.Duration
}

func (c AggregatorConfig) validate() error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("flnet: Rounds = %d", c.Rounds)
	case c.ClientsPerRound <= 0:
		return fmt.Errorf("flnet: ClientsPerRound = %d", c.ClientsPerRound)
	case c.Overselect < 0:
		return fmt.Errorf("flnet: Overselect = %v", c.Overselect)
	case len(c.InitialWeights) == 0:
		return fmt.Errorf("flnet: InitialWeights empty")
	}
	return nil
}

// RoundStats records one aggregator round.
type RoundStats struct {
	Round     int
	Selected  int
	Used      int // updates aggregated (≤ Selected under over-selection)
	Discarded int // straggler updates dropped
	Wall      time.Duration
	// UplinkBytes is the round's aggregated update traffic as encoded on
	// the wire: codec payload sizes for compressed workers, dense
	// nn.EncodeWeights sizes for the rest.
	UplinkBytes int64
}

// RunResult is a finished distributed training job.
type RunResult struct {
	Weights []float64
	Rounds  []RoundStats
	// UplinkBytes is the total aggregated update traffic over the job.
	UplinkBytes int64
}

// registered is one connected worker from the aggregator's point of view.
type registered struct {
	id      int
	samples int
	proto   byte   // announced protocol level (Proto* constants; 0 = legacy)
	role    byte   // Role* constants (RoleWorker for leaf workers)
	members []int  // leaf worker IDs behind a child aggregator (RoleChildAggregator only)
	addr    string // self-reported listen address (child aggregators; informational)
	c       *conn

	// codec is the worker's current update compression (compress.IDNone =
	// dense), negotiated at the handshake and — for
	// Proto ≥ ProtoCodecRenegotiate workers — renegotiated on tier
	// migrations. prevCodec stays accepted alongside it: a training round
	// dispatched under the old codec can deliver its update after the
	// renegotiation landed, and that in-flight reply must not be dropped.
	cmu       sync.Mutex
	codec     byte
	prevCodec byte
	updates   chan *Envelope
	dead      atomic.Bool   // set by the reader goroutine when the conn drops
	deadCh    chan struct{} // closed by the reader goroutine on exit
	err       error

	// pending routes seq-tagged updates (Train.Seq echoes) to the exact
	// train request waiting for them. Registered before the request is
	// sent, so a reply can never beat its waiter; buffered size 1, so the
	// reader never blocks on delivery. Updates whose seq has no waiter are
	// stragglers of an abandoned round and are discarded, mirroring the
	// synchronous path's straggler-discard semantics.
	pmu     sync.Mutex
	pending map[int64]chan *Envelope

	// Delta-downlink ack state (Proto ≥ ProtoDeltaDownlink workers on runs
	// with a downlink mode): the tier and global version of the last
	// versioned snapshot this worker is known to hold — recorded when its
	// update for that broadcast arrives, never merely when the broadcast
	// was sent. A delta is only dispatched when the ack matches the tier
	// chain's base exactly; everything else (first contact, a missed round,
	// a migration, a resume) degrades to the dense snapshot.
	amu     sync.Mutex
	ackTier int
	ackVer  int
}

// setAck records that the worker acknowledged (responded to) the versioned
// broadcast of tier t at global version ver.
func (w *registered) setAck(t, ver int) {
	w.amu.Lock()
	defer w.amu.Unlock()
	w.ackTier, w.ackVer = t, ver
}

// clearAck forgets the worker's ack — called when a re-tiering migrates it,
// so a stale same-tier ack can never resurface after the worker returns to
// a tier it left.
func (w *registered) clearAck() {
	w.amu.Lock()
	defer w.amu.Unlock()
	w.ackTier, w.ackVer = -1, -1
}

// ackMatch reports whether the worker's last ack is exactly tier t at
// version ver — the eligibility test for a delta against that base.
func (w *registered) ackMatch(t, ver int) bool {
	w.amu.Lock()
	defer w.amu.Unlock()
	return ver >= 0 && w.ackTier == t && w.ackVer == ver
}

// codecID returns the worker's current negotiated codec.
func (w *registered) codecID() byte {
	w.cmu.Lock()
	defer w.cmu.Unlock()
	return w.codec
}

// setCodec renegotiates the worker's codec, keeping the previous one
// accepted for the switch window.
func (w *registered) setCodec(id byte) {
	w.cmu.Lock()
	defer w.cmu.Unlock()
	if id == w.codec {
		return
	}
	w.prevCodec = w.codec
	w.codec = id
}

// acceptsCodec reports whether an incoming compressed update's codec is
// valid for this worker: its current negotiated codec or, during a
// renegotiation window, the previous one.
func (w *registered) acceptsCodec(id byte) bool {
	w.cmu.Lock()
	defer w.cmu.Unlock()
	return id == w.codec || id == w.prevCodec
}

// addPending registers a waiter for the given request seq.
func (w *registered) addPending(seq int64) chan *Envelope {
	ch := make(chan *Envelope, 1)
	w.pmu.Lock()
	w.pending[seq] = ch
	w.pmu.Unlock()
	return ch
}

// dropPending abandons a request's waiter (the round is over).
func (w *registered) dropPending(seq int64) {
	w.pmu.Lock()
	delete(w.pending, seq)
	w.pmu.Unlock()
}

// route delivers a seq-tagged update to its waiter, reporting whether one
// existed.
func (w *registered) route(seq int64, env *Envelope) bool {
	w.pmu.Lock()
	ch, ok := w.pending[seq]
	w.pmu.Unlock()
	if !ok {
		return false
	}
	select {
	case ch <- env: // buffered 1: one reply per request
	default:
	}
	return true
}

// Aggregator is the FL server: it accepts worker registrations, optionally
// profiles them, then drives synchronous FedAvg rounds.
type Aggregator struct {
	cfg AggregatorConfig
	ln  net.Listener

	mu      sync.Mutex
	workers map[int]*registered
	// onRejoin observes mid-run re-registrations: it fires (outside a.mu,
	// on the handshake goroutine) whenever a registration replaces a dead
	// entry for the same ID. The tiered-async runs install it to
	// re-announce the returning worker's tier or revive a tree child.
	onRejoin func(w *registered)
}

// setRejoinHook installs (or, with nil, clears) the mid-run
// re-registration observer.
func (a *Aggregator) setRejoinHook(h func(*registered)) {
	a.mu.Lock()
	a.onRejoin = h
	a.mu.Unlock()
}

// NewAggregator listens on addr (e.g. "127.0.0.1:0").
func NewAggregator(addr string, cfg AggregatorConfig) (*Aggregator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("flnet: listen: %w", err)
	}
	return &Aggregator{cfg: cfg, ln: ln, workers: make(map[int]*registered)}, nil
}

// Addr returns the aggregator's listen address.
func (a *Aggregator) Addr() string { return a.ln.Addr().String() }

// Close shuts the listener and all worker connections.
func (a *Aggregator) Close() {
	a.ln.Close() //nolint:errcheck // shutdown path
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, w := range a.workers {
		w.c.close() //nolint:errcheck // shutdown path
	}
}

// WaitForWorkers accepts connections until n workers have registered or the
// timeout elapses. Accepting polls in short slices so registration progress
// is observed promptly even while the listener is idle.
func (a *Aggregator) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	tcp, _ := a.ln.(*net.TCPListener)
	for {
		a.mu.Lock()
		have := len(a.workers)
		a.mu.Unlock()
		if have >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("flnet: waiting for %d workers, have %d: timeout", n, have)
		}
		if tcp != nil {
			slice := time.Now().Add(50 * time.Millisecond)
			if slice.After(deadline) {
				slice = deadline
			}
			if err := tcp.SetDeadline(slice); err != nil {
				return fmt.Errorf("flnet: accept deadline: %w", err)
			}
		}
		raw, err := a.ln.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue // poll registration progress
			}
			return fmt.Errorf("flnet: accept: %w", err)
		}
		go a.handshake(raw)
	}
}

// handshake performs registration and starts the per-connection reader.
func (a *Aggregator) handshake(raw net.Conn) {
	c := newConn(raw)
	c.writeTimeout = a.cfg.SendTimeout
	env, err := c.recv(10 * time.Second)
	if err != nil || env.Type != MsgRegister || env.Register == nil {
		c.close() //nolint:errcheck // failed handshake
		return
	}
	if !compress.Known(env.Register.Codec) {
		// Negotiation failure: this build cannot decode the worker's
		// codec, so refuse it now rather than drop its every update later.
		c.close() //nolint:errcheck // failed handshake
		return
	}
	w := &registered{
		id: env.Register.ClientID, samples: env.Register.NumSamples,
		codec: env.Register.Codec, prevCodec: env.Register.Codec,
		proto: env.Register.Proto, role: env.Register.Role,
		members: append([]int(nil), env.Register.Members...),
		addr:    env.Register.Addr, c: c,
		updates: make(chan *Envelope, 4),
		deadCh:  make(chan struct{}),
		pending: make(map[int64]chan *Envelope),
		ackTier: -1, ackVer: -1,
	}
	a.mu.Lock()
	old := a.workers[w.id]
	if old != nil && !old.dead.Load() {
		// A live connection already owns this ID: refuse the duplicate. A
		// reconnecting worker that races the server's EOF detection lands
		// here too — its backoff loop simply retries until the dead read
		// surfaces and the slot frees up.
		a.mu.Unlock()
		c.close() //nolint:errcheck // duplicate registration
		return
	}
	a.workers[w.id] = w
	hook := a.onRejoin
	a.mu.Unlock()
	go func() {
		for {
			env, err := c.recv(0)
			if err != nil {
				w.err = err
				w.dead.Store(true)
				close(w.deadCh)
				close(w.updates)
				return
			}
			// Seq-tagged updates go straight to the train request that is
			// waiting for them; everything else (profile replies, legacy
			// updates) flows through the shared channel.
			switch {
			case env.Type == MsgUpdate && env.Update != nil && env.Update.Seq != 0:
				w.route(env.Update.Seq, env)
				continue
			case env.Type == MsgCompressedUpdate && env.CompressedUpdate != nil && env.CompressedUpdate.Seq != 0:
				w.route(env.CompressedUpdate.Seq, env)
				continue
			}
			w.updates <- env
		}
	}()
	if old != nil && hook != nil {
		// Rejoin: the reader is live, so liveWorker(id) already resolves
		// to the fresh connection by the time the hook observes it.
		hook(w)
	}
}

// acceptLoop keeps admitting registrations while a run is in flight, so a
// disconnected worker (or a respawned child aggregator) can rejoin
// mid-run — WaitForWorkers only accepts until the fleet is assembled.
// It polls the listener in short deadline slices and exits when done is
// closed or the listener dies.
func (a *Aggregator) acceptLoop(done <-chan struct{}) {
	tcp, _ := a.ln.(*net.TCPListener)
	for {
		select {
		case <-done:
			if tcp != nil {
				tcp.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
			}
			return
		default:
		}
		if tcp != nil {
			if err := tcp.SetDeadline(time.Now().Add(100 * time.Millisecond)); err != nil {
				return
			}
		}
		raw, err := a.ln.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return // listener closed
		}
		go a.handshake(raw)
	}
}

// liveWorker returns the registered worker with the given ID if its
// connection is still up, nil otherwise.
func (a *Aggregator) liveWorker(id int) *registered {
	a.mu.Lock()
	defer a.mu.Unlock()
	w := a.workers[id]
	if w == nil || w.dead.Load() {
		return nil
	}
	return w
}

// ids returns the sorted registered client IDs.
func (a *Aggregator) ids() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]int, 0, len(a.workers))
	for id := range a.workers {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// ProfileWorkers sends every registered worker one profiling task and
// returns measured training seconds per client — the network analogue of
// core.Profile. Workers that fail to reply within timeout are reported in
// the dropouts list.
func (a *Aggregator) ProfileWorkers(timeout time.Duration) (map[int]float64, []int, error) {
	ids := a.ids()
	lat := make(map[int]float64, len(ids))
	var dropouts []int
	for _, id := range ids {
		a.mu.Lock()
		w := a.workers[id]
		a.mu.Unlock()
		if err := w.c.send(&Envelope{Type: MsgProfile, Profile: &Profile{Weights: a.cfg.InitialWeights}}); err != nil {
			dropouts = append(dropouts, id)
			continue
		}
	}
	for _, id := range ids {
		a.mu.Lock()
		w := a.workers[id]
		a.mu.Unlock()
		env, ok := recvTimeout(w, timeout)
		if !ok || env.Type != MsgProfileReply || env.ProfileReply == nil {
			dropouts = append(dropouts, id)
			continue
		}
		lat[id] = env.ProfileReply.Seconds
	}
	if len(lat) == 0 {
		return nil, dropouts, fmt.Errorf("flnet: no workers completed profiling")
	}
	return lat, dropouts, nil
}

// recvTimeout pops the worker's next message through its reader channel.
func recvTimeout(w *registered, timeout time.Duration) (*Envelope, bool) {
	if timeout <= 0 {
		env, ok := <-w.updates
		return env, ok
	}
	select {
	case env, ok := <-w.updates:
		return env, ok
	case <-time.After(timeout):
		return nil, false
	}
}

// Run drives cfg.Rounds synchronous rounds using sel to pick participants
// and returns final weights plus per-round stats. It requires at least one
// registered worker.
func (a *Aggregator) Run(sel SelectFunc) (*RunResult, error) {
	weights := append([]float64(nil), a.cfg.InitialWeights...)
	res := &RunResult{}
	for r := 0; r < a.cfg.Rounds; r++ {
		rng := rand.New(rand.NewSource(a.cfg.Seed + int64(r)*1_000_003))
		target := a.cfg.ClientsPerRound
		want := target
		if a.cfg.Overselect > 0 {
			want = int(float64(target)*(1+a.cfg.Overselect) + 0.999)
		}
		all := a.ids()
		if len(all) == 0 {
			return nil, fmt.Errorf("flnet: round %d: no registered workers", r)
		}
		chosen := sel(r, all, rng)
		if extra := want - len(chosen); a.cfg.Overselect > 0 && extra > 0 {
			// Over-selection: top up with uniformly drawn spares beyond the
			// policy's picks; only the first `target` responses count.
			inChosen := make(map[int]bool, len(chosen))
			for _, id := range chosen {
				inChosen[id] = true
			}
			for _, i := range rng.Perm(len(all)) {
				if extra == 0 {
					break
				}
				if !inChosen[all[i]] {
					chosen = append(chosen, all[i])
					extra--
				}
			}
		}
		start := time.Now()
		stats := RoundStats{Round: r, Selected: len(chosen)}
		updates, err := a.RunRound(r, chosen, weights, target)
		if err != nil {
			return nil, err
		}
		stats.Used = len(updates)
		if d := stats.Selected - stats.Used; d > 0 {
			stats.Discarded = d
		}
		for _, u := range updates {
			stats.UplinkBytes += int64(u.WireBytes)
		}
		res.UplinkBytes += stats.UplinkBytes
		weights = flcore.FedAvg(updates)
		stats.Wall = time.Since(start)
		res.Rounds = append(res.Rounds, stats)
	}
	res.Weights = weights
	a.FinishWorkers(a.cfg.Rounds)
	return res, nil
}

// decodeUpdate converts a worker's update envelope into an aggregatable
// flcore.Update against the round's broadcast weights. It enforces the
// handshake codec negotiation; a compressed payload that fails to decode
// is treated like a dropped worker — one bad update must not kill the
// round.
func decodeUpdate(w *registered, env *Envelope, weights []float64) (flcore.Update, bool) {
	switch {
	case env.Type == MsgUpdate && env.Update != nil:
		uw := env.Update.Weights
		if env.Update.Raw != nil {
			dec, err := nn.DecodeWeights(env.Update.Raw)
			if err != nil {
				// Same policy as an undecodable compressed payload: one
				// corrupt update must not kill the round.
				return flcore.Update{}, false
			}
			uw = dec
		}
		return flcore.Update{
			ClientID: env.Update.ClientID, Weights: uw,
			NumSamples: env.Update.NumSamples,
			Latency:    env.Update.Seconds,
			WireBytes:  compress.DenseBytes(len(uw)),
		}, true
	case env.Type == MsgCompressedUpdate && env.CompressedUpdate != nil:
		cu := env.CompressedUpdate
		// Enforce the negotiation: updates must arrive under the worker's
		// negotiated codec (current, or the previous one during a live
		// renegotiation window).
		if !w.acceptsCodec(cu.Codec) {
			return flcore.Update{}, false
		}
		delta, err := compress.DecodePayload(cu.Codec, cu.Payload, len(weights))
		if err != nil {
			return flcore.Update{}, false
		}
		rec := make([]float64, len(weights))
		for i := range rec {
			rec[i] = weights[i] + delta[i]
		}
		return flcore.Update{
			ClientID: cu.ClientID, Weights: rec,
			NumSamples: cu.NumSamples, Latency: cu.Seconds,
			WireBytes: len(cu.Payload),
		}, true
	}
	return flcore.Update{}, false
}

// updateRound extracts the round an update envelope claims, or -1.
func updateRound(env *Envelope) int {
	switch {
	case env.Type == MsgUpdate && env.Update != nil:
		return env.Update.Round
	case env.Type == MsgCompressedUpdate && env.CompressedUpdate != nil:
		return env.CompressedUpdate.Round
	}
	return -1
}

// drainFor pulls one round-r update from the worker's shared channel,
// draining stale messages (e.g. a previous round's straggler update) until
// the round's update arrives or the deadline passes (zero deadline blocks
// indefinitely).
func drainFor(w *registered, round int, weights []float64, deadline time.Time) (flcore.Update, bool) {
	for {
		wait := time.Duration(0)
		if !deadline.IsZero() {
			wait = time.Until(deadline)
			if wait <= 0 {
				return flcore.Update{}, false
			}
		}
		env, ok := recvTimeout(w, wait)
		if !ok {
			return flcore.Update{}, false
		}
		if updateRound(env) == round {
			return decodeUpdate(w, env, weights)
		}
	}
}

// collect gathers up to target updates for round r from the live workers,
// respecting the round timeout; late updates are discarded (straggler
// mitigation). weights is the round's broadcast weight vector, against
// which compressed deltas are reconstructed.
func (a *Aggregator) collect(live []*registered, target, round int, weights []float64) []flcore.Update {
	type got struct {
		u  flcore.Update
		ok bool
	}
	ch := make(chan got, len(live))
	var deadline time.Time
	if a.cfg.RoundTimeout > 0 {
		deadline = time.Now().Add(a.cfg.RoundTimeout)
	}
	for _, w := range live {
		go func(w *registered) {
			u, ok := drainFor(w, round, weights, deadline)
			ch <- got{u: u, ok: ok}
		}(w)
	}
	var updates []flcore.Update
	for i := 0; i < len(live); i++ {
		g := <-ch
		if g.ok {
			updates = append(updates, g.u)
			if len(updates) >= target {
				break // remaining responders are stragglers; discard
			}
		}
	}
	return updates
}
