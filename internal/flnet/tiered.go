package flnet

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// TierSelectFunc turns network-profiled latencies (ProfileWorkers output)
// into a TiFL tier-based SelectFunc for the aggregator: tiers are built
// server-side from the measured response times, and each round one tier is
// drawn by the policy's probabilities with clientsPerRound workers sampled
// inside it. This is TiFL running over the real TCP runtime end to end.
//
// It returns the built tiers so callers can log them or feed the
// training-time estimator.
func TierSelectFunc(latency map[int]float64, numTiers int, policy core.StaticPolicy, clientsPerRound int) (SelectFunc, []core.Tier, error) {
	if err := policy.Validate(); err != nil {
		return nil, nil, err
	}
	tiers := core.BuildTiers(latency, numTiers, core.Quantile)
	if len(tiers) != len(policy.Probs) {
		return nil, nil, fmt.Errorf("flnet: built %d tiers for a %d-probability policy", len(tiers), len(policy.Probs))
	}
	sel := core.NewStaticSelector(tiers, policy, clientsPerRound)
	fn := func(round int, ids []int, rng *rand.Rand) []int {
		// The selector works over client IDs directly because tiers were
		// built from the latency map's keys (worker IDs).
		return sel.Select(round, rng)
	}
	return fn, tiers, nil
}
