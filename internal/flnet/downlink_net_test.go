package flnet

import (
	"math"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/flcore"
)

// sameTieredRun asserts two tiered-async socket runs are byte-identical:
// same commit log (tier, round, version, staleness, bit-equal mix weight)
// and bit-equal final global weights.
func sameTieredRun(t *testing.T, got, want *TieredAsyncRunResult, gotName, wantName string) {
	t.Helper()
	if len(got.Log) != len(want.Log) {
		t.Fatalf("%s applied %d commits, %s %d", gotName, len(got.Log), wantName, len(want.Log))
	}
	for i, rec := range got.Log {
		ref := want.Log[i]
		if rec.Tier != ref.Tier || rec.TierRound != ref.TierRound ||
			rec.Version != ref.Version || rec.Staleness != ref.Staleness ||
			math.Float64bits(rec.Weight) != math.Float64bits(ref.Weight) {
			t.Fatalf("commit %d diverges: %s %+v vs %s %+v", i, gotName, rec, wantName, ref)
		}
	}
	if len(got.Weights) != len(want.Weights) {
		t.Fatalf("weight lengths differ: %d vs %d", len(got.Weights), len(want.Weights))
	}
	for i := range got.Weights {
		if math.Float64bits(got.Weights[i]) != math.Float64bits(want.Weights[i]) {
			t.Fatalf("global model diverges at weight %d: %x (%s) vs %x (%s)",
				i, math.Float64bits(got.Weights[i]), gotName,
				math.Float64bits(want.Weights[i]), wantName)
		}
	}
}

// TestDownlinkLosslessByteIdenticalLockstep is the tentpole parity test
// for the flat path: under a Lockstep schedule on the same seed, a run
// with the lossless XOR delta downlink must be byte-identical to the
// plain dense run — same commit log, bit-equal final weights — while
// spending strictly fewer downlink bytes. The delta scheme may only
// change the encoding on the wire, never the values any worker trains
// from.
func TestDownlinkLosslessByteIdenticalLockstep(t *testing.T) {
	commits := 12
	if testing.Short() {
		commits = 6
	}
	clients, tiers, _, cfg := netFixture(t, 0)
	schedule := make([]int, commits)
	for i := range schedule {
		schedule[i] = i % len(tiers)
	}
	init := cfg.Model(rand.New(rand.NewSource(cfg.Seed))).WeightsVector()
	eng := flcore.NewEngine(flcore.Config{
		Rounds: 1, ClientsPerRound: 1, LocalEpochs: cfg.LocalEpochs,
		BatchSize: cfg.BatchSize, Seed: cfg.Seed,
		Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: cfg.Latency,
	}, clients, nil)

	run := func(dl *compress.Downlink) *TieredAsyncRunResult {
		agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
			GlobalCommits: commits, ClientsPerRound: cfg.ClientsPerRound,
			RoundTimeout: 20 * time.Second, InitialWeights: init, Seed: cfg.Seed,
			Lockstep: append([]int(nil), schedule...), Downlink: dl,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer agg.Close()
		var cfgs []WorkerConfig
		for _, members := range tiers {
			for _, ci := range members {
				ci := ci
				cfgs = append(cfgs, WorkerConfig{
					ClientID: ci, NumSamples: clients[ci].NumSamples(),
					Train: func(round int, weights []float64) ([]float64, int, error) {
						u := eng.TrainClient(round, ci, weights)
						return u.Weights, u.NumSamples, nil
					},
				})
			}
		}
		wait := startWorkers(t, agg.Addr(), cfgs)
		if err := agg.WaitForWorkers(len(clients), 10*time.Second); err != nil {
			t.Fatal(err)
		}
		res, err := agg.Run(tiers)
		if err != nil {
			t.Fatal(err)
		}
		wait()
		return res
	}

	dense := run(nil)
	delta := run(&compress.Downlink{})
	sameTieredRun(t, delta, dense, "delta", "dense")
	if delta.DownlinkBytes >= dense.DownlinkBytes {
		t.Errorf("lossless delta spent %d downlink bytes, dense %d — no savings",
			delta.DownlinkBytes, dense.DownlinkBytes)
	}
	if delta.DownlinkBytes <= 0 {
		t.Errorf("delta run reported %d downlink bytes", delta.DownlinkBytes)
	}
}

// TestDownlinkTreeLosslessByteIdenticalLockstep extends the parity
// guarantee to the aggregation tree: with delta downlink on both hops
// (root→child pulls and child→leaf broadcasts), the tree run must stay
// byte-identical to the flat dense run under the same Lockstep schedule.
// The tree's pull→commit→pull sequencing is the implicit ack here, so
// this exercises the delta path without any explicit ack state.
func TestDownlinkTreeLosslessByteIdenticalLockstep(t *testing.T) {
	commits := 12
	if testing.Short() {
		commits = 6
	}
	clients, tiers, _, cfg := netFixture(t, 0)
	schedule := make([]int, commits)
	for i := range schedule {
		schedule[i] = i % len(tiers)
	}
	init := cfg.Model(rand.New(rand.NewSource(cfg.Seed))).WeightsVector()
	eng := flcore.NewEngine(flcore.Config{
		Rounds: 1, ClientsPerRound: 1, LocalEpochs: cfg.LocalEpochs,
		BatchSize: cfg.BatchSize, Seed: cfg.Seed,
		Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: cfg.Latency,
	}, clients, nil)
	workerCfg := func(ci int) WorkerConfig {
		return WorkerConfig{
			ClientID: ci, NumSamples: clients[ci].NumSamples(),
			Train: func(round int, weights []float64) ([]float64, int, error) {
				u := eng.TrainClient(round, ci, weights)
				return u.Weights, u.NumSamples, nil
			},
		}
	}
	taCfg := func(dl *compress.Downlink) TieredAsyncConfig {
		return TieredAsyncConfig{
			GlobalCommits: commits, ClientsPerRound: cfg.ClientsPerRound,
			RoundTimeout: 20 * time.Second, InitialWeights: init, Seed: cfg.Seed,
			Lockstep: append([]int(nil), schedule...), Downlink: dl,
		}
	}

	// Flat dense reference run.
	flatAgg, err := NewTieredAsyncAggregator("127.0.0.1:0", taCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer flatAgg.Close()
	var cfgs []WorkerConfig
	for _, members := range tiers {
		for _, ci := range members {
			cfgs = append(cfgs, workerCfg(ci))
		}
	}
	wait := startWorkers(t, flatAgg.Addr(), cfgs)
	if err := flatAgg.WaitForWorkers(len(clients), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	flat, err := flatAgg.Run(tiers)
	if err != nil {
		t.Fatal(err)
	}
	wait()

	// Tree run with delta downlink on both hops.
	root, err := NewTieredAsyncAggregator("127.0.0.1:0", taCfg(&compress.Downlink{}))
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	children := make([]*Child, len(tiers))
	errs := make([]error, len(tiers))
	waitChild := make(chan int, len(tiers))
	for ti, members := range tiers {
		ch, err := NewChild(ChildConfig{
			ID: ti, RootAddr: root.Addr(), Workers: len(members),
			RoundTimeout: 20 * time.Second, Downlink: &compress.Downlink{},
		})
		if err != nil {
			t.Fatal(err)
		}
		children[ti] = ch
		go func(ti int) {
			errs[ti] = children[ti].Run()
			waitChild <- ti
		}(ti)
	}
	defer func() {
		for _, ch := range children {
			ch.Close()
		}
	}()
	var leafWaits []func()
	for ti, members := range tiers {
		var cfgs []WorkerConfig
		for _, ci := range members {
			cfgs = append(cfgs, workerCfg(ci))
		}
		leafWaits = append(leafWaits, startWorkers(t, children[ti].Addr(), cfgs))
	}
	if err := root.WaitForChildren(len(tiers), 15*time.Second); err != nil {
		t.Fatal(err)
	}
	tree, err := root.RunTree()
	if err != nil {
		t.Fatal(err)
	}
	for range tiers {
		ti := <-waitChild
		if errs[ti] != nil {
			t.Errorf("child %d: %v", ti, errs[ti])
		}
	}
	for _, wait := range leafWaits {
		wait()
	}

	sameTieredRun(t, tree, flat, "tree+delta", "flat dense")
	if tree.DownlinkBytes <= 0 {
		t.Errorf("tree delta run reported %d downlink bytes", tree.DownlinkBytes)
	}
}

// TestDownlinkSimSocketByteAgreement is the accounting acceptance test:
// the simulated engine and the socket runtime, run with the same downlink
// mode on the same seed in lockstep, must report identical DownlinkBytes
// — per commit and in total — and a bit-identical final model. Covered
// per subtest: the lossless XOR delta and both lossy codecs (int8
// quantization, deterministic top-k), each with the server-side
// error-feedback residual in play.
func TestDownlinkSimSocketByteAgreement(t *testing.T) {
	duration := 30.0
	if testing.Short() {
		duration = 15
	}
	for _, spec := range []string{"delta", "delta+int8", "delta+topk@0.25"} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			dl, err := compress.ParseDownlink(spec)
			if err != nil {
				t.Fatal(err)
			}
			clients, tiers, test, cfg := netFixture(t, duration)
			simCfg := cfg
			simCfg.Downlink = dl
			sim := flcore.RunTieredAsync(simCfg, tiers, clients, test)
			if len(sim.TierRounds) < len(tiers)+1 {
				t.Fatalf("simulation committed only %d rounds; parity would be vacuous", len(sim.TierRounds))
			}
			if sim.DownlinkBytes <= 0 {
				t.Fatalf("simulation charged %d downlink bytes", sim.DownlinkBytes)
			}
			schedule := make([]int, len(sim.TierRounds))
			for i, rec := range sim.TierRounds {
				schedule[i] = rec.Tier
			}

			init := cfg.Model(rand.New(rand.NewSource(cfg.Seed))).WeightsVector()
			agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
				GlobalCommits: len(schedule), ClientsPerRound: cfg.ClientsPerRound,
				RoundTimeout: 20 * time.Second, InitialWeights: init, Seed: cfg.Seed,
				Lockstep: schedule, Downlink: dl,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer agg.Close()
			eng := flcore.NewEngine(flcore.Config{
				Rounds: 1, ClientsPerRound: 1, LocalEpochs: cfg.LocalEpochs,
				BatchSize: cfg.BatchSize, Seed: cfg.Seed,
				Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: cfg.Latency,
			}, clients, nil)
			var cfgs []WorkerConfig
			for _, members := range tiers {
				for _, ci := range members {
					ci := ci
					cfgs = append(cfgs, WorkerConfig{
						ClientID: ci, NumSamples: clients[ci].NumSamples(),
						Train: func(round int, weights []float64) ([]float64, int, error) {
							u := eng.TrainClient(round, ci, weights)
							return u.Weights, u.NumSamples, nil
						},
					})
				}
			}
			wait := startWorkers(t, agg.Addr(), cfgs)
			if err := agg.WaitForWorkers(len(clients), 10*time.Second); err != nil {
				t.Fatal(err)
			}
			res, err := agg.Run(tiers)
			if err != nil {
				t.Fatal(err)
			}
			wait()

			if len(res.Log) != len(sim.TierRounds) {
				t.Fatalf("applied %d commits, want %d", len(res.Log), len(sim.TierRounds))
			}
			for i, rec := range res.Log {
				want := sim.TierRounds[i]
				if rec.Tier != want.Tier || rec.TierRound != want.TierRound ||
					rec.Version != want.Version || rec.Staleness != want.Staleness ||
					math.Float64bits(rec.Weight) != math.Float64bits(want.Weight) {
					t.Fatalf("commit %d diverges: net %+v vs sim %+v", i, rec, want)
				}
				if rec.DownlinkBytes != want.DownlinkBytes {
					t.Fatalf("commit %d: net charged %d downlink bytes, sim %d",
						i, rec.DownlinkBytes, want.DownlinkBytes)
				}
				if rec.UplinkBytes != want.UplinkBytes {
					t.Fatalf("commit %d: net charged %d uplink bytes, sim %d",
						i, rec.UplinkBytes, want.UplinkBytes)
				}
			}
			if res.DownlinkBytes != sim.DownlinkBytes {
				t.Fatalf("net reported %d total downlink bytes, sim %d",
					res.DownlinkBytes, sim.DownlinkBytes)
			}
			for i := range res.Weights {
				if math.Float64bits(res.Weights[i]) != math.Float64bits(sim.Weights[i]) {
					t.Fatalf("global model diverges at weight %d: %x vs %x",
						i, math.Float64bits(res.Weights[i]), math.Float64bits(sim.Weights[i]))
				}
			}
		})
	}
}

// TestDownlinkLegacyWorkerInterop pins backwards compatibility: a worker
// registering below ProtoDeltaDownlink must receive plain dense
// broadcasts for the whole run even when the aggregator has delta
// downlink enabled, and the run must still complete. The legacy worker is
// hand-rolled so it can assert no Delta/Version fields ever reach it.
func TestDownlinkLegacyWorkerInterop(t *testing.T) {
	agg, err := NewTieredAsyncAggregator("127.0.0.1:0", TieredAsyncConfig{
		GlobalCommits: 6, ClientsPerRound: 1,
		RoundTimeout: 5 * time.Second, InitialWeights: []float64{1, 2, 3}, Seed: 3,
		Lockstep: []int{0, 1, 0, 1, 0, 1}, Downlink: &compress.Downlink{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	// Modern worker in tier 0: full delta-capable RunWorker loop.
	go RunWorker(agg.Addr(), WorkerConfig{ //nolint:errcheck // exits with aggregator
		ClientID: 0, NumSamples: 3, Train: echoTrain(1, 3, 0),
	})

	// Legacy worker in tier 1: registers without Proto, insists on dense
	// Weights and never a delta payload.
	legacyDone := make(chan error, 1)
	go func() {
		raw, err := net.Dial("tcp", agg.Addr())
		if err != nil {
			legacyDone <- err
			return
		}
		c := newConn(raw)
		defer c.close() //nolint:errcheck // test shutdown
		if err := c.send(&Envelope{Type: MsgRegister, Register: &Register{ClientID: 1, NumSamples: 3}}); err != nil {
			legacyDone <- err
			return
		}
		for {
			env, err := c.recv(20 * time.Second)
			if err != nil {
				legacyDone <- err
				return
			}
			switch env.Type {
			case MsgTrain:
				if env.Train.Delta != nil || env.Train.Version != 0 {
					legacyDone <- errLegacyGotRaw
					return
				}
				if env.Train.Weights == nil {
					legacyDone <- errLegacyGotRaw
					return
				}
				out := append([]float64(nil), env.Train.Weights...)
				for i := range out {
					out[i] += 2
				}
				up := &Update{Round: env.Train.Round, ClientID: 1, Weights: out, NumSamples: 3}
				if err := c.send(&Envelope{Type: MsgUpdate, Update: up}); err != nil {
					legacyDone <- err
					return
				}
			case MsgTierAssign:
				// Tiered runs announce placement; legacy workers ignore it.
			case MsgDone:
				legacyDone <- nil
				return
			default:
				legacyDone <- errLegacyUnexpected
				return
			}
		}
	}()

	if err := agg.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := agg.Run([][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-legacyDone; err != nil {
		t.Fatalf("legacy worker: %v", err)
	}
	if len(res.Log) != 6 {
		t.Fatalf("applied %d commits, want 6", len(res.Log))
	}
	if res.DownlinkBytes <= 0 {
		t.Fatalf("run reported %d downlink bytes", res.DownlinkBytes)
	}
}
