// Package secagg simulates the pairwise-masking core of practical secure
// aggregation (Bonawitz et al., CCS 2017 — reference [5] of the TiFL
// paper, and the paper's stated reason cross-device FL stays synchronous).
//
// Every pair of round participants (i, j) derives a shared mask vector from
// a common seed; the lower-ID client adds it and the higher-ID client
// subtracts it, so individual submissions look random to the server while
// the *sum* of submissions equals the sum of the true values exactly.
// Clients submit their sample-weighted weight vectors (n_c·w_c) plus n_c in
// the clear, so the server recovers the FedAvg numerator and denominator
// without ever seeing a single client's weights.
//
// This is the honest-but-curious core only: the full protocol's key
// agreement, secret sharing for dropout recovery, and signatures are out of
// scope (DESIGN.md §6), but the aggregation algebra — the part TiFL must
// remain compatible with — is real and tested.
package secagg

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/flcore"
)

// Submission is one client's masked contribution.
type Submission struct {
	ClientID   int
	Masked     []float64 // n_c·w_c + Σ pairwise masks
	NumSamples int
}

// pairSeed derives the shared seed for the (i, j) mask from the round seed;
// both parties compute the same value independently.
func pairSeed(roundSeed int64, i, j int) int64 {
	if i > j {
		i, j = j, i
	}
	z := uint64(roundSeed) ^ (uint64(i+1) * 0x9E3779B97F4A7C15) ^ (uint64(j+1) * 0xBF58476D1CE4E5B9)
	z = (z ^ (z >> 30)) * 0x94D049BB133111EB
	return int64(z)
}

// MaskUpdate produces client `id`'s masked submission for a round whose
// participants are `participants` (all IDs, including id). The mask scale
// only needs to be large enough to hide the signal; cancellation is exact
// regardless.
func MaskUpdate(u flcore.Update, participants []int, roundSeed int64, maskScale float64) Submission {
	masked := make([]float64, len(u.Weights))
	w := float64(u.NumSamples)
	for k, v := range u.Weights {
		masked[k] = w * v
	}
	for _, other := range participants {
		if other == u.ClientID {
			continue
		}
		rng := rand.New(rand.NewSource(pairSeed(roundSeed, u.ClientID, other)))
		sign := 1.0
		if u.ClientID > other {
			sign = -1
		}
		for k := range masked {
			masked[k] += sign * maskScale * rng.NormFloat64()
		}
	}
	return Submission{ClientID: u.ClientID, Masked: masked, NumSamples: u.NumSamples}
}

// Aggregate recovers the FedAvg average from a complete set of masked
// submissions. It errors if the submission set does not cover exactly the
// participants the masks were built for (a missing client leaves its
// pairwise masks uncancelled — the dropout problem the full protocol's
// secret sharing addresses).
func Aggregate(subs []Submission, participants []int) ([]float64, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("secagg: no submissions")
	}
	got := make([]int, 0, len(subs))
	for _, s := range subs {
		got = append(got, s.ClientID)
	}
	sort.Ints(got)
	want := append([]int(nil), participants...)
	sort.Ints(want)
	if len(got) != len(want) {
		return nil, fmt.Errorf("secagg: %d submissions for %d participants (dropout breaks mask cancellation)", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return nil, fmt.Errorf("secagg: submission set %v does not match participants %v", got, want)
		}
	}
	n := len(subs[0].Masked)
	sum := make([]float64, n)
	total := 0.0
	for _, s := range subs {
		if len(s.Masked) != n {
			return nil, fmt.Errorf("secagg: submission length %d != %d", len(s.Masked), n)
		}
		for k, v := range s.Masked {
			sum[k] += v
		}
		total += float64(s.NumSamples)
	}
	if total <= 0 {
		return nil, fmt.Errorf("secagg: zero total weight")
	}
	for k := range sum {
		sum[k] /= total
	}
	return sum, nil
}

// SecureFedAvg masks every update and aggregates the masked submissions —
// the drop-in secure analogue of flcore.FedAvg for one round.
func SecureFedAvg(updates []flcore.Update, roundSeed int64, maskScale float64) ([]float64, error) {
	ids := make([]int, len(updates))
	for i, u := range updates {
		ids[i] = u.ClientID
	}
	subs := make([]Submission, len(updates))
	for i, u := range updates {
		subs[i] = MaskUpdate(u, ids, roundSeed, maskScale)
	}
	return Aggregate(subs, ids)
}
