package secagg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flcore"
)

func randomUpdates(rng *rand.Rand, k, n int) []flcore.Update {
	ups := make([]flcore.Update, k)
	for i := range ups {
		w := make([]float64, n)
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		ups[i] = flcore.Update{ClientID: i * 3, Weights: w, NumSamples: 1 + rng.Intn(50)}
	}
	return ups
}

func TestSecureFedAvgMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ups := randomUpdates(rng, 5, 40)
	want := flcore.FedAvg(ups)
	got, err := SecureFedAvg(ups, 42, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("secure aggregate diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// Property: mask cancellation is exact for any participant set and seed.
func TestMaskCancellationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(6)
		n := 1 + rng.Intn(30)
		ups := randomUpdates(rng, k, n)
		want := flcore.FedAvg(ups)
		got, err := SecureFedAvg(ups, seed, 1000)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskingHidesIndividualUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ups := randomUpdates(rng, 4, 50)
	ids := []int{0, 3, 6, 9}
	sub := MaskUpdate(ups[0], ids, 7, 100)
	// The masked vector must be far from the raw weighted vector: with
	// maskScale 100 the correlation should be destroyed.
	raw := make([]float64, 50)
	for k, v := range ups[0].Weights {
		raw[k] = float64(ups[0].NumSamples) * v
	}
	dist := 0.0
	for k := range raw {
		d := sub.Masked[k] - raw[k]
		dist += d * d
	}
	if math.Sqrt(dist) < 100 {
		t.Fatalf("mask too weak: distance %v", math.Sqrt(dist))
	}
}

func TestPairSeedSymmetric(t *testing.T) {
	if pairSeed(1, 3, 8) != pairSeed(1, 8, 3) {
		t.Fatal("pair seed must be order-independent")
	}
	if pairSeed(1, 3, 8) == pairSeed(2, 3, 8) {
		t.Fatal("pair seed must depend on the round seed")
	}
	if pairSeed(1, 3, 8) == pairSeed(1, 3, 9) {
		t.Fatal("pair seed must depend on the pair")
	}
}

func TestAggregateRejectsDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ups := randomUpdates(rng, 4, 10)
	ids := make([]int, len(ups))
	for i, u := range ups {
		ids[i] = u.ClientID
	}
	subs := make([]Submission, len(ups))
	for i, u := range ups {
		subs[i] = MaskUpdate(u, ids, 5, 10)
	}
	// Drop one submission: masks no longer cancel → must error.
	if _, err := Aggregate(subs[:3], ids); err == nil {
		t.Fatal("dropout accepted; masks would not cancel")
	}
	// Wrong participant set → must error.
	if _, err := Aggregate(subs, []int{0, 1, 2, 3}); err == nil {
		t.Fatal("mismatched participant set accepted")
	}
}

func TestAggregateEmptyAndMismatched(t *testing.T) {
	if _, err := Aggregate(nil, nil); err == nil {
		t.Fatal("empty aggregate accepted")
	}
	subs := []Submission{
		{ClientID: 0, Masked: []float64{1, 2}, NumSamples: 1},
		{ClientID: 1, Masked: []float64{1}, NumSamples: 1},
	}
	if _, err := Aggregate(subs, []int{0, 1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSecureAggregationWithinFLRound(t *testing.T) {
	// End-to-end: run one engine round manually, mask the updates, and
	// verify the secure aggregate equals the engine's FedAvg.
	// (Uses the flcore test population helpers' shape: small MLP updates.)
	rng := rand.New(rand.NewSource(4))
	ups := randomUpdates(rng, 5, 2330)
	plain := flcore.FedAvg(ups)
	secure, err := SecureFedAvg(ups, 99, 50)
	if err != nil {
		t.Fatal(err)
	}
	maxDiff := 0.0
	for i := range plain {
		if d := math.Abs(plain[i] - secure[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-8 {
		t.Fatalf("secure round diverges by %v", maxDiff)
	}
}
