package estimate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrainingTimeKnown(t *testing.T) {
	// Two tiers, 1s and 3s, 25/75 split, 100 rounds → (0.25+2.25)*100.
	got := TrainingTime([]float64{1, 3}, []float64{0.25, 0.75}, 100)
	if math.Abs(got-250) > 1e-9 {
		t.Fatalf("TrainingTime = %v, want 250", got)
	}
}

func TestTrainingTimeDegenerate(t *testing.T) {
	if got := TrainingTime([]float64{5}, []float64{1}, 0); got != 0 {
		t.Fatalf("zero rounds = %v", got)
	}
	if got := TrainingTime(nil, nil, 10); got != 0 {
		t.Fatalf("no tiers = %v", got)
	}
}

func TestTrainingTimeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	TrainingTime([]float64{1, 2}, []float64{1}, 10)
}

func TestMAPE(t *testing.T) {
	if got := MAPE(110, 100); math.Abs(got-10) > 1e-12 {
		t.Fatalf("MAPE(110,100) = %v", got)
	}
	if got := MAPE(90, 100); math.Abs(got-10) > 1e-12 {
		t.Fatalf("MAPE(90,100) = %v", got)
	}
	if got := MAPE(100, 100); got != 0 {
		t.Fatalf("MAPE of exact estimate = %v", got)
	}
}

func TestMAPEZeroActualPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero actual did not panic")
		}
	}()
	MAPE(1, 0)
}

// Property: estimation is linear in rounds and lies within
// [min latency, max latency]·rounds for any probability vector.
func TestTrainingTimeBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		lats := make([]float64, n)
		probs := make([]float64, n)
		sum := 0.0
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range lats {
			lats[i] = 0.1 + r.Float64()*100
			probs[i] = r.Float64()
			sum += probs[i]
			lo = math.Min(lo, lats[i])
			hi = math.Max(hi, lats[i])
		}
		for i := range probs {
			probs[i] /= sum
		}
		rounds := 1 + r.Intn(1000)
		got := TrainingTime(lats, probs, rounds)
		if got < lo*float64(rounds)-1e-6 || got > hi*float64(rounds)+1e-6 {
			return false
		}
		// Linearity in rounds.
		return math.Abs(TrainingTime(lats, probs, 2*rounds)-2*got) < 1e-6*(1+got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRow(t *testing.T) {
	row := NewRow("uniform", 12693, 12643)
	if row.Policy != "uniform" {
		t.Fatalf("policy = %q", row.Policy)
	}
	if math.Abs(row.MAPE-0.3955) > 0.01 {
		t.Fatalf("MAPE = %v, want ≈0.4 (Table 2)", row.MAPE)
	}
}
