// Package estimate implements TiFL's training-time estimation model
// (Section 4.5): L_all = Σ_i (L_tier_i · P_i) · R, the expected total
// training time given per-tier response latencies, tier-selection
// probabilities, and the round count, plus the MAPE metric (Eq. 7) used in
// Table 2 to validate the model against measured runs.
package estimate

import (
	"fmt"
	"math"
)

// TrainingTime returns the estimated total training time (Eq. 6) for R
// rounds with per-tier latencies L and selection probabilities P.
func TrainingTime(tierLatencies, probs []float64, rounds int) float64 {
	if len(tierLatencies) != len(probs) {
		panic(fmt.Sprintf("estimate: %d latencies vs %d probabilities", len(tierLatencies), len(probs)))
	}
	if rounds < 0 {
		panic(fmt.Sprintf("estimate: negative rounds %d", rounds))
	}
	perRound := 0.0
	for i, l := range tierLatencies {
		perRound += l * probs[i]
	}
	return perRound * float64(rounds)
}

// MAPE returns the mean absolute percentage error of an estimate against
// the actual measurement (Eq. 7): |est − act| / act × 100.
func MAPE(estimated, actual float64) float64 {
	if actual == 0 {
		panic("estimate: MAPE undefined for zero actual")
	}
	return math.Abs(estimated-actual) / math.Abs(actual) * 100
}

// Row is one line of the Table 2 comparison: a policy's estimated and
// measured training times with their MAPE.
type Row struct {
	Policy    string
	Estimated float64
	Actual    float64
	MAPE      float64
}

// NewRow builds a Table 2 row.
func NewRow(policy string, estimated, actual float64) Row {
	return Row{Policy: policy, Estimated: estimated, Actual: actual, MAPE: MAPE(estimated, actual)}
}
