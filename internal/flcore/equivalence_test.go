package flcore_test

// Engine-swap equivalence suite: the event-driven population-scale engine
// (NewTieredAsyncEngineFrom over a LazyClients source) must reproduce the
// legacy resident-population engine (NewTieredAsyncEngine over BuildClients)
// bit for bit on the same seed — commit logs, evaluation histories, uplink
// accounting, and final weights. This is the contract that lets million-
// client runs use lazy materialization without a separate code path to
// validate: everything proven about the eager engine transfers.
//
// The tests live in an external package because the managed configurations
// need internal/tiering, which imports flcore.

import (
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/nn"
	"repro/internal/simres"
	"repro/internal/tiering"
)

// eqFixture holds the shared inputs both engines derive their populations
// from. Nothing here is per-engine state: each run builds its own clients
// (eager) or factory-backed source (lazy) from these immutable pieces.
type eqFixture struct {
	n           int
	train, test *dataset.Dataset
	parts       [][]int
	cpus        []float64
	tiers       [][]int
	lat         map[int]float64
	cfg         flcore.TieredAsyncConfig
}

// eqDrift is the pure drift schedule used by the re-tiering cases: the
// three fastest clients collapse to 5% CPU from tier round 4 on. It must be
// a pure function of (id, round) — a latching closure would give the lazy
// engine, which re-materializes clients per round, different drift history
// than the eager engine's long-lived closures.
func eqDrift(id int) func(round int) float64 {
	if id >= 3 {
		return nil
	}
	return func(round int) float64 {
		if round >= 4 {
			return 0.05
		}
		return 1
	}
}

func newEqFixture(t *testing.T, n int) *eqFixture {
	t.Helper()
	train := dataset.Generate(dataset.CIFAR10Like, max(600, 2*n), 1)
	test := dataset.Generate(dataset.CIFAR10Like, 200, 2)
	fx := &eqFixture{
		n:     n,
		train: train,
		test:  test,
		parts: dataset.PartitionIID(train.Len(), n, rand.New(rand.NewSource(3))),
		cpus:  make([]float64, n),
	}
	// Three contiguous CPU groups, fastest first (what AssignGroups does,
	// minus its divisibility requirement — N=50/500 are not multiples of 3).
	groups := []float64{4, 1, 0.25}
	fx.tiers = make([][]int, 3)
	for i := 0; i < n; i++ {
		g := i * 3 / n
		fx.cpus[i] = groups[g]
		fx.tiers[g] = append(fx.tiers[g], i)
	}
	// Synthetic latency profile consistent with the CPU groups (fastest
	// first, distinct values) so Manager-built quantile tiers reproduce
	// fx.tiers exactly, member order included.
	fx.lat = make(map[int]float64, n)
	for i, cpu := range fx.cpus {
		fx.lat[i] = 1/cpu + float64(i)*1e-6
	}
	fx.cfg = flcore.TieredAsyncConfig{
		Duration: 40, ClientsPerRound: 2,
		EvalInterval: 15, Seed: 7, BatchSize: 10, LocalEpochs: 1,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, train.Dim(), []int{8}, 10, 0)
		},
		Optimizer: func(round int) nn.Optimizer { return nn.NewRMSprop(0.01, 0.995) },
		Latency:   simres.DefaultModel,
		EvalBatch: 64,
	}
	return fx
}

// eagerClients materializes the whole population the historical way.
func (fx *eqFixture) eagerClients(drift bool) []*flcore.Client {
	clients := flcore.BuildClients(fx.train, fx.test, fx.parts, fx.cpus, 20, 4)
	if drift {
		for _, c := range clients {
			c.Drift = eqDrift(c.ID)
		}
	}
	return clients
}

// factory derives single clients on demand — byte-identical to the eager
// population's entries by the BuildClient contract.
func (fx *eqFixture) factory(drift bool) flcore.ClientFactory {
	return func(id int) *flcore.Client {
		c := flcore.BuildClient(fx.train, fx.test, fx.parts[id], fx.cpus[id], 20, 4, id)
		if drift {
			c.Drift = eqDrift(id)
		}
		return c
	}
}

// manager builds a fresh live-tiering Manager over the fixture's synthetic
// latency profile. Each engine run gets its own instance: Managers are
// stateful and equivalence requires both runs to start from the same state.
func (fx *eqFixture) manager(t *testing.T, retierEvery int, adaptive bool) *tiering.Manager {
	t.Helper()
	cfg := tiering.Config{
		NumTiers: 3, RetierEvery: retierEvery,
		ClientsPerRound: fx.cfg.ClientsPerRound, Seed: fx.cfg.Seed,
	}
	if adaptive {
		cfg.Adaptive = true
		cfg.Credits = 3
	}
	mgr, err := tiering.NewManager(cfg, fx.lat)
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

// sameTieredResults asserts byte-identity of everything a tiered-async run
// reports: the commit log, per-tier counters, retier/migration totals,
// uplink accounting, the evaluation history (bit-compared, NaN-tolerant),
// and the final weight vector.
func sameTieredResults(t *testing.T, a, b *flcore.TieredAsyncResult) {
	t.Helper()
	if len(a.TierRounds) == 0 {
		t.Fatal("reference run committed no tier rounds")
	}
	if !reflect.DeepEqual(a.TierRounds, b.TierRounds) {
		n := min(len(a.TierRounds), len(b.TierRounds))
		for i := 0; i < n; i++ {
			if !reflect.DeepEqual(a.TierRounds[i], b.TierRounds[i]) {
				t.Fatalf("commit %d diverges:\n%+v\nvs\n%+v", i, a.TierRounds[i], b.TierRounds[i])
			}
		}
		t.Fatalf("commit logs differ in length: %d vs %d", len(a.TierRounds), len(b.TierRounds))
	}
	if !reflect.DeepEqual(a.Commits, b.Commits) {
		t.Fatalf("commit counts differ: %v vs %v", a.Commits, b.Commits)
	}
	if a.Retiers != b.Retiers || a.Migrations != b.Migrations {
		t.Fatalf("retier totals differ: %d/%d vs %d/%d", a.Retiers, a.Migrations, b.Retiers, b.Migrations)
	}
	if a.UplinkBytes != b.UplinkBytes {
		t.Fatalf("uplink bytes differ: %d vs %d", a.UplinkBytes, b.UplinkBytes)
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(a.History), len(b.History))
	}
	for i := range a.History {
		ra, rb := a.History[i], b.History[i]
		if ra.Round != rb.Round || ra.SimTime != rb.SimTime ||
			math.Float64bits(ra.Acc) != math.Float64bits(rb.Acc) ||
			math.Float64bits(ra.Loss) != math.Float64bits(rb.Loss) {
			t.Fatalf("history[%d] differs: %+v vs %+v", i, ra, rb)
		}
	}
	if len(a.Weights) != len(b.Weights) {
		t.Fatalf("weight lengths differ: %d vs %d", len(a.Weights), len(b.Weights))
	}
	for i := range a.Weights {
		if math.Float64bits(a.Weights[i]) != math.Float64bits(b.Weights[i]) {
			t.Fatalf("weights differ at %d: %v vs %v", i, a.Weights[i], b.Weights[i])
		}
	}
}

// eqCase is one engine configuration both populations run under.
type eqCase struct {
	name    string
	drift   bool
	codec   compress.Codec
	weight  flcore.TierWeightFunc
	managed bool // membership from a fresh tiering.Manager
	retier  int  // Manager RetierEvery (managed only)
	adapt   bool // Manager Algorithm-2 adaptive selection (managed only)
}

func eqCases() []eqCase {
	return []eqCase{
		{name: "plain-fedat", weight: core.FedATWeights()},
		{name: "int8-codec", codec: compress.NewInt8(0)},
		{name: "topk-codec", codec: compress.NewTopK(0.25)},
		{name: "adaptive-selection", managed: true, retier: 10, adapt: true},
		{name: "live-retier", managed: true, retier: 8, drift: true},
	}
}

// runEq runs one configuration on both engines and returns (eager, lazy).
func runEq(t *testing.T, fx *eqFixture, c eqCase) (*flcore.TieredAsyncResult, *flcore.TieredAsyncResult) {
	t.Helper()
	build := func() (flcore.TieredAsyncConfig, [][]int) {
		cfg := fx.cfg
		cfg.Codec = c.codec
		cfg.TierWeight = c.weight
		tiers := fx.tiers
		if c.managed {
			cfg.Manager = fx.manager(t, c.retier, c.adapt)
			tiers = nil
		}
		return cfg, tiers
	}
	eagerCfg, eagerTiers := build()
	eager := flcore.NewTieredAsyncEngine(eagerCfg, eagerTiers, fx.eagerClients(c.drift), fx.test).Run()

	lazyCfg, lazyTiers := build()
	src := flcore.NewLazyClients(fx.n, fx.factory(c.drift))
	lazy := flcore.NewTieredAsyncEngineFrom(lazyCfg, lazyTiers, src, fx.test).Run()

	if st := src.Stats(); st.Live != 0 {
		t.Fatalf("%s: %d clients still materialized after the run", c.name, st.Live)
	}
	return eager, lazy
}

// TestScaledEngineEquivalence is the engine-swap proof at the paper's scale
// (N=50) and one order up (N=500): for every configuration the event-driven
// lazy engine reproduces the legacy eager engine bit for bit.
func TestScaledEngineEquivalence(t *testing.T) {
	sizes := []int{50}
	if !testing.Short() {
		sizes = append(sizes, 500)
	}
	for _, n := range sizes {
		fx := newEqFixture(t, n)
		for _, c := range eqCases() {
			c := c
			t.Run(c.name+"/n="+strconv.Itoa(n), func(t *testing.T) {
				eager, lazy := runEq(t, fx, c)
				sameTieredResults(t, eager, lazy)
				if c.managed && c.retier > 0 && c.drift && eager.Retiers == 0 {
					t.Fatal("live-retier case never re-tiered; the equivalence check is weaker than intended")
				}
			})
		}
	}
}

// TestScaledEngineCheckpointEquivalence covers the crash path: a managed,
// compressed lazy run checkpoints mid-flight; a fresh lazy engine restored
// from the encoded snapshot must finish the job bit-identically to an
// uninterrupted eager run — and so must a fresh EAGER engine restored from
// the same (lazy-produced) checkpoint, proving the two sources share one
// checkpoint format.
func TestScaledEngineCheckpointEquivalence(t *testing.T) {
	fx := newEqFixture(t, 50)
	mkCfg := func() flcore.TieredAsyncConfig {
		cfg := fx.cfg
		cfg.Codec = compress.NewInt8(0)
		cfg.Manager = fx.manager(t, 8, false)
		return cfg
	}

	ref := flcore.NewTieredAsyncEngine(mkCfg(), nil, fx.eagerClients(true), fx.test).Run()
	if len(ref.TierRounds) < 12 {
		t.Fatalf("reference run too short for a mid-run checkpoint: %d commits", len(ref.TierRounds))
	}

	// Interrupted lazy run: capture the first periodic snapshot, encoded —
	// the restore below must work from bytes, exactly like a crash restart.
	var snap []byte
	ckCfg := mkCfg()
	ckCfg.CheckpointEvery = 10
	ckCfg.OnCheckpoint = func(c *flcore.TieredCheckpoint) {
		if snap == nil {
			data, err := c.Encode()
			if err != nil {
				t.Errorf("encoding checkpoint: %v", err)
				return
			}
			snap = data
		}
	}
	interrupted := flcore.NewTieredAsyncEngineFrom(ckCfg, nil, flcore.NewLazyClients(fx.n, fx.factory(true)), fx.test).Run()
	sameTieredResults(t, ref, interrupted)
	if snap == nil {
		t.Fatal("no checkpoint captured")
	}
	ck, err := flcore.DecodeTieredCheckpoint(snap)
	if err != nil {
		t.Fatal(err)
	}

	resumeAndCompare := func(name string, eng *flcore.TieredAsyncEngine) {
		ck2, err := flcore.DecodeTieredCheckpoint(snap) // Restore may consume state; decode fresh
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Restore(ck2); err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
		cont := eng.Run()
		if !reflect.DeepEqual(cont.Commits, ref.Commits) {
			t.Fatalf("%s: resumed commit counts %v, want %v", name, cont.Commits, ref.Commits)
		}
		if cont.UplinkBytes != ref.UplinkBytes {
			t.Fatalf("%s: resumed uplink %d, want %d", name, cont.UplinkBytes, ref.UplinkBytes)
		}
		if want := len(ref.TierRounds) - ck.Version; len(cont.TierRounds) != want {
			t.Fatalf("%s: resumed run committed %d rounds, want %d", name, len(cont.TierRounds), want)
		}
		for i, rec := range cont.TierRounds {
			if !reflect.DeepEqual(rec, ref.TierRounds[ck.Version+i]) {
				t.Fatalf("%s: resumed commit %d diverges:\n%+v\nvs\n%+v", name, i, rec, ref.TierRounds[ck.Version+i])
			}
		}
		for i := range cont.Weights {
			if math.Float64bits(cont.Weights[i]) != math.Float64bits(ref.Weights[i]) {
				t.Fatalf("%s: resumed weights differ at %d", name, i)
			}
		}
	}

	resumeAndCompare("lazy-resume",
		flcore.NewTieredAsyncEngineFrom(mkCfg(), nil, flcore.NewLazyClients(fx.n, fx.factory(true)), fx.test))
	resumeAndCompare("cross-restore-into-eager",
		flcore.NewTieredAsyncEngine(mkCfg(), nil, fx.eagerClients(true), fx.test))
}
