package flcore

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/simres"
)

// Tiered-asynchronous federated learning (FedAT-style, Chai et al., SC
// 2021): the hybrid between TiFL's synchronous tier-based rounds and the
// fully asynchronous FedAsync baseline (async.go). Each tier runs its own
// synchronous mini-FedAvg loop — every tier round selects clients from that
// tier only, trains them from the tier's pulled snapshot of the global
// model, and FedAvg-aggregates their updates — but the tiers advance
// independently over the shared simulated clock: fast tiers commit many
// rounds while a slow tier finishes one. Every committed tier round is
// mixed into the global model with a rate that is discounted by staleness
// (how many commits landed since the tier pulled) and scaled by a
// cross-tier weight that favors slower tiers (FedAT's weighted
// aggregation), so infrequent slow-tier contributions are not drowned out.
//
// All randomness is keyed on (Seed, tier round, client) exactly like the
// synchronous engine — a client belongs to one tier, so the keying is
// collision-free — which makes runs reproducible and comparable
// wall-clock-for-wall-clock with both the sync and async engines.

// TierWeightFunc maps a committing tier to its cross-tier aggregation
// weight given the per-tier commit counts so far (commits[k] includes the
// current commit of tier `tier`). The weight is a multiplier on the base
// mixing rate Alpha: 1 is neutral, above 1 boosts the tier's commits,
// below 1 damps them. Implementations live in internal/core (FedAT's
// inverted-frequency weights); nil means neutral for every tier.
type TierWeightFunc func(tier int, commits []int) float64

// TieredAsyncConfig configures a tiered-asynchronous run.
type TieredAsyncConfig struct {
	// Duration is the simulated training time budget in seconds.
	Duration float64
	// ClientsPerRound is |C| within each tier's synchronous round.
	ClientsPerRound int
	// Alpha is the base server mixing rate per committed tier round
	// (default 0.6, matching the async baseline's per-update rate).
	Alpha float64
	// StalenessExp is the staleness discount exponent a in
	// (staleness+1)^(−a) (default 0.5, matching the async baseline).
	StalenessExp float64
	// TierWeight supplies the slower-tier-favoring cross-tier weight;
	// nil means uniform (see core.FedATWeights for the FedAT policy).
	TierWeight TierWeightFunc
	// EvalInterval evaluates the global model every so many simulated
	// seconds (0 = only at the end).
	EvalInterval float64
	// BatchSize is the local mini-batch size (default 10, the paper's
	// setting).
	BatchSize int
	// LocalEpochs is the local epochs per selected client per tier round
	// (default 1).
	LocalEpochs int
	// Seed keys every random stream — model init, per-tier cohort
	// selection, and per-client local training.
	Seed int64
	// Model builds a fresh model replica (see ModelFactory).
	Model ModelFactory
	// Optimizer receives the committing tier's LOCAL round index: each
	// tier's synchronous loop owns its round-indexed schedule (LR decay
	// advances at the tier's own pace, as in FedAT), so a slow tier that
	// has only run a few rounds trains near the start of the schedule
	// even late in simulated time. Keying the schedule on the global
	// commit version instead would decay it numTiers-fold faster than
	// the sync and async engines under the same Optimizer factory.
	Optimizer OptimizerFactory
	// Latency maps client resources to simulated response latency; it must
	// be able to produce non-zero latencies or simulated time cannot
	// advance.
	Latency simres.LatencyModel
	// EvalBatch bounds evaluation batch size (0 = whole set at once).
	EvalBatch int
	// OnCommit, if set, receives every tier-round commit as it is applied
	// (the tiered analogue of Config.OnRound).
	OnCommit func(rec TierRoundRecord)
	// Codec, if set, applies error-feedback update compression exactly as
	// in the synchronous engine (Config.Codec) — the cross-tier commit
	// compression FedAT motivates: slow tiers stop paying a dense model
	// transfer per commit.
	Codec compress.Codec
}

func (c *TieredAsyncConfig) withDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.6
	}
	if c.StalenessExp == 0 {
		c.StalenessExp = 0.5
	}
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 10
	}
}

// TierRoundRecord captures one committed tier round.
type TierRoundRecord struct {
	// Tier is the committing tier (0 = fastest), TierRound its local round
	// counter, Version the global commit index this commit produced.
	Tier, TierRound, Version int
	// Selected are the tier members trained this round.
	Selected []int
	// Staleness is the number of global commits that landed between this
	// tier's pull and its commit.
	Staleness int
	// Weight is the effective mixing rate applied (alpha after tier
	// weighting and staleness discount).
	Weight float64
	// Latency is the tier round's duration (max over selected clients);
	// SimTime the simulated time at commit.
	Latency, SimTime float64
	// UplinkBytes is the tier round's total encoded update traffic.
	UplinkBytes int64
}

// TieredAsyncResult extends Result with the per-tier commit log.
type TieredAsyncResult struct {
	Result
	// TierRounds is every committed tier round in commit order.
	TierRounds []TierRoundRecord
	// Commits counts committed rounds per tier.
	Commits []int
}

// tierRun is one in-flight tier round in the event queue.
type tierRun struct {
	tier      int
	tierRound int
	pulledVer int     // global version at dispatch (pull) time
	finish    float64 // simulated completion time
	selected  []int
	weights   []float64 // tier-level FedAvg of the round's client updates
	latency   float64
	upBytes   int64 // total encoded uplink bytes of the round's updates
}

type tierRunHeap []*tierRun

func (h tierRunHeap) Len() int { return len(h) }
func (h tierRunHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].tier < h[j].tier // deterministic tie-break
}
func (h tierRunHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *tierRunHeap) Push(x any)   { *h = append(*h, x.(*tierRun)) }
func (h *tierRunHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TieredAsyncEngine drives tiered-asynchronous training: one synchronous
// mini-FedAvg loop per tier, asynchronous staleness-weighted commits into
// the shared global model.
type TieredAsyncEngine struct {
	Cfg     TieredAsyncConfig
	Tiers   [][]int // member client indices per tier, fastest first
	Clients []*Client
	Test    *dataset.Dataset

	eng     *Engine // reused for TrainClient's deterministic local pass
	weights []float64
	clock   simres.Clock
	version int
	rounds  []int // per-tier local round counters
}

// NewTieredAsyncEngine validates the configuration and tier membership and
// builds the engine. Tiers are ordered fastest first (core.BuildTiers
// order); every tier must be non-empty and the tiers disjoint — the
// collision-free rng keying depends on each client belonging to one tier.
func NewTieredAsyncEngine(cfg TieredAsyncConfig, tiers [][]int, clients []*Client, test *dataset.Dataset) *TieredAsyncEngine {
	cfg.withDefaults()
	if cfg.Duration <= 0 || cfg.ClientsPerRound <= 0 || cfg.Model == nil || cfg.Optimizer == nil {
		panic(fmt.Sprintf("flcore: invalid TieredAsyncConfig %+v", cfg))
	}
	if zeroLatency(cfg.Latency) {
		panic("flcore: TieredAsyncConfig.Latency produces zero response latency; simulated time cannot advance")
	}
	if len(tiers) == 0 {
		panic("flcore: tiered-async needs at least one tier")
	}
	tierOf := make(map[int]int, len(clients))
	for i, members := range tiers {
		if len(members) == 0 {
			panic(fmt.Sprintf("flcore: tier %d is empty", i))
		}
		for _, ci := range members {
			if ci < 0 || ci >= len(clients) {
				panic(fmt.Sprintf("flcore: tier %d member %d out of range [0,%d)", i, ci, len(clients)))
			}
			if prev, dup := tierOf[ci]; dup {
				panic(fmt.Sprintf("flcore: client %d in tiers %d and %d", ci, prev, i))
			}
			tierOf[ci] = i
		}
	}
	global := cfg.Model(rand.New(rand.NewSource(cfg.Seed)))
	resetResiduals(clients)
	syncCfg := Config{
		Rounds: 1, ClientsPerRound: 1, LocalEpochs: cfg.LocalEpochs,
		BatchSize: cfg.BatchSize, Seed: cfg.Seed,
		Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: cfg.Latency,
		Codec: cfg.Codec,
	}
	return &TieredAsyncEngine{
		Cfg:     cfg,
		Tiers:   tiers,
		Clients: clients,
		Test:    test,
		eng:     &Engine{Cfg: syncCfg, Clients: clients, global: global},
		weights: global.WeightsVector(),
		rounds:  make([]int, len(tiers)),
	}
}

// GlobalWeights returns the current global weight vector (not a copy).
func (e *TieredAsyncEngine) GlobalWeights() []float64 { return e.weights }

// Clock returns the engine's simulated clock.
func (e *TieredAsyncEngine) Clock() *simres.Clock { return &e.clock }

// TierCohort draws tier t's participants for its local round r from the
// tier's member list: everyone when want covers the tier, otherwise a
// permutation prefix from an rng keyed on (seed, tier round, tier). A client
// belongs to exactly one tier, so the keying never collides with the
// per-client training streams. Exported so the socket runtime
// (flnet.TieredAsyncAggregator) draws cohorts identical to the simulated
// engine's under the same seed and tier membership.
func TierCohort(seed int64, tierRound, tier int, members []int, want int) []int {
	if want >= len(members) {
		return append([]int(nil), members...)
	}
	rng := rand.New(rand.NewSource(mix(seed, tierRound, -(100 + tier))))
	perm := rng.Perm(len(members))
	out := make([]int, want)
	for i := range out {
		out[i] = members[perm[i]]
	}
	return out
}

// dispatch runs tier t's next synchronous mini-round from the current
// global model and queues its completion event. The round's clients are
// drawn with an rng keyed on (Seed, tier round, tier), and each client's
// local pass is keyed on (Seed, tier round, client) via Engine.TrainClient,
// so dispatch order cannot perturb results.
func (e *TieredAsyncEngine) dispatch(t int, now float64, h *tierRunHeap) {
	r := e.rounds[t]
	e.rounds[t]++
	selected := TierCohort(e.Cfg.Seed, r, t, e.Tiers[t], e.Cfg.ClientsPerRound)
	pulled := append([]float64(nil), e.weights...)
	updates := make([]Update, len(selected))
	for i, ci := range selected {
		updates[i] = e.eng.TrainClient(r, ci, pulled)
	}
	lat := MaxLatency(updates)
	var upBytes int64
	for _, u := range updates {
		upBytes += int64(u.WireBytes)
	}
	heap.Push(h, &tierRun{
		tier: t, tierRound: r, pulledVer: e.version,
		finish: now + lat, selected: selected,
		weights: FedAvg(updates), latency: lat, upBytes: upBytes,
	})
}

// zeroLatency reports whether the model can only produce zero latencies —
// a duration-bounded event loop over such a model would never terminate.
func zeroLatency(m simres.LatencyModel) bool {
	return m.CostPerSample <= 0 && m.CommLatency <= 0 && m.CommPerParam <= 0
}

// CommitMix folds one committed tier round into the global weight vector in
// place: the effective rate is alpha scaled by the cross-tier weight and
// discounted by staleness as (staleness+1)^(−stalenessExp), clamped to 1.
// It returns the effective rate applied. This is THE FedAT mixing rule —
// shared with the socket runtime (flnet.TieredAsyncAggregator) so the
// simulated and distributed global models cannot drift apart.
func CommitMix(global, commit []float64, alpha, tierWeight float64, staleness int, stalenessExp float64) float64 {
	a := alpha * tierWeight * math.Pow(float64(staleness)+1, -stalenessExp)
	if a > 1 {
		a = 1
	}
	for i := range global {
		global[i] = (1-a)*global[i] + a*commit[i]
	}
	return a
}

// tierWeight evaluates the configured cross-tier weight for a commit.
func (e *TieredAsyncEngine) tierWeight(tier int, commits []int) float64 {
	if e.Cfg.TierWeight == nil {
		return 1
	}
	w := e.Cfg.TierWeight(tier, commits)
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("flcore: tier weight %v for tier %d", w, tier))
	}
	return w
}

// Run executes tiered-asynchronous training until the simulated duration
// elapses, returning the result with history sampled at EvalInterval
// boundaries (Round counts global commits) plus the full commit log.
func (e *TieredAsyncEngine) Run() *TieredAsyncResult {
	res := &TieredAsyncResult{Commits: make([]int, len(e.Tiers))}
	h := &tierRunHeap{}
	heap.Init(h)
	for t := range e.Tiers {
		e.dispatch(t, 0, h)
	}

	nextEval := e.Cfg.EvalInterval
	evalNow := func(now float64) {
		rec := RoundRecord{Round: e.version, SimTime: now, Acc: math.NaN(), Loss: math.NaN()}
		if e.Test != nil {
			e.eng.global.SetWeightsVector(e.weights)
			rec.Acc, rec.Loss = e.eng.global.Evaluate(e.Test.InputTensor(), e.Test.Y, e.Cfg.EvalBatch)
		}
		res.History = append(res.History, rec)
	}

	for h.Len() > 0 {
		run := heap.Pop(h).(*tierRun)
		if run.finish > e.Cfg.Duration {
			break
		}
		e.clock.Advance(run.finish - e.clock.Now())
		now := e.clock.Now()
		for e.Cfg.EvalInterval > 0 && now >= nextEval {
			evalNow(nextEval)
			nextEval += e.Cfg.EvalInterval
		}

		res.Commits[run.tier]++
		staleness := e.version - run.pulledVer
		alpha := CommitMix(e.weights, run.weights, e.Cfg.Alpha,
			e.tierWeight(run.tier, res.Commits), staleness, e.Cfg.StalenessExp)
		e.version++

		res.UplinkBytes += run.upBytes
		rec := TierRoundRecord{
			Tier: run.tier, TierRound: run.tierRound, Version: e.version,
			Selected: run.selected, Staleness: staleness, Weight: alpha,
			Latency: run.latency, SimTime: now, UplinkBytes: run.upBytes,
		}
		res.TierRounds = append(res.TierRounds, rec)
		if e.Cfg.OnCommit != nil {
			e.Cfg.OnCommit(rec)
		}
		e.dispatch(run.tier, now, h)
	}
	evalNow(e.clock.Now())
	final := res.History[len(res.History)-1]
	res.FinalAcc, res.FinalLoss = final.Acc, final.Loss
	res.TotalTime = e.clock.Now()
	res.Weights = append([]float64(nil), e.weights...)
	return res
}

// RunTieredAsync is the one-shot convenience wrapper mirroring RunAsync.
func RunTieredAsync(cfg TieredAsyncConfig, tiers [][]int, clients []*Client, test *dataset.Dataset) *TieredAsyncResult {
	return NewTieredAsyncEngine(cfg, tiers, clients, test).Run()
}
