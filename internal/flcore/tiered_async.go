package flcore

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/simres"
	"repro/internal/tensor"
)

// Tiered-asynchronous federated learning (FedAT-style, Chai et al., SC
// 2021): the hybrid between TiFL's synchronous tier-based rounds and the
// fully asynchronous FedAsync baseline (async.go). Each tier runs its own
// synchronous mini-FedAvg loop — every tier round selects clients from that
// tier only, trains them from the tier's pulled snapshot of the global
// model, and FedAvg-aggregates their updates — but the tiers advance
// independently over the shared simulated clock: fast tiers commit many
// rounds while a slow tier finishes one. Every committed tier round is
// mixed into the global model with a rate that is discounted by staleness
// (how many commits landed since the tier pulled) and scaled by a
// cross-tier weight that favors slower tiers (FedAT's weighted
// aggregation), so infrequent slow-tier contributions are not drowned out.
//
// All randomness is keyed on (Seed, tier round, client) exactly like the
// synchronous engine — a client belongs to one tier, so the keying is
// collision-free — which makes runs reproducible and comparable
// wall-clock-for-wall-clock with both the sync and async engines.

// TierMove is one client migrating between tiers at a re-tiering point.
type TierMove struct {
	// Client is the migrating client index; From/To its old and new tier.
	Client, From, To int
}

// TierManager is the live tiering subsystem contract both tiered-async
// engines (this simulated one and flnet.TieredAsyncAggregator) consume.
// The canonical implementation is internal/tiering.Manager: it owns tier
// membership, folds observed per-client latencies into EWMA estimates,
// periodically rebuilds tiers (core.BuildTiers with hysteresis), and draws
// each tier round's cohort — uniformly, or via Algorithm-2 adaptive sizing
// (accuracy-driven tier probabilities under per-tier credit budgets). The
// interface lives here rather than in internal/tiering so flcore does not
// import the packages built on top of it (core imports flcore already).
//
// All methods must be deterministic given the same call sequence: the
// simulated engine and the socket runtime replay identical sequences under
// lockstep scheduling, which is what keeps their global models
// byte-identical through a migration.
type TierManager interface {
	// Tiers returns the current membership, fastest tier first. The result
	// is a copy; it stays valid after later re-tierings.
	Tiers() [][]int
	// Observe folds one observed response latency (seconds) into the
	// client's running estimate. Engines call it once per committed update.
	Observe(client int, seconds float64)
	// ObserveAccuracy records per-tier test accuracies (index = tier) for
	// Algorithm-2 adaptive selection. Engines without evaluation data
	// (the socket runtime) never call it; the Manager then falls back to
	// commit-share-driven probabilities.
	ObserveAccuracy(accs []float64)
	// Cohort draws tier t's participants for its local round — the live
	// replacement for the static TierCohort draw, identically seed-keyed.
	// want is the base cohort size (adaptive selection may shrink or grow
	// it within the tier).
	Cohort(tier, tierRound, want int) []int
	// MaybeRetier is called after every global commit with the new version.
	// At rebuild points it re-tiers from the current latency estimates and
	// returns the new membership, the migrations, and true; otherwise
	// (including rebuilds that moved nobody) it returns false.
	MaybeRetier(version int) (tiers [][]int, moves []TierMove, changed bool)
}

// CommObserver is the optional comm-aware extension of TierManager: a
// Manager implementing it receives the full per-client round observation —
// the client-measured compute seconds, the end-to-end response time, and
// the wire bytes the round moved for that client — instead of the bare
// Observe(seconds) call. Both tiered-async engines probe for it at commit
// time, so re-tiering can rank clients by what a round actually costs
// (transfer included) rather than compute latency alone. The canonical
// implementation is internal/tiering.Manager, which keys the behavior on
// its CommAware config so observation-richness alone never changes
// placement.
type CommObserver interface {
	ObserveRound(client int, seconds, endToEnd float64, bytes int64)
}

// TierWeightFunc maps a committing tier to its cross-tier aggregation
// weight given the per-tier commit counts so far (commits[k] includes the
// current commit of tier `tier`). The weight is a multiplier on the base
// mixing rate Alpha: 1 is neutral, above 1 boosts the tier's commits,
// below 1 damps them. Implementations live in internal/core (FedAT's
// inverted-frequency weights); nil means neutral for every tier.
type TierWeightFunc func(tier int, commits []int) float64

// TieredAsyncConfig configures a tiered-asynchronous run.
type TieredAsyncConfig struct {
	// Duration is the simulated training time budget in seconds.
	Duration float64
	// ClientsPerRound is |C| within each tier's synchronous round.
	ClientsPerRound int
	// Alpha is the base server mixing rate per committed tier round
	// (default 0.6, matching the async baseline's per-update rate).
	Alpha float64
	// StalenessExp is the staleness discount exponent a in
	// (staleness+1)^(−a) (default 0.5, matching the async baseline).
	StalenessExp float64
	// TierWeight supplies the slower-tier-favoring cross-tier weight;
	// nil means uniform (see core.FedATWeights for the FedAT policy).
	TierWeight TierWeightFunc
	// EvalInterval evaluates the global model every so many simulated
	// seconds (0 = only at the end).
	EvalInterval float64
	// BatchSize is the local mini-batch size (default 10, the paper's
	// setting).
	BatchSize int
	// LocalEpochs is the local epochs per selected client per tier round
	// (default 1).
	LocalEpochs int
	// Seed keys every random stream — model init, per-tier cohort
	// selection, and per-client local training.
	Seed int64
	// Model builds a fresh model replica (see ModelFactory).
	Model ModelFactory
	// Optimizer receives the committing tier's LOCAL round index: each
	// tier's synchronous loop owns its round-indexed schedule (LR decay
	// advances at the tier's own pace, as in FedAT), so a slow tier that
	// has only run a few rounds trains near the start of the schedule
	// even late in simulated time. Keying the schedule on the global
	// commit version instead would decay it numTiers-fold faster than
	// the sync and async engines under the same Optimizer factory.
	Optimizer OptimizerFactory
	// Latency maps client resources to simulated response latency; it must
	// be able to produce non-zero latencies or simulated time cannot
	// advance.
	Latency simres.LatencyModel
	// EvalBatch bounds evaluation batch size (0 = whole set at once).
	EvalBatch int
	// OnCommit, if set, receives every tier-round commit as it is applied
	// (the tiered analogue of Config.OnRound).
	OnCommit func(rec TierRoundRecord)
	// Codec, if set, applies error-feedback update compression exactly as
	// in the synchronous engine (Config.Codec) — the cross-tier commit
	// compression FedAT motivates: slow tiers stop paying a dense model
	// transfer per commit.
	Codec compress.Codec
	// Downlink, if set, delta-compresses the broadcast direction: each
	// tier keeps a compress.Chain advanced once per tier round, clients
	// whose last participation matches the chain's base are charged the
	// shared delta payload, and everyone else (first contact, migration,
	// resume) is charged a dense snapshot. Chain state is a pure function
	// of the broadcast sequence, so the socket runtime
	// (flnet.TieredAsyncAggregator) configured with the same spec reports
	// identical DownlinkBytes on the same seed. nil keeps dense
	// broadcasts.
	Downlink *compress.Downlink
	// Manager, if set, makes tiering live: every committed tier round's
	// observed client latencies are fed to it, and at its rebuild points
	// clients migrate between the running tier loops (the engine swaps its
	// membership view; in-flight rounds complete under the membership they
	// were dispatched with). Cohorts are then drawn through the Manager
	// (Algorithm-2 adaptive selection when enabled) instead of the static
	// TierCohort draw. nil keeps the tiers frozen as constructed.
	Manager TierManager
	// ChurnRate, when positive, flaps each drawn cohort member out of its
	// round with this probability: a deterministic coin keyed on
	// (ChurnSeed, tier, tier round, client) models the worker being
	// disconnected when the round dispatched. A flapped client's update
	// never reaches FedAvg and its downlink-delta ack is forgotten —
	// mirroring the socket runtime, where a reconnecting worker
	// re-registers with no held base and falls back to a dense broadcast.
	// Must be < 1; rounds whose whole cohort flapped consume their round
	// index and redraw, exactly like dead-cohort rounds over sockets.
	ChurnRate float64
	// ChurnSeed keys the flap coins independently of the training streams
	// (0 = derive from Seed), so the same run can be replayed under a
	// different churn pattern without touching model randomness.
	ChurnSeed int64
	// CheckpointEvery, when positive, snapshots the engine every so many
	// global commits and hands the checkpoint to OnCheckpoint. A Manager
	// used with checkpointing must implement TierManagerState.
	CheckpointEvery int
	// OnCheckpoint receives each periodic snapshot (see CheckpointEvery);
	// typical handlers call TieredCheckpoint.SaveFile.
	OnCheckpoint func(c *TieredCheckpoint)
}

func (c *TieredAsyncConfig) withDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.6
	}
	if c.StalenessExp == 0 {
		c.StalenessExp = 0.5
	}
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 10
	}
}

// TierRoundRecord captures one committed tier round.
type TierRoundRecord struct {
	// Tier is the committing tier (0 = fastest), TierRound its local round
	// counter, Version the global commit index this commit produced.
	Tier, TierRound, Version int
	// Selected are the tier members trained this round.
	Selected []int
	// Staleness is the number of global commits that landed between this
	// tier's pull and its commit.
	Staleness int
	// Weight is the effective mixing rate applied (alpha after tier
	// weighting and staleness discount).
	Weight float64
	// Latency is the tier round's duration (max over selected clients);
	// SimTime the simulated time at commit.
	Latency, SimTime float64
	// UplinkBytes is the tier round's total encoded update traffic.
	UplinkBytes int64
	// DownlinkBytes is the tier round's total broadcast traffic as charged
	// on the wire: delta payloads for chain-eligible clients under
	// downlink compression, dense snapshots otherwise.
	DownlinkBytes int64
}

// TieredAsyncResult extends Result with the per-tier commit log.
type TieredAsyncResult struct {
	Result
	// TierRounds is every committed tier round in commit order.
	TierRounds []TierRoundRecord
	// Commits counts committed rounds per tier.
	Commits []int
	// Retiers counts membership rebuilds that actually moved clients
	// (Manager runs only); Migrations is the total clients moved.
	Retiers, Migrations int
	// DownlinkBytes is the run's total broadcast traffic as charged on the
	// wire (see TierRoundRecord.DownlinkBytes).
	DownlinkBytes int64
}

// tierRun is one in-flight tier round in the event queue.
type tierRun struct {
	tier      int
	tierRound int
	pulledVer int     // global version at dispatch (pull) time
	finish    float64 // simulated completion time
	selected  []int
	weights   []float64 // tier-level FedAvg of the round's client updates
	latency   float64
	lats      []float64 // per-client observed latencies, parallel to selected
	upBytes   int64     // total encoded uplink bytes of the round's updates
	downBytes int64     // total broadcast bytes charged for the round
	bytes     []int64   // per-client down+up wire bytes, parallel to selected
}

type tierRunHeap []*tierRun

func (h tierRunHeap) Len() int { return len(h) }
func (h tierRunHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].tier < h[j].tier // deterministic tie-break
}
func (h tierRunHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *tierRunHeap) Push(x any)   { *h = append(*h, x.(*tierRun)) }
func (h *tierRunHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TieredAsyncEngine drives tiered-asynchronous training: one synchronous
// mini-FedAvg loop per tier, asynchronous staleness-weighted commits into
// the shared global model.
type TieredAsyncEngine struct {
	Cfg   TieredAsyncConfig
	Tiers [][]int // member client indices per tier, fastest first
	// Clients is the resident population when the engine was built over an
	// eager source (NewTieredAsyncEngine); nil for population-scale engines
	// built over a lazy ClientSource, which materialize clients per round.
	Clients []*Client
	Test    *dataset.Dataset

	// src is where the engine gets its clients: an EagerClients wrapper
	// around Clients, or a LazyClients factory for population-scale runs.
	src ClientSource

	eng     *Engine // reused for TrainClient's deterministic local pass
	weights []float64
	clock   simres.Clock
	version int
	rounds  []int // per-tier local round counters

	// Run-loop state lives on the engine (not in Run locals) so Snapshot
	// can capture a mid-run engine and Restore can rebuild one: the event
	// queue of in-flight tier rounds, the next eval boundary, and the
	// cumulative per-tier commit counters the cross-tier weights consume.
	pending    tierRunHeap
	nextEval   float64
	commits    []int
	retiers    int
	migrations int
	uplink     int64
	downlink   int64
	resumed    bool

	// Downlink-delta state (Cfg.Downlink only): one chain per tier, the
	// global version each chain last advanced at, and the (tier, version)
	// of every ever-selected client's last participation — the sim mirror
	// of the socket runtime's per-worker ack tracking, kept sparse like
	// the residual maps so population-scale runs stay affordable.
	downChains []*compress.Chain
	downVers   []int
	acked      map[int]ackRef

	// tierTest caches the per-tier pooled evaluation shards for adaptive
	// accuracy feedback; rebuilt lazily when membership changes.
	tierTest      []*dataset.Dataset
	tierTestEpoch int
	retierEpoch   int
}

// NewTieredAsyncEngine validates the configuration and tier membership and
// builds the engine from a resident client slice. It is a thin shim over
// NewTieredAsyncEngineFrom with an EagerClients source — the slice-based
// and source-based constructors were unified behind the same engine, so
// every behaviour documented there (determinism, Manager ownership,
// per-client bookkeeping) holds identically here; only client
// materialization differs. Tiers are ordered fastest first
// (core.BuildTiers order); every tier must be non-empty and the tiers
// disjoint. When
// Cfg.Manager is set, tiers may be nil — membership then comes from the
// Manager, which owns it for the rest of the run. Randomness stays keyed on
// (Seed, tier round, client); under live re-tiering a migrated client can
// revisit a (round, client) key it trained under in its old tier, which
// reuses that key's random stream — still fully deterministic, just no
// longer collision-free across the whole run.
func NewTieredAsyncEngine(cfg TieredAsyncConfig, tiers [][]int, clients []*Client, test *dataset.Dataset) *TieredAsyncEngine {
	return NewTieredAsyncEngineFrom(cfg, tiers, NewEagerClients(clients), test)
}

// NewTieredAsyncEngineFrom is the source-based constructor: the engine's
// clients come from src instead of a resident slice, which is what makes
// million-client populations affordable — with a LazyClients source only
// the round's cohort is ever materialized, and all server-side per-client
// bookkeeping (error-feedback residuals, Manager EWMAs) stays keyed on the
// ever-selected clients only. Construction itself holds no per-client
// state: tier validation uses a transient membership bitmap, never a map of
// the population.
func NewTieredAsyncEngineFrom(cfg TieredAsyncConfig, tiers [][]int, src ClientSource, test *dataset.Dataset) *TieredAsyncEngine {
	cfg.withDefaults()
	if cfg.Duration <= 0 || cfg.ClientsPerRound <= 0 || cfg.Model == nil || cfg.Optimizer == nil {
		panic(fmt.Sprintf("flcore: invalid TieredAsyncConfig %+v", cfg))
	}
	if src == nil {
		panic("flcore: tiered-async needs a ClientSource")
	}
	if tiers == nil && cfg.Manager != nil {
		tiers = cfg.Manager.Tiers()
	}
	if zeroLatency(cfg.Latency) {
		panic("flcore: TieredAsyncConfig.Latency produces zero response latency; simulated time cannot advance")
	}
	if cfg.ChurnRate < 0 || cfg.ChurnRate >= 1 {
		panic(fmt.Sprintf("flcore: ChurnRate %v outside [0,1)", cfg.ChurnRate))
	}
	if len(tiers) == 0 {
		panic("flcore: tiered-async needs at least one tier")
	}
	n := src.NumClients()
	seen := make([]bool, n)
	for i, members := range tiers {
		if len(members) == 0 {
			panic(fmt.Sprintf("flcore: tier %d is empty", i))
		}
		for _, ci := range members {
			if ci < 0 || ci >= n {
				panic(fmt.Sprintf("flcore: tier %d member %d out of range [0,%d)", i, ci, n))
			}
			if seen[ci] {
				panic(fmt.Sprintf("flcore: client %d in two tiers", ci))
			}
			seen[ci] = true
		}
	}
	if cfg.CheckpointEvery > 0 && cfg.Manager != nil {
		if _, ok := cfg.Manager.(TierManagerState); !ok {
			panic("flcore: CheckpointEvery set but the TierManager does not implement TierManagerState")
		}
	}
	global := cfg.Model(rand.New(rand.NewSource(cfg.Seed)))
	var clients []*Client
	if eager, ok := src.(*EagerClients); ok {
		// Eager populations keep the historical semantics: the slice stays
		// addressable on the engine and each job starts with clean
		// error-feedback residuals. A fresh LazyClients source starts clean
		// by construction and owns its residuals itself.
		clients = eager.Slice()
		resetResiduals(clients)
	}
	syncCfg := Config{
		Rounds: 1, ClientsPerRound: 1, LocalEpochs: cfg.LocalEpochs,
		BatchSize: cfg.BatchSize, Seed: cfg.Seed,
		Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: cfg.Latency,
		Codec: cfg.Codec,
	}
	e := &TieredAsyncEngine{
		Cfg:      cfg,
		Tiers:    tiers,
		Clients:  clients,
		Test:     test,
		src:      src,
		eng:      &Engine{Cfg: syncCfg, Clients: clients, global: global},
		weights:  global.WeightsVector(),
		rounds:   make([]int, len(tiers)),
		commits:  make([]int, len(tiers)),
		nextEval: cfg.EvalInterval,
	}
	e.resetDownlink()
	return e
}

// ackRef is one client's last participation under the downlink-delta
// scheme: the tier whose round it trained in and the global version of
// that round's broadcast.
type ackRef struct{ tier, ver int }

// resetDownlink (re)initializes the per-tier delta chains and the ack map
// — fresh construction and checkpoint restore alike, since a resumed run
// cannot trust any client's held version and must fall back to dense.
func (e *TieredAsyncEngine) resetDownlink() {
	if e.Cfg.Downlink == nil {
		return
	}
	e.downChains = make([]*compress.Chain, len(e.Tiers))
	e.downVers = make([]int, len(e.Tiers))
	for t := range e.downChains {
		e.downChains[t] = e.Cfg.Downlink.NewChain()
		e.downVers[t] = -1
	}
	e.acked = make(map[int]ackRef)
}

// numClients returns the registered population size N.
func (e *TieredAsyncEngine) numClients() int { return e.src.NumClients() }

// Source returns the engine's client source.
func (e *TieredAsyncEngine) Source() ClientSource { return e.src }

// GlobalWeights returns the current global weight vector (not a copy).
func (e *TieredAsyncEngine) GlobalWeights() []float64 { return e.weights }

// Clock returns the engine's simulated clock.
func (e *TieredAsyncEngine) Clock() *simres.Clock { return &e.clock }

// TierCohort draws tier t's participants for its local round r from the
// tier's member list: everyone when want covers the tier, otherwise a
// permutation prefix from an rng keyed on (seed, tier round, tier). A client
// belongs to exactly one tier, so the keying never collides with the
// per-client training streams. Exported so the socket runtime
// (flnet.TieredAsyncAggregator) draws cohorts identical to the simulated
// engine's under the same seed and tier membership.
func TierCohort(seed int64, tierRound, tier int, members []int, want int) []int {
	if want >= len(members) {
		return append([]int(nil), members...)
	}
	rng := rand.New(rand.NewSource(mix(seed, tierRound, -(100 + tier))))
	perm := rng.Perm(len(members))
	out := make([]int, want)
	for i := range out {
		out[i] = members[perm[i]]
	}
	return out
}

// dispatch runs tier t's next synchronous mini-round from the current
// global model and queues its completion event. The round's clients are
// drawn with an rng keyed on (Seed, tier round, tier), and each client's
// local pass is keyed on (Seed, tier round, client) via Engine.TrainClient,
// so dispatch order cannot perturb results.
func (e *TieredAsyncEngine) dispatch(t int, now float64) {
	draw := func() (int, []int) {
		r := e.rounds[t]
		e.rounds[t]++
		if e.Cfg.Manager != nil {
			return r, e.Cfg.Manager.Cohort(t, r, e.Cfg.ClientsPerRound)
		}
		return r, TierCohort(e.Cfg.Seed, r, t, e.Tiers[t], e.Cfg.ClientsPerRound)
	}
	r, selected := draw()
	if len(selected) == 0 {
		// Defensive: the Manager guarantees non-empty tiers, but a
		// membership that somehow shrank to nothing has no runnable round
		// — drop the tier from the event loop instead of panicking.
		return
	}
	if e.Cfg.ChurnRate > 0 {
		// A fully-flapped round consumes its round index and redraws —
		// the same advance-and-retry the socket runtime applies to rounds
		// whose whole cohort died. The flap coins are keyed per round, so
		// with ChurnRate < 1 a runnable cohort arrives almost surely; the
		// attempt bound is a defensive backstop, dropping the tier like an
		// emptied membership would.
		selected = e.churnFilter(t, r, selected)
		for attempts := 0; len(selected) == 0 && attempts < 1000; attempts++ {
			if r, selected = draw(); len(selected) == 0 {
				return
			}
			selected = e.churnFilter(t, r, selected)
		}
		if len(selected) == 0 {
			return
		}
	}
	pulled := append([]float64(nil), e.weights...)
	// Downlink charging: every client is charged a dense snapshot unless
	// the tier's delta chain covers it — the chain advances exactly once
	// per round (shared payload, the O(1)-per-round encode), clients whose
	// last participation matches the chain's base get the payload size,
	// and the round then trains from the chain's post-round base so lossy
	// broadcasts affect the model here exactly as they do over sockets.
	dense := int64(compress.DenseBytes(len(pulled)))
	downs := make([]int64, len(selected))
	for i := range downs {
		downs[i] = dense
	}
	if e.Cfg.Downlink != nil {
		ch := e.downChains[t]
		if !ch.HasBase() {
			ch.Adopt(pulled)
		} else {
			payload, _ := ch.Encode(pulled)
			baseVer := e.downVers[t]
			for i, ci := range selected {
				if a, ok := e.acked[ci]; ok && a.tier == t && a.ver == baseVer {
					downs[i] = int64(len(payload))
				}
			}
		}
		e.downVers[t] = e.version
		for _, ci := range selected {
			e.acked[ci] = ackRef{tier: t, ver: e.version}
		}
		pulled = append(pulled[:0], ch.Base()...)
	}
	updates := make([]Update, len(selected))
	// The round's cohort is materialized through the source for exactly the
	// span of its local training: acquire everyone (so the round is a unit
	// of client-state lifetime), train, aggregate, release. With a lazy
	// source this is THE memory bound of a population-scale run — at most
	// one cohort of client state is ever resident.
	acquired := make([]*Client, len(selected))
	for i, ci := range selected {
		acquired[i] = e.src.Acquire(ci)
	}
	for i, c := range acquired {
		if e.Cfg.Downlink != nil {
			updates[i] = e.eng.TrainClientComm(r, c, pulled, int(downs[i]))
		} else {
			updates[i] = e.eng.TrainClientOn(r, c, pulled)
		}
	}
	agg := FedAvg(updates)
	for _, c := range acquired {
		e.src.Release(c)
	}
	lat := MaxLatency(updates)
	lats := make([]float64, len(updates))
	bytesPer := make([]int64, len(updates))
	var upBytes, downBytes int64
	for i, u := range updates {
		upBytes += int64(u.WireBytes)
		downBytes += downs[i]
		bytesPer[i] = downs[i] + int64(u.WireBytes)
		lats[i] = u.Latency
	}
	heap.Push(&e.pending, &tierRun{
		tier: t, tierRound: r, pulledVer: e.version,
		finish: now + lat, selected: selected,
		weights: agg, latency: lat, lats: lats, upBytes: upBytes,
		downBytes: downBytes, bytes: bytesPer,
	})
}

// churnFilter drops a round's flapped clients: each coin models the member
// being disconnected when the round dispatched, so its update never reaches
// the round's FedAvg and — mirroring a socket-runtime reconnect, which
// re-registers holding no downlink base — its delta-chain ack is forgotten
// and its next participation is charged a dense snapshot.
func (e *TieredAsyncEngine) churnFilter(t, r int, selected []int) []int {
	cs := e.Cfg.ChurnSeed
	if cs == 0 {
		cs = e.Cfg.Seed
	}
	kept := make([]int, 0, len(selected))
	for _, ci := range selected {
		if churnFlap(cs, t, r, ci, e.Cfg.ChurnRate) {
			if e.acked != nil {
				delete(e.acked, ci)
			}
			continue
		}
		kept = append(kept, ci)
	}
	return kept
}

// churnFlap is the deterministic per-(tier, round, client) churn coin,
// keyed disjointly from both the cohort draw (-(100+tier)) and the
// per-client training streams.
func churnFlap(seed int64, tier, round, client int, rate float64) bool {
	rng := rand.New(rand.NewSource(mix(mix(seed, round, -(500+tier)), client, -977)))
	return rng.Float64() < rate
}

// zeroLatency reports whether the model can only produce zero latencies —
// a duration-bounded event loop over such a model would never terminate.
func zeroLatency(m simres.LatencyModel) bool {
	return m.CostPerSample <= 0 && m.CommLatency <= 0 && m.CommPerParam <= 0
}

// CommitMix folds one committed tier round into the global weight vector in
// place: the effective rate is alpha scaled by the cross-tier weight and
// discounted by staleness as (staleness+1)^(−stalenessExp), clamped to 1.
// It returns the effective rate applied. This is THE FedAT mixing rule —
// shared with the socket runtime (flnet.TieredAsyncAggregator) so the
// simulated and distributed global models cannot drift apart.
func CommitMix(global, commit []float64, alpha, tierWeight float64, staleness int, stalenessExp float64) float64 {
	a := alpha * tierWeight * math.Pow(float64(staleness)+1, -stalenessExp)
	if a > 1 {
		a = 1
	}
	// Chunk-parallel over elements: each element's mix is independent, so
	// sharding cannot change results (the per-element expression is
	// unchanged from the historical serial loop).
	tensor.ParallelChunks(len(global), 3*len(global), func(lo, hi int) {
		g := global[lo:hi]
		c := commit[lo:hi:hi]
		for i := range g {
			g[i] = (1-a)*g[i] + a*c[i]
		}
	})
	return a
}

// tierWeight evaluates the configured cross-tier weight for a commit.
func (e *TieredAsyncEngine) tierWeight(tier int, commits []int) float64 {
	if e.Cfg.TierWeight == nil {
		return 1
	}
	w := e.Cfg.TierWeight(tier, commits)
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("flcore: tier weight %v for tier %d", w, tier))
	}
	return w
}

// Run executes tiered-asynchronous training until the simulated duration
// elapses, returning the result with history sampled at EvalInterval
// boundaries (Round counts global commits) plus the full commit log. On an
// engine restored from a TieredCheckpoint, Run continues the interrupted
// job: the in-flight tier rounds come back from the checkpoint instead of
// a fresh dispatch, and Commits/Retiers/Migrations/UplinkBytes report
// cumulative totals across the whole job, not just this call.
func (e *TieredAsyncEngine) Run() *TieredAsyncResult {
	res := &TieredAsyncResult{}
	if !e.resumed {
		heap.Init(&e.pending)
		for t := range e.Tiers {
			e.dispatch(t, 0)
		}
	}

	evalNow := func(now float64) {
		rec := RoundRecord{Round: e.version, SimTime: now, Acc: math.NaN(), Loss: math.NaN()}
		if e.Test != nil {
			e.eng.global.SetWeightsVector(e.weights)
			rec.Acc, rec.Loss = e.eng.global.Evaluate(e.Test.InputTensor(), e.Test.Y, e.Cfg.EvalBatch)
		}
		res.History = append(res.History, rec)
		// Algorithm-2 accuracy feedback: evaluate the global model on each
		// tier's pooled member test shards and hand the accuracies to the
		// Manager, which drives its tier-selection probabilities from them.
		if e.Cfg.Manager != nil {
			if accs := e.tierAccuracies(); accs != nil {
				e.Cfg.Manager.ObserveAccuracy(accs)
			}
		}
	}

	for e.pending.Len() > 0 {
		run := heap.Pop(&e.pending).(*tierRun)
		if run.finish > e.Cfg.Duration {
			break
		}
		e.clock.Advance(run.finish - e.clock.Now())
		now := e.clock.Now()
		for e.Cfg.EvalInterval > 0 && now >= e.nextEval {
			evalNow(e.nextEval)
			e.nextEval += e.Cfg.EvalInterval
		}

		e.commits[run.tier]++
		staleness := e.version - run.pulledVer
		alpha := CommitMix(e.weights, run.weights, e.Cfg.Alpha,
			e.tierWeight(run.tier, e.commits), staleness, e.Cfg.StalenessExp)
		e.version++

		if e.Cfg.Manager != nil {
			// Live tiering: the commit's observed latencies feed the EWMA
			// estimates, then the Manager decides whether this version is a
			// rebuild point. Migrations take effect at each tier's next
			// dispatch; the in-flight runs in the heap keep their cohorts.
			// A CommObserver gets the full observation — in the simulation
			// the per-client latency already is the end-to-end round cost,
			// so it doubles as both signals, plus the round's wire bytes.
			co, commAware := e.Cfg.Manager.(CommObserver)
			for i, ci := range run.selected {
				if commAware {
					var b int64
					if run.bytes != nil {
						b = run.bytes[i]
					}
					co.ObserveRound(ci, run.lats[i], run.lats[i], b)
				} else {
					e.Cfg.Manager.Observe(ci, run.lats[i])
				}
			}
			if tiers, moves, changed := e.Cfg.Manager.MaybeRetier(e.version); changed {
				e.Tiers = tiers
				e.retierEpoch++
				e.retiers++
				e.migrations += len(moves)
			}
		}

		e.uplink += run.upBytes
		e.downlink += run.downBytes
		rec := TierRoundRecord{
			Tier: run.tier, TierRound: run.tierRound, Version: e.version,
			Selected: run.selected, Staleness: staleness, Weight: alpha,
			Latency: run.latency, SimTime: now, UplinkBytes: run.upBytes,
			DownlinkBytes: run.downBytes,
		}
		res.TierRounds = append(res.TierRounds, rec)
		if e.Cfg.OnCommit != nil {
			e.Cfg.OnCommit(rec)
		}
		e.dispatch(run.tier, now)
		// The snapshot point: the commit is applied, the Manager fed, and
		// the committing tier re-dispatched, so the heap holds every
		// in-flight round and the checkpoint is a clean between-commits cut.
		if e.Cfg.CheckpointEvery > 0 && e.Cfg.OnCheckpoint != nil && e.version%e.Cfg.CheckpointEvery == 0 {
			c, err := e.Snapshot()
			if err != nil {
				panic(fmt.Sprintf("flcore: periodic checkpoint failed: %v", err))
			}
			e.Cfg.OnCheckpoint(c)
		}
	}
	evalNow(e.clock.Now())
	final := res.History[len(res.History)-1]
	res.FinalAcc, res.FinalLoss = final.Acc, final.Loss
	res.TotalTime = e.clock.Now()
	res.Weights = append([]float64(nil), e.weights...)
	res.Commits = append([]int(nil), e.commits...)
	res.Retiers, res.Migrations = e.retiers, e.migrations
	res.UplinkBytes = e.uplink
	res.DownlinkBytes = e.downlink
	return res
}

// tierTestCap bounds each tier's pooled evaluation shard for adaptive
// accuracy feedback (the TestData_t cap of Algorithm 2, sized for the
// commit-frequency of the tiered engines).
const tierTestCap = 256

// tierAccuracies evaluates the current global model on every tier's pooled
// member test shards (the tiered-async analogue of core.TierTestData —
// only accuracies ever reach the Manager, so the privacy posture matches
// the synchronous adaptive selector). Pools are cached per membership
// epoch and capped at tierTestCap samples with a (Seed, tier)-keyed
// subset. Returns nil when no tier has any client test data.
func (e *TieredAsyncEngine) tierAccuracies() []float64 {
	if e.tierTest == nil || e.tierTestEpoch != e.retierEpoch {
		e.tierTest = make([]*dataset.Dataset, len(e.Tiers))
		for t, members := range e.Tiers {
			var parts []*dataset.Dataset
			// Pooling runs through the source so managed lazy runs stay
			// byte-identical to eager ones; each member is materialized only
			// for the duration of the shard copy. This is an O(|tier|) sweep
			// per membership epoch — population-scale runs should not pair a
			// lazy source with Manager accuracy feedback (ext_million uses
			// static tiers).
			for _, ci := range members {
				c := e.src.Acquire(ci)
				if c.Test != nil && c.Test.Len() > 0 {
					parts = append(parts, c.Test)
				}
				e.src.Release(c)
			}
			if len(parts) == 0 {
				continue
			}
			pooled := dataset.Concat(parts...)
			if pooled.Len() > tierTestCap {
				rng := rand.New(rand.NewSource(mix(e.Cfg.Seed, -7, t)))
				pooled = pooled.Subset(rng.Perm(pooled.Len())[:tierTestCap])
			}
			e.tierTest[t] = pooled
		}
		e.tierTestEpoch = e.retierEpoch
	}
	accs := make([]float64, len(e.Tiers))
	any := false
	e.eng.global.SetWeightsVector(e.weights)
	for t := range accs {
		accs[t] = math.NaN()
		if e.tierTest[t] != nil {
			accs[t], _ = e.eng.global.Evaluate(e.tierTest[t].InputTensor(), e.tierTest[t].Y, e.Cfg.EvalBatch)
			any = true
		}
	}
	if !any {
		return nil
	}
	return accs
}

// RunTieredAsync is the one-shot convenience wrapper mirroring RunAsync.
func RunTieredAsync(cfg TieredAsyncConfig, tiers [][]int, clients []*Client, test *dataset.Dataset) *TieredAsyncResult {
	return NewTieredAsyncEngine(cfg, tiers, clients, test).Run()
}
