package flcore

import (
	"math"
	"path/filepath"
	"testing"
)

func TestCheckpointResumeBitExact(t *testing.T) {
	// Uninterrupted 10-round run vs 5 rounds + snapshot + restore into a
	// fresh engine + 5 rounds: identical final weights and clock.
	sel := func(n int) Selector { return &RandomSelector{NumClients: n, ClientsPerRound: 3} }

	clientsA, testA := testPopulation(t, 10)
	full := NewEngine(testConfig(10), clientsA, testA).Run(sel(10))

	clientsB, testB := testPopulation(t, 10)
	cfgHalf := testConfig(10)
	cfgHalf.Rounds = 5
	engB := NewEngine(cfgHalf, clientsB, testB)
	engB.Run(sel(10))
	snap := engB.Snapshot()
	if snap.CompletedRounds != 5 {
		t.Fatalf("snapshot at round %d", snap.CompletedRounds)
	}

	clientsC, testC := testPopulation(t, 10)
	engC := NewEngine(testConfig(10), clientsC, testC)
	if err := engC.Restore(snap); err != nil {
		t.Fatal(err)
	}
	tail := engC.Run(sel(10))

	if len(tail.History) != 5 {
		t.Fatalf("resumed run produced %d rounds, want 5", len(tail.History))
	}
	if tail.History[0].Round != 5 {
		t.Fatalf("resumed run starts at round %d", tail.History[0].Round)
	}
	for i := range full.Weights {
		if full.Weights[i] != tail.Weights[i] {
			t.Fatalf("weight %d differs after resume", i)
		}
	}
	if math.Abs(full.TotalTime-tail.TotalTime) > 1e-9 {
		t.Fatalf("clock differs: %v vs %v", full.TotalTime, tail.TotalTime)
	}
}

func TestCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	c := &Checkpoint{CompletedRounds: 7, SimTime: 123.5, Weights: []float64{1, -2, 3.5}, Seed: 42}
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.CompletedRounds != 7 || got.SimTime != 123.5 || got.Seed != 42 {
		t.Fatalf("round trip = %+v", got)
	}
	for i, w := range c.Weights {
		if got.Weights[i] != w {
			t.Fatalf("weights = %v", got.Weights)
		}
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.gob")
	c := &Checkpoint{CompletedRounds: 1, SimTime: 2, Weights: []float64{9}, Seed: 3}
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Weights[0] != 9 {
		t.Fatalf("loaded = %+v", got)
	}
	if _, err := LoadCheckpointFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRestoreValidation(t *testing.T) {
	clients, test := testPopulation(t, 10)
	eng := NewEngine(testConfig(5), clients, test)
	nw := len(eng.GlobalWeights())
	cases := []*Checkpoint{
		{Seed: 999, Weights: make([]float64, nw)},                     // wrong seed
		{Seed: 42, Weights: make([]float64, 3)},                       // wrong size
		{Seed: 42, Weights: make([]float64, nw), CompletedRounds: 99}, // beyond Rounds
		{Seed: 42, Weights: make([]float64, nw), CompletedRounds: -1}, // negative
	}
	for i, c := range cases {
		if err := eng.Restore(c); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestDecodeCheckpointGarbage(t *testing.T) {
	if _, err := DecodeCheckpoint([]byte("nonsense")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRunAfterFinalRoundIsNoop(t *testing.T) {
	clients, test := testPopulation(t, 10)
	eng := NewEngine(testConfig(3), clients, test)
	first := eng.Run(&RandomSelector{NumClients: 10, ClientsPerRound: 3})
	again := eng.Run(&RandomSelector{NumClients: 10, ClientsPerRound: 3})
	if len(again.History) != 0 {
		t.Fatalf("second Run produced %d rounds", len(again.History))
	}
	for i := range first.Weights {
		if again.Weights[i] != first.Weights[i] {
			t.Fatal("no-op run changed weights")
		}
	}
}
