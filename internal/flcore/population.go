package flcore

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// BuildClients assembles a client population from a training set, a
// per-client index partition, and a CPU assignment. Each client also
// receives a local test shard drawn from the held-out test set restricted
// to the classes the client actually holds — this is the per-client
// TestData the TiFL adaptive policy aggregates into per-tier test sets
// (Algorithm 2), and it respects privacy: no raw training data leaves the
// client, only accuracy numbers do.
//
// localTestMax bounds each client's test shard size (0 = unlimited).
func BuildClients(train, test *dataset.Dataset, parts [][]int, cpus []float64, localTestMax int, seed int64) []*Client {
	if len(parts) != len(cpus) {
		panic(fmt.Sprintf("flcore: %d partitions vs %d cpu shares", len(parts), len(cpus)))
	}
	clients := make([]*Client, len(parts))
	for i, idx := range parts {
		rng := rand.New(rand.NewSource(mix(seed, i, 13)))
		local := train.Subset(idx)
		var localTest *dataset.Dataset
		if test != nil {
			classes := dataset.Classes(train, idx)
			localTest = dataset.TestSubsetForClasses(test, classes, localTestMax, rng)
		}
		clients[i] = &Client{ID: i, Train: local, Test: localTest, CPU: cpus[i]}
	}
	return clients
}

// TotalSamples returns the combined training-set size across clients.
func TotalSamples(clients []*Client) int {
	n := 0
	for _, c := range clients {
		n += c.NumSamples()
	}
	return n
}
