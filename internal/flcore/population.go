package flcore

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// BuildClients assembles a client population from a training set, a
// per-client index partition, and a CPU assignment. Each client also
// receives a local test shard drawn from the held-out test set restricted
// to the classes the client actually holds — this is the per-client
// TestData the TiFL adaptive policy aggregates into per-tier test sets
// (Algorithm 2), and it respects privacy: no raw training data leaves the
// client, only accuracy numbers do.
//
// localTestMax bounds each client's test shard size (0 = unlimited).
func BuildClients(train, test *dataset.Dataset, parts [][]int, cpus []float64, localTestMax int, seed int64) []*Client {
	if len(parts) != len(cpus) {
		panic(fmt.Sprintf("flcore: %d partitions vs %d cpu shares", len(parts), len(cpus)))
	}
	clients := make([]*Client, len(parts))
	for i, idx := range parts {
		clients[i] = BuildClient(train, test, idx, cpus[i], localTestMax, seed, i)
	}
	return clients
}

// BuildClient materializes the single client `id` of the population
// BuildClients would construct — byte-identical to BuildClients(...)[id],
// but touching only that client's partition. Every per-client input (the
// shard indices, the CPU share, the rng keyed on (seed, id)) is independent
// of the other clients, which is what makes the population lazily
// materializable: a LazyClients factory closing over the shared train/test
// sets and this function re-derives any client on demand without ever
// holding the other N−1 shards resident.
func BuildClient(train, test *dataset.Dataset, part []int, cpu float64, localTestMax int, seed int64, id int) *Client {
	rng := rand.New(rand.NewSource(mix(seed, id, 13)))
	local := train.Subset(part)
	var localTest *dataset.Dataset
	if test != nil {
		classes := dataset.Classes(train, part)
		localTest = dataset.TestSubsetForClasses(test, classes, localTestMax, rng)
	}
	return &Client{ID: id, Train: local, Test: localTest, CPU: cpu}
}

// TotalSamples returns the combined training-set size across clients.
func TotalSamples(clients []*Client) int {
	n := 0
	for _, c := range clients {
		n += c.NumSamples()
	}
	return n
}
