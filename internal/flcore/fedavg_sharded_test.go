package flcore

import (
	"math"
	"math/rand"
	"testing"
)

// serialFedAvg is the historical implementation; the sharded FedAvg must
// match it bit for bit.
func serialFedAvg(updates []Update) []float64 {
	n := len(updates[0].Weights)
	out := make([]float64, n)
	total := 0.0
	for _, u := range updates {
		w := float64(u.NumSamples)
		if w <= 0 {
			w = 1
		}
		total += w
		for i, v := range u.Weights {
			out[i] += w * v
		}
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

func TestFedAvgShardedBitEqualSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{5, 2000, 1 << 15} {
		ups := make([]Update, 9)
		for k := range ups {
			w := make([]float64, n)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			ups[k] = Update{Weights: w, NumSamples: k} // includes a 0-sample client
		}
		want := serialFedAvg(ups)
		got := FedAvg(ups)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d: FedAvg[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
		// FedAvgInto into a dirty standing buffer must produce the same.
		dst := make([]float64, n)
		for i := range dst {
			dst[i] = 999
		}
		FedAvgInto(dst, ups)
		for i := range want {
			if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d: FedAvgInto[%d] = %v, want %v", n, i, dst[i], want[i])
			}
		}
	}
}

func TestFedAvgIntoValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	FedAvgInto(make([]float64, 3), []Update{{Weights: []float64{1, 2}, NumSamples: 1}})
}
