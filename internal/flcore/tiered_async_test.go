package flcore

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/simres"
)

// tieredFixture builds a small heterogeneous population split into tiers by
// CPU group (fastest first), mirroring how core.BuildTiers orders tiers.
func tieredFixture(t *testing.T, nClients int) ([]*Client, [][]int, *dataset.Dataset, TieredAsyncConfig) {
	t.Helper()
	train := dataset.Generate(dataset.CIFAR10Like, 600, 1)
	test := dataset.Generate(dataset.CIFAR10Like, 200, 2)
	parts := dataset.PartitionIID(train.Len(), nClients, rand.New(rand.NewSource(3)))
	cpus := simres.AssignGroups(nClients, []float64{4, 1, 0.25})
	clients := BuildClients(train, test, parts, cpus, 20, 4)
	per := nClients / 3
	tiers := make([][]int, 3)
	for i := 0; i < nClients; i++ {
		tiers[i/per] = append(tiers[i/per], i)
	}
	cfg := TieredAsyncConfig{
		Duration: 120, ClientsPerRound: 2,
		EvalInterval: 40, Seed: 7, BatchSize: 10, LocalEpochs: 1,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, train.Dim(), []int{8}, 10, 0)
		},
		Optimizer: func(round int) nn.Optimizer { return nn.NewRMSprop(0.01, 0.995) },
		Latency:   simres.DefaultModel,
		EvalBatch: 64,
	}
	return clients, tiers, test, cfg
}

func TestTieredAsyncDeterministicHistories(t *testing.T) {
	clients, tiers, test, cfg := tieredFixture(t, 9)
	a := RunTieredAsync(cfg, tiers, clients, test)
	b := RunTieredAsync(cfg, tiers, clients, test)
	if len(a.TierRounds) == 0 {
		t.Fatal("no tier rounds committed")
	}
	if !reflect.DeepEqual(a.TierRounds, b.TierRounds) {
		t.Fatalf("commit logs differ:\n%+v\nvs\n%+v", a.TierRounds[:3], b.TierRounds[:3])
	}
	if !reflect.DeepEqual(a.Commits, b.Commits) {
		t.Fatalf("commit counts differ: %v vs %v", a.Commits, b.Commits)
	}
	for i := range a.History {
		ra, rb := a.History[i], b.History[i]
		if ra.Round != rb.Round || ra.SimTime != rb.SimTime ||
			math.Float64bits(ra.Acc) != math.Float64bits(rb.Acc) ||
			math.Float64bits(ra.Loss) != math.Float64bits(rb.Loss) {
			t.Fatalf("history[%d] differs: %+v vs %+v", i, ra, rb)
		}
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatalf("weights differ at %d", i)
		}
	}
}

func TestTieredAsyncFastTiersCommitMore(t *testing.T) {
	clients, tiers, test, cfg := tieredFixture(t, 9)
	res := RunTieredAsync(cfg, tiers, clients, test)
	if len(res.Commits) != 3 {
		t.Fatalf("commits = %v", res.Commits)
	}
	// The fastest tier (16x the CPU of the slowest) must commit strictly
	// more rounds than the slowest within the same simulated budget.
	if res.Commits[0] <= res.Commits[2] {
		t.Fatalf("fast tier commits %d not above slow tier %d", res.Commits[0], res.Commits[2])
	}
	if res.TotalTime > cfg.Duration {
		t.Fatalf("simulated time %v exceeds budget %v", res.TotalTime, cfg.Duration)
	}
}

func TestTieredAsyncTierRoundInvariants(t *testing.T) {
	clients, tiers, test, cfg := tieredFixture(t, 9)
	var fromHook []TierRoundRecord
	cfg.OnCommit = func(rec TierRoundRecord) { fromHook = append(fromHook, rec) }
	res := RunTieredAsync(cfg, tiers, clients, test)
	if !reflect.DeepEqual(fromHook, res.TierRounds) {
		t.Fatal("OnCommit stream differs from TierRounds log")
	}
	tierRound := make(map[int]int)
	prevTime := 0.0
	for i, rec := range res.TierRounds {
		if rec.Version != i+1 {
			t.Fatalf("commit %d has version %d", i, rec.Version)
		}
		if rec.TierRound != tierRound[rec.Tier] {
			t.Fatalf("tier %d round %d out of order (want %d)", rec.Tier, rec.TierRound, tierRound[rec.Tier])
		}
		tierRound[rec.Tier]++
		if rec.SimTime < prevTime {
			t.Fatalf("commit %d goes back in time: %v < %v", i, rec.SimTime, prevTime)
		}
		prevTime = rec.SimTime
		if rec.Staleness < 0 || rec.Weight <= 0 || rec.Weight > 1 {
			t.Fatalf("commit %d: staleness %d weight %v", i, rec.Staleness, rec.Weight)
		}
		if len(rec.Selected) != cfg.ClientsPerRound {
			t.Fatalf("commit %d selected %d clients", i, len(rec.Selected))
		}
		for _, ci := range rec.Selected {
			if ci/3 != rec.Tier {
				t.Fatalf("commit %d: client %d not in tier %d", i, ci, rec.Tier)
			}
		}
	}
}

func TestTieredAsyncTierWeightFavorsSlow(t *testing.T) {
	clients, tiers, test, cfg := tieredFixture(t, 9)
	// Inverted-frequency weighting: a committing tier is weighted by its
	// mirror tier's commit share, so the slow tier's rare commits carry
	// more weight than the fast tier's frequent ones.
	cfg.TierWeight = func(tier int, commits []int) float64 {
		total := 0
		for _, c := range commits {
			total += c
		}
		mirror := len(commits) - 1 - tier
		return float64(commits[mirror]+1) / float64(total+len(commits))
	}
	res := RunTieredAsync(cfg, tiers, clients, test)
	var fastSum, slowSum float64
	var fastN, slowN int
	for _, rec := range res.TierRounds {
		switch rec.Tier {
		case 0:
			fastSum += rec.Weight
			fastN++
		case 2:
			slowSum += rec.Weight
			slowN++
		}
	}
	if fastN == 0 || slowN == 0 {
		t.Fatalf("commit mix fast=%d slow=%d", fastN, slowN)
	}
	if slowSum/float64(slowN) <= fastSum/float64(fastN) {
		t.Fatalf("mean slow-tier weight %v not above fast-tier %v",
			slowSum/float64(slowN), fastSum/float64(fastN))
	}
}

func TestTieredAsyncValidation(t *testing.T) {
	clients, tiers, test, cfg := tieredFixture(t, 9)
	for name, breakIt := range map[string]func(*TieredAsyncConfig, *[][]int){
		"zero duration":  func(c *TieredAsyncConfig, _ *[][]int) { c.Duration = 0 },
		"no clients":     func(c *TieredAsyncConfig, _ *[][]int) { c.ClientsPerRound = 0 },
		"nil model":      func(c *TieredAsyncConfig, _ *[][]int) { c.Model = nil },
		"zero latency":   func(c *TieredAsyncConfig, _ *[][]int) { c.Latency = simres.LatencyModel{} },
		"empty tier":     func(_ *TieredAsyncConfig, tt *[][]int) { (*tt)[1] = nil },
		"no tiers":       func(_ *TieredAsyncConfig, tt *[][]int) { *tt = nil },
		"member too big": func(_ *TieredAsyncConfig, tt *[][]int) { (*tt)[0] = []int{99} },
		"overlapping tiers": func(_ *TieredAsyncConfig, tt *[][]int) {
			(*tt)[0] = append([]int(nil), (*tt)[0]...)
			(*tt)[0][0] = (*tt)[1][0]
		},
	} {
		c := cfg
		tt := append([][]int(nil), tiers...)
		breakIt(&c, &tt)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			NewTieredAsyncEngine(c, tt, clients, test)
		}()
	}
}

func TestTieredAsyncLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("training run in -short mode")
	}
	clients, tiers, test, cfg := tieredFixture(t, 9)
	cfg.Duration = 400
	res := RunTieredAsync(cfg, tiers, clients, test)
	if math.IsNaN(res.FinalAcc) {
		t.Fatal("no final evaluation")
	}
	// 10-class synthetic data: anything clearly above chance shows the
	// cross-tier commits actually train the global model.
	if res.FinalAcc < 0.2 {
		t.Fatalf("final accuracy %v barely above chance", res.FinalAcc)
	}
}
