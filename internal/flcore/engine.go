package flcore

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/simres"
	"repro/internal/tensor"
)

// ModelFactory builds a fresh (randomly initialized) model replica. The
// engine creates one replica per client per round — weights are immediately
// overwritten with the global model, so only the architecture matters; the
// rng drives dropout so local training is deterministic per (seed, round,
// client) even under parallel execution.
type ModelFactory func(rng *rand.Rand) *nn.Model

// OptimizerFactory builds the local optimizer for a given round, letting
// schedules like the paper's RMSprop 0.01 with 0.995 decay depend on the
// round index.
type OptimizerFactory func(round int) nn.Optimizer

// Config holds the training hyperparameters of a federated job. The
// defaults in the paper: |K|=50 clients, |C|=5 per round, local batch size
// 10, 1 local epoch, 500 rounds (2000 for FEMNIST).
type Config struct {
	Rounds          int
	ClientsPerRound int
	LocalEpochs     int
	BatchSize       int
	Seed            int64
	Model           ModelFactory
	Optimizer       OptimizerFactory
	Latency         simres.LatencyModel
	// EvalEvery evaluates the global model on the global test set every k
	// rounds (0 disables periodic eval; the final round is always
	// evaluated).
	EvalEvery int
	// EvalBatch bounds eval batch size (0 = whole set at once).
	EvalBatch int
	// Parallel trains the selected clients concurrently. Results are
	// deterministic either way because all randomness is keyed on
	// (Seed, round, client).
	Parallel bool
	// TransformUpdate, if set, post-processes each client's update before
	// aggregation — the hook where client-level differential privacy
	// (clipping + Gaussian noise on the weight delta, internal/privacy)
	// plugs in. global is the round's starting weight vector.
	TransformUpdate func(round int, global []float64, u *Update)
	// ProxMu, when positive, adds FedProx's proximal term μ/2·‖w−w_g‖² to
	// every client's local objective (the paper's reference [23] baseline).
	ProxMu float64
	// OnRound, if set, receives every round's record as it completes —
	// the hook internal/trace uses to stream JSONL run traces.
	OnRound func(rec RoundRecord)
	// TargetAccuracy, when positive, stops training early once the global
	// test accuracy reaches it (requires periodic evaluation); the paper's
	// FL formulation runs "until a certain number of rounds are completed
	// or a desired accuracy is reached".
	TargetAccuracy float64
	// EpochsFor, if set, overrides LocalEpochs per client per round —
	// FedProx-style partial work on stragglers (slow clients train fewer
	// epochs so they respond in time).
	EpochsFor func(c *Client, round int) int
	// Codec, if set, compresses every client's uplink update with
	// error feedback: the client's weight delta (plus the residual its
	// codec dropped in earlier rounds) is encoded, the aggregator sees the
	// decoded reconstruction, and the encoding error stays client-side for
	// the next round. The latency model then charges for actual encoded
	// bytes (dense download + compressed upload) instead of a dense
	// parameter round trip. nil trains uncompressed.
	Codec compress.Codec
}

func (c *Config) validate() error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("flcore: Rounds = %d", c.Rounds)
	case c.ClientsPerRound <= 0:
		return fmt.Errorf("flcore: ClientsPerRound = %d", c.ClientsPerRound)
	case c.LocalEpochs <= 0:
		return fmt.Errorf("flcore: LocalEpochs = %d", c.LocalEpochs)
	case c.Model == nil:
		return fmt.Errorf("flcore: Model factory is nil")
	case c.Optimizer == nil:
		return fmt.Errorf("flcore: Optimizer factory is nil")
	}
	return nil
}

// RoundRecord captures one global round for the result history.
type RoundRecord struct {
	Round    int
	Selected []int
	// Latency is this round's response latency (max over selected clients).
	Latency float64
	// SimTime is cumulative simulated training time after this round.
	SimTime float64
	// Acc/Loss are global test metrics, NaN when the round was not
	// evaluated.
	Acc, Loss float64
	// UplinkBytes is the round's total encoded update traffic (sum of the
	// selected clients' wire payloads).
	UplinkBytes int64
}

// Result is a finished federated training job.
type Result struct {
	History   []RoundRecord
	FinalAcc  float64
	FinalLoss float64
	TotalTime float64 // simulated seconds for all rounds
	// UplinkBytes is the total encoded client→server update traffic over
	// the whole job — the quantity update compression shrinks.
	UplinkBytes int64
	Weights     []float64
}

// AccuracyAt returns the last evaluated accuracy at or before simulated
// time t, for accuracy-over-wall-clock curves (Fig. 3e/f).
func (r *Result) AccuracyAt(t float64) float64 {
	best := math.NaN()
	for _, rec := range r.History {
		if rec.SimTime > t {
			break
		}
		if !math.IsNaN(rec.Acc) {
			best = rec.Acc
		}
	}
	return best
}

// Engine drives synchronous federated rounds over a fixed client
// population, per Algorithm 1 with a pluggable Selector.
type Engine struct {
	Cfg        Config
	Clients    []*Client
	GlobalTest *dataset.Dataset

	global    *nn.Model
	weights   []float64
	clock     simres.Clock
	completed int // rounds finished so far (supports checkpoint/resume)

	// scratch holds one trainScratch per concurrently training goroutine:
	// the workspace (pooled layer buffers), the cached model replica, and
	// the mini-batch staging. Steady-state rounds reuse all of it, so local
	// training allocates almost nothing. A plain stack (not a sync.Pool) so
	// warmed-up replicas survive garbage collections for the engine's whole
	// lifetime; it never outgrows the engine's worker-goroutine count.
	mu      sync.Mutex
	scratch []*trainScratch
}

// trainScratch is the per-goroutine reusable state of TrainClient.
type trainScratch struct {
	ws    *nn.Workspace
	rep   *nn.Replica
	bbuf  dataset.BatchBuf
	delta []float64 // error-feedback delta staging (codec path)
}

func (e *Engine) getScratch() *trainScratch {
	e.mu.Lock()
	if n := len(e.scratch); n > 0 {
		s := e.scratch[n-1]
		e.scratch = e.scratch[:n-1]
		e.mu.Unlock()
		return s
	}
	e.mu.Unlock()
	return &trainScratch{ws: nn.NewWorkspace(), rep: nn.NewReplica(e.Cfg.Model)}
}

func (e *Engine) putScratch(s *trainScratch) {
	e.mu.Lock()
	e.scratch = append(e.scratch, s)
	e.mu.Unlock()
}

// NewEngine builds an engine; it panics on invalid configuration so
// misconfigured experiments fail loudly at construction.
func NewEngine(cfg Config, clients []*Client, globalTest *dataset.Dataset) *Engine {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if len(clients) == 0 {
		panic("flcore: no clients")
	}
	global := cfg.Model(rand.New(rand.NewSource(cfg.Seed)))
	// The global model is only ever evaluated from the engine's own round
	// loop, so it gets its own workspace: periodic evaluations reuse their
	// activation buffers instead of allocating per eval batch.
	global.SetWorkspace(nn.NewWorkspace())
	resetResiduals(clients)
	return &Engine{
		Cfg:        cfg,
		Clients:    clients,
		GlobalTest: globalTest,
		global:     global,
		weights:    global.WeightsVector(),
	}
}

// resetResiduals clears every client's error-feedback state. Engines call
// it at construction so each training job starts with clean residuals —
// reusing one client population across jobs (as tifl.System does) must not
// leak one run's compression error into the next, and a fresh flnet worker
// starts with a nil residual too, keeping sim and net equivalent.
func resetResiduals(clients []*Client) {
	for _, c := range clients {
		c.residual = nil
	}
}

// GlobalWeights returns the current global weight vector (not a copy).
func (e *Engine) GlobalWeights() []float64 { return e.weights }

// GlobalModel returns the engine's global model with current weights.
func (e *Engine) GlobalModel() *nn.Model { return e.global }

// Clock returns the engine's simulated clock.
func (e *Engine) Clock() *simres.Clock { return &e.clock }

// mix derives a deterministic sub-seed from (seed, a, b) via splitmix64.
func mix(seed int64, a, b int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(a+1) + 0xBF58476D1CE4E5B9*uint64(b+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// TrainClient runs one client's local training for the round and returns
// its update; exported so the distributed runtime (internal/flnet) can run
// the identical computation on worker nodes.
func (e *Engine) TrainClient(round int, clientIdx int, globalWeights []float64) Update {
	return e.TrainClientOn(round, e.Clients[clientIdx], globalWeights)
}

// TrainClientOn is TrainClient over an explicit client object instead of an
// index into the engine's resident population — the entry point for
// source-based engines (ClientSource) whose clients are materialized on
// demand and not held in a slice. The computation is identical: every
// random stream is keyed on (Seed, round, Client.ID), so a lazily
// materialized client trains bit-identically to its eager twin.
func (e *Engine) TrainClientOn(round int, c *Client, globalWeights []float64) Update {
	return e.TrainClientComm(round, c, globalWeights, -1)
}

// TrainClientComm is TrainClientOn with an explicit downlink charge: the
// broadcast reached this client as downBytes wire bytes (a shared delta
// payload under downlink compression, or a dense snapshot it was not
// eligible for) instead of the implicit dense transfer. The latency model
// then charges downBytes + the update's encoded size for the round's
// communication. downBytes < 0 keeps the historical dense charging
// bit-identically (including the parameter-based LatencyFull path for
// uncompressed uplinks). The rng draw sequence is identical either way, so
// switching charging modes never perturbs training randomness.
func (e *Engine) TrainClientComm(round int, c *Client, globalWeights []float64, downBytes int) Update {
	s := e.getScratch()
	defer e.putScratch(s)
	// Replica.Acquire reproduces rand.New(rand.NewSource(mix(...))) followed
	// by a fresh factory build, bit-exactly, while reusing the cached model
	// and its workspace-pooled scratch — the rng stream, and therefore every
	// dropout draw and batch shuffle below, is unchanged.
	model, rng := s.rep.Acquire(mix(e.Cfg.Seed, round, c.ID))
	model.SetWorkspace(s.ws)
	model.SetWeightsVector(globalWeights)
	opt := e.Cfg.Optimizer(round)
	if sp, ok := opt.(nn.StatePooled); ok {
		// Per-round optimizer state (momentum/second-moment caches) comes
		// from the goroutine's workspace pool; it starts zeroed either way.
		sp.AttachStatePool(s.ws.Pool())
		defer sp.ReleaseState()
	}
	if e.Cfg.ProxMu > 0 {
		opt = nn.NewProximal(opt, e.Cfg.ProxMu, globalWeights)
	}
	epochs := e.Cfg.LocalEpochs
	if e.Cfg.EpochsFor != nil {
		if n := e.Cfg.EpochsFor(c, round); n > 0 {
			epochs = n
		}
	}
	for ep := 0; ep < epochs; ep++ {
		c.Train.BatchesBuf(e.Cfg.BatchSize, rng, &s.bbuf, func(x *tensor.Tensor, y []int) {
			model.TrainBatch(x, y, opt)
		})
	}
	weightsOut := model.WeightsVector()
	wire := compress.DenseBytes(len(weightsOut))
	var lat float64
	// The dense codec (IDNone) is a wire format, not a compression: treat
	// it like nil so a "none" run stays bit-identical to an uncompressed
	// one (flnet workers and tifl-node special-case it the same way).
	if e.Cfg.Codec != nil && e.Cfg.Codec.ID() != compress.IDNone {
		// Error-feedback compression: encode delta+residual, keep the
		// encoding error on the client, and hand the aggregator the exact
		// reconstruction the wire payload decodes to — so the simulated
		// engine and a real flnet worker produce identical updates.
		if cap(s.delta) < len(weightsOut) {
			s.delta = make([]float64, len(weightsOut))
		}
		delta := s.delta[:len(weightsOut)]
		for i := range delta {
			delta[i] = weightsOut[i] - globalWeights[i]
		}
		payload, rec, residual := compress.EncodeDelta(e.Cfg.Codec, delta, c.residual)
		c.residual = residual
		for i := range weightsOut {
			weightsOut[i] = globalWeights[i] + rec[i]
		}
		wire = len(payload)
		down := compress.DenseBytes(len(weightsOut))
		if downBytes >= 0 {
			down = downBytes
		}
		lat = e.Cfg.Latency.LatencyBytes(c.EffectiveCPU(round), c.NumSamples(), epochs,
			down+wire, c.Bandwidth, rng)
	} else if downBytes >= 0 {
		lat = e.Cfg.Latency.LatencyBytes(c.EffectiveCPU(round), c.NumSamples(), epochs,
			downBytes+wire, c.Bandwidth, rng)
	} else {
		lat = e.Cfg.Latency.LatencyFull(c.EffectiveCPU(round), c.NumSamples(), epochs, len(weightsOut), c.Bandwidth, rng)
	}
	u := Update{ClientID: c.ID, Weights: weightsOut, NumSamples: c.NumSamples(), Latency: lat, WireBytes: wire}
	if e.Cfg.TransformUpdate != nil {
		e.Cfg.TransformUpdate(round, globalWeights, &u)
	}
	return u
}

// Run executes the remaining federated rounds (all of Cfg.Rounds on a
// fresh engine, or the tail after Restore) with the given selector and
// returns the result history for the rounds it ran.
func (e *Engine) Run(sel Selector) *Result {
	res := &Result{}
	for r := e.completed; r < e.Cfg.Rounds; r++ {
		selRng := rand.New(rand.NewSource(mix(e.Cfg.Seed, r, -7)))
		selected := sel.Select(r, selRng)
		if len(selected) == 0 {
			panic(fmt.Sprintf("flcore: selector returned no clients in round %d", r))
		}
		updates := e.trainRound(r, selected)
		FedAvgInto(e.weights, updates)
		e.global.SetWeightsVector(e.weights)
		lat := MaxLatency(updates)
		e.clock.Advance(lat)
		var upBytes int64
		for _, u := range updates {
			upBytes += int64(u.WireBytes)
		}
		res.UplinkBytes += upBytes

		rec := RoundRecord{Round: r, Selected: selected, Latency: lat, SimTime: e.clock.Now(), Acc: math.NaN(), Loss: math.NaN(), UplinkBytes: upBytes}
		last := r == e.Cfg.Rounds-1
		if e.GlobalTest != nil && (last || (e.Cfg.EvalEvery > 0 && r%e.Cfg.EvalEvery == 0)) {
			rec.Acc, rec.Loss = e.global.Evaluate(e.GlobalTest.InputTensor(), e.GlobalTest.Y, e.Cfg.EvalBatch)
		}
		res.History = append(res.History, rec)
		if e.Cfg.OnRound != nil {
			e.Cfg.OnRound(rec)
		}

		if obs, ok := sel.(LatencyObserver); ok {
			obs.ObserveLatencies(r, updates)
		}
		if obs, ok := sel.(RoundObserver); ok {
			obs.AfterRound(r, func(d *dataset.Dataset) float64 {
				acc, _ := e.global.Evaluate(d.InputTensor(), d.Y, e.Cfg.EvalBatch)
				return acc
			})
		}
		e.completed = r + 1
		if e.Cfg.TargetAccuracy > 0 && !math.IsNaN(rec.Acc) && rec.Acc >= e.Cfg.TargetAccuracy {
			break // desired accuracy reached (Section 3.1 stop condition)
		}
	}
	res.TotalTime = e.clock.Now()
	res.Weights = append([]float64(nil), e.weights...)
	if len(res.History) == 0 { // resumed past the final round
		res.FinalAcc, res.FinalLoss = math.NaN(), math.NaN()
		return res
	}
	final := res.History[len(res.History)-1]
	res.FinalAcc, res.FinalLoss = final.Acc, final.Loss
	return res
}

// trainRound trains all selected clients (optionally in parallel) and
// returns their updates in selection order.
func (e *Engine) trainRound(round int, selected []int) []Update {
	updates := make([]Update, len(selected))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(selected) {
		workers = len(selected)
	}
	// One worker means the parallel machinery can only add overhead; results
	// are identical either way because all randomness is keyed on
	// (Seed, round, client).
	if !e.Cfg.Parallel || workers == 1 {
		for i, ci := range selected {
			updates[i] = e.TrainClient(round, ci, e.weights)
		}
		return updates
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				updates[i] = e.TrainClient(round, selected[i], e.weights)
			}
		}()
	}
	for i := range selected {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return updates
}
