package flcore

import "testing"

// FuzzDecodeCheckpoint exercises the checkpoint codec against arbitrary
// bytes: never panic; accepted inputs must round-trip.
func FuzzDecodeCheckpoint(f *testing.F) {
	good, _ := (&Checkpoint{CompletedRounds: 2, SimTime: 3.5, Weights: []float64{1, 2}, Seed: 7}).Encode()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		re, err := c.Encode()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := DecodeCheckpoint(re)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if back.CompletedRounds != c.CompletedRounds || back.Seed != c.Seed || len(back.Weights) != len(c.Weights) {
			t.Fatalf("round trip diverged: %+v vs %+v", back, c)
		}
	})
}
