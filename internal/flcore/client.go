// Package flcore implements the cross-device federated-learning substrate
// from Section 3.1 of the TiFL paper and its training engines: clients
// holding private shards, the FedAvg aggregator (Algorithm 1), the
// synchronous round Engine whose per-round latency is the maximum over
// selected clients (Eq. 1), the fully asynchronous FedAsync baseline
// (AsyncEngine), and the FedAT-style tiered-asynchronous hybrid
// (TieredAsyncEngine) — per-tier synchronous mini-rounds with
// staleness-weighted asynchronous commits. TiFL's tier-based selection
// (internal/core) plugs into the synchronous engine through the Selector
// interface without touching the training loop, mirroring the paper's
// "non-intrusive" design claim.
//
// All engine randomness is keyed on (seed, round, client), so runs are
// bit-reproducible, parallel execution matches sequential execution, and
// the distributed runtime (internal/flnet) reproduces the simulator's
// local computation exactly via Engine.TrainClient and TierCohort.
package flcore

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

// Client is one federated data party: a private training shard, a local
// test shard (used for per-tier accuracy in TiFL's adaptive policy), and a
// CPU share from the resource model.
type Client struct {
	ID    int
	Train *dataset.Dataset
	Test  *dataset.Dataset
	CPU   float64
	// Drift, if set, scales the client's CPU share per round, modelling
	// computation/communication performance that changes over time (the
	// setting Section 4.2's periodic re-profiling targets). A return of
	// 0.5 at round r means the client runs at half speed that round.
	Drift func(round int) float64
	// Bandwidth is the client's relative link speed for model transfer
	// (1.0 nominal; 0 means 1.0). Only matters when the latency model's
	// CommPerParam is set.
	Bandwidth float64

	// residual is the client-side error-feedback state of lossy update
	// compression (Config.Codec): the mass the codec dropped from previous
	// rounds, carried into the next round's delta so compression delays
	// information instead of losing it. Engines manage it through
	// Engine.TrainClient; it is per-client state exactly because the paper
	// of record for this technique keeps the residual on the client.
	residual []float64
}

// NumSamples returns the size of the client's training shard — the FedAvg
// aggregation weight s_c in Algorithm 1.
func (c *Client) NumSamples() int { return c.Train.Len() }

// EffectiveCPU returns the client's CPU share at the given round,
// accounting for drift.
func (c *Client) EffectiveCPU(round int) float64 {
	if c.Drift == nil {
		return c.CPU
	}
	return c.CPU * c.Drift(round)
}

// Update is one client's contribution to a round: its locally trained
// weights, aggregation weight, and observed response latency.
type Update struct {
	ClientID   int
	Weights    []float64
	NumSamples int
	Latency    float64
	// WireBytes is the encoded uplink size of this update — the codec
	// payload under compression, the dense nn.EncodeWeights size otherwise.
	WireBytes int
}

// FedAvg computes the sample-weighted average of client weight vectors
// (line 8 of Algorithm 1). It panics if updates is empty or the vectors
// disagree in length.
func FedAvg(updates []Update) []float64 {
	if len(updates) == 0 {
		panic("flcore: FedAvg of no updates")
	}
	out := make([]float64, len(updates[0].Weights))
	FedAvgInto(out, updates)
	return out
}

// FedAvgInto computes FedAvg into dst, reusing dst's storage (the round
// loops aggregate into the standing global vector instead of reallocating
// it every round). dst must have the updates' length and must not alias any
// update's weight vector. The reduction runs chunk-parallel across elements
// via tensor.AxpySharded — serial and in update order within each element —
// so the result is byte-identical to the historical serial loop for any
// worker count.
func FedAvgInto(dst []float64, updates []Update) {
	if len(updates) == 0 {
		panic("flcore: FedAvg of no updates")
	}
	n := len(dst)
	coeffs := make([]float64, len(updates))
	srcs := make([][]float64, len(updates))
	total := 0.0
	for k, u := range updates {
		if len(u.Weights) != n {
			panic(fmt.Sprintf("flcore: update length %d != %d", len(u.Weights), n))
		}
		w := float64(u.NumSamples)
		if w <= 0 {
			w = 1 // degenerate client still contributes
		}
		total += w
		coeffs[k] = w
		srcs[k] = u.Weights
	}
	for i := range dst {
		dst[i] = 0
	}
	tensor.AxpySharded(dst, coeffs, srcs)
	tensor.ParallelChunks(n, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] /= total
		}
	})
}

// MaxLatency returns the round latency under synchronous FL: the slowest
// selected client bounds the round (Eq. 1).
func MaxLatency(updates []Update) float64 {
	m := 0.0
	for _, u := range updates {
		if u.Latency > m {
			m = u.Latency
		}
	}
	return m
}

// Selector chooses the participating clients for a round. Implementations:
// RandomSelector (vanilla FL) and the tier-based schedulers in
// internal/core.
type Selector interface {
	// Select returns the indices (into the engine's client slice) of the
	// clients that participate in round r. rng is the engine's per-round
	// deterministic source.
	Select(r int, rng *rand.Rand) []int
}

// RoundObserver is an optional extension of Selector: after each round the
// engine hands observers an evaluation function over the freshly aggregated
// global model. TiFL's adaptive policy (Algorithm 2) uses it to maintain
// per-tier accuracies.
type RoundObserver interface {
	AfterRound(r int, eval func(d *dataset.Dataset) float64)
}

// LatencyObserver is an optional extension of Selector: after each round
// the engine reports the selected clients' observed response latencies.
// Dynamic tiering (core.DynamicSelector) uses it to re-tier on the fly when
// client performance drifts.
type LatencyObserver interface {
	ObserveLatencies(r int, updates []Update)
}

// RandomSelector is the vanilla FL policy: |C| clients drawn uniformly at
// random without replacement from the full pool K each round.
type RandomSelector struct {
	NumClients      int // |K|
	ClientsPerRound int // |C|
}

// Select implements Selector.
func (s *RandomSelector) Select(r int, rng *rand.Rand) []int {
	if s.ClientsPerRound > s.NumClients {
		panic(fmt.Sprintf("flcore: cannot select %d of %d clients", s.ClientsPerRound, s.NumClients))
	}
	return rng.Perm(s.NumClients)[:s.ClientsPerRound]
}
