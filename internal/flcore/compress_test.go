package flcore

import (
	"math"
	"testing"

	"repro/internal/compress"
)

// commTestConfig is testConfig with a size-dependent communication term, so
// compressed and dense runs pay different simulated wall clock.
func commTestConfig(rounds int, codec compress.Codec) Config {
	cfg := testConfig(rounds)
	cfg.Latency.CommPerParam = 1e-4
	cfg.Codec = codec
	return cfg
}

func TestCompressedRunTracksDense(t *testing.T) {
	clients, test := testPopulation(t, 10)
	dense := NewEngine(commTestConfig(8, nil), clients, test).
		Run(&RandomSelector{NumClients: 10, ClientsPerRound: 3})

	for _, codec := range []compress.Codec{compress.NewInt8(0), compress.NewTopK(0.1)} {
		cl, ts := testPopulation(t, 10)
		res := NewEngine(commTestConfig(8, codec), cl, ts).
			Run(&RandomSelector{NumClients: 10, ClientsPerRound: 3})
		if math.IsNaN(res.FinalAcc) || res.FinalAcc < dense.FinalAcc-0.1 {
			t.Errorf("%s: final acc %v vs dense %v", codec.Name(), res.FinalAcc, dense.FinalAcc)
		}
		if res.UplinkBytes >= dense.UplinkBytes {
			t.Errorf("%s: uplink %d not below dense %d", codec.Name(), res.UplinkBytes, dense.UplinkBytes)
		}
		if res.TotalTime >= dense.TotalTime {
			t.Errorf("%s: wall clock %v not below dense %v (comm term must shrink)", codec.Name(), res.TotalTime, dense.TotalTime)
		}
	}
}

func TestDenseRunCountsDenseBytes(t *testing.T) {
	clients, test := testPopulation(t, 10)
	cfg := commTestConfig(2, nil)
	res := NewEngine(cfg, clients, test).Run(&RandomSelector{NumClients: 10, ClientsPerRound: 3})
	params := len(res.Weights)
	want := int64(2 * 3 * compress.DenseBytes(params))
	if res.UplinkBytes != want {
		t.Fatalf("dense uplink = %d, want %d (2 rounds x 3 clients x dense size)", res.UplinkBytes, want)
	}
	for _, rec := range res.History {
		if rec.UplinkBytes != int64(3*compress.DenseBytes(params)) {
			t.Fatalf("round %d uplink = %d", rec.Round, rec.UplinkBytes)
		}
	}
}

func TestCompressedRunDeterministicParallel(t *testing.T) {
	// Compression must not break the parallel == sequential guarantee:
	// error-feedback state is per-client and each client trains once per
	// round.
	codec := compress.NewTopK(0.05)
	run := func(parallel bool) *Result {
		clients, test := testPopulation(t, 10)
		cfg := commTestConfig(6, codec)
		cfg.Parallel = parallel
		return NewEngine(cfg, clients, test).Run(&RandomSelector{NumClients: 10, ClientsPerRound: 4})
	}
	a, b := run(false), run(true)
	if len(a.Weights) != len(b.Weights) {
		t.Fatal("weight lengths differ")
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatalf("parallel diverged from sequential at weight %d", i)
		}
	}
	if a.UplinkBytes != b.UplinkBytes {
		t.Fatalf("uplink bytes differ: %d vs %d", a.UplinkBytes, b.UplinkBytes)
	}
}

func TestTieredAsyncCompressed(t *testing.T) {
	clients, test := testPopulation(t, 10)
	tiers := [][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}
	mk := func(codec compress.Codec) TieredAsyncConfig {
		base := commTestConfig(1, codec)
		return TieredAsyncConfig{
			Duration: 120, ClientsPerRound: 2, Seed: base.Seed,
			Model: base.Model, Optimizer: base.Optimizer, Latency: base.Latency,
			Codec: codec,
		}
	}
	dense := RunTieredAsync(mk(nil), tiers, clients, test)
	cl2, ts2 := testPopulation(t, 10)
	comp := RunTieredAsync(mk(compress.NewTopK(0.1)), tiers, cl2, ts2)
	if comp.UplinkBytes <= 0 || dense.UplinkBytes <= 0 {
		t.Fatalf("uplink bytes not tracked: dense %d, compressed %d", dense.UplinkBytes, comp.UplinkBytes)
	}
	// Per commit, the compressed run must move ~10x fewer bytes.
	densePer := float64(dense.UplinkBytes) / float64(len(dense.TierRounds))
	compPer := float64(comp.UplinkBytes) / float64(len(comp.TierRounds))
	if compPer >= densePer/5 {
		t.Fatalf("bytes per commit: compressed %v vs dense %v (want >=5x reduction)", compPer, densePer)
	}
	if math.IsNaN(comp.FinalAcc) {
		t.Fatal("compressed tiered-async produced NaN accuracy")
	}
	var sum int64
	for _, rec := range comp.TierRounds {
		sum += rec.UplinkBytes
	}
	if sum != comp.UplinkBytes {
		t.Fatalf("commit log bytes %d != total %d", sum, comp.UplinkBytes)
	}
}

func TestAsyncCompressedTracksBytes(t *testing.T) {
	clients, test := testPopulation(t, 10)
	base := commTestConfig(1, nil)
	cfg := AsyncConfig{
		Duration: 60, Concurrency: 3, Seed: base.Seed,
		Model: base.Model, Optimizer: base.Optimizer, Latency: base.Latency,
		Codec: compress.NewInt8(0),
	}
	res := RunAsync(cfg, clients, test)
	if res.UplinkBytes <= 0 {
		t.Fatal("async compressed run tracked no uplink bytes")
	}
	cl2, ts2 := testPopulation(t, 10)
	cfg.Codec = nil
	dense := RunAsync(cfg, cl2, ts2)
	// int8 payloads are ~8x smaller; applied-update counts differ between
	// the runs (compression shrinks latency), so compare per update.
	nComp, nDense := 0, 0
	for _, rec := range res.History {
		nComp = rec.Round
	}
	for _, rec := range dense.History {
		nDense = rec.Round
	}
	if nComp == 0 || nDense == 0 {
		t.Fatalf("no updates applied: comp %d dense %d", nComp, nDense)
	}
	perComp := float64(res.UplinkBytes) / float64(nComp)
	perDense := float64(dense.UplinkBytes) / float64(nDense)
	if perComp >= perDense/4 {
		t.Fatalf("bytes per update: compressed %v vs dense %v (want >=4x reduction)", perComp, perDense)
	}
}
