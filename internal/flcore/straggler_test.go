package flcore

import (
	"math"
	"math/rand"
	"testing"
)

// TestStragglerProbabilityMatchesEq3 validates the paper's Section 3.2
// analysis: under vanilla random selection of |C| from |K| clients, the
// probability that at least one selected client comes from the slowest
// level τ_m is Prs = 1 − C(|K|−|τ_m|, |C|) / C(|K|, |C|) (Eq. 2–3), which
// approaches 1 as |C| grows (Eq. 5) — the formal root of the straggler
// problem TiFL attacks.
func TestStragglerProbabilityMatchesEq3(t *testing.T) {
	const K, tauM = 50, 10 // paper's testbed: 50 clients, 10 in the slowest group
	slowest := map[int]bool{}
	for i := K - tauM; i < K; i++ {
		slowest[i] = true
	}
	for _, C := range []int{1, 2, 5, 10} {
		want := 1 - binomRatio(K-tauM, K, C)
		sel := &RandomSelector{NumClients: K, ClientsPerRound: C}
		rng := rand.New(rand.NewSource(int64(C)))
		hits := 0
		const trials = 20000
		for r := 0; r < trials; r++ {
			for _, c := range sel.Select(r, rng) {
				if slowest[c] {
					hits++
					break
				}
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-want) > 0.015 {
			t.Fatalf("|C|=%d: empirical Prs %.4f, Eq. 3 gives %.4f", C, got, want)
		}
	}
	// Eq. 5's limit: with |C|=5 of |K|=50 and 10 slow clients the straggler
	// probability already exceeds 2/3, so vanilla rounds are usually
	// slow-bound.
	if p := 1 - binomRatio(K-tauM, K, 5); p < 0.66 {
		t.Fatalf("Prs(|C|=5) = %v, expected > 0.66", p)
	}
}

// binomRatio computes C(a, c) / C(b, c) = Π_{i=0}^{c-1} (a−i)/(b−i).
func binomRatio(a, b, c int) float64 {
	r := 1.0
	for i := 0; i < c; i++ {
		r *= float64(a-i) / float64(b-i)
	}
	return r
}
