package flcore

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/simres"
)

// TestCNNFederatedTraining runs the paper's convolutional architecture
// end-to-end inside the FL engine on image-shaped synthetic data — the
// substrate ablation's core claim: nothing in the engine assumes flat
// features.
func TestCNNFederatedTraining(t *testing.T) {
	const h, w = 12, 12
	train := dataset.GenerateImages("flcore-cnn", 4, 1, h, w, 400, 0.5, 1)
	test := dataset.GenerateImages("flcore-cnn", 4, 1, h, w, 120, 0.5, 2)
	rng := rand.New(rand.NewSource(3))
	parts := dataset.PartitionIID(train.Len(), 10, rng)
	cpus := simres.AssignGroups(10, []float64{4, 2, 1, 0.5, 0.1})
	clients := BuildClients(train, test, parts, cpus, 30, 4)
	for _, c := range clients {
		if len(c.Train.SampleShape) != 3 {
			t.Fatalf("client %d lost sample shape", c.ID)
		}
	}

	cfg := Config{
		Rounds: 12, ClientsPerRound: 4, LocalEpochs: 1, BatchSize: 10, Seed: 5,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewModel(
				nn.NewConv2D(rng, 1, 8, 3, 3, 1, 0),
				nn.NewReLU(),
				nn.NewMaxPool(2, 2),
				nn.NewFlatten(),
				nn.NewDense(rng, 8*5*5, 4),
			)
		},
		Optimizer: func(round int) nn.Optimizer { return nn.NewAdam(0.005) },
		Latency:   simres.DefaultModel,
		EvalEvery: 4,
		Parallel:  true,
	}
	res := NewEngine(cfg, clients, test).Run(&RandomSelector{NumClients: 10, ClientsPerRound: 4})
	if res.FinalAcc < 0.5 {
		t.Fatalf("CNN federated accuracy %v, want ≥0.5 (chance 0.25)", res.FinalAcc)
	}
	first := res.History[0].Acc
	if res.FinalAcc <= first {
		t.Fatalf("no learning: %v → %v", first, res.FinalAcc)
	}
}
