package flcore

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/simres"
)

func testConfig(rounds int) Config {
	return Config{
		Rounds:          rounds,
		ClientsPerRound: 3,
		LocalEpochs:     1,
		BatchSize:       10,
		Seed:            42,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, dataset.MNISTLike.Dim, []int{16}, 10, 0)
		},
		Optimizer: func(round int) nn.Optimizer {
			return nn.NewSGD(0.05, 0.9)
		},
		Latency:   simres.LatencyModel{CostPerSample: 0.01, CommLatency: 0.5},
		EvalEvery: 1,
	}
}

func testPopulation(t *testing.T, nClients int) ([]*Client, *dataset.Dataset) {
	t.Helper()
	train := dataset.Generate(dataset.MNISTLike, 1000, 1)
	test := dataset.Generate(dataset.MNISTLike, 400, 2)
	rng := rand.New(rand.NewSource(3))
	parts := dataset.PartitionIID(train.Len(), nClients, rng)
	cpus := simres.AssignGroups(nClients, []float64{4, 2, 1, 0.5, 0.1})
	return BuildClients(train, test, parts, cpus, 50, 7), test
}

func TestFedAvgWeightedMean(t *testing.T) {
	ups := []Update{
		{Weights: []float64{1, 1}, NumSamples: 1},
		{Weights: []float64{4, 4}, NumSamples: 3},
	}
	got := FedAvg(ups)
	if math.Abs(got[0]-3.25) > 1e-12 {
		t.Fatalf("FedAvg = %v, want [3.25 3.25]", got)
	}
}

func TestFedAvgIdenticalInputsFixedPoint(t *testing.T) {
	w := []float64{0.5, -1, 2}
	ups := []Update{{Weights: w, NumSamples: 5}, {Weights: w, NumSamples: 9}}
	got := FedAvg(ups)
	for i := range w {
		if math.Abs(got[i]-w[i]) > 1e-12 {
			t.Fatalf("FedAvg of identical weights changed them: %v", got)
		}
	}
}

// Property: FedAvg output is element-wise within [min, max] of the inputs
// (convex combination) and equals plain mean for equal sample counts.
func TestFedAvgConvexityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(4)
		n := 1 + r.Intn(8)
		ups := make([]Update, k)
		for i := range ups {
			w := make([]float64, n)
			for j := range w {
				w[j] = r.NormFloat64()
			}
			ups[i] = Update{Weights: w, NumSamples: 1 + r.Intn(100)}
		}
		avg := FedAvg(ups)
		for j := 0; j < n; j++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for i := range ups {
				lo = math.Min(lo, ups[i].Weights[j])
				hi = math.Max(hi, ups[i].Weights[j])
			}
			if avg[j] < lo-1e-12 || avg[j] > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFedAvgEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FedAvg(nil) did not panic")
		}
	}()
	FedAvg(nil)
}

func TestMaxLatency(t *testing.T) {
	ups := []Update{{Latency: 1}, {Latency: 5}, {Latency: 3}}
	if MaxLatency(ups) != 5 {
		t.Fatalf("MaxLatency = %v", MaxLatency(ups))
	}
}

func TestRandomSelectorProperties(t *testing.T) {
	s := &RandomSelector{NumClients: 20, ClientsPerRound: 5}
	rng := rand.New(rand.NewSource(1))
	for r := 0; r < 50; r++ {
		sel := s.Select(r, rng)
		if len(sel) != 5 {
			t.Fatalf("selected %d clients", len(sel))
		}
		seen := map[int]bool{}
		for _, c := range sel {
			if c < 0 || c >= 20 || seen[c] {
				t.Fatalf("bad selection %v", sel)
			}
			seen[c] = true
		}
	}
}

func TestRandomSelectorCoversAllClients(t *testing.T) {
	s := &RandomSelector{NumClients: 10, ClientsPerRound: 3}
	seen := map[int]bool{}
	for r := 0; r < 200; r++ {
		rng := rand.New(rand.NewSource(int64(r)))
		for _, c := range s.Select(r, rng) {
			seen[c] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("only %d/10 clients ever selected", len(seen))
	}
}

func TestEngineRunImprovesAccuracy(t *testing.T) {
	clients, test := testPopulation(t, 10)
	cfg := testConfig(20)
	eng := NewEngine(cfg, clients, test)
	res := eng.Run(&RandomSelector{NumClients: 10, ClientsPerRound: cfg.ClientsPerRound})
	if len(res.History) != 20 {
		t.Fatalf("history has %d rounds", len(res.History))
	}
	first := res.History[0].Acc
	if res.FinalAcc <= first {
		t.Fatalf("no learning: first %v final %v", first, res.FinalAcc)
	}
	if res.FinalAcc < 0.5 {
		t.Fatalf("final accuracy %v too low", res.FinalAcc)
	}
}

func TestEngineDeterministicSerialVsParallel(t *testing.T) {
	clients, test := testPopulation(t, 10)
	cfg := testConfig(5)
	res1 := NewEngine(cfg, clients, test).Run(&RandomSelector{NumClients: 10, ClientsPerRound: 3})
	cfg2 := cfg
	cfg2.Parallel = true
	clients2, test2 := testPopulation(t, 10)
	res2 := NewEngine(cfg2, clients2, test2).Run(&RandomSelector{NumClients: 10, ClientsPerRound: 3})
	for i := range res1.Weights {
		if res1.Weights[i] != res2.Weights[i] {
			t.Fatalf("weight %d differs between serial and parallel runs", i)
		}
	}
	if res1.FinalAcc != res2.FinalAcc {
		t.Fatalf("accuracy differs: %v vs %v", res1.FinalAcc, res2.FinalAcc)
	}
}

func TestEngineSimTimeMonotone(t *testing.T) {
	clients, test := testPopulation(t, 10)
	eng := NewEngine(testConfig(10), clients, test)
	res := eng.Run(&RandomSelector{NumClients: 10, ClientsPerRound: 3})
	prev := 0.0
	for _, rec := range res.History {
		if rec.SimTime <= prev {
			t.Fatalf("SimTime not strictly increasing at round %d", rec.Round)
		}
		if rec.Latency <= 0 {
			t.Fatalf("non-positive round latency at round %d", rec.Round)
		}
		prev = rec.SimTime
	}
	if math.Abs(res.TotalTime-prev) > 1e-9 {
		t.Fatalf("TotalTime %v != last SimTime %v", res.TotalTime, prev)
	}
}

func TestEngineRoundLatencyIsMaxOfSelected(t *testing.T) {
	// With zero jitter, a round that includes a 0.1-CPU client must take
	// ~40x longer than a round of only 4-CPU clients.
	clients, test := testPopulation(t, 10)
	cfg := testConfig(1)
	cfg.Latency.JitterFrac = 0
	eng := NewEngine(cfg, clients, test)
	fixed := fixedSelector{0, 1} // both 4-CPU clients
	resFast := eng.Run(fixed)
	clients2, test2 := testPopulation(t, 10)
	eng2 := NewEngine(cfg, clients2, test2)
	resSlow := eng2.Run(fixedSelector{0, 9}) // includes the 0.1-CPU client
	if resSlow.TotalTime < resFast.TotalTime*5 {
		t.Fatalf("straggler round %v not ≫ fast round %v", resSlow.TotalTime, resFast.TotalTime)
	}
}

type fixedSelector []int

func (f fixedSelector) Select(r int, rng *rand.Rand) []int { return f }

func TestEngineEvalEverySkipsEvals(t *testing.T) {
	clients, test := testPopulation(t, 10)
	cfg := testConfig(10)
	cfg.EvalEvery = 5
	res := NewEngine(cfg, clients, test).Run(&RandomSelector{NumClients: 10, ClientsPerRound: 3})
	evals := 0
	for _, rec := range res.History {
		if !math.IsNaN(rec.Acc) {
			evals++
		}
	}
	// rounds 0, 5 and the final round 9.
	if evals != 3 {
		t.Fatalf("evaluated %d rounds, want 3", evals)
	}
}

func TestEngineObserverCalledEveryRound(t *testing.T) {
	clients, test := testPopulation(t, 10)
	obs := &observingSelector{inner: &RandomSelector{NumClients: 10, ClientsPerRound: 3}}
	NewEngine(testConfig(7), clients, test).Run(obs)
	if obs.calls != 7 {
		t.Fatalf("observer called %d times, want 7", obs.calls)
	}
	if obs.lastAcc <= 0 || obs.lastAcc > 1 {
		t.Fatalf("observer saw accuracy %v", obs.lastAcc)
	}
}

type observingSelector struct {
	inner   Selector
	calls   int
	lastAcc float64
	testSet *dataset.Dataset
}

func (o *observingSelector) Select(r int, rng *rand.Rand) []int { return o.inner.Select(r, rng) }

func (o *observingSelector) AfterRound(r int, eval func(d *dataset.Dataset) float64) {
	o.calls++
	if o.testSet == nil {
		o.testSet = dataset.Generate(dataset.MNISTLike, 50, 99)
	}
	o.lastAcc = eval(o.testSet)
}

func TestAccuracyAt(t *testing.T) {
	res := &Result{History: []RoundRecord{
		{SimTime: 1, Acc: 0.2},
		{SimTime: 2, Acc: math.NaN()},
		{SimTime: 3, Acc: 0.5},
	}}
	if got := res.AccuracyAt(2.5); got != 0.2 {
		t.Fatalf("AccuracyAt(2.5) = %v, want 0.2", got)
	}
	if got := res.AccuracyAt(3); got != 0.5 {
		t.Fatalf("AccuracyAt(3) = %v, want 0.5", got)
	}
	if got := res.AccuracyAt(0.5); !math.IsNaN(got) {
		t.Fatalf("AccuracyAt before first eval = %v, want NaN", got)
	}
}

func TestBuildClientsLocalTests(t *testing.T) {
	train := dataset.Generate(dataset.CIFAR10Like, 1000, 1)
	test := dataset.Generate(dataset.CIFAR10Like, 500, 2)
	rng := rand.New(rand.NewSource(1))
	parts := dataset.PartitionByClass(train, 10, 2, rng)
	cpus := simres.AssignGroups(10, []float64{4, 2, 1, 0.5, 0.1})
	clients := BuildClients(train, test, parts, cpus, 40, 5)
	for _, c := range clients {
		if c.Test == nil || c.Test.Len() == 0 {
			t.Fatalf("client %d has no local test data", c.ID)
		}
		// Local test classes must be a subset of the client's train classes.
		have := map[int]bool{}
		for _, y := range c.Train.Y {
			have[y] = true
		}
		for _, y := range c.Test.Y {
			if !have[y] {
				t.Fatalf("client %d test class %d not in train classes", c.ID, y)
			}
		}
	}
}

func TestBuildClientsMismatchPanics(t *testing.T) {
	train := dataset.Generate(dataset.MNISTLike, 100, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched parts/cpus did not panic")
		}
	}()
	BuildClients(train, nil, make([][]int, 3), make([]float64, 4), 0, 1)
}

func TestConfigValidation(t *testing.T) {
	cfg := testConfig(5)
	cfg.Rounds = 0
	mustPanic(t, func() { NewEngine(cfg, nil, nil) })
	cfg = testConfig(5)
	cfg.Model = nil
	mustPanic(t, func() { NewEngine(cfg, nil, nil) })
	cfg = testConfig(5)
	mustPanic(t, func() { NewEngine(cfg, nil, nil) }) // no clients
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestMixDeterministicAndSpread(t *testing.T) {
	a := mix(1, 2, 3)
	if a != mix(1, 2, 3) {
		t.Fatal("mix not deterministic")
	}
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		for j := 0; j < 10; j++ {
			seen[mix(42, i, j)] = true
		}
	}
	if len(seen) != 1000 {
		t.Fatalf("mix collisions: %d unique of 1000", len(seen))
	}
}

func TestTransformUpdateHook(t *testing.T) {
	clients, test := testPopulation(t, 10)
	cfg := testConfig(3)
	calls := 0
	cfg.TransformUpdate = func(round int, global []float64, u *Update) {
		calls++
		if len(global) != len(u.Weights) {
			t.Fatalf("global length %d vs update %d", len(global), len(u.Weights))
		}
		// Zero the delta: update becomes the global weights again.
		copy(u.Weights, global)
	}
	res := NewEngine(cfg, clients, test).Run(&RandomSelector{NumClients: 10, ClientsPerRound: 3})
	if calls != 3*3 {
		t.Fatalf("transform called %d times, want 9", calls)
	}
	// With all updates reset to global, weights never move: the final
	// weights equal a freshly initialized model's.
	clients2, _ := testPopulation(t, 10)
	init := NewEngine(testConfig(3), clients2, nil).GlobalWeights()
	for i := range init {
		if math.Abs(res.Weights[i]-init[i]) > 1e-12 {
			t.Fatal("weights moved despite identity transform")
		}
	}
}

func TestTotalSamples(t *testing.T) {
	clients, _ := testPopulation(t, 10)
	if TotalSamples(clients) != 1000 {
		t.Fatalf("TotalSamples = %d", TotalSamples(clients))
	}
}
