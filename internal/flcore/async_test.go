package flcore

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/simres"
)

func asyncConfig(duration float64) AsyncConfig {
	return AsyncConfig{
		Duration: duration, Concurrency: 4, EvalInterval: duration / 4,
		Seed: 42, BatchSize: 10, LocalEpochs: 1,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, dataset.MNISTLike.Dim, []int{16}, 10, 0)
		},
		Optimizer: func(round int) nn.Optimizer { return nn.NewSGD(0.05, 0.9) },
		Latency:   simres.LatencyModel{CostPerSample: 0.01, CommLatency: 0.5},
		EvalBatch: 128,
	}
}

func TestRunAsyncLearns(t *testing.T) {
	clients, test := testPopulation(t, 10)
	res := RunAsync(asyncConfig(120), clients, test)
	if res.FinalAcc < 0.4 {
		t.Fatalf("async final accuracy %v too low", res.FinalAcc)
	}
	if res.TotalTime > 120 {
		t.Fatalf("simulated time %v exceeds budget", res.TotalTime)
	}
	if len(res.History) < 3 {
		t.Fatalf("history has %d records", len(res.History))
	}
}

func TestRunAsyncAppliesManyUpdates(t *testing.T) {
	clients, test := testPopulation(t, 10)
	res := RunAsync(asyncConfig(60), clients, test)
	// With concurrency 4 and mean latency ~1–4.5s, 60s fits dozens of
	// updates; the final history record's Round is the applied count.
	applied := res.History[len(res.History)-1].Round
	if applied < 20 {
		t.Fatalf("only %d async updates applied in 60s", applied)
	}
}

func TestRunAsyncStalenessDiscount(t *testing.T) {
	// Pure math check on the mixing rate: staleness 0 uses alpha, larger
	// staleness strictly less.
	alpha, a := 0.6, 0.5
	m0 := alpha * math.Pow(1, -a)
	m3 := alpha * math.Pow(4, -a)
	if m0 != alpha || m3 >= m0 {
		t.Fatalf("staleness discount broken: %v vs %v", m0, m3)
	}
}

func TestRunAsyncDeterministic(t *testing.T) {
	clients1, test1 := testPopulation(t, 10)
	clients2, test2 := testPopulation(t, 10)
	r1 := RunAsync(asyncConfig(30), clients1, test1)
	r2 := RunAsync(asyncConfig(30), clients2, test2)
	if r1.FinalAcc != r2.FinalAcc || r1.TotalTime != r2.TotalTime {
		t.Fatalf("async run not deterministic: %v/%v vs %v/%v", r1.FinalAcc, r1.TotalTime, r2.FinalAcc, r2.TotalTime)
	}
}

func TestRunAsyncInvalidConfigPanics(t *testing.T) {
	clients, test := testPopulation(t, 10)
	cfg := asyncConfig(10)
	cfg.Concurrency = 0
	mustPanic(t, func() { RunAsync(cfg, clients, test) })
	cfg = asyncConfig(0)
	mustPanic(t, func() { RunAsync(cfg, clients, test) })
}

func TestProxPullsTowardGlobal(t *testing.T) {
	// With a huge mu, local training cannot move far from the global
	// weights; with mu=0 it moves freely.
	_, test := testPopulation(t, 10)
	base := testConfig(1)
	base.Optimizer = func(round int) nn.Optimizer { return nn.NewSGD(0.1, 0) }

	run := func(mu float64) float64 {
		cfg := base
		cfg.ProxMu = mu
		cl, _ := testPopulation(t, 10)
		eng := NewEngine(cfg, cl, test)
		g0 := append([]float64(nil), eng.GlobalWeights()...)
		res := eng.Run(fixedSelector{0})
		d := 0.0
		for i := range g0 {
			dv := res.Weights[i] - g0[i]
			d += dv * dv
		}
		return math.Sqrt(d)
	}
	free := run(0)
	constrained := run(5) // lr·mu = 0.5 < 1 keeps the proximal step stable
	if constrained >= free {
		t.Fatalf("prox term did not constrain drift: free %v, mu=5 %v", free, constrained)
	}
}

func TestEpochsForOverride(t *testing.T) {
	clients, test := testPopulation(t, 10)
	cfg := testConfig(1)
	cfg.Latency.JitterFrac = 0
	cfg.LocalEpochs = 2
	// Slow clients (CPU < 1) train a single epoch: their latency halves.
	cfg.EpochsFor = func(c *Client, round int) int {
		if c.CPU < 1 {
			return 1
		}
		return 2
	}
	eng := NewEngine(cfg, clients, test)
	u := eng.TrainClient(0, 9, eng.GlobalWeights()) // 0.1-CPU client
	full := cfg.Latency.Latency(clients[9].CPU, clients[9].NumSamples(), 2, nil)
	if u.Latency >= full {
		t.Fatalf("partial-work latency %v not below full %v", u.Latency, full)
	}
}

func TestClientDriftChangesLatency(t *testing.T) {
	clients, test := testPopulation(t, 10)
	cfg := testConfig(1)
	cfg.Latency.JitterFrac = 0
	clients[0].Drift = func(round int) float64 {
		if round >= 5 {
			return 0.1 // 10x slowdown
		}
		return 1
	}
	eng := NewEngine(cfg, clients, test)
	before := eng.TrainClient(0, 0, eng.GlobalWeights()).Latency
	after := eng.TrainClient(5, 0, eng.GlobalWeights()).Latency
	// Compute scales 10x; the fixed 0.5s communication floor damps the
	// end-to-end ratio to 4x for this shard size.
	if after < before*3 {
		t.Fatalf("drift not reflected: before %v after %v", before, after)
	}
}
