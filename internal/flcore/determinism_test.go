package flcore

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/simres"
)

// Config.Parallel promises that results are deterministic either way
// because all randomness is keyed on (Seed, round, client). This is the
// regression test enforcing that promise: the two execution modes must
// produce byte-identical round histories and final weights.

// historyBytes renders a round history with full bit precision, so NaN
// evaluations and the last ulp of every float participate in the
// comparison.
func historyBytes(res *Result) string {
	var b strings.Builder
	for _, rec := range res.History {
		fmt.Fprintf(&b, "%d|%v|%x|%x|%x|%x\n",
			rec.Round, rec.Selected,
			math.Float64bits(rec.Latency), math.Float64bits(rec.SimTime),
			math.Float64bits(rec.Acc), math.Float64bits(rec.Loss))
	}
	for _, w := range res.Weights {
		fmt.Fprintf(&b, "%x ", math.Float64bits(w))
	}
	return b.String()
}

func TestParallelMatchesSequentialByteForByte(t *testing.T) {
	train := dataset.Generate(dataset.CIFAR10Like, 1200, 1)
	test := dataset.Generate(dataset.CIFAR10Like, 300, 2)
	parts := dataset.PartitionIID(train.Len(), 12, rand.New(rand.NewSource(3)))
	cpus := simres.AssignGroups(12, []float64{4, 2, 1, 0.5})
	clients := BuildClients(train, test, parts, cpus, 20, 4)

	run := func(parallel bool) *Result {
		cfg := Config{
			Rounds: 8, ClientsPerRound: 4, LocalEpochs: 1, BatchSize: 10, Seed: 11,
			Model: func(rng *rand.Rand) *nn.Model {
				return nn.NewMLP(rng, train.Dim(), []int{12}, 10, 0)
			},
			Optimizer: func(round int) nn.Optimizer { return nn.NewRMSprop(0.01, 0.995) },
			Latency:   simres.DefaultModel,
			EvalEvery: 3,
			EvalBatch: 64,
			Parallel:  parallel,
		}
		return NewEngine(cfg, clients, test).Run(&RandomSelector{NumClients: len(clients), ClientsPerRound: 4})
	}

	seq := run(false)
	par := run(true)
	if len(seq.History) != 8 || len(par.History) != 8 {
		t.Fatalf("history lengths %d / %d", len(seq.History), len(par.History))
	}
	if sb, pb := historyBytes(seq), historyBytes(par); sb != pb {
		i := 0
		for i < len(sb) && i < len(pb) && sb[i] == pb[i] {
			i++
		}
		t.Fatalf("parallel run diverges from sequential at byte %d:\nseq: %.80s\npar: %.80s",
			i, sb[max(0, i-40):], pb[max(0, i-40):])
	}
}
