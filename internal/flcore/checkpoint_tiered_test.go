package flcore

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/compress"
)

// runTieredResumeBitExact is the core crash-safety contract of the sim
// engine: an uninterrupted run vs snapshot-at-version-10 + restore into a
// fresh engine + tail must be bit-identical — weights, clock, commit log
// suffix, and cumulative totals.
func runTieredResumeBitExact(t *testing.T, mutate func(*TieredAsyncConfig)) {
	t.Helper()
	apply := func(cfg *TieredAsyncConfig) {
		if mutate != nil {
			mutate(cfg)
		}
	}
	clients, tiers, test, cfg := tieredFixture(t, 9)
	apply(&cfg)
	full := RunTieredAsync(cfg, tiers, clients, test)
	if len(full.TierRounds) <= 10 {
		t.Fatalf("fixture committed only %d rounds; snapshot point unreachable", len(full.TierRounds))
	}

	const snapAt = 10
	var snap *TieredCheckpoint
	clientsB, tiersB, testB, cfgB := tieredFixture(t, 9)
	apply(&cfgB)
	cfgB.CheckpointEvery = 5
	cfgB.OnCheckpoint = func(c *TieredCheckpoint) {
		if c.Version == snapAt {
			snap = c
		}
	}
	RunTieredAsync(cfgB, tiersB, clientsB, testB)
	if snap == nil {
		t.Fatalf("no checkpoint observed at version %d", snapAt)
	}

	// Resume from the durable encoding, not the in-memory object: the bytes
	// on disk are what a crashed process would have.
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeTieredCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}

	clientsC, tiersC, testC, cfgC := tieredFixture(t, 9)
	apply(&cfgC)
	engC := NewTieredAsyncEngine(cfgC, tiersC, clientsC, testC)
	if err := engC.Restore(restored); err != nil {
		t.Fatal(err)
	}
	tail := engC.Run()

	if len(tail.TierRounds) != len(full.TierRounds)-snapAt {
		t.Fatalf("resumed run produced %d commits, want %d", len(tail.TierRounds), len(full.TierRounds)-snapAt)
	}
	if !reflect.DeepEqual(tail.TierRounds, full.TierRounds[snapAt:]) {
		t.Fatalf("resumed commit log diverges from the uninterrupted run:\n%+v\nvs\n%+v",
			tail.TierRounds[0], full.TierRounds[snapAt])
	}
	if !reflect.DeepEqual(tail.Commits, full.Commits) {
		t.Fatalf("cumulative commits %v, want %v", tail.Commits, full.Commits)
	}
	if tail.UplinkBytes != full.UplinkBytes {
		t.Fatalf("cumulative uplink %d, want %d", tail.UplinkBytes, full.UplinkBytes)
	}
	if math.Float64bits(tail.TotalTime) != math.Float64bits(full.TotalTime) {
		t.Fatalf("clock differs: %v vs %v", tail.TotalTime, full.TotalTime)
	}
	for i := range full.Weights {
		if math.Float64bits(full.Weights[i]) != math.Float64bits(tail.Weights[i]) {
			t.Fatalf("weight %d differs after resume", i)
		}
	}
}

func TestTieredCheckpointResumeBitExact(t *testing.T) {
	runTieredResumeBitExact(t, nil)
}

// The compressed variant additionally carries the clients' error-feedback
// residuals through the checkpoint: dropping them would change every
// post-resume update.
func TestTieredCheckpointResumeBitExactCompressed(t *testing.T) {
	runTieredResumeBitExact(t, func(cfg *TieredAsyncConfig) {
		cfg.Codec = compress.NewTopK(0.25)
	})
}

func TestTieredCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	c := &TieredCheckpoint{
		Format: TieredCheckpointFormat, Seed: 7, Version: 3,
		SimTime: 12.5, NextEval: 40,
		Weights: []float64{1, -2}, Rounds: []int{2, 1}, Commits: []int{2, 1},
		Tiers: [][]int{{0, 1}, {2}},
		Pending: []PendingTierRound{{
			Tier: 1, TierRound: 1, PulledVersion: 2, Finish: 14,
			Selected: []int{2}, Weights: []float64{0.5, 0.5},
			Latency: 2, Lats: []float64{2}, UplinkBytes: 24,
		}},
		Residuals: map[int][]float64{2: {0.1, 0}},
	}
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTieredCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := DecodeTieredCheckpoint(data[:len(data)-5]); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	if _, err := DecodeTieredCheckpoint(append(append([]byte(nil), data...), 0xFF)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	bad := *c
	bad.Format = TieredCheckpointFormat + 1
	data, err = bad.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTieredCheckpoint(data); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestTieredCheckpointRestoreValidation walks every rejection path: a
// checkpoint from another job, a torn or hand-edited one, and non-finite
// model state must all fail loudly before touching engine state.
func TestTieredCheckpointRestoreValidation(t *testing.T) {
	clients, tiers, test, cfg := tieredFixture(t, 9)
	eng := NewTieredAsyncEngine(cfg, tiers, clients, test)
	nw := len(eng.GlobalWeights())
	good := func() *TieredCheckpoint {
		return &TieredCheckpoint{
			Format: TieredCheckpointFormat, Seed: cfg.Seed, Version: 2,
			SimTime: 5, NextEval: 40, Weights: make([]float64, nw),
			Rounds: []int{1, 1, 0}, Commits: []int{1, 1, 0},
			Tiers: [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}},
		}
	}
	cases := map[string]func(*TieredCheckpoint){
		"unknown format":    func(c *TieredCheckpoint) { c.Format = 99 },
		"wrong seed":        func(c *TieredCheckpoint) { c.Seed = 999 },
		"wrong weight len":  func(c *TieredCheckpoint) { c.Weights = []float64{1} },
		"NaN weight":        func(c *TieredCheckpoint) { c.Weights[0] = math.NaN() },
		"Inf weight":        func(c *TieredCheckpoint) { c.Weights[1] = math.Inf(1) },
		"negative version":  func(c *TieredCheckpoint) { c.Version = -1 },
		"tier count":        func(c *TieredCheckpoint) { c.Tiers = c.Tiers[:2] },
		"cursor lengths":    func(c *TieredCheckpoint) { c.Rounds = []int{1} },
		"empty tier":        func(c *TieredCheckpoint) { c.Tiers[1] = nil },
		"member range":      func(c *TieredCheckpoint) { c.Tiers[0][0] = 99 },
		"duplicate member":  func(c *TieredCheckpoint) { c.Tiers[0][0] = 8 },
		"manager state":     func(c *TieredCheckpoint) { c.ManagerState = []byte{1, 2, 3} },
		"negative simtime":  func(c *TieredCheckpoint) { c.SimTime = -1 },
		"pending tier":      func(c *TieredCheckpoint) { c.Pending = []PendingTierRound{{Tier: 9}} },
		"pending pulledver": func(c *TieredCheckpoint) { c.Pending = pendingAt(nw, 3) },
		"pending weights": func(c *TieredCheckpoint) {
			p := pendingAt(nw, 1)
			p[0].Weights = []float64{1}
			c.Pending = p
		},
		"pending lats": func(c *TieredCheckpoint) {
			p := pendingAt(nw, 1)
			p[0].Lats = nil
			c.Pending = p
		},
		"pending selected": func(c *TieredCheckpoint) {
			p := pendingAt(nw, 1)
			p[0].Selected = []int{42}
			c.Pending = p
		},
		"residual key": func(c *TieredCheckpoint) { c.Residuals = map[int][]float64{99: make([]float64, nw)} },
		"residual len": func(c *TieredCheckpoint) { c.Residuals = map[int][]float64{0: {1}} },
	}
	for name, breakIt := range cases {
		c := good()
		breakIt(c)
		if err := eng.Restore(c); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := eng.Restore(good()); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
}

// pendingAt builds one well-formed in-flight tier round with the given
// pulled version, for tests to then break one field of.
func pendingAt(nw, pulledVer int) []PendingTierRound {
	return []PendingTierRound{{
		Tier: 0, TierRound: 1, PulledVersion: pulledVer, Finish: 9,
		Selected: []int{0, 1}, Weights: make([]float64, nw),
		Latency: 1, Lats: []float64{1, 1}, UplinkBytes: 8,
	}}
}

// TestTieredCheckpointSaveFileCrashSafe simulates every crash point of the
// atomic write: after two successful saves, a torn newest file must fall
// back to the rotated previous snapshot, and stale temp files from an
// interrupted write must not break later saves or loads.
func TestTieredCheckpointSaveFileCrashSafe(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	mk := func(version int) *TieredCheckpoint {
		return &TieredCheckpoint{
			Format: TieredCheckpointFormat, Seed: 7, Version: version,
			Weights: []float64{float64(version)},
			Rounds:  []int{version}, Commits: []int{version}, Tiers: [][]int{{0}},
		}
	}
	if err := mk(1).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := mk(2).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTieredCheckpointFile(path)
	if err != nil || got.Version != 2 {
		t.Fatalf("loaded %+v, %v; want version 2", got, err)
	}

	// Crash mid-write of version 3: the newest file is torn garbage. Load
	// must fall back to version 2, now in the rotated slot.
	if err := mk(3).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("torn half-written snapsh"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = LoadTieredCheckpointFile(path)
	if err != nil {
		t.Fatalf("no fallback to previous snapshot: %v", err)
	}
	if got.Version != 2 {
		t.Fatalf("fallback loaded version %d, want 2", got.Version)
	}

	// Crash before the rename: a stale temp file litters the directory.
	// Saves and loads must keep working, and the temp must not shadow the
	// real checkpoint.
	if err := os.WriteFile(path+".tmp12345", []byte("abandoned"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mk(4).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err = LoadTieredCheckpointFile(path)
	if err != nil || got.Version != 4 {
		t.Fatalf("loaded %+v, %v; want version 4", got, err)
	}

	// Both the newest and the previous snapshot gone bad: the error names
	// both paths instead of silently resuming garbage.
	if err := os.WriteFile(path, []byte("bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".prev", []byte("bad too"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTieredCheckpointFile(path); err == nil {
		t.Fatal("two corrupt snapshots accepted")
	}
}

// The plain synchronous Checkpoint shares the atomic SaveFile path; pin its
// fallback too.
func TestCheckpointSaveFileFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.gob")
	a := &Checkpoint{CompletedRounds: 1, SimTime: 1, Weights: []float64{1}, Seed: 3}
	b := &Checkpoint{CompletedRounds: 2, SimTime: 2, Weights: []float64{2}, Seed: 3}
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatalf("no fallback: %v", err)
	}
	if got.CompletedRounds != 1 {
		t.Fatalf("fallback loaded %+v, want the previous snapshot", got)
	}
}

// Restore must reject non-finite model state in the synchronous checkpoint
// as well.
func TestRestoreRejectsNonFiniteWeights(t *testing.T) {
	clients, test := testPopulation(t, 10)
	eng := NewEngine(testConfig(5), clients, test)
	w := make([]float64, len(eng.GlobalWeights()))
	w[0] = math.NaN()
	if err := eng.Restore(&Checkpoint{Seed: 42, Weights: w}); err == nil {
		t.Fatal("NaN weights accepted")
	}
	w[0] = math.Inf(-1)
	if err := eng.Restore(&Checkpoint{Seed: 42, Weights: w}); err == nil {
		t.Fatal("Inf weights accepted")
	}
}
