package flcore_test

// Live-tiering integration tests for the simulated tiered-async engine:
// the real internal/tiering.Manager plugged into TieredAsyncConfig.Manager.
// These live in an external test package because tiering imports flcore.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/nn"
	"repro/internal/simres"
	"repro/internal/tiering"
)

// liveFixture builds a 9-client, 3-CPU-group population. When driftAfter
// ≥ 0, the three fastest clients collapse to 5% of their CPU once their
// tier-local round counter reaches driftAfter — and stay slow from then on
// (the closure latches, so migrating to a tier with a lower round counter
// cannot un-drift them).
func liveFixture(t *testing.T, driftAfter int) ([]*flcore.Client, *dataset.Dataset, flcore.TieredAsyncConfig, map[int]float64) {
	t.Helper()
	train := dataset.Generate(dataset.CIFAR10Like, 600, 1)
	test := dataset.Generate(dataset.CIFAR10Like, 200, 2)
	parts := dataset.PartitionIID(train.Len(), 9, rand.New(rand.NewSource(3)))
	cpus := simres.AssignGroups(9, []float64{4, 1, 0.25})
	clients := flcore.BuildClients(train, test, parts, cpus, 20, 4)
	if driftAfter >= 0 {
		for i := 0; i < 3; i++ {
			latched := false
			clients[i].Drift = func(round int) float64 {
				if round >= driftAfter {
					latched = true
				}
				if latched {
					return 0.05
				}
				return 1
			}
		}
	}
	cfg := flcore.TieredAsyncConfig{
		Duration: 240, ClientsPerRound: 2,
		EvalInterval: 60, Seed: 7, BatchSize: 10, LocalEpochs: 1,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, train.Dim(), []int{8}, 10, 0)
		},
		Optimizer: func(round int) nn.Optimizer { return nn.NewRMSprop(0.01, 0.995) },
		Latency:   simres.DefaultModel,
		EvalBatch: 64,
	}
	prof := core.Profile(clients, cfg.Latency, core.ProfilerConfig{SyncRounds: 3, Tmax: 1e6, Epochs: 1, Seed: 5})
	return clients, test, cfg, prof.Latency
}

func liveManager(t *testing.T, cfg flcore.TieredAsyncConfig, lat map[int]float64, retierEvery int) *tiering.Manager {
	t.Helper()
	mgr, err := tiering.NewManager(tiering.Config{
		NumTiers: 3, RetierEvery: retierEvery,
		ClientsPerRound: cfg.ClientsPerRound, Seed: cfg.Seed,
	}, lat)
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

// TestTieredAsyncLiveRetierMigratesDriftedClients is the sim half of the
// live-tiering story: fast clients whose resources collapse mid-run must
// migrate out of the fast tier at a rebuild point, and the run must keep
// satisfying the commit invariants throughout.
func TestTieredAsyncLiveRetierMigratesDriftedClients(t *testing.T) {
	clients, test, cfg, lat := liveFixture(t, 4)
	mgr := liveManager(t, cfg, lat, 8)
	cfg.Manager = mgr
	res := flcore.RunTieredAsync(cfg, nil, clients, test)

	if res.Retiers < 1 || res.Migrations < 1 {
		t.Fatalf("drifting clients never re-tiered: retiers=%d migrations=%d", res.Retiers, res.Migrations)
	}
	moved := false
	for i := 0; i < 3; i++ {
		if tier, ok := mgr.TierOf(i); ok && tier != 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("no drifted client left tier 0: tiers %v", mgr.Tiers())
	}
	for i, rec := range res.TierRounds {
		if rec.Version != i+1 || rec.Staleness < 0 || rec.Weight <= 0 || rec.Weight > 1 {
			t.Fatalf("commit %d malformed after migration: %+v", i, rec)
		}
	}
	if len(mgr.Log()) != res.Retiers {
		t.Fatalf("manager log %d entries, result counted %d retiers", len(mgr.Log()), res.Retiers)
	}
}

// TestTieredAsyncManagedDeterministic pins determinism of the managed
// engine: fresh populations and fresh Managers under the same seed must
// produce bit-identical commit logs and final weights.
func TestTieredAsyncManagedDeterministic(t *testing.T) {
	run := func() *flcore.TieredAsyncResult {
		clients, test, cfg, lat := liveFixture(t, 4)
		cfg.Manager = liveManager(t, cfg, lat, 8)
		return flcore.RunTieredAsync(cfg, nil, clients, test)
	}
	a, b := run(), run()
	if a.Retiers == 0 {
		t.Fatal("fixture no longer re-tiers; the determinism check would be vacuous")
	}
	if !reflect.DeepEqual(a.TierRounds, b.TierRounds) || a.Retiers != b.Retiers || a.Migrations != b.Migrations {
		t.Fatalf("managed runs diverged: %d/%d retiers, %d/%d migrations", a.Retiers, b.Retiers, a.Migrations, b.Migrations)
	}
	for i := range a.Weights {
		if math.Float64bits(a.Weights[i]) != math.Float64bits(b.Weights[i]) {
			t.Fatalf("weights differ at %d", i)
		}
	}
}

// TestTieredAsyncManagerFrozenMatchesStatic anchors the refactor: a
// Manager with re-tiering and adaptive selection off must reproduce the
// legacy static-tier engine bit for bit — against the raw core.BuildTiers
// membership the static path would use, member order included (TierCohort
// draws are permutations over member positions).
func TestTieredAsyncManagerFrozenMatchesStatic(t *testing.T) {
	clients, test, cfg, lat := liveFixture(t, -1)
	mgr := liveManager(t, cfg, lat, 0) // RetierEvery 0: frozen
	managedCfg := cfg
	managedCfg.Manager = mgr
	managed := flcore.RunTieredAsync(managedCfg, nil, clients, test)
	static := flcore.RunTieredAsync(cfg, core.TierMembers(core.BuildTiers(lat, 3, core.Quantile)), clients, test)

	if len(managed.TierRounds) == 0 {
		t.Fatal("no commits")
	}
	if managed.Retiers != 0 || managed.Migrations != 0 {
		t.Fatalf("frozen manager re-tiered: %d/%d", managed.Retiers, managed.Migrations)
	}
	if !reflect.DeepEqual(managed.TierRounds, static.TierRounds) {
		t.Fatalf("frozen-manager commit log diverges from static engine")
	}
	for i := range managed.Weights {
		if math.Float64bits(managed.Weights[i]) != math.Float64bits(static.Weights[i]) {
			t.Fatalf("weights differ at %d", i)
		}
	}
}

// TestTieredAsyncAdaptiveSelectionRuns exercises Algorithm-2 adaptive
// cohort sizing end to end in the sim engine: accuracy feedback arrives at
// eval points, probabilities leave uniform, and boosted rounds stay within
// the credit budget.
func TestTieredAsyncAdaptiveSelectionRuns(t *testing.T) {
	clients, test, cfg, lat := liveFixture(t, -1)
	mgr, err := tiering.NewManager(tiering.Config{
		NumTiers: 3, RetierEvery: 10,
		ClientsPerRound: cfg.ClientsPerRound, Seed: cfg.Seed,
		Adaptive: true, Credits: 3,
	}, lat)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Manager = mgr
	cfg.EvalInterval = 30 // frequent eval → accuracy feedback flows
	res := flcore.RunTieredAsync(cfg, nil, clients, test)
	if len(res.TierRounds) == 0 {
		t.Fatal("no commits")
	}
	grew := false
	for _, rec := range res.TierRounds {
		if len(rec.Selected) > cfg.ClientsPerRound {
			grew = true
		}
		if len(rec.Selected) > 2*cfg.ClientsPerRound {
			t.Fatalf("cohort %v exceeds the 2x boost cap", rec.Selected)
		}
	}
	probs := mgr.Probabilities()
	uniform := true
	for _, p := range probs {
		if math.Abs(p-1.0/3) > 1e-9 {
			uniform = false
		}
	}
	if uniform {
		t.Fatalf("accuracy feedback never moved the probabilities: %v (boosted rounds seen: %v)", probs, grew)
	}
	for _, c := range mgr.CreditsRemaining() {
		if c < 0 {
			t.Fatalf("credits went negative: %v", mgr.CreditsRemaining())
		}
	}
}
