package flcore

import (
	"fmt"
	"sync"
)

// ClientSource abstracts where a training engine's clients come from. The
// historical engines hold the whole population as a []*Client — fine at the
// paper's |K|=50, fatal at the million-client populations the dynamic-
// tiering literature evaluates, where materializing N datasets costs N×
// shard-size resident memory even though only the selected cohorts ever
// train. A ClientSource lets the engine acquire exactly the clients a tier
// round selected and hand them back when the round's aggregate is computed,
// so resident client state scales with cohort size, not population size.
//
// Acquire(id) must be deterministic: acquiring the same id twice (with any
// interleaving of other acquisitions and releases) must yield clients whose
// training behavior is byte-identical — that is what keeps a lazily
// materialized run equal to an eagerly materialized one on the same seed
// (see TestScaledEngineEquivalence). Engines call Acquire/Release from a
// single goroutine today, but implementations are expected to be safe for
// concurrent use so the socket runtime can adopt them.
type ClientSource interface {
	// NumClients returns the registered population size N.
	NumClients() int
	// Acquire materializes (or fetches) client id. The returned client is
	// owned by the caller until Release.
	Acquire(id int) *Client
	// Release hands a client back after its round. Implementations may
	// drop the client's heavy state (datasets) entirely; any cross-round
	// per-client state the engine depends on (the error-feedback residual)
	// must survive to the next Acquire of the same id.
	Release(c *Client)
}

// ResidualStore is the optional checkpointing contract for a ClientSource
// that keeps error-feedback residuals outside the materialized clients
// (LazyClients). Snapshot/Restore use it to carry compression state across
// a crash without sweeping a client slice that does not exist.
type ResidualStore interface {
	// ResidualSnapshot returns a deep copy of every live residual, keyed
	// by client id.
	ResidualSnapshot() map[int][]float64
	// RestoreResiduals replaces the store's residual state with a deep
	// copy of the given map (nil clears it).
	RestoreResiduals(map[int][]float64)
}

// EagerClients adapts a fully materialized []*Client population to the
// ClientSource interface: Acquire indexes the slice and Release is a no-op.
// It is the compatibility shim that keeps every historical construction
// path (BuildClients + NewTieredAsyncEngine) running unchanged on the
// source-based engine core.
type EagerClients struct {
	clients []*Client
}

// NewEagerClients wraps an existing population.
func NewEagerClients(clients []*Client) *EagerClients {
	return &EagerClients{clients: clients}
}

// NumClients implements ClientSource.
func (s *EagerClients) NumClients() int { return len(s.clients) }

// Acquire implements ClientSource.
func (s *EagerClients) Acquire(id int) *Client { return s.clients[id] }

// Release implements ClientSource. Eager clients stay resident.
func (s *EagerClients) Release(c *Client) {}

// Slice returns the underlying population (not a copy).
func (s *EagerClients) Slice() []*Client { return s.clients }

// DeriveSeed exposes the engine's splitmix64 sub-seed derivation for
// ClientFactory implementations outside this package: a fully synthetic
// population keys each client's shard generation on DeriveSeed(seed, id, k)
// so re-materialization is byte-stable and ids are statistically
// independent, exactly like the engine's own (seed, round, client) streams.
func DeriveSeed(seed int64, a, b int) int64 { return mix(seed, a, b) }

// ClientFactory deterministically materializes one client by id: same id →
// byte-identical client (dataset contents, CPU share, bandwidth, drift
// behavior), independent of materialization order. Factories must set
// Client.ID = id and must not retain the returned client. BuildClient is
// the canonical factory over a shared dataset + partition; population-scale
// experiments use fully synthetic factories that generate each client's
// shard from (seed, id) so no O(N) state exists at all.
type ClientFactory func(id int) *Client

// LazyStats is a point-in-time accounting snapshot of a LazyClients source.
type LazyStats struct {
	// Live is the number of currently materialized (acquired, unreleased)
	// clients; Peak its high-water mark over the source's lifetime.
	Live, Peak int
	// Materialized counts factory invocations (cache-less: every Acquire
	// of a released client re-materializes it).
	Materialized int64
	// Residuals is the number of clients with tracked error-feedback
	// state — bounded by the ever-selected client count, the sparse
	// server-side bookkeeping guarantee.
	Residuals int
}

// LazyClients is the population-scale ClientSource: clients are derived on
// demand from a deterministic factory, held only while a tier round trains
// them, and dropped at Release — the PR-5 replica/workspace pool machinery
// inside Engine.TrainClient already reuses the model-side scratch across
// whatever client is currently materialized, so the only per-client
// resident cost between rounds is the sparse residual map (compression runs
// only, keyed by ever-selected ids).
type LazyClients struct {
	n       int
	factory ClientFactory

	mu        sync.Mutex
	live      map[int]int // id → acquisition refcount
	residuals map[int][]float64
	peak      int
	built     int64
}

// NewLazyClients builds a lazy source over a deterministic factory for a
// registered population of n clients.
func NewLazyClients(n int, factory ClientFactory) *LazyClients {
	if n <= 0 {
		panic(fmt.Sprintf("flcore: LazyClients population %d", n))
	}
	if factory == nil {
		panic("flcore: LazyClients needs a factory")
	}
	return &LazyClients{n: n, factory: factory, live: make(map[int]int), residuals: make(map[int][]float64)}
}

// NumClients implements ClientSource.
func (s *LazyClients) NumClients() int { return s.n }

// Acquire implements ClientSource: it materializes client id through the
// factory and attaches any error-feedback residual carried over from the
// client's previous rounds.
func (s *LazyClients) Acquire(id int) *Client {
	if id < 0 || id >= s.n {
		panic(fmt.Sprintf("flcore: LazyClients.Acquire(%d) outside population [0,%d)", id, s.n))
	}
	c := s.factory(id)
	if c == nil {
		panic(fmt.Sprintf("flcore: client factory returned nil for id %d", id))
	}
	if c.ID != id {
		panic(fmt.Sprintf("flcore: client factory returned ID %d for id %d", c.ID, id))
	}
	s.mu.Lock()
	c.residual = s.residuals[id]
	s.live[id]++
	if l := s.liveCount(); l > s.peak {
		s.peak = l
	}
	s.built++
	s.mu.Unlock()
	return c
}

// liveCount sums refcounts; callers hold mu.
func (s *LazyClients) liveCount() int {
	total := 0
	for _, rc := range s.live {
		total += rc
	}
	return total
}

// Release implements ClientSource: the client's heavy state is dropped (the
// engine holds no other reference, so the datasets become garbage), and its
// residual — the one piece of client state that must survive to the next
// selection — moves into the source's sparse map.
func (s *LazyClients) Release(c *Client) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rc, ok := s.live[c.ID]; !ok || rc <= 0 {
		panic(fmt.Sprintf("flcore: LazyClients.Release of unacquired client %d", c.ID))
	} else if rc == 1 {
		delete(s.live, c.ID)
	} else {
		s.live[c.ID] = rc - 1
	}
	if c.residual != nil {
		s.residuals[c.ID] = c.residual
	} else {
		delete(s.residuals, c.ID)
	}
	c.residual = nil
}

// Stats returns the source's current accounting snapshot.
func (s *LazyClients) Stats() LazyStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return LazyStats{Live: s.liveCount(), Peak: s.peak, Materialized: s.built, Residuals: len(s.residuals)}
}

// ResidualSnapshot implements ResidualStore.
func (s *LazyClients) ResidualSnapshot() map[int][]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.residuals) == 0 {
		return nil
	}
	out := make(map[int][]float64, len(s.residuals))
	for id, r := range s.residuals {
		out[id] = append([]float64(nil), r...)
	}
	return out
}

// RestoreResiduals implements ResidualStore.
func (s *LazyClients) RestoreResiduals(res map[int][]float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.residuals = make(map[int][]float64, len(res))
	for id, r := range res {
		s.residuals[id] = append([]float64(nil), r...)
	}
}

var (
	_ ClientSource  = (*EagerClients)(nil)
	_ ClientSource  = (*LazyClients)(nil)
	_ ResidualStore = (*LazyClients)(nil)
)
