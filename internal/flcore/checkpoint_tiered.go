package flcore

import (
	"bytes"
	"container/heap"
	"encoding/gob"
	"fmt"
	"sort"
)

// TieredCheckpointFormat is the current on-disk format version. Loads
// reject any other value: a checkpoint from a future (or corrupted) format
// must fail loudly instead of being misinterpreted field-by-field.
const TieredCheckpointFormat = 1

// TierManagerState is the optional checkpointing contract for a
// TierManager: a Manager that implements it can serialize its internal
// state (membership, EWMA latency estimates, selection probabilities,
// credits, counters) into an opaque blob and restore it later. The blob is
// opaque to flcore on purpose — flcore cannot import internal/tiering, so
// the bytes round-trip through TieredCheckpoint.ManagerState untouched.
type TierManagerState interface {
	// SnapshotState serializes the manager's current state.
	SnapshotState() ([]byte, error)
	// RestoreState loads a blob produced by SnapshotState into the
	// manager, replacing its current state.
	RestoreState(data []byte) error
}

// PendingTierRound is one in-flight tier round captured mid-run: the tier
// pulled the global model at version PulledVersion, trained its cohort,
// and its FedAvg aggregate is waiting in the event queue to commit at
// simulated time Finish. Snapshotting the *trained* aggregate (rather
// than re-training on resume) keeps resume bit-exact without replaying
// the pulled weights or double-counting Manager cohort draws.
type PendingTierRound struct {
	Tier, TierRound, PulledVersion int
	Finish                         float64
	Selected                       []int
	Weights                        []float64
	Latency                        float64
	Lats                           []float64
	UplinkBytes                    int64
	// DownlinkBytes and CommBytes mirror tierRun's broadcast accounting:
	// the round's total broadcast charge and each selected client's
	// down+up wire bytes (parallel to Selected). Checkpoints from before
	// the fields gob-decode to zero/nil; a resumed commit then feeds the
	// Manager zero bytes for those rounds, which the EWMA simply skips.
	DownlinkBytes int64
	CommBytes     []int64
}

// TieredCheckpoint captures a tiered-asynchronous job between commits:
// the global model and FedAT version counter, the per-tier round cursors
// and cumulative commit counts (the cross-tier weights need the full
// history), tier membership, the in-flight rounds (sim engine only; a
// crashed socket aggregator's in-flight rounds die with their
// connections), the tiering Manager's serialized state, and the clients'
// error-feedback residuals under update compression. Both
// flcore.TieredAsyncEngine and flnet.TieredAsyncAggregator write and
// resume from this one format.
type TieredCheckpoint struct {
	// Format is the checkpoint format version (TieredCheckpointFormat).
	Format int
	Seed   int64
	// Version is the FedAT global commit counter at the snapshot.
	Version int
	// SimTime is the simulated clock (sim engine; zero for flnet).
	SimTime float64
	// NextEval is the next EvalInterval boundary, stored directly so a
	// resumed run replays the exact eval (and Manager accuracy-feedback)
	// schedule instead of re-deriving it with float drift.
	NextEval float64
	Weights  []float64
	// Rounds holds each tier's next local round index; Commits the
	// cumulative committed rounds per tier.
	Rounds  []int
	Commits []int
	// Retiers / Migrations / UplinkBytes / DownlinkBytes are cumulative
	// run totals. (DownlinkBytes gob-decodes to zero from checkpoints that
	// predate downlink accounting.)
	Retiers       int
	Migrations    int
	UplinkBytes   int64
	DownlinkBytes int64
	// Tiers is the tier membership at the snapshot, fastest first.
	Tiers [][]int
	// Pending are the in-flight tier rounds (ordered by commit time).
	Pending []PendingTierRound
	// ManagerState is the tiering Manager's opaque serialized state
	// (empty when the run has no Manager).
	ManagerState []byte
	// Residuals maps client index to its error-feedback residual (only
	// clients with a live residual appear; empty without a codec).
	Residuals map[int][]float64
}

// Clients returns the sorted set of client indices referenced by the
// checkpoint's tier membership — the roster a resume expects to find. The
// socket runtime compares it against the re-registered workers to decide
// between an exact resume and a re-profiled one.
func (c *TieredCheckpoint) Clients() []int {
	var ids []int
	for _, members := range c.Tiers {
		ids = append(ids, members...)
	}
	sort.Ints(ids)
	return ids
}

// Snapshot captures the engine between commits as a TieredCheckpoint. It
// fails if the configured Manager does not implement TierManagerState.
// Run takes these automatically every Cfg.CheckpointEvery commits; the
// snapshot point is always just after a commit's re-dispatch, so Pending
// holds every live tier's in-flight round.
func (e *TieredAsyncEngine) Snapshot() (*TieredCheckpoint, error) {
	c := &TieredCheckpoint{
		Format:        TieredCheckpointFormat,
		Seed:          e.Cfg.Seed,
		Version:       e.version,
		SimTime:       e.clock.Now(),
		NextEval:      e.nextEval,
		Weights:       append([]float64(nil), e.weights...),
		Rounds:        append([]int(nil), e.rounds...),
		Commits:       append([]int(nil), e.commits...),
		Retiers:       e.retiers,
		Migrations:    e.migrations,
		UplinkBytes:   e.uplink,
		DownlinkBytes: e.downlink,
		Tiers:         copyTiers(e.Tiers),
	}
	for _, run := range e.pending {
		c.Pending = append(c.Pending, PendingTierRound{
			Tier: run.tier, TierRound: run.tierRound, PulledVersion: run.pulledVer,
			Finish:        run.finish,
			Selected:      append([]int(nil), run.selected...),
			Weights:       append([]float64(nil), run.weights...),
			Latency:       run.latency,
			Lats:          append([]float64(nil), run.lats...),
			UplinkBytes:   run.upBytes,
			DownlinkBytes: run.downBytes,
			CommBytes:     append([]int64(nil), run.bytes...),
		})
	}
	// Canonical order: the heap's internal layout is an implementation
	// detail; commit order is fully determined by (finish, tier).
	sort.Slice(c.Pending, func(i, j int) bool {
		if c.Pending[i].Finish != c.Pending[j].Finish {
			return c.Pending[i].Finish < c.Pending[j].Finish
		}
		return c.Pending[i].Tier < c.Pending[j].Tier
	})
	if e.Cfg.Manager != nil {
		ms, ok := e.Cfg.Manager.(TierManagerState)
		if !ok {
			return nil, fmt.Errorf("flcore: TierManager %T does not implement TierManagerState; cannot checkpoint a managed run", e.Cfg.Manager)
		}
		state, err := ms.SnapshotState()
		if err != nil {
			return nil, fmt.Errorf("flcore: snapshotting manager state: %w", err)
		}
		c.ManagerState = state
	}
	switch src := e.src.(type) {
	case *EagerClients:
		// Resident population: residuals live on the clients themselves.
		for ci, cl := range src.Slice() {
			if cl.residual != nil {
				if c.Residuals == nil {
					c.Residuals = make(map[int][]float64)
				}
				c.Residuals[ci] = append([]float64(nil), cl.residual...)
			}
		}
	case ResidualStore:
		// Lazy population: residuals live in the source's sparse map,
		// keyed by ever-selected clients only.
		c.Residuals = src.ResidualSnapshot()
	default:
		if e.Cfg.Codec != nil {
			return nil, fmt.Errorf("flcore: ClientSource %T carries error-feedback state but implements neither EagerClients nor ResidualStore", e.src)
		}
	}
	return c, nil
}

// Restore loads a TieredCheckpoint into a freshly constructed engine (same
// config, clients, and seed as the checkpointed run) and arms Run to
// continue the interrupted job. Because every random stream is keyed on
// (Seed, tier round, client) and the in-flight rounds come back as their
// already-trained aggregates, the resumed run replays the uninterrupted
// one bit-for-bit — verified by TestTieredCheckpointResumeBitExact.
func (e *TieredAsyncEngine) Restore(c *TieredCheckpoint) error {
	if c.Format != TieredCheckpointFormat {
		return fmt.Errorf("flcore: unknown tiered checkpoint format %d (this build reads format %d)", c.Format, TieredCheckpointFormat)
	}
	if c.Seed != e.Cfg.Seed {
		return fmt.Errorf("flcore: checkpoint seed %d != engine seed %d", c.Seed, e.Cfg.Seed)
	}
	if len(c.Weights) != len(e.weights) {
		return fmt.Errorf("flcore: checkpoint has %d weights, model needs %d", len(c.Weights), len(e.weights))
	}
	if err := finiteWeights(c.Weights); err != nil {
		return fmt.Errorf("flcore: checkpoint weights: %w", err)
	}
	if c.Version < 0 {
		return fmt.Errorf("flcore: checkpoint version %d is negative", c.Version)
	}
	if c.SimTime < 0 {
		return fmt.Errorf("flcore: checkpoint simulated clock %v is negative", c.SimTime)
	}
	if len(c.Tiers) != len(e.Tiers) {
		return fmt.Errorf("flcore: checkpoint has %d tiers, engine %d", len(c.Tiers), len(e.Tiers))
	}
	if len(c.Rounds) != len(c.Tiers) || len(c.Commits) != len(c.Tiers) {
		return fmt.Errorf("flcore: checkpoint cursors (%d rounds, %d commits) do not match %d tiers",
			len(c.Rounds), len(c.Commits), len(c.Tiers))
	}
	if err := validateTiers(c.Tiers, e.numClients()); err != nil {
		return fmt.Errorf("flcore: checkpoint tiers: %w", err)
	}
	for i, p := range c.Pending {
		if p.Tier < 0 || p.Tier >= len(c.Tiers) {
			return fmt.Errorf("flcore: pending round %d targets tier %d of %d", i, p.Tier, len(c.Tiers))
		}
		if p.PulledVersion < 0 || p.PulledVersion > c.Version {
			return fmt.Errorf("flcore: pending round %d pulled version %d outside [0, %d]", i, p.PulledVersion, c.Version)
		}
		if len(p.Weights) != len(e.weights) {
			return fmt.Errorf("flcore: pending round %d has %d weights, model needs %d", i, len(p.Weights), len(e.weights))
		}
		if err := finiteWeights(p.Weights); err != nil {
			return fmt.Errorf("flcore: pending round %d weights: %w", i, err)
		}
		if len(p.Lats) != len(p.Selected) {
			return fmt.Errorf("flcore: pending round %d has %d latencies for %d clients", i, len(p.Lats), len(p.Selected))
		}
		for _, ci := range p.Selected {
			if ci < 0 || ci >= e.numClients() {
				return fmt.Errorf("flcore: pending round %d selects client %d of %d", i, ci, e.numClients())
			}
		}
	}
	for ci, r := range c.Residuals {
		if ci < 0 || ci >= e.numClients() {
			return fmt.Errorf("flcore: residual for client %d of %d", ci, e.numClients())
		}
		if len(r) != len(e.weights) {
			return fmt.Errorf("flcore: client %d residual has %d entries, model needs %d", ci, len(r), len(e.weights))
		}
	}
	// Manager state and checkpoint must agree: restoring a managed
	// checkpoint into an unmanaged engine (or vice versa) silently changes
	// cohort selection and re-tiering semantics.
	if len(c.ManagerState) > 0 {
		if e.Cfg.Manager == nil {
			return fmt.Errorf("flcore: checkpoint carries tiering-manager state but the engine has no Manager")
		}
		ms, ok := e.Cfg.Manager.(TierManagerState)
		if !ok {
			return fmt.Errorf("flcore: checkpoint carries manager state but TierManager %T cannot restore it", e.Cfg.Manager)
		}
		if err := ms.RestoreState(c.ManagerState); err != nil {
			return fmt.Errorf("flcore: restoring manager state: %w", err)
		}
	} else if e.Cfg.Manager != nil {
		return fmt.Errorf("flcore: engine has a Manager but the checkpoint carries no manager state")
	}

	copy(e.weights, c.Weights)
	e.eng.global.SetWeightsVector(e.weights)
	e.version = c.Version
	e.clock.Reset()
	e.clock.Advance(c.SimTime)
	e.nextEval = c.NextEval
	e.Tiers = copyTiers(c.Tiers)
	copy(e.rounds, c.Rounds)
	copy(e.commits, c.Commits)
	e.retiers, e.migrations = c.Retiers, c.Migrations
	e.uplink = c.UplinkBytes
	e.downlink = c.DownlinkBytes
	// Delta-downlink chains do not survive a crash: the resumed aggregator
	// cannot trust any client's held version, so chains and acks reset and
	// every tier's first post-resume broadcast goes dense. In lossless mode
	// the re-adopted base is bit-identical to the chain the crash lost, so
	// the model replays exactly; only the traffic (and therefore simulated
	// comm timing) of the fallback rounds differs from an uninterrupted
	// run. Lossy chains additionally restart their error feedback.
	e.resetDownlink()
	e.pending = e.pending[:0]
	heap.Init(&e.pending)
	for _, p := range c.Pending {
		heap.Push(&e.pending, &tierRun{
			tier: p.Tier, tierRound: p.TierRound, pulledVer: p.PulledVersion,
			finish:    p.Finish,
			selected:  append([]int(nil), p.Selected...),
			weights:   append([]float64(nil), p.Weights...),
			latency:   p.Latency,
			lats:      append([]float64(nil), p.Lats...),
			upBytes:   p.UplinkBytes,
			downBytes: p.DownlinkBytes,
			bytes:     append([]int64(nil), p.CommBytes...),
		})
	}
	switch src := e.src.(type) {
	case *EagerClients:
		for _, cl := range src.Slice() {
			cl.residual = nil
		}
		for ci, r := range c.Residuals {
			src.Slice()[ci].residual = append([]float64(nil), r...)
		}
	case ResidualStore:
		src.RestoreResiduals(c.Residuals)
	default:
		if len(c.Residuals) > 0 {
			return fmt.Errorf("flcore: checkpoint carries %d residuals but ClientSource %T cannot restore them", len(c.Residuals), e.src)
		}
	}
	e.tierTest = nil // membership may differ from construction time
	e.resumed = true
	return nil
}

// copyTiers deep-copies a tier membership table.
func copyTiers(tiers [][]int) [][]int {
	out := make([][]int, len(tiers))
	for i, members := range tiers {
		out[i] = append([]int(nil), members...)
	}
	return out
}

// validateTiers checks tier membership structure: non-empty tiers,
// in-range members, no client in two tiers.
func validateTiers(tiers [][]int, numClients int) error {
	tierOf := make(map[int]int)
	for t, members := range tiers {
		if len(members) == 0 {
			return fmt.Errorf("tier %d is empty", t)
		}
		for _, ci := range members {
			if ci < 0 || ci >= numClients {
				return fmt.Errorf("tier %d member %d out of range [0,%d)", t, ci, numClients)
			}
			if prev, dup := tierOf[ci]; dup {
				return fmt.Errorf("client %d in tiers %d and %d", ci, prev, t)
			}
			tierOf[ci] = t
		}
	}
	return nil
}

// Encode serializes the checkpoint with gob.
func (c *TieredCheckpoint) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, fmt.Errorf("flcore: encoding tiered checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeTieredCheckpoint parses a buffer produced by Encode, rejecting
// trailing garbage and unknown format versions.
func DecodeTieredCheckpoint(data []byte) (*TieredCheckpoint, error) {
	var c TieredCheckpoint
	r := bytes.NewReader(data)
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("flcore: decoding tiered checkpoint: %w", err)
	}
	if r.Len() > 0 {
		return nil, fmt.Errorf("flcore: tiered checkpoint has %d bytes of trailing garbage after decode", r.Len())
	}
	if c.Format != TieredCheckpointFormat {
		return nil, fmt.Errorf("flcore: unknown tiered checkpoint format %d (this build reads format %d)", c.Format, TieredCheckpointFormat)
	}
	return &c, nil
}

// SaveFile writes the checkpoint to path atomically (temp file + fsync +
// rename), rotating any existing snapshot to path.prev first — the same
// crash discipline as Checkpoint.SaveFile.
func (c *TieredCheckpoint) SaveFile(path string) error {
	data, err := c.Encode()
	if err != nil {
		return err
	}
	return saveFileAtomic(path, data)
}

// LoadTieredCheckpointFile reads a checkpoint written by SaveFile, falling
// back to the rotated previous snapshot when the primary is missing or
// fails to decode.
func LoadTieredCheckpointFile(path string) (*TieredCheckpoint, error) {
	return loadWithFallback(path, DecodeTieredCheckpoint)
}
