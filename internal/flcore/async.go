package flcore

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/simres"
)

// Asynchronous federated learning baseline (FedAsync-style). The TiFL paper
// argues synchronous FL is preferable for secure aggregation and privacy
// (Section 2) but contrasts against asynchronous designs; this engine makes
// that comparison measurable. Clients train continuously: whenever one
// finishes, the server immediately mixes its update into the global model
// with a staleness-discounted rate α·(staleness+1)^(−a) and dispatches a
// new task. Time is the same simulated latency model as the synchronous
// engine, so wall-clock comparisons are apples-to-apples.

// AsyncConfig configures an asynchronous run.
type AsyncConfig struct {
	// Duration is the simulated training time budget in seconds.
	Duration float64
	// Concurrency is how many clients train at any moment (the async
	// analogue of |C|).
	Concurrency int
	// Alpha is the base server mixing rate (default 0.6).
	Alpha float64
	// StalenessExp is the staleness discount exponent a (default 0.5).
	StalenessExp float64
	// EvalInterval evaluates the global model every so many simulated
	// seconds (0 = only at the end).
	EvalInterval float64
	BatchSize    int
	LocalEpochs  int
	Seed         int64
	Model        ModelFactory
	Optimizer    OptimizerFactory
	Latency      simres.LatencyModel
	EvalBatch    int
	// Codec, if set, applies error-feedback update compression exactly as
	// in the synchronous engine (Config.Codec).
	Codec compress.Codec
}

func (c *AsyncConfig) withDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.6
	}
	if c.StalenessExp == 0 {
		c.StalenessExp = 0.5
	}
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 10
	}
}

// pending is one in-flight client task.
type pending struct {
	clientIdx int
	startVer  int     // global version when dispatched
	finish    float64 // simulated completion time
	weights   []float64
	samples   int
	wireBytes int // encoded uplink size of this update
}

type pendingHeap []*pending

func (h pendingHeap) Len() int           { return len(h) }
func (h pendingHeap) Less(i, j int) bool { return h[i].finish < h[j].finish }
func (h pendingHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pendingHeap) Push(x any)        { *h = append(*h, x.(*pending)) }
func (h *pendingHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// RunAsync executes asynchronous training over the clients until the
// simulated duration elapses, returning a Result whose history is sampled
// at EvalInterval boundaries (Round counts applied updates).
func RunAsync(cfg AsyncConfig, clients []*Client, test *dataset.Dataset) *Result {
	cfg.withDefaults()
	if cfg.Duration <= 0 || cfg.Concurrency <= 0 || cfg.Model == nil || cfg.Optimizer == nil {
		panic(fmt.Sprintf("flcore: invalid AsyncConfig %+v", cfg))
	}
	if zeroLatency(cfg.Latency) {
		panic("flcore: AsyncConfig.Latency produces zero response latency; simulated time cannot advance")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	global := cfg.Model(rand.New(rand.NewSource(cfg.Seed)))
	weights := global.WeightsVector()
	version := 0
	resetResiduals(clients)

	// trainOnce runs one local pass for a dispatch at global version v.
	syncCfg := Config{
		Rounds: 1, ClientsPerRound: 1, LocalEpochs: cfg.LocalEpochs,
		BatchSize: cfg.BatchSize, Seed: cfg.Seed,
		Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: cfg.Latency,
		Codec: cfg.Codec,
	}
	eng := &Engine{Cfg: syncCfg, Clients: clients}

	dispatch := func(now float64, h *pendingHeap, version int) {
		ci := rng.Intn(len(clients))
		u := eng.TrainClient(version, ci, weights)
		heap.Push(h, &pending{
			clientIdx: ci, startVer: version,
			finish:  now + u.Latency,
			weights: u.Weights, samples: u.NumSamples,
			wireBytes: u.WireBytes,
		})
	}

	h := &pendingHeap{}
	heap.Init(h)
	for i := 0; i < cfg.Concurrency; i++ {
		dispatch(0, h, version)
	}

	res := &Result{}
	nextEval := cfg.EvalInterval
	evalNow := func(now float64) {
		rec := RoundRecord{Round: version, Latency: 0, SimTime: now, Acc: math.NaN(), Loss: math.NaN()}
		if test != nil {
			global.SetWeightsVector(weights)
			rec.Acc, rec.Loss = global.Evaluate(test.InputTensor(), test.Y, cfg.EvalBatch)
		}
		res.History = append(res.History, rec)
	}

	now := 0.0
	for h.Len() > 0 {
		p := heap.Pop(h).(*pending)
		if p.finish > cfg.Duration {
			break
		}
		now = p.finish
		for cfg.EvalInterval > 0 && now >= nextEval {
			evalNow(nextEval)
			nextEval += cfg.EvalInterval
		}
		staleness := float64(version - p.startVer)
		alpha := cfg.Alpha * math.Pow(staleness+1, -cfg.StalenessExp)
		for i := range weights {
			weights[i] = (1-alpha)*weights[i] + alpha*p.weights[i]
		}
		version++
		res.UplinkBytes += int64(p.wireBytes)
		dispatch(now, h, version)
	}
	evalNow(now)
	final := res.History[len(res.History)-1]
	res.FinalAcc, res.FinalLoss = final.Acc, final.Loss
	res.TotalTime = now
	res.Weights = append([]float64(nil), weights...)
	return res
}
