package flcore

// Population-scale property tests: the event heap ordering the simulated
// clock, the deterministic lazy client derivation, and the memory bound
// that makes a 100k-client run affordable — resident client state must
// scale with cohort size, never population size.

import (
	"container/heap"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/simres"
	"repro/internal/tensor"
)

// syntheticFactory derives fully synthetic clients from (seed, id): an
// 8-sample private shard generated on the fly and a CPU share from the
// paper's CIFAR resource groups, assigned contiguously so tier k owns the
// id range [k*n/5, (k+1)*n/5). No O(N) state exists anywhere — this is the
// factory shape ext_million uses.
func syntheticFactory(seed int64, n, samplesPer int) ClientFactory {
	groups := simres.GroupsCIFAR
	return func(id int) *Client {
		shard := dataset.Generate(dataset.MNISTLike, samplesPer, mix(seed, id, 101))
		return &Client{
			ID:    id,
			Train: shard,
			CPU:   groups[id*len(groups)/n],
		}
	}
}

// contiguousTiers splits [0,n) into k contiguous tiers, fastest first —
// matching syntheticFactory's CPU assignment.
func contiguousTiers(n, k int) [][]int {
	tiers := make([][]int, k)
	for i := 0; i < n; i++ {
		g := i * k / n
		tiers[g] = append(tiers[g], i)
	}
	return tiers
}

// FuzzTierRunHeap drives the event queue with arbitrary interleavings of
// pushes and pops and checks the two properties the simulated clock rests
// on: events leave the heap in non-decreasing (finish, tier) order — the
// clock never runs backwards and ties break deterministically by tier —
// and no event is ever lost or duplicated.
func FuzzTierRunHeap(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 1, 128, 64, 32, 200, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h tierRunHeap
		heap.Init(&h)
		pushed, popped := 0, 0
		lastFinish := math.Inf(-1)
		lastTier := -1
		popOne := func() {
			run := heap.Pop(&h).(*tierRun)
			popped++
			if run.finish < lastFinish {
				t.Fatalf("clock ran backwards: %v after %v", run.finish, lastFinish)
			}
			if run.finish == lastFinish && run.tier < lastTier {
				t.Fatalf("tie at %v broke out of tier order: %d after %d", run.finish, run.tier, lastTier)
			}
			lastFinish, lastTier = run.finish, run.tier
		}
		for i := 0; i+1 < len(data); i += 2 {
			if data[i]%5 == 0 && h.Len() > 0 {
				popOne()
				// A pop between pushes re-opens the whole order for the
				// remaining events; only the global multiset check below
				// stays valid, so reset the order cursor.
				lastFinish, lastTier = math.Inf(-1), -1
				continue
			}
			heap.Push(&h, &tierRun{
				finish: float64(data[i]) / 16,
				tier:   int(data[i+1] % 8),
			})
			pushed++
		}
		lastFinish, lastTier = math.Inf(-1), -1
		for h.Len() > 0 {
			popOne()
		}
		if popped != pushed {
			t.Fatalf("pushed %d events, popped %d", pushed, popped)
		}
	})
}

// FuzzLazyDerivation pins the ClientFactory determinism contract for the
// synthetic population: re-materializing an id yields byte-identical client
// state, and distinct ids yield independent (differing) shards.
func FuzzLazyDerivation(f *testing.F) {
	f.Add(int64(1), uint16(3), uint16(7))
	f.Add(int64(-9), uint16(0), uint16(63))
	f.Fuzz(func(t *testing.T, seed int64, aRaw, bRaw uint16) {
		const n = 64
		a, b := int(aRaw)%n, int(bRaw)%n
		factory := syntheticFactory(seed, n, 8)
		c1, c2 := factory(a), factory(a)
		if c1.CPU != c2.CPU || c1.ID != c2.ID {
			t.Fatalf("re-materialized client %d differs: %+v vs %+v", a, c1, c2)
		}
		x1, x2 := c1.Train.X.Data, c2.Train.X.Data
		if len(x1) != len(x2) {
			t.Fatalf("shard sizes differ for id %d: %d vs %d", a, len(x1), len(x2))
		}
		for i := range x1 {
			if math.Float64bits(x1[i]) != math.Float64bits(x2[i]) {
				t.Fatalf("shard bytes differ for id %d at %d", a, i)
			}
		}
		for i, y := range c1.Train.Y {
			if y != c2.Train.Y[i] {
				t.Fatalf("labels differ for id %d at %d", a, i)
			}
		}
		if a != b {
			c3 := factory(b)
			same := len(c3.Train.X.Data) == len(x1)
			if same {
				for i := range x1 {
					if math.Float64bits(x1[i]) != math.Float64bits(c3.Train.X.Data[i]) {
						same = false
						break
					}
				}
			}
			if same {
				t.Fatalf("ids %d and %d derived identical shards", a, b)
			}
		}
	})
}

// TestLazyClientsRefcountAndResiduals exercises the source bookkeeping
// directly: refcounts, peak tracking, residual carry-over, and the
// unacquired-release panic.
func TestLazyClientsRefcountAndResiduals(t *testing.T) {
	src := NewLazyClients(64, syntheticFactory(5, 64, 4))
	a := src.Acquire(3)
	b := src.Acquire(3)
	if st := src.Stats(); st.Live != 2 || st.Peak != 2 || st.Materialized != 2 {
		t.Fatalf("stats after double acquire: %+v", st)
	}
	src.Release(b) // residual-less release first: must not disturb a's state
	a.residual = []float64{1, 2}
	src.Release(a)
	if st := src.Stats(); st.Live != 0 || st.Residuals != 1 {
		t.Fatalf("stats after release: %+v", st)
	}
	c := src.Acquire(3)
	if len(c.residual) != 2 || c.residual[0] != 1 {
		t.Fatalf("residual did not survive the round trip: %v", c.residual)
	}
	c.residual = nil
	src.Release(c)
	if st := src.Stats(); st.Residuals != 0 {
		t.Fatalf("cleared residual still tracked: %+v", st)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("releasing an unacquired client did not panic")
		}
	}()
	src.Release(&Client{ID: 9})
}

// TestLazyClientsRoundTripDropsState is the pool round-trip leak check:
// acquire/release cycles over clients carrying ~1MB shards must not
// accumulate heap — the source may hold residuals, never datasets. With a
// leak, 300 cycles retain ~300MB; the threshold leaves generous room for
// allocator noise.
func TestLazyClientsRoundTripDropsState(t *testing.T) {
	const dim, samples = 64, 2048 // ≈1MB per client shard
	factory := func(id int) *Client {
		return &Client{
			ID:    id,
			Train: &dataset.Dataset{X: tensor.New(samples, dim), Y: make([]int, samples), NumClasses: 10},
			CPU:   1,
		}
	}
	src := NewLazyClients(1024, factory)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < 300; i++ {
		c := src.Acquire(i % 1024)
		src.Release(c)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	if st := src.Stats(); st.Live != 0 || st.Peak != 1 {
		t.Fatalf("stats after round trips: %+v", st)
	}
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if growth > 64<<20 {
		t.Fatalf("heap grew %d bytes over 300 release cycles; released clients are being retained", growth)
	}
}

// TestLazyEngineMemoryBounded is the population-scale memory regression: a
// 100k-client compressed run in which resident client state must stay
// bounded by the active cohort, residual bookkeeping by the ever-selected
// set, and the commit log must satisfy the no-lost-commit invariants.
func TestLazyEngineMemoryBounded(t *testing.T) {
	const n = 100_000
	src := NewLazyClients(n, syntheticFactory(11, n, 8))
	cfg := TieredAsyncConfig{
		Duration: 8, ClientsPerRound: 4, Seed: 11,
		BatchSize: 8, LocalEpochs: 1,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, dataset.MNISTLike.Dim, []int{8}, 10, 0)
		},
		Optimizer: func(round int) nn.Optimizer { return nn.NewRMSprop(0.01, 0.995) },
		Latency:   simres.DefaultModel,
		Codec:     compress.NewInt8(0),
	}
	eng := NewTieredAsyncEngineFrom(cfg, contiguousTiers(n, 5), src, nil)
	res := eng.Run()

	total := 0
	for _, c := range res.Commits {
		total += c
	}
	if total == 0 {
		t.Fatal("no commits at population scale")
	}
	if len(res.TierRounds) != total {
		t.Fatalf("no-lost-commit violated: %d records for %d commits", len(res.TierRounds), total)
	}
	next := make([]int, 5)
	prevTime := 0.0
	selected := make(map[int]bool)
	for i, rec := range res.TierRounds {
		if rec.TierRound != next[rec.Tier] {
			t.Fatalf("commit %d: tier %d round %d, want %d (a tier round was lost or reordered)",
				i, rec.Tier, rec.TierRound, next[rec.Tier])
		}
		next[rec.Tier]++
		if rec.SimTime < prevTime || rec.SimTime > cfg.Duration {
			t.Fatalf("commit %d: sim time %v outside [%v, %v]", i, rec.SimTime, prevTime, cfg.Duration)
		}
		prevTime = rec.SimTime
		for _, ci := range rec.Selected {
			selected[ci] = true
		}
	}

	st := src.Stats()
	if st.Live != 0 {
		t.Fatalf("%d clients still resident after the run", st.Live)
	}
	if st.Peak > cfg.ClientsPerRound {
		t.Fatalf("peak resident clients %d exceeds the cohort size %d: client state is not cohort-bounded",
			st.Peak, cfg.ClientsPerRound)
	}
	// Residuals may also cover cohorts still in flight when the budget
	// expired, which never reached the commit log.
	if st.Residuals > len(selected)+5*cfg.ClientsPerRound {
		t.Fatalf("%d residuals tracked for %d ever-selected clients: bookkeeping is not selection-sparse",
			st.Residuals, len(selected))
	}
	if st.Residuals == 0 {
		t.Fatal("compressed run tracked no residuals; the sparse-residual path was not exercised")
	}
}
