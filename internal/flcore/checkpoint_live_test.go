package flcore_test

// Checkpoint/resume of a MANAGED sim run: the tiering.Manager's state
// (EWMA estimates, membership, credits, re-tier log) rides inside the
// TieredCheckpoint, so a resumed run replays the uninterrupted one
// bit-for-bit through live re-tierings.

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/flcore"
)

func TestTieredCheckpointResumeWithManagerBitExact(t *testing.T) {
	const snapAt = 12
	clients, test, cfg, lat := liveFixture(t, 4)
	cfg.Manager = liveManager(t, cfg, lat, 8)
	full := flcore.RunTieredAsync(cfg, nil, clients, test)
	if full.Retiers == 0 {
		t.Fatal("fixture no longer re-tiers; the managed-resume check would be vacuous")
	}
	if len(full.TierRounds) <= snapAt {
		t.Fatalf("fixture committed only %d rounds", len(full.TierRounds))
	}

	var raw []byte
	clientsB, testB, cfgB, latB := liveFixture(t, 4)
	cfgB.Manager = liveManager(t, cfgB, latB, 8)
	cfgB.CheckpointEvery = 4
	cfgB.OnCheckpoint = func(c *flcore.TieredCheckpoint) {
		if c.Version == snapAt {
			var err error
			if raw, err = c.Encode(); err != nil {
				t.Errorf("encoding checkpoint: %v", err)
			}
		}
	}
	flcore.RunTieredAsync(cfgB, nil, clientsB, testB)
	if raw == nil {
		t.Fatalf("no checkpoint observed at version %d", snapAt)
	}
	snap, err := flcore.DecodeTieredCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.ManagerState) == 0 {
		t.Fatal("managed checkpoint carries no manager state")
	}

	// Resume into a fresh population with a FRESH Manager built from the
	// same profile — Restore replaces its estimates with the checkpointed
	// state, exactly the crash-restart flow.
	clientsC, testC, cfgC, latC := liveFixture(t, 4)
	mgrC := liveManager(t, cfgC, latC, 8)
	cfgC.Manager = mgrC
	eng := flcore.NewTieredAsyncEngine(cfgC, nil, clientsC, testC)
	if err := eng.Restore(snap); err != nil {
		t.Fatal(err)
	}
	tail := eng.Run()

	if !reflect.DeepEqual(tail.TierRounds, full.TierRounds[snapAt:]) {
		t.Fatalf("resumed managed commit log diverges at commit %d", snapAt)
	}
	if tail.Retiers != full.Retiers || tail.Migrations != full.Migrations {
		t.Fatalf("cumulative retiers/migrations %d/%d, want %d/%d",
			tail.Retiers, tail.Migrations, full.Retiers, full.Migrations)
	}
	for i := range full.Weights {
		if math.Float64bits(full.Weights[i]) != math.Float64bits(tail.Weights[i]) {
			t.Fatalf("weight %d differs after managed resume", i)
		}
	}
}

// A managed checkpoint must not restore into an unmanaged engine, nor an
// unmanaged checkpoint into a managed one — both silently change cohort
// selection semantics.
func TestTieredCheckpointManagerMismatch(t *testing.T) {
	clients, test, cfg, lat := liveFixture(t, -1)
	mgr := liveManager(t, cfg, lat, 8)

	managedCfg := cfg
	managedCfg.Manager = mgr
	managedEng := flcore.NewTieredAsyncEngine(managedCfg, nil, clients, test)
	managedSnap, err := managedEng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	plainEng := flcore.NewTieredAsyncEngine(cfg, mgr.Tiers(), clients, test)
	plainSnap, err := plainEng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	if err := plainEng.Restore(managedSnap); err == nil {
		t.Fatal("managed checkpoint restored into unmanaged engine")
	}
	if err := managedEng.Restore(plainSnap); err == nil {
		t.Fatal("unmanaged checkpoint restored into managed engine")
	}
}
