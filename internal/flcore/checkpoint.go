package flcore

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
)

// Checkpoint captures a federated training job between rounds: the global
// weights, the simulated clock, and how many rounds completed. Because all
// randomness in the engine is keyed on (Seed, round, client), restoring a
// checkpoint and finishing the job reproduces the uninterrupted run
// bit-for-bit — verified by TestCheckpointResumeBitExact.
type Checkpoint struct {
	CompletedRounds int
	SimTime         float64
	Weights         []float64
	Seed            int64
}

// Snapshot captures the engine's current state.
func (e *Engine) Snapshot() *Checkpoint {
	return &Checkpoint{
		CompletedRounds: e.completed,
		SimTime:         e.clock.Now(),
		Weights:         append([]float64(nil), e.weights...),
		Seed:            e.Cfg.Seed,
	}
}

// Restore loads a checkpoint into the engine. The checkpoint must come
// from a job with the same seed and a structurally identical model.
func (e *Engine) Restore(c *Checkpoint) error {
	if c.Seed != e.Cfg.Seed {
		return fmt.Errorf("flcore: checkpoint seed %d != engine seed %d", c.Seed, e.Cfg.Seed)
	}
	if len(c.Weights) != len(e.weights) {
		return fmt.Errorf("flcore: checkpoint has %d weights, model needs %d", len(c.Weights), len(e.weights))
	}
	if c.CompletedRounds < 0 || c.CompletedRounds > e.Cfg.Rounds {
		return fmt.Errorf("flcore: checkpoint at round %d outside [0, %d]", c.CompletedRounds, e.Cfg.Rounds)
	}
	copy(e.weights, c.Weights)
	e.global.SetWeightsVector(e.weights)
	e.clock.Reset()
	e.clock.Advance(c.SimTime)
	e.completed = c.CompletedRounds
	return nil
}

// Encode serializes the checkpoint with gob.
func (c *Checkpoint) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, fmt.Errorf("flcore: encoding checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint parses a buffer produced by Encode.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&c); err != nil {
		return nil, fmt.Errorf("flcore: decoding checkpoint: %w", err)
	}
	return &c, nil
}

// SaveFile writes the checkpoint to path.
func (c *Checkpoint) SaveFile(path string) error {
	data, err := c.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadCheckpointFile reads a checkpoint written by SaveFile.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("flcore: reading checkpoint: %w", err)
	}
	return DecodeCheckpoint(data)
}
