package flcore

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// Checkpoint captures a federated training job between rounds: the global
// weights, the simulated clock, and how many rounds completed. Because all
// randomness in the engine is keyed on (Seed, round, client), restoring a
// checkpoint and finishing the job reproduces the uninterrupted run
// bit-for-bit — verified by TestCheckpointResumeBitExact.
type Checkpoint struct {
	CompletedRounds int
	SimTime         float64
	Weights         []float64
	Seed            int64
}

// Snapshot captures the engine's current state.
func (e *Engine) Snapshot() *Checkpoint {
	return &Checkpoint{
		CompletedRounds: e.completed,
		SimTime:         e.clock.Now(),
		Weights:         append([]float64(nil), e.weights...),
		Seed:            e.Cfg.Seed,
	}
}

// Restore loads a checkpoint into the engine. The checkpoint must come
// from a job with the same seed and a structurally identical model.
func (e *Engine) Restore(c *Checkpoint) error {
	if c.Seed != e.Cfg.Seed {
		return fmt.Errorf("flcore: checkpoint seed %d != engine seed %d", c.Seed, e.Cfg.Seed)
	}
	if len(c.Weights) != len(e.weights) {
		return fmt.Errorf("flcore: checkpoint has %d weights, model needs %d", len(c.Weights), len(e.weights))
	}
	if c.CompletedRounds < 0 || c.CompletedRounds > e.Cfg.Rounds {
		return fmt.Errorf("flcore: checkpoint at round %d outside [0, %d]", c.CompletedRounds, e.Cfg.Rounds)
	}
	if err := finiteWeights(c.Weights); err != nil {
		return fmt.Errorf("flcore: checkpoint weights: %w", err)
	}
	copy(e.weights, c.Weights)
	e.global.SetWeightsVector(e.weights)
	e.clock.Reset()
	e.clock.Advance(c.SimTime)
	e.completed = c.CompletedRounds
	return nil
}

// finiteWeights rejects NaN or ±Inf entries — a model restored from such a
// vector trains garbage silently, so corruption must fail loudly at load.
func finiteWeights(w []float64) error {
	for i, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("weight %d is %v; refusing non-finite model state", i, v)
		}
	}
	return nil
}

// Encode serializes the checkpoint with gob.
func (c *Checkpoint) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, fmt.Errorf("flcore: encoding checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint parses a buffer produced by Encode. The buffer must
// contain exactly one checkpoint: trailing garbage means the file was
// corrupted (or two writers raced) and is rejected rather than silently
// ignored.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var c Checkpoint
	r := bytes.NewReader(data)
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("flcore: decoding checkpoint: %w", err)
	}
	if r.Len() > 0 {
		return nil, fmt.Errorf("flcore: checkpoint has %d bytes of trailing garbage after decode", r.Len())
	}
	return &c, nil
}

// prevSuffix names the rotated previous snapshot kept beside every
// checkpoint file: saveFileAtomic moves the old snapshot there before the
// rename, and the Load functions fall back to it when the primary is
// unreadable.
const prevSuffix = ".prev"

// saveFileAtomic writes data to path so that a crash at any instant leaves
// a loadable checkpoint behind: the bytes go to a temp file in the same
// directory (same filesystem, so the rename is atomic), are fsynced, the
// existing snapshot is rotated to path.prev, and only then does the temp
// file take the primary name.
func saveFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("flcore: creating checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) //nolint:errcheck // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close() //nolint:errcheck // write error takes precedence
		return fmt.Errorf("flcore: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //nolint:errcheck // sync error takes precedence
		return fmt.Errorf("flcore: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("flcore: closing checkpoint temp file: %w", err)
	}
	// Keep the last good snapshot around: if the new primary is later found
	// corrupted (torn write, bad disk), loads fall back to it.
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+prevSuffix); err != nil {
			return fmt.Errorf("flcore: rotating previous checkpoint: %w", err)
		}
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("flcore: installing checkpoint: %w", err)
	}
	// Persist the renames themselves; best effort — some filesystems refuse
	// directory fsync.
	if d, err := os.Open(dir); err == nil {
		d.Sync()  //nolint:errcheck // advisory
		d.Close() //nolint:errcheck // read-only handle
	}
	return nil
}

// SaveFile writes the checkpoint to path atomically (temp file + fsync +
// rename), rotating any existing snapshot to path.prev first.
func (c *Checkpoint) SaveFile(path string) error {
	data, err := c.Encode()
	if err != nil {
		return err
	}
	return saveFileAtomic(path, data)
}

// loadWithFallback reads and decodes path; when that fails it retries the
// rotated path.prev snapshot so one corrupted write never strands a resume.
// decode must return an error for malformed bytes.
func loadWithFallback[T any](path string, decode func([]byte) (T, error)) (T, error) {
	load := func(p string) (T, error) {
		var zero T
		data, err := os.ReadFile(p)
		if err != nil {
			return zero, fmt.Errorf("flcore: reading checkpoint: %w", err)
		}
		return decode(data)
	}
	c, err := load(path)
	if err == nil {
		return c, nil
	}
	prev, prevErr := load(path + prevSuffix)
	if prevErr == nil {
		return prev, nil
	}
	var zero T
	return zero, fmt.Errorf("%w (fallback %s%s also failed: %v)", err, path, prevSuffix, prevErr)
}

// LoadCheckpointFile reads a checkpoint written by SaveFile, falling back
// to the rotated previous snapshot when the primary is missing or fails to
// decode.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	return loadWithFallback(path, DecodeCheckpoint)
}
