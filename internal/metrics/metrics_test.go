package metrics

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/flcore"
)

func fakeResult() *flcore.Result {
	return &flcore.Result{History: []flcore.RoundRecord{
		{Round: 0, SimTime: 1, Acc: 0.1},
		{Round: 1, SimTime: 2, Acc: math.NaN()},
		{Round: 2, SimTime: 4, Acc: 0.5},
	}}
}

func TestAccuracyOverRoundsSkipsNaN(t *testing.T) {
	s := AccuracyOverRounds(fakeResult(), "test")
	if s.Len() != 2 {
		t.Fatalf("series has %d points, want 2", s.Len())
	}
	if s.X[1] != 2 || s.Y[1] != 0.5 {
		t.Fatalf("series = %+v", s)
	}
	if s.FinalY() != 0.5 {
		t.Fatalf("FinalY = %v", s.FinalY())
	}
}

func TestAccuracyOverTimeUsesSimTime(t *testing.T) {
	s := AccuracyOverTime(fakeResult(), "test")
	if s.X[0] != 1 || s.X[1] != 4 {
		t.Fatalf("time axis = %v", s.X)
	}
}

func TestEmptySeriesFinalY(t *testing.T) {
	if !math.IsNaN((Series{}).FinalY()) {
		t.Fatal("empty FinalY must be NaN")
	}
}

func TestTableRenderAligned(t *testing.T) {
	tab := Table{Title: "T", Columns: []string{"policy", "time"}}
	tab.AddRow("vanilla", 12643.0)
	tab.AddRow("fast", 1750.0)
	out := tab.Render()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "vanilla") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tab := Table{Columns: []string{"a", "b"}}
	tab.AddRow(`has,comma`, `has"quote`)
	csv := tab.CSV()
	if !strings.Contains(csv, `"has,comma"`) || !strings.Contains(csv, `"has""quote"`) {
		t.Fatalf("CSV quoting wrong:\n%s", csv)
	}
}

func TestFormatFloatCases(t *testing.T) {
	cases := map[float64]string{
		math.NaN(): "n/a",
		0.001:      "0.001",
		12345.0:    "12345",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteCSVFile(t *testing.T) {
	dir := t.TempDir()
	tab := Table{Columns: []string{"x"}, Rows: [][]string{{"1"}}}
	path := filepath.Join(dir, "sub", "out.csv")
	if err := tab.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "x\n1\n" {
		t.Fatalf("file = %q", data)
	}
}

func TestBarChartScaling(t *testing.T) {
	out := BarChart("times", []string{"a", "b"}, []float64{10, 5}, 20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	aBars := strings.Count(lines[1], "#")
	bBars := strings.Count(lines[2], "#")
	if aBars != 20 || bBars != 10 {
		t.Fatalf("bars = %d, %d; want 20, 10", aBars, bBars)
	}
}

func TestBarChartMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched labels/values did not panic")
		}
	}()
	BarChart("", []string{"a"}, []float64{1, 2}, 10)
}

func TestSeriesTableSampling(t *testing.T) {
	s1 := Series{Name: "one", X: []float64{0, 1, 2, 3}, Y: []float64{0.1, 0.2, 0.3, 0.4}}
	s2 := Series{Name: "two", X: []float64{0, 2}, Y: []float64{0.5, 0.6}}
	tab := SeriesTable("fig", []Series{s1, s2}, 4)
	if len(tab.Columns) != 3 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Last sampled row is x=3: series two holds its last value 0.6.
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "3" || last[2] != "0.6" {
		t.Fatalf("last row = %v", last)
	}
}

func TestSeriesTableEmpty(t *testing.T) {
	tab := SeriesTable("empty", nil, 5)
	if len(tab.Rows) != 0 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestValueAtStepInterpolation(t *testing.T) {
	s := Series{X: []float64{1, 3}, Y: []float64{0.2, 0.8}}
	if !math.IsNaN(valueAt(s, 0.5)) {
		t.Fatal("before first point must be NaN")
	}
	if valueAt(s, 2) != 0.2 {
		t.Fatalf("valueAt(2) = %v", valueAt(s, 2))
	}
	if valueAt(s, 3) != 0.8 {
		t.Fatalf("valueAt(3) = %v", valueAt(s, 3))
	}
}

func TestSeriesCSVLongForm(t *testing.T) {
	s := Series{Name: "a", X: []float64{1}, Y: []float64{0.5}}
	csv := SeriesCSV([]Series{s})
	if !strings.Contains(csv, "series,x,y") || !strings.Contains(csv, "a,1,0.5") {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestWriteSeriesCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "series.csv")
	err := WriteSeriesCSVFile(path, []Series{{Name: "a", X: []float64{1}, Y: []float64{2}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
