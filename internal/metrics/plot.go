package metrics

import (
	"fmt"
	"math"
	"strings"
)

// LinePlot renders series as an ASCII scatter/line grid — a terminal
// rendition of the paper's accuracy-over-rounds figures. Each series gets a
// distinct glyph; overlapping points show the later series' glyph.
func LinePlot(title string, series []Series, width, height int) string {
	if width < 10 {
		width = 60
	}
	if height < 4 {
		height = 14
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	// Data bounds across all series.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.Y[i]) {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
			points++
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s ==\n", title)
	}
	if points == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			if math.IsNaN(s.Y[i]) {
				continue
			}
			cx := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			cy := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			grid[height-1-cy][cx] = g
		}
	}
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.3f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.3f ", minY)
		}
		b.WriteString(label)
		b.WriteString("|")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("        +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "        %-*.4g%*.4g\n", width/2, minX, width-width/2, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "        %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}
