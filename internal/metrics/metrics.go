// Package metrics turns federated training results into the artifacts the
// paper reports: accuracy-over-rounds and accuracy-over-time series
// (Figs. 1b, 3–6, 8, 9), training-time bar charts (Figs. 3a/b, 5a/b, 7, 9a),
// and comparison tables (Table 2), with ASCII and CSV renderers so
// cmd/tifl-bench can print paper-shaped output and persist raw data.
package metrics

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/flcore"
)

// Series is one named line of a figure: y values over x positions.
type Series struct {
	Name string
	X, Y []float64
}

// Len returns the number of points.
func (s Series) Len() int { return len(s.X) }

// FinalY returns the last y value (NaN for empty series).
func (s Series) FinalY() float64 {
	if len(s.Y) == 0 {
		return math.NaN()
	}
	return s.Y[len(s.Y)-1]
}

// AccuracyOverRounds extracts the evaluated (round, accuracy) points from a
// training result — the x-axis of the paper's accuracy-over-rounds plots.
func AccuracyOverRounds(res *flcore.Result, name string) Series {
	s := Series{Name: name}
	for _, rec := range res.History {
		if !math.IsNaN(rec.Acc) {
			s.X = append(s.X, float64(rec.Round))
			s.Y = append(s.Y, rec.Acc)
		}
	}
	return s
}

// AccuracyOverTime extracts the evaluated (simulated seconds, accuracy)
// points — the x-axis of the paper's accuracy-over-wall-clock plots
// (Figs. 3e/f, 6e/f).
func AccuracyOverTime(res *flcore.Result, name string) Series {
	s := Series{Name: name}
	for _, rec := range res.History {
		if !math.IsNaN(rec.Acc) {
			s.X = append(s.X, rec.SimTime)
			s.Y = append(s.Y, rec.Acc)
		}
	}
	return s
}

// Table is a titled grid of cells rendered as aligned ASCII or CSV.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends one formatted row; values are rendered with %v, floats
// with 4 significant digits.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	av := math.Abs(v)
	switch {
	case av != 0 && av < 0.01:
		return fmt.Sprintf("%.3g", v)
	case av >= 10000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Render returns the table as aligned ASCII with a title rule.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(t.Columns)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table in RFC-4180-ish CSV (cells containing commas or
// quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSVFile writes the table's CSV to path, creating parent directories.
func (t *Table) WriteCSVFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	return os.WriteFile(path, []byte(t.CSV()), 0o644)
}

// BarChart renders named values as horizontal ASCII bars scaled to width,
// the stand-in for the paper's training-time bar figures.
func BarChart(title string, labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("metrics: %d labels vs %d values", len(labels), len(values)))
	}
	if width <= 0 {
		width = 40
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s ==\n", title)
	}
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(width))
		}
		fmt.Fprintf(&b, "%-*s | %s %s\n", maxL, labels[i], strings.Repeat("#", n), formatFloat(v))
	}
	return b.String()
}

// SeriesTable samples each series at `points` evenly spaced x positions
// (by index) and lays them side by side — a text rendition of a multi-line
// figure.
func SeriesTable(title string, series []Series, points int) Table {
	t := Table{Title: title, Columns: []string{"x"}}
	for _, s := range series {
		t.Columns = append(t.Columns, s.Name)
	}
	if points <= 0 {
		points = 10
	}
	// Use the densest series' x positions as the sample grid.
	ref := 0
	for i, s := range series {
		if s.Len() > series[ref].Len() {
			ref = i
		}
	}
	if len(series) == 0 || series[ref].Len() == 0 {
		return t
	}
	refX := series[ref].X
	step := float64(len(refX)-1) / float64(points-1)
	if len(refX) == 1 || points == 1 {
		step = 0
	}
	for p := 0; p < points; p++ {
		idx := int(float64(p)*step + 0.5)
		if idx >= len(refX) {
			idx = len(refX) - 1
		}
		x := refX[idx]
		row := []string{formatFloat(x)}
		for _, s := range series {
			row = append(row, formatFloat(valueAt(s, x)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// valueAt returns the series' last y at or before x (NaN before the first
// point) — step interpolation, matching how accuracy-over-time is read.
func valueAt(s Series, x float64) float64 {
	out := math.NaN()
	for i, xi := range s.X {
		if xi > x {
			break
		}
		out = s.Y[i]
	}
	return out
}

// SeriesCSV renders series as long-form CSV (series, x, y).
func SeriesCSV(series []Series) string {
	t := Table{Columns: []string{"series", "x", "y"}}
	for _, s := range series {
		for i := range s.X {
			t.AddRow(s.Name, s.X[i], s.Y[i])
		}
	}
	return t.CSV()
}

// WriteSeriesCSVFile writes long-form series CSV to path.
func WriteSeriesCSVFile(path string, series []Series) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	return os.WriteFile(path, []byte(SeriesCSV(series)), 0o644)
}
