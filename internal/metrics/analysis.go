package metrics

import "math"

// TimeToAccuracy returns the first x position (round or simulated second,
// depending on the series' axis) at which the series reaches the target
// accuracy, or NaN if it never does. The paper's wall-clock comparisons
// (Figs. 3e/f, 6e/f) reduce to exactly this statistic: how long each
// policy needs to hit a given accuracy.
func TimeToAccuracy(s Series, target float64) float64 {
	for i, y := range s.Y {
		if !math.IsNaN(y) && y >= target {
			return s.X[i]
		}
	}
	return math.NaN()
}

// SpeedupAt returns how much faster `fast` reaches the target accuracy
// than `base` (base time / fast time); NaN when either never reaches it.
func SpeedupAt(base, fast Series, target float64) float64 {
	tb := TimeToAccuracy(base, target)
	tf := TimeToAccuracy(fast, target)
	if math.IsNaN(tb) || math.IsNaN(tf) || tf == 0 {
		return math.NaN()
	}
	return tb / tf
}

// BestAccuracyWithin returns the highest accuracy the series achieves at
// x ≤ budget (NaN when no point qualifies) — "accuracy within a time
// budget", the quantity the paper argues TiFL improves most.
func BestAccuracyWithin(s Series, budget float64) float64 {
	best := math.NaN()
	for i, y := range s.Y {
		if s.X[i] > budget {
			break
		}
		if math.IsNaN(y) {
			continue
		}
		if math.IsNaN(best) || y > best {
			best = y
		}
	}
	return best
}
