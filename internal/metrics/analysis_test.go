package metrics

import (
	"math"
	"testing"
)

func TestTimeToAccuracy(t *testing.T) {
	s := Series{X: []float64{10, 20, 30}, Y: []float64{0.3, 0.6, 0.9}}
	if got := TimeToAccuracy(s, 0.5); got != 20 {
		t.Fatalf("TimeToAccuracy(0.5) = %v", got)
	}
	if got := TimeToAccuracy(s, 0.3); got != 10 {
		t.Fatalf("TimeToAccuracy(0.3) = %v", got)
	}
	if got := TimeToAccuracy(s, 0.95); !math.IsNaN(got) {
		t.Fatalf("unreachable target = %v, want NaN", got)
	}
}

func TestTimeToAccuracySkipsNaN(t *testing.T) {
	s := Series{X: []float64{1, 2}, Y: []float64{math.NaN(), 0.8}}
	if got := TimeToAccuracy(s, 0.5); got != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestSpeedupAt(t *testing.T) {
	base := Series{X: []float64{100, 200}, Y: []float64{0.4, 0.8}}
	fast := Series{X: []float64{10, 20}, Y: []float64{0.4, 0.8}}
	if got := SpeedupAt(base, fast, 0.8); got != 10 {
		t.Fatalf("speedup = %v, want 10", got)
	}
	if got := SpeedupAt(base, fast, 0.99); !math.IsNaN(got) {
		t.Fatalf("unreachable speedup = %v, want NaN", got)
	}
}

func TestBestAccuracyWithin(t *testing.T) {
	s := Series{X: []float64{1, 2, 3}, Y: []float64{0.5, 0.9, 0.7}}
	if got := BestAccuracyWithin(s, 2.5); got != 0.9 {
		t.Fatalf("best = %v", got)
	}
	if got := BestAccuracyWithin(s, 0.5); !math.IsNaN(got) {
		t.Fatalf("pre-budget best = %v, want NaN", got)
	}
	if got := BestAccuracyWithin(s, 10); got != 0.9 {
		t.Fatalf("full-budget best = %v", got)
	}
}
