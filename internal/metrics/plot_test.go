package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestLinePlotBasics(t *testing.T) {
	s1 := Series{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 0.5, 1}}
	s2 := Series{Name: "b", X: []float64{0, 1, 2}, Y: []float64{1, 0.5, 0}}
	out := LinePlot("test", []Series{s1, s2}, 40, 10)
	if !strings.Contains(out, "== test ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("missing glyphs")
	}
	lines := strings.Split(out, "\n")
	// title + 10 grid rows + axis + labels + 2 legend lines
	if len(lines) < 14 {
		t.Fatalf("plot too short: %d lines", len(lines))
	}
}

func TestLinePlotEmpty(t *testing.T) {
	out := LinePlot("empty", nil, 40, 10)
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty plot = %q", out)
	}
}

func TestLinePlotSkipsNaN(t *testing.T) {
	s := Series{Name: "n", X: []float64{0, 1}, Y: []float64{math.NaN(), 0.5}}
	out := LinePlot("", []Series{s}, 30, 6)
	if strings.Count(out, "*") != 2 { // one point + one legend glyph
		t.Fatalf("NaN handling wrong:\n%s", out)
	}
}

func TestLinePlotConstantSeries(t *testing.T) {
	s := Series{Name: "c", X: []float64{1, 1}, Y: []float64{2, 2}}
	out := LinePlot("", []Series{s}, 30, 6)
	if out == "" || strings.Contains(out, "NaN") {
		t.Fatalf("constant series plot broken:\n%s", out)
	}
}

func TestLinePlotExtremesOnGrid(t *testing.T) {
	// Min and max values must land on the bottom and top rows.
	s := Series{Name: "e", X: []float64{0, 10}, Y: []float64{0, 1}}
	out := LinePlot("", []Series{s}, 20, 5)
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "*") {
		t.Fatalf("max not on top row:\n%s", out)
	}
	if !strings.Contains(lines[4], "*") {
		t.Fatalf("min not on bottom row:\n%s", out)
	}
}
