package core

import (
	"fmt"
	"math/rand"
	"sort"
)

// DeadlineSelector is the FedCS baseline (Nishio & Yonetani, reference [28]
// of the TiFL paper): client selection filters to clients whose profiled
// response latency fits within a per-round deadline, then draws uniformly
// among them. Unlike TiFL it is accuracy-blind — clients beyond the
// deadline simply never contribute, which is exactly the data-exclusion
// bias the paper criticizes.
type DeadlineSelector struct {
	Deadline        float64
	ClientsPerRound int

	eligible []int
	fastest  []int // fallback ordering when too few clients fit
}

// NewDeadlineSelector builds the FedCS-style selector from profiled
// latencies. If fewer than clientsPerRound clients fit the deadline, the
// fastest clients are used regardless (FedCS would shrink the round; we
// keep |C| fixed like the rest of the harness).
func NewDeadlineSelector(latency map[int]float64, deadline float64, clientsPerRound int) *DeadlineSelector {
	if len(latency) == 0 {
		panic("core: DeadlineSelector with no profiled clients")
	}
	if deadline <= 0 || clientsPerRound <= 0 {
		panic(fmt.Sprintf("core: invalid deadline %v / clientsPerRound %d", deadline, clientsPerRound))
	}
	type cl struct {
		id  int
		lat float64
	}
	all := make([]cl, 0, len(latency))
	for id, l := range latency {
		all = append(all, cl{id, l})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].lat != all[j].lat {
			return all[i].lat < all[j].lat
		}
		return all[i].id < all[j].id
	})
	s := &DeadlineSelector{Deadline: deadline, ClientsPerRound: clientsPerRound}
	for _, c := range all {
		s.fastest = append(s.fastest, c.id)
		if c.lat <= deadline {
			s.eligible = append(s.eligible, c.id)
		}
	}
	return s
}

// Eligible returns how many clients fit within the deadline.
func (s *DeadlineSelector) Eligible() int { return len(s.eligible) }

// Select implements flcore.Selector.
func (s *DeadlineSelector) Select(r int, rng *rand.Rand) []int {
	pool := s.eligible
	if len(pool) < s.ClientsPerRound {
		pool = s.fastest[:s.ClientsPerRound]
	}
	return sampleClients(pool, s.ClientsPerRound, rng)
}
