package core

import (
	"fmt"

	"repro/internal/flcore"
)

// Cross-tier aggregation weights for the tiered-asynchronous engine
// (flcore.TieredAsyncEngine). In FedAT (Chai et al., SC 2021) tiers commit
// at very different rates — the fastest tier may finish ten rounds while
// the slowest finishes one — so weighting commits uniformly would bias the
// global model toward fast-tier data. FedAT inverts the commit frequencies:
// tier k's weight is proportional to the commit count of its mirror tier
// (fastest borrows the slowest's count and vice versa), normalized over all
// tiers, which exactly rebalances the aggregate contribution per tier.

// UniformTierWeights weights every tier commit at the neutral multiplier
// 1 — each committed tier round mixes at the engine's base rate, the
// tiered analogue of FedAsync's flat mixing, and the baseline against
// which FedAT's weighting is measured.
func UniformTierWeights() flcore.TierWeightFunc {
	return func(tier int, commits []int) float64 { return 1 }
}

// FedATWeights returns FedAT's slower-tier-favoring cross-tier weighting:
// the committing tier's weight is proportional to its mirror tier's share
// of all commits so far, Laplace-smoothed so tiers still waiting on their
// mirror's first commit are not zeroed out, and rescaled by the tier count
// so a perfectly balanced commit mix yields the neutral multiplier 1.
// Tiers are ordered fastest first, matching BuildTiers.
func FedATWeights() flcore.TierWeightFunc {
	return func(tier int, commits []int) float64 {
		if tier < 0 || tier >= len(commits) {
			panic(fmt.Sprintf("core: tier %d with %d commit counts", tier, len(commits)))
		}
		total := 0
		for _, c := range commits {
			total += c
		}
		m := len(commits)
		mirror := m - 1 - tier
		return float64(m) * float64(commits[mirror]+1) / float64(total+m)
	}
}

// TierMembers extracts the member index sets from built tiers in tier
// order — the membership form flcore.RunTieredAsync consumes.
func TierMembers(tiers []Tier) [][]int {
	out := make([][]int, len(tiers))
	for i, t := range tiers {
		out[i] = append([]int(nil), t.Members...)
	}
	return out
}
