package core

import (
	"fmt"
	"math/rand"

	"repro/internal/flcore"
)

// DynamicSelector is the "online version" the paper sketches in Sections 1
// and 4.2: profiling and tiering are refreshed periodically so clients
// whose computation or communication performance drifts over time migrate
// to the right tier. It wraps a fixed tier-probability policy, maintains an
// exponentially weighted moving average of each client's observed response
// latency (fed by the engine through flcore.LatencyObserver), and rebuilds
// the tiers every RetierEvery rounds.
type DynamicSelector struct {
	Policy          StaticPolicy
	ClientsPerRound int
	// RetierEvery rebuilds tiers every k rounds (default 50).
	RetierEvery int
	// Alpha is the EWMA smoothing for observed latencies (default 0.5).
	Alpha float64
	// Strategy for rebuilt tiers (default Quantile).
	Strategy TieringStrategy
	// NumTiers for rebuilt tiers; must match len(Policy.Probs).
	NumTiers int

	tiers   []Tier
	ewma    map[int]float64
	retiers int
}

// NewDynamicSelector starts from the initially profiled latencies.
func NewDynamicSelector(initial map[int]float64, policy StaticPolicy, clientsPerRound int) *DynamicSelector {
	if err := policy.Validate(); err != nil {
		panic(err)
	}
	d := &DynamicSelector{
		Policy:          policy,
		ClientsPerRound: clientsPerRound,
		RetierEvery:     50,
		Alpha:           0.5,
		Strategy:        Quantile,
		NumTiers:        len(policy.Probs),
		ewma:            make(map[int]float64, len(initial)),
	}
	for id, l := range initial {
		d.ewma[id] = l
	}
	d.rebuild()
	return d
}

// Tiers returns the current tiering.
func (d *DynamicSelector) Tiers() []Tier { return d.tiers }

// Retiers returns how many times the tiers have been rebuilt (excluding
// the initial build).
func (d *DynamicSelector) Retiers() int { return d.retiers }

func (d *DynamicSelector) rebuild() {
	tiers := BuildTiers(d.ewma, d.NumTiers, d.Strategy)
	if len(tiers) != len(d.Policy.Probs) {
		// Equal-width splits can collapse tiers; redistribute the policy
		// mass uniformly over the tiers that materialized.
		probs := make([]float64, len(tiers))
		for i := range probs {
			probs[i] = 1 / float64(len(tiers))
		}
		d.tiers = tiers
		d.Policy = StaticPolicy{Name: d.Policy.Name, Probs: probs}
		return
	}
	d.tiers = tiers
}

// Select implements flcore.Selector.
func (d *DynamicSelector) Select(r int, rng *rand.Rand) []int {
	if d.RetierEvery > 0 && r > 0 && r%d.RetierEvery == 0 {
		d.rebuild()
		d.retiers++
	}
	t := pickTier(d.Policy.Probs, rng)
	return sampleClients(d.tiers[t].Members, d.ClientsPerRound, rng)
}

// ObserveLatencies implements flcore.LatencyObserver: fold each selected
// client's observed response latency into its EWMA.
func (d *DynamicSelector) ObserveLatencies(r int, updates []flcore.Update) {
	for _, u := range updates {
		prev, ok := d.ewma[u.ClientID]
		if !ok {
			d.ewma[u.ClientID] = u.Latency
			continue
		}
		d.ewma[u.ClientID] = (1-d.Alpha)*prev + d.Alpha*u.Latency
	}
}

// EWMA returns the tracked latency estimate for a client (for tests and
// inspection).
func (d *DynamicSelector) EWMA(clientID int) (float64, bool) {
	v, ok := d.ewma[clientID]
	return v, ok
}

var _ flcore.Selector = (*DynamicSelector)(nil)
var _ flcore.LatencyObserver = (*DynamicSelector)(nil)

// String describes the selector configuration.
func (d *DynamicSelector) String() string {
	return fmt.Sprintf("DynamicSelector(policy=%s, retierEvery=%d, tiers=%d)", d.Policy.Name, d.RetierEvery, len(d.tiers))
}
