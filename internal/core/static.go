package core

import (
	"fmt"
	"math"
	"math/rand"
)

// StaticPolicy is a straw-man tier-selection policy (Section 4.3): a fixed
// probability of selecting each tier, summing to 1. Within the selected
// tier, |C| clients are drawn uniformly at random.
type StaticPolicy struct {
	Name  string
	Probs []float64
}

// Validate checks the probability vector sums to 1 within tolerance.
func (p StaticPolicy) Validate() error {
	sum := 0.0
	for _, v := range p.Probs {
		if v < 0 {
			return fmt.Errorf("core: policy %q has negative probability %v", p.Name, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("core: policy %q probabilities sum to %v", p.Name, sum)
	}
	return nil
}

// Table 1 of the paper: scheduling policy configurations. The five-tier
// policies apply to CIFAR-10 and FEMNIST; uniform/fast1–fast3 apply to
// MNIST and Fashion-MNIST. "vanilla" is not a tier policy (clients are
// drawn from the full pool) and is represented by flcore.RandomSelector.
var (
	PolicySlow    = StaticPolicy{Name: "slow", Probs: []float64{0, 0, 0, 0, 1}}
	PolicyUniform = StaticPolicy{Name: "uniform", Probs: []float64{0.2, 0.2, 0.2, 0.2, 0.2}}
	PolicyRandom  = StaticPolicy{Name: "random", Probs: []float64{0.7, 0.1, 0.1, 0.05, 0.05}}
	PolicyFast    = StaticPolicy{Name: "fast", Probs: []float64{1, 0, 0, 0, 0}}
	PolicyFast1   = StaticPolicy{Name: "fast1", Probs: []float64{0.225, 0.225, 0.225, 0.225, 0.1}}
	PolicyFast2   = StaticPolicy{Name: "fast2", Probs: []float64{0.2375, 0.2375, 0.2375, 0.2375, 0.05}}
	PolicyFast3   = StaticPolicy{Name: "fast3", Probs: []float64{0.25, 0.25, 0.25, 0.25, 0}}
)

// PoliciesCIFAR returns the Table 1 policies evaluated on CIFAR-10 and
// FEMNIST, in the paper's presentation order.
func PoliciesCIFAR() []StaticPolicy {
	return []StaticPolicy{PolicySlow, PolicyUniform, PolicyRandom, PolicyFast}
}

// PoliciesMNIST returns the Table 1 policies evaluated on MNIST and
// Fashion-MNIST.
func PoliciesMNIST() []StaticPolicy {
	return []StaticPolicy{PolicyUniform, PolicyFast1, PolicyFast2, PolicyFast3}
}

// StaticSelector implements the straw-man tier selection: each round draw a
// tier from the policy's fixed probabilities, then draw ClientsPerRound
// clients uniformly from that tier.
type StaticSelector struct {
	Tiers           []Tier
	Policy          StaticPolicy
	ClientsPerRound int
}

// NewStaticSelector validates and builds a static tier selector. The policy
// must provide one probability per tier.
func NewStaticSelector(tiers []Tier, policy StaticPolicy, clientsPerRound int) *StaticSelector {
	if err := policy.Validate(); err != nil {
		panic(err)
	}
	if len(policy.Probs) != len(tiers) {
		panic(fmt.Sprintf("core: policy %q has %d probabilities for %d tiers", policy.Name, len(policy.Probs), len(tiers)))
	}
	if clientsPerRound <= 0 {
		panic("core: ClientsPerRound must be positive")
	}
	return &StaticSelector{Tiers: tiers, Policy: policy, ClientsPerRound: clientsPerRound}
}

// Select implements flcore.Selector.
func (s *StaticSelector) Select(r int, rng *rand.Rand) []int {
	t := pickTier(s.Policy.Probs, rng)
	return sampleClients(s.Tiers[t].Members, s.ClientsPerRound, rng)
}

// ExpectedRoundLatency returns Σ_i L_tier_i · P_i, the per-round latency
// expectation underlying the estimation model (Eq. 6).
func (s *StaticSelector) ExpectedRoundLatency() float64 {
	sum := 0.0
	for i, t := range s.Tiers {
		sum += t.MeanLatency * s.Policy.Probs[i]
	}
	return sum
}
