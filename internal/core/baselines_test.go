package core

import (
	"math/rand"
	"testing"

	"repro/internal/flcore"
)

func TestDeadlineSelectorFilters(t *testing.T) {
	clients := makeClients(t, 50)
	res := Profile(clients, testLM, DefaultProfiler)
	// Deadline between the tier-2 and tier-5 latencies: slow clients never
	// get picked.
	sel := NewDeadlineSelector(res.Latency, 3.0, 5)
	if sel.Eligible() == 0 || sel.Eligible() == 50 {
		t.Fatalf("eligible = %d, expected a strict subset", sel.Eligible())
	}
	rng := rand.New(rand.NewSource(1))
	for r := 0; r < 100; r++ {
		for _, c := range sel.Select(r, rng) {
			if res.Latency[c] > 3.0 {
				t.Fatalf("selected client %d with latency %v beyond deadline", c, res.Latency[c])
			}
		}
	}
}

func TestDeadlineSelectorFallbackToFastest(t *testing.T) {
	lat := map[int]float64{0: 10, 1: 20, 2: 30, 3: 40}
	sel := NewDeadlineSelector(lat, 5, 2) // nobody fits
	if sel.Eligible() != 0 {
		t.Fatalf("eligible = %d", sel.Eligible())
	}
	rng := rand.New(rand.NewSource(2))
	picked := sel.Select(0, rng)
	for _, c := range picked {
		if c != 0 && c != 1 {
			t.Fatalf("fallback picked %v, want the two fastest", picked)
		}
	}
}

func TestDeadlineSelectorValidation(t *testing.T) {
	mustPanic(t, func() { NewDeadlineSelector(nil, 1, 1) })
	mustPanic(t, func() { NewDeadlineSelector(map[int]float64{0: 1}, 0, 1) })
	mustPanic(t, func() { NewDeadlineSelector(map[int]float64{0: 1}, 1, 0) })
}

func TestDynamicSelectorTracksDrift(t *testing.T) {
	// Client 0 starts fast (latency 1) then becomes the slowest (latency
	// 100). After re-tiering it must move out of the fastest tier.
	lat := map[int]float64{}
	for i := 0; i < 20; i++ {
		lat[i] = float64(1 + i) // spread 1..20
	}
	policy := StaticPolicy{Name: "uniform4", Probs: []float64{0.25, 0.25, 0.25, 0.25}}
	d := NewDynamicSelector(lat, policy, 3)
	d.RetierEvery = 5
	d.Alpha = 1 // adopt observations immediately

	tierOf := TierOf(d.Tiers())
	if tierOf[0] != 0 {
		t.Fatalf("client 0 should start in tier 0, is in %d", tierOf[0])
	}
	// Feed observations: client 0 now responds in 100s.
	d.ObserveLatencies(1, []flcore.Update{{ClientID: 0, Latency: 100}})
	if v, _ := d.EWMA(0); v != 100 {
		t.Fatalf("EWMA = %v", v)
	}
	// Trigger a re-tier at round 5.
	rng := rand.New(rand.NewSource(3))
	d.Select(5, rng)
	if d.Retiers() != 1 {
		t.Fatalf("retiers = %d", d.Retiers())
	}
	tierOf = TierOf(d.Tiers())
	last := len(d.Tiers()) - 1
	if tierOf[0] != last {
		t.Fatalf("drifted client 0 in tier %d, want slowest tier %d", tierOf[0], last)
	}
}

func TestDynamicSelectorEWMASmoothing(t *testing.T) {
	d := NewDynamicSelector(map[int]float64{0: 10, 1: 10, 2: 10, 3: 10}, StaticPolicy{Name: "u", Probs: []float64{0.5, 0.5}}, 1)
	d.Alpha = 0.5
	d.NumTiers = 2
	d.ObserveLatencies(0, []flcore.Update{{ClientID: 0, Latency: 20}})
	if v, _ := d.EWMA(0); v != 15 {
		t.Fatalf("EWMA after one obs = %v, want 15", v)
	}
	// Unknown clients are adopted outright.
	d.ObserveLatencies(0, []flcore.Update{{ClientID: 99, Latency: 7}})
	if v, ok := d.EWMA(99); !ok || v != 7 {
		t.Fatalf("new client EWMA = %v, %v", v, ok)
	}
}

func TestDynamicSelectorEndToEndRecoversFromDrift(t *testing.T) {
	// Integration: after the fast group slows down 20x mid-training, the
	// dynamic selector re-tiers and keeps per-round latency bounded,
	// whereas a static fast-tier policy keeps selecting the now-slow
	// clients.
	mk := func() []*flcore.Client {
		cl := makeClients(t, 50)
		for i := 0; i < 10; i++ { // the 4-CPU group degrades at round 10
			cl[i].Drift = func(round int) float64 {
				if round >= 10 {
					return 0.05
				}
				return 1
			}
		}
		return cl
	}
	prof := Profile(makeClients(t, 50), testLM, DefaultProfiler)

	cfg := flcore.Config{
		Rounds: 40, ClientsPerRound: 5, LocalEpochs: 1, BatchSize: 10, Seed: 9,
		Model: mlpFactory(), Optimizer: sgdFactory(), Latency: testLM, EvalEvery: 0,
	}
	fastProbs := StaticPolicy{Name: "fastish", Probs: []float64{0.6, 0.1, 0.1, 0.1, 0.1}}

	staticSel := NewStaticSelector(BuildTiers(prof.Latency, 5, Quantile), fastProbs, 5)
	staticRes := flcore.NewEngine(cfg, mk(), nil).Run(staticSel)

	dyn := NewDynamicSelector(prof.Latency, fastProbs, 5)
	dyn.RetierEvery = 10
	dynRes := flcore.NewEngine(cfg, mk(), nil).Run(dyn)

	if dyn.Retiers() == 0 {
		t.Fatal("dynamic selector never re-tiered")
	}
	if dynRes.TotalTime >= staticRes.TotalTime {
		t.Fatalf("dynamic %v should beat static %v under drift", dynRes.TotalTime, staticRes.TotalTime)
	}
}
