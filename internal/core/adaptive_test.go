package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/flcore"
)

func TestTierTestDataPooling(t *testing.T) {
	clients := makeClients(t, 50)
	res := Profile(clients, testLM, DefaultProfiler)
	tiers := BuildTiers(res.Latency, 5, Quantile)
	data := TierTestData(tiers, clients, 0, 1)
	if len(data) != 5 {
		t.Fatalf("tier test sets = %d", len(data))
	}
	for ti, d := range data {
		// Unlimited pooling = sum of members' local test shards.
		want := 0
		for _, ci := range tiers[ti].Members {
			want += clients[ci].Test.Len()
		}
		if d.Len() != want {
			t.Fatalf("tier %d pooled %d samples, want %d", ti, d.Len(), want)
		}
	}
}

func TestTierTestDataCap(t *testing.T) {
	clients := makeClients(t, 50)
	res := Profile(clients, testLM, DefaultProfiler)
	tiers := BuildTiers(res.Latency, 5, Quantile)
	data := TierTestData(tiers, clients, 25, 1)
	for ti, d := range data {
		if d.Len() > 25 {
			t.Fatalf("tier %d has %d samples, cap 25", ti, d.Len())
		}
	}
}

func TestTierTestDataNoTestShardsPanics(t *testing.T) {
	clients := makeClients(t, 10)
	for _, c := range clients {
		c.Test = nil
	}
	tiers := []Tier{{ID: 0, Members: []int{0, 1}}}
	mustPanic(t, func() { TierTestData(tiers, clients, 0, 1) })
}

func TestAdaptiveAfterRoundRecordsAllTiers(t *testing.T) {
	sel, tiers := buildAdaptive(t, AdaptiveConfig{ClientsPerRound: 5})
	calls := 0
	sel.AfterRound(0, func(d *dataset.Dataset) float64 {
		calls++
		return 0.5
	})
	if calls != len(tiers) {
		t.Fatalf("eval called %d times, want %d", calls, len(tiers))
	}
	for ti := range tiers {
		if got := sel.TierAccuracy(ti, 0); got != 0.5 {
			t.Fatalf("tier %d accuracy = %v", ti, got)
		}
	}
	if !math.IsNaN(sel.TierAccuracy(0, 5)) {
		t.Fatal("future round accuracy must be NaN")
	}
}

func TestAdaptiveAfterRoundGapsFilledWithNaN(t *testing.T) {
	sel, _ := buildAdaptive(t, AdaptiveConfig{ClientsPerRound: 5})
	// Record round 3 without rounds 0-2: they must read as NaN.
	sel.AfterRound(3, func(d *dataset.Dataset) float64 { return 0.7 })
	if !math.IsNaN(sel.TierAccuracy(0, 1)) {
		t.Fatal("missing round must be NaN")
	}
	if sel.TierAccuracy(0, 3) != 0.7 {
		t.Fatalf("round 3 accuracy = %v", sel.TierAccuracy(0, 3))
	}
}

func TestAdaptiveChangeProbsAllPerfect(t *testing.T) {
	sel, tiers := buildAdaptive(t, AdaptiveConfig{ClientsPerRound: 5})
	for t2 := range sel.accHist {
		sel.accHist[t2] = []float64{1.0}
	}
	probs := sel.changeProbs(0)
	for _, p := range probs {
		if math.Abs(p-1/float64(len(tiers))) > 1e-12 {
			t.Fatalf("all-perfect tiers should give uniform probs: %v", probs)
		}
	}
}

func TestAdaptiveChangeProbsUnevaluatedTreatedAsStruggling(t *testing.T) {
	sel, _ := buildAdaptive(t, AdaptiveConfig{ClientsPerRound: 5, Temperature: 1})
	sel.accHist[0] = []float64{0.9}
	// Other tiers unevaluated → gap 1.0 → highest probability.
	probs := sel.changeProbs(0)
	if probs[0] >= probs[1] {
		t.Fatalf("evaluated tier should rank below unevaluated: %v", probs)
	}
}

func TestAdaptiveProbUpdateTriggersOnStall(t *testing.T) {
	sel, _ := buildAdaptive(t, AdaptiveConfig{ClientsPerRound: 5, Interval: 2, Temperature: 2})
	rng := rand.New(rand.NewSource(30))
	// Rounds 0..3 with flat accuracies → at round 4 (r%I==0, r>=I) the
	// stall check fires and probabilities become skewed by accuracy.
	accs := []float64{0.9, 0.8, 0.7, 0.6, 0.2}
	for r := 0; r < 4; r++ {
		sel.Select(r, rng)
		for ti := range sel.accHist {
			sel.accHist[ti] = append(sel.accHist[ti], accs[ti])
		}
	}
	before := sel.Probabilities()
	sel.Select(4, rng)
	after := sel.Probabilities()
	changed := false
	for i := range before {
		if before[i] != after[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("stalled accuracy did not trigger ChangeProbs")
	}
	if after[4] <= after[0] {
		t.Fatalf("worst tier not boosted: %v", after)
	}
}

func TestStaticSelectorUndersizedTier(t *testing.T) {
	// Tier smaller than |C|: all members returned, no panic, no dupes.
	tiers := []Tier{{ID: 0, Members: []int{3, 7}, MeanLatency: 1}}
	sel := NewStaticSelector(tiers, StaticPolicy{Name: "one", Probs: []float64{1}}, 5)
	got := sel.Select(0, rand.New(rand.NewSource(1)))
	if len(got) != 2 {
		t.Fatalf("selected %v", got)
	}
}

func TestAccuracyHistoryIsACopy(t *testing.T) {
	sel, _ := buildAdaptive(t, AdaptiveConfig{ClientsPerRound: 5})
	sel.AfterRound(0, func(d *dataset.Dataset) float64 { return 0.42 })
	h := sel.AccuracyHistory()
	if len(h) != len(sel.Tiers) || h[0][0] != 0.42 {
		t.Fatalf("history = %v", h)
	}
	h[0][0] = 99
	if sel.TierAccuracy(0, 0) != 0.42 {
		t.Fatal("AccuracyHistory must return a copy")
	}
}

func TestDynamicSelectorImplementsInterfaces(t *testing.T) {
	var _ flcore.Selector = (*AdaptiveSelector)(nil)
	var _ flcore.RoundObserver = (*AdaptiveSelector)(nil)
	var _ flcore.Selector = (*StaticSelector)(nil)
	var _ flcore.Selector = (*DeadlineSelector)(nil)
}
