package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/flcore"
)

// TierTestData assembles each tier's evaluation set (TestData_t in
// Algorithm 2) by pooling the member clients' local test shards, capped at
// maxPerTier samples (0 = unlimited). Only accuracy numbers computed on
// these shards ever reach the scheduler, so the privacy posture matches the
// paper: the aggregator never observes raw data or class distributions.
func TierTestData(tiers []Tier, clients []*flcore.Client, maxPerTier int, seed int64) []*dataset.Dataset {
	out := make([]*dataset.Dataset, len(tiers))
	for ti, t := range tiers {
		var parts []*dataset.Dataset
		for _, ci := range t.Members {
			if c := clients[ci]; c.Test != nil && c.Test.Len() > 0 {
				parts = append(parts, c.Test)
			}
		}
		if len(parts) == 0 {
			panic(fmt.Sprintf("core: tier %d has no client test data", ti))
		}
		pooled := dataset.Concat(parts...)
		if maxPerTier > 0 && pooled.Len() > maxPerTier {
			rng := rand.New(rand.NewSource(seed + int64(ti)))
			pooled = pooled.Subset(rng.Perm(pooled.Len())[:maxPerTier])
		}
		out[ti] = pooled
	}
	return out
}

// AdaptiveConfig parameterizes Algorithm 2.
type AdaptiveConfig struct {
	ClientsPerRound int
	// Interval is I: every I rounds the selection probabilities are
	// reconsidered.
	Interval int
	// Credits is the per-tier selection budget Credits_t; 0 or negative
	// means unlimited (credits never bind).
	Credits int
	// Temperature shapes ChangeProbs: probabilities are proportional to
	// (1 - accuracy)^Temperature, so larger values boost struggling tiers
	// more sharply. 0 defaults to 2.
	Temperature float64
	// TestPerTier caps each tier's evaluation set size (0 = unlimited).
	TestPerTier int
	Seed        int64
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Interval <= 0 {
		c.Interval = 20
	}
	if c.Temperature <= 0 {
		c.Temperature = 2
	}
	return c
}

// AdaptiveSelector implements TiFL's adaptive tier selection (Algorithm 2):
// it tracks per-tier test accuracy A_t^r after every round, re-weights tier
// probabilities every Interval rounds when the current tier's accuracy
// stalls (lower-accuracy tiers get picked more), and enforces per-tier
// Credits so slow tiers cannot dominate training time.
type AdaptiveSelector struct {
	Tiers []Tier
	cfg   AdaptiveConfig

	probs       []float64
	credits     []int
	currentTier int
	// accHist[t][r] is tier t's test accuracy after round r; NaN when a
	// round was not evaluated yet.
	accHist  [][]float64
	tierTest []*dataset.Dataset

	// FallbackRounds counts rounds in which every tier's credits were
	// exhausted and the selector fell back to ignoring credits (the paper's
	// Algorithm 2 would spin forever in that state; we degrade gracefully
	// and surface the count).
	FallbackRounds int
}

// NewAdaptiveSelector builds the adaptive scheduler over profiled tiers.
// clients supplies the local test shards pooled into per-tier evaluation
// sets.
func NewAdaptiveSelector(tiers []Tier, clients []*flcore.Client, cfg AdaptiveConfig) *AdaptiveSelector {
	cfg = cfg.withDefaults()
	if cfg.ClientsPerRound <= 0 {
		panic("core: AdaptiveConfig.ClientsPerRound must be positive")
	}
	n := len(tiers)
	if n == 0 {
		panic("core: no tiers")
	}
	probs := make([]float64, n)
	credits := make([]int, n)
	for i := range probs {
		probs[i] = 1 / float64(n) // line 1: equal initial probability
		if cfg.Credits > 0 {
			credits[i] = cfg.Credits
		} else {
			credits[i] = math.MaxInt
		}
	}
	return &AdaptiveSelector{
		Tiers:    tiers,
		cfg:      cfg,
		probs:    probs,
		credits:  credits,
		accHist:  make([][]float64, n),
		tierTest: TierTestData(tiers, clients, cfg.TestPerTier, cfg.Seed),
	}
}

// Probabilities returns a copy of the current tier-selection probabilities.
func (a *AdaptiveSelector) Probabilities() []float64 {
	return append([]float64(nil), a.probs...)
}

// CreditsRemaining returns a copy of the per-tier credit counters.
func (a *AdaptiveSelector) CreditsRemaining() []int {
	return append([]int(nil), a.credits...)
}

// TierAccuracy returns tier t's recorded accuracy after round r, or NaN.
func (a *AdaptiveSelector) TierAccuracy(t, r int) float64 {
	if r < 0 || r >= len(a.accHist[t]) {
		return math.NaN()
	}
	return a.accHist[t][r]
}

// Select implements flcore.Selector, lines 2–16 of Algorithm 2. The
// paper's listing decrements Credits twice (lines 11 and 16), which would
// double-charge every selection; we read that as an editing artifact and
// decrement once per selection.
func (a *AdaptiveSelector) Select(r int, rng *rand.Rand) []int {
	I := a.cfg.Interval
	if r%I == 0 && r >= I {
		cur, prev := a.TierAccuracy(a.currentTier, r-1), a.TierAccuracy(a.currentTier, r-1-I)
		// Line 4: if the current tier's accuracy did not improve over the
		// last interval, recompute the probabilities from the latest
		// per-tier accuracies.
		if !math.IsNaN(cur) && !math.IsNaN(prev) && cur <= prev {
			a.probs = a.changeProbs(r - 1)
		}
	}
	// Lines 8–14: draw a tier with remaining credits.
	masked := make([]float64, len(a.probs))
	total := 0.0
	for i, p := range a.probs {
		if a.credits[i] > 0 {
			masked[i] = p
			total += p
		}
	}
	var tier int
	if total <= 0 {
		// All selectable mass exhausted: fall back to uniform over all
		// tiers so training can finish.
		a.FallbackRounds++
		tier = rng.Intn(len(a.Tiers))
	} else {
		for i := range masked {
			masked[i] /= total
		}
		tier = pickTier(masked, rng)
		if a.credits[tier] != math.MaxInt {
			a.credits[tier]--
		}
	}
	a.currentTier = tier
	return sampleClients(a.Tiers[tier].Members, a.cfg.ClientsPerRound, rng)
}

// AfterRound implements flcore.RoundObserver, lines 22–24 of Algorithm 2:
// evaluate the freshly aggregated global model on every tier's test data
// and record A_t^r.
func (a *AdaptiveSelector) AfterRound(r int, eval func(d *dataset.Dataset) float64) {
	for t := range a.Tiers {
		for len(a.accHist[t]) < r {
			a.accHist[t] = append(a.accHist[t], math.NaN())
		}
		a.accHist[t] = append(a.accHist[t], eval(a.tierTest[t]))
	}
}

// AccuracyHistory returns each tier's recorded test-accuracy trajectory
// (index = round; NaN for unevaluated rounds) — the raw data behind TiFL's
// selection decisions, for analysis and plotting.
func (a *AdaptiveSelector) AccuracyHistory() [][]float64 {
	out := make([][]float64, len(a.accHist))
	for t, h := range a.accHist {
		out[t] = append([]float64(nil), h...)
	}
	return out
}

// changeProbs is the ChangeProbs function of Algorithm 2, evaluated on the
// accuracies recorded after the given round.
func (a *AdaptiveSelector) changeProbs(round int) []float64 {
	accs := make([]float64, len(a.Tiers))
	for t := range a.Tiers {
		accs[t] = a.TierAccuracy(t, round)
	}
	return AdaptiveProbs(accs, a.cfg.Temperature)
}

// AdaptiveProbs is THE ChangeProbs rule of Algorithm 2, shared by the
// synchronous AdaptiveSelector and the live tiering Manager
// (internal/tiering). The paper leaves the exact form open beyond "lower
// accuracy tiers get higher probabilities to be selected"; we use
// p_t ∝ (1 - A_t)^temperature, which is smooth, order-preserving, and
// reduces to uniform when tiers are equally accurate. NaN accuracies
// (unevaluated tiers) are treated as struggling (accuracy 0); temperature
// ≤ 0 defaults to 2.
func AdaptiveProbs(accs []float64, temperature float64) []float64 {
	if temperature <= 0 {
		temperature = 2
	}
	n := len(accs)
	out := make([]float64, n)
	total := 0.0
	for t, acc := range accs {
		if math.IsNaN(acc) {
			acc = 0 // unevaluated tiers are treated as struggling
		}
		gap := 1 - acc
		if gap < 0 {
			gap = 0
		}
		out[t] = math.Pow(gap, temperature)
		total += out[t]
	}
	if total <= 0 {
		for t := range out {
			out[t] = 1 / float64(n)
		}
		return out
	}
	for t := range out {
		out[t] /= total
	}
	return out
}
