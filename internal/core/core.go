// Package core implements TiFL's primary contribution: the profiling and
// tiering module (Section 4.2), the static tier-selection policies of the
// straw-man proposal (Section 4.3, Table 1), and the adaptive tier-selection
// algorithm (Section 4.4, Algorithm 2).
//
// The pieces compose with the vanilla FL substrate (internal/flcore)
// through the Selector interface: the engine's training loop is untouched,
// matching the paper's claim that TiFL "simply regulates client selection
// without intervening the underlying training process".
package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/flcore"
	"repro/internal/simres"
)

// ProfilerConfig controls the lightweight profiling pass of Section 4.2.
type ProfilerConfig struct {
	// SyncRounds is the number of profiling rounds (sync_rounds in the
	// paper).
	SyncRounds int
	// Tmax is the per-round acknowledgement timeout in seconds; clients
	// that exceed it have Tmax (not their true latency) added to their
	// accumulated response time.
	Tmax float64
	// Epochs is the local epochs per profiling task (matches training).
	Epochs int
	// Seed drives the latency jitter so profiling is reproducible.
	Seed int64
}

// DefaultProfiler profiles for 5 rounds with a generous 1000 s timeout.
var DefaultProfiler = ProfilerConfig{SyncRounds: 5, Tmax: 1000, Epochs: 1, Seed: 1}

// ProfileResult holds per-client mean response latencies and the clients
// excluded as dropouts (those that timed out in every profiling round).
type ProfileResult struct {
	// Latency maps client index to mean observed response latency.
	Latency map[int]float64
	// Dropouts lists clients with accumulated latency ≥ SyncRounds·Tmax.
	Dropouts []int
}

// Profile measures every client's training response latency over
// cfg.SyncRounds rounds, per Section 4.2: each round every client runs the
// profiling task; responses later than Tmax are clipped to Tmax, and
// clients that always time out are excluded as dropouts.
func Profile(clients []*flcore.Client, lm simres.LatencyModel, cfg ProfilerConfig) *ProfileResult {
	if cfg.SyncRounds <= 0 || cfg.Tmax <= 0 {
		panic(fmt.Sprintf("core: invalid profiler config %+v", cfg))
	}
	rt := make([]float64, len(clients))
	rng := rand.New(rand.NewSource(cfg.Seed))
	for r := 0; r < cfg.SyncRounds; r++ {
		for i, c := range clients {
			lat := lm.Latency(c.CPU, c.NumSamples(), cfg.Epochs, rng)
			if lat > cfg.Tmax {
				lat = cfg.Tmax
			}
			rt[i] += lat
		}
	}
	res := &ProfileResult{Latency: make(map[int]float64, len(clients))}
	limit := float64(cfg.SyncRounds) * cfg.Tmax
	for i := range clients {
		if rt[i] >= limit {
			res.Dropouts = append(res.Dropouts, i)
			continue
		}
		res.Latency[i] = rt[i] / float64(cfg.SyncRounds)
	}
	return res
}

// Tier is one latency group: the clients whose profiled response latencies
// fell into the same bin, with the bin's mean latency. Tiers are ordered
// fastest first, so Tiers[0] is "tier 1" in the paper's numbering.
type Tier struct {
	ID          int
	Members     []int
	MeanLatency float64
}

// TieringStrategy selects how the latency histogram is split into tiers.
type TieringStrategy int

const (
	// EqualWidth splits the latency range [min, max] into m equal-width
	// bins — the paper's histogram construction. Bins that receive no
	// clients are dropped.
	EqualWidth TieringStrategy = iota
	// Quantile splits clients into m equal-count groups by latency order;
	// an ablation alternative that guarantees balanced tier sizes.
	Quantile
)

// BuildTiers groups profiled clients into at most m tiers by response
// latency and returns them ordered fastest to slowest. Degenerate inputs
// collapse to non-empty tiers instead of emitting empty ones: with fewer
// profiled clients than tiers the effective tier count is capped at the
// client count (so Quantile yields exactly min(m, n) singleton-or-larger
// tiers), duplicate latencies merge into shared bins, and an empty profile
// returns nil — callers that require at least one tier (tifl.New, the
// tiering Manager) check for that before training starts.
func BuildTiers(latency map[int]float64, m int, strategy TieringStrategy) []Tier {
	if m <= 0 {
		panic(fmt.Sprintf("core: tier count %d", m))
	}
	if len(latency) == 0 {
		return nil
	}
	if m > len(latency) {
		m = len(latency)
	}
	type cl struct {
		id  int
		lat float64
	}
	all := make([]cl, 0, len(latency))
	for id, l := range latency {
		all = append(all, cl{id, l})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].lat != all[j].lat {
			return all[i].lat < all[j].lat
		}
		return all[i].id < all[j].id
	})

	var groups [][]cl
	switch strategy {
	case EqualWidth:
		lo, hi := all[0].lat, all[len(all)-1].lat
		width := (hi - lo) / float64(m)
		groups = make([][]cl, m)
		for _, c := range all {
			bin := m - 1
			if width > 0 {
				bin = int((c.lat - lo) / width)
				if bin >= m {
					bin = m - 1
				}
			}
			groups[bin] = append(groups[bin], c)
		}
	case Quantile:
		groups = make([][]cl, m)
		n := len(all)
		for i, c := range all {
			bin := i * m / n
			groups[bin] = append(groups[bin], c)
		}
	default:
		panic(fmt.Sprintf("core: unknown tiering strategy %d", strategy))
	}

	var tiers []Tier
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		t := Tier{ID: len(tiers)}
		sum := 0.0
		for _, c := range g {
			t.Members = append(t.Members, c.id)
			sum += c.lat
		}
		t.MeanLatency = sum / float64(len(g))
		tiers = append(tiers, t)
	}
	return tiers
}

// TierLatencies returns the mean response latency of each tier in order —
// the L_tier_i inputs of the training-time estimation model (Eq. 6).
func TierLatencies(tiers []Tier) []float64 {
	out := make([]float64, len(tiers))
	for i, t := range tiers {
		out[i] = t.MeanLatency
	}
	return out
}

// TierOf returns a map from client index to tier index.
func TierOf(tiers []Tier) map[int]int {
	out := make(map[int]int)
	for ti, t := range tiers {
		for _, c := range t.Members {
			out[c] = ti
		}
	}
	return out
}

// sampleClients draws want distinct clients uniformly from members; if the
// tier is smaller than want it returns all members (the paper sizes tiers
// so n_j > |C|, but small testbeds may violate that).
func sampleClients(members []int, want int, rng *rand.Rand) []int {
	if want >= len(members) {
		return append([]int(nil), members...)
	}
	perm := rng.Perm(len(members))
	out := make([]int, want)
	for i := 0; i < want; i++ {
		out[i] = members[perm[i]]
	}
	return out
}

// pickTier draws a tier index from the probability vector probs.
func pickTier(probs []float64, rng *rand.Rand) int {
	x := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if x < acc {
			return i
		}
	}
	return len(probs) - 1 // guard against rounding
}
