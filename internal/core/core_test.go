package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/nn"
	"repro/internal/simres"
)

// mlpFactory builds the small MLP used by integration tests here.
func mlpFactory() flcore.ModelFactory {
	return func(rng *rand.Rand) *nn.Model {
		return nn.NewMLP(rng, dataset.CIFAR10Like.Dim, []int{24}, 10, 0)
	}
}

func sgdFactory() flcore.OptimizerFactory {
	return func(round int) nn.Optimizer { return nn.NewSGD(0.05, 0.9) }
}

// makeClients builds n clients over 5 CPU groups with IID data.
func makeClients(t testing.TB, n int) []*flcore.Client {
	t.Helper()
	train := dataset.Generate(dataset.CIFAR10Like, n*100, 1)
	test := dataset.Generate(dataset.CIFAR10Like, 400, 2)
	rng := rand.New(rand.NewSource(1))
	parts := dataset.PartitionIID(train.Len(), n, rng)
	cpus := simres.AssignGroups(n, simres.GroupsCIFAR)
	return flcore.BuildClients(train, test, parts, cpus, 40, 3)
}

var testLM = simres.LatencyModel{CostPerSample: 0.01, CommLatency: 0.5, JitterFrac: 0.05}

func TestProfileSeparatesGroups(t *testing.T) {
	clients := makeClients(t, 50)
	res := Profile(clients, testLM, DefaultProfiler)
	if len(res.Dropouts) != 0 {
		t.Fatalf("unexpected dropouts: %v", res.Dropouts)
	}
	if len(res.Latency) != 50 {
		t.Fatalf("profiled %d clients", len(res.Latency))
	}
	// 4-CPU clients (0-9) must profile faster than 0.1-CPU clients (40-49).
	if res.Latency[0] >= res.Latency[45] {
		t.Fatalf("fast client latency %v ≥ slow client %v", res.Latency[0], res.Latency[45])
	}
	// Spread should be roughly 40x in compute (4 vs 0.1 CPU).
	ratio := res.Latency[45] / res.Latency[0]
	if ratio < 10 {
		t.Fatalf("latency spread %v too small", ratio)
	}
}

func TestProfileTmaxDropouts(t *testing.T) {
	clients := makeClients(t, 50)
	cfg := DefaultProfiler
	cfg.Tmax = 4.0 // 0.1-CPU clients need ~10s, so they all time out
	res := Profile(clients, testLM, cfg)
	if len(res.Dropouts) == 0 {
		t.Fatal("expected slow clients to drop out under tight Tmax")
	}
	for _, d := range res.Dropouts {
		if clients[d].CPU > 0.11 {
			t.Fatalf("client %d with %v CPUs wrongly dropped", d, clients[d].CPU)
		}
		if _, ok := res.Latency[d]; ok {
			t.Fatalf("dropout %d still has a latency entry", d)
		}
	}
}

func TestProfileBadConfigPanics(t *testing.T) {
	clients := makeClients(t, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("zero SyncRounds did not panic")
		}
	}()
	Profile(clients, testLM, ProfilerConfig{SyncRounds: 0, Tmax: 1})
}

func TestBuildTiersEqualWidthOrdering(t *testing.T) {
	clients := makeClients(t, 50)
	res := Profile(clients, testLM, DefaultProfiler)
	tiers := BuildTiers(res.Latency, 5, EqualWidth)
	if len(tiers) < 2 {
		t.Fatalf("only %d tiers", len(tiers))
	}
	checkTierInvariants(t, tiers, res.Latency, 50)
}

func TestBuildTiersQuantileBalanced(t *testing.T) {
	clients := makeClients(t, 50)
	res := Profile(clients, testLM, DefaultProfiler)
	tiers := BuildTiers(res.Latency, 5, Quantile)
	if len(tiers) != 5 {
		t.Fatalf("quantile produced %d tiers, want 5", len(tiers))
	}
	for _, tr := range tiers {
		if len(tr.Members) != 10 {
			t.Fatalf("tier %d has %d members, want 10", tr.ID, len(tr.Members))
		}
	}
	checkTierInvariants(t, tiers, res.Latency, 50)
}

// checkTierInvariants: every profiled client in exactly one tier; tiers
// ordered by increasing mean latency; IDs sequential.
func checkTierInvariants(t *testing.T, tiers []Tier, lat map[int]float64, n int) {
	t.Helper()
	seen := map[int]bool{}
	for i, tr := range tiers {
		if tr.ID != i {
			t.Fatalf("tier ID %d at position %d", tr.ID, i)
		}
		if len(tr.Members) == 0 {
			t.Fatalf("empty tier %d", i)
		}
		for _, c := range tr.Members {
			if seen[c] {
				t.Fatalf("client %d in multiple tiers", c)
			}
			seen[c] = true
		}
		if i > 0 && tiers[i-1].MeanLatency > tr.MeanLatency {
			t.Fatalf("tiers not ordered: %v then %v", tiers[i-1].MeanLatency, tr.MeanLatency)
		}
	}
	if len(seen) != len(lat) {
		t.Fatalf("tiers cover %d clients, profiled %d", len(seen), len(lat))
	}
}

// Property: for random latency maps both strategies partition all clients.
func TestBuildTiersPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(60)
		lat := make(map[int]float64, n)
		for i := 0; i < n; i++ {
			lat[i] = 0.1 + r.Float64()*100
		}
		for _, strat := range []TieringStrategy{EqualWidth, Quantile} {
			tiers := BuildTiers(lat, 1+r.Intn(7), strat)
			seen := map[int]bool{}
			for _, tr := range tiers {
				for _, c := range tr.Members {
					if seen[c] {
						return false
					}
					seen[c] = true
				}
			}
			if len(seen) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTiersIdenticalLatencies(t *testing.T) {
	lat := map[int]float64{0: 5, 1: 5, 2: 5}
	tiers := BuildTiers(lat, 3, EqualWidth)
	if len(tiers) != 1 || len(tiers[0].Members) != 3 {
		t.Fatalf("identical latencies should collapse to one tier, got %d", len(tiers))
	}
	if tiers[0].MeanLatency != 5 {
		t.Fatalf("mean latency = %v", tiers[0].MeanLatency)
	}
}

// Regression: degenerate inputs — fewer clients (or fewer distinct
// latencies) than requested tiers, or an empty profile — must collapse to
// non-empty tiers (or nil) rather than emit empty ones.
func TestBuildTiersDegenerateInputs(t *testing.T) {
	for _, strat := range []TieringStrategy{EqualWidth, Quantile} {
		if tiers := BuildTiers(map[int]float64{}, 5, strat); tiers != nil {
			t.Fatalf("empty profile built %d tiers, want nil", len(tiers))
		}
		// Two clients, five requested tiers: exactly two non-empty tiers.
		tiers := BuildTiers(map[int]float64{7: 1, 3: 9}, 5, strat)
		if len(tiers) != 2 {
			t.Fatalf("strategy %d: 2 clients over 5 requested tiers built %d tiers", strat, len(tiers))
		}
		for i, tr := range tiers {
			if len(tr.Members) == 0 {
				t.Fatalf("strategy %d: tier %d is empty", strat, i)
			}
			if tr.ID != i {
				t.Fatalf("strategy %d: tier IDs not consecutive: %+v", strat, tiers)
			}
		}
		if tiers[0].Members[0] != 7 || tiers[1].Members[0] != 3 {
			t.Fatalf("strategy %d: fastest-first ordering broken: %+v", strat, tiers)
		}
		// A single client is one singleton tier regardless of m.
		if tiers := BuildTiers(map[int]float64{4: 2.5}, 4, strat); len(tiers) != 1 || len(tiers[0].Members) != 1 {
			t.Fatalf("strategy %d: singleton profile built %+v", strat, tiers)
		}
	}
	// Fewer distinct latencies than tiers under Quantile still yields
	// min(m, n) non-empty tiers (ties split by client ID).
	tiers := BuildTiers(map[int]float64{0: 1, 1: 1, 2: 1, 3: 1}, 8, Quantile)
	if len(tiers) != 4 {
		t.Fatalf("quantile over 4 tied clients with m=8 built %d tiers", len(tiers))
	}
	for _, tr := range tiers {
		if len(tr.Members) != 1 {
			t.Fatalf("tied quantile tiers not singletons: %+v", tiers)
		}
	}
}

func TestAdaptiveProbsShared(t *testing.T) {
	// Uniform when equally accurate, boosted when struggling, NaN treated
	// as accuracy 0, and always a probability vector.
	p := AdaptiveProbs([]float64{0.5, 0.5, 0.5}, 2)
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("equal accuracies not uniform: %v", p)
		}
	}
	p = AdaptiveProbs([]float64{0.9, math.NaN(), 0.5}, 2)
	if !(p[1] > p[2] && p[2] > p[0]) {
		t.Fatalf("struggling tiers not boosted: %v", p)
	}
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probs sum to %v", sum)
	}
	// All tiers at perfect accuracy degrade to uniform, not zero.
	p = AdaptiveProbs([]float64{1, 1}, 2)
	if p[0] != 0.5 || p[1] != 0.5 {
		t.Fatalf("perfect accuracies: %v", p)
	}
}

func TestTierOfAndLatencies(t *testing.T) {
	lat := map[int]float64{0: 1, 1: 2, 2: 10, 3: 11}
	tiers := BuildTiers(lat, 2, EqualWidth)
	m := TierOf(tiers)
	if m[0] != 0 || m[3] != 1 {
		t.Fatalf("TierOf = %v", m)
	}
	ls := TierLatencies(tiers)
	if len(ls) != 2 || ls[0] != 1.5 || ls[1] != 10.5 {
		t.Fatalf("TierLatencies = %v", ls)
	}
}

func TestTable1PoliciesValid(t *testing.T) {
	for _, p := range append(PoliciesCIFAR(), PoliciesMNIST()...) {
		if err := p.Validate(); err != nil {
			t.Errorf("policy %q invalid: %v", p.Name, err)
		}
		if len(p.Probs) != 5 {
			t.Errorf("policy %q has %d tiers", p.Name, len(p.Probs))
		}
	}
	// Spot-check exact Table 1 values.
	if PolicyRandom.Probs[0] != 0.7 || PolicyRandom.Probs[4] != 0.05 {
		t.Errorf("random policy = %v", PolicyRandom.Probs)
	}
	if PolicyFast3.Probs[4] != 0 || PolicyFast3.Probs[0] != 0.25 {
		t.Errorf("fast3 policy = %v", PolicyFast3.Probs)
	}
}

func TestStaticSelectorRespectsPolicy(t *testing.T) {
	clients := makeClients(t, 50)
	res := Profile(clients, testLM, DefaultProfiler)
	tiers := BuildTiers(res.Latency, 5, Quantile)
	sel := NewStaticSelector(tiers, PolicyFast, 5)
	rng := rand.New(rand.NewSource(9))
	fastSet := map[int]bool{}
	for _, c := range tiers[0].Members {
		fastSet[c] = true
	}
	for r := 0; r < 100; r++ {
		for _, c := range sel.Select(r, rng) {
			if !fastSet[c] {
				t.Fatalf("fast policy selected client %d outside tier 1", c)
			}
		}
	}
}

func TestStaticSelectorDistribution(t *testing.T) {
	clients := makeClients(t, 50)
	res := Profile(clients, testLM, DefaultProfiler)
	tiers := BuildTiers(res.Latency, 5, Quantile)
	sel := NewStaticSelector(tiers, PolicyRandom, 5)
	rng := rand.New(rand.NewSource(10))
	tierOf := TierOf(tiers)
	counts := make([]int, 5)
	const rounds = 5000
	for r := 0; r < rounds; r++ {
		picked := sel.Select(r, rng)
		counts[tierOf[picked[0]]]++
	}
	for i, want := range PolicyRandom.Probs {
		got := float64(counts[i]) / rounds
		if math.Abs(got-want) > 0.03 {
			t.Fatalf("tier %d selected %v of rounds, want %v", i, got, want)
		}
	}
}

func TestStaticSelectorSameTierPerRound(t *testing.T) {
	clients := makeClients(t, 50)
	res := Profile(clients, testLM, DefaultProfiler)
	tiers := BuildTiers(res.Latency, 5, Quantile)
	sel := NewStaticSelector(tiers, PolicyUniform, 5)
	tierOf := TierOf(tiers)
	rng := rand.New(rand.NewSource(11))
	for r := 0; r < 50; r++ {
		picked := sel.Select(r, rng)
		if len(picked) != 5 {
			t.Fatalf("selected %d clients", len(picked))
		}
		first := tierOf[picked[0]]
		for _, c := range picked[1:] {
			if tierOf[c] != first {
				t.Fatalf("round %d mixes tiers %d and %d", r, first, tierOf[c])
			}
		}
	}
}

func TestStaticSelectorValidation(t *testing.T) {
	tiers := []Tier{{ID: 0, Members: []int{0}}, {ID: 1, Members: []int{1}}}
	mustPanic(t, func() {
		NewStaticSelector(tiers, StaticPolicy{Name: "bad", Probs: []float64{0.5, 0.2}}, 1)
	})
	mustPanic(t, func() { NewStaticSelector(tiers, PolicyUniform, 1) }) // 5 probs, 2 tiers
	mustPanic(t, func() {
		NewStaticSelector(tiers, StaticPolicy{Name: "x", Probs: []float64{0.5, 0.5}}, 0)
	})
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestExpectedRoundLatency(t *testing.T) {
	tiers := []Tier{
		{ID: 0, Members: []int{0}, MeanLatency: 1},
		{ID: 1, Members: []int{1}, MeanLatency: 3},
	}
	sel := NewStaticSelector(tiers, StaticPolicy{Name: "x", Probs: []float64{0.25, 0.75}}, 1)
	want := 0.25*1 + 0.75*3
	if got := sel.ExpectedRoundLatency(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ExpectedRoundLatency = %v, want %v", got, want)
	}
}

func buildAdaptive(t *testing.T, cfg AdaptiveConfig) (*AdaptiveSelector, []Tier) {
	t.Helper()
	clients := makeClients(t, 50)
	res := Profile(clients, testLM, DefaultProfiler)
	tiers := BuildTiers(res.Latency, 5, Quantile)
	return NewAdaptiveSelector(tiers, clients, cfg), tiers
}

func TestAdaptiveInitialUniformProbs(t *testing.T) {
	sel, tiers := buildAdaptive(t, AdaptiveConfig{ClientsPerRound: 5})
	probs := sel.Probabilities()
	for _, p := range probs {
		if math.Abs(p-1/float64(len(tiers))) > 1e-12 {
			t.Fatalf("initial probs = %v, want uniform", probs)
		}
	}
}

func TestAdaptiveSelectsWithinOneTier(t *testing.T) {
	sel, tiers := buildAdaptive(t, AdaptiveConfig{ClientsPerRound: 5})
	tierOf := TierOf(tiers)
	rng := rand.New(rand.NewSource(12))
	for r := 0; r < 30; r++ {
		picked := sel.Select(r, rng)
		first := tierOf[picked[0]]
		for _, c := range picked {
			if tierOf[c] != first {
				t.Fatalf("round %d mixes tiers", r)
			}
		}
	}
}

func TestAdaptiveChangeProbsDirect(t *testing.T) {
	sel, _ := buildAdaptive(t, AdaptiveConfig{ClientsPerRound: 5, Interval: 2, Temperature: 2})
	// Inject accuracy history directly.
	accs := []float64{0.95, 0.9, 0.8, 0.6, 0.3}
	for t2 := range sel.accHist {
		sel.accHist[t2] = []float64{accs[t2]}
	}
	probs := sel.changeProbs(0)
	sum := 0.0
	for i := 1; i < len(probs); i++ {
		if probs[i] < probs[i-1] {
			t.Fatalf("lower-accuracy tier got lower probability: %v", probs)
		}
	}
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("changeProbs sums to %v", sum)
	}
	// Tier 4 (acc 0.3) should dominate tier 0 (acc 0.95) by (0.7/0.05)^2.
	if probs[4]/probs[0] < 100 {
		t.Fatalf("boost ratio %v too small", probs[4]/probs[0])
	}
}

func TestAdaptiveCreditsExhaustion(t *testing.T) {
	sel, _ := buildAdaptive(t, AdaptiveConfig{ClientsPerRound: 5, Credits: 2, Interval: 1000})
	rng := rand.New(rand.NewSource(14))
	// 5 tiers × 2 credits = 10 credited rounds; beyond that we fall back.
	for r := 0; r < 10; r++ {
		sel.Select(r, rng)
	}
	if sel.FallbackRounds != 0 {
		t.Fatalf("fallback before credits exhausted: %d", sel.FallbackRounds)
	}
	for _, c := range sel.CreditsRemaining() {
		if c != 0 {
			t.Fatalf("credits remaining %v after exhaustion", sel.CreditsRemaining())
		}
	}
	sel.Select(10, rng)
	if sel.FallbackRounds != 1 {
		t.Fatalf("fallback count = %d, want 1", sel.FallbackRounds)
	}
}

func TestAdaptiveCreditsNeverNegative(t *testing.T) {
	sel, _ := buildAdaptive(t, AdaptiveConfig{ClientsPerRound: 5, Credits: 3, Interval: 1000})
	rng := rand.New(rand.NewSource(15))
	for r := 0; r < 100; r++ {
		sel.Select(r, rng)
		for _, c := range sel.CreditsRemaining() {
			if c < 0 {
				t.Fatalf("negative credits at round %d", r)
			}
		}
	}
}

func TestAdaptiveEndToEndOutperformsFastOnSkewedData(t *testing.T) {
	// Integration: quantity-skewed data (tier 1 = 10% of data). The fast
	// policy trains only on tier 1 and must end with lower accuracy than
	// the adaptive policy, reproducing the paper's core claim (Fig. 7).
	train := dataset.Generate(dataset.CIFAR10Like, 3000, 21)
	test := dataset.Generate(dataset.CIFAR10Like, 600, 22)
	rng := rand.New(rand.NewSource(23))
	parts := dataset.PartitionQuantity(train.Len(), 50, dataset.QuantityFractions, rng)
	// Fast group has the least data AND the most CPU, like the paper.
	cpus := simres.AssignGroups(50, simres.GroupsCIFAR)
	clients := flcore.BuildClients(train, test, parts, cpus, 60, 24)

	prof := Profile(clients, testLM, DefaultProfiler)
	tiers := BuildTiers(prof.Latency, 5, Quantile)

	runPolicy := func(sel flcore.Selector) *flcore.Result {
		c := flcore.Config{
			Rounds: 40, ClientsPerRound: 5, LocalEpochs: 1, BatchSize: 10, Seed: 25,
			Model:     mlpFactory(),
			Optimizer: sgdFactory(),
			Latency:   testLM,
			EvalEvery: 5,
		}
		// fresh clients per run so local state cannot leak
		cl := flcore.BuildClients(train, test, parts, cpus, 60, 24)
		return flcore.NewEngine(c, cl, test).Run(sel)
	}

	fast := runPolicy(NewStaticSelector(tiers, PolicyFast, 5))
	adaptive := runPolicy(NewAdaptiveSelector(tiers, clients, AdaptiveConfig{ClientsPerRound: 5, Interval: 5, Temperature: 2, TestPerTier: 100, Seed: 26}))

	if adaptive.FinalAcc <= fast.FinalAcc-0.02 {
		t.Fatalf("adaptive %.3f should not trail fast %.3f on skewed data", adaptive.FinalAcc, fast.FinalAcc)
	}
	// Fast must be the faster policy in simulated time (it only uses tier 1).
	if fast.TotalTime >= adaptive.TotalTime {
		t.Fatalf("fast time %v ≥ adaptive time %v", fast.TotalTime, adaptive.TotalTime)
	}
}
