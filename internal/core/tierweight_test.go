package core

import (
	"math"
	"testing"
)

func TestFedATWeightsFavorSlowTiers(t *testing.T) {
	w := FedATWeights()
	// Fast tier 0 committed 40 rounds, slow tier 2 only 5: the slow tier's
	// commit must carry strictly more weight than the fast tier's.
	commits := []int{40, 15, 5}
	fast, slow := w(0, commits), w(2, commits)
	if slow <= fast {
		t.Fatalf("slow weight %v not above fast %v", slow, fast)
	}
	// Weights are mirror-tier commit shares scaled by the tier count.
	wantFast := 3 * float64(5+1) / float64(60+3)
	if math.Abs(fast-wantFast) > 1e-12 {
		t.Fatalf("fast weight = %v, want %v", fast, wantFast)
	}
}

func TestFedATWeightsBalancedMixIsNeutral(t *testing.T) {
	w := FedATWeights()
	for tier := 0; tier < 4; tier++ {
		if got := w(tier, []int{7, 7, 7, 7}); math.Abs(got-1) > 1e-12 {
			t.Fatalf("tier %d weight %v under balanced commits, want 1", tier, got)
		}
	}
}

func TestFedATWeightsNoCommitsYet(t *testing.T) {
	w := FedATWeights()
	// Laplace smoothing: before any commits every tier gets the neutral
	// weight instead of a division by zero or a hard zero.
	for tier := 0; tier < 3; tier++ {
		if got := w(tier, []int{0, 0, 0}); math.Abs(got-1) > 1e-12 {
			t.Fatalf("tier %d weight %v with no commits, want 1", tier, got)
		}
	}
}

func TestFedATWeightsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range tier accepted")
		}
	}()
	FedATWeights()(3, []int{1, 1, 1})
}

func TestUniformTierWeightsNeutral(t *testing.T) {
	w := UniformTierWeights()
	if got := w(1, []int{9, 1, 0}); got != 1 {
		t.Fatalf("uniform weight = %v, want 1", got)
	}
}

func TestTierMembersCopies(t *testing.T) {
	tiers := []Tier{
		{ID: 0, Members: []int{1, 2}},
		{ID: 1, Members: []int{3}},
	}
	m := TierMembers(tiers)
	if len(m) != 2 || len(m[0]) != 2 || m[1][0] != 3 {
		t.Fatalf("members = %v", m)
	}
	m[0][0] = 99
	if tiers[0].Members[0] != 1 {
		t.Fatal("TierMembers aliases the tier's member slice")
	}
}
