package simres

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLatencyScalesWithWork(t *testing.T) {
	m := LatencyModel{CostPerSample: 0.01, CommLatency: 0}
	base := m.Latency(1, 100, 1, nil)
	if got := m.Latency(1, 200, 1, nil); math.Abs(got-2*base) > 1e-12 {
		t.Fatalf("doubling samples: %v, want %v", got, 2*base)
	}
	if got := m.Latency(1, 100, 3, nil); math.Abs(got-3*base) > 1e-12 {
		t.Fatalf("tripling epochs: %v, want %v", got, 3*base)
	}
	if got := m.Latency(2, 100, 1, nil); math.Abs(got-base/2) > 1e-12 {
		t.Fatalf("doubling CPU: %v, want %v", got, base/2)
	}
}

func TestLatencyCommFloor(t *testing.T) {
	m := LatencyModel{CostPerSample: 0, CommLatency: 0.7}
	if got := m.Latency(4, 1000, 1, nil); got != 0.7 {
		t.Fatalf("comm-only latency = %v", got)
	}
}

func TestLatencyJitterBounded(t *testing.T) {
	m := LatencyModel{CostPerSample: 0.01, CommLatency: 0.5, JitterFrac: 0.05}
	rng := rand.New(rand.NewSource(1))
	det := m.Latency(1, 500, 1, nil)
	for i := 0; i < 200; i++ {
		got := m.Latency(1, 500, 1, rng)
		if got < det*0.95-1e-9 || got > det*1.05+1e-9 {
			t.Fatalf("jittered latency %v outside ±5%% of %v", got, det)
		}
	}
}

func TestLatencyBadCPUPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero CPU did not panic")
		}
	}()
	DefaultModel.Latency(0, 10, 1, nil)
}

func TestPaperCPUGroupRatios(t *testing.T) {
	// The CIFAR group spread (4 vs 0.1 CPUs) must produce a 40x latency
	// spread for equal data — this drives the paper's ~11x fast-vs-vanilla
	// training-time gap.
	m := LatencyModel{CostPerSample: 0.01, CommLatency: 0}
	fast := m.Latency(GroupsCIFAR[0], 1000, 1, nil)
	slow := m.Latency(GroupsCIFAR[4], 1000, 1, nil)
	if math.Abs(slow/fast-40) > 1e-9 {
		t.Fatalf("latency spread = %v, want 40", slow/fast)
	}
}

func TestAssignGroups(t *testing.T) {
	got := AssignGroups(10, []float64{4, 2, 1, 0.5, 0.1})
	if len(got) != 10 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0] != 4 || got[1] != 4 || got[2] != 2 || got[9] != 0.1 {
		t.Fatalf("assignment = %v", got)
	}
}

func TestAssignGroupsIndivisiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("indivisible group assignment did not panic")
		}
	}()
	AssignGroups(7, []float64{1, 2})
}

func TestAssignGroupsRandomBalanced(t *testing.T) {
	cpus := []float64{4, 2, 1, 0.5, 0.1}
	got := AssignGroupsRandom(100, cpus, rand.New(rand.NewSource(1)))
	counts := map[float64]int{}
	for _, c := range got {
		counts[c]++
	}
	for _, c := range cpus {
		if counts[c] != 20 {
			t.Fatalf("cpu %v assigned %d times, want 20", c, counts[c])
		}
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("fresh clock not at zero")
	}
	c.Advance(1.5)
	c.Advance(2.5)
	if c.Now() != 4 {
		t.Fatalf("Now = %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	c.Advance(-1)
}

func TestLatencyFullCommScaling(t *testing.T) {
	m := LatencyModel{CostPerSample: 0, CommLatency: 0.5, CommPerParam: 1e-5}
	base := m.LatencyFull(1, 0, 1, 100000, 1, nil) // 0.5 + 1.0
	if math.Abs(base-1.5) > 1e-12 {
		t.Fatalf("comm latency = %v, want 1.5", base)
	}
	slowLink := m.LatencyFull(1, 0, 1, 100000, 0.1, nil) // 0.5 + 10
	if math.Abs(slowLink-10.5) > 1e-12 {
		t.Fatalf("slow-link latency = %v, want 10.5", slowLink)
	}
	// Zero bandwidth treated as nominal.
	if got := m.LatencyFull(1, 0, 1, 100000, 0, nil); got != base {
		t.Fatalf("zero bandwidth = %v, want %v", got, base)
	}
}

func TestLatencyFullBackwardCompatible(t *testing.T) {
	m := LatencyModel{CostPerSample: 0.01, CommLatency: 0.5}
	if m.Latency(2, 100, 1, nil) != m.LatencyFull(2, 100, 1, 0, 1, nil) {
		t.Fatal("Latency must equal LatencyFull with no comm term")
	}
}

func TestBandwidthGuardRegression(t *testing.T) {
	// Regression: zero, negative, NaN, or infinite bandwidth must not
	// divide through the comm term — every degenerate value falls back to
	// the nominal 1.0 link, on both the parameter and the byte path.
	m := LatencyModel{CostPerSample: 0, CommLatency: 0.5, CommPerParam: 1e-5}
	want := m.LatencyFull(1, 0, 1, 100000, 1, nil)
	for _, bw := range []float64{0, -1, -0.001, math.NaN(), math.Inf(1), math.Inf(-1)} {
		got := m.LatencyFull(1, 0, 1, 100000, bw, nil)
		if got != want || math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("LatencyFull(bandwidth=%v) = %v, want %v", bw, got, want)
		}
		gotB := m.LatencyBytes(1, 0, 1, 1600000, bw, nil)
		if gotB != want || math.IsNaN(gotB) || math.IsInf(gotB, 0) {
			t.Errorf("LatencyBytes(bandwidth=%v) = %v, want %v", bw, gotB, want)
		}
	}
}

func TestLatencyBytesMatchesDenseParams(t *testing.T) {
	// LatencyFull(params) must be bit-identical to LatencyBytes(16·params):
	// same model, same calibration, just a different unit.
	m := LatencyModel{CostPerSample: 0.003, CommLatency: 0.5, CommPerParam: 7e-6}
	for _, params := range []int{0, 1, 999, 100000} {
		for _, bw := range []float64{1, 0.25, 3} {
			a := m.LatencyFull(1.5, 120, 2, params, bw, nil)
			b := m.LatencyBytes(1.5, 120, 2, 16*params, bw, nil)
			if a != b {
				t.Fatalf("params=%d bw=%v: LatencyFull %v != LatencyBytes %v", params, bw, a, b)
			}
		}
	}
}

func TestLatencyBytesChargesCompressedTransfers(t *testing.T) {
	// A 10x smaller upload must shrink the size-dependent comm term
	// accordingly: dense round trip 16 bytes/param vs 8 down + 0.8 up.
	m := LatencyModel{CostPerSample: 0, CommLatency: 0, CommPerParam: 1e-4}
	params := 50000
	dense := m.LatencyBytes(1, 0, 1, 16*params, 1, nil)
	compressed := m.LatencyBytes(1, 0, 1, 8*params+8*params/10, 1, nil)
	want := dense * 8.8 / 16
	if math.Abs(compressed-want) > 1e-9 {
		t.Fatalf("compressed comm = %v, want %v (dense %v)", compressed, want, dense)
	}
	if got := m.CommSeconds(16*params, 1); got != dense {
		t.Fatalf("CommSeconds = %v, want %v", got, dense)
	}
}

// Property: latency is monotone in samples and antitone in CPU share.
func TestLatencyMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := LatencyModel{CostPerSample: 0.001 + r.Float64()*0.02, CommLatency: r.Float64()}
		cpu := 0.1 + r.Float64()*4
		s := 1 + r.Intn(5000)
		if m.Latency(cpu, s+100, 1, nil) < m.Latency(cpu, s, 1, nil) {
			return false
		}
		return m.Latency(cpu*2, s, 1, nil) <= m.Latency(cpu, s, 1, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
