// Package simres models the heterogeneous client resources of the TiFL
// testbed: CPU allocations per client group, a deterministic latency model
// mapping (CPU share, samples trained) to response latency, and a virtual
// clock that accumulates simulated training time.
//
// The paper's testbed pins each client group to a CPU fraction (e.g. 4 / 2 /
// 1 / 0.5 / 0.1 CPUs for CIFAR-10) and measures wall-clock response latency.
// Here latency is computed from the same inputs that drive the real number —
// samples × per-sample cost / CPU share + communication overhead + bounded
// jitter — so the quantities the paper reports (per-round time = max over
// selected clients, Eq. 1; total time = Σ round times) reproduce with the
// same ratios without needing a cluster.
package simres

import (
	"fmt"
	"math"
	"math/rand"
)

// CPU allocations per client group from Section 5.1 of the paper.
var (
	// GroupsMNIST: MNIST and Fashion-MNIST clients get 2, 1, 0.75, 0.5,
	// 0.25 CPUs per group.
	GroupsMNIST = []float64{2, 1, 0.75, 0.5, 0.25}
	// GroupsCIFAR: CIFAR-10 and FEMNIST clients get 4, 2, 1, 0.5, 0.1 CPUs.
	GroupsCIFAR = []float64{4, 2, 1, 0.5, 0.1}
	// GroupsCaseStudy: the Section 3 heterogeneity case study uses
	// 4, 2, 1, 1/3, 1/5 CPUs.
	GroupsCaseStudy = []float64{4, 2, 1, 1.0 / 3, 1.0 / 5}
)

// LatencyModel converts a client's resources and workload into a response
// latency in (simulated) seconds.
type LatencyModel struct {
	// CostPerSample is single-CPU compute seconds per trained sample.
	CostPerSample float64
	// CommLatency is the fixed per-round communication overhead in seconds
	// (model download + upload).
	CommLatency float64
	// CommPerParam adds model-size-dependent transfer time: seconds per
	// model parameter (down + up) at bandwidth scale 1.0. Zero disables
	// size-dependent communication (the calibrated default).
	CommPerParam float64
	// JitterFrac adds uniform multiplicative noise in
	// [1-JitterFrac, 1+JitterFrac]; real clients never produce identical
	// latencies twice.
	JitterFrac float64
}

// DefaultModel is calibrated so the Fig. 1a grid (500–5000 samples on
// 4–0.2 CPUs) spans roughly 2–250 s/round like the paper's log-scale plot.
var DefaultModel = LatencyModel{CostPerSample: 0.01, CommLatency: 0.5, JitterFrac: 0.05}

// Latency returns the response latency for one training round on a client
// with the given CPU share training `samples` samples for `epochs` local
// epochs. rng supplies jitter; pass nil for a deterministic result.
func (m LatencyModel) Latency(cpu float64, samples, epochs int, rng *rand.Rand) float64 {
	return m.LatencyFull(cpu, samples, epochs, 0, 1, rng)
}

// sanitizeBandwidth maps every degenerate relative link speed — zero,
// negative, NaN, ±Inf — to the nominal 1.0. An unset Client.Bandwidth is
// zero, and a zero (or NaN) slipping into the latency division would
// produce infinite or NaN round latencies that poison the simulated clock.
func sanitizeBandwidth(bandwidth float64) float64 {
	if bandwidth <= 0 || math.IsNaN(bandwidth) || math.IsInf(bandwidth, 1) {
		return 1
	}
	return bandwidth
}

// denseRoundTripBytes is the dense wire cost of one model parameter per
// round: 8 bytes down (aggregator → client) plus 8 bytes back up.
// CommPerParam is calibrated against this dense round trip, which is what
// makes the byte-based path (LatencyBytes) and the parameter-based path
// (LatencyFull) charge identically for uncompressed transfers.
const denseRoundTripBytes = 16

// CommSeconds returns the model-transfer term for moving totalBytes
// (download + upload combined) over a link with the given relative
// bandwidth: CommPerParam/16 seconds per byte at bandwidth 1.0.
func (m LatencyModel) CommSeconds(totalBytes int, bandwidth float64) float64 {
	return m.CommPerParam * (float64(totalBytes) / denseRoundTripBytes) / sanitizeBandwidth(bandwidth)
}

// LatencyFull extends Latency with model-size-dependent communication:
// params is the model's parameter count and bandwidth the client's relative
// link speed (1.0 nominal, 0.1 a 10x slower link; zero, negative, or
// non-finite values are treated as 1.0). The paper's resource heterogeneity
// covers both "computation and communication capacity"; CPU share drives
// the first term and bandwidth the second.
func (m LatencyModel) LatencyFull(cpu float64, samples, epochs, params int, bandwidth float64, rng *rand.Rand) float64 {
	return m.LatencyBytes(cpu, samples, epochs, denseRoundTripBytes*params, bandwidth, rng)
}

// LatencyBytes is the compressed-update path of the latency model: instead
// of charging CommPerParam for a dense parameter round trip, it charges for
// the actual encoded transfer size — totalBytes is download plus upload as
// they go over the wire (e.g. a dense model down plus a top-k sparsified
// update back). LatencyFull(params) ≡ LatencyBytes(16·params).
func (m LatencyModel) LatencyBytes(cpu float64, samples, epochs, totalBytes int, bandwidth float64, rng *rand.Rand) float64 {
	if cpu <= 0 {
		panic(fmt.Sprintf("simres: cpu share %v must be positive", cpu))
	}
	compute := m.CostPerSample * float64(samples*epochs) / cpu
	comm := m.CommLatency + m.CommSeconds(totalBytes, bandwidth)
	lat := compute + comm
	if m.JitterFrac > 0 && rng != nil {
		lat *= 1 + m.JitterFrac*(2*rng.Float64()-1)
	}
	return lat
}

// AssignGroups splits n clients into len(cpus) equal, contiguous groups and
// returns each client's CPU share: clients [0, n/g) get cpus[0], and so on.
// This mirrors the paper's "5 groups with equal clients per group".
func AssignGroups(n int, cpus []float64) []float64 {
	g := len(cpus)
	if g == 0 || n%g != 0 {
		panic(fmt.Sprintf("simres: %d clients not divisible into %d groups", n, g))
	}
	out := make([]float64, n)
	per := n / g
	for i := range out {
		out[i] = cpus[i/per]
	}
	return out
}

// AssignGroupsRandom assigns each of n clients a CPU share drawn uniformly
// from cpus, the scheme the paper uses when extending LEAF ("resource
// assignment ... through uniform random distribution resulting in equal
// number of clients per hardware type" — we shuffle a balanced assignment).
func AssignGroupsRandom(n int, cpus []float64, rng *rand.Rand) []float64 {
	g := len(cpus)
	if g == 0 {
		panic("simres: no CPU groups")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = cpus[i%g] // balanced counts per hardware type
	}
	rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Clock is a virtual clock measuring simulated seconds of federated
// training. The engine advances it by each round's latency (the max over
// selected clients, Eq. 1 in the paper).
type Clock struct {
	now float64
}

// Now returns the current simulated time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by d seconds; d must be non-negative.
func (c *Clock) Advance(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("simres: negative clock advance %v", d))
	}
	c.now += d
}

// Reset rewinds the clock to zero.
func (c *Clock) Reset() { c.now = 0 }
