package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/nn"
	"repro/internal/simres"
)

func TestRecordLoadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.Record(Event{Round: 0, Selected: []int{1, 2}, Latency: 1.5, SimTime: 1.5, Accuracy: 0.4, Tier: 0})
	r.Record(Event{Round: 1, Selected: []int{3}, Latency: 2.5, SimTime: 4.0, Tier: 2})
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if r.Events() != 2 {
		t.Fatalf("events = %d", r.Events())
	}
	events, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Tier != 2 || events[0].Selected[1] != 2 {
		t.Fatalf("loaded = %+v", events)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadSkipsBlankLines(t *testing.T) {
	events, err := Load(strings.NewReader("\n{\"round\":3,\"tier\":-1}\n\n"))
	if err != nil || len(events) != 1 || events[0].Round != 3 {
		t.Fatalf("events = %+v, err = %v", events, err)
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{Round: 0, Selected: []int{0, 1}, Latency: 1, SimTime: 1, Tier: 0, Accuracy: 0.3},
		{Round: 1, Selected: []int{0, 2}, Latency: 3, SimTime: 4, Tier: 1},
		{Round: 2, Selected: []int{1, 2}, Latency: 2, SimTime: 6, Tier: 0, Accuracy: 0.6},
	}
	s := Summarize(events)
	if s.Rounds != 3 || s.TotalTime != 6 || s.Max != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.MeanLatency != 2 || s.P50 != 2 {
		t.Fatalf("latency stats = %+v", s)
	}
	if s.FinalAccuracy != 0.6 {
		t.Fatalf("final accuracy = %v", s.FinalAccuracy)
	}
	if s.SelectionCount[0] != 2 || s.TierCount[0] != 2 {
		t.Fatalf("counts = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Rounds != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestEngineTracingEndToEnd(t *testing.T) {
	train := dataset.Generate(dataset.MNISTLike, 500, 1)
	test := dataset.Generate(dataset.MNISTLike, 200, 2)
	rng := rand.New(rand.NewSource(3))
	parts := dataset.PartitionIID(train.Len(), 10, rng)
	cpus := simres.AssignGroups(10, []float64{4, 2, 1, 0.5, 0.1})
	clients := flcore.BuildClients(train, test, parts, cpus, 30, 4)

	prof := core.Profile(clients, simres.DefaultModel, core.DefaultProfiler)
	tiers := core.BuildTiers(prof.Latency, 5, core.Quantile)

	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	cfg := flcore.Config{
		Rounds: 8, ClientsPerRound: 2, LocalEpochs: 1, BatchSize: 10, Seed: 5,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, train.Dim(), []int{8}, 10, 0)
		},
		Optimizer: func(round int) nn.Optimizer { return nn.NewSGD(0.05, 0) },
		Latency:   simres.DefaultModel,
		EvalEvery: 2,
		OnRound:   RoundHook(rec, core.TierOf(tiers)),
	}
	sel := core.NewStaticSelector(tiers, core.StaticPolicy{Name: "u", Probs: []float64{0.2, 0.2, 0.2, 0.2, 0.2}}, 2)
	flcore.NewEngine(cfg, clients, test).Run(sel)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 8 {
		t.Fatalf("traced %d rounds, want 8", len(events))
	}
	s := Summarize(events)
	if s.TotalTime <= 0 || len(s.TierCount) == 0 {
		t.Fatalf("summary = %+v", s)
	}
	for tier := range s.TierCount {
		if tier < 0 || tier > 4 {
			t.Fatalf("bad tier recorded: %d", tier)
		}
	}
}

func TestEarlyStopOnTargetAccuracy(t *testing.T) {
	train := dataset.Generate(dataset.MNISTLike, 800, 1)
	test := dataset.Generate(dataset.MNISTLike, 200, 2)
	rng := rand.New(rand.NewSource(3))
	parts := dataset.PartitionIID(train.Len(), 10, rng)
	clients := flcore.BuildClients(train, test, parts, simres.AssignGroups(10, []float64{2, 2, 2, 2, 2}), 30, 4)
	cfg := flcore.Config{
		Rounds: 200, ClientsPerRound: 3, LocalEpochs: 1, BatchSize: 10, Seed: 5,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, train.Dim(), []int{16}, 10, 0)
		},
		Optimizer:      func(round int) nn.Optimizer { return nn.NewSGD(0.05, 0.9) },
		Latency:        simres.DefaultModel,
		EvalEvery:      1,
		TargetAccuracy: 0.6,
	}
	res := flcore.NewEngine(cfg, clients, test).Run(&flcore.RandomSelector{NumClients: 10, ClientsPerRound: 3})
	if len(res.History) >= 200 {
		t.Fatal("early stopping never fired")
	}
	if res.FinalAcc < 0.6 {
		t.Fatalf("stopped at accuracy %v below target", res.FinalAcc)
	}
}
