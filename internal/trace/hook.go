package trace

import (
	"math"

	"repro/internal/flcore"
)

// RoundHook adapts a Recorder to the engine's per-round callback
// (flcore.Config.OnRound). tierOf maps client index to tier (from
// core.TierOf); pass nil for vanilla runs, which records Tier = -1.
func RoundHook(r *Recorder, tierOf map[int]int) func(flcore.RoundRecord) {
	return func(rec flcore.RoundRecord) {
		e := Event{
			Round:    rec.Round,
			Selected: append([]int(nil), rec.Selected...),
			Latency:  rec.Latency,
			SimTime:  rec.SimTime,
			Tier:     -1,
		}
		if !math.IsNaN(rec.Acc) {
			e.Accuracy = rec.Acc
		}
		if !math.IsNaN(rec.Loss) {
			e.Loss = rec.Loss
		}
		if tierOf != nil && len(rec.Selected) > 0 {
			if t, ok := tierOf[rec.Selected[0]]; ok {
				e.Tier = t
			}
		}
		r.Record(e)
	}
}
