// Package trace records federated training runs as structured JSONL event
// streams — one event per round with the selection, latency, and accuracy
// detail needed to debug scheduling behaviour after the fact — plus a
// loader and summary statistics over recorded runs.
//
// The engine emits events through a small callback (flcore.Config.OnRound);
// Recorder adapts that callback to any io.Writer, so traces can go to a
// file, a buffer, or a network sink.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Event is one recorded training round.
type Event struct {
	Round    int     `json:"round"`
	Selected []int   `json:"selected"`
	Latency  float64 `json:"latency"`
	SimTime  float64 `json:"sim_time"`
	Accuracy float64 `json:"accuracy,omitempty"` // 0 when unevaluated (JSON lacks NaN)
	Loss     float64 `json:"loss,omitempty"`
	// Tier is the selected tier index when a tier policy ran (-1 for
	// vanilla selection).
	Tier int `json:"tier"`
}

// Recorder serializes events to a writer as JSONL. Safe for concurrent use.
type Recorder struct {
	mu  sync.Mutex
	w   *bufio.Writer
	n   int
	err error
}

// NewRecorder wraps w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: bufio.NewWriter(w)}
}

// Record appends one event. Errors are sticky and returned by Flush.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		r.err = fmt.Errorf("trace: %w", err)
		return
	}
	data = append(data, '\n')
	if _, err := r.w.Write(data); err != nil {
		r.err = fmt.Errorf("trace: %w", err)
		return
	}
	r.n++
}

// Events returns how many events were recorded.
func (r *Recorder) Events() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Flush drains the buffer and returns the first error encountered.
func (r *Recorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// Load parses a JSONL trace.
func Load(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// Summary aggregates a recorded run.
type Summary struct {
	Rounds         int
	TotalTime      float64
	MeanLatency    float64
	P50, P95, Max  float64
	FinalAccuracy  float64 // last nonzero accuracy
	SelectionCount map[int]int
	TierCount      map[int]int
}

// Summarize computes run statistics from events.
func Summarize(events []Event) Summary {
	s := Summary{SelectionCount: map[int]int{}, TierCount: map[int]int{}}
	if len(events) == 0 {
		return s
	}
	lats := make([]float64, 0, len(events))
	sum := 0.0
	for _, e := range events {
		s.Rounds++
		lats = append(lats, e.Latency)
		sum += e.Latency
		if e.Latency > s.Max {
			s.Max = e.Latency
		}
		for _, c := range e.Selected {
			s.SelectionCount[c]++
		}
		s.TierCount[e.Tier]++
		if e.Accuracy > 0 {
			s.FinalAccuracy = e.Accuracy
		}
	}
	s.TotalTime = events[len(events)-1].SimTime
	s.MeanLatency = sum / float64(len(lats))
	sort.Float64s(lats)
	s.P50 = quantile(lats, 0.5)
	s.P95 = quantile(lats, 0.95)
	return s
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
