// Package compress implements the update-compression subsystem for
// cross-tier commits: pluggable codecs that shrink a client's weight delta
// before it travels to the aggregator — over the simulated latency model
// (simres charges for actual encoded bytes) and over the real wire
// (flnet's MsgCompressedUpdate envelope) alike.
//
// Two lossy codecs are provided alongside the dense baseline:
//
//   - Int8: uniform 8-bit quantization with one float32 scale per chunk,
//     an ~8x reduction that touches every coordinate.
//   - TopK: top-k sparsification — only the k largest-magnitude
//     coordinates travel as (index, value) pairs, a 10–100x reduction at
//     k = 10%–1% of the parameters.
//
// Both are deterministic: encoding the same vector always yields the same
// bytes (ties in TopK break toward the lower index), so compressed runs
// stay bit-reproducible like everything else in this codebase. Lossy
// compression composes with training through error feedback (EncodeDelta):
// the client keeps the encoding error as a residual and adds it to the next
// round's delta, so dropped or rounded mass is delayed, never lost — the
// standard trick that keeps top-k at 1–10% density near dense accuracy.
//
// The zero codec ID is the dense baseline (nn.EncodeWeights format), which
// is also what a peer that predates compression implicitly speaks — wire
// negotiation in flnet is therefore backward compatible by construction.
package compress

import (
	"fmt"
	"strconv"
	"strings"
)

// Wire codec IDs. These are protocol constants (flnet's Register and
// CompressedUpdate messages carry them); never renumber.
const (
	IDNone byte = 0
	IDInt8 byte = 1
	IDTopK byte = 2
)

// Codec turns a weight (delta) vector into a compact wire payload and back.
// Implementations must be deterministic — identical input vectors must
// produce identical payloads — and safe for concurrent use.
type Codec interface {
	// Name is the human-readable codec spec, e.g. "int8" or "topk@0.10";
	// Parse(Name()) reconstructs the codec.
	Name() string
	// ID is the wire discriminator (one of the ID* constants).
	ID() byte
	// Encode serializes the vector into a self-describing payload.
	Encode(w []float64) []byte
	// Decode parses a payload produced by Encode. n is the expected vector
	// length; a payload that disagrees (or is truncated, corrupt, or
	// carries non-finite metadata) is rejected with an error, never a
	// panic.
	Decode(payload []byte, n int) ([]float64, error)
	// EncodedBytes reports the payload size for an n-vector without
	// encoding one — the quantity the simulated latency model charges for.
	EncodedBytes(n int) int
	// Lossless reports whether Decode(Encode(w)) reproduces w exactly.
	Lossless() bool
}

// Known reports whether id names a codec this build can decode.
func Known(id byte) bool {
	return id == IDNone || id == IDInt8 || id == IDTopK
}

// DecodePayload decodes a payload by wire ID — the receiver side of codec
// negotiation, where only the ID travels with the bytes. Every payload is
// self-describing, so no codec parameters are needed to decode.
func DecodePayload(id byte, payload []byte, n int) ([]float64, error) {
	switch id {
	case IDNone:
		return None{}.Decode(payload, n)
	case IDInt8:
		return Int8{}.Decode(payload, n)
	case IDTopK:
		return TopK{Fraction: 1}.Decode(payload, n)
	default:
		return nil, fmt.Errorf("compress: unknown codec id %d", id)
	}
}

// Parse builds a codec from its spec string: "none", "int8",
// "int8@<chunk>", "topk@<fraction>" (e.g. "topk@0.1"), or "topk" (10%).
// It is the inverse of Codec.Name and the -codec flag syntax of tifl-node.
func Parse(spec string) (Codec, error) {
	name, arg, hasArg := strings.Cut(spec, "@")
	switch name {
	case "", "none":
		return None{}, nil
	case "int8":
		if !hasArg {
			return NewInt8(0), nil
		}
		chunk, err := strconv.Atoi(arg)
		if err != nil || chunk <= 0 {
			return nil, fmt.Errorf("compress: bad int8 chunk %q", arg)
		}
		return NewInt8(chunk), nil
	case "topk":
		if !hasArg {
			return NewTopK(0.10), nil
		}
		frac, err := strconv.ParseFloat(arg, 64)
		if err != nil || frac <= 0 || frac > 1 {
			return nil, fmt.Errorf("compress: bad topk fraction %q", arg)
		}
		return NewTopK(frac), nil
	default:
		return nil, fmt.Errorf("compress: unknown codec %q", spec)
	}
}

// DenseBytes is the dense wire size of an n-parameter weight vector
// (nn.EncodeWeights: 8-byte header + 8 bytes per float64) — the baseline
// every codec's compression ratio is measured against.
func DenseBytes(n int) int { return 8 + 8*n }

// EncodeDelta applies error-feedback compression to one client update: the
// carried residual (encoding error accumulated over previous rounds; nil on
// the first) is added into delta in place, the sum is encoded, and the new
// residual is what the encoding dropped. It returns the wire payload, the
// reconstruction rec the receiver will decode (delta ≈ rec + residual), and
// the updated residual for the client to carry into its next round.
func EncodeDelta(c Codec, delta, residual []float64) (payload []byte, rec, newResidual []float64) {
	if residual != nil {
		if len(residual) != len(delta) {
			panic(fmt.Sprintf("compress: residual length %d != delta length %d", len(residual), len(delta)))
		}
		for i, r := range residual {
			delta[i] += r
		}
	}
	payload = c.Encode(delta)
	rec, err := c.Decode(payload, len(delta))
	if err != nil {
		panic(fmt.Sprintf("compress: %s cannot decode its own encoding: %v", c.Name(), err))
	}
	newResidual = residual
	if newResidual == nil {
		newResidual = make([]float64, len(delta))
	}
	for i := range newResidual {
		newResidual[i] = delta[i] - rec[i]
	}
	return payload, rec, newResidual
}
