package compress

import (
	"math"
	"testing"
)

// Codec fuzzing mirrors internal/nn/fuzz_test.go: Decode must never panic
// on arbitrary bytes (truncations, corruptions, hostile headers), and any
// payload it accepts must describe a vector whose re-encoding decodes to
// the same values — decode∘encode is idempotent on the codec's image.

func fuzzSeeds(f *testing.F, c Codec) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(c.Encode(nil))
	f.Add(c.Encode([]float64{1, -2, math.Pi}))
	f.Add(c.Encode(testVector(200, 1)))
	long := c.Encode(testVector(2000, 2))
	f.Add(long)
	f.Add(long[:len(long)-3]) // truncated
	corrupt := append([]byte(nil), long...)
	corrupt[9] ^= 0x40 // damaged header
	f.Add(corrupt)
}

// fuzzRoundTrip is the shared property check for one accepted payload.
// re is the codec used for re-encoding: usually c itself, but top-k
// payloads can carry more nonzeros than c would keep (a peer with a larger
// fraction), so their re-encode uses fraction 1.
func fuzzRoundTrip(t *testing.T, c, reCodec Codec, data []byte, n int) {
	w, err := c.Decode(data, n)
	if err != nil {
		return // rejected input: the only requirement is "no panic"
	}
	if len(w) != n {
		t.Fatalf("accepted payload decoded to %d weights, want %d", len(w), n)
	}
	re := reCodec.Encode(w)
	back, err := reCodec.Decode(re, n)
	if err != nil {
		t.Fatalf("re-encoding of accepted payload rejected: %v", err)
	}
	for i := range w {
		if math.Abs(back[i]-w[i]) > quantizationSlack(c, w, i) {
			t.Fatalf("round trip diverged at %d: %v -> %v", i, w[i], back[i])
		}
	}
}

// quantizationSlack bounds how far one re-encode may move a coordinate:
// zero for lossless and top-k (already on the float32 grid with ≤k
// nonzeros), one quantization step for int8 (the decoded q·s values
// re-quantize against a slightly different scale).
func quantizationSlack(c Codec, w []float64, i int) float64 {
	if c.ID() != IDInt8 {
		return 0
	}
	maxAbs := 0.0
	for _, v := range w {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	return maxAbs/127 + maxAbs*1e-6
}

func FuzzNoneDecode(f *testing.F) {
	c := None{}
	fuzzSeeds(f, c)
	f.Fuzz(func(t *testing.T, data []byte) {
		n := 0
		if len(data) >= 8 {
			n = (len(data) - 8) / 8
		}
		fuzzRoundTrip(t, c, c, data, n)
	})
}

func FuzzInt8Decode(f *testing.F) {
	c := NewInt8(0)
	fuzzSeeds(f, c)
	f.Add(NewInt8(7).Encode(testVector(100, 3))) // odd chunk from a differently-configured peer
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, n := range []int{0, 1, 100, 2000} {
			fuzzRoundTrip(t, c, c, data, n)
		}
	})
}

func FuzzTopKDecode(f *testing.F) {
	c := NewTopK(0.1)
	fuzzSeeds(f, c)
	f.Add(NewTopK(1).Encode(testVector(100, 4)))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, n := range []int{0, 1, 100, 2000} {
			fuzzRoundTrip(t, c, TopK{Fraction: 1}, data, n)
		}
	})
}
