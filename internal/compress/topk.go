package compress

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// topkMagic guards against decoding garbage as a sparsified vector.
const topkMagic uint32 = 0x7F1F_C822

// TopK is top-k sparsification: only the k = ⌈Fraction·n⌉ largest-magnitude
// coordinates travel, as (uint32 index, float32 value) pairs sorted by
// index; every other coordinate reconstructs to zero. At Fraction 0.1 the
// payload is ~0.8n bytes against the dense 8n (10x); at 0.01, 100x. The
// dropped mass is exactly what error feedback (EncodeDelta) carries into
// the next round. Ties in magnitude break toward the lower index, so
// encoding is deterministic.
type TopK struct {
	// Fraction is the kept fraction of coordinates in (0, 1]; at least one
	// coordinate is always kept for a non-empty vector.
	Fraction float64
}

// NewTopK returns a TopK codec keeping the given fraction of coordinates.
// It panics on a fraction outside (0, 1] — a misconfigured codec would
// silently zero every update.
func NewTopK(fraction float64) TopK {
	if !(fraction > 0 && fraction <= 1) {
		panic(fmt.Sprintf("compress: top-k fraction %v outside (0, 1]", fraction))
	}
	return TopK{Fraction: fraction}
}

// K returns the kept coordinate count for an n-vector.
func (c TopK) K(n int) int {
	if n == 0 {
		return 0
	}
	k := int(math.Ceil(c.Fraction * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Name implements Codec.
func (c TopK) Name() string { return fmt.Sprintf("topk@%g", c.Fraction) }

// ID implements Codec.
func (TopK) ID() byte { return IDTopK }

// Lossless implements Codec.
func (TopK) Lossless() bool { return false }

// EncodedBytes implements Codec: 16-byte header plus 8 bytes per kept
// coordinate.
func (c TopK) EncodedBytes(n int) int { return 16 + 8*c.K(n) }

// absRank orders coordinates by |v| descending with NaN sunk below every
// finite magnitude; ties break toward the lower index.
func absRank(w []float64, i, j int) bool {
	a, b := math.Abs(w[i]), math.Abs(w[j])
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an != bn:
		return bn // finite beats NaN
	case a != b:
		return a > b
	default:
		return i < j
	}
}

// Encode implements Codec. Layout (little-endian): magic u32, count u32,
// k u32, reserved u32, then k pairs of (index u32, value float32) in
// ascending index order.
func (c TopK) Encode(w []float64) []byte {
	k := c.K(len(w))
	idx := make([]int, len(w))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return absRank(w, idx[a], idx[b]) })
	kept := idx[:k]
	sort.Ints(kept)
	buf := make([]byte, 0, c.EncodedBytes(len(w)))
	buf = binary.LittleEndian.AppendUint32(buf, topkMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(w)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(k))
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	for _, i := range kept {
		// NaN (only selectable when k exceeds the finite coordinate
		// count) stores as 0 and out-of-float32-range values clamp, so
		// the payload always passes its own Decode validation.
		v := w[i]
		switch {
		case math.IsNaN(v):
			v = 0
		case v > math.MaxFloat32:
			v = math.MaxFloat32
		case v < -math.MaxFloat32:
			v = -math.MaxFloat32
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(i))
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(v)))
	}
	return buf
}

// Decode implements Codec. Indices must be strictly increasing and in
// range, and values finite — anything else is a corrupt payload.
func (c TopK) Decode(payload []byte, n int) ([]float64, error) {
	if len(payload) < 16 {
		return nil, fmt.Errorf("compress: top-k payload too short (%d bytes)", len(payload))
	}
	if binary.LittleEndian.Uint32(payload[0:4]) != topkMagic {
		return nil, fmt.Errorf("compress: bad top-k payload magic")
	}
	count := int(binary.LittleEndian.Uint32(payload[4:8]))
	k := int(binary.LittleEndian.Uint32(payload[8:12]))
	if count != n {
		return nil, fmt.Errorf("compress: top-k payload carries a %d-vector, want %d", count, n)
	}
	if k < 0 || k > n {
		return nil, fmt.Errorf("compress: top-k payload keeps %d of %d coordinates", k, n)
	}
	if want := 16 + 8*k; len(payload) != want {
		return nil, fmt.Errorf("compress: top-k payload length %d, want %d for k=%d", len(payload), want, k)
	}
	out := make([]float64, n)
	prev := -1
	off := 16
	for p := 0; p < k; p++ {
		i := int(binary.LittleEndian.Uint32(payload[off:]))
		v := math.Float32frombits(binary.LittleEndian.Uint32(payload[off+4:]))
		off += 8
		if i <= prev || i >= n {
			return nil, fmt.Errorf("compress: top-k payload index %d out of order or range", i)
		}
		if v64 := float64(v); math.IsNaN(v64) || math.IsInf(v64, 0) {
			return nil, fmt.Errorf("compress: top-k payload value %v at %d", v, i)
		}
		out[i] = float64(v)
		prev = i
	}
	return out, nil
}
