package compress

import (
	"encoding/binary"
	"fmt"
	"math"
)

// int8Magic guards against decoding garbage as a quantized vector.
const int8Magic uint32 = 0x7F1F_C811

// DefaultInt8Chunk is the default quantization chunk: small enough that one
// outlier coordinate cannot flatten the resolution of the whole vector,
// large enough that the per-chunk float32 scale is amortized to ~0.4% of
// the payload.
const DefaultInt8Chunk = 1024

// Int8 is uniform 8-bit quantization with a per-chunk scale: each chunk of
// Chunk coordinates stores one float32 scale s = max|v|/127 and one int8
// q = round(v/s) per coordinate, reconstructing v ≈ q·s. The payload is
// ~n bytes against the dense 8n — an ~8x reduction with bounded per-chunk
// error, which error feedback (EncodeDelta) carries forward.
type Int8 struct {
	// Chunk is the quantization chunk length (0 = DefaultInt8Chunk).
	Chunk int
}

// NewInt8 returns an Int8 codec with the given chunk (0 = default).
func NewInt8(chunk int) Int8 { return Int8{Chunk: chunk} }

func (c Int8) chunk() int {
	if c.Chunk <= 0 {
		return DefaultInt8Chunk
	}
	return c.Chunk
}

// Name implements Codec.
func (c Int8) Name() string {
	if c.Chunk > 0 && c.Chunk != DefaultInt8Chunk {
		return fmt.Sprintf("int8@%d", c.Chunk)
	}
	return "int8"
}

// ID implements Codec.
func (Int8) ID() byte { return IDInt8 }

// Lossless implements Codec.
func (Int8) Lossless() bool { return false }

// EncodedBytes implements Codec: 12-byte header, float32 scale per chunk,
// one byte per coordinate.
func (c Int8) EncodedBytes(n int) int {
	chunk := c.chunk()
	chunks := (n + chunk - 1) / chunk
	return 12 + 4*chunks + n
}

// Encode implements Codec. Layout (little-endian): magic u32, count u32,
// chunk u32, then per chunk a float32 scale followed by that chunk's int8
// quantized coordinates.
func (c Int8) Encode(w []float64) []byte {
	chunk := c.chunk()
	buf := make([]byte, 0, c.EncodedBytes(len(w)))
	buf = binary.LittleEndian.AppendUint32(buf, int8Magic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(w)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(chunk))
	for start := 0; start < len(w); start += chunk {
		end := start + chunk
		if end > len(w) {
			end = len(w)
		}
		// Non-finite coordinates (diverged training) are excluded from the
		// scale and quantized deterministically below — NaN to 0, ±Inf to
		// the chunk extremes — so encoding never depends on the platform's
		// float→int conversion of non-finite values.
		maxAbs := 0.0
		for _, v := range w[start:end] {
			if a := math.Abs(v); a > maxAbs && !math.IsInf(a, 1) {
				maxAbs = a
			}
		}
		// Clamp so reconstructed values (up to 127·scale) stay within
		// float32 range — Decode rejects larger scales as corrupt.
		if maxAbs > math.MaxFloat32 {
			maxAbs = math.MaxFloat32
		}
		scale := float32(maxAbs / 127)
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(scale))
		for _, v := range w[start:end] {
			q := int8(0)
			if scale > 0 {
				switch r := math.RoundToEven(v / float64(scale)); {
				case r > 127: // includes +Inf
					q = 127
				case r < -127: // includes -Inf
					q = -127
				case math.IsNaN(r):
					q = 0
				default:
					q = int8(r)
				}
			}
			buf = append(buf, byte(q))
		}
	}
	return buf
}

// Decode implements Codec.
func (c Int8) Decode(payload []byte, n int) ([]float64, error) {
	if len(payload) < 12 {
		return nil, fmt.Errorf("compress: int8 payload too short (%d bytes)", len(payload))
	}
	if binary.LittleEndian.Uint32(payload[0:4]) != int8Magic {
		return nil, fmt.Errorf("compress: bad int8 payload magic")
	}
	count := int(binary.LittleEndian.Uint32(payload[4:8]))
	chunk := int(binary.LittleEndian.Uint32(payload[8:12]))
	if count != n {
		return nil, fmt.Errorf("compress: int8 payload carries %d weights, want %d", count, n)
	}
	if chunk <= 0 {
		return nil, fmt.Errorf("compress: int8 payload chunk %d", chunk)
	}
	chunks := (n + chunk - 1) / chunk
	if want := 12 + 4*chunks + n; len(payload) != want {
		return nil, fmt.Errorf("compress: int8 payload length %d, want %d for %d weights", len(payload), want, n)
	}
	out := make([]float64, n)
	off := 12
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		scale := math.Float32frombits(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		// Reject non-finite scales and scales whose reconstructed values
		// (up to 127·scale) leave the float32 range — vectors no encoder
		// could have produced. The bound carries a one-ulp margin because
		// Encode's clamped float64 scale may round up in float32.
		if s := float64(scale); math.IsNaN(s) || s < 0 || s > math.MaxFloat32/127*(1+1e-6) {
			return nil, fmt.Errorf("compress: int8 payload scale %v", scale)
		}
		for i := start; i < end; i++ {
			out[i] = float64(int8(payload[off])) * float64(scale)
			off++
		}
	}
	return out, nil
}
