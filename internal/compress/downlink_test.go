package compress

import (
	"math"
	"math/rand"
	"testing"
)

func TestParseDownlink(t *testing.T) {
	for _, spec := range []string{"", "dense", "none"} {
		d, err := ParseDownlink(spec)
		if err != nil || d != nil {
			t.Fatalf("ParseDownlink(%q) = %v, %v; want nil, nil", spec, d, err)
		}
	}
	d, err := ParseDownlink("delta")
	if err != nil || d == nil || d.Codec != nil {
		t.Fatalf("ParseDownlink(delta) = %v, %v; want lossless", d, err)
	}
	if !d.Lossless() || d.Name() != "delta" {
		t.Fatalf("lossless delta: Lossless=%v Name=%q", d.Lossless(), d.Name())
	}
	d, err = ParseDownlink("delta+int8")
	if err != nil || d == nil || d.Codec == nil || d.Codec.ID() != IDInt8 {
		t.Fatalf("ParseDownlink(delta+int8) = %v, %v", d, err)
	}
	if d.Lossless() {
		t.Fatal("delta+int8 must not report lossless")
	}
	d, err = ParseDownlink("delta+topk@0.25")
	if err != nil || d == nil || d.Codec == nil || d.Codec.ID() != IDTopK {
		t.Fatalf("ParseDownlink(delta+topk@0.25) = %v, %v", d, err)
	}
	// Round trip through Name.
	for _, spec := range []string{"delta", "delta+int8", "delta+topk@0.1"} {
		d, err := ParseDownlink(spec)
		if err != nil {
			t.Fatalf("ParseDownlink(%q): %v", spec, err)
		}
		if got := d.Name(); got != spec {
			t.Fatalf("Name round trip: %q -> %q", spec, got)
		}
		if _, err := ParseDownlink(d.Name()); err != nil {
			t.Fatalf("re-parse %q: %v", d.Name(), err)
		}
	}
	if (*Downlink)(nil).Name() != "dense" {
		t.Fatalf("nil Downlink Name = %q, want dense", (*Downlink)(nil).Name())
	}
	for _, bad := range []string{"delta+", "delta+none", "delta+bogus", "xor", "delta+topk@7"} {
		if _, err := ParseDownlink(bad); err == nil {
			t.Fatalf("ParseDownlink(%q) accepted", bad)
		}
	}
}

// randWalk returns length-n vectors base and cur where cur is base plus a
// small per-coordinate step — the shape of consecutive model versions.
func randWalk(n int, rng *rand.Rand) (base, cur []float64) {
	base = make([]float64, n)
	cur = make([]float64, n)
	for i := range base {
		base[i] = rng.NormFloat64()
		cur[i] = base[i] + 0.01*rng.NormFloat64()
	}
	return base, cur
}

func TestXORDeltaBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base, cur := randWalk(1000, rng)
	// Throw in the awkward bit patterns arithmetic deltas would mangle.
	cur[0] = math.Copysign(0, -1)
	cur[1] = math.SmallestNonzeroFloat64
	cur[2] = math.MaxFloat64
	cur[3] = base[3] // unchanged coordinate -> zero XOR word
	payload := encodeXORDelta(cur, base)
	got, err := applyXORDelta(payload, base)
	if err != nil {
		t.Fatalf("applyXORDelta: %v", err)
	}
	for i := range cur {
		if math.Float64bits(got[i]) != math.Float64bits(cur[i]) {
			t.Fatalf("coordinate %d: got %x want %x", i, math.Float64bits(got[i]), math.Float64bits(cur[i]))
		}
	}
	if len(payload) >= DenseBytes(len(cur)) {
		t.Fatalf("xor delta of a small step did not compress: %d >= %d", len(payload), DenseBytes(len(cur)))
	}
}

func TestXORDeltaRejectsBadPayloads(t *testing.T) {
	base := []float64{1, 2, 3}
	payload := encodeXORDelta([]float64{1.5, 2, 3}, base)
	if _, err := applyXORDelta(payload[:4], base); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := applyXORDelta(payload, base[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := applyXORDelta(payload[:len(payload)-3], base); err == nil {
		t.Fatal("truncated stream accepted")
	}
	corrupt := append([]byte(nil), payload...)
	corrupt[xorDeltaHeader] ^= 0xFF
	if _, err := applyXORDelta(corrupt, base); err == nil {
		t.Log("corrupt stream happened to inflate; acceptable (flate has no checksum)")
	}
	// A payload built for a longer vector must not apply to a shorter base.
	long := encodeXORDelta(make([]float64, 5), make([]float64, 5))
	if _, err := applyXORDelta(long, base); err == nil {
		t.Fatal("wrong-length payload accepted")
	}
	if _, err := ApplyDelta(77, []byte{1, 2, 3}, base); err == nil {
		t.Fatal("unknown delta codec id accepted")
	}
}

func TestChainLosslessRoundTrip(t *testing.T) {
	d, err := ParseDownlink("delta")
	if err != nil {
		t.Fatal(err)
	}
	ch := d.NewChain()
	if ch.HasBase() {
		t.Fatal("fresh chain claims a base")
	}
	rng := rand.New(rand.NewSource(4))
	held := make([]float64, 512) // the receiver's copy
	w := make([]float64, 512)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	ch.Adopt(w)
	copy(held, w) // dense first contact
	for step := 0; step < 5; step++ {
		for i := range w {
			w[i] += 0.005 * rng.NormFloat64()
		}
		payload, id := ch.Encode(w)
		if id != IDDeltaXOR {
			t.Fatalf("lossless chain emitted codec id %d", id)
		}
		got, err := ApplyDelta(id, payload, held)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for i := range w {
			if math.Float64bits(got[i]) != math.Float64bits(w[i]) {
				t.Fatalf("step %d coord %d: reconstruction not bit-exact", step, i)
			}
		}
		held = got
		// The chain's base must equal the broadcast vector bit-for-bit.
		for i, b := range ch.Base() {
			if math.Float64bits(b) != math.Float64bits(w[i]) {
				t.Fatalf("step %d: chain base diverged at %d", step, i)
			}
		}
	}
	ch.Reset()
	if ch.HasBase() {
		t.Fatal("Reset left a base behind")
	}
}

func TestChainLossyReceiverAgreement(t *testing.T) {
	for _, spec := range []string{"delta+int8", "delta+topk@0.25"} {
		d, err := ParseDownlink(spec)
		if err != nil {
			t.Fatal(err)
		}
		ch := d.NewChain()
		rng := rand.New(rand.NewSource(11))
		w := make([]float64, 300)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		ch.Adopt(w)
		held := append([]float64(nil), w...)
		for step := 0; step < 4; step++ {
			for i := range w {
				w[i] += 0.01 * rng.NormFloat64()
			}
			payload, id := ch.Encode(w)
			if id != d.Codec.ID() {
				t.Fatalf("%s: emitted id %d want %d", spec, id, d.Codec.ID())
			}
			got, err := ApplyDelta(id, payload, held)
			if err != nil {
				t.Fatalf("%s step %d: %v", spec, step, err)
			}
			// Server chain base and receiver reconstruction must agree
			// exactly: that is the invariant that makes the base usable
			// as the uplink reconstruction point.
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(ch.Base()[i]) {
					t.Fatalf("%s step %d coord %d: receiver %v != chain base %v",
						spec, step, i, got[i], ch.Base()[i])
				}
			}
			held = got
		}
	}
}

// TestChainLossyErrorFeedback checks that the per-tier residual carries
// dropped mass forward: broadcasting the same target twice through a
// top-k chain gets the base closer the second time than a residual-free
// encoder would.
func TestChainLossyErrorFeedback(t *testing.T) {
	d, err := ParseDownlink("delta+topk@0.10")
	if err != nil {
		t.Fatal(err)
	}
	ch := d.NewChain()
	rng := rand.New(rand.NewSource(3))
	start := make([]float64, 400)
	target := make([]float64, 400)
	for i := range start {
		start[i] = rng.NormFloat64()
		target[i] = start[i] + rng.NormFloat64()
	}
	ch.Adopt(start)
	errAt := func() float64 {
		var s float64
		for i, b := range ch.Base() {
			dv := target[i] - b
			s += dv * dv
		}
		return s
	}
	ch.Encode(target)
	first := errAt()
	ch.Encode(target)
	second := errAt()
	if second >= first {
		t.Fatalf("error feedback did not shrink reconstruction error: %v -> %v", first, second)
	}
}

func TestChainEncodePanicsWithoutBase(t *testing.T) {
	d := &Downlink{}
	ch := d.NewChain()
	defer func() {
		if recover() == nil {
			t.Fatal("Encode without base did not panic")
		}
	}()
	ch.Encode([]float64{1})
}
