package compress

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strings"
)

// IDDeltaXOR is the wire discriminator for the lossless downlink delta:
// the XOR of the float64 bit patterns of the new and base vectors,
// DEFLATE-compressed. It deliberately shares the value 0 with IDNone —
// the two never travel in the same field (IDNone rides uplink codec
// negotiation, IDDeltaXOR rides the DeltaCodec byte next to a delta
// payload), and 0 is what a zero-valued gob field decodes to, which makes
// the lossless delta the default interpretation of any delta payload.
const IDDeltaXOR byte = 0

// Downlink describes how the aggregator compresses its broadcast
// (server -> worker) traffic: always as a delta against the receiver's
// last-acked model version, optionally through a lossy codec with
// server-side error feedback.
//
// A nil *Downlink means dense broadcasts (the pre-delta wire format).
// A Downlink with a nil Codec is the lossless mode: the delta is the XOR
// of the float64 bit patterns, DEFLATE-compressed — reconstruction is
// bit-exact by construction (base XOR (cur XOR base) == cur, no floating
// point arithmetic involved), which is what lets the lockstep parity
// tests compare delta runs byte-for-byte against dense runs. A non-nil
// Codec quantizes or sparsifies the arithmetic delta cur − base; the
// encoding error stays on the server as a per-tier error-feedback
// residual (see Chain), so lossy broadcasts delay mass rather than drop
// it — the same argument EncodeDelta makes for the uplink.
type Downlink struct {
	// Codec is the lossy delta codec, or nil for the lossless XOR delta.
	Codec Codec
}

// Name returns the downlink spec, e.g. "delta", "delta+int8", or
// "delta+topk@0.10"; ParseDownlink(Name()) reconstructs the value.
func (d *Downlink) Name() string {
	if d == nil {
		return "dense"
	}
	if d.Codec == nil {
		return "delta"
	}
	return "delta+" + d.Codec.Name()
}

// Lossless reports whether every receiver reconstructs the broadcast
// vector bit-exactly.
func (d *Downlink) Lossless() bool { return d == nil || d.Codec == nil }

// ParseDownlink builds a downlink mode from its spec string: "dense" (or
// "none", or empty) for plain dense broadcasts, "delta" for the lossless
// XOR delta, or "delta+<codec>" (e.g. "delta+int8", "delta+topk@0.1")
// for a lossy delta. It is the -downlink-codec flag syntax of tifl-node.
func ParseDownlink(spec string) (*Downlink, error) {
	switch spec {
	case "", "dense", "none":
		return nil, nil
	case "delta":
		return &Downlink{}, nil
	}
	rest, ok := strings.CutPrefix(spec, "delta+")
	if !ok {
		return nil, fmt.Errorf("compress: unknown downlink spec %q", spec)
	}
	c, err := Parse(rest)
	if err != nil {
		return nil, fmt.Errorf("compress: bad downlink spec %q: %v", spec, err)
	}
	if c.ID() == IDNone {
		// "delta+none" would put IDNone in the DeltaCodec byte, where 0
		// already means the XOR delta; spell it "delta" instead.
		return nil, fmt.Errorf("compress: downlink spec %q: use \"delta\" for the lossless delta", spec)
	}
	return &Downlink{Codec: c}, nil
}

// Chain is one tier's server-side downlink state: the reconstruction base
// every up-to-date receiver in the tier currently holds, plus the
// error-feedback residual for lossy modes. The aggregator advances the
// chain exactly once per tier round — Encode is O(1) per round regardless
// of cohort size, the same shared-blob trick the fast wire encoding uses —
// and sends the resulting payload to every receiver whose last ack matches
// the chain's base; everyone else gets the post-round Base() dense.
//
// Chain state is a pure function of the sequence of broadcast vectors, so
// the simulated and socket runtimes, fed the same weights, produce
// byte-identical payloads and charge identical downlink bytes.
type Chain struct {
	d        *Downlink
	base     []float64
	residual []float64
}

// NewChain returns an empty chain for this downlink mode.
func (d *Downlink) NewChain() *Chain {
	if d == nil {
		return nil
	}
	return &Chain{d: d}
}

// HasBase reports whether the chain has adopted a base yet; until it has,
// the broadcast must go dense (first contact, or just after Reset).
func (c *Chain) HasBase() bool { return c != nil && c.base != nil }

// Base returns the chain's current reconstruction base — the vector every
// up-to-date receiver holds after the last Adopt or Encode. In lossless
// mode it is bit-identical to the last broadcast vector; in lossy mode it
// is the receivers' reconstruction, which is also what local training must
// start from so uplink deltas are computed against the right point. The
// returned slice is owned by the chain; callers must not mutate it.
func (c *Chain) Base() []float64 { return c.base }

// Adopt seeds the chain with a dense broadcast: cur is copied in as the
// base every receiver of that dense snapshot now holds.
func (c *Chain) Adopt(cur []float64) {
	c.base = append(c.base[:0], cur...)
}

// Encode advances the chain from its base to cur and returns the delta
// payload plus its wire codec ID. In lossless mode the payload is the
// flate-compressed XOR of bit patterns and the new base is cur itself; in
// lossy mode the payload encodes cur − base (plus the carried residual),
// and the new base is base + decode(payload) — exactly what every
// receiver reconstructs. Callers must have checked HasBase.
func (c *Chain) Encode(cur []float64) (payload []byte, id byte) {
	if !c.HasBase() {
		panic("compress: Chain.Encode without a base")
	}
	if len(cur) != len(c.base) {
		panic(fmt.Sprintf("compress: Chain.Encode length %d != base length %d", len(cur), len(c.base)))
	}
	if c.d.Codec == nil {
		payload = encodeXORDelta(cur, c.base)
		c.base = append(c.base[:0], cur...)
		return payload, IDDeltaXOR
	}
	delta := make([]float64, len(cur))
	for i := range delta {
		delta[i] = cur[i] - c.base[i]
	}
	var rec []float64
	payload, rec, c.residual = EncodeDelta(c.d.Codec, delta, c.residual)
	for i := range c.base {
		c.base[i] += rec[i]
	}
	return payload, c.d.Codec.ID()
}

// Reset drops the base and residual; the next broadcast goes dense. Used
// on checkpoint resume, where no receiver's held version can be trusted.
func (c *Chain) Reset() {
	if c == nil {
		return
	}
	c.base = nil
	c.residual = nil
}

// ApplyDelta is the receiver side of Chain.Encode: it reconstructs the
// broadcast vector from a delta payload and the locally held base.
// IDDeltaXOR payloads XOR bit patterns (bit-exact); lossy payloads decode
// through the shared codec registry and add elementwise. base is not
// mutated; a fresh slice is returned.
func ApplyDelta(id byte, payload []byte, base []float64) ([]float64, error) {
	if id == IDDeltaXOR {
		return applyXORDelta(payload, base)
	}
	rec, err := DecodePayload(id, payload, len(base))
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(base))
	for i := range out {
		out[i] = base[i] + rec[i]
	}
	return out, nil
}

// xorDeltaHeader is the fixed prefix of an XOR delta payload: an 8-byte
// little-endian vector length, so truncated or misdirected payloads are
// rejected before inflating.
const xorDeltaHeader = 8

// encodeXORDelta serializes cur relative to base as the XOR of their
// float64 bit patterns, DEFLATE-compressed. Nearby model versions share
// sign, exponent, and high mantissa bits, so the XOR stream is mostly
// zero bytes and deflates well; an unchanged coordinate contributes eight
// zero bytes. The format is an 8-byte little-endian count followed by the
// flate stream of the 8n XOR bytes.
func encodeXORDelta(cur, base []float64) []byte {
	raw := make([]byte, 8*len(cur))
	for i := range cur {
		x := math.Float64bits(cur[i]) ^ math.Float64bits(base[i])
		binary.LittleEndian.PutUint64(raw[8*i:], x)
	}
	var buf bytes.Buffer
	buf.Grow(xorDeltaHeader + len(raw)/4)
	var hdr [xorDeltaHeader]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(cur)))
	buf.Write(hdr[:])
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		panic(fmt.Sprintf("compress: flate.NewWriter: %v", err)) // impossible: level is valid
	}
	if _, err := zw.Write(raw); err != nil {
		panic(fmt.Sprintf("compress: flate write: %v", err)) // bytes.Buffer cannot fail
	}
	if err := zw.Close(); err != nil {
		panic(fmt.Sprintf("compress: flate close: %v", err))
	}
	return buf.Bytes()
}

// applyXORDelta reconstructs the broadcast vector from an XOR delta
// payload and the held base.
func applyXORDelta(payload []byte, base []float64) ([]float64, error) {
	if len(payload) < xorDeltaHeader {
		return nil, fmt.Errorf("compress: xor delta payload %d bytes, want >= %d", len(payload), xorDeltaHeader)
	}
	n := binary.LittleEndian.Uint64(payload)
	if n != uint64(len(base)) {
		return nil, fmt.Errorf("compress: xor delta for %d params, base has %d", n, len(base))
	}
	raw := make([]byte, 8*len(base))
	zr := flate.NewReader(bytes.NewReader(payload[xorDeltaHeader:]))
	if _, err := io.ReadFull(zr, raw); err != nil {
		return nil, fmt.Errorf("compress: xor delta inflate: %v", err)
	}
	// The stream must hold exactly 8n bytes; trailing garbage means the
	// payload was built against a different-length vector.
	var extra [1]byte
	if m, _ := zr.Read(extra[:]); m != 0 {
		return nil, fmt.Errorf("compress: xor delta has trailing data")
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("compress: xor delta close: %v", err)
	}
	out := make([]float64, len(base))
	for i := range out {
		x := binary.LittleEndian.Uint64(raw[8*i:])
		out[i] = math.Float64frombits(math.Float64bits(base[i]) ^ x)
	}
	return out, nil
}
