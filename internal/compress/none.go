package compress

import (
	"fmt"

	"repro/internal/nn"
)

// None is the dense baseline codec: the payload is exactly the
// nn.EncodeWeights wire format already used between flnet peers, so a
// compression-aware node speaking codec 0 is byte-compatible with a node
// that predates compression entirely.
type None struct{}

// Name implements Codec.
func (None) Name() string { return "none" }

// ID implements Codec.
func (None) ID() byte { return IDNone }

// Lossless implements Codec.
func (None) Lossless() bool { return true }

// EncodedBytes implements Codec.
func (None) EncodedBytes(n int) int { return DenseBytes(n) }

// Encode implements Codec.
func (None) Encode(w []float64) []byte { return nn.EncodeWeights(w) }

// Decode implements Codec.
func (None) Decode(payload []byte, n int) ([]float64, error) {
	w, err := nn.DecodeWeights(payload)
	if err != nil {
		return nil, err
	}
	if len(w) != n {
		return nil, fmt.Errorf("compress: dense payload carries %d weights, want %d", len(w), n)
	}
	return w, nil
}
