package compress

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// testVector is a reproducible weight-delta-shaped vector: mostly small
// values with a few large-magnitude coordinates, like a real update.
func testVector(n int, seed int64) []float64 {
	if n == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.01
	}
	for i := 0; i < n/20+1; i++ {
		w[rng.Intn(n)] = rng.NormFloat64()
	}
	return w
}

func allCodecs() []Codec {
	return []Codec{None{}, NewInt8(0), NewInt8(64), NewTopK(0.01), NewTopK(0.1), NewTopK(1)}
}

func TestEncodedBytesMatchesEncode(t *testing.T) {
	for _, c := range allCodecs() {
		for _, n := range []int{0, 1, 5, 63, 64, 65, 1023, 1024, 1025, 5000} {
			w := testVector(n, int64(n)+7)
			if n == 0 {
				w = nil
			}
			if got, want := len(c.Encode(w)), c.EncodedBytes(n); got != want {
				t.Errorf("%s: Encode(%d) = %d bytes, EncodedBytes = %d", c.Name(), n, got, want)
			}
		}
	}
}

func TestRoundTripAgainstDense(t *testing.T) {
	// Every codec must round-trip against the nn.EncodeWeights ground
	// truth: decode(encode(w)) within the codec's error budget of the
	// exact dense round trip.
	w := testVector(2000, 1)
	dense, err := nn.DecodeWeights(nn.EncodeWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range allCodecs() {
		got, err := c.Decode(c.Encode(w), len(w))
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if len(got) != len(dense) {
			t.Fatalf("%s: length %d != %d", c.Name(), len(got), len(dense))
		}
		if c.Lossless() {
			for i := range got {
				if got[i] != dense[i] {
					t.Fatalf("%s: lossless codec diverged at %d: %v != %v", c.Name(), i, got[i], dense[i])
				}
			}
			continue
		}
		// Lossy codecs: each reconstructed coordinate is either the
		// original within the codec's error budget — one int8 quantization
		// step (absolute, set by the largest coordinate), or float32
		// rounding for kept top-k coordinates — or dropped to zero.
		maxAbs := 0.0
		for _, v := range dense {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		for i := range got {
			if got[i] == 0 {
				continue // dropped by sparsification (or quantized to zero)
			}
			budget := math.Abs(dense[i]) * 1e-6 // float32 rounding (top-k)
			if c.ID() == IDInt8 {
				budget = maxAbs/127*0.51 + maxAbs*1e-6
			}
			if math.Abs(got[i]-dense[i]) > budget {
				t.Fatalf("%s: coordinate %d reconstructed %v from %v", c.Name(), i, got[i], dense[i])
			}
		}
	}
}

func TestNonePayloadIsDenseWireFormat(t *testing.T) {
	w := testVector(100, 2)
	if !bytes.Equal(None{}.Encode(w), nn.EncodeWeights(w)) {
		t.Fatal("dense codec payload differs from nn.EncodeWeights")
	}
	if DenseBytes(100) != len(nn.EncodeWeights(w)) {
		t.Fatalf("DenseBytes(100) = %d, nn encoding is %d", DenseBytes(100), len(nn.EncodeWeights(w)))
	}
}

func TestDeterministicByteIdenticalEncoding(t *testing.T) {
	// Fixed seed → byte-identical payloads across repeated encodings,
	// including top-k tie-breaking (the vector below has magnitude ties).
	w := testVector(4096, 42)
	w[10], w[2000] = 0.5, 0.5
	w[11], w[2001] = -0.5, 0.5
	for _, c := range allCodecs() {
		first := c.Encode(w)
		for trial := 0; trial < 3; trial++ {
			if !bytes.Equal(c.Encode(w), first) {
				t.Fatalf("%s: encoding not deterministic on trial %d", c.Name(), trial)
			}
		}
	}
}

func TestTopKKeepsLargestAndBreaksTiesLow(t *testing.T) {
	w := []float64{0.1, -3, 0.2, 3, 0.3, -0.3}
	c := NewTopK(0.5) // k = 3
	got, err := c.Decode(c.Encode(w), len(w))
	if err != nil {
		t.Fatal(err)
	}
	// Largest magnitudes: |−3|, |3|, then the 0.3 tie — lower index (4)
	// wins over index 5.
	want := []float64{0, -3, 0, 3, float64(float32(0.3)), 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decoded %v, want %v", got, want)
		}
	}
}

func TestTopKSizes(t *testing.T) {
	c := NewTopK(0.1)
	if k := c.K(1000); k != 100 {
		t.Fatalf("K(1000) = %d", k)
	}
	if k := c.K(1); k != 1 {
		t.Fatalf("K(1) = %d", k)
	}
	if k := c.K(0); k != 0 {
		t.Fatalf("K(0) = %d", k)
	}
	// 10% density must beat the dense baseline by well over 5x.
	if ratio := float64(DenseBytes(1000)) / float64(c.EncodedBytes(1000)); ratio < 5 {
		t.Fatalf("compression ratio %.2f < 5", ratio)
	}
}

func TestNewTopKRejectsBadFraction(t *testing.T) {
	for _, f := range []float64{0, -0.1, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTopK(%v) accepted", f)
				}
			}()
			NewTopK(f)
		}()
	}
}

func TestInt8BoundedError(t *testing.T) {
	w := testVector(3000, 3)
	c := NewInt8(256)
	got, err := c.Decode(c.Encode(w), len(w))
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < len(w); start += 256 {
		end := start + 256
		if end > len(w) {
			end = len(w)
		}
		maxAbs := 0.0
		for _, v := range w[start:end] {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		bound := maxAbs/127*0.51 + maxAbs*1e-6 // half a quantization step + float32 scale rounding
		for i := start; i < end; i++ {
			if math.Abs(got[i]-w[i]) > bound {
				t.Fatalf("chunk [%d,%d): coordinate %d error %v > %v", start, end, i, math.Abs(got[i]-w[i]), bound)
			}
		}
	}
}

func TestEncodeDeltaErrorFeedback(t *testing.T) {
	// Error feedback delays mass, never loses it: after any number of
	// rounds of a constant true delta, cumulative reconstruction plus the
	// in-flight residual equals the cumulative truth exactly (up to fp
	// accumulation), for every lossy codec.
	const rounds = 30
	n := 500
	truth := testVector(n, 4)
	for _, c := range []Codec{NewTopK(0.1), NewTopK(0.01), NewInt8(64)} {
		var residual []float64
		cum := make([]float64, n)
		for round := 0; round < rounds; round++ {
			delta := append([]float64(nil), truth...)
			payload, rec, newRes := EncodeDelta(c, delta, residual)
			if len(payload) != c.EncodedBytes(n) {
				t.Fatalf("%s: payload %d bytes, want %d", c.Name(), len(payload), c.EncodedBytes(n))
			}
			for i := range rec {
				if math.Abs(delta[i]-(rec[i]+newRes[i])) > 1e-12 {
					t.Fatalf("%s round %d: residual does not close the encoding error at %d", c.Name(), round, i)
				}
				cum[i] += rec[i]
			}
			residual = newRes
		}
		for i := range cum {
			if math.Abs(cum[i]+residual[i]-rounds*truth[i]) > 1e-9 {
				t.Fatalf("%s coordinate %d: cumulative %v + residual %v != %v",
					c.Name(), i, cum[i], residual[i], rounds*truth[i])
			}
		}
	}
}

func TestEncodeDeltaResidualLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched residual accepted")
		}
	}()
	EncodeDelta(None{}, []float64{1, 2}, []float64{1})
}

func TestDecodeRejectsWrongLength(t *testing.T) {
	w := testVector(64, 5)
	for _, c := range allCodecs() {
		if _, err := c.Decode(c.Encode(w), 65); err == nil {
			t.Errorf("%s: accepted payload with wrong expected length", c.Name())
		}
	}
}

func TestDecodeRejectsTruncatedAndCorrupt(t *testing.T) {
	w := testVector(128, 6)
	for _, c := range allCodecs() {
		good := c.Encode(w)
		for _, cut := range []int{0, 3, 11, len(good) / 2, len(good) - 1} {
			if _, err := c.Decode(good[:cut], len(w)); err == nil {
				t.Errorf("%s: accepted truncation to %d bytes", c.Name(), cut)
			}
		}
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xFF // break the magic
		if _, err := c.Decode(bad, len(w)); err == nil {
			t.Errorf("%s: accepted corrupt magic", c.Name())
		}
	}
}

func TestDecodePayloadRegistry(t *testing.T) {
	w := testVector(200, 7)
	for _, c := range allCodecs() {
		got, err := DecodePayload(c.ID(), c.Encode(w), len(w))
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if len(got) != len(w) {
			t.Fatalf("%s: length %d", c.Name(), len(got))
		}
		if !Known(c.ID()) {
			t.Fatalf("%s: ID %d not Known", c.Name(), c.ID())
		}
	}
	if _, err := DecodePayload(99, nil, 0); err == nil {
		t.Fatal("unknown codec id accepted")
	}
	if Known(99) {
		t.Fatal("codec id 99 reported Known")
	}
}

func TestParseRoundTripsNames(t *testing.T) {
	for _, c := range allCodecs() {
		got, err := Parse(c.Name())
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.Name(), err)
		}
		if got.ID() != c.ID() {
			t.Fatalf("Parse(%q).ID = %d, want %d", c.Name(), got.ID(), c.ID())
		}
	}
	for _, spec := range []string{"gzip", "topk@0", "topk@2", "topk@x", "int8@0", "int8@-1", "int8@x"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
	if c, err := Parse(""); err != nil || c.ID() != IDNone {
		t.Fatalf("Parse(\"\") = %v, %v", c, err)
	}
	if c, err := Parse("topk"); err != nil || c.(TopK).Fraction != 0.10 {
		t.Fatalf("Parse(\"topk\") = %v, %v", c, err)
	}
	if c, err := Parse("int8"); err != nil || c.(Int8).Chunk != 0 {
		t.Fatalf("Parse(\"int8\") = %v, %v", c, err)
	}
}

func TestNonFiniteInputsEncodeDeterministically(t *testing.T) {
	// Diverged training can hand codecs NaN, ±Inf, or beyond-float32
	// deltas. Encoding must stay deterministic (no platform-defined
	// float→int conversions), self-decodable (EncodeDelta must not
	// panic), and byte-stable across calls.
	w := testVector(300, 9)
	w[3] = math.NaN()
	w[40] = math.Inf(1)
	w[41] = math.Inf(-1)
	w[100] = math.MaxFloat32 * 4
	w[101] = -math.MaxFloat64 / 2
	for _, c := range allCodecs() {
		if c.Lossless() {
			continue // the dense float64 format carries non-finite values as-is
		}
		first := c.Encode(w)
		if !bytes.Equal(c.Encode(w), first) {
			t.Fatalf("%s: non-finite input encoded non-deterministically", c.Name())
		}
		got, err := c.Decode(first, len(w))
		if err != nil {
			t.Fatalf("%s: cannot decode own encoding of non-finite input: %v", c.Name(), err)
		}
		for i, v := range got {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: decoded non-finite %v at %d", c.Name(), v, i)
			}
		}
	}
}

func TestEmptyVector(t *testing.T) {
	for _, c := range allCodecs() {
		got, err := c.Decode(c.Encode(nil), 0)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if len(got) != 0 {
			t.Fatalf("%s: decoded %d weights from empty vector", c.Name(), len(got))
		}
	}
}

func TestAllZeroVector(t *testing.T) {
	w := make([]float64, 300)
	for _, c := range allCodecs() {
		got, err := c.Decode(c.Encode(w), len(w))
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		for i, v := range got {
			if v != 0 {
				t.Fatalf("%s: zero vector decoded %v at %d", c.Name(), v, i)
			}
		}
	}
}
