// Package faultnet is a deterministic fault-injection transport for chaos
// tests: it wraps net.Conn / net.Listener with failures driven entirely by
// a scripted Schedule — cut a connection after N bytes, delay reads or
// writes, refuse dials for a window, or drop one direction of traffic —
// so a chaos run replays byte-for-byte on the same schedule. There is no
// runtime randomness: rules bind to connection indexes in establishment
// order, and the only use of Schedule.Seed is FlapRules, which expands a
// (seed, fraction) pair into a concrete rule list before the run starts.
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync/atomic"
	"time"
)

// ErrDialRefused is returned by Transport.Dial for attempts falling inside
// the schedule's refusal window — the scripted analogue of a transient
// network partition between this endpoint and the address it dials.
var ErrDialRefused = errors.New("faultnet: dial refused by schedule")

// Rule injects one fault pattern into matching connections. All matching
// rules apply to a connection: delays add up, the smallest cut wins, and
// DropWrites is sticky.
type Rule struct {
	// Conn is the 0-based index of the connection this rule binds to, in
	// establishment order within the Transport (dials and accepts share
	// one counter). -1 binds to every connection.
	Conn int
	// CutAfterBytes closes the connection once that many bytes have
	// crossed it (reads + writes combined). The operation that crosses
	// the threshold still completes — the cut lands between operations,
	// like a peer dying after flushing. 0 = never cut.
	CutAfterBytes int64
	// ReadDelay/WriteDelay stall each matching operation before it
	// touches the socket.
	ReadDelay, WriteDelay time.Duration
	// DropWrites makes writes report success while the bytes vanish — a
	// one-way partition: the peer keeps talking to us, we appear mute.
	DropWrites bool
}

// Schedule scripts every fault a Transport will inject.
type Schedule struct {
	// Seed keys helper expansions like FlapRules; the transport itself
	// never draws randomness at runtime.
	Seed int64
	// RefuseFrom/RefuseUntil refuse dial attempts with 0-based attempt
	// index in [RefuseFrom, RefuseUntil) — a transient partition window.
	// Refused attempts consume an attempt index but no connection index.
	RefuseFrom, RefuseUntil int
	// Rules are the per-connection fault patterns.
	Rules []Rule
}

// FlapRules expands (seed, fraction) into concrete cut rules over the
// first conns connection indexes: each index flips a seeded coin and,
// when selected, gets cut after cutBytes — a reproducible flap storm.
func FlapRules(seed int64, conns int, fraction float64, cutBytes int64) []Rule {
	rng := rand.New(rand.NewSource(seed))
	var rules []Rule
	for i := 0; i < conns; i++ {
		if rng.Float64() < fraction {
			rules = append(rules, Rule{Conn: i, CutAfterBytes: cutBytes})
		}
	}
	return rules
}

// Transport applies one Schedule to the connections it establishes (Dial)
// or adopts (Listen). Use one Transport per endpoint under test; its
// connection counter is shared across dials and accepts so rule indexes
// stay unambiguous.
type Transport struct {
	sched   Schedule
	dials   atomic.Int64
	conns   atomic.Int64
	refused atomic.Int64
	cuts    atomic.Int64
}

// New builds a Transport driven by sched.
func New(sched Schedule) *Transport {
	return &Transport{sched: sched}
}

// Dials returns how many dial attempts were made (refused ones included).
func (t *Transport) Dials() int { return int(t.dials.Load()) }

// Conns returns how many connections were established through t.
func (t *Transport) Conns() int { return int(t.conns.Load()) }

// Refused returns how many dial attempts the refusal window swallowed.
func (t *Transport) Refused() int { return int(t.refused.Load()) }

// Cuts returns how many connections a CutAfterBytes rule has severed.
func (t *Transport) Cuts() int { return int(t.cuts.Load()) }

// Dial opens a TCP connection to addr through the schedule: attempts in
// the refusal window fail with ErrDialRefused, and established
// connections carry the rules matching their index.
func (t *Transport) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	attempt := int(t.dials.Add(1)) - 1
	if attempt >= t.sched.RefuseFrom && attempt < t.sched.RefuseUntil {
		t.refused.Add(1)
		return nil, ErrDialRefused
	}
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return t.wrap(raw), nil
}

// Listen wraps ln so accepted connections pass through the schedule too.
func (t *Transport) Listen(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, t: t}
}

func (t *Transport) wrap(raw net.Conn) net.Conn {
	idx := int(t.conns.Add(1)) - 1
	fc := &faultConn{Conn: raw, t: t}
	for _, r := range t.sched.Rules {
		if r.Conn != -1 && r.Conn != idx {
			continue
		}
		fc.readDelay += r.ReadDelay
		fc.writeDelay += r.WriteDelay
		if r.DropWrites {
			fc.dropWrites = true
		}
		if r.CutAfterBytes > 0 && (fc.cut == 0 || r.CutAfterBytes < fc.cut) {
			fc.cut = r.CutAfterBytes
		}
	}
	return fc
}

type faultListener struct {
	net.Listener
	t *Transport
}

func (l *faultListener) Accept() (net.Conn, error) {
	raw, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.t.wrap(raw), nil
}

type faultConn struct {
	net.Conn
	t          *Transport
	cut        int64 // close after this many bytes crossed; 0 = never
	readDelay  time.Duration
	writeDelay time.Duration
	dropWrites bool
	crossed    atomic.Int64
	severed    atomic.Bool
}

// charge accounts n crossed bytes and severs the connection once the cut
// threshold is reached. The triggering operation has already completed —
// the peer saw those bytes — so the failure surfaces on the next
// operation, exactly like a process dying after a flush.
func (c *faultConn) charge(n int) {
	if c.cut <= 0 || n <= 0 {
		return
	}
	if c.crossed.Add(int64(n)) >= c.cut && !c.severed.Swap(true) {
		c.t.cuts.Add(1)
		c.Conn.Close()
	}
}

func (c *faultConn) Read(p []byte) (int, error) {
	if c.readDelay > 0 {
		time.Sleep(c.readDelay)
	}
	n, err := c.Conn.Read(p)
	c.charge(n)
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	if c.writeDelay > 0 {
		time.Sleep(c.writeDelay)
	}
	if c.severed.Load() {
		// Mirror the OS: a severed socket fails writes immediately.
		return 0, net.ErrClosed
	}
	if c.dropWrites {
		// One-way partition: pretend the bytes left; they never cross,
		// so they don't count toward the cut threshold.
		return len(p), nil
	}
	n, err := c.Conn.Write(p)
	c.charge(n)
	return n, err
}
