package faultnet

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipeServer accepts one connection through tr and echoes everything it
// reads back to the peer, returning the listen address.
func pipeServer(t *testing.T, tr *Transport) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	wrapped := ln
	if tr != nil {
		wrapped = tr.Listen(ln).(*faultListener)
	}
	go func() {
		for {
			c, err := wrapped.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()
	return ln.Addr().String()
}

func TestRefusalWindow(t *testing.T) {
	addr := pipeServer(t, nil)
	tr := New(Schedule{RefuseFrom: 1, RefuseUntil: 3})

	if _, err := tr.Dial(addr, time.Second); err != nil {
		t.Fatalf("attempt 0 (before window): %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := tr.Dial(addr, time.Second); !errors.Is(err, ErrDialRefused) {
			t.Fatalf("attempt %d inside window: err = %v, want ErrDialRefused", 1+i, err)
		}
	}
	if _, err := tr.Dial(addr, time.Second); err != nil {
		t.Fatalf("attempt 3 (after window): %v", err)
	}
	if tr.Refused() != 2 || tr.Dials() != 4 || tr.Conns() != 2 {
		t.Fatalf("stats: refused=%d dials=%d conns=%d", tr.Refused(), tr.Dials(), tr.Conns())
	}
}

func TestCutAfterBytes(t *testing.T) {
	addr := pipeServer(t, nil)
	tr := New(Schedule{Rules: []Rule{{Conn: 0, CutAfterBytes: 8}}})

	c, err := tr.Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	// 4 bytes out + 4 echoed back = 8 crossed: the echo read lands
	// exactly on the threshold and still completes.
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("echo read: %v", err)
	}
	// The connection is now severed: the next write fails.
	if _, err := c.Write([]byte("ping")); err == nil {
		t.Fatalf("write after cut succeeded; want error")
	}
	if tr.Cuts() != 1 {
		t.Fatalf("cuts = %d, want 1", tr.Cuts())
	}

	// Connection index 1 has no rule and survives the same traffic.
	c2, err := tr.Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c2.Write([]byte("ping")); err != nil {
			t.Fatalf("unruled write %d: %v", i, err)
		}
		if _, err := io.ReadFull(c2, buf); err != nil {
			t.Fatalf("unruled read %d: %v", i, err)
		}
	}
}

func TestDelaysAndAllConnsRule(t *testing.T) {
	addr := pipeServer(t, nil)
	const delay = 30 * time.Millisecond
	tr := New(Schedule{Rules: []Rule{{Conn: -1, WriteDelay: delay}}})

	c, err := tr.Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	start := time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if took := time.Since(start); took < delay {
		t.Fatalf("delayed write took %v, want >= %v", took, delay)
	}
}

func TestDropWritesOneWayPartition(t *testing.T) {
	addr := pipeServer(t, nil)
	tr := New(Schedule{Rules: []Rule{{Conn: 0, DropWrites: true}}})

	c, err := tr.Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	// Writes claim success but the echo server never sees the bytes, so
	// a bounded read sees silence.
	if n, err := c.Write([]byte("ping")); err != nil || n != 4 {
		t.Fatalf("dropped write: n=%d err=%v", n, err)
	}
	c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 4)
	if _, err := c.Read(buf); err == nil {
		t.Fatalf("read returned data across a dropped-writes partition")
	}
}

func TestListenerSideRules(t *testing.T) {
	tr := New(Schedule{Rules: []Rule{{Conn: 0, CutAfterBytes: 4}}})
	addr := pipeServer(t, tr)

	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	// 4 bytes into the server-side wrapped conn hit its cut; the echo
	// may or may not flush first, but the connection must then die.
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 8)
	for {
		if _, err := c.Read(buf); err != nil {
			break // severed (EOF/reset) — the rule fired server-side
		}
	}
	if tr.Cuts() != 1 {
		t.Fatalf("cuts = %d, want 1", tr.Cuts())
	}
}

func TestFlapRulesDeterministic(t *testing.T) {
	a := FlapRules(42, 100, 0.3, 1024)
	b := FlapRules(42, 100, 0.3, 1024)
	if len(a) != len(b) {
		t.Fatalf("rule counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rule %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(a) == 0 || len(a) == 100 {
		t.Fatalf("fraction 0.3 selected %d/100 connections", len(a))
	}
	if c := FlapRules(43, 100, 0.3, 1024); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("different seeds produced identical rule sets")
		}
	}
}
