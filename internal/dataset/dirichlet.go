package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// PartitionDirichlet draws each client's class mixture from a symmetric
// Dirichlet(α) distribution — the standard continuous-knob non-IID
// partitioner in the FL literature (Hsu et al. 2019), complementing the
// paper's discrete non-IID(k) construction. Small α (e.g. 0.1) yields
// near-single-class clients; large α approaches IID. Each client receives
// n/clients samples.
func PartitionDirichlet(d *Dataset, clients int, alpha float64, rng *rand.Rand) [][]int {
	if clients <= 0 {
		panic("dataset: PartitionDirichlet needs clients > 0")
	}
	if alpha <= 0 {
		panic(fmt.Sprintf("dataset: Dirichlet alpha %v must be positive", alpha))
	}
	byClass := d.ClassIndices()
	for c := range byClass {
		rng.Shuffle(len(byClass[c]), func(i, j int) { byClass[c][i], byClass[c][j] = byClass[c][j], byClass[c][i] })
	}
	cursor := make([]int, d.NumClasses)
	next := func(class int) int {
		pool := byClass[class]
		if len(pool) == 0 {
			panic(fmt.Sprintf("dataset: class %d empty", class))
		}
		v := pool[cursor[class]%len(pool)]
		cursor[class]++
		return v
	}
	perClient := d.Len() / clients
	if perClient == 0 {
		perClient = 1
	}
	out := make([][]int, clients)
	for c := 0; c < clients; c++ {
		mix := dirichlet(rng, alpha, d.NumClasses)
		idx := make([]int, 0, perClient)
		for s := 0; s < perClient; s++ {
			idx = append(idx, next(sampleCategorical(rng, mix)))
		}
		out[c] = idx
	}
	return out
}

// dirichlet samples a symmetric Dirichlet(α) vector of length k via
// normalized Gamma(α, 1) draws.
func dirichlet(rng *rand.Rand, alpha float64, k int) []float64 {
	out := make([]float64, k)
	sum := 0.0
	for i := range out {
		out[i] = gammaSample(rng, alpha)
		sum += out[i]
	}
	if sum == 0 {
		// Numerically everything underflowed (tiny α): pick one class.
		out[rng.Intn(k)] = 1
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws Gamma(shape, 1) via Marsaglia–Tsang, with the
// shape<1 boost trick.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^(1/a)
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

func sampleCategorical(rng *rand.Rand, probs []float64) int {
	x := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if x < acc {
			return i
		}
	}
	return len(probs) - 1
}
