package dataset

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestPartitionDirichletShapes(t *testing.T) {
	d := Generate(CIFAR10Like, 1000, 1)
	parts := PartitionDirichlet(d, 20, 0.5, rand.New(rand.NewSource(1)))
	if len(parts) != 20 {
		t.Fatalf("clients = %d", len(parts))
	}
	for c, p := range parts {
		if len(p) != 50 {
			t.Fatalf("client %d has %d samples, want 50", c, len(p))
		}
	}
}

func TestPartitionDirichletSkewByAlpha(t *testing.T) {
	d := Generate(CIFAR10Like, 2000, 2)
	skew := func(alpha float64) float64 {
		parts := PartitionDirichlet(d, 20, alpha, rand.New(rand.NewSource(3)))
		// Mean per-client class-distribution entropy; lower = more skewed.
		total := 0.0
		for _, p := range parts {
			counts := make([]float64, d.NumClasses)
			for _, i := range p {
				counts[d.Y[i]]++
			}
			h := 0.0
			for _, c := range counts {
				if c > 0 {
					pr := c / float64(len(p))
					h -= pr * math.Log(pr)
				}
			}
			total += h
		}
		return total / float64(len(parts))
	}
	concentrated := skew(0.05)
	spread := skew(10)
	if concentrated >= spread {
		t.Fatalf("alpha=0.05 entropy %v should be below alpha=10 entropy %v", concentrated, spread)
	}
	// alpha=10 is near IID: entropy near log(10).
	if spread < math.Log(10)*0.8 {
		t.Fatalf("alpha=10 entropy %v too low for near-IID", spread)
	}
}

func TestPartitionDirichletInvalidPanics(t *testing.T) {
	d := Generate(MNISTLike, 100, 1)
	for _, f := range []func(){
		func() { PartitionDirichlet(d, 0, 1, rand.New(rand.NewSource(1))) },
		func() { PartitionDirichlet(d, 5, 0, rand.New(rand.NewSource(1))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGammaSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, shape := range []float64{0.3, 1, 2.5} {
		n := 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += gammaSample(rng, shape)
		}
		mean := sum / float64(n)
		if math.Abs(mean-shape) > 0.1*shape+0.05 {
			t.Fatalf("Gamma(%v) sample mean %v, want ≈%v", shape, mean, shape)
		}
	}
}

func TestGenerateImagesShape(t *testing.T) {
	d := GenerateImages("test", 10, 1, 14, 14, 200, 0.4, 1)
	if d.Len() != 200 || d.Dim() != 14*14 {
		t.Fatalf("len %d dim %d", d.Len(), d.Dim())
	}
	if len(d.SampleShape) != 3 || d.SampleShape[0] != 1 || d.SampleShape[1] != 14 {
		t.Fatalf("SampleShape = %v", d.SampleShape)
	}
	it := d.InputTensor()
	if it.Rank() != 4 || it.Dim(0) != 200 || it.Dim(2) != 14 {
		t.Fatalf("InputTensor shape %v", it.Shape())
	}
}

func TestGenerateImagesSpatialSmoothness(t *testing.T) {
	// Prototype images are upsampled coarse grids: adjacent pixels must be
	// far more correlated than in white noise.
	d := GenerateImages("smooth", 4, 1, 16, 16, 400, 0.1, 2)
	var adjacent, random float64
	n := 0
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < d.Len(); i++ {
		row := d.X.Data[i*256 : (i+1)*256]
		for k := 0; k < 20; k++ {
			p := rng.Intn(255)
			adjacent += math.Abs(row[p] - row[p+1])
			random += math.Abs(row[p] - row[rng.Intn(256)])
			n++
		}
	}
	if adjacent/float64(n) >= random/float64(n) {
		t.Fatalf("adjacent diff %v not below random diff %v", adjacent/float64(n), random/float64(n))
	}
}

func TestGenerateImagesSubsetPreservesShape(t *testing.T) {
	d := GenerateImages("test", 10, 2, 8, 8, 50, 0.3, 5)
	s := d.Subset([]int{0, 3, 7})
	if len(s.SampleShape) != 3 || s.SampleShape[0] != 2 {
		t.Fatalf("Subset lost SampleShape: %v", s.SampleShape)
	}
	c := Concat(s, s)
	if len(c.SampleShape) != 3 {
		t.Fatalf("Concat lost SampleShape: %v", c.SampleShape)
	}
}

func TestBatchesRespectSampleShape(t *testing.T) {
	d := GenerateImages("test", 4, 1, 8, 8, 30, 0.3, 6)
	d.Batches(7, rand.New(rand.NewSource(1)), func(x *tensor.Tensor, y []int) {
		if x.Rank() != 4 || x.Dim(1) != 1 || x.Dim(2) != 8 {
			t.Fatalf("batch shape %v", x.Shape())
		}
	})
}
