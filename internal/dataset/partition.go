package dataset

import (
	"fmt"
	"math/rand"
	"sort"
)

// PartitionIID splits n sample indices into `clients` equal IID shares.
// Leftover samples go to the first clients, so shares differ by at most one.
func PartitionIID(n, clients int, rng *rand.Rand) [][]int {
	if clients <= 0 {
		panic("dataset: PartitionIID needs clients > 0")
	}
	perm := rng.Perm(n)
	out := make([][]int, clients)
	base, extra := n/clients, n%clients
	off := 0
	for c := 0; c < clients; c++ {
		take := base
		if c < extra {
			take++
		}
		out[c] = append([]int(nil), perm[off:off+take]...)
		off += take
	}
	return out
}

// PartitionByClass implements the paper's non-IID(k) setting: every client
// receives an equal number of samples drawn from exactly k classes
// (Fig. 1b, Fig. 4, Fig. 8 use k = 2, 5, 10). Classes are assigned to
// clients round-robin so all classes stay covered, and each class's pool is
// dealt out without replacement until exhausted, then recycled.
func PartitionByClass(d *Dataset, clients, classesPerClient int, rng *rand.Rand) [][]int {
	k := classesPerClient
	if k < 1 || k > d.NumClasses {
		panic(fmt.Sprintf("dataset: classesPerClient %d outside [1,%d]", k, d.NumClasses))
	}
	byClass := d.ClassIndices()
	for c := range byClass {
		rng.Shuffle(len(byClass[c]), func(i, j int) { byClass[c][i], byClass[c][j] = byClass[c][j], byClass[c][i] })
	}
	cursor := make([]int, d.NumClasses)
	next := func(class int) int {
		pool := byClass[class]
		if len(pool) == 0 {
			panic(fmt.Sprintf("dataset: class %d has no samples", class))
		}
		v := pool[cursor[class]%len(pool)]
		cursor[class]++
		return v
	}

	perClient := d.Len() / clients
	perClass := perClient / k
	if perClass == 0 {
		perClass = 1
	}
	// Assign each client k classes, round-robin over a shuffled class order
	// so coverage is balanced across the population.
	order := rng.Perm(d.NumClasses)
	out := make([][]int, clients)
	ci := 0
	for c := 0; c < clients; c++ {
		classes := make([]int, k)
		for j := 0; j < k; j++ {
			classes[j] = order[ci%d.NumClasses]
			ci++
		}
		idx := make([]int, 0, perClass*k)
		for _, class := range classes {
			for s := 0; s < perClass; s++ {
				idx = append(idx, next(class))
			}
		}
		out[c] = idx
	}
	return out
}

// PartitionShards implements the McMahan et al. non-IID split used by the
// paper for MNIST/Fashion-MNIST: sort samples by label, cut into
// clients·shardsPerClient equal shards, and deal each client
// shardsPerClient shards, so each client holds samples from at most
// shardsPerClient classes.
func PartitionShards(d *Dataset, clients, shardsPerClient int, rng *rand.Rand) [][]int {
	n := d.Len()
	numShards := clients * shardsPerClient
	if numShards > n {
		panic(fmt.Sprintf("dataset: %d shards for %d samples", numShards, n))
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return d.Y[idx[a]] < d.Y[idx[b]] })
	shardSize := n / numShards
	shardOrder := rng.Perm(numShards)
	out := make([][]int, clients)
	for c := 0; c < clients; c++ {
		var own []int
		for s := 0; s < shardsPerClient; s++ {
			sh := shardOrder[c*shardsPerClient+s]
			own = append(own, idx[sh*shardSize:(sh+1)*shardSize]...)
		}
		out[c] = own
	}
	return out
}

// QuantityFractions is the paper's data-quantity heterogeneity setting: the
// five resource groups hold 10%, 15%, 20%, 25% and 30% of the total
// training data (Section 5.1).
var QuantityFractions = []float64{0.10, 0.15, 0.20, 0.25, 0.30}

// PartitionQuantity splits n samples across clients organized in
// len(groupFracs) equal-size groups, where group g collectively receives
// fraction groupFracs[g] of the data, split evenly within the group.
// Fractions must sum to approximately 1.
func PartitionQuantity(n, clients int, groupFracs []float64, rng *rand.Rand) [][]int {
	g := len(groupFracs)
	if g == 0 || clients%g != 0 {
		panic(fmt.Sprintf("dataset: %d clients not divisible into %d groups", clients, g))
	}
	sum := 0.0
	for _, f := range groupFracs {
		sum += f
	}
	if sum < 0.99 || sum > 1.01 {
		panic(fmt.Sprintf("dataset: group fractions sum to %v, want 1", sum))
	}
	perGroup := clients / g
	perm := rng.Perm(n)
	out := make([][]int, clients)
	off := 0
	for gi, f := range groupFracs {
		groupTotal := int(f * float64(n))
		per := groupTotal / perGroup
		for c := 0; c < perGroup; c++ {
			client := gi*perGroup + c
			hi := off + per
			if hi > n {
				hi = n
			}
			out[client] = append([]int(nil), perm[off:hi]...)
			off = hi
		}
	}
	return out
}

// PartitionClassQuantity combines non-IID(k) class skew with the group
// quantity fractions: client sizes follow PartitionQuantity while class
// composition follows PartitionByClass. This is the paper's "Combine"
// scenario (resource + data-quantity + non-IID heterogeneity).
func PartitionClassQuantity(d *Dataset, clients, classesPerClient int, groupFracs []float64, rng *rand.Rand) [][]int {
	g := len(groupFracs)
	if g == 0 || clients%g != 0 {
		panic(fmt.Sprintf("dataset: %d clients not divisible into %d groups", clients, g))
	}
	k := classesPerClient
	byClass := d.ClassIndices()
	for c := range byClass {
		rng.Shuffle(len(byClass[c]), func(i, j int) { byClass[c][i], byClass[c][j] = byClass[c][j], byClass[c][i] })
	}
	cursor := make([]int, d.NumClasses)
	next := func(class int) int {
		pool := byClass[class]
		v := pool[cursor[class]%len(pool)]
		cursor[class]++
		return v
	}
	perGroup := clients / g
	order := rng.Perm(d.NumClasses)
	out := make([][]int, clients)
	ci := 0
	for gi, f := range groupFracs {
		groupTotal := int(f * float64(d.Len()))
		per := groupTotal / perGroup
		perClass := per / k
		if perClass == 0 {
			perClass = 1
		}
		for c := 0; c < perGroup; c++ {
			client := gi*perGroup + c
			idx := make([]int, 0, perClass*k)
			for j := 0; j < k; j++ {
				class := order[ci%d.NumClasses]
				ci++
				for s := 0; s < perClass; s++ {
					idx = append(idx, next(class))
				}
			}
			out[client] = idx
		}
	}
	return out
}

// Classes returns the sorted distinct classes present in rows idx of d.
func Classes(d *Dataset, idx []int) []int {
	seen := make(map[int]bool)
	for _, i := range idx {
		seen[d.Y[i]] = true
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// TestSubsetForClasses returns up to max rows of test whose labels fall in
// classes. The TiFL adaptive scheduler evaluates each tier on test data
// matching that tier's class composition (TestData_t in Algorithm 2).
func TestSubsetForClasses(test *Dataset, classes []int, max int, rng *rand.Rand) *Dataset {
	want := make(map[int]bool, len(classes))
	for _, c := range classes {
		want[c] = true
	}
	var idx []int
	for i, y := range test.Y {
		if want[y] {
			idx = append(idx, i)
		}
	}
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	if max > 0 && len(idx) > max {
		idx = idx[:max]
	}
	return test.Subset(idx)
}
