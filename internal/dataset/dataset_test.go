package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestGenerateBasics(t *testing.T) {
	d := Generate(MNISTLike, 200, 1)
	if d.Len() != 200 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.Dim() != MNISTLike.Dim {
		t.Fatalf("Dim = %d", d.Dim())
	}
	counts := d.ClassCounts()
	for c, n := range counts {
		if n != 20 {
			t.Fatalf("class %d count = %d, want 20 (uniform)", c, n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(CIFAR10Like, 50, 7)
	b := Generate(CIFAR10Like, 50, 7)
	if !a.X.AllClose(b.X, 0) {
		t.Fatal("Generate not deterministic")
	}
	c := Generate(CIFAR10Like, 50, 8)
	if a.X.AllClose(c.X, 0) {
		t.Fatal("different seeds must differ")
	}
}

func TestPrototypesSharedAcrossSplits(t *testing.T) {
	// Train and test generated with different seeds must still be mutually
	// predictive: a nearest-prototype classifier fit on train should beat
	// chance on test by a wide margin.
	train := Generate(MNISTLike, 500, 1)
	test := Generate(MNISTLike, 500, 2)
	dim := train.Dim()
	// class means from train
	means := make([][]float64, train.NumClasses)
	counts := make([]int, train.NumClasses)
	for i := range means {
		means[i] = make([]float64, dim)
	}
	for i, y := range train.Y {
		counts[y]++
		row := train.X.Data[i*dim : (i+1)*dim]
		for j, v := range row {
			means[y][j] += v
		}
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for i, y := range test.Y {
		row := test.X.Data[i*dim : (i+1)*dim]
		best, bestD := -1, math.Inf(1)
		for c := range means {
			s := 0.0
			for j, v := range row {
				dv := v - means[c][j]
				s += dv * dv
			}
			if s < bestD {
				best, bestD = c, s
			}
		}
		if best == y {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.5 {
		t.Fatalf("cross-split nearest-mean accuracy = %v, want ≥0.5 (chance 0.1)", acc)
	}
}

func TestSubsetCopies(t *testing.T) {
	d := Generate(MNISTLike, 20, 3)
	s := d.Subset([]int{0, 5, 7})
	if s.Len() != 3 || s.Y[1] != d.Y[5] {
		t.Fatalf("Subset labels wrong")
	}
	s.X.Data[0] = 999
	if d.X.Data[0] == 999 {
		t.Fatal("Subset must copy data")
	}
}

func TestSplitSizes(t *testing.T) {
	d := Generate(MNISTLike, 100, 4)
	train, test := d.Split(0.8, rand.New(rand.NewSource(1)))
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("Split = %d/%d", train.Len(), test.Len())
	}
}

func TestConcat(t *testing.T) {
	a := Generate(MNISTLike, 10, 1)
	b := Generate(MNISTLike, 15, 2)
	c := Concat(a, b)
	if c.Len() != 25 {
		t.Fatalf("Concat len = %d", c.Len())
	}
	if c.Y[10] != b.Y[0] {
		t.Fatal("Concat order wrong")
	}
}

func TestBatchesCoverAllOnce(t *testing.T) {
	d := Generate(MNISTLike, 53, 5)
	seen := 0
	d.Batches(10, rand.New(rand.NewSource(1)), func(x *tensor.Tensor, y []int) {
		seen += len(y)
		if x.Dim(0) != len(y) {
			t.Fatalf("batch shape %v vs %d labels", x.Shape(), len(y))
		}
	})
	if seen != 53 {
		t.Fatalf("batches covered %d samples, want 53", seen)
	}
}

func TestPartitionIIDDisjointComplete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(200)
		clients := 1 + r.Intn(10)
		parts := PartitionIID(n, clients, r)
		return checkDisjointComplete(parts, n) && sizesBalanced(parts, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func checkDisjointComplete(parts [][]int, n int) bool {
	seen := make(map[int]bool)
	total := 0
	for _, p := range parts {
		for _, i := range p {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
			total++
		}
	}
	return total == n
}

func sizesBalanced(parts [][]int, slack int) bool {
	minS, maxS := len(parts[0]), len(parts[0])
	for _, p := range parts {
		if len(p) < minS {
			minS = len(p)
		}
		if len(p) > maxS {
			maxS = len(p)
		}
	}
	return maxS-minS <= slack
}

func TestPartitionByClassRestrictsClasses(t *testing.T) {
	d := Generate(CIFAR10Like, 1000, 6)
	for _, k := range []int{2, 5, 10} {
		parts := PartitionByClass(d, 10, k, rand.New(rand.NewSource(1)))
		for c, p := range parts {
			classes := Classes(d, p)
			if len(classes) > k {
				t.Fatalf("k=%d: client %d sees %d classes", k, c, len(classes))
			}
			if len(p) == 0 {
				t.Fatalf("k=%d: client %d empty", k, c)
			}
		}
		// All classes covered across population.
		covered := make(map[int]bool)
		for _, p := range parts {
			for _, cl := range Classes(d, p) {
				covered[cl] = true
			}
		}
		if len(covered) != d.NumClasses {
			t.Fatalf("k=%d: only %d/%d classes covered", k, len(covered), d.NumClasses)
		}
	}
}

func TestPartitionByClassEqualSizes(t *testing.T) {
	d := Generate(CIFAR10Like, 1000, 7)
	parts := PartitionByClass(d, 10, 5, rand.New(rand.NewSource(2)))
	want := len(parts[0])
	for _, p := range parts {
		if len(p) != want {
			t.Fatalf("unequal client sizes: %d vs %d", len(p), want)
		}
	}
}

func TestPartitionShardsAtMostKClasses(t *testing.T) {
	d := Generate(MNISTLike, 1000, 8)
	parts := PartitionShards(d, 50, 2, rand.New(rand.NewSource(1)))
	if !checkDisjointComplete(parts, 1000) {
		t.Fatal("shard partition must be disjoint and complete")
	}
	for c, p := range parts {
		// 2 shards → at most 3 classes (a shard can straddle a boundary);
		// McMahan's construction gives ≤2 in the exact-divisor case, which
		// holds here (1000 samples, 100 shards of 10, 100 per class).
		if got := len(Classes(d, p)); got > 2 {
			t.Fatalf("client %d holds %d classes, want ≤2", c, got)
		}
	}
}

func TestPartitionQuantityFractions(t *testing.T) {
	n := 10000
	parts := PartitionQuantity(n, 50, QuantityFractions, rand.New(rand.NewSource(1)))
	perGroup := 10
	for gi, f := range QuantityFractions {
		got := 0
		for c := 0; c < perGroup; c++ {
			got += len(parts[gi*perGroup+c])
		}
		want := f * float64(n)
		if math.Abs(float64(got)-want) > want*0.02+float64(perGroup) {
			t.Fatalf("group %d received %d samples, want ≈%v", gi, got, want)
		}
	}
	// Within a group, clients are equal.
	for gi := range QuantityFractions {
		first := len(parts[gi*perGroup])
		for c := 1; c < perGroup; c++ {
			if len(parts[gi*perGroup+c]) != first {
				t.Fatalf("group %d unequal within group", gi)
			}
		}
	}
}

func TestPartitionQuantityBadFracsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("fractions summing to 2 did not panic")
		}
	}()
	PartitionQuantity(100, 10, []float64{1, 1}, rand.New(rand.NewSource(1)))
}

func TestPartitionClassQuantityCombines(t *testing.T) {
	d := Generate(CIFAR10Like, 5000, 9)
	parts := PartitionClassQuantity(d, 50, 5, QuantityFractions, rand.New(rand.NewSource(1)))
	perGroup := 10
	// Class restriction holds.
	for c, p := range parts {
		if got := len(Classes(d, p)); got > 5 {
			t.Fatalf("client %d holds %d classes", c, got)
		}
	}
	// Group 4 (30%) clients hold ~3x the data of group 0 (10%) clients.
	g0 := len(parts[0])
	g4 := len(parts[4*perGroup])
	ratio := float64(g4) / float64(g0)
	if ratio < 2.4 || ratio > 3.6 {
		t.Fatalf("quantity ratio group4/group0 = %v, want ≈3", ratio)
	}
}

func TestTestSubsetForClasses(t *testing.T) {
	d := Generate(CIFAR10Like, 500, 10)
	sub := TestSubsetForClasses(d, []int{0, 1}, 30, rand.New(rand.NewSource(1)))
	if sub.Len() == 0 || sub.Len() > 30 {
		t.Fatalf("subset len = %d", sub.Len())
	}
	for _, y := range sub.Y {
		if y != 0 && y != 1 {
			t.Fatalf("subset contains class %d", y)
		}
	}
}

func TestApplyFeatureSkewShiftsMean(t *testing.T) {
	d := Generate(MNISTLike, 300, 11)
	before := d.X.Mean()
	ApplyFeatureSkew(d, rand.New(rand.NewSource(42)), 2.0)
	after := d.X.Mean()
	if math.Abs(after-before) < 1e-6 {
		t.Fatal("feature skew had no effect")
	}
}

func TestClassIndicesConsistent(t *testing.T) {
	d := Generate(MNISTLike, 100, 12)
	by := d.ClassIndices()
	total := 0
	for c, idx := range by {
		total += len(idx)
		for _, i := range idx {
			if d.Y[i] != c {
				t.Fatalf("ClassIndices wrong: row %d has class %d, listed under %d", i, d.Y[i], c)
			}
		}
	}
	if total != d.Len() {
		t.Fatalf("ClassIndices covers %d rows, want %d", total, d.Len())
	}
}
