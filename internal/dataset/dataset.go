// Package dataset provides the synthetic datasets and federated partitioners
// used to reproduce the TiFL evaluation offline.
//
// The paper trains on MNIST, Fashion-MNIST, CIFAR-10 and FEMNIST. Those
// images are unavailable in this offline reproduction, so we substitute
// class-conditional Gaussian feature datasets with the same class counts
// (see DESIGN.md §2): each class has one or more prototype vectors and
// samples are prototypes plus noise. What the paper's experiments measure —
// convergence per round, accuracy loss from class-skewed (non-IID) clients,
// and accuracy loss from data-poor tiers — depends on the *partitioning* of
// data across clients, which this package reproduces exactly: IID,
// non-IID(k) equal-class partitions, McMahan-style shard partitions, and the
// 10/15/20/25/30% data-quantity split.
package dataset

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/tensor"
)

// Dataset is a labeled feature dataset. X has shape (N, Dim); Y holds the
// integer class of each row. When SampleShape is set (e.g. [1 14 14] for
// image data), InputTensor and Batches present rows reshaped to
// (N, SampleShape...) so convolutional models consume them directly; the
// flat layout stays canonical for subsetting and aggregation.
type Dataset struct {
	X           *tensor.Tensor
	Y           []int
	NumClasses  int
	SampleShape []int
}

// InputTensor returns X shaped for model input: (N, Dim) for flat data,
// (N, SampleShape...) otherwise. The returned tensor shares X's storage.
func (d *Dataset) InputTensor() *tensor.Tensor {
	if len(d.SampleShape) == 0 {
		return d.X
	}
	shape := append([]int{d.Len()}, d.SampleShape...)
	return d.X.Reshape(shape...)
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Dim returns the feature dimension.
func (d *Dataset) Dim() int {
	if d.X.Rank() != 2 {
		panic(fmt.Sprintf("dataset: X has shape %v, want rank 2", d.X.Shape()))
	}
	return d.X.Dim(1)
}

// Subset returns a new dataset holding copies of the rows at idx.
func (d *Dataset) Subset(idx []int) *Dataset {
	dim := d.Dim()
	x := tensor.New(len(idx), dim)
	y := make([]int, len(idx))
	for i, j := range idx {
		copy(x.Data[i*dim:(i+1)*dim], d.X.Data[j*dim:(j+1)*dim])
		y[i] = d.Y[j]
	}
	return &Dataset{X: x, Y: y, NumClasses: d.NumClasses, SampleShape: d.SampleShape}
}

// Split partitions d into a training set with ceil(frac·N) samples and a
// test set with the remainder, shuffled by rng.
func (d *Dataset) Split(frac float64, rng *rand.Rand) (train, test *Dataset) {
	n := d.Len()
	idx := rng.Perm(n)
	cut := int(frac*float64(n) + 0.9999)
	if cut > n {
		cut = n
	}
	return d.Subset(idx[:cut]), d.Subset(idx[cut:])
}

// Concat returns the concatenation of the given datasets. All inputs must
// share the feature dimension and class count.
func Concat(parts ...*Dataset) *Dataset {
	if len(parts) == 0 {
		panic("dataset: Concat of nothing")
	}
	dim := parts[0].Dim()
	total := 0
	for _, p := range parts {
		if p.Dim() != dim || p.NumClasses != parts[0].NumClasses {
			panic("dataset: Concat of incompatible datasets")
		}
		total += p.Len()
	}
	x := tensor.New(total, dim)
	y := make([]int, 0, total)
	off := 0
	for _, p := range parts {
		copy(x.Data[off*dim:], p.X.Data)
		y = append(y, p.Y...)
		off += p.Len()
	}
	return &Dataset{X: x, Y: y, NumClasses: parts[0].NumClasses, SampleShape: parts[0].SampleShape}
}

// Batches yields mini-batch index slices covering a shuffled permutation of
// the dataset; the final batch may be smaller. It calls fn for each batch
// with a view (copy) of the batch rows.
func (d *Dataset) Batches(batchSize int, rng *rand.Rand, fn func(x *tensor.Tensor, y []int)) {
	n := d.Len()
	if n == 0 {
		return
	}
	if batchSize <= 0 || batchSize > n {
		batchSize = n
	}
	perm := rng.Perm(n)
	dim := d.Dim()
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		bx := tensor.New(hi-lo, dim)
		by := make([]int, hi-lo)
		for i, j := range perm[lo:hi] {
			copy(bx.Data[i*dim:(i+1)*dim], d.X.Data[j*dim:(j+1)*dim])
			by[i] = d.Y[j]
		}
		if len(d.SampleShape) > 0 {
			bx = bx.Reshape(append([]int{hi - lo}, d.SampleShape...)...)
		}
		fn(bx, by)
	}
}

// BatchBuf holds reusable mini-batch staging for BatchesBuf: the batch rows,
// labels, and tensor headers are kept across batches (and across calls), so
// steady-state training epochs allocate only the shuffle permutation. The
// zero value is ready to use; a BatchBuf must not be shared between
// concurrent iterations.
type BatchBuf struct {
	data  []float64
	y     []int
	view  *tensor.Tensor
	shape []int
}

// BatchesBuf is Batches with caller-owned staging: it visits exactly the
// same batches in exactly the same order (the rng draws are identical), but
// the tensor handed to fn reuses buf's storage. fn must not retain x or y
// beyond the call — the next batch overwrites them.
func (d *Dataset) BatchesBuf(batchSize int, rng *rand.Rand, buf *BatchBuf, fn func(x *tensor.Tensor, y []int)) {
	n := d.Len()
	if n == 0 {
		return
	}
	if batchSize <= 0 || batchSize > n {
		batchSize = n
	}
	perm := rng.Perm(n)
	dim := d.Dim()
	if cap(buf.data) < batchSize*dim {
		buf.data = make([]float64, batchSize*dim)
	}
	if cap(buf.y) < batchSize {
		buf.y = make([]int, batchSize)
	}
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		b := hi - lo
		bx := buf.data[:b*dim]
		by := buf.y[:b]
		for i, j := range perm[lo:hi] {
			copy(bx[i*dim:(i+1)*dim], d.X.Data[j*dim:(j+1)*dim])
			by[i] = d.Y[j]
		}
		if len(d.SampleShape) > 0 {
			buf.shape = append(buf.shape[:0], b)
			buf.shape = append(buf.shape, d.SampleShape...)
		} else {
			buf.shape = append(buf.shape[:0], b, dim)
		}
		buf.view = tensor.AliasSlice(buf.view, bx, buf.shape)
		fn(buf.view, by)
	}
}

// ClassCounts returns the number of samples per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses)
	for _, c := range d.Y {
		counts[c]++
	}
	return counts
}

// ClassIndices returns, for each class, the row indices holding that class.
func (d *Dataset) ClassIndices() [][]int {
	by := make([][]int, d.NumClasses)
	for i, c := range d.Y {
		by[c] = append(by[c], i)
	}
	return by
}

// Spec describes a synthetic dataset family. The four predefined specs
// mirror the paper's four benchmarks in class count and relative difficulty
// (CIFAR10Like has more sub-modes per class and more noise — "richer
// features" in the paper's words — so it converges slower, like real
// CIFAR-10 vs MNIST).
type Spec struct {
	Name         string
	NumClasses   int
	Dim          int
	NoiseStd     float64 // per-feature sample noise
	PrototypeStd float64 // scale of class prototype vectors
	SubModes     int     // Gaussian sub-modes per class (feature richness)
}

// Predefined dataset specs mirroring the paper's benchmarks.
var (
	MNISTLike        = Spec{Name: "mnist", NumClasses: 10, Dim: 32, NoiseStd: 0.6, PrototypeStd: 1.0, SubModes: 1}
	FashionMNISTLike = Spec{Name: "fmnist", NumClasses: 10, Dim: 32, NoiseStd: 0.8, PrototypeStd: 1.0, SubModes: 2}
	CIFAR10Like      = Spec{Name: "cifar10", NumClasses: 10, Dim: 48, NoiseStd: 1.1, PrototypeStd: 1.0, SubModes: 3}
	FEMNISTLike      = Spec{Name: "femnist", NumClasses: 62, Dim: 64, NoiseStd: 0.9, PrototypeStd: 1.0, SubModes: 2}
)

// prototypes returns the fixed per-class (and per-sub-mode) prototype
// vectors for a spec. They depend only on the spec name, so train and test
// splits generated separately share the same class geometry.
func (s Spec) prototypes() []*tensor.Tensor {
	h := fnv.New64a()
	h.Write([]byte(s.Name))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	protos := make([]*tensor.Tensor, s.NumClasses*s.SubModes)
	for i := range protos {
		protos[i] = tensor.RandNormal(rng, 0, s.PrototypeStd, s.Dim)
	}
	return protos
}

// Generate samples n points from the spec's class-conditional mixture with
// uniformly distributed classes, using the given seed.
func Generate(s Spec, n int, seed int64) *Dataset {
	if s.SubModes < 1 {
		panic(fmt.Sprintf("dataset: spec %q has SubModes %d", s.Name, s.SubModes))
	}
	rng := rand.New(rand.NewSource(seed))
	protos := s.prototypes()
	x := tensor.New(n, s.Dim)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % s.NumClasses // uniform class balance
		mode := rng.Intn(s.SubModes)
		p := protos[c*s.SubModes+mode]
		row := x.Data[i*s.Dim : (i+1)*s.Dim]
		for j := range row {
			row[j] = p.Data[j] + s.NoiseStd*rng.NormFloat64()
		}
		y[i] = c
	}
	// Shuffle so class order carries no information.
	perm := rng.Perm(n)
	return (&Dataset{X: x, Y: y, NumClasses: s.NumClasses}).Subset(perm)
}

// ApplyFeatureSkew adds a fixed random bias vector (std `std`) to every
// sample, in place. Used to model per-writer feature shift in FEMNIST-like
// populations: each client's data is the global distribution plus a private
// offset, giving non-IID *feature* heterogeneity on top of class skew.
func ApplyFeatureSkew(d *Dataset, rng *rand.Rand, std float64) {
	dim := d.Dim()
	bias := make([]float64, dim)
	for j := range bias {
		bias[j] = std * rng.NormFloat64()
	}
	for i := 0; i < d.Len(); i++ {
		row := d.X.Data[i*dim : (i+1)*dim]
		for j := range row {
			row[j] += bias[j]
		}
	}
}
