package dataset

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// BatchesBuf must visit exactly the batches Batches visits — same rng
// consumption, same rows, same labels — while reusing one staging buffer.
func TestBatchesBufMatchesBatches(t *testing.T) {
	d := Generate(CIFAR10Like, 53, 1) // odd size: final partial batch
	type batch struct {
		x []float64
		y []int
	}
	var want []batch
	d.Batches(10, rand.New(rand.NewSource(9)), func(x *tensor.Tensor, y []int) {
		want = append(want, batch{append([]float64(nil), x.Data...), append([]int(nil), y...)})
	})
	var buf BatchBuf
	i := 0
	d.BatchesBuf(10, rand.New(rand.NewSource(9)), &buf, func(x *tensor.Tensor, y []int) {
		if i >= len(want) {
			t.Fatal("BatchesBuf yielded more batches than Batches")
		}
		w := want[i]
		if len(x.Data) != len(w.x) || len(y) != len(w.y) {
			t.Fatalf("batch %d sizes %d/%d, want %d/%d", i, len(x.Data), len(y), len(w.x), len(w.y))
		}
		for j := range w.x {
			if math.Float64bits(x.Data[j]) != math.Float64bits(w.x[j]) {
				t.Fatalf("batch %d row data differs at %d", i, j)
			}
		}
		for j := range w.y {
			if y[j] != w.y[j] {
				t.Fatalf("batch %d label %d = %d, want %d", i, j, y[j], w.y[j])
			}
		}
		i++
	})
	if i != len(want) {
		t.Fatalf("BatchesBuf yielded %d batches, want %d", i, len(want))
	}
}

func TestBatchesBufSampleShape(t *testing.T) {
	d := GenerateImages("mnist", 10, 1, 6, 6, 23, 0.1, 1)
	var buf BatchBuf
	d.BatchesBuf(5, rand.New(rand.NewSource(2)), &buf, func(x *tensor.Tensor, y []int) {
		if x.Rank() != 4 || x.Dim(1) != 1 || x.Dim(2) != 6 || x.Dim(3) != 6 {
			t.Fatalf("shaped batch = %v", x.Shape())
		}
		if x.Dim(0) != len(y) {
			t.Fatalf("batch rows %d != labels %d", x.Dim(0), len(y))
		}
	})
}

func TestBatchesBufSteadyStateAllocs(t *testing.T) {
	d := Generate(CIFAR10Like, 60, 1)
	var buf BatchBuf
	rng := rand.New(rand.NewSource(3))
	d.BatchesBuf(10, rng, &buf, func(x *tensor.Tensor, y []int) {})
	avg := testing.AllocsPerRun(20, func() {
		d.BatchesBuf(10, rng, &buf, func(x *tensor.Tensor, y []int) {})
	})
	// Only the shuffle permutation (rng.Perm) may allocate per epoch.
	if avg > 3 {
		t.Fatalf("BatchesBuf allocates %v per epoch, want ≤ 3 (the shuffle permutation)", avg)
	}
}

func TestBatchesBufEmptyDataset(t *testing.T) {
	d := &Dataset{X: tensor.New(0, 4), Y: nil, NumClasses: 2}
	var buf BatchBuf
	d.BatchesBuf(10, rand.New(rand.NewSource(1)), &buf, func(x *tensor.Tensor, y []int) {
		t.Fatal("empty dataset must yield no batches")
	})
}
