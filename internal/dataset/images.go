package dataset

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/tensor"
)

// GenerateImages produces an image-shaped synthetic dataset for the
// convolutional models (nn.NewPaperMNISTCNN / NewPaperCIFARCNN): each class
// has a spatially smooth prototype image (a coarse random grid upsampled
// bilinearly, so nearby pixels correlate like real images) and samples are
// prototypes plus pixel noise. SampleShape is set to (channels, h, w) so
// flcore trains conv models on it directly.
func GenerateImages(name string, numClasses, channels, h, w, n int, noise float64, seed int64) *Dataset {
	if numClasses < 2 || channels < 1 || h < 4 || w < 4 {
		panic(fmt.Sprintf("dataset: bad image spec %d classes %dx%dx%d", numClasses, channels, h, w))
	}
	protos := imagePrototypes(name, numClasses, channels, h, w)
	rng := rand.New(rand.NewSource(seed))
	dim := channels * h * w
	x := tensor.New(n, dim)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % numClasses
		row := x.Data[i*dim : (i+1)*dim]
		p := protos[c]
		for j := range row {
			row[j] = p[j] + noise*rng.NormFloat64()
		}
		y[i] = c
	}
	d := &Dataset{X: x, Y: y, NumClasses: numClasses, SampleShape: []int{channels, h, w}}
	return d.Subset(rng.Perm(n))
}

// imagePrototypes builds per-class smooth prototype images, deterministic
// in the dataset name so train/test splits share class geometry.
func imagePrototypes(name string, numClasses, channels, h, w int) [][]float64 {
	hh := fnv.New64a()
	hh.Write([]byte("img:" + name))
	rng := rand.New(rand.NewSource(int64(hh.Sum64())))
	const coarse = 4
	out := make([][]float64, numClasses)
	for c := range out {
		img := make([]float64, channels*h*w)
		for ch := 0; ch < channels; ch++ {
			grid := make([]float64, coarse*coarse)
			for i := range grid {
				grid[i] = rng.NormFloat64()
			}
			// Bilinear upsample the coarse grid to h×w.
			for yy := 0; yy < h; yy++ {
				fy := float64(yy) / float64(h-1) * float64(coarse-1)
				y0 := int(fy)
				y1 := y0 + 1
				if y1 >= coarse {
					y1 = coarse - 1
				}
				ty := fy - float64(y0)
				for xx := 0; xx < w; xx++ {
					fx := float64(xx) / float64(w-1) * float64(coarse-1)
					x0 := int(fx)
					x1 := x0 + 1
					if x1 >= coarse {
						x1 = coarse - 1
					}
					tx := fx - float64(x0)
					v := (1-ty)*((1-tx)*grid[y0*coarse+x0]+tx*grid[y0*coarse+x1]) +
						ty*((1-tx)*grid[y1*coarse+x0]+tx*grid[y1*coarse+x1])
					img[(ch*h+yy)*w+xx] = v
				}
			}
		}
		out[c] = img
	}
	return out
}
