package experiments

import (
	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/metrics"
)

// RunTable2 reproduces Table 2: the training-time estimation model (Eq. 6)
// against measured training times for the slow / uniform / random / fast
// static policies under resource heterogeneity. The paper reports MAPE
// between 0.4% and 5%; the estimator's only error sources are latency
// jitter and per-round sampling of clients within a tier.
func RunTable2(s Scale) *Output {
	sc := s.newScenario("table2", cifarSpec(), hetResource, 0)
	runs := []policyRun{
		staticRun(core.PolicySlow),
		staticRun(core.PolicyUniform),
		staticRun(core.PolicyRandom),
		staticRun(core.PolicyFast),
	}
	tiers, _ := sc.tiers(s)
	lat := core.TierLatencies(tiers)
	order, results := s.execute(sc, runs)

	tab := metrics.Table{
		Title:   "Table 2: estimated vs actual training time",
		Columns: []string{"policy", "estimated [s]", "actual [s]", "MAPE [%]"},
	}
	var rows []estimate.Row
	for _, name := range order {
		var probs []float64
		for _, r := range runs {
			if r.name == name {
				probs = r.static.Probs
			}
		}
		est := estimate.TrainingTime(lat, probs, s.Rounds)
		act := results[name].TotalTime
		row := estimate.NewRow(name, est, act)
		rows = append(rows, row)
		tab.AddRow(row.Policy, row.Estimated, row.Actual, row.MAPE)
	}
	out := &Output{
		ID:     "table2",
		Title:  "Training-time estimation model validation (Eq. 6 / Eq. 7)",
		Tables: []metrics.Table{tab},
	}
	// Keep the raw rows available to tests via Series (x = index, y = MAPE).
	mape := metrics.Series{Name: "mape"}
	for i, r := range rows {
		mape.X = append(mape.X, float64(i))
		mape.Y = append(mape.Y, r.MAPE)
	}
	out.Series = map[string][]metrics.Series{"mape": {mape}}
	return out
}
