package experiments

import (
	"strconv"

	"repro/internal/metrics"
)

// RunFig3 reproduces Figure 3: the five selection policies on
// CIFAR-10-like data under (column 1) resource heterogeneity and (column 2)
// data-quantity heterogeneity. Artifacts per column: total training time for
// the round budget (bars), accuracy over rounds, and accuracy over
// simulated wall-clock time.
//
// Shapes to reproduce: fast ≈ 11× faster than vanilla, uniform > 6× faster
// (col 1); ~3× speedups with `fast` losing accuracy because tier 1 holds
// only 10% of the data (col 2).
func RunFig3(s Scale) *Output {
	out := &Output{
		ID:     "fig3",
		Title:  "Policy comparison on CIFAR-10: resource (col 1) and data-quantity (col 2) heterogeneity",
		Series: map[string][]metrics.Series{},
	}
	for _, col := range []struct {
		key string
		het heterogeneity
	}{
		{"resource", hetResource},
		{"quantity", hetQuantity},
	} {
		sc := s.newScenario("fig3-"+col.key, cifarSpec(), col.het, 0)
		order, results := s.execute(sc, s.cifarPolicyRuns())
		chart, tab := timeBars("Fig 3 "+col.key+": training time for "+strconv.Itoa(s.Rounds)+" rounds", order, results)
		out.Charts = append(out.Charts, chart)
		out.Tables = append(out.Tables, tab, finalAccTable("Fig 3 "+col.key+": final accuracy", order, results))
		out.Series["accuracy_over_rounds_"+col.key] = accuracySeries(order, results)
		out.Series["accuracy_over_time_"+col.key] = timeSeries(order, results)
	}
	return out
}
