package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Fig8Levels are the classes-per-client levels of Figure 8.
var Fig8Levels = []int{2, 5, 10}

// RunFig8 reproduces Figure 8: vanilla vs uniform vs adaptive (TiFL)
// accuracy over rounds at 2, 5, and 10 classes per client with fixed
// resources (2 CPUs each). Shape to reproduce: adaptive consistently
// matches or beats vanilla and uniform at every non-IID level.
func RunFig8(s Scale) *Output {
	out := &Output{
		ID:     "fig8",
		Title:  "Adaptive robustness across non-IID levels (fixed resources)",
		Series: map[string][]metrics.Series{},
	}
	runs := []policyRun{vanillaRun(), staticRun(core.PolicyUniform), s.adaptiveRun()}
	tab := metrics.Table{Title: "Fig 8: final accuracy", Columns: []string{"classes/client", "vanilla", "uniform", "TiFL"}}
	for _, level := range Fig8Levels {
		sc := s.newScenario(fmt.Sprintf("fig8-%d", level), cifarSpec(), hetNonIID, level)
		order, results := s.execute(sc, runs)
		key := fmt.Sprintf("accuracy_over_rounds_%dclass", level)
		out.Series[key] = accuracySeries(order, results)
		tab.AddRow(fmt.Sprintf("%d", level), results["vanilla"].FinalAcc, results["uniform"].FinalAcc, results["TiFL"].FinalAcc)
	}
	out.Tables = append(out.Tables, tab)
	return out
}
