package experiments

import (
	"strconv"

	"repro/internal/metrics"
)

// RunFig6 reproduces Figure 6: CIFAR-10-like data under (column 1) resource
// plus non-IID(5) heterogeneity with equal data quantities, and (column 2)
// resource plus data-quantity plus non-IID(5) heterogeneity. Shapes to
// reproduce: training times mirror the resource-only case (non-IID-ness
// does not change round time); in column 2 `fast` degrades hardest because
// quantity skew amplifies the class bias of its only tier.
func RunFig6(s Scale) *Output {
	out := &Output{
		ID:     "fig6",
		Title:  "CIFAR-10 with combined heterogeneity (resource+non-IID; resource+quantity+non-IID)",
		Series: map[string][]metrics.Series{},
	}
	for _, col := range []struct {
		key string
		het heterogeneity
	}{
		{"resource_noniid", hetResourceNonIID},
		{"combine", hetCombine},
	} {
		sc := s.newScenario("fig6-"+col.key, cifarSpec(), col.het, 5)
		order, results := s.execute(sc, s.cifarPolicyRuns())
		chart, tab := timeBars("Fig 6 "+col.key+": training time for "+strconv.Itoa(s.Rounds)+" rounds", order, results)
		out.Charts = append(out.Charts, chart)
		out.Tables = append(out.Tables, tab, finalAccTable("Fig 6 "+col.key+": final accuracy", order, results))
		out.Series["accuracy_over_rounds_"+col.key] = accuracySeries(order, results)
		out.Series["accuracy_over_time_"+col.key] = timeSeries(order, results)
	}
	return out
}
