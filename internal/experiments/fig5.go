package experiments

import (
	"strconv"

	"repro/internal/dataset"
	"repro/internal/metrics"
)

// RunFig5 reproduces Figure 5: MNIST (column 1) and Fashion-MNIST
// (column 2) under resource plus data-quantity heterogeneity, comparing
// vanilla / uniform / fast1 / fast2 / fast3 — the sensitivity ladder that
// squeezes the slowest tier's probability from 0.1 down to 0. Shapes to
// reproduce: more aggressive fast policies finish sooner; all stay close to
// vanilla's accuracy except fast3, which ignores tier 5's data entirely.
func RunFig5(s Scale) *Output {
	out := &Output{
		ID:     "fig5",
		Title:  "MNIST and Fashion-MNIST with resource plus data heterogeneity",
		Series: map[string][]metrics.Series{},
	}
	for _, spec := range []dataset.Spec{mnistSpec(), fmnistSpec()} {
		sc := s.newScenario("fig5-"+spec.Name, spec, hetResourceQuantity, 0)
		order, results := s.execute(sc, s.mnistPolicyRuns())
		chart, tab := timeBars("Fig 5 "+spec.Name+": training time for "+strconv.Itoa(s.Rounds)+" rounds", order, results)
		out.Charts = append(out.Charts, chart)
		out.Tables = append(out.Tables, tab, finalAccTable("Fig 5 "+spec.Name+": final accuracy", order, results))
		out.Series["accuracy_over_rounds_"+spec.Name] = accuracySeries(order, results)
	}
	return out
}
