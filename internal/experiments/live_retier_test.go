package experiments

import (
	"testing"
)

func TestExtensionLiveRetierShape(t *testing.T) {
	out := RunExtensionLiveRetier(tinyScale())
	if out.ID != "ext_live_retier" || len(out.Tables) != 1 {
		t.Fatalf("output shape: id=%q tables=%d", out.ID, len(out.Tables))
	}
	if len(out.Tables[0].Rows) != 2 {
		t.Fatalf("rows = %d, want static + live", len(out.Tables[0].Rows))
	}
	if len(out.Series["accuracy_over_time"]) != 2 {
		t.Fatalf("series = %d", len(out.Series["accuracy_over_time"]))
	}
}

func TestLiveRetierDeterministic(t *testing.T) {
	a := LiveRetierComparison(tinyScale())
	b := LiveRetierComparison(tinyScale())
	if a.Managed.Retiers != b.Managed.Retiers || a.Managed.Migrations != b.Managed.Migrations ||
		a.Static.FinalAcc != b.Static.FinalAcc || a.Managed.FinalAcc != b.Managed.FinalAcc {
		t.Fatalf("identical runs diverged: %+v vs %+v",
			[4]float64{float64(a.Managed.Retiers), float64(a.Managed.Migrations), a.Static.FinalAcc, a.Managed.FinalAcc},
			[4]float64{float64(b.Managed.Retiers), float64(b.Managed.Migrations), b.Static.FinalAcc, b.Managed.FinalAcc})
	}
}

// TestLiveRetierAcceptance is the extension's headline claim: when half
// the clients' resources collapse mid-run, the Manager-driven tiered-async
// run re-tiers at least once and reaches the shared accuracy target in
// less simulated time than the static-tier run on the same seed.
// Everything is seeded, so the check is deterministic.
func TestLiveRetierAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run drift comparison skipped in short mode")
	}
	out := LiveRetierComparison(SmallScale())
	if out.Managed.Retiers < 1 || out.Managed.Migrations < 1 {
		t.Fatalf("live run never re-tiered: retiers=%d migrations=%d", out.Managed.Retiers, out.Managed.Migrations)
	}
	if out.Static.Retiers != 0 {
		t.Fatalf("static arm re-tiered %d times", out.Static.Retiers)
	}
	if out.ManagedTime >= out.StaticTime {
		t.Errorf("live re-tiering reached %.4f accuracy in %.1fs, static in %.1fs — no speedup",
			out.TargetAcc, out.ManagedTime, out.StaticTime)
	}
	// The drifted fast clients must actually leave the fast tiers: the
	// managed run's fast-tier commit rate should beat the static run's.
	if out.Managed.Commits[0] <= out.Static.Commits[0] {
		t.Errorf("managed fast tier committed %d rounds, static %d — migration bought nothing",
			out.Managed.Commits[0], out.Static.Commits[0])
	}
}

func TestExtensionStalenessShape(t *testing.T) {
	out := RunExtensionStaleness(tinyScale())
	if out.ID != "ext_staleness" || len(out.Tables) != 1 {
		t.Fatalf("output shape: id=%q tables=%d", out.ID, len(out.Tables))
	}
	if len(out.Tables[0].Rows) != 6 {
		t.Fatalf("rows = %d, want 6 arms", len(out.Tables[0].Rows))
	}
}

func TestStalenessSweepArms(t *testing.T) {
	arms := StalenessSweep(tinyScale())
	if len(arms) != 6 {
		t.Fatalf("%d arms", len(arms))
	}
	for _, a := range arms {
		if a.Commits == 0 {
			t.Fatalf("arm %+v committed nothing", a)
		}
		if a.FinalAcc < 0 || a.FinalAcc > 1 {
			t.Fatalf("arm %+v accuracy out of range", a)
		}
	}
	// All arms share the budget, so their commit counts must agree: the
	// mixing rate shapes the model, not the event schedule.
	for _, a := range arms[1:] {
		if a.Commits != arms[0].Commits {
			t.Fatalf("commit schedules diverge across arms: %+v", arms)
		}
	}
}
