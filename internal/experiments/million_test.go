package experiments

import (
	"testing"
)

// TestMillionRunPopulationScale is the acceptance run for the event-driven
// scale extension: the full 1e6-client population (50k under -short)
// completes a ≥20-commit run with resident client state bounded by the
// cohort size.
func TestMillionRunPopulationScale(t *testing.T) {
	s := SmallScale()
	s.Population = 1_000_000
	if testing.Short() {
		s.Population = 50_000
	}
	out := MillionRun(s)

	if out.Population != s.Population {
		t.Fatalf("ran population %d, want %d", out.Population, s.Population)
	}
	if out.Commits < 20 {
		t.Fatalf("only %d commits; the scale run must complete at least 20", out.Commits)
	}
	if len(out.CommitsPerTier) != 5 {
		t.Fatalf("commit split %v, want 5 tiers", out.CommitsPerTier)
	}
	for tier, c := range out.CommitsPerTier {
		if c == 0 {
			t.Fatalf("tier %d never committed: %v", tier, out.CommitsPerTier)
		}
	}
	if out.SimTime > millionDuration {
		t.Fatalf("simulated time %v exceeds the budget %v", out.SimTime, millionDuration)
	}
	// THE memory contract: client state never scales with N. The engine
	// acquires one cohort at a time, so the high-water mark is the cohort
	// size, and nothing stays resident after the run.
	if out.PeakLive > s.ClientsPerRound {
		t.Fatalf("peak resident clients %d exceeds cohort size %d at population %d",
			out.PeakLive, s.ClientsPerRound, s.Population)
	}
	if out.LiveAfter != 0 {
		t.Fatalf("%d clients still resident after the run", out.LiveAfter)
	}
	if out.Residuals != 0 {
		t.Fatalf("uncompressed run tracked %d residuals", out.Residuals)
	}
	if out.Materialized < int64(out.ClientUpdates) {
		t.Fatalf("materialized %d clients for %d committed updates", out.Materialized, out.ClientUpdates)
	}
	if out.BytesPerClientUpdate <= 0 || out.UplinkBytes <= 0 {
		t.Fatalf("uplink accounting empty: %d total, %v per update", out.UplinkBytes, out.BytesPerClientUpdate)
	}
	if out.RoundsPerSec <= 0 {
		t.Fatalf("rounds/sec %v", out.RoundsPerSec)
	}
}

// TestRunExtensionMillionOutput smoke-checks the runner wiring at a small
// population: registered ID, one table, finite metrics.
func TestRunExtensionMillionOutput(t *testing.T) {
	s := SmallScale()
	s.Population = 5_000
	out := RunExtensionMillion(s)
	if out.ID != "ext_million" {
		t.Fatalf("output ID %q", out.ID)
	}
	if len(out.Tables) != 1 || len(out.Tables[0].Rows) != 1 {
		t.Fatalf("unexpected table shape: %+v", out.Tables)
	}
	if ByID("ext_million") == nil {
		t.Fatal("ext_million not registered in the runner list")
	}
}
