package experiments

import (
	"repro/internal/core"
	"repro/internal/flcore"
	"repro/internal/metrics"
)

// ChurnArm is one churn rate's measured outcome in the worker-flap sweep.
type ChurnArm struct {
	// Rate is the per-(round, client) flap probability.
	Rate float64
	// FinalAcc is the run's final global test accuracy.
	FinalAcc float64
	// Commits is the number of committed tier rounds inside the shared
	// simulated time budget; SimTime the consumed budget.
	Commits int
	SimTime float64
	// UplinkBytes / DownlinkBytes is the wire traffic actually charged —
	// flapped members move no bytes, so the uplink total is exactly the
	// surviving participations' encoded updates.
	UplinkBytes, DownlinkBytes int64
}

// ChurnSweep runs FedAT-style tiered-async training on the Combine
// scenario once per churn rate in {0, 0.1, 0.2, 0.3} under identical
// seeds, clients, tiers, and simulated time budgets, and returns each
// arm's final accuracy and wire traffic. A flapped cohort member models a
// worker whose connection dropped when its tier round dispatched: its
// update never reaches the round's FedAvg (the aggregate averages the
// survivors), it is charged no wire bytes, and a round whose whole cohort
// flapped consumes its round index and redraws — the exact failure
// semantics the socket runtime implements with dead-member skipping and
// empty-round retries. Exported separately from RunExtensionChurn so the
// acceptance test can assert on the raw numbers: the tiered commit rule
// is churn-robust (final accuracy within a point of the no-churn run at
// moderate rates) and the accounting exact (every counted update comes
// from a member that actually survived its round).
func ChurnSweep(s Scale) []ChurnArm {
	sc := s.newScenario("ext-churn", cifarSpec(), hetCombine, 5)
	tiers, _ := sc.tiers(s)
	duration := 2.5 * float64(s.Rounds)
	base := s.engineConfig(sc.spec)

	run := func(rate float64) ChurnArm {
		res := flcore.RunTieredAsync(flcore.TieredAsyncConfig{
			Duration: duration, ClientsPerRound: s.ClientsPerRound,
			TierWeight:   core.FedATWeights(),
			EvalInterval: duration, Seed: s.Seed,
			BatchSize: 10, LocalEpochs: 1,
			Model: base.Model, Optimizer: base.Optimizer, Latency: CommLatencyModel,
			EvalBatch: 256, ChurnRate: rate,
		}, core.TierMembers(tiers), sc.clients(s), sc.test)
		return ChurnArm{
			Rate: rate, FinalAcc: res.FinalAcc,
			Commits: len(res.TierRounds), SimTime: res.TotalTime,
			UplinkBytes: res.UplinkBytes, DownlinkBytes: res.DownlinkBytes,
		}
	}

	var arms []ChurnArm
	for _, rate := range []float64{0, 0.1, 0.2, 0.3} {
		arms = append(arms, run(rate))
	}
	return arms
}

// RunExtensionChurn is the worker-churn robustness extension experiment:
// the ChurnSweep rendered as a table (accuracy, committed rounds, wire
// traffic vs the no-churn baseline). FedAT's per-tier synchronous rounds
// degrade gracefully under seeded worker flaps — a smaller surviving
// cohort raises per-round gradient variance but the staleness-discounted
// commit mixing absorbs it, so moderate churn costs a fraction of an
// accuracy point while moving proportionally fewer wire bytes. This is
// the simulated twin of the socket runtime's self-healing path
// (reconnect + redispatch), pinned by the same seeds.
func RunExtensionChurn(s Scale) *Output {
	arms := ChurnSweep(s)
	base := arms[0]

	tab := metrics.Table{
		Title:   "Extension: worker churn robustness (Combine scenario)",
		Columns: []string{"flap rate", "final accuracy", "acc delta vs no churn", "commits", "uplink [KB]", "downlink [KB]"},
	}
	for _, a := range arms {
		tab.AddRow(a.Rate, a.FinalAcc, a.FinalAcc-base.FinalAcc,
			float64(a.Commits), float64(a.UplinkBytes)/1024, float64(a.DownlinkBytes)/1024)
	}
	return &Output{
		ID:     "ext_churn",
		Title:  "Worker churn robustness under seeded flaps",
		Tables: []metrics.Table{tab},
	}
}
