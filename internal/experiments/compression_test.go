package experiments

import (
	"testing"

	"repro/internal/compress"
)

func TestExtensionCompressionShape(t *testing.T) {
	out := RunExtensionCompression(tinyScale())
	if out.ID != "ext_compression" || len(out.Tables) != 1 {
		t.Fatalf("output shape: id=%q tables=%d", out.ID, len(out.Tables))
	}
	if len(out.Tables[0].Rows) != 4 {
		t.Fatalf("rows = %d, want one per codec", len(out.Tables[0].Rows))
	}
}

func TestCompressionSweepDeterministic(t *testing.T) {
	a := CompressionSweep(tinyScale())
	b := CompressionSweep(tinyScale())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arm %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCompressionSweepAcceptance(t *testing.T) {
	// The headline claim of the compression extension, at the paper's
	// round budget over the small-scale population: with error feedback,
	// top-k at 10% density ends within one accuracy point of the dense
	// run while moving >=5x fewer uplink bytes. Everything is seeded, so
	// the check is deterministic.
	if testing.Short() {
		t.Skip("paper-round-budget sweep (~10s) skipped in short mode")
	}
	s := SmallScale()
	s.Rounds = FullScale().Rounds
	arms := CompressionSweep(s)
	byCodec := map[string]CompressionArm{}
	for _, a := range arms {
		byCodec[a.Codec] = a
	}
	dense, ok := byCodec["none"]
	topk, ok2 := byCodec[compress.NewTopK(0.1).Name()]
	if !ok || !ok2 {
		t.Fatalf("sweep arms missing: %+v", arms)
	}

	if topk.FinalAcc < dense.FinalAcc-0.01 {
		t.Errorf("top-k@10%% final accuracy %.4f more than 1 point below dense %.4f", topk.FinalAcc, dense.FinalAcc)
	}
	if ratio := float64(dense.UplinkBytes) / float64(topk.UplinkBytes); ratio < 5 {
		t.Errorf("top-k@10%% uplink reduction %.1fx < 5x (%d vs %d bytes)", ratio, topk.UplinkBytes, dense.UplinkBytes)
	}

	// The other arms stay sane: int8 is ~8x smaller and competitive; the
	// aggressive 1% sparsifier is ~90x smaller (its accuracy is allowed to
	// trail — that is the trade-off the table documents).
	int8Arm := byCodec["int8"]
	if ratio := float64(dense.UplinkBytes) / float64(int8Arm.UplinkBytes); ratio < 5 {
		t.Errorf("int8 uplink reduction %.1fx < 5x", ratio)
	}
	if int8Arm.FinalAcc < dense.FinalAcc-0.02 {
		t.Errorf("int8 final accuracy %.4f lags dense %.4f", int8Arm.FinalAcc, dense.FinalAcc)
	}
	tiny := byCodec[compress.NewTopK(0.01).Name()]
	if ratio := float64(dense.UplinkBytes) / float64(tiny.UplinkBytes); ratio < 50 {
		t.Errorf("top-k@1%% uplink reduction %.1fx < 50x", ratio)
	}
}
