package experiments

// Runner is one experiment entry point.
type Runner struct {
	ID   string
	Name string
	Run  func(Scale) *Output
}

// All returns every paper table/figure runner plus the ablations, in paper
// order. cmd/tifl-bench iterates this list.
func All() []Runner {
	return []Runner{
		{"fig1a", "Case study: training time vs CPU and data size", RunFig1a},
		{"fig1b", "Case study: accuracy vs non-IID level", RunFig1b},
		{"table2", "Training-time estimation model (MAPE)", RunTable2},
		{"fig3", "CIFAR-10 policies: resource & quantity heterogeneity", RunFig3},
		{"fig4", "CIFAR-10 policies under non-IID levels", RunFig4},
		{"fig5", "MNIST/FMNIST fast1–fast3 sensitivity", RunFig5},
		{"fig6", "CIFAR-10 combined heterogeneity", RunFig6},
		{"fig7", "Adaptive vs vanilla/uniform (Class/Amount/Combine)", RunFig7},
		{"fig8", "Adaptive robustness across non-IID levels", RunFig8},
		{"fig9", "LEAF FEMNIST with resource heterogeneity", RunFig9},
		{"ext_baselines", "Extension: TiFL vs FedProx/FedCS/async", RunExtensionBaselines},
		{"ext_drift", "Extension: online re-tiering under drift", RunExtensionDrift},
		{"ext_tiered_async", "Extension: FedAT-style tiered-async vs sync/async", RunExtensionTieredAsync},
		{"ext_live_retier", "Extension: live re-tiering inside tiered-async under drift", RunExtensionLiveRetier},
		{"ext_staleness", "Extension: tiered-async Alpha/StalenessExp ablation", RunExtensionStaleness},
		{"ext_compression", "Extension: quantized / top-k compressed updates", RunExtensionCompression},
		{"ext_downlink", "Extension: delta-compressed downlink broadcast", RunExtensionDownlink},
		{"ext_million", "Extension: million-client event-driven population scale", RunExtensionMillion},
		{"ext_churn", "Extension: worker churn robustness under seeded flaps", RunExtensionChurn},
		{"ablation_tiering", "Ablation: tiering strategy", RunAblationTiering},
		{"ablation_tiercount", "Ablation: tier count", RunAblationTierCount},
		{"ablation_credits", "Ablation: adaptive credits", RunAblationCredits},
		{"ablation_temperature", "Ablation: ChangeProbs temperature", RunAblationTemperature},
		{"ablation_cnn", "Ablation: CNN model substrate", RunAblationCNN},
	}
}

// ByID returns the runner with the given ID, or nil.
func ByID(id string) *Runner {
	for _, r := range All() {
		if r.ID == id {
			return &r
		}
	}
	return nil
}
