package experiments

import "testing"

func TestExtensionDownlinkShape(t *testing.T) {
	out := RunExtensionDownlink(tinyScale())
	if out.ID != "ext_downlink" || len(out.Tables) != 1 {
		t.Fatalf("output shape: id=%q tables=%d", out.ID, len(out.Tables))
	}
	if len(out.Tables[0].Rows) != 7 {
		t.Fatalf("rows = %d, want one per downlink arm", len(out.Tables[0].Rows))
	}
}

func TestDownlinkSweepDeterministic(t *testing.T) {
	a := DownlinkSweep(tinyScale())
	b := DownlinkSweep(tinyScale())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arm %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDownlinkSweepAcceptance(t *testing.T) {
	// The headline claim of the downlink extension, at the paper's round
	// budget over the small-scale population: with the server-side
	// error-feedback residual, the int8 delta broadcast ends within one
	// accuracy point of the dense broadcast while moving >=4x fewer
	// downlink bytes. The top-k arms pin the negative result documented on
	// DownlinkSweep: sparsified broadcast destabilizes FedAT's
	// absolute-weight commit mixing, so aggressive sparsification hits the
	// byte target but collapses accuracy, and conservative sparsification
	// holds accuracy but not the byte target. Everything is seeded, so the
	// check is deterministic.
	if testing.Short() {
		t.Skip("paper-round-budget sweep (~1min) skipped in short mode")
	}
	s := SmallScale()
	s.Rounds = FullScale().Rounds
	arms := DownlinkSweep(s)
	byMode := map[string]DownlinkArm{}
	for _, a := range arms {
		byMode[a.Mode] = a
	}
	dense, ok := byMode["dense"]
	if !ok {
		t.Fatalf("sweep arms missing dense baseline: %+v", arms)
	}
	ratio := func(a DownlinkArm) float64 {
		return float64(dense.DownlinkBytes) / float64(a.DownlinkBytes)
	}
	arm := func(mode string) DownlinkArm {
		a, ok := byMode[mode]
		if !ok {
			t.Fatalf("sweep arms missing %s: %+v", mode, arms)
		}
		return a
	}

	// The lossless delta reconstructs bit-exact models, so any accuracy
	// movement comes only from the byte-aware latency model repacking the
	// commit schedule (cheaper broadcasts → more commits in the budget).
	// It must stay within the 1-point band while saving bytes.
	if a := arm("delta"); a.FinalAcc < dense.FinalAcc-0.01 {
		t.Errorf("delta final accuracy %.4f more than 1 point below dense %.4f", a.FinalAcc, dense.FinalAcc)
	} else if ratio(a) <= 1 {
		t.Errorf("delta downlink reduction %.2fx <= 1x (%d vs %d bytes)", ratio(a), a.DownlinkBytes, dense.DownlinkBytes)
	}

	// Headline: quantized delta broadcast hits the 4x byte target inside
	// the 1-point accuracy band.
	if a := arm("delta+int8"); a.FinalAcc < dense.FinalAcc-0.01 {
		t.Errorf("delta+int8 final accuracy %.4f more than 1 point below dense %.4f", a.FinalAcc, dense.FinalAcc)
	} else if ratio(a) <= 4 {
		t.Errorf("delta+int8 downlink reduction %.2fx <= 4x (%d vs %d bytes)", ratio(a), a.DownlinkBytes, dense.DownlinkBytes)
	}

	// Negative result, pinned so a silent behavior change gets noticed:
	// 10% top-k saves >=4x bytes but the five tiers' starved residual
	// bases drag the global model apart and training collapses, while 50%
	// top-k stays within the band but cannot reach 4x (indices + values
	// cost ~12 bytes per sent coordinate against 8 dense).
	if a := arm("delta+topk@0.1"); ratio(a) <= 4 {
		t.Errorf("delta+topk@0.1 downlink reduction %.2fx <= 4x (%d vs %d bytes)", ratio(a), a.DownlinkBytes, dense.DownlinkBytes)
	} else if a.FinalAcc >= dense.FinalAcc-0.01 {
		t.Errorf("delta+topk@0.1 final accuracy %.4f within 1 point of dense %.4f — sparsified-broadcast collapse no longer reproduces; revisit the negative-result docs", a.FinalAcc, dense.FinalAcc)
	}
	if a := arm("delta+topk@0.5"); a.FinalAcc < dense.FinalAcc-0.01 {
		t.Errorf("delta+topk@0.5 final accuracy %.4f more than 1 point below dense %.4f", a.FinalAcc, dense.FinalAcc)
	} else if r := ratio(a); r <= 1 || r >= 4 {
		t.Errorf("delta+topk@0.5 downlink reduction %.2fx outside (1x, 4x) (%d vs %d bytes)", r, a.DownlinkBytes, dense.DownlinkBytes)
	}

	// The sampled-cohort fallback arms document the ack-gap cost: savings
	// survive but are capped well below the full-participation ratio.
	sd := arm("dense (sampled)")
	si := arm("delta+int8 (sampled)")
	if si.DownlinkBytes >= sd.DownlinkBytes {
		t.Errorf("sampled delta+int8 moved %d downlink bytes, dense %d — no savings", si.DownlinkBytes, sd.DownlinkBytes)
	}
	if r := float64(sd.DownlinkBytes) / float64(si.DownlinkBytes); r >= ratio(arm("delta+int8")) {
		t.Errorf("sampled delta+int8 ratio %.2fx not capped below full-cohort %.2fx", r, ratio(arm("delta+int8")))
	}
}
