package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/flcore"
	"repro/internal/metrics"
)

// The ablations probe the design choices DESIGN.md calls out: the tiering
// strategy (the paper's equal-width histogram vs balanced quantiles), the
// tier count m, the Credits budget of Algorithm 2, and the ChangeProbs
// temperature. None have a paper counterpart figure; they document how
// sensitive TiFL's wins are to its knobs.

// RunAblationTiering compares EqualWidth and Quantile tiering under the
// uniform policy on the resource-heterogeneity scenario.
func RunAblationTiering(s Scale) *Output {
	sc := s.newScenario("ablation-tiering", cifarSpec(), hetResource, 0)
	ref := sc.clients(s)
	prof := core.Profile(ref, LatencyModel, core.ProfilerConfig{SyncRounds: 5, Tmax: 1e6, Epochs: 1, Seed: s.Seed + 4})

	tab := metrics.Table{
		Title:   "Ablation: tiering strategy (uniform policy)",
		Columns: []string{"strategy", "tiers", "training time [s]", "final accuracy"},
	}
	for _, strat := range []struct {
		name string
		s    core.TieringStrategy
	}{{"equal-width", core.EqualWidth}, {"quantile", core.Quantile}} {
		tiers := core.BuildTiers(prof.Latency, 5, strat.s)
		// A uniform policy sized to however many tiers materialized.
		probs := make([]float64, len(tiers))
		for i := range probs {
			probs[i] = 1 / float64(len(tiers))
		}
		sel := core.NewStaticSelector(tiers, core.StaticPolicy{Name: "uniform", Probs: probs}, s.ClientsPerRound)
		res := flcore.NewEngine(s.engineConfig(sc.spec), sc.clients(s), sc.test).Run(sel)
		tab.AddRow(strat.name, len(tiers), res.TotalTime, res.FinalAcc)
	}
	return &Output{
		ID:     "ablation_tiering",
		Title:  "Equal-width (paper) vs quantile tiering",
		Tables: []metrics.Table{tab},
	}
}

// RunAblationTierCount varies the number of tiers m under uniform
// selection: more tiers mean tighter latency grouping (faster rounds when a
// fast tier is picked) but fewer clients per tier.
func RunAblationTierCount(s Scale) *Output {
	sc := s.newScenario("ablation-m", cifarSpec(), hetResource, 0)
	ref := sc.clients(s)
	prof := core.Profile(ref, LatencyModel, core.ProfilerConfig{SyncRounds: 5, Tmax: 1e6, Epochs: 1, Seed: s.Seed + 4})
	tab := metrics.Table{
		Title:   "Ablation: tier count m (uniform policy)",
		Columns: []string{"m", "tiers built", "training time [s]", "final accuracy"},
	}
	for _, m := range []int{2, 5, 10} {
		tiers := core.BuildTiers(prof.Latency, m, core.Quantile)
		probs := make([]float64, len(tiers))
		for i := range probs {
			probs[i] = 1 / float64(len(tiers))
		}
		sel := core.NewStaticSelector(tiers, core.StaticPolicy{Name: "uniform", Probs: probs}, s.ClientsPerRound)
		res := flcore.NewEngine(s.engineConfig(sc.spec), sc.clients(s), sc.test).Run(sel)
		tab.AddRow(fmt.Sprintf("%d", m), len(tiers), res.TotalTime, res.FinalAcc)
	}
	return &Output{
		ID:     "ablation_tiercount",
		Title:  "Sensitivity to the number of tiers",
		Tables: []metrics.Table{tab},
	}
}

// RunAblationCredits varies Algorithm 2's per-tier credit budget on the
// Combine scenario: tight credits cap slow-tier participation (time ↓) at
// some accuracy risk once struggling tiers can no longer be boosted.
func RunAblationCredits(s Scale) *Output {
	sc := s.newScenario("ablation-credits", cifarSpec(), hetCombine, 5)
	tiers, ref := sc.tiers(s)
	tab := metrics.Table{
		Title:   "Ablation: adaptive credit budget (Combine scenario)",
		Columns: []string{"credits/tier", "training time [s]", "final accuracy", "fallback rounds"},
	}
	budgets := []int{0, s.Rounds / 2, s.Rounds / 5}
	for _, b := range budgets {
		cfg := core.AdaptiveConfig{
			ClientsPerRound: s.ClientsPerRound, Interval: s.Interval,
			Temperature: 2, TestPerTier: s.TestPerTier, Seed: s.Seed + 5, Credits: b,
		}
		sel := core.NewAdaptiveSelector(tiers, ref, cfg)
		res := flcore.NewEngine(s.engineConfig(sc.spec), sc.clients(s), sc.test).Run(sel)
		label := "unlimited"
		if b > 0 {
			label = fmt.Sprintf("%d", b)
		}
		tab.AddRow(label, res.TotalTime, res.FinalAcc, sel.FallbackRounds)
	}
	return &Output{
		ID:     "ablation_credits",
		Title:  "Sensitivity to Algorithm 2's Credits_t budget",
		Tables: []metrics.Table{tab},
	}
}

// RunAblationTemperature varies the ChangeProbs temperature on the
// non-IID(2) scenario where rebalancing matters most.
func RunAblationTemperature(s Scale) *Output {
	sc := s.newScenario("ablation-temp", cifarSpec(), hetNonIID, 2)
	tiers, ref := sc.tiers(s)
	tab := metrics.Table{
		Title:   "Ablation: ChangeProbs temperature (non-IID(2))",
		Columns: []string{"temperature", "training time [s]", "final accuracy"},
	}
	for _, temp := range []float64{1, 2, 4} {
		cfg := core.AdaptiveConfig{
			ClientsPerRound: s.ClientsPerRound, Interval: s.Interval,
			Temperature: temp, TestPerTier: s.TestPerTier, Seed: s.Seed + 5,
		}
		sel := core.NewAdaptiveSelector(tiers, ref, cfg)
		res := flcore.NewEngine(s.engineConfig(sc.spec), sc.clients(s), sc.test).Run(sel)
		tab.AddRow(fmt.Sprintf("%.0f", temp), res.TotalTime, res.FinalAcc)
	}
	return &Output{
		ID:     "ablation_temperature",
		Title:  "Sensitivity to how sharply low-accuracy tiers are boosted",
		Tables: []metrics.Table{tab},
	}
}
