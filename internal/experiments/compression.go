package experiments

import (
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/flcore"
	"repro/internal/metrics"
	"repro/internal/simres"
)

// CommLatencyModel extends the shared latency model with a size-dependent
// transfer term, so the compression sweep's simulated wall clock responds
// to bytes on the wire. CommPerParam is sized so a dense transfer of the
// experiments' ~2k-parameter MLP costs on the order of the compute term —
// the regime where the paper's slow tiers pay for "computation and
// communication capacity" alike.
var CommLatencyModel = simres.LatencyModel{
	CostPerSample: 0.01, CommLatency: 0.5, CommPerParam: 5e-4, JitterFrac: 0.05,
}

// CompressionArm is one codec's measured outcome in the compression sweep.
type CompressionArm struct {
	// Codec is the arm's codec spec ("none", "int8", "topk@0.01", ...).
	Codec string
	// FinalAcc is the run's final global test accuracy.
	FinalAcc float64
	// UplinkBytes is the total encoded client→server update traffic.
	UplinkBytes int64
	// SimTime is the run's simulated wall clock in seconds.
	SimTime float64
}

// CompressionSweep trains TiFL's adaptive policy on the Combine scenario
// once per codec in {none, int8, topk@1%, topk@10%} under identical seeds,
// clients, tiers, and round budgets, and returns each arm's final accuracy,
// uplink bytes, and simulated wall clock. Exported separately from
// RunExtensionCompression so tests can assert on the raw numbers.
func CompressionSweep(s Scale) []CompressionArm {
	sc := s.newScenario("ext-compression", cifarSpec(), hetCombine, 5)
	tiers, ref := sc.tiers(s)

	codecs := []compress.Codec{nil, compress.NewInt8(0), compress.NewTopK(0.01), compress.NewTopK(0.1)}
	arms := make([]CompressionArm, 0, len(codecs))
	for _, codec := range codecs {
		cfg := s.engineConfig(sc.spec)
		cfg.Latency = CommLatencyModel
		cfg.Codec = codec
		res := flcore.NewEngine(cfg, sc.clients(s), sc.test).
			Run(core.NewAdaptiveSelector(tiers, ref, s.adaptiveRun().adaptive))
		name := "none"
		if codec != nil {
			name = codec.Name()
		}
		arms = append(arms, CompressionArm{
			Codec: name, FinalAcc: res.FinalAcc,
			UplinkBytes: res.UplinkBytes, SimTime: res.TotalTime,
		})
	}
	return arms
}

// RunExtensionCompression is the update-compression extension experiment:
// the codec sweep of CompressionSweep rendered as a table (accuracy, bytes,
// wall clock, compression ratio vs dense). With error feedback, top-k at
// 10% density tracks the dense run's final accuracy within ~1 point while
// moving an order of magnitude fewer uplink bytes — the property that makes
// compressed cross-tier commits worthwhile for slow tiers.
func RunExtensionCompression(s Scale) *Output {
	arms := CompressionSweep(s)
	dense := arms[0]

	tab := metrics.Table{
		Title:   "Extension: update compression (Combine scenario, adaptive policy)",
		Columns: []string{"codec", "final accuracy", "uplink [KB]", "compression ratio", "training time [s]"},
	}
	for _, a := range arms {
		tab.AddRow(a.Codec, a.FinalAcc, float64(a.UplinkBytes)/1024,
			float64(dense.UplinkBytes)/float64(a.UplinkBytes), a.SimTime)
	}
	return &Output{
		ID:     "ext_compression",
		Title:  "Quantized / sparsified updates vs dense transfers",
		Tables: []metrics.Table{tab},
	}
}
