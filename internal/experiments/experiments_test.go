package experiments

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

// tinyScale keeps integration tests fast while preserving every code path.
func tinyScale() Scale {
	return Scale{
		Rounds: 10, LEAFRounds: 10,
		Clients: 50, ClientsPerRound: 5,
		TrainSize: 2000, TestSize: 400,
		EvalEvery: 3, LocalTestMax: 30, TestPerTier: 80, Interval: 3,
		Seed: 1, Parallel: true,
	}
}

func TestFig1aShape(t *testing.T) {
	out := RunFig1a(tinyScale())
	if len(out.Tables) != 1 {
		t.Fatalf("tables = %d", len(out.Tables))
	}
	tab := out.Tables[0]
	if len(tab.Rows) != 5 || len(tab.Columns) != 5 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	series := out.Series["latency_by_size"]
	if len(series) != 5 {
		t.Fatalf("series = %d", len(series))
	}
	// Within each CPU level latency must grow with data size; across CPU
	// levels (same size) latency must grow as CPU shrinks.
	for _, s := range series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] <= s.Y[i-1] {
				t.Fatalf("%s: latency not increasing with data size: %v", s.Name, s.Y)
			}
		}
	}
	for i := 1; i < len(series); i++ {
		if series[i].Y[0] <= series[i-1].Y[0] {
			t.Fatalf("latency not increasing as CPU shrinks: %v vs %v", series[i].Y[0], series[i-1].Y[0])
		}
	}
}

func TestFig1bOrdering(t *testing.T) {
	s := tinyScale()
	s.Rounds = 20
	out := RunFig1b(s)
	series := out.Series["accuracy_over_rounds"]
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	iid := series[0].FinalY()
	non2 := series[3].FinalY()
	if iid < non2-0.03 {
		t.Fatalf("IID final %v should not trail non-IID(2) %v", iid, non2)
	}
}

func TestTable2EstimationAccuracy(t *testing.T) {
	// The estimation error is dominated by how closely the realized tier
	// draw mix matches the policy probabilities, so give this test enough
	// rounds for the mix to converge (the paper uses 500).
	s := tinyScale()
	s.Rounds = 120
	out := RunTable2(s)
	mape := out.Series["mape"][0]
	if mape.Len() != 4 {
		t.Fatalf("mape rows = %d", mape.Len())
	}
	for i, v := range mape.Y {
		if v > 15 {
			t.Fatalf("MAPE[%d] = %v%%, estimation model badly off", i, v)
		}
	}
}

func TestFig3PolicySpeedups(t *testing.T) {
	out := RunFig3(tinyScale())
	// Tables: time+acc per column → 4 tables; first is resource times.
	if len(out.Tables) != 4 {
		t.Fatalf("tables = %d", len(out.Tables))
	}
	times := map[string]float64{}
	for _, row := range out.Tables[0].Rows {
		times[row[0]] = parseF(t, row[1])
	}
	if times["fast"] >= times["vanilla"] {
		t.Fatalf("fast %v not faster than vanilla %v", times["fast"], times["vanilla"])
	}
	if times["uniform"] >= times["vanilla"] {
		t.Fatalf("uniform %v not faster than vanilla %v", times["uniform"], times["vanilla"])
	}
	if times["slow"] <= times["fast"] {
		t.Fatalf("slow %v should exceed fast %v", times["slow"], times["fast"])
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmtSscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFig7AdaptiveTimeWin(t *testing.T) {
	out := RunFig7(tinyScale())
	if len(out.Tables) != 2 {
		t.Fatalf("tables = %d", len(out.Tables))
	}
	for _, row := range out.Tables[0].Rows {
		vanilla := parseF(t, row[1])
		tifl := parseF(t, row[3])
		if tifl >= vanilla {
			t.Fatalf("scenario %s: TiFL time %v not below vanilla %v", row[0], tifl, vanilla)
		}
	}
}

func TestFig9LEAFShapes(t *testing.T) {
	out := RunFig9(tinyScale())
	series := out.Series["accuracy_over_rounds"]
	if len(series) != 6 {
		t.Fatalf("series = %d, want 6 policies", len(series))
	}
	times := map[string]float64{}
	for _, row := range out.Tables[0].Rows {
		times[row[0]] = parseF(t, row[1])
	}
	if times["fast"] >= times["vanilla"] {
		t.Fatalf("LEAF fast %v not faster than vanilla %v", times["fast"], times["vanilla"])
	}
	if times["slow"] <= times["uniform"] {
		t.Fatalf("LEAF slow %v should exceed uniform %v", times["slow"], times["uniform"])
	}
}

func TestRunAllAndWriteFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	s := tinyScale()
	s.Rounds = 6
	s.LEAFRounds = 6
	s.TrainSize = 1500
	s.EvalEvery = 3
	dir := t.TempDir()
	for _, r := range All() {
		out := r.Run(s)
		if out.ID != r.ID {
			t.Fatalf("runner %s produced output ID %s", r.ID, out.ID)
		}
		if err := out.WriteFiles(dir); err != nil {
			t.Fatalf("%s: WriteFiles: %v", r.ID, err)
		}
		report := filepath.Join(dir, r.ID, "report.txt")
		data, err := os.ReadFile(report)
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		if !strings.Contains(string(data), r.ID) {
			t.Fatalf("%s: report lacks ID header", r.ID)
		}
		if text := out.Render(); len(text) < 40 {
			t.Fatalf("%s: render too short:\n%s", r.ID, text)
		}
	}
}

func TestExtensionBaselines(t *testing.T) {
	out := RunExtensionBaselines(tinyScale())
	if len(out.Tables) != 1 || len(out.Tables[0].Rows) != 5 {
		t.Fatalf("expected 5 baseline rows, got %+v", out.Tables)
	}
	times := map[string]float64{}
	for _, row := range out.Tables[0].Rows {
		times[row[0]] = parseF(t, row[1])
	}
	if times["TiFL (adaptive)"] >= times["FedAvg (vanilla)"] {
		t.Fatalf("TiFL %v not faster than vanilla %v", times["TiFL (adaptive)"], times["FedAvg (vanilla)"])
	}
	// FedCS filters to the faster half, so it must beat vanilla on time.
	if times["FedCS (deadline)"] >= times["FedAvg (vanilla)"] {
		t.Fatalf("FedCS %v not faster than vanilla %v", times["FedCS (deadline)"], times["FedAvg (vanilla)"])
	}
}

func TestExtensionTieredAsync(t *testing.T) {
	out := RunExtensionTieredAsync(tinyScale())
	rows := out.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want sync/async/tiered", len(rows))
	}
	// Tiered-async must reach the synchronous engine's final accuracy,
	// and do so in less simulated wall-clock than the FedAsync baseline
	// (FedAT's headline claim). Work on the raw series rather than the
	// table cells: the table rounds to 4 significant digits and renders
	// never-reached as "n/a".
	series := out.Series["accuracy_over_time"]
	if len(series) != 3 {
		t.Fatalf("series = %d, want sync/async/tiered", len(series))
	}
	target := series[0].FinalY()
	asyncTime := metrics.TimeToAccuracy(series[1], target)
	tieredTime := metrics.TimeToAccuracy(series[2], target)
	if math.IsNaN(tieredTime) {
		t.Fatalf("tiered-async never reached sync accuracy %v", target)
	}
	if !math.IsNaN(asyncTime) && tieredTime >= asyncTime {
		t.Fatalf("tiered-async %v not faster to target than FedAsync %v", tieredTime, asyncTime)
	}
	// Fast tiers must commit at least as many rounds as slow tiers.
	commits := out.Tables[1].Rows
	first := parseF(t, commits[0][1])
	last := parseF(t, commits[len(commits)-1][1])
	if first < last {
		t.Fatalf("fastest tier committed %v rounds, slowest %v", first, last)
	}
	// Same seed, same histories: the experiment is fully deterministic.
	again := RunExtensionTieredAsync(tinyScale())
	if out.Render() != again.Render() {
		t.Fatal("two runs with the same seed produced different reports")
	}
}

func TestExtensionDrift(t *testing.T) {
	s := tinyScale()
	s.Rounds = 30
	out := RunExtensionDrift(s)
	rows := out.Tables[0].Rows
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	staticTime := parseF(t, rows[0][1])
	dynTime := parseF(t, rows[1][1])
	if dynTime >= staticTime {
		t.Fatalf("dynamic %v should beat static %v under drift", dynTime, staticTime)
	}
	var retiers float64
	if _, err := fmtSscan(rows[1][3], &retiers); err != nil || retiers < 1 {
		t.Fatalf("dynamic never re-tiered: %v", rows[1])
	}
}

func TestByID(t *testing.T) {
	if r := ByID("fig3"); r == nil || r.ID != "fig3" {
		t.Fatalf("ByID(fig3) = %+v", r)
	}
	if ByID("nope") != nil {
		t.Fatal("ByID(nope) should be nil")
	}
	if len(All()) != 24 {
		t.Fatalf("runners = %d, want 24", len(All()))
	}
}

func TestScalesSane(t *testing.T) {
	for _, s := range []Scale{SmallScale(), FullScale()} {
		if s.Clients%5 != 0 {
			t.Fatalf("clients %d not divisible into 5 groups", s.Clients)
		}
		if s.ClientsPerRound <= 0 || s.Rounds <= 0 {
			t.Fatalf("bad scale %+v", s)
		}
	}
	if FullScale().Rounds != 500 || FullScale().LEAFRounds != 2000 {
		t.Fatalf("full scale must match the paper: %+v", FullScale())
	}
}
