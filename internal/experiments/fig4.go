package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/metrics"
)

// RunFig4 reproduces Figure 4: each of the five selection policies run
// under IID and non-IID(10/5/2) class distributions with fixed resources
// (2 CPUs per client). One sub-plot per policy, one series per non-IID
// level. Shapes to reproduce: accuracy degrades as classes-per-client
// shrinks for every policy, and vanilla/uniform are the most resilient.
func RunFig4(s Scale) *Output {
	out := &Output{
		ID:     "fig4",
		Title:  "Policies under varying non-IID heterogeneity, fixed resources",
		Series: map[string][]metrics.Series{},
	}
	finals := metrics.Table{
		Title:   "Fig 4: final accuracy by policy and non-IID level",
		Columns: []string{"policy", "IID", "non-IID(10)", "non-IID(5)", "non-IID(2)"},
	}
	runs := s.cifarPolicyRuns()
	// level 0 = IID
	type cell struct{ acc float64 }
	grid := make(map[string]map[int]cell)
	for _, level := range Fig1bLevels {
		levelName := "IID"
		var sc scenario
		if level == 0 {
			sc = s.iidScenario(cifarSpec())
		} else {
			levelName = fmt.Sprintf("non-IID(%d)", level)
			sc = s.newScenario("fig4-"+levelName, cifarSpec(), hetNonIID, level)
		}
		order, results := s.execute(sc, runs)
		for _, policy := range order {
			key := "accuracy_over_rounds_" + policy
			sr := metrics.AccuracyOverRounds(results[policy], levelName)
			out.Series[key] = append(out.Series[key], sr)
			if grid[policy] == nil {
				grid[policy] = map[int]cell{}
			}
			grid[policy][level] = cell{acc: results[policy].FinalAcc}
		}
	}
	for _, run := range runs {
		g := grid[run.name]
		finals.AddRow(run.name, g[0].acc, g[10].acc, g[5].acc, g[2].acc)
	}
	out.Tables = append(out.Tables, finals)
	return out
}

// iidScenario builds the equal-CPU IID baseline scenario.
func (s Scale) iidScenario(spec dataset.Spec) scenario {
	rng := newRng(s.Seed + 1000)
	train := dataset.Generate(spec, s.TrainSize, s.Seed+1)
	test := dataset.Generate(spec, s.TestSize, s.Seed+2)
	return scenario{
		name: "iid", spec: spec, train: train, test: test,
		parts: dataset.PartitionIID(train.Len(), s.Clients, rng),
		cpus:  equalCPUs(s.Clients),
	}
}
