package experiments

import (
	"math/rand"
	"runtime"
	"time"

	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/simres"
)

// The population-scale extension: the paper's evaluation stops at |K|=50
// resident clients, but cross-device federated deployments select cohorts
// out of populations in the millions. This experiment runs the tiered-
// asynchronous engine over a registered population of Scale.Population
// (1e6 at FullScale) clients through a lazy ClientSource: every client's
// private shard is derived on demand from (seed, id) when a tier round
// selects it and dropped when the round's aggregate is computed, so
// resident client state is bounded by the cohort size — the equivalence
// suite (flcore TestScaledEngineEquivalence) proves this engine is
// byte-identical to the resident-population one, so nothing about the
// training semantics changes with N.

// millionSamplesPer is each synthetic client's private shard size. Small on
// purpose: cross-device clients hold little data, and the experiment's
// subject is population scale, not per-client work.
const millionSamplesPer = 16

// millionDuration is the simulated budget. With 16-sample shards the five
// CIFAR CPU groups respond in ~0.54s (4 CPUs) to ~2.1s (0.1 CPUs), so 12
// simulated seconds give the slowest tier ~5 commits and the whole run
// comfortably more than 20 — enough to exercise staleness mixing without
// making the CI smoke run expensive.
const millionDuration = 12.0

// millionFactory derives fully synthetic clients from (seed, id): an
// on-the-fly private shard and a CPU share from the paper's five CIFAR
// resource groups, assigned contiguously so tier k is exactly the id range
// [k*n/5, (k+1)*n/5). No O(N) state backs the factory.
func millionFactory(seed int64, n int) flcore.ClientFactory {
	groups := simres.GroupsCIFAR
	return func(id int) *flcore.Client {
		return &flcore.Client{
			ID:    id,
			Train: dataset.Generate(dataset.MNISTLike, millionSamplesPer, flcore.DeriveSeed(seed, id, 101)),
			CPU:   groups[int(int64(id)*int64(len(groups))/int64(n))],
		}
	}
}

// millionTiers splits [0,n) into 5 contiguous tiers, fastest first,
// mirroring millionFactory's CPU assignment.
func millionTiers(n int) [][]int {
	tiers := make([][]int, 5)
	for t := range tiers {
		lo := int(int64(t) * int64(n) / 5)
		hi := int(int64(t+1) * int64(n) / 5)
		members := make([]int, hi-lo)
		for i := range members {
			members[i] = lo + i
		}
		tiers[t] = members
	}
	return tiers
}

// MillionOutcome carries the population-scale run's raw numbers for the
// acceptance test and the benchmark metrics.
type MillionOutcome struct {
	// Population is the registered N; Commits the total committed tier
	// rounds; CommitsPerTier the per-tier split.
	Population     int
	Commits        int
	CommitsPerTier []int
	// SimTime is the simulated clock at the end; WallSeconds the real time
	// the run took; RoundsPerSec = Commits / WallSeconds.
	SimTime      float64
	WallSeconds  float64
	RoundsPerSec float64
	// UplinkBytes is the total committed update traffic;
	// BytesPerClientUpdate divides it by the number of committed client
	// updates (the per-client uplink cost of one selection).
	UplinkBytes          int64
	ClientUpdates        int
	BytesPerClientUpdate float64
	// Materialized counts factory invocations; PeakLive / LiveAfter the
	// resident-client high-water mark and post-run count — the memory
	// bound the lazy source guarantees. Residuals must be 0 (no codec).
	Materialized int64
	PeakLive     int
	LiveAfter    int
	Residuals    int
	// PeakHeapBytes is a resident-memory proxy: the high-water mark of
	// runtime.MemStats.HeapAlloc sampled at construction, every few
	// commits, and after the run. It bounds total live heap — population
	// bookkeeping (tier membership) plus transient cohort state.
	PeakHeapBytes uint64
	// FinalAcc is the global model's accuracy on the held-out test set.
	FinalAcc float64
}

// MillionRun executes the population-scale tiered-async run. Exported
// separately from RunExtensionMillion so tests and benchmarks can assert on
// the raw outcome.
func MillionRun(s Scale) MillionOutcome {
	n := s.Population
	if n <= 0 {
		n = 1_000_000
	}
	src := flcore.NewLazyClients(n, millionFactory(s.Seed, n))
	test := dataset.Generate(dataset.MNISTLike, 512, s.Seed+2)

	var peakHeap uint64
	var ms runtime.MemStats
	sampleHeap := func() {
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peakHeap {
			peakHeap = ms.HeapAlloc
		}
	}
	commits := 0
	cfg := flcore.TieredAsyncConfig{
		Duration: millionDuration, ClientsPerRound: s.ClientsPerRound,
		Seed: s.Seed, BatchSize: 8, LocalEpochs: 1,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, dataset.MNISTLike.Dim, []int{16}, dataset.MNISTLike.NumClasses, 0)
		},
		Optimizer: func(round int) nn.Optimizer { return nn.NewRMSprop(0.01, 0.995) },
		Latency:   LatencyModel,
		EvalBatch: 256,
		OnCommit: func(rec flcore.TierRoundRecord) {
			commits++
			if commits%4 == 0 {
				sampleHeap()
			}
		},
	}

	eng := flcore.NewTieredAsyncEngineFrom(cfg, millionTiers(n), src, test)
	sampleHeap() // construction cost: tier membership + engine state
	start := time.Now()
	res := eng.Run()
	wall := time.Since(start).Seconds()
	sampleHeap()

	out := MillionOutcome{
		Population:     n,
		Commits:        len(res.TierRounds),
		CommitsPerTier: res.Commits,
		SimTime:        res.TotalTime,
		WallSeconds:    wall,
		UplinkBytes:    res.UplinkBytes,
		PeakHeapBytes:  peakHeap,
		FinalAcc:       res.FinalAcc,
	}
	for _, rec := range res.TierRounds {
		out.ClientUpdates += len(rec.Selected)
	}
	if wall > 0 {
		out.RoundsPerSec = float64(out.Commits) / wall
	}
	if out.ClientUpdates > 0 {
		out.BytesPerClientUpdate = float64(out.UplinkBytes) / float64(out.ClientUpdates)
	}
	st := src.Stats()
	out.Materialized = st.Materialized
	out.PeakLive = st.Peak
	out.LiveAfter = st.Live
	out.Residuals = st.Residuals
	return out
}

// RunExtensionMillion renders the population-scale run: a million
// registered clients, resident client state bounded by the cohort, and the
// throughput/traffic metrics the benchmark pipeline exports.
func RunExtensionMillion(s Scale) *Output {
	out := MillionRun(s)
	// The table sticks to simulation-deterministic quantities so reports
	// stay byte-identical across runs of the same seed; the wall-clock
	// throughput and heap proxy live in MillionOutcome and are exported by
	// BenchmarkExtMillion, where run-to-run jitter is expected.
	tab := metrics.Table{
		Title: "Extension: million-client event-driven population scale",
		Columns: []string{"engine", "population", "commits", "commits/sim-sec", "bytes/client update",
			"peak live clients", "materialized", "residuals", "final accuracy"},
	}
	tab.AddRow("tiered-async lazy", float64(out.Population), float64(out.Commits),
		float64(out.Commits)/out.SimTime, out.BytesPerClientUpdate,
		float64(out.PeakLive), float64(out.Materialized),
		float64(out.Residuals), out.FinalAcc)
	return &Output{
		ID:     "ext_million",
		Title:  "Event-driven simulation at cross-device population scale",
		Tables: []metrics.Table{tab},
	}
}
