package experiments

import (
	"repro/internal/core"
	"repro/internal/flcore"
	"repro/internal/metrics"
)

// RunExtensionTieredAsync pits the three server designs the TiFL paper's
// related work spans against each other on the Combine scenario (resource +
// quantity + non-IID heterogeneity): TiFL's synchronous adaptive tier
// selection, the fully asynchronous FedAsync baseline, and the FedAT-style
// tiered-asynchronous hybrid (per-tier synchronous rounds, asynchronous
// staleness-weighted cross-tier commits). All three share the client
// population, latency model, and — for the two asynchronous systems — the
// simulated time budget the synchronous run consumed, so the comparison is
// wall-clock-for-wall-clock.
func RunExtensionTieredAsync(s Scale) *Output {
	sc := s.newScenario("ext-tiered-async", cifarSpec(), hetCombine, 5)
	tiers, ref := sc.tiers(s)
	cfg := s.engineConfig(sc.spec)

	// Synchronous reference: TiFL adaptive. Its total time is the shared
	// budget and its final accuracy the target the async systems chase.
	syncRes := flcore.NewEngine(cfg, sc.clients(s), sc.test).
		Run(core.NewAdaptiveSelector(tiers, ref, s.adaptiveRun().adaptive))
	budget := syncRes.TotalTime
	target := syncRes.FinalAcc

	async := flcore.RunAsync(flcore.AsyncConfig{
		Duration: budget, Concurrency: s.ClientsPerRound,
		EvalInterval: budget / 20, Seed: s.Seed,
		BatchSize: 10, LocalEpochs: 1,
		Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: LatencyModel,
		EvalBatch: 256,
	}, sc.clients(s), sc.test)

	tiered := flcore.RunTieredAsync(flcore.TieredAsyncConfig{
		Duration: budget, ClientsPerRound: s.ClientsPerRound,
		TierWeight:   core.FedATWeights(),
		EvalInterval: budget / 20, Seed: s.Seed,
		BatchSize: 10, LocalEpochs: 1,
		Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: LatencyModel,
		EvalBatch: 256,
	}, core.TierMembers(tiers), sc.clients(s), sc.test)

	syncSeries := metrics.AccuracyOverTime(syncRes, "TiFL (adaptive, sync)")
	asyncSeries := metrics.AccuracyOverTime(async, "FedAsync")
	tieredSeries := metrics.AccuracyOverTime(&tiered.Result, "FedAT (tiered-async)")

	tab := metrics.Table{
		Title:   "Extension: sync vs async vs tiered-async (Combine scenario)",
		Columns: []string{"system", "training time [s]", "final accuracy", "time to sync accuracy [s]"},
	}
	tab.AddRow("TiFL (adaptive, sync)", syncRes.TotalTime, syncRes.FinalAcc, metrics.TimeToAccuracy(syncSeries, target))
	tab.AddRow("FedAsync", async.TotalTime, async.FinalAcc, metrics.TimeToAccuracy(asyncSeries, target))
	tab.AddRow("FedAT (tiered-async)", tiered.TotalTime, tiered.FinalAcc, metrics.TimeToAccuracy(tieredSeries, target))

	commits := metrics.Table{
		Title:   "Tiered-async commits per tier (fastest first)",
		Columns: []string{"tier", "commits"},
	}
	for t, n := range tiered.Commits {
		commits.AddRow(float64(t+1), float64(n))
	}

	return &Output{
		ID:     "ext_tiered_async",
		Title:  "FedAT-style tiered-asynchronous training vs sync TiFL and FedAsync",
		Tables: []metrics.Table{tab, commits},
		Series: map[string][]metrics.Series{
			"accuracy_over_time": {syncSeries, asyncSeries, tieredSeries},
		},
	}
}
