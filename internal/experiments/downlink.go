package experiments

import (
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/flcore"
	"repro/internal/metrics"
)

// DownlinkArm is one broadcast mode's measured outcome in the downlink
// sweep.
type DownlinkArm struct {
	// Mode is the downlink spec ("dense", "delta", "delta+int8",
	// "delta+topk@0.1", ...), suffixed with "(sampled)" for the
	// sampled-cohort fallback arms.
	Mode string
	// FinalAcc is the run's final global test accuracy.
	FinalAcc float64
	// DownlinkBytes is the total broadcast traffic as charged on the wire;
	// UplinkBytes the client→server update traffic (dense in every arm —
	// the sweep isolates the broadcast direction).
	DownlinkBytes, UplinkBytes int64
	// Commits is the number of committed tier rounds inside the shared
	// simulated time budget; SimTime the consumed budget.
	Commits int
	SimTime float64
}

// DownlinkSweep runs FedAT-style tiered-async training on the Combine
// scenario once per downlink mode in {dense, delta, delta+int8,
// delta+topk@0.1, delta+topk@0.5} under identical seeds, clients, tiers,
// and simulated time budgets, and returns each arm's final accuracy and
// wire traffic. The delta arms run full-tier cohorts: a client is
// delta-eligible only while its acked base matches the tier chain's
// previous broadcast, so full participation keeps every ack current — the
// regime where the version-acked scheme pays off. Two extra arms repeat
// dense and delta+int8 with the scale's sampled cohorts to document the
// fallback cost: members that sat out the previous round are re-sent
// dense snapshots, capping the savings. Exported separately from
// RunExtensionDownlink so tests can assert on the raw numbers.
//
// The two top-k densities bracket a finding this sweep exists to record:
// sparsified broadcast interacts badly with FedAT's commit rule. CommitMix
// blends absolute weights (g = (1-a)g + a*c), so every commit drags the
// global model toward the committing tier's broadcast base. The int8 arm
// perturbs that base by a small dense quantization error and trains within
// a point of dense at ~6x fewer bytes. Top-k instead zeroes most delta
// coordinates: low-magnitude coordinates starve in the per-tier residual,
// the five tier bases drift stale in different directions, and their
// competing commit drag erases training progress — at 10% density the run
// collapses outright, while 50% density (where the error-feedback residual
// turns over fast enough) stays within a point of dense but saves too few
// bytes to matter. Single-tier runs are immune (one chain, no cross-tier
// drag), so this is a property of tiered commit mixing, not of the codec:
// for FedAT-style broadcast, quantize — don't sparsify.
func DownlinkSweep(s Scale) []DownlinkArm {
	sc := s.newScenario("ext-downlink", cifarSpec(), hetCombine, 5)
	tiers, _ := sc.tiers(s)
	duration := 2.5 * float64(s.Rounds)
	base := s.engineConfig(sc.spec)
	fullCohort := 0
	for _, tr := range tiers {
		if len(tr.Members) > fullCohort {
			fullCohort = len(tr.Members)
		}
	}

	run := func(mode string, clientsPerRound int) DownlinkArm {
		dl, err := compress.ParseDownlink(mode)
		if err != nil {
			panic("experiments: downlink sweep mode " + mode + ": " + err.Error())
		}
		res := flcore.RunTieredAsync(flcore.TieredAsyncConfig{
			Duration: duration, ClientsPerRound: clientsPerRound,
			TierWeight:   core.FedATWeights(),
			EvalInterval: duration, Seed: s.Seed,
			BatchSize: 10, LocalEpochs: 1,
			Model: base.Model, Optimizer: base.Optimizer, Latency: CommLatencyModel,
			EvalBatch: 256, Downlink: dl,
		}, core.TierMembers(tiers), sc.clients(s), sc.test)
		return DownlinkArm{
			Mode: dl.Name(), FinalAcc: res.FinalAcc,
			DownlinkBytes: res.DownlinkBytes, UplinkBytes: res.UplinkBytes,
			Commits: len(res.TierRounds), SimTime: res.TotalTime,
		}
	}

	arms := []DownlinkArm{
		run("dense", fullCohort),
		run("delta", fullCohort),
		run("delta+int8", fullCohort),
		run("delta+topk@0.1", fullCohort),
		run("delta+topk@0.5", fullCohort),
	}
	// The sampled pair is ratioed against its own dense baseline — a
	// sampled round moves fewer bytes regardless of encoding.
	for _, mode := range []string{"dense", "delta+int8"} {
		a := run(mode, s.ClientsPerRound)
		a.Mode += " (sampled)"
		arms = append(arms, a)
	}
	return arms
}

// RunExtensionDownlink is the delta-compressed broadcast extension
// experiment: the downlink sweep of DownlinkSweep rendered as a table
// (accuracy, broadcast bytes, downlink compression ratio vs dense,
// commits inside the budget). With the server-side error-feedback
// residual, the int8 delta arm ends within one accuracy point of the
// dense broadcast while moving several times fewer downlink bytes — and,
// under the byte-aware latency model, fits more commits into the same
// simulated budget. The top-k arms document the negative result (see
// DownlinkSweep: sparsified broadcast destabilizes FedAT's absolute-weight
// commit mixing), and the sampled-cohort arms show the scheme degrading
// gracefully rather than breaking: ack gaps silently fall back to dense
// snapshots.
func RunExtensionDownlink(s Scale) *Output {
	arms := DownlinkSweep(s)
	dense := arms[0]

	tab := metrics.Table{
		Title:   "Extension: delta-compressed downlink broadcast (Combine scenario)",
		Columns: []string{"downlink", "final accuracy", "downlink [KB]", "downlink ratio", "commits", "training time [s]"},
	}
	sampledDense := arms[5]
	for i, a := range arms {
		ref := dense
		if i >= 5 {
			ref = sampledDense
		}
		tab.AddRow(a.Mode, a.FinalAcc, float64(a.DownlinkBytes)/1024,
			float64(ref.DownlinkBytes)/float64(a.DownlinkBytes),
			float64(a.Commits), a.SimTime)
	}
	return &Output{
		ID:     "ext_downlink",
		Title:  "Version-acked delta broadcast vs dense snapshots",
		Tables: []metrics.Table{tab},
	}
}
