package experiments

import (
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/flcore"
)

func TestExtensionChurnShape(t *testing.T) {
	out := RunExtensionChurn(tinyScale())
	if out.ID != "ext_churn" || len(out.Tables) != 1 {
		t.Fatalf("output shape: id=%q tables=%d", out.ID, len(out.Tables))
	}
	if len(out.Tables[0].Rows) != 4 {
		t.Fatalf("rows = %d, want one per churn rate", len(out.Tables[0].Rows))
	}
}

func TestChurnSweepDeterministic(t *testing.T) {
	a := ChurnSweep(tinyScale())
	b := ChurnSweep(tinyScale())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arm %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestChurnAccountingExact pins the no-double-count contract: every commit
// counts each surviving member exactly once, members stay within their
// tier, and the charged uplink is exactly the survivors' dense updates —
// a flapped client contributes neither gradient nor bytes.
func TestChurnAccountingExact(t *testing.T) {
	s := tinyScale()
	sc := s.newScenario("ext-churn", cifarSpec(), hetCombine, 5)
	tiers, _ := sc.tiers(s)
	members := core.TierMembers(tiers)
	duration := 2.5 * float64(s.Rounds)
	base := s.engineConfig(sc.spec)

	run := func(rate float64) (*flcore.TieredAsyncResult, int) {
		participations := 0
		res := flcore.RunTieredAsync(flcore.TieredAsyncConfig{
			Duration: duration, ClientsPerRound: s.ClientsPerRound,
			TierWeight:   core.FedATWeights(),
			EvalInterval: duration, Seed: s.Seed,
			BatchSize: 10, LocalEpochs: 1,
			Model: base.Model, Optimizer: base.Optimizer, Latency: CommLatencyModel,
			EvalBatch: 256, ChurnRate: rate,
			OnCommit: func(rec flcore.TierRoundRecord) {
				participations += len(rec.Selected)
			},
		}, members, sc.clients(s), sc.test)
		return res, participations
	}

	res, flapped := run(0.3)
	inTier := make([]map[int]bool, len(members))
	for ti, ms := range members {
		inTier[ti] = make(map[int]bool, len(ms))
		for _, ci := range ms {
			inTier[ti][ci] = true
		}
	}
	dense := int64(compress.DenseBytes(len(res.Weights)))
	var upSum int64
	for i, rec := range res.TierRounds {
		seen := map[int]bool{}
		for _, ci := range rec.Selected {
			if seen[ci] {
				t.Fatalf("commit %d counts client %d twice: %v", i, ci, rec.Selected)
			}
			seen[ci] = true
			if !inTier[rec.Tier][ci] {
				t.Fatalf("commit %d (tier %d) counts client %d outside the tier", i, rec.Tier, ci)
			}
		}
		if rec.UplinkBytes != int64(len(rec.Selected))*dense {
			t.Fatalf("commit %d uplink %d bytes != %d survivors x %d dense bytes",
				i, rec.UplinkBytes, len(rec.Selected), dense)
		}
		upSum += rec.UplinkBytes
	}
	if upSum != res.UplinkBytes {
		t.Fatalf("uplink total %d != sum of per-commit uplink %d", res.UplinkBytes, upSum)
	}
	if _, clean := run(0); flapped >= clean {
		t.Fatalf("churned run counted %d participations, no-churn run %d — flaps not excluded", flapped, clean)
	}
}

func TestChurnSweepAcceptance(t *testing.T) {
	// The headline claim of the churn extension, at the paper's round budget
	// over the small-scale population: FedAT's staleness-discounted tier
	// commits absorb seeded worker flaps, so moderate churn (10–20% of each
	// round's cohort) ends within one accuracy point of the fault-free run
	// while moving proportionally fewer wire bytes. Everything is seeded, so
	// the check is deterministic.
	if testing.Short() {
		t.Skip("paper-round-budget sweep (~1min) skipped in short mode")
	}
	s := SmallScale()
	s.Rounds = FullScale().Rounds
	arms := ChurnSweep(s)
	base := arms[0]
	if base.Rate != 0 {
		t.Fatalf("first arm is not the no-churn baseline: %+v", base)
	}
	for _, a := range arms[1:3] {
		if math.Abs(a.FinalAcc-base.FinalAcc) > 0.01 {
			t.Errorf("churn %.0f%% final accuracy %.4f more than 1 point from no-churn %.4f",
				a.Rate*100, a.FinalAcc, base.FinalAcc)
		}
	}
	for _, a := range arms[1:] {
		if a.UplinkBytes >= base.UplinkBytes {
			t.Errorf("churn %.0f%% moved %d uplink bytes, no-churn %d — flapped members still charged",
				a.Rate*100, a.UplinkBytes, base.UplinkBytes)
		}
	}
}
