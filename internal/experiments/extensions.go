package experiments

import (
	"repro/internal/core"
	"repro/internal/flcore"
	"repro/internal/metrics"
)

// The extension experiments go beyond the paper's figures: they pit TiFL
// against the related-work baselines the paper discusses (FedProx [23],
// FedCS [28], asynchronous FL) under identical conditions, and exercise the
// "online" re-tiering the paper sketches for drifting client performance.

// RunExtensionBaselines compares TiFL's adaptive policy against vanilla
// FedAvg, FedProx (proximal term + partial work on stragglers), FedCS
// (deadline-filtered selection) and asynchronous FL on the Combine
// scenario (resource + quantity + non-IID heterogeneity).
func RunExtensionBaselines(s Scale) *Output {
	sc := s.newScenario("ext-baselines", cifarSpec(), hetCombine, 5)
	tiers, ref := sc.tiers(s)
	prof := core.Profile(ref, LatencyModel, core.ProfilerConfig{SyncRounds: 5, Tmax: 1e6, Epochs: 1, Seed: s.Seed + 4})

	tab := metrics.Table{
		Title:   "Extension: TiFL vs related-work baselines (Combine scenario)",
		Columns: []string{"system", "training time [s]", "final accuracy"},
	}
	var series []metrics.Series
	record := func(name string, res *flcore.Result) {
		tab.AddRow(name, res.TotalTime, res.FinalAcc)
		series = append(series, metrics.AccuracyOverTime(res, name))
	}

	// Vanilla FedAvg.
	cfg := s.engineConfig(sc.spec)
	record("FedAvg (vanilla)", flcore.NewEngine(cfg, sc.clients(s), sc.test).
		Run(&flcore.RandomSelector{NumClients: s.Clients, ClientsPerRound: s.ClientsPerRound}))

	// FedProx: proximal term and stragglers train a single reduced pass.
	prox := cfg
	prox.ProxMu = 0.1
	prox.EpochsFor = func(c *flcore.Client, round int) int { return 1 }
	record("FedProx", flcore.NewEngine(prox, sc.clients(s), sc.test).
		Run(&flcore.RandomSelector{NumClients: s.Clients, ClientsPerRound: s.ClientsPerRound}))

	// FedCS: deadline at the median profiled latency.
	med := medianLatency(prof.Latency)
	record("FedCS (deadline)", flcore.NewEngine(cfg, sc.clients(s), sc.test).
		Run(core.NewDeadlineSelector(prof.Latency, med, s.ClientsPerRound)))

	// TiFL adaptive.
	tiflRes := flcore.NewEngine(cfg, sc.clients(s), sc.test).
		Run(core.NewAdaptiveSelector(tiers, ref, s.adaptiveRun().adaptive))
	record("TiFL (adaptive)", tiflRes)

	// Asynchronous FL with the same simulated-time budget TiFL used.
	budget := tiflRes.TotalTime
	async := flcore.RunAsync(flcore.AsyncConfig{
		Duration: budget, Concurrency: s.ClientsPerRound,
		EvalInterval: budget / 10, Seed: s.Seed,
		BatchSize: 10, LocalEpochs: 1,
		Model: cfg.Model, Optimizer: cfg.Optimizer, Latency: LatencyModel,
		EvalBatch: 256,
	}, sc.clients(s), sc.test)
	record("FedAsync", async)

	return &Output{
		ID:     "ext_baselines",
		Title:  "TiFL vs FedProx / FedCS / asynchronous FL",
		Tables: []metrics.Table{tab},
		Series: map[string][]metrics.Series{"accuracy_over_time": series},
	}
}

func medianLatency(lat map[int]float64) float64 {
	vals := make([]float64, 0, len(lat))
	for _, v := range lat {
		vals = append(vals, v)
	}
	// insertion sort: n ≤ a few hundred
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals[len(vals)/2]
}

// RunExtensionDrift exercises the online setting of Sections 1/4.2: the
// fastest client group degrades 20x mid-training. Static tiering keeps
// selecting the stale "fast" tier; DynamicSelector re-tiers from observed
// latencies and keeps round time bounded.
func RunExtensionDrift(s Scale) *Output {
	sc := s.newScenario("ext-drift", cifarSpec(), hetResource, 0)
	prof := core.Profile(sc.clients(s), LatencyModel, core.ProfilerConfig{SyncRounds: 5, Tmax: 1e6, Epochs: 1, Seed: s.Seed + 4})
	driftAt := s.Rounds / 3
	mkClients := func() []*flcore.Client {
		cl := sc.clients(s)
		perGroup := s.Clients / 5
		for i := 0; i < perGroup; i++ {
			i := i
			cl[i].Drift = func(round int) float64 {
				if round >= driftAt {
					return 0.05
				}
				return 1
			}
			_ = i
		}
		return cl
	}
	policy := core.StaticPolicy{Name: "fast-leaning", Probs: []float64{0.6, 0.1, 0.1, 0.1, 0.1}}
	cfg := s.engineConfig(sc.spec)

	staticSel := core.NewStaticSelector(core.BuildTiers(prof.Latency, 5, core.Quantile), policy, s.ClientsPerRound)
	staticRes := flcore.NewEngine(cfg, mkClients(), sc.test).Run(staticSel)

	dyn := core.NewDynamicSelector(prof.Latency, policy, s.ClientsPerRound)
	dyn.RetierEvery = maxOf(5, s.Rounds/10)
	dynRes := flcore.NewEngine(cfg, mkClients(), sc.test).Run(dyn)

	tab := metrics.Table{
		Title:   "Extension: static vs dynamic tiering under performance drift",
		Columns: []string{"tiering", "training time [s]", "final accuracy", "re-tiers"},
	}
	tab.AddRow("static", staticRes.TotalTime, staticRes.FinalAcc, 0)
	tab.AddRow("dynamic", dynRes.TotalTime, dynRes.FinalAcc, dyn.Retiers())
	return &Output{
		ID:     "ext_drift",
		Title:  "Online re-tiering when client performance changes mid-training",
		Tables: []metrics.Table{tab},
		Series: map[string][]metrics.Series{
			"accuracy_over_time": {
				metrics.AccuracyOverTime(staticRes, "static"),
				metrics.AccuracyOverTime(dynRes, "dynamic"),
			},
		},
	}
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}
