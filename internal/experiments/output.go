package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/flcore"
	"repro/internal/metrics"
)

// Output is one experiment's rendered artifacts: tables, bar charts, and
// line series, with writers for a results directory.
type Output struct {
	// ID is the paper artifact this regenerates, e.g. "fig3" or "table2".
	ID string
	// Title describes the experiment.
	Title  string
	Tables []metrics.Table
	Charts []string
	// Series maps a sub-figure name (e.g. "accuracy_over_rounds") to its
	// line series.
	Series map[string][]metrics.Series
}

// Render returns the experiment's full text report.
func (o *Output) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", o.ID, o.Title)
	for _, c := range o.Charts {
		b.WriteString(c)
		b.WriteByte('\n')
	}
	for _, t := range o.Tables {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	names := make([]string, 0, len(o.Series))
	for name := range o.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tab := metrics.SeriesTable(name, o.Series[name], 10)
		b.WriteString(tab.Render())
		b.WriteByte('\n')
		b.WriteString(metrics.LinePlot(name, o.Series[name], 64, 12))
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteFiles persists the report and CSVs under dir/<ID>/.
func (o *Output) WriteFiles(dir string) error {
	base := filepath.Join(dir, o.ID)
	if err := os.MkdirAll(base, 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	if err := os.WriteFile(filepath.Join(base, "report.txt"), []byte(o.Render()), 0o644); err != nil {
		return err
	}
	for i, t := range o.Tables {
		name := fmt.Sprintf("table_%d.csv", i)
		if t.Title != "" {
			name = slug(t.Title) + ".csv"
		}
		if err := t.WriteCSVFile(filepath.Join(base, name)); err != nil {
			return err
		}
	}
	for name, series := range o.Series {
		if err := metrics.WriteSeriesCSVFile(filepath.Join(base, slug(name)+".csv"), series); err != nil {
			return err
		}
	}
	return nil
}

func slug(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ' || r == '-' || r == '_' || r == '/':
			out = append(out, '_')
		}
	}
	return string(out)
}

// timeBars builds a training-time bar chart plus the backing table from
// per-policy results, in the given order.
func timeBars(title string, order []string, results map[string]*flcore.Result) (string, metrics.Table) {
	values := make([]float64, len(order))
	tab := metrics.Table{Title: title, Columns: []string{"policy", "training time [s]", "speedup vs vanilla"}}
	base := 0.0
	if r, ok := results[order[0]]; ok {
		base = r.TotalTime
	}
	for i, name := range order {
		values[i] = results[name].TotalTime
		speedup := base / values[i]
		tab.AddRow(name, values[i], speedup)
	}
	return metrics.BarChart(title, order, values, 40), tab
}

// accuracySeries collects accuracy-over-rounds series per policy in order.
func accuracySeries(order []string, results map[string]*flcore.Result) []metrics.Series {
	out := make([]metrics.Series, 0, len(order))
	for _, name := range order {
		out = append(out, metrics.AccuracyOverRounds(results[name], name))
	}
	return out
}

// timeSeries collects accuracy-over-simulated-time series per policy.
func timeSeries(order []string, results map[string]*flcore.Result) []metrics.Series {
	out := make([]metrics.Series, 0, len(order))
	for _, name := range order {
		out = append(out, metrics.AccuracyOverTime(results[name], name))
	}
	return out
}

// finalAccTable tabulates final accuracies per policy.
func finalAccTable(title string, order []string, results map[string]*flcore.Result) metrics.Table {
	tab := metrics.Table{Title: title, Columns: []string{"policy", "final accuracy"}}
	for _, name := range order {
		tab.AddRow(name, results[name].FinalAcc)
	}
	return tab
}
