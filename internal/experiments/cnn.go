package experiments

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/simres"
)

// RunAblationCNN trains the paper's actual convolutional architecture
// (conv3x3x32 → conv3x3x64 → pool → dropout → dense, the MNIST model of
// Section 5.2) inside the FL engine on image-shaped synthetic data, under
// vanilla and uniform-tier selection. It validates that the reproduction's
// conclusions do not depend on the MLP substitution: the tiered policy's
// training-time win and accuracy parity hold for the CNN substrate too.
// Image size is reduced (14×14) to keep the conv path affordable per run.
func RunAblationCNN(s Scale) *Output {
	const h, w = 14, 14
	rounds := s.Rounds / 2
	if rounds < 5 {
		rounds = 5
	}
	nTrain := s.TrainSize / 4
	train := dataset.GenerateImages("fl-cnn", 10, 1, h, w, nTrain, 0.8, s.Seed+1)
	test := dataset.GenerateImages("fl-cnn", 10, 1, h, w, s.TestSize/2, 0.8, s.Seed+2)
	rng := newRng(s.Seed + 1000)
	parts := dataset.PartitionIID(train.Len(), s.Clients, rng)
	cpus := simres.AssignGroups(s.Clients, simres.GroupsCIFAR)

	cfg := flcore.Config{
		Rounds:          rounds,
		ClientsPerRound: s.ClientsPerRound,
		LocalEpochs:     1,
		BatchSize:       10,
		Seed:            s.Seed,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewPaperMNISTCNN(rng, h, w, 1, 10)
		},
		Optimizer: func(round int) nn.Optimizer {
			return nn.NewRMSprop(0.001*math.Pow(0.995, float64(round)), 0.995)
		},
		Latency:   LatencyModel,
		EvalEvery: maxOf(1, rounds/6),
		EvalBatch: 64,
		Parallel:  s.Parallel,
	}

	mk := func() []*flcore.Client {
		return flcore.BuildClients(train, test, parts, cpus, s.LocalTestMax, s.Seed+3)
	}
	prof := core.Profile(mk(), LatencyModel, core.ProfilerConfig{SyncRounds: 5, Tmax: 1e6, Epochs: 1, Seed: s.Seed + 4})
	tiers := core.BuildTiers(prof.Latency, 5, core.Quantile)

	vanilla := flcore.NewEngine(cfg, mk(), test).
		Run(&flcore.RandomSelector{NumClients: s.Clients, ClientsPerRound: s.ClientsPerRound})
	uniform := flcore.NewEngine(cfg, mk(), test).
		Run(core.NewStaticSelector(tiers, core.PolicyUniform, s.ClientsPerRound))

	tab := metrics.Table{
		Title:   "Ablation: CNN substrate (paper's conv architecture in the FL engine)",
		Columns: []string{"policy", "training time [s]", "final accuracy"},
	}
	tab.AddRow("vanilla", vanilla.TotalTime, vanilla.FinalAcc)
	tab.AddRow("uniform", uniform.TotalTime, uniform.FinalAcc)
	return &Output{
		ID:     "ablation_cnn",
		Title:  "Tiered selection with the convolutional model substrate",
		Tables: []metrics.Table{tab},
		Series: map[string][]metrics.Series{
			"accuracy_over_rounds": {
				metrics.AccuracyOverRounds(vanilla, "vanilla"),
				metrics.AccuracyOverRounds(uniform, "uniform"),
			},
		},
	}
}
