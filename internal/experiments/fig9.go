package experiments

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/flcore"
	"repro/internal/leaf"
	"repro/internal/metrics"
)

// LEAFClients returns the population size used by RunFig9: the paper's 182
// clients at full scale, a quarter of that at small scale.
func (s Scale) LEAFClients() int {
	if s.Rounds >= 500 {
		return leaf.Default.NumClients
	}
	return 48
}

// RunFig9 reproduces Figure 9: the LEAF FEMNIST benchmark with its default
// data heterogeneity (quantity + non-IID) plus the resource-heterogeneity
// overlay, comparing vanilla / slow / uniform / random / fast / TiFL with
// 10 clients per round. Shapes to reproduce: fast has the least training
// time but ~10% lower accuracy; slow beats fast on accuracy (tier 5 holds
// more data); adaptive matches vanilla/uniform accuracy at a fraction of
// vanilla's training time.
func RunFig9(s Scale) *Output {
	cfg := leaf.Default
	cfg.NumClients = s.LEAFClients()
	cfg.Seed = s.Seed + 90
	if s.Rounds < 500 { // small-scale: shrink shards to keep benches quick
		cfg.MeanSamples = 60
		cfg.TestSamples = 1240
	}
	pop := leaf.Build(cfg)

	prof := core.Profile(pop.Clients, LatencyModel, core.ProfilerConfig{SyncRounds: 5, Tmax: 1e6, Epochs: 1, Seed: s.Seed + 91})
	tiers := core.BuildTiers(prof.Latency, 5, core.Quantile)

	train := leaf.TrainingConfig(s.LEAFRounds, s.Seed+92, LatencyModel, s.EvalEvery)
	train.Parallel = s.Parallel

	runs := []policyRun{
		vanillaRun(),
		staticRun(core.PolicySlow),
		staticRun(core.PolicyUniform),
		staticRun(core.PolicyRandom),
		staticRun(core.PolicyFast),
		s.adaptiveRun(),
	}
	order := make([]string, 0, len(runs))
	results := make(map[string]*flcore.Result, len(runs))
	for _, run := range runs {
		// Fresh population per run so no local state leaks across policies.
		popRun := leaf.Build(cfg)
		var sel flcore.Selector
		switch run.kind {
		case kindVanilla:
			sel = &flcore.RandomSelector{NumClients: len(popRun.Clients), ClientsPerRound: train.ClientsPerRound}
		case kindStatic:
			sel = core.NewStaticSelector(tiers, run.static, train.ClientsPerRound)
		case kindAdaptive:
			a := run.adaptive
			a.ClientsPerRound = train.ClientsPerRound
			sel = core.NewAdaptiveSelector(tiers, pop.Clients, a)
		}
		eng := flcore.NewEngine(train, popRun.Clients, popRun.GlobalTest)
		results[run.name] = eng.Run(sel)
		order = append(order, run.name)
	}

	chart, tab := timeBars("Fig 9a: LEAF training time for "+strconv.Itoa(s.LEAFRounds)+" rounds", order, results)
	return &Output{
		ID:     "fig9",
		Title:  "LEAF FEMNIST with default data heterogeneity plus resource heterogeneity",
		Charts: []string{chart},
		Tables: []metrics.Table{tab, finalAccTable("Fig 9b: final accuracy", order, results)},
		Series: map[string][]metrics.Series{
			"accuracy_over_rounds": accuracySeries(order, results),
		},
	}
}
