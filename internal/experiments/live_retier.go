package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/flcore"
	"repro/internal/metrics"
	"repro/internal/tiering"
)

// The live re-tiering extension: TiFL's Section 4.2 profiling is a
// one-shot snapshot, but the paper sketches an online version for clients
// whose performance drifts. This experiment drives the internal/tiering
// Manager inside the tiered-asynchronous engine: half the clients' CPU
// capacity collapses to 10% mid-run, and the Manager-driven run migrates
// them out of the fast tiers at its rebuild points while the static run
// keeps the stale placement.

// LiveRetierOutcome carries both arms' raw results for the acceptance
// test: the static-tier run, the Manager-driven run, the shared accuracy
// target, and each arm's simulated time to reach it.
type LiveRetierOutcome struct {
	Static, Managed         *flcore.TieredAsyncResult
	TargetAcc               float64
	StaticTime, ManagedTime float64
}

// liveRetierDuration scales the simulated budget with the configured round
// count so tiny test scales still produce enough commits to cross several
// rebuild points.
func liveRetierDuration(s Scale) float64 { return 2.5 * float64(s.Rounds) }

// LiveRetierComparison runs the drifting-resource scenario twice under
// identical seeds and initial tiers: once with tiers frozen at the initial
// profile (RetierEvery 0) and once with live re-tiering every 10 commits.
// Exported separately from RunExtensionLiveRetier so tests can assert on
// the raw numbers.
func LiveRetierComparison(s Scale) LiveRetierOutcome {
	sc := s.newScenario("ext-live-retier", cifarSpec(), hetResource, 0)
	prof := core.Profile(sc.clients(s), LatencyModel, core.ProfilerConfig{SyncRounds: 5, Tmax: 1e6, Epochs: 1, Seed: s.Seed + 4})
	duration := liveRetierDuration(s)
	driftAt := 5

	// Half the clients (every even index) collapse to 10% capacity once
	// their tier-local round counter reaches driftAt. The closure latches:
	// a drifted client stays slow even after migrating to a tier whose
	// round counter is still below the threshold.
	mkClients := func() []*flcore.Client {
		cl := sc.clients(s)
		for i := 0; i < len(cl); i += 2 {
			latched := false
			cl[i].Drift = func(round int) float64 {
				if round >= driftAt {
					latched = true
				}
				if latched {
					return 0.1
				}
				return 1
			}
		}
		return cl
	}
	mkManager := func(retierEvery int) *tiering.Manager {
		mgr, err := tiering.NewManager(tiering.Config{
			NumTiers: 5, RetierEvery: retierEvery,
			ClientsPerRound: s.ClientsPerRound, Seed: s.Seed,
		}, prof.Latency)
		if err != nil {
			panic(fmt.Sprintf("experiments: live-retier manager: %v", err))
		}
		return mgr
	}
	run := func(retierEvery int) *flcore.TieredAsyncResult {
		base := s.engineConfig(sc.spec)
		return flcore.RunTieredAsync(flcore.TieredAsyncConfig{
			Duration: duration, ClientsPerRound: s.ClientsPerRound,
			TierWeight:   core.FedATWeights(),
			EvalInterval: duration / 25, Seed: s.Seed,
			BatchSize: 10, LocalEpochs: 1,
			Model: base.Model, Optimizer: base.Optimizer, Latency: LatencyModel,
			EvalBatch: 256,
			Manager:   mkManager(retierEvery),
		}, nil, mkClients(), sc.test)
	}

	static := run(0) // frozen at the initial profile
	managed := run(10)

	// Target: the accuracy both arms reach, so time-to-accuracy is defined
	// for each.
	target := static.FinalAcc
	if managed.FinalAcc < target {
		target = managed.FinalAcc
	}
	return LiveRetierOutcome{
		Static: static, Managed: managed, TargetAcc: target,
		StaticTime:  metrics.TimeToAccuracy(metrics.AccuracyOverTime(&static.Result, "static"), target),
		ManagedTime: metrics.TimeToAccuracy(metrics.AccuracyOverTime(&managed.Result, "managed"), target),
	}
}

// RunExtensionLiveRetier renders the comparison: with mid-run resource
// drift, the Manager-driven run re-tiers the drifted clients into slower
// tiers, keeps the fast tiers committing at full speed, and reaches the
// shared accuracy target in less simulated time than the static-tier run.
func RunExtensionLiveRetier(s Scale) *Output {
	out := LiveRetierComparison(s)
	tab := metrics.Table{
		Title:   "Extension: live re-tiering inside tiered-async under mid-run drift",
		Columns: []string{"tiering", "final accuracy", "time to target [s]", "re-tiers", "migrations"},
	}
	tab.AddRow("static (frozen profile)", out.Static.FinalAcc, out.StaticTime, float64(out.Static.Retiers), float64(out.Static.Migrations))
	tab.AddRow("live (EWMA re-tiering)", out.Managed.FinalAcc, out.ManagedTime, float64(out.Managed.Retiers), float64(out.Managed.Migrations))
	return &Output{
		ID:     "ext_live_retier",
		Title:  "Live re-tiering vs static tiers when client resources drift mid-run",
		Tables: []metrics.Table{tab},
		Series: map[string][]metrics.Series{
			"accuracy_over_time": {
				metrics.AccuracyOverTime(&out.Static.Result, "static"),
				metrics.AccuracyOverTime(&out.Managed.Result, "live re-tiering"),
			},
		},
	}
}
