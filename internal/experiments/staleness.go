package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/flcore"
	"repro/internal/metrics"
)

// The Alpha/StalenessExp ablation from the ROADMAP: the tiered-async
// engine mixes every committed tier round at rate
// Alpha · w_tier · (staleness+1)^(−StalenessExp). This sweep varies the
// staleness exponent at the default mixing rate and the mixing rate at the
// default exponent on the Combine scenario (resource + quantity + non-IID
// heterogeneity), under one shared simulated budget.

// StalenessArm is one (Alpha, StalenessExp) configuration's outcome.
type StalenessArm struct {
	Alpha, StalenessExp float64
	FinalAcc            float64
	SimTime             float64
	Commits             int
}

// StalenessSweep runs the ablation arms under identical seeds, clients,
// and tiers. Exported separately from RunExtensionStaleness so tests can
// assert on the raw numbers.
func StalenessSweep(s Scale) []StalenessArm {
	sc := s.newScenario("ext-staleness", cifarSpec(), hetCombine, 5)
	tiers, _ := sc.tiers(s)
	duration := 2.5 * float64(s.Rounds)
	base := s.engineConfig(sc.spec)

	// Staleness exponents at the default mixing rate, then mixing rates at
	// the default exponent — both dimensions without the full cross
	// product.
	configs := []struct{ alpha, exp float64 }{
		{0.6, 1e-9}, // effectively exponent 0: no staleness discount
		{0.6, 0.25},
		{0.6, 0.5}, // the engine default
		{0.6, 1.0},
		{0.3, 0.5},
		{0.9, 0.5},
	}
	arms := make([]StalenessArm, 0, len(configs))
	for _, c := range configs {
		res := flcore.RunTieredAsync(flcore.TieredAsyncConfig{
			Duration: duration, ClientsPerRound: s.ClientsPerRound,
			Alpha: c.alpha, StalenessExp: c.exp,
			TierWeight:   core.FedATWeights(),
			EvalInterval: duration, Seed: s.Seed,
			BatchSize: 10, LocalEpochs: 1,
			Model: base.Model, Optimizer: base.Optimizer, Latency: LatencyModel,
			EvalBatch: 256,
		}, core.TierMembers(tiers), sc.clients(s), sc.test)
		arms = append(arms, StalenessArm{
			Alpha: c.alpha, StalenessExp: c.exp,
			FinalAcc: res.FinalAcc, SimTime: res.TotalTime,
			Commits: len(res.TierRounds),
		})
	}
	return arms
}

// RunExtensionStaleness renders the ablation as a table: each arm's final
// accuracy and commit count on the shared budget.
func RunExtensionStaleness(s Scale) *Output {
	arms := StalenessSweep(s)
	tab := metrics.Table{
		Title:   "Ablation: tiered-async Alpha / StalenessExp (Combine scenario)",
		Columns: []string{"configuration", "final accuracy", "commits", "training time [s]"},
	}
	for _, a := range arms {
		exp := a.StalenessExp
		if exp < 1e-6 {
			exp = 0
		}
		tab.AddRow(fmt.Sprintf("alpha=%.1f exp=%.2f", a.Alpha, exp), a.FinalAcc, float64(a.Commits), a.SimTime)
	}
	return &Output{
		ID:     "ext_staleness",
		Title:  "Tiered-async mixing-rate and staleness-discount ablation",
		Tables: []metrics.Table{tab},
	}
}
