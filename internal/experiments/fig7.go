package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
)

// RunFig7 reproduces Figure 7: the adaptive policy (TiFL, Algorithm 2)
// against vanilla and uniform across the three heterogeneity scenarios —
// Class (resource + non-IID), Amount (resource + quantity skew), and
// Combine (all three). Shapes to reproduce: TiFL beats vanilla and uniform
// in training time and accuracy for Class and Amount, and in Combine
// matches vanilla's accuracy at roughly half its training time.
func RunFig7(s Scale) *Output {
	out := &Output{
		ID:     "fig7",
		Title:  "Adaptive (TiFL) vs vanilla and uniform across heterogeneity scenarios",
		Series: map[string][]metrics.Series{},
	}
	runs := []policyRun{vanillaRun(), staticRun(core.PolicyUniform), s.adaptiveRun()}
	timeTab := metrics.Table{Title: "Fig 7a: training time [s]", Columns: []string{"scenario", "vanilla", "uniform", "TiFL"}}
	accTab := metrics.Table{Title: "Fig 7b: final accuracy", Columns: []string{"scenario", "vanilla", "uniform", "TiFL"}}
	for _, scn := range []struct {
		key string
		het heterogeneity
	}{
		{"Class", hetResourceNonIID},
		{"Amount", hetResourceQuantity},
		{"Combine", hetCombine},
	} {
		sc := s.newScenario("fig7-"+scn.key, cifarSpec(), scn.het, 5)
		order, results := s.execute(sc, runs)
		timeTab.AddRow(scn.key, results["vanilla"].TotalTime, results["uniform"].TotalTime, results["TiFL"].TotalTime)
		accTab.AddRow(scn.key, results["vanilla"].FinalAcc, results["uniform"].FinalAcc, results["TiFL"].FinalAcc)
		out.Series["accuracy_over_rounds_"+scn.key] = accuracySeries(order, results)
		chart, _ := timeBars("Fig 7 "+scn.key+": training time", order, results)
		out.Charts = append(out.Charts, chart)
	}
	out.Tables = append(out.Tables, timeTab, accTab)
	return out
}
