package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/simres"
)

// Fig1aSizes are the per-client data sizes of the Section 3.3 case study.
var Fig1aSizes = []int{500, 1000, 2000, 5000}

// RunFig1a reproduces Figure 1(a): average training time per round as a
// function of CPU allocation (4, 2, 1, 1/3, 1/5 CPUs) and per-client data
// size (500–5000 samples). The paper's observations to reproduce: latency
// grows near-linearly with data size at fixed CPU, and shrinks as CPU
// share grows — a 2^1..2^8 s spread on the log-scale plot.
func RunFig1a(s Scale) *Output {
	rng := rand.New(rand.NewSource(s.Seed))
	cpuLabels := []string{"4 CPUs", "2 CPUs", "1 CPU", "1/3 CPU", "1/5 CPU"}
	tab := metrics.Table{
		Title:   "Fig 1a: avg training time per round [s]",
		Columns: append([]string{"CPU"}, sizesHeader()...),
	}
	var series []metrics.Series
	for gi, cpu := range simres.GroupsCaseStudy {
		row := []any{cpuLabels[gi]}
		sr := metrics.Series{Name: cpuLabels[gi]}
		for _, size := range Fig1aSizes {
			// Average over profiling rounds like the case study does.
			const reps = 20
			sum := 0.0
			for i := 0; i < reps; i++ {
				sum += LatencyModel.Latency(cpu, size, 1, rng)
			}
			avg := sum / reps
			row = append(row, avg)
			sr.X = append(sr.X, float64(size))
			sr.Y = append(sr.Y, avg)
		}
		tab.AddRow(row...)
		series = append(series, sr)
	}
	return &Output{
		ID:     "fig1a",
		Title:  "Training time per round under resource and data-quantity heterogeneity",
		Tables: []metrics.Table{tab},
		Series: map[string][]metrics.Series{"latency_by_size": series},
	}
}

func sizesHeader() []string {
	out := make([]string, len(Fig1aSizes))
	for i, s := range Fig1aSizes {
		out[i] = fmt.Sprintf("%d points", s)
	}
	return out
}

// Fig1bLevels are the class-per-client levels of Figure 1(b): IID plus
// non-IID(10), non-IID(5), non-IID(2).
var Fig1bLevels = []int{0, 10, 5, 2} // 0 encodes IID

// RunFig1b reproduces Figure 1(b): vanilla FedAvg accuracy over rounds on
// CIFAR-10-like data at each non-IID level with fixed resources. The shape
// to reproduce: accuracy ordering IID > non-IID(10) > non-IID(5) >
// non-IID(2).
func RunFig1b(s Scale) *Output {
	var series []metrics.Series
	tab := metrics.Table{Title: "Fig 1b: final accuracy by non-IID level", Columns: []string{"distribution", "final accuracy"}}
	for _, level := range Fig1bLevels {
		name := "IID"
		var sc scenario
		if level == 0 {
			sc = s.iidScenario(cifarSpec())
		} else {
			name = fmt.Sprintf("non-IID(%d)", level)
			sc = s.newScenario(name, cifarSpec(), hetNonIID, level)
		}
		_, results := s.execute(sc, []policyRun{vanillaRun()})
		res := results["vanilla"]
		sr := metrics.AccuracyOverRounds(res, name)
		series = append(series, sr)
		tab.AddRow(name, res.FinalAcc)
	}
	return &Output{
		ID:     "fig1b",
		Title:  "Vanilla FL accuracy under varying class distribution per client",
		Tables: []metrics.Table{tab},
		Series: map[string][]metrics.Series{"accuracy_over_rounds": series},
	}
}
